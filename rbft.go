// Package rbft is a from-scratch Go implementation of RBFT — Redundant
// Byzantine Fault Tolerance (Aublin, Ben Mokhtar, Quéma; ICDCS 2013).
//
// RBFT runs f+1 parallel instances of a PBFT-style ordering protocol on the
// same 3f+1 nodes, each instance with its primary on a different node. All
// instances order client requests (by identifier only); only the master
// instance's order is executed. Every node monitors per-instance throughput
// and per-request latency: if the master underperforms the backups beyond
// the Δ/Λ/Ω thresholds, 2f+1 nodes vote a protocol instance change that
// rotates every primary at once — bounding what a smartly malicious primary
// can do to ~3% throughput loss, where earlier "robust" protocols lose
// 78-99%.
//
// Layout:
//
//	internal/core      the RBFT node (verification, propagation, dispatch &
//	                   monitoring, execution, instance change)
//	internal/pbft      one protocol instance: three-phase ordering state machine
//	internal/monitor   Δ/Λ/Ω monitoring
//	internal/client    open-loop client
//	internal/runtime   real-time driver over live transports (TCP/UDP/memnet)
//	internal/sim       deterministic discrete-event simulator (evaluation)
//	internal/baseline  Prime, Aardvark, Spinning comparison protocols
//	internal/harness   regenerates every table and figure of the paper
//
// This file re-exports the deployment-facing surface so applications can
// depend on a single package.
package rbft

import (
	"rbft/internal/app"
	"rbft/internal/client"
	"rbft/internal/runtime"
	"rbft/internal/types"
)

// Re-exported identifier types.
type (
	// NodeID identifies one of the 3f+1 nodes.
	NodeID = types.NodeID
	// ClientID identifies a client.
	ClientID = types.ClientID
	// Application is the deterministic replicated state machine.
	Application = app.Application
	// Completed is an accepted request result.
	Completed = client.Completed
	// ClusterOptions configures StartLocalCluster.
	ClusterOptions = runtime.ClusterOptions
	// LocalCluster is an in-process RBFT cluster.
	LocalCluster = runtime.LocalCluster
	// NodeRuntime runs one node over a live transport.
	NodeRuntime = runtime.NodeRuntime
	// ClientRuntime runs one client over a live transport.
	ClientRuntime = runtime.ClientRuntime
)

// Transport kinds for ClusterOptions.
const (
	Mem = runtime.Mem
	TCP = runtime.TCP
	UDP = runtime.UDP
)

// StartLocalCluster boots a 3f+1-node RBFT cluster inside this process,
// over in-memory channels or loopback TCP/UDP sockets.
func StartLocalCluster(opts ClusterOptions) (*LocalCluster, error) {
	return runtime.StartLocalCluster(opts)
}

// NewConfig returns the cluster configuration tolerating f faults.
func NewConfig(f int) types.Config { return types.NewConfig(f) }

// Reference applications.
var (
	// NewKV creates the replicated key-value store application.
	NewKV = app.NewKV
	// NewCounter creates the replicated counter application.
	NewCounter = app.NewCounter
)
