// Command rbft-node runs one RBFT node over TCP (or UDP with -udp).
//
// A 4-node cluster on one machine:
//
//	rbft-node -id 0 -f 1 -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	rbft-node -id 1 -f 1 -listen 127.0.0.1:7001 -peers ... &
//	rbft-node -id 2 -f 1 -listen 127.0.0.1:7002 -peers ... &
//	rbft-node -id 3 -f 1 -listen 127.0.0.1:7003 -peers ... &
//
// Then drive it with rbft-client. The replicated application is the
// key-value store (PUT/GET/DEL). All nodes must share -secret; in a real
// deployment the key material would come from a PKI.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rbft/internal/app"
	"rbft/internal/core"
	"rbft/internal/crypto"
	"rbft/internal/monitor"
	"rbft/internal/obs"
	"rbft/internal/runtime"
	"rbft/internal/transport"
	"rbft/internal/transport/tcpnet"
	"rbft/internal/transport/udpnet"
	"rbft/internal/types"
	"rbft/internal/wal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		id          = flag.Int("id", 0, "this node's id (0..N-1)")
		f           = flag.Int("f", 1, "tolerated faults (cluster has 3f+1 nodes)")
		listen      = flag.String("listen", "127.0.0.1:7000", "listen address")
		peers       = flag.String("peers", "", "comma-separated node addresses, index = node id (including this node)")
		clients     = flag.String("clients", "", "comma-separated client addresses as id=addr pairs (optional; clients can also be added while running via repeated flags)")
		secret      = flag.String("secret", "rbft-demo-secret", "cluster key-derivation secret (all nodes and clients must agree)")
		udp         = flag.Bool("udp", false, "use UDP instead of TCP")
		maxClients  = flag.Int("max-clients", 64, "client id space")
		delta       = flag.Float64("delta", 0.9, "monitoring Delta threshold")
		period      = flag.Duration("period", 250*time.Millisecond, "monitoring period")
		obsAddr     = flag.String("obs-addr", "", "observability HTTP listen address serving /metrics and /debug/events (empty = disabled)")
		pprofOn     = flag.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/ on the observability address (requires -obs-addr)")
		recorder    = flag.Int("recorder", obs.DefaultRecorderSize, "flight-recorder capacity in events (0 = disabled)")
		dataDir     = flag.String("data-dir", "", "durable state directory; when set, protocol state is written to a WAL under it before any message is sent, and a restart recovers from it (empty = in-memory only)")
		ordering    = flag.String("ordering", "master-only", "ordering mode: master-only (master instance orders everything) or multi-primary (each instance orders a disjoint client partition; all nodes must agree)")
		execWorkers = flag.Int("exec-workers", 0, "parallel execution workers: 0 or 1 applies requests serially; >= 2 applies non-conflicting requests concurrently in waves (the KV app declares conflicts per key)")
	)
	flag.Parse()

	cluster := types.NewConfig(*f)
	if *id < 0 || *id >= cluster.N {
		return fmt.Errorf("id %d out of range for N=%d", *id, cluster.N)
	}
	peerList := strings.Split(*peers, ",")
	if len(peerList) != cluster.N {
		return fmt.Errorf("need %d peer addresses, got %d", cluster.N, len(peerList))
	}

	peerMap := make(map[string]string, cluster.N)
	for i, addr := range peerList {
		if i != *id {
			peerMap[runtime.NodeName(types.NodeID(i))] = strings.TrimSpace(addr)
		}
	}
	for _, pair := range strings.Split(*clients, ",") {
		if pair == "" {
			continue
		}
		cid, addr, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("malformed client pair %q (want id=addr)", pair)
		}
		var n int
		if _, err := fmt.Sscanf(cid, "%d", &n); err != nil {
			return fmt.Errorf("malformed client id %q", cid)
		}
		peerMap["client/"+cid] = strings.TrimSpace(addr)
		_ = n
	}

	// Observability: a metrics registry plus an in-memory flight recorder,
	// both exposed over HTTP when -obs-addr is set. The registry also feeds
	// the transport drop/close counters.
	reg := obs.NewRegistry()
	var fr *obs.FlightRecorder
	sinks := []obs.Tracer{obs.NewMetricsTracer(reg)}
	if *recorder > 0 {
		fr = obs.NewFlightRecorder(*recorder)
		sinks = append(sinks, fr)
	}
	tracer := obs.Multi(sinks...)

	var tr transport.Transport
	var err error
	name := runtime.NodeName(types.NodeID(*id))
	if *udp {
		ep, uerr := udpnet.Listen(name, *listen, peerMap)
		if uerr == nil {
			ep.SetMetrics(transport.NewMetrics(reg, "udp"))
		}
		tr, err = ep, uerr
	} else {
		ep, terr := tcpnet.Listen(name, *listen, peerMap)
		if terr == nil {
			ep.SetMetrics(transport.NewMetrics(reg, "tcp"))
		}
		tr, err = ep, terr
	}
	if err != nil {
		return err
	}

	mode, err := types.ParseOrderingMode(*ordering)
	if err != nil {
		return err
	}

	ks := crypto.NewKeyStore([]byte(*secret), cluster.N, *maxClients)
	cfg := core.Config{
		Cluster: cluster,
		Node:    types.NodeID(*id),
		App:     runtime.InstrumentApp(app.NewKV(), tracer, types.NodeID(*id)),
		Monitoring: monitor.Config{
			Period: *period,
			Delta:  *delta,
		},
		BatchTimeout: 2 * time.Millisecond,
		OrderingMode: mode,
		ExecWorkers:  *execWorkers,
		Durable:      *dataDir != "",
	}
	node := core.New(cfg, ks.NodeRing(types.NodeID(*id)))
	node.SetTracer(tracer)
	node.SetRegistry(reg)

	// Durability: open (or recover) the WAL before the node says a word on
	// the network. Everything the node has ever promised is replayed into it
	// here, so a SIGKILL + restart cannot make it equivocate.
	var w *wal.Log
	if *dataDir != "" {
		w, err = runtime.OpenNodeWAL(node, wal.Options{Dir: filepath.Join(*dataDir, "wal")}, reg)
		if err != nil {
			return err
		}
		if n := w.Replayed(); n > 0 {
			log.Printf("recovered from %s: replayed %d WAL records", *dataDir, n)
		}
	}

	nr := runtime.StartNodeOpts(node, tr, cluster, runtime.NodeOptions{
		WAL:     w,
		Metrics: reg,
		Tracer:  tracer,
	})
	log.Printf("rbft-node %d/%d listening on %s (f=%d, %d instances, transport=%s)",
		*id, cluster.N, *listen, *f, cluster.Instances(), transportName(*udp))

	if *obsAddr != "" {
		handler := obs.HTTPHandler(reg, fr)
		endpoints := "/metrics, /debug/events"
		if *pprofOn {
			// pprof is opt-in: profiling endpoints expose enough internal
			// state (heap contents, goroutine stacks) that they should never
			// be on by default, even on a loopback observability port.
			mux := http.NewServeMux()
			mux.Handle("/", handler)
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			handler = mux
			endpoints += ", /debug/pprof/"
		}
		srv := &http.Server{Addr: *obsAddr, Handler: handler}
		go func() {
			log.Printf("observability on http://%s (%s)", *obsAddr, endpoints)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("observability server: %v", err)
			}
		}()
		defer srv.Close()
	}

	// SIGQUIT dumps the flight recorder without stopping the node — a live
	// snapshot for forensics on a degraded but still-serving replica.
	// SIGINT/SIGTERM shut down gracefully as before.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT)
	var s os.Signal
	for s = range sig {
		if s != syscall.SIGQUIT {
			break
		}
		if fr == nil {
			log.Printf("SIGQUIT: flight recorder disabled (-recorder 0), nothing to dump")
			continue
		}
		if err := dumpRecorder(fr, recorderPath(*dataDir, *id)); err != nil {
			log.Printf("SIGQUIT: flight recorder dump: %v", err)
		}
	}
	log.Printf("%s: shutting down", s)

	// Graceful shutdown: stop the pipeline first (no new outputs), then make
	// everything already appended durable and release the segment files, and
	// finally preserve the flight recorder's tail for post-mortem reading.
	nr.Stop()
	if w != nil {
		if err := w.Close(); err != nil {
			log.Printf("wal close: %v", err)
		} else {
			log.Printf("wal flushed and closed")
		}
	}
	if fr != nil && *dataDir != "" {
		if err := dumpRecorder(fr, filepath.Join(*dataDir, "flight-recorder.jsonl")); err != nil {
			log.Printf("flight recorder dump: %v", err)
		}
	}
	return nil
}

// recorderPath places flight-recorder dumps in the data directory when one
// exists, else in the working directory named by node id (so an in-memory
// cluster on one machine doesn't clobber its own dumps).
func recorderPath(dataDir string, id int) string {
	if dataDir != "" {
		return filepath.Join(dataDir, "flight-recorder.jsonl")
	}
	return fmt.Sprintf("rbft-node-%d-flight-recorder.jsonl", id)
}

// dumpRecorder writes the flight recorder's buffered events as JSONL so a
// crash investigation can read the node's last moments after the process is
// gone (the /debug/events endpoint dies with it).
func dumpRecorder(fr *obs.FlightRecorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	jw := obs.NewJSONLWriter(f)
	for _, ev := range fr.Events() {
		jw.Trace(ev)
	}
	if err := jw.Err(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("flight recorder dumped to %s", path)
	return nil
}

func transportName(udp bool) string {
	if udp {
		return "udp"
	}
	return "tcp"
}
