// Command rbft-trace inspects JSONL protocol traces produced by the
// simulator (sim.Config.Trace) or by a node's flight recorder.
//
//	rbft-trace summary trace.jsonl                  # event counts
//	rbft-trace timeline -node 0 trace.jsonl         # one node's event stream
//	rbft-trace explain trace.jsonl                  # instance-change forensics
//	rbft-trace critical-path -top 5 trace.jsonl     # per-stage latency budget
//	rbft-trace attribute -instance 0 trace.jsonl    # stage profile vs. healthy lanes
//
// Every command accepts multiple trace files (e.g. one flight-recorder dump
// per node); they are merged into one causally-ordered stream by timestamp
// before analysis, so cross-node reconstructions see the whole cluster.
//
// "explain" reconstructs the monitor's decision behind every instance
// change: which Δ/Λ/Ω test fired, the measured value, the node's Δ-ratio
// history leading up to the change, and the voters observed for the round.
//
// "critical-path" joins each request's lifecycle spans across nodes,
// follows the replica whose reply completed the client's f+1 quorum, and
// decomposes its end-to-end latency into per-stage segments that sum to the
// total exactly; it prints per-stage percentiles and the top-k slowest
// requests with their dominant stage.
//
// "attribute" compares one protocol instance's stage profile (propose,
// prepare-quorum, commit-quorum, order) against the healthy lanes' median,
// explaining a Δ/Λ/Ω verdict by naming the stage that carries the excess.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"rbft/internal/obs"
	"rbft/internal/types"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rbft-trace: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "summary":
		err = runSummary(args)
	case "timeline":
		err = runTimeline(args)
	case "explain":
		err = runExplain(args)
	case "critical-path":
		err = runCriticalPath(args)
	case "attribute":
		err = runAttribute(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rbft-trace summary       <trace.jsonl>...
  rbft-trace timeline      [-node N] [-instance I] <trace.jsonl>...
  rbft-trace explain       <trace.jsonl>...
  rbft-trace critical-path [-top K] <trace.jsonl>...
  rbft-trace attribute     [-instance I] <trace.jsonl>...

Multiple trace files (e.g. per-node flight-recorder dumps) are merged into
one time-ordered stream. Pass "-" to read a trace from stdin.`)
}

// load reads and merges the traces named by the positional arguments of fs.
func load(fs *flag.FlagSet) ([]obs.Event, error) {
	if fs.NArg() < 1 {
		return nil, fmt.Errorf("expected at least one trace file")
	}
	traces := make([][]obs.Event, 0, fs.NArg())
	for _, path := range fs.Args() {
		events, err := readOne(path)
		if err != nil {
			return nil, err
		}
		traces = append(traces, events)
	}
	if len(traces) == 1 {
		return traces[0], nil
	}
	return obs.MergeTraces(traces...), nil
}

func readOne(path string) ([]obs.Event, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadTrace(r)
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := load(fs)
	if err != nil {
		return err
	}
	s := obs.Summarize(events)
	fmt.Printf("%d events\n", s.Total)
	for _, tc := range s.ByType {
		fmt.Printf("  %-24s %d\n", tc.Type, tc.Count)
	}
	printFrontDoor(events)
	if len(events) > 0 {
		first, last := events[0].At, events[len(events)-1].At
		fmt.Printf("span: %s .. %s (%s)\n",
			stamp(first), stamp(last), last.Sub(first))
	}
	return nil
}

// printFrontDoor summarises client-table evictions per node. Printed only
// when the trace carries eviction events, so traces from unbounded tables
// (every legacy trace) keep their summary output unchanged.
func printFrontDoor(events []obs.Event) {
	evictions := make(map[types.NodeID]int)
	lastSize := make(map[types.NodeID]int)
	var nodes []types.NodeID
	for _, ev := range events {
		if ev.Type != obs.EvClientEvicted {
			continue
		}
		if _, seen := evictions[ev.Node]; !seen {
			nodes = append(nodes, ev.Node)
		}
		evictions[ev.Node]++
		lastSize[ev.Node] = ev.Count
	}
	if len(nodes) == 0 {
		return
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	total := 0
	for _, n := range nodes {
		total += evictions[n]
	}
	fmt.Printf("front door: %d client evictions (bounded client table)\n", total)
	for _, n := range nodes {
		fmt.Printf("  node %-3d evictions=%-8d last-shard-size=%d\n",
			n, evictions[n], lastSize[n])
	}
}

func runTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	node := fs.Int("node", -1, "restrict to one node id (-1 = all)")
	inst := fs.Int("instance", -1, "restrict to one protocol instance's ordering events (-1 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := load(fs)
	if err != nil {
		return err
	}
	for _, ev := range obs.Timeline(events, types.NodeID(*node), types.InstanceID(*inst)) {
		fmt.Println(formatEvent(ev))
	}
	return nil
}

func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	tail := fs.Int("tail", 5, "ratio-history points to show per change")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := load(fs)
	if err != nil {
		return err
	}
	expl := obs.ExplainInstanceChanges(events)
	if len(expl) == 0 {
		fmt.Println("no instance changes in trace")
		return nil
	}
	for i, e := range expl {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("instance change #%d at %s: node %d -> view %d (cpi %d)\n",
			i+1, stamp(e.At), e.Node, e.NewView, e.CPI)
		fmt.Printf("  reason: %s\n", e.Reason)
		switch e.Reason {
		case "throughput-delta":
			fmt.Printf("  measured ratio: %.4f (master/best-backup throughput)\n", e.Ratio)
		case "latency-lambda":
			fmt.Printf("  offending latency: %.4fs (client %d)\n", e.Value, e.Client)
		case "fairness-omega":
			fmt.Printf("  offending latency gap: %.4fs (client %d)\n", e.Value, e.Client)
		}
		if len(e.Voters) > 0 {
			fmt.Printf("  voters: %v\n", e.Voters)
		}
		if n := len(e.RatioSeries); n > 0 {
			start := n - *tail
			if start < 0 {
				start = 0
			}
			fmt.Printf("  ratio history (last %d of %d):\n", n-start, n)
			for _, p := range e.RatioSeries[start:] {
				mark := " "
				if p.Suspicious {
					mark = "!"
				}
				fmt.Printf("   %s %s ratio=%.4f throughput=%v\n", mark, stamp(p.At), p.Ratio, p.Throughput)
			}
		}
	}
	return nil
}

func runCriticalPath(args []string) error {
	fs := flag.NewFlagSet("critical-path", flag.ExitOnError)
	top := fs.Int("top", 5, "slowest requests to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := load(fs)
	if err != nil {
		return err
	}
	rep := obs.CriticalPaths(events, *top)
	if rep.Requests == 0 {
		fmt.Println("no completed requests in trace (need request-lifecycle spans; run with tracing on)")
		return nil
	}
	fmt.Printf("%d completed requests across %d nodes (f=%d, reply quorum %d)\n",
		rep.Requests, rep.Nodes, rep.F, rep.F+1)
	fmt.Printf("end-to-end latency: p50=%s p95=%s p99=%s\n",
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99)
	fmt.Println("per-stage latency budget (critical-path segments):")
	for _, st := range rep.Stages {
		fmt.Printf("  %-16s n=%-6d p50=%-12s p95=%-12s p99=%s\n",
			st.Stage, st.Count, st.P50, st.P95, st.P99)
	}
	if len(rep.Slowest) > 0 {
		fmt.Printf("top %d slowest requests:\n", len(rep.Slowest))
		for _, p := range rep.Slowest {
			fmt.Printf("  client=%d req=%d latency=%s via node %d, dominant stage: %s\n",
				p.Client, p.Req, p.Latency, p.Node, p.Dominant)
			for _, seg := range p.Segments {
				fmt.Printf("    %-16s %s\n", seg.Stage, seg.Dur)
			}
		}
	}
	return nil
}

func runAttribute(args []string) error {
	fs := flag.NewFlagSet("attribute", flag.ExitOnError)
	inst := fs.Int("instance", -1, "suspect protocol instance (-1 = master)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := load(fs)
	if err != nil {
		return err
	}
	rep := obs.Attribute(events, types.InstanceID(*inst))
	fmt.Printf("suspect: instance %d\n", rep.Suspect)
	if len(rep.Instances) == 0 {
		fmt.Println("no per-instance spans in trace (run with tracing on)")
		return nil
	}
	fmt.Println("per-instance stage profiles (p50):")
	for _, ip := range rep.Instances {
		mark := " "
		if ip.Instance == rep.Suspect {
			mark = "*"
		}
		fmt.Printf(" %s instance %d:", mark, ip.Instance)
		for _, st := range ip.Stages {
			fmt.Printf(" %s=%s", st.Stage, st.P50)
		}
		fmt.Println()
	}
	fmt.Println("suspect vs. healthy-lane median:")
	for _, d := range rep.Diffs {
		fmt.Printf("  %-16s suspect=%-12s healthy=%-12s excess=%s\n",
			d.Stage, d.Suspect, d.Healthy, d.Excess)
	}
	if len(rep.Segments) > 0 {
		fmt.Println("critical-path segments (p50):")
		for _, st := range rep.Segments {
			if st.Stage == obs.UnattributedStage {
				continue
			}
			fmt.Printf("  %-16s %s\n", st.Stage, st.P50)
		}
	}
	if rep.Dominant != "" {
		fmt.Printf("dominant stage: %s\n", rep.Dominant)
	} else {
		fmt.Println("dominant stage: none (no stage carries measurable excess)")
	}
	if len(rep.Changes) > 0 {
		fmt.Printf("instance changes in trace: %d (first: %s at %s)\n",
			len(rep.Changes), rep.Changes[0].Reason, stamp(rep.Changes[0].At))
	}
	return nil
}

func formatEvent(ev obs.Event) string {
	s := fmt.Sprintf("%s node=%d %s", stamp(ev.At), ev.Node, ev.Type)
	switch ev.Type {
	case obs.EvPrePrepare, obs.EvPrepare, obs.EvCommit, obs.EvOrdered:
		s += fmt.Sprintf(" inst=%d seq=%d view=%d", ev.Instance, ev.Seq, ev.View)
		if ev.Count > 0 {
			s += fmt.Sprintf(" batch=%d", ev.Count)
		}
	case obs.EvRequestReceived, obs.EvRequestDispatched, obs.EvExecuted:
		s += fmt.Sprintf(" client=%d req=%d", ev.Client, ev.Req)
	case obs.EvVerdict:
		s += fmt.Sprintf(" reason=%s value=%.4f", ev.Reason, ev.Value)
	case obs.EvInstanceChangeStart, obs.EvInstanceChangeComplete:
		s += fmt.Sprintf(" cpi=%d reason=%s", ev.CPI, ev.Reason)
	case obs.EvNICClose, obs.EvMsgDrop:
		s += fmt.Sprintf(" peer=%d", ev.Peer)
	case obs.EvClientEvicted:
		s += fmt.Sprintf(" client=%d shard-size=%d", ev.Client, ev.Count)
	case obs.EvSpan:
		s += fmt.Sprintf(" stage=%s dur=%s", ev.Stage, ev.Dur)
		if ev.Stage.PerInstance() {
			s += fmt.Sprintf(" inst=%d seq=%d", ev.Instance, ev.Seq)
		} else {
			s += fmt.Sprintf(" client=%d req=%d", ev.Client, ev.Req)
		}
	}
	return s
}

// stamp renders a trace timestamp. Simulator traces use virtual time near
// the epoch, where an offset reads better than a calendar date.
func stamp(t time.Time) string {
	if t.Year() < 2000 {
		return t.Sub(time.Unix(0, 0)).String()
	}
	return t.Format("15:04:05.000")
}
