// Command rbft-trace inspects JSONL protocol traces produced by the
// simulator (sim.Config.Trace) or by a node's flight recorder.
//
//	rbft-trace summary trace.jsonl             # event counts
//	rbft-trace timeline -node 0 trace.jsonl    # one node's event stream
//	rbft-trace explain trace.jsonl             # instance-change forensics
//
// "explain" reconstructs the monitor's decision behind every instance
// change: which Δ/Λ/Ω test fired, the measured value, the node's Δ-ratio
// history leading up to the change, and the voters observed for the round.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"rbft/internal/obs"
	"rbft/internal/types"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rbft-trace: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "summary":
		err = runSummary(args)
	case "timeline":
		err = runTimeline(args)
	case "explain":
		err = runExplain(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rbft-trace summary  <trace.jsonl>
  rbft-trace timeline [-node N] [-instance I] <trace.jsonl>
  rbft-trace explain  <trace.jsonl>

Pass "-" to read the trace from stdin.`)
}

// load reads the trace named by the sole positional argument of fs.
func load(fs *flag.FlagSet) ([]obs.Event, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one trace file, got %d arguments", fs.NArg())
	}
	path := fs.Arg(0)
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadTrace(r)
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := load(fs)
	if err != nil {
		return err
	}
	s := obs.Summarize(events)
	fmt.Printf("%d events\n", s.Total)
	for _, tc := range s.ByType {
		fmt.Printf("  %-24s %d\n", tc.Type, tc.Count)
	}
	if len(events) > 0 {
		first, last := events[0].At, events[len(events)-1].At
		fmt.Printf("span: %s .. %s (%s)\n",
			stamp(first), stamp(last), last.Sub(first))
	}
	return nil
}

func runTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	node := fs.Int("node", -1, "restrict to one node id (-1 = all)")
	inst := fs.Int("instance", -1, "restrict to one protocol instance's ordering events (-1 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := load(fs)
	if err != nil {
		return err
	}
	for _, ev := range obs.Timeline(events, types.NodeID(*node), types.InstanceID(*inst)) {
		fmt.Println(formatEvent(ev))
	}
	return nil
}

func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	tail := fs.Int("tail", 5, "ratio-history points to show per change")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := load(fs)
	if err != nil {
		return err
	}
	expl := obs.ExplainInstanceChanges(events)
	if len(expl) == 0 {
		fmt.Println("no instance changes in trace")
		return nil
	}
	for i, e := range expl {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("instance change #%d at %s: node %d -> view %d (cpi %d)\n",
			i+1, stamp(e.At), e.Node, e.NewView, e.CPI)
		fmt.Printf("  reason: %s\n", e.Reason)
		switch e.Reason {
		case "throughput-delta":
			fmt.Printf("  measured ratio: %.4f (master/best-backup throughput)\n", e.Ratio)
		case "latency-lambda":
			fmt.Printf("  offending latency: %.4fs (client %d)\n", e.Value, e.Client)
		case "fairness-omega":
			fmt.Printf("  offending latency gap: %.4fs (client %d)\n", e.Value, e.Client)
		}
		if len(e.Voters) > 0 {
			fmt.Printf("  voters: %v\n", e.Voters)
		}
		if n := len(e.RatioSeries); n > 0 {
			start := n - *tail
			if start < 0 {
				start = 0
			}
			fmt.Printf("  ratio history (last %d of %d):\n", n-start, n)
			for _, p := range e.RatioSeries[start:] {
				mark := " "
				if p.Suspicious {
					mark = "!"
				}
				fmt.Printf("   %s %s ratio=%.4f throughput=%v\n", mark, stamp(p.At), p.Ratio, p.Throughput)
			}
		}
	}
	return nil
}

func formatEvent(ev obs.Event) string {
	s := fmt.Sprintf("%s node=%d %s", stamp(ev.At), ev.Node, ev.Type)
	switch ev.Type {
	case obs.EvPrePrepare, obs.EvPrepare, obs.EvCommit, obs.EvOrdered:
		s += fmt.Sprintf(" inst=%d seq=%d view=%d", ev.Instance, ev.Seq, ev.View)
		if ev.Count > 0 {
			s += fmt.Sprintf(" batch=%d", ev.Count)
		}
	case obs.EvRequestReceived, obs.EvRequestDispatched, obs.EvExecuted:
		s += fmt.Sprintf(" client=%d req=%d", ev.Client, ev.Req)
	case obs.EvVerdict:
		s += fmt.Sprintf(" reason=%s value=%.4f", ev.Reason, ev.Value)
	case obs.EvInstanceChangeStart, obs.EvInstanceChangeComplete:
		s += fmt.Sprintf(" cpi=%d reason=%s", ev.CPI, ev.Reason)
	case obs.EvNICClose, obs.EvMsgDrop:
		s += fmt.Sprintf(" peer=%d", ev.Peer)
	}
	return s
}

// stamp renders a trace timestamp. Simulator traces use virtual time near
// the epoch, where an offset reads better than a calendar date.
func stamp(t time.Time) string {
	if t.Year() < 2000 {
		return t.Sub(time.Unix(0, 0)).String()
	}
	return t.Format("15:04:05.000")
}
