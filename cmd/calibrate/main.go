// Command calibrate probes the simulator's saturation points; it is a
// development aid for tuning the cost model against the paper's numbers.
package main

import (
	"fmt"
	"os"
	"time"

	"rbft/internal/monitor"
	"rbft/internal/sim"
)

func run(size, clients int, rate float64, udp bool) {
	cfg := sim.Config{
		F: 1, Cost: sim.DefaultCostModel(), Seed: 1, UDP: udp,
		BatchSize: 64, BatchTimeout: 2 * time.Millisecond,
		Monitoring: monitor.Config{Period: 500 * time.Millisecond, Delta: 0.85, MinRequests: 50},
		Workload:   sim.StaticLoad(clients, rate, size),
		Warmup:     300 * time.Millisecond,
	}
	res := sim.New(cfg).Run(1500 * time.Millisecond)
	fmt.Printf("size=%5d clients=%3d offered=%8.0f udp=%v -> tput=%8.0f avgLat=%10v p99=%10v IC=%d\n",
		size, clients, float64(clients)*rate, udp, res.Throughput, res.AvgLatency, res.P99Latency, len(res.InstanceChanges))
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-profile" {
		if err := profileOne(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, load := range []float64{10000, 20000, 30000, 35000, 40000, 50000} {
		run(8, 10, load/10, false)
	}
	fmt.Println()
	for _, load := range []float64{2000, 4000, 5000, 6000, 8000} {
		run(4096, 10, load/10, false)
	}
	fmt.Println()
	run(8, 10, 1000, true)
	run(8, 10, 1000, false)
	fmt.Println()
	probeBaselines()
}
