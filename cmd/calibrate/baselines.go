package main

import (
	"fmt"
	"time"

	"rbft/internal/baseline"
)

// probeBaselines prints fault-free and under-attack numbers for the three
// baseline protocols at both request sizes.
func probeBaselines() {
	dur := 30 * time.Second
	for _, size := range []int{8, 4096} {
		for _, attack := range []bool{false, true} {
			w := baseline.Static(200000, size, dur)
			sp := baseline.Spinning(baseline.SpinningConfig{Attack: attack}, w)
			av := baseline.Aardvark(baseline.AardvarkConfig{Attack: attack}, w)
			pr := baseline.Prime(baseline.PrimeConfig{Attack: attack}, w)
			fmt.Printf("static size=%5d attack=%-5v spinning=%8.0f aardvark=%8.0f prime=%8.0f | lat sp=%v av=%v pr=%v\n",
				size, attack, sp.Throughput, av.Throughput, pr.Throughput, sp.AvgLatency, av.AvgLatency, pr.AvgLatency)
		}
	}
	// Dynamic workload comparison (per paper fig 1-3 dynamic curves).
	for _, size := range []int{8, 4096} {
		for _, attack := range []bool{false, true} {
			w := baseline.Dynamic(1000, size, 3*time.Second)
			sp := baseline.Spinning(baseline.SpinningConfig{Attack: attack}, w)
			av := baseline.Aardvark(baseline.AardvarkConfig{Attack: attack}, w)
			pr := baseline.Prime(baseline.PrimeConfig{Attack: attack}, w)
			fmt.Printf("dynamic size=%5d attack=%-5v spinning=%8.0f aardvark=%8.0f prime=%8.0f\n",
				size, attack, sp.Throughput, av.Throughput, pr.Throughput)
		}
	}
}
