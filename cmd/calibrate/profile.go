package main

import (
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"rbft/internal/core"
	"rbft/internal/monitor"
	"rbft/internal/pbft"
	"rbft/internal/sim"
	"rbft/internal/types"
)

// profileOne runs one representative attacked simulation under the CPU
// profiler (development aid: `go run ./cmd/calibrate -profile`).
func profileOne() error {
	f, err := os.Create("/tmp/sim.pprof")
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := sim.Config{
		F: 1, Cost: sim.DefaultCostModel(), Seed: 1,
		BatchSize: 64, BatchTimeout: 2 * time.Millisecond,
		Monitoring: monitor.Config{Period: 250 * time.Millisecond, Delta: 0.97, MinRequests: 32},
		Workload:   sim.StaticLoad(10, 2660, 8),
		Warmup:     300 * time.Millisecond,
		NodeBehavior: map[types.NodeID]core.Behavior{
			0: {
				DropPropagate: true,
				Instance: map[types.InstanceID]pbft.Behavior{
					0: {ProposeRate: 0.97 * 1.01 * 26600},
					1: {Silent: true},
				},
			},
		},
		Floods: []sim.Flood{
			{From: 0, Targets: []types.NodeID{1, 2, 3}, Size: 8192, Rate: 512},
			{FromClients: true, Targets: []types.NodeID{1, 2, 3}, Size: 4096, Rate: 2000},
		},
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	start := time.Now()
	res := sim.New(cfg).Run(500 * time.Millisecond)
	pprof.StopCPUProfile()
	fmt.Printf("wall=%v completed=%d tput=%.0f\n", time.Since(start), res.Completed, res.Throughput)
	return nil
}
