// Command rbft-client drives an rbft-node cluster: it submits one operation
// (or a benchmark burst) and prints the f+1-confirmed result.
//
//	rbft-client -id 1 -f 1 -listen 127.0.0.1:7100 \
//	    -nodes 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	    -op "PUT greeting hello"
//
// NOTE: nodes learn client addresses from their -clients flag, e.g.
// rbft-node ... -clients 1=127.0.0.1:7100
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"rbft/internal/client"
	"rbft/internal/crypto"
	"rbft/internal/runtime"
	"rbft/internal/transport"
	"rbft/internal/transport/tcpnet"
	"rbft/internal/transport/udpnet"
	"rbft/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		id         = flag.Int("id", 1, "client id")
		f          = flag.Int("f", 1, "tolerated faults")
		listen     = flag.String("listen", "127.0.0.1:7100", "listen address for replies")
		nodes      = flag.String("nodes", "", "comma-separated node addresses, index = node id")
		secret     = flag.String("secret", "rbft-demo-secret", "cluster key-derivation secret")
		udp        = flag.Bool("udp", false, "use UDP instead of TCP")
		op         = flag.String("op", "GET hello", "operation to submit (KV store: PUT k v, GET k, DEL k)")
		count      = flag.Int("n", 1, "number of times to submit the operation")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		maxClients = flag.Int("max-clients", 64, "client id space")
	)
	flag.Parse()

	cluster := types.NewConfig(*f)
	nodeList := strings.Split(*nodes, ",")
	if len(nodeList) != cluster.N {
		return fmt.Errorf("need %d node addresses, got %d", cluster.N, len(nodeList))
	}
	peerMap := make(map[string]string, cluster.N)
	for i, addr := range nodeList {
		peerMap[runtime.NodeName(types.NodeID(i))] = strings.TrimSpace(addr)
	}

	var tr transport.Transport
	var err error
	name := runtime.ClientName(types.ClientID(*id))
	if *udp {
		tr, err = udpnet.Listen(name, *listen, peerMap)
	} else {
		tr, err = tcpnet.Listen(name, *listen, peerMap)
	}
	if err != nil {
		return err
	}

	ks := crypto.NewKeyStore([]byte(*secret), cluster.N, *maxClients)
	cl := client.New(client.Config{
		Cluster:           cluster,
		ID:                types.ClientID(*id),
		RetransmitTimeout: time.Second,
	}, ks.ClientRing(types.ClientID(*id)))
	cr := runtime.StartClient(cl, tr, cluster)
	defer cr.Stop()

	var totalLatency time.Duration
	for i := 0; i < *count; i++ {
		done, err := cr.Invoke([]byte(*op), *timeout)
		if err != nil {
			return err
		}
		totalLatency += done.Latency
		if *count == 1 {
			fmt.Printf("%s\n", done.Result)
		}
	}
	if *count > 1 {
		fmt.Printf("%d requests, avg latency %v\n", *count, (totalLatency / time.Duration(*count)).Round(time.Microsecond))
	}
	return nil
}
