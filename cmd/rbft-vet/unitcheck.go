package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"rbft/tools/analyzers/framework"
)

// vetConfig mirrors the JSON configuration the go command hands to a
// -vettool (the unitchecker protocol): one compiled package, with export
// data files for all its dependencies already in the build cache.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs one go vet unit of work described by cfgFile, restricted
// to the selected analyzers.
func unitcheck(cfgFile string, selected []*framework.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rbft-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command requires the facts output file to exist even though
	// these analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("rbft-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	var applicable []*framework.Analyzer
	for _, a := range selected {
		if a.Scope(cfg.ImportPath) {
			applicable = append(applicable, a)
		}
	}
	if len(applicable) == 0 {
		return 0
	}

	pkg, err := loadUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rbft-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	var findings []finding
	record := func(analyzer string, diags []framework.Diagnostic) {
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			// The protocol invariants target shipped code; go vet also
			// feeds us test-augmented units, whose _test.go files are
			// exempt (tests may use wall clocks and unordered iteration).
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			findings = append(findings, finding{pos: pos, analyzer: analyzer, message: d.Message})
		}
	}
	for _, a := range applicable {
		diags, err := framework.Run(a, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		record(a.Name, diags)
	}
	// The annotation audit checks against the full registry's vocabulary,
	// not just the selected or applicable analyzers.
	record("annotations", framework.CheckAnnotations(pkg, framework.KnownAnnotations(analyzers)))

	if len(findings) == 0 {
		return 0
	}
	sortFindings(findings)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.pos, f.analyzer, f.message)
	}
	return 2
}

// loadUnit parses and type-checks the unit's sources against the export
// data recorded in the config.
func loadUnit(cfg *vetConfig) (*framework.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := &exportDataImporter{base: importer.ForCompiler(fset, cfg.Compiler, lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, runtime.GOARCH)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return framework.NewPackage(cfg.ImportPath, cfg.Dir, fset, files, tpkg, info), nil
}

type exportDataImporter struct {
	base types.Importer
}

func (i *exportDataImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.Import(path)
}
