// Command rbft-vet is the multichecker for the repository's protocol
// invariants. It runs the custom analyzers under tools/analyzers
// (simdeterminism, maprange, lockdiscipline, msghandler) against the
// packages each one is scoped to.
//
// Standalone:
//
//	go run ./cmd/rbft-vet ./...
//
// As a vet tool (unitchecker mode, driven by the go command's build cache):
//
//	go build -o rbft-vet ./cmd/rbft-vet
//	go vet -vettool=$(pwd)/rbft-vet ./...
//
// Exit status is non-zero when any diagnostic is reported. Suppress a
// justified false positive with a comment on (or directly above) the
// offending line:
//
//	//rbft:ignore <analyzer> -- <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/lockdiscipline"
	"rbft/tools/analyzers/maprange"
	"rbft/tools/analyzers/msghandler"
	"rbft/tools/analyzers/simdeterminism"
)

var analyzers = []*framework.Analyzer{
	simdeterminism.Analyzer,
	maprange.Analyzer,
	lockdiscipline.Analyzer,
	msghandler.Analyzer,
}

func main() {
	// The go command probes vet tools with -V=full (for its build cache
	// key) and -flags (for supported flags) before handing over a
	// unitchecker config file.
	versionFlag := flag.String("V", "", "print version (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag metadata (go vet protocol)")
	all := flag.Bool("all", false, "ignore analyzer scopes and run every analyzer on every package")
	flag.Parse()

	if *versionFlag != "" {
		fmt.Printf("rbft-vet version 1\n")
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args, *all))
}

// standalone loads the named package patterns itself and runs every
// applicable analyzer.
func standalone(patterns []string, all bool) int {
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !all && !a.Scope(pkg.PkgPath) {
				continue
			}
			diags, err := framework.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			for _, d := range diags {
				fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				exit = 1
			}
		}
	}
	return exit
}
