// Command rbft-vet is the multichecker for the repository's protocol
// invariants. It runs the custom analyzers under tools/analyzers
// (simdeterminism, maprange, lockdiscipline, msghandler, quorumsafety,
// trustboundary, pipeblock) against the packages each one is scoped to,
// and rejects any //rbft: source annotation no analyzer understands.
//
// Standalone:
//
//	go run ./cmd/rbft-vet ./...
//	go run ./cmd/rbft-vet -analyzers=quorumsafety,pipeblock ./...
//
// As a vet tool (unitchecker mode, driven by the go command's build cache):
//
//	go build -o rbft-vet ./cmd/rbft-vet
//	go vet -vettool=$(pwd)/rbft-vet ./...
//
// Diagnostics are printed in a stable order (file, line, column, analyzer)
// so runs diff cleanly. Exit status is non-zero when any diagnostic is
// reported. Suppress a justified false positive with a comment on (or
// directly above) the offending line:
//
//	//rbft:ignore <analyzer> -- <reason>
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/lockdiscipline"
	"rbft/tools/analyzers/maprange"
	"rbft/tools/analyzers/msghandler"
	"rbft/tools/analyzers/pipeblock"
	"rbft/tools/analyzers/quorumsafety"
	"rbft/tools/analyzers/simdeterminism"
	"rbft/tools/analyzers/trustboundary"
)

var analyzers = []*framework.Analyzer{
	simdeterminism.Analyzer,
	maprange.Analyzer,
	lockdiscipline.Analyzer,
	msghandler.Analyzer,
	quorumsafety.Analyzer,
	trustboundary.Analyzer,
	pipeblock.Analyzer,
}

func main() {
	// The go command probes vet tools with -V=full (for its build cache
	// key) and -flags (for supported flags) before handing over a
	// unitchecker config file.
	versionFlag := flag.String("V", "", "print version (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag metadata (go vet protocol)")
	all := flag.Bool("all", false, "ignore analyzer scopes and run every analyzer on every package")
	subset := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all registered)")
	flag.Parse()

	if *versionFlag != "" {
		fmt.Printf("rbft-vet version 1\n")
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	selected, err := selectAnalyzers(*subset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], selected))
	}
	os.Exit(standalone(args, selected, *all))
}

// selectAnalyzers resolves the -analyzers flag against the registry. The
// empty subset means every registered analyzer.
func selectAnalyzers(subset string) ([]*framework.Analyzer, error) {
	if subset == "" {
		return analyzers, nil
	}
	byName := make(map[string]*framework.Analyzer, len(analyzers))
	var names []string
	for _, a := range analyzers {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var selected []*framework.Analyzer
	for _, name := range strings.Split(subset, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("rbft-vet: unknown analyzer %q (registered: %s)", name, strings.Join(names, ", "))
		}
		selected = append(selected, a)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("rbft-vet: -analyzers=%q selects nothing", subset)
	}
	return selected, nil
}

// finding is one diagnostic tagged with its analyzer for stable ordering.
type finding struct {
	pos      token.Position
	analyzer string
	message  string
}

func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
}

// standalone loads the named package patterns itself, runs every applicable
// selected analyzer, audits //rbft: annotations, and prints the findings in
// stable order.
func standalone(patterns []string, selected []*framework.Analyzer, all bool) int {
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The annotation audit always checks against every registered
	// analyzer's vocabulary: running a subset must not make the other
	// analyzers' annotations "unknown".
	known := framework.KnownAnnotations(analyzers)

	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range selected {
			if !all && !a.Scope(pkg.PkgPath) {
				continue
			}
			diags, err := framework.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			for _, d := range diags {
				findings = append(findings, finding{pos: pkg.Fset.Position(d.Pos), analyzer: a.Name, message: d.Message})
			}
		}
		for _, d := range framework.CheckAnnotations(pkg, known) {
			findings = append(findings, finding{pos: pkg.Fset.Position(d.Pos), analyzer: "annotations", message: d.Message})
		}
	}
	if len(findings) == 0 {
		return 0
	}
	sortFindings(findings)
	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", f.pos, f.analyzer, f.message)
	}
	return 1
}
