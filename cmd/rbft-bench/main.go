// Command rbft-bench regenerates the RBFT paper's tables and figures.
//
// Usage:
//
//	rbft-bench [-exp all|table1|fig1|fig2|fig3|fig7a|fig7b|fig8|fig9|fig10|fig11|fig12|ablation|bench] [-quick] [-seed N]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// The "bench" experiment runs a small fixed scenario suite (fault-free plus
// both worst attacks) and, with -json, writes the machine-readable summary
// CI tracks as BENCH_sim.json. With -trace it also dumps the worst-attack-1
// run's JSONL protocol trace for rbft-trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"rbft/internal/harness"
	"rbft/internal/obs"
)

var (
	benchJSON  string
	benchTrace string
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig1, fig2, fig3, fig7a, fig7b, fig8, fig9, fig10, fig11, fig12, ablation, bench)")
	quick := flag.Bool("quick", false, "shorter runs (smoke mode)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.StringVar(&csvDir, "csv", "", "directory to write plot-ready CSV data files (optional)")
	flag.StringVar(&benchJSON, "json", "", "file for the bench experiment's JSON summary (e.g. BENCH_sim.json)")
	flag.StringVar(&benchTrace, "trace", "", "file for the bench experiment's worst-attack-1 JSONL protocol trace")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address while experiments run (e.g. localhost:6060; empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		// Profiling a long -exp all run: the simulator is single-threaded per
		// run, so CPU profiles attribute cleanly to pipeline stages.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	if err := run(*exp, harness.Options{Quick: *quick, Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(exp string, o harness.Options) error {
	experiments := []struct {
		name string
		fn   func(harness.Options)
	}{
		{"table1", runTable1},
		{"fig1", runFig1},
		{"fig2", runFig2},
		{"fig3", runFig3},
		{"fig7a", func(o harness.Options) { runFig7(8, o) }},
		{"fig7b", func(o harness.Options) { runFig7(4096, o) }},
		{"fig8", runFig8},
		{"fig9", runFig9},
		{"fig10", runFig10},
		{"fig11", runFig11},
		{"fig12", runFig12},
		{"ablation", runAblation},
		{"bench", runBench},
	}
	if exp == "all" {
		for _, e := range experiments {
			start := time.Now()
			e.fn(o)
			fmt.Printf("  [%s took %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}
	for _, e := range experiments {
		if e.name == exp {
			e.fn(o)
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func runTable1(o harness.Options) {
	fmt.Print(harness.FormatTable1(harness.Table1(o)))
	fmt.Println("  (paper: Prime 78%, Aardvark 87%, Spinning 99%)")
}

func runFig1(o harness.Options) {
	c := harness.Figure1(o)
	fmt.Print(c)
	relativeCurveCSV("fig1_prime", c)
	fmt.Println("  (paper fig 1: drops to ~22%, rising with request size)")
}

func runFig2(o harness.Options) {
	c := harness.Figure2(o)
	fmt.Print(c)
	relativeCurveCSV("fig2_aardvark", c)
	fmt.Println("  (paper fig 2: static >=76%, dynamic down to 13%)")
}

func runFig3(o harness.Options) {
	c := harness.Figure3(o)
	fmt.Print(c)
	relativeCurveCSV("fig3_spinning", c)
	fmt.Println("  (paper fig 3: static ~1%, dynamic ~4.5%)")
}

func runFig7(size int, o harness.Options) {
	fmt.Printf("Figure 7 (%dB requests): latency vs throughput, fault-free, f=1\n", size)
	curves := harness.Figure7(size, o)
	for _, c := range curves {
		fmt.Print(c)
	}
	latencyCurvesCSV(fmt.Sprintf("fig7_%dB", size), curves)
	if size == 8 {
		fmt.Println("  (paper fig 7a: peaks ~ RBFT 35k, Aardvark 31.6k, Spinning +20%, Prime ~12k w/ ~10x latency)")
	} else {
		fmt.Println("  (paper fig 7b: peaks ~ RBFT 5k, Aardvark 1.7k, Spinning +30%)")
	}
}

func runFig8(o harness.Options) {
	for _, f := range []int{1, 2} {
		c := harness.Figure8(f, o)
		fmt.Print(c)
		attackCurveCSV(fmt.Sprintf("fig8_f%d", f), c)
		fmt.Printf("  instance changes during attack: %d (attack avoids detection)\n", c.InstanceChanges)
	}
	fmt.Println("  (paper fig 8: loss <=2.2% at f=1, <=0.4% at f=2)")
}

func runFig9(o harness.Options) {
	fmt.Println("Figure 9: per-node monitor readings, worst-attack-1 (f=1, static, 4kB)")
	rs := harness.Figure9(o)
	fmt.Print(harness.FormatNodeReadings(rs))
	nodeReadingsCSV("fig9", rs)
	fmt.Println("  (paper fig 9: all correct nodes read ~5 kreq/s, master ~= backup within 2%)")
}

func runFig10(o harness.Options) {
	for _, f := range []int{1, 2} {
		c := harness.Figure10(f, o)
		fmt.Print(c)
		attackCurveCSV(fmt.Sprintf("fig10_f%d", f), c)
		fmt.Printf("  instance changes during attack: %d (smart attacker stays above Delta)\n", c.InstanceChanges)
	}
	fmt.Println("  (paper fig 10: loss <3% at f=1, <1% at f=2)")
}

func runFig11(o harness.Options) {
	fmt.Println("Figure 11: per-node monitor readings, worst-attack-2 (f=1, static, 4kB)")
	rs := harness.Figure11(o)
	fmt.Print(harness.FormatNodeReadings(rs))
	nodeReadingsCSV("fig11", rs)
	fmt.Println("  (paper fig 11: master ~= backup on all correct nodes)")
}

func runFig12(o harness.Options) {
	r := harness.Figure12(o)
	unfairSeriesCSV("fig12", r)
	fmt.Printf("Figure 12: unfair primary, Lambda=%v\n", r.Lambda)
	fmt.Printf("  %d requests ordered; max latency of attacked client %v\n", len(r.Series), r.MaxAttackedLatency)
	if r.InstanceChangeAt >= 0 {
		fmt.Printf("  instance change after request %d (latency exceeded Lambda)\n", r.InstanceChangeAt)
	} else {
		fmt.Println("  no instance change (attack stayed under Lambda)")
	}
	// Print a compact series: every k-th point per client.
	step := len(r.Series) / 40
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Series); i += step {
		rec := r.Series[i]
		fmt.Printf("  req %4d client %d latency %8.3f ms\n",
			i, rec.Client, float64(rec.Latency)/1e6)
	}
	fmt.Println("  (paper fig 12: 0.8ms fair, 1.3ms unfair, instance change at the 1.6ms request)")
}

func runBench(o harness.Options) {
	fmt.Println("Bench: scenario suite (f=1, 8B requests)")
	var results []harness.BenchResult
	for _, sc := range harness.BenchScenarios(o) {
		if benchTrace != "" && sc.Name == "worst-attack-1" {
			f, err := os.Create(benchTrace)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w := obs.NewJSONLWriter(f)
			sc.Config.Trace = w
			results = append(results, harness.RunBench(sc))
			if err := w.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "writing trace:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s (inspect with rbft-trace explain)\n", benchTrace)
		} else {
			results = append(results, harness.RunBench(sc))
		}
		r := results[len(results)-1]
		fmt.Printf("  %-16s %8.0f req/s  p50 %7.3f ms  p99 %7.3f ms  instance changes %d\n",
			r.Scenario, r.Throughput, r.P50LatencyMS, r.P99LatencyMS, r.InstanceChanges)
	}
	if benchJSON != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(benchJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", benchJSON)
	}
}

func runAblation(o harness.Options) {
	r := harness.AblationOrderedPayload(o)
	fmt.Printf("Ablation: ordering request identifiers vs full requests (4kB, f=1)\n")
	fmt.Printf("  identifiers:   %8.0f req/s\n", r.IdentifiersThroughput)
	fmt.Printf("  full requests: %8.0f req/s\n", r.FullThroughput)
	fmt.Println("  (paper section VI-B: 5 kreq/s vs 1.8 kreq/s)")
}
