package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"rbft/internal/harness"
)

// csvDir is set by the -csv flag; experiments write plot-ready data files
// into it when non-empty.
var csvDir string

// writeCSV writes rows (first row = header) to <csvDir>/<name>.csv.
func writeCSV(name string, rows [][]string) {
	if csvDir == "" {
		return
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	path := filepath.Join(csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	fmt.Printf("  wrote %s\n", path)
}

func relativeCurveCSV(name string, c harness.RelativeCurve) {
	rows := [][]string{{"size_bytes", "static_pct", "dynamic_pct"}}
	for i, s := range c.Sizes {
		rows = append(rows, []string{
			strconv.Itoa(s),
			fmt.Sprintf("%.2f", c.StaticPct[i]),
			fmt.Sprintf("%.2f", c.DynamicPct[i]),
		})
	}
	writeCSV(name, rows)
}

func attackCurveCSV(name string, c harness.AttackCurve) {
	rows := [][]string{{"size_bytes", "static_pct", "dynamic_pct"}}
	for i, s := range c.Sizes {
		rows = append(rows, []string{
			strconv.Itoa(s),
			fmt.Sprintf("%.2f", c.StaticPct[i]),
			fmt.Sprintf("%.2f", c.DynamicPct[i]),
		})
	}
	writeCSV(name, rows)
}

func latencyCurvesCSV(name string, curves []harness.LatencyCurve) {
	rows := [][]string{{"system", "throughput_kreq_s", "latency_ms"}}
	for _, c := range curves {
		for _, p := range c.Points {
			rows = append(rows, []string{
				c.System,
				fmt.Sprintf("%.3f", p.ThroughputKreqS),
				fmt.Sprintf("%.4f", p.LatencyMs),
			})
		}
	}
	writeCSV(name, rows)
}

func nodeReadingsCSV(name string, rs []harness.NodeReading) {
	rows := [][]string{{"node", "master_kreq_s", "backup_kreq_s"}}
	for _, r := range rs {
		rows = append(rows, []string{
			strconv.Itoa(int(r.Node)),
			fmt.Sprintf("%.3f", r.MasterKreqS),
			fmt.Sprintf("%.3f", r.AvgBackupKreqS),
		})
	}
	writeCSV(name, rows)
}

func unfairSeriesCSV(name string, r harness.UnfairResult) {
	rows := [][]string{{"index", "client", "latency_ms", "exceeds_lambda"}}
	for i, rec := range r.Series {
		rows = append(rows, []string{
			strconv.Itoa(i),
			strconv.Itoa(int(rec.Client)),
			fmt.Sprintf("%.4f", float64(rec.Latency)/1e6),
			strconv.FormatBool(rec.Latency > r.Lambda),
		})
	}
	writeCSV(name, rows)
}
