#!/bin/sh
# CI gate: build, stock vet, the protocol-invariant analyzers, the test
# suite, and the race detector over the concurrent packages. Every step
# must pass; see docs/STATIC_ANALYSIS.md for what rbft-vet enforces.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== rbft-vet ./... =="
go run ./cmd/rbft-vet ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/runtime/... ./internal/transport/... ./internal/client/... ./internal/obs/... ./internal/wal/...

echo "== fuzz smoke (internal/message, internal/wal) =="
go test ./internal/message -run '^$' -fuzz '^FuzzDecode$' -fuzztime 5s
go test ./internal/message -run '^$' -fuzz '^FuzzPreverify$' -fuzztime 5s
go test ./internal/wal -run '^$' -fuzz '^FuzzWALReplay$' -fuzztime 5s

echo "== bench smoke (BENCH_sim.json) =="
go run ./cmd/rbft-bench -exp bench -quick -json BENCH_sim.json

echo "CI gate passed."
