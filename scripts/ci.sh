#!/bin/sh
# CI gate: build, stock vet, the protocol-invariant analyzers, the test
# suite, and the race detector over the concurrent packages. Every step
# must pass; see docs/STATIC_ANALYSIS.md for what rbft-vet enforces.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== rbft-vet ./... =="
go run ./cmd/rbft-vet ./...

echo "== vet-fixtures (analyzer self-tests) =="
go test ./tools/analyzers/...

echo "== go test ./... =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/runtime/... ./internal/transport/... ./internal/client/... ./internal/obs/... ./internal/wal/... ./internal/exec/...

echo "== fuzz smoke (internal/message, internal/wal, internal/transport, internal/core, internal/exec, internal/client) =="
go test ./internal/message -run '^$' -fuzz '^FuzzDecode$' -fuzztime 5s
go test ./internal/message -run '^$' -fuzz '^FuzzPreverify$' -fuzztime 5s
go test ./internal/wal -run '^$' -fuzz '^FuzzWALReplay$' -fuzztime 5s
go test ./internal/transport -run '^$' -fuzz '^FuzzFrameBatch$' -fuzztime 5s
go test ./internal/core -run '^$' -fuzz '^FuzzMergeSchedule$' -fuzztime 5s
go test ./internal/exec -run '^$' -fuzz '^FuzzWaveSchedule$' -fuzztime 5s
go test ./internal/client -run '^$' -fuzz '^FuzzReadQuorum$' -fuzztime 5s

echo "== allocation gate (zero-alloc steady-state encode, docs/EGRESS.md) =="
go test ./internal/message -run '^TestEncodeZeroAlloc$' -count=1 -v
go test ./internal/message -run '^$' -bench '^(BenchmarkMarshal|BenchmarkEncode)$' -benchtime 100x -benchmem
go test ./internal/runtime -run '^$' -bench '^BenchmarkEgress$' -benchtime 100x -benchmem

echo "== span-record gate (tracing-off cost must stay trivial) =="
go test ./internal/obs -run '^$' -bench '^BenchmarkSpanRecord$' -benchtime 100x -benchmem

echo "== bench smoke (BENCH_sim.json) =="
go run ./cmd/rbft-bench -exp bench -quick -json BENCH_sim.json
# The frontdoor pair must be part of the gated suite: TestBenchFrontdoorSpeedup
# (go test above) pins speculative >= 1.5x ordered, and the JSON must carry
# both scenarios so regressions show up in the tracked artifact.
grep -q '"frontdoor-ordered"' BENCH_sim.json
grep -q '"frontdoor-speculative"' BENCH_sim.json

echo "== rbft-trace smoke (summary / critical-path / attribute) =="
go run ./cmd/rbft-bench -exp bench -quick -trace TRACE_smoke.jsonl >/dev/null
go run ./cmd/rbft-trace summary TRACE_smoke.jsonl >/dev/null
go run ./cmd/rbft-trace critical-path -top 3 TRACE_smoke.jsonl >/dev/null
go run ./cmd/rbft-trace attribute TRACE_smoke.jsonl >/dev/null
rm -f TRACE_smoke.jsonl

echo "CI gate passed."
