#!/bin/sh
# Reproduce the paper: full test suite, benchmark harness, and every
# table/figure at paper scale. Writes test_output.txt, bench_output.txt and
# bench_full.txt in the repository root.
set -eu
cd "$(dirname "$0")/.."

# Gate the reproduction on the CI checks (build, vet, protocol-invariant
# analyzers, tests, race detector) so figures are never produced from a
# tree that violates the determinism or locking invariants.
./scripts/ci.sh

echo "== go test ./... =="
go test ./... 2>&1 | tee test_output.txt

echo "== go test -bench=. -benchmem =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

echo "== rbft-bench -exp all =="
go run ./cmd/rbft-bench -exp all 2>&1 | tee bench_full.txt
