package core

import (
	"testing"
	"time"

	"rbft/internal/message"
	"rbft/internal/obs"
	"rbft/internal/types"
)

// testEvictedClientRetransmission drives a bounded client table until an
// executed client is evicted, then retransmits its request: the executed
// watermark (which survives eviction) must turn the retransmission into a
// clean drop — never a second execution, never a re-entry into ordering.
func testEvictedClientRetransmission(t *testing.T, mode types.OrderingMode) {
	t.Helper()
	reg := obs.NewRegistry()
	nc := newNodeCluster(t, 1, func(c *Config) {
		c.OrderingMode = mode
		c.MaxClients = 2
		c.ClientShards = 1
	})
	nc.nodes[0].SetRegistry(reg)

	req := nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 7})
	nc.runFor(100 * time.Millisecond)
	if got := len(nc.completed[1]); got != 1 {
		t.Fatalf("client 1 completed %d requests, want 1", got)
	}

	// Churn other clients through the two-entry table until client 1 falls
	// off the LRU.
	for id := types.ClientID(2); id <= 5; id++ {
		nc.sendRequest(id, []byte{0, 0, 0, 0, 0, 0, 0, 1})
		nc.runFor(100 * time.Millisecond)
	}
	if got := nc.nodes[0].ClientCount(); got > 2 {
		t.Fatalf("client table holds %d entries, bound 2", got)
	}
	if got := reg.Counter(obs.LabeledName("rbft_client_evictions_total", "shard", "0")).Value(); got == 0 {
		t.Fatal("churn past the table bound evicted nothing; the scenario is vacuous")
	}

	// Retransmit client 1's executed request to node 0 directly.
	before := nc.apps[0].Total(1)
	out := nc.nodes[0].OnClientRequest(req, nc.now)
	if nc.apps[0].Total(1) != before {
		t.Fatal("retransmission after eviction re-executed the request")
	}
	for _, nm := range out.NodeMsgs {
		if nm.Msg.MsgType() == message.TypePropagate {
			t.Fatal("retransmission after eviction re-entered ordering via PROPAGATE")
		}
	}

	// And through the whole cluster: totals stay put and every node keeps the
	// identical execution history.
	for _, n := range nc.cfg.AllNodes() {
		nc.queue = append(nc.queue, clusterEvent{
			isClient: true, fromClient: 1, toNode: n, nodeDst: true, msg: req,
		})
	}
	nc.runFor(200 * time.Millisecond)
	if nc.apps[0].Total(1) != before {
		t.Fatalf("cluster-wide retransmission changed client 1's total: %d -> %d",
			before, nc.apps[0].Total(1))
	}
	for i := 1; i < nc.cfg.N; i++ {
		if nc.apps[i].Fingerprint() != nc.apps[0].Fingerprint() {
			t.Fatalf("node %d execution fingerprint diverged after the retransmission", i)
		}
	}
}

func TestEvictedClientRetransmissionMasterOnly(t *testing.T) {
	testEvictedClientRetransmission(t, types.OrderingMasterOnly)
}

func TestEvictedClientRetransmissionMultiPrimary(t *testing.T) {
	testEvictedClientRetransmission(t, types.OrderingMultiPrimary)
}
