package core

import (
	"math/rand"
	"testing"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/types"
)

// TestByzantineTrafficNeverBreaksSafety is the adversarial fuzz test: one
// faulty node injects random protocol messages — some structurally valid
// with correct MACs, some corrupted — interleaved with legitimate client
// traffic. Whatever it sends, the correct nodes must (a) never execute
// divergent sequences, (b) never execute a request that no client signed,
// and (c) never panic.
func TestByzantineTrafficNeverBreaksSafety(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			runByzantineFuzz(t, seed)
		})
	}
}

func runByzantineFuzz(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nc := newNodeCluster(t, 1, func(c *Config) {
		c.BatchSize = 4
		c.FloodThreshold = 1 << 30 // keep the byzantine node's NIC open
	})
	attacker := types.NodeID(3)
	attackerRing := nc.ks.NodeRing(attacker)

	legit := 0
	for round := 0; round < 60; round++ {
		switch rng.Intn(4) {
		case 0: // legitimate request
			nc.sendRequest(types.ClientID(1+rng.Intn(2)), []byte{0, 0, 0, 0, 0, 0, 0, 1})
			legit++
		case 1: // byzantine protocol message with a valid MAC
			msg := randomProtocolMessage(rng, attacker, nc.cfg)
			authenticate(msg, attackerRing, nc.cfg.N)
			target := types.NodeID(rng.Intn(3))
			nc.queue = append(nc.queue, clusterEvent{fromNode: attacker, toNode: target, nodeDst: true, msg: msg})
		case 2: // corrupted wire bytes re-decoded (malformed fields)
			msg := randomProtocolMessage(rng, attacker, nc.cfg)
			authenticate(msg, attackerRing, nc.cfg.N)
			wire := msg.Marshal(nil)
			if len(wire) > 2 {
				wire[rng.Intn(len(wire))] ^= byte(1 + rng.Intn(255))
			}
			if decoded, err := message.Decode(wire); err == nil {
				target := types.NodeID(rng.Intn(3))
				nc.queue = append(nc.queue, clusterEvent{fromNode: attacker, toNode: target, nodeDst: true, msg: decoded})
			}
		case 3: // forged client request from the faulty node (bad signature)
			req := &message.Request{
				Client: types.ClientID(3 + rng.Intn(2)),
				ID:     types.RequestID(rng.Intn(5)),
				Op:     []byte("forged"),
				Sig:    make([]byte, 64),
			}
			rng.Read(req.Sig)
			p := &message.Propagate{Req: *req, Node: attacker}
			p.Auth = attackerRing.AuthenticatorForNodes(nc.cfg.N, p.Body())
			target := types.NodeID(rng.Intn(3))
			nc.queue = append(nc.queue, clusterEvent{fromNode: attacker, toNode: target, nodeDst: true, msg: p})
		}
		nc.runFor(5 * time.Millisecond)
	}
	nc.runFor(300 * time.Millisecond)

	// (a) identical execution sequences on all correct nodes.
	for n := 1; n < 3; n++ {
		if !sameRefs(nc.executed[0], nc.executed[types.NodeID(n)]) {
			t.Fatalf("seed %d: node %d executed a different sequence", seed, n)
		}
	}
	// (b) nothing forged executed: counters only moved for clients 1 and 2.
	for _, a := range nc.apps[:3] {
		if a.Total(3) != 0 || a.Total(4) != 0 {
			t.Fatalf("seed %d: forged request executed", seed)
		}
	}
	// (c) all legitimate requests eventually completed.
	done := len(nc.completed[1]) + len(nc.completed[2])
	if done != legit {
		t.Fatalf("seed %d: %d of %d legitimate requests completed", seed, done, legit)
	}
}

// randomProtocolMessage builds a structurally plausible instance message
// with adversarial field values.
func randomProtocolMessage(rng *rand.Rand, from types.NodeID, cfg types.Config) message.Message {
	inst := types.InstanceID(rng.Intn(cfg.Instances() + 1)) // may be out of range
	view := types.View(rng.Intn(3))
	seq := types.SeqNum(rng.Intn(20))
	var digest types.Digest
	rng.Read(digest[:])
	refs := make([]types.RequestRef, rng.Intn(3))
	for i := range refs {
		refs[i] = types.RequestRef{
			Client: types.ClientID(rng.Intn(4)),
			ID:     types.RequestID(rng.Intn(10)),
			Digest: digest,
		}
	}
	switch rng.Intn(6) {
	case 0:
		return &message.PrePrepare{Instance: inst, View: view, Seq: seq, Batch: refs, Node: from}
	case 1:
		return &message.Prepare{Instance: inst, View: view, Seq: seq, Digest: digest, Node: from}
	case 2:
		return &message.Commit{Instance: inst, View: view, Seq: seq, Digest: digest, Node: from}
	case 3:
		return &message.Checkpoint{Instance: inst, Seq: seq, Digest: digest, Node: from}
	case 4:
		return &message.InstanceChange{CPI: uint64(rng.Intn(3)), Node: from}
	default:
		vc := &message.ViewChange{Instance: inst, NewView: view, StableSeq: seq, Node: from}
		vc.Sig = make([]byte, 64)
		rng.Read(vc.Sig)
		return vc
	}
}

// authenticate attaches a valid MAC authenticator where the type carries one.
func authenticate(msg message.Message, ring *crypto.KeyRing, n int) {
	switch m := msg.(type) {
	case *message.PrePrepare:
		m.Auth = ring.AuthenticatorForNodes(n, m.Body())
	case *message.Prepare:
		m.Auth = ring.AuthenticatorForNodes(n, m.Body())
	case *message.Commit:
		m.Auth = ring.AuthenticatorForNodes(n, m.Body())
	case *message.Checkpoint:
		m.Auth = ring.AuthenticatorForNodes(n, m.Body())
	case *message.InstanceChange:
		m.Auth = ring.AuthenticatorForNodes(n, m.Body())
	}
}

// TestEquivocatingClientDoesNotDiverge: a faulty client sends two different
// operations under the same request id to different nodes. At most one may
// execute, and all correct nodes must agree which.
func TestEquivocatingClientDoesNotDiverge(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	cl := nc.client(1)
	reqA := cl.NewRequest([]byte{0, 0, 0, 0, 0, 0, 0, 1}, nc.now)
	// Forge a sibling with the same id but different op, properly signed
	// (the client is faulty, so it signs both).
	reqB := &message.Request{Client: 1, ID: reqA.ID, Op: []byte{0, 0, 0, 0, 0, 0, 0, 9}}
	ring := nc.ks.ClientRing(1)
	reqB.Sig = ring.Sign(reqB.SignedBody())
	body := reqB.Body()
	reqB.Auth = make(crypto.Authenticator, nc.cfg.N)
	for i := range reqB.Auth {
		reqB.Auth[i] = ring.MACForNode(types.NodeID(i), body)
	}
	// A and B go to disjoint node subsets.
	for _, n := range []types.NodeID{0, 1} {
		nc.queue = append(nc.queue, clusterEvent{isClient: true, fromClient: 1, toNode: n, nodeDst: true, msg: reqA})
	}
	for _, n := range []types.NodeID{2, 3} {
		nc.queue = append(nc.queue, clusterEvent{isClient: true, fromClient: 1, toNode: n, nodeDst: true, msg: reqB})
	}
	nc.runFor(300 * time.Millisecond)

	for n := 1; n < nc.cfg.N; n++ {
		if !sameRefs(nc.executed[0], nc.executed[types.NodeID(n)]) {
			t.Fatalf("node %d diverged under client equivocation", n)
		}
	}
	if total := nc.apps[0].Total(1); total != 1 && total != 9 && total != 10 {
		t.Fatalf("unexpected counter %d under equivocation", total)
	}
	for i := 1; i < nc.cfg.N; i++ {
		if nc.apps[i].Total(1) != nc.apps[0].Total(1) {
			t.Fatalf("node %d counter %d != node 0 counter %d",
				i, nc.apps[i].Total(1), nc.apps[0].Total(1))
		}
	}
}
