package core

import (
	"testing"
	"time"

	"rbft/internal/app"
	"rbft/internal/message"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// durableConfig rebuilds the exact node configuration newNodeCluster uses,
// with durability on, for constructing a post-crash replacement node.
func durableConfig(nc *nodeCluster, id types.NodeID, counter *app.Counter, tweak func(*Config)) Config {
	c := Config{
		Cluster:      nc.cfg,
		Node:         id,
		App:          counter,
		BatchSize:    8,
		BatchTimeout: time.Millisecond,
		Durable:      true,
	}
	c.Monitoring.Period = 50 * time.Millisecond
	c.Monitoring.Delta = 0.5
	c.Monitoring.MinRequests = 5
	if tweak != nil {
		tweak(&c)
	}
	return c
}

// replayOf adapts an in-memory record slice to the Restore replay contract,
// standing in for (*wal.Log).Replay.
func replayOf(recs []wal.Record) func(func(wal.Record) error) error {
	return func(fn func(wal.Record) error) error {
		for _, r := range recs {
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestDurableRestartRecoversNode runs a durable cluster under load, "crashes"
// one node by throwing it away, rebuilds it from its accumulated WAL records,
// and checks that the recovered node has the same application state, never
// re-executes, and keeps making progress with the rest of the cluster.
func TestDurableRestartRecoversNode(t *testing.T) {
	// Frequent checkpoints so the restarted node's delivery gap is revealed
	// by checkpoint evidence and filled through the fetch machinery.
	nc := newNodeCluster(t, 1, func(c *Config) {
		c.Durable = true
		c.CheckpointInterval = 2
	})
	const victim = types.NodeID(2)

	var firstReq *message.Request
	for i := 0; i < 20; i++ {
		req := nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 2}) // +2 each
		if i == 0 {
			firstReq = req
		}
	}
	nc.runFor(200 * time.Millisecond)
	if got := len(nc.completed[1]); got != 20 {
		t.Fatalf("client completed %d requests before crash, want 20", got)
	}

	recs := nc.records[victim]
	if len(recs) == 0 {
		t.Fatal("durable node emitted no WAL records")
	}
	kinds := make(map[wal.Kind]int)
	for _, r := range recs {
		kinds[r.Kind]++
	}
	for _, want := range []wal.Kind{wal.KindSentPrepare, wal.KindSentCommit, wal.KindExecuted} {
		if kinds[want] == 0 {
			t.Fatalf("no %v records in the durable log (kinds: %v)", want, kinds)
		}
	}
	if kinds[wal.KindExecuted] != len(nc.executed[victim]) {
		t.Fatalf("logged %d executions, node reported %d", kinds[wal.KindExecuted], len(nc.executed[victim]))
	}

	// Crash: the old node object is discarded; only the records survive.
	oldFP := nc.apps[victim].Fingerprint()
	oldTotal := nc.apps[victim].Total(1)
	counter := app.NewCounter()
	restored := New(durableConfig(nc, victim, counter, func(c *Config) { c.CheckpointInterval = 2 }), nc.ks.NodeRing(victim))
	stats, err := restored.Restore(replayOf(recs))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if stats.Records != len(recs) {
		t.Fatalf("Restore replayed %d records, want %d", stats.Records, len(recs))
	}
	if stats.Executed != len(nc.executed[victim]) {
		t.Fatalf("Restore redid %d executions, want %d", stats.Executed, len(nc.executed[victim]))
	}
	if counter.Fingerprint() != oldFP {
		t.Fatal("restored application fingerprint differs from pre-crash state")
	}
	if counter.Total(1) != oldTotal {
		t.Fatalf("restored counter total = %d, want %d", counter.Total(1), oldTotal)
	}

	// A retransmission of an already-executed request must hit the restored
	// reply cache: one reply, zero executions.
	out := restored.OnClientRequest(firstReq, nc.now)
	if len(out.Executions) != 0 {
		t.Fatal("restored node re-executed a pre-crash request")
	}
	if len(out.ClientMsgs) != 1 {
		t.Fatalf("expected 1 cached reply, got %d client messages", len(out.ClientMsgs))
	}

	// Rejoin and keep going.
	nc.nodes[victim] = restored
	nc.apps[victim] = counter
	for i := 0; i < 10; i++ {
		nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 2})
	}
	nc.runFor(300 * time.Millisecond)
	if got := len(nc.completed[1]); got != 30 {
		t.Fatalf("client completed %d requests after restart, want 30", got)
	}
	if total := counter.Total(1); total != 60 {
		t.Fatalf("restored node counter total = %d, want 60 (each request executed exactly once)", total)
	}
	for i := 0; i < nc.cfg.N; i++ {
		if nc.apps[i].Fingerprint() != nc.apps[0].Fingerprint() {
			t.Fatalf("node %d fingerprint diverged after restart", i)
		}
	}
}

// TestRestoreRejectsTamperedExecution checks the digest binding on executed
// records: an op swapped on disk must fail recovery as corruption.
func TestRestoreRejectsTamperedExecution(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) { c.Durable = true })
	for i := 0; i < 8; i++ {
		nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 1})
	}
	nc.runFor(200 * time.Millisecond)
	recs := append([]wal.Record(nil), nc.records[0]...)
	tampered := false
	for i := range recs {
		if recs[i].Kind == wal.KindExecuted {
			recs[i].Op = []byte{0, 0, 0, 0, 0, 0, 0, 99}
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no executed record to tamper with")
	}
	restored := New(durableConfig(nc, 0, app.NewCounter(), nil), nc.ks.NodeRing(0))
	if _, err := restored.Restore(replayOf(recs)); err == nil {
		t.Fatal("Restore accepted a tampered executed record")
	}
}

// TestRestoreInstanceChange checks the node-level cpi/view round trip.
func TestRestoreInstanceChange(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) { c.Durable = true })
	recs := []wal.Record{
		{Kind: wal.KindInstanceChange, CPI: 3, View: 3},
	}
	restored := New(durableConfig(nc, 1, app.NewCounter(), nil), nc.ks.NodeRing(1))
	stats, err := restored.Restore(replayOf(recs))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if stats.CPI != 3 || stats.View != 3 {
		t.Fatalf("restored cpi=%d view=%d, want 3/3", stats.CPI, stats.View)
	}
	for i, r := range restored.replicas {
		if r.View() != 3 {
			t.Fatalf("replica %d view = %d after restore, want 3", i, r.View())
		}
	}
}

// TestRestoreRejectsOutOfRangeInstance guards the replica index.
func TestRestoreRejectsOutOfRangeInstance(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) { c.Durable = true })
	restored := New(durableConfig(nc, 0, app.NewCounter(), nil), nc.ks.NodeRing(0))
	bad := []wal.Record{{Kind: wal.KindSentPrepare, Instance: 99, Seq: 1}}
	if _, err := restored.Restore(replayOf(bad)); err == nil {
		t.Fatal("Restore accepted a record for a nonexistent instance")
	}
}
