package core

import (
	"container/list"
	"sync"

	"rbft/internal/obs"
	"rbft/internal/types"
)

// The client table is the node's front door state: per-client verification,
// reply-cache and admission bookkeeping for every client the node has heard
// from. It is sharded by client ID into lock-striped shards so that (a) a
// million distinct clients cannot serialize the ingress path on one mutex —
// admission control runs concurrently with the apply stage — and (b) the
// table can enforce a global client-count bound with per-shard LRU eviction
// instead of growing without limit (docs/CLIENTS.md).
//
// Eviction is safe because nothing in a clientState is needed for
// correctness once the client is quiescent:
//
//   - Verification state is rebuilt through the normal preverify path when
//     an evicted client retransmits (a blacklisted client that is evicted and
//     returns simply fails signature verification again).
//   - The reply cache is an optimisation; losing it turns a retransmission
//     of an executed request into a silent drop, never a re-execution,
//     because the executed-through watermark survives eviction (below).
//   - Clients with live protocol state — pending request bodies or
//     out-of-order executed IDs above the watermark — are not eligible for
//     eviction at all, so in-flight requests never lose their footing.
//
// What must NOT be lost is executed-ness: replicas agree on the execution
// order, and re-executing a request because its record was evicted would
// fork the application state. Each shard therefore keeps a watermarks map
// recording the contiguous executed-through ID of every evicted client
// (~16 bytes per client that ever executed and was evicted — the documented
// price of safe eviction), and a recreated clientState starts from it.

// defaultClientShards is the shard count when Config.ClientShards is zero:
// enough stripes that admission control and the apply loop rarely contend,
// small enough that per-shard metrics stay readable.
const defaultClientShards = 8

// clientShard is one lock-striped segment of the client table. All fields
// are guarded by mu; the metric handles are nil-safe and wired once by
// SetRegistry before the node is driven.
type clientShard struct {
	mu      sync.Mutex
	clients map[types.ClientID]*clientState
	// lru orders resident clients by last touch (front = most recent). It is
	// maintained only when the table is bounded; an unbounded table skips
	// the list entirely.
	lru *list.List
	// watermarks preserves the executed-through watermark of evicted
	// clients so re-admission can never re-execute (see package comment).
	watermarks map[types.ClientID]types.RequestID
	// inflight is the admission-control pending count (requests admitted at
	// ingress and not yet applied).
	inflight int

	size      *obs.Gauge
	evictions *obs.Counter
}

// clientTable is the sharded, bounded client map.
type clientTable struct {
	shards []clientShard
	// perShardCap bounds each shard's resident clients (0 = unbounded). The
	// global bound Config.MaxClients is split evenly across shards.
	perShardCap int
	// budget is the per-shard admission budget (0 = admission off).
	budget int

	admitted *obs.Counter
	rejected *obs.Counter
}

// evictInfo reports one eviction performed during a get.
type evictInfo struct {
	client types.ClientID
	size   int // shard size after the eviction
}

func newClientTable(shards, maxClients, budget int) *clientTable {
	if shards <= 0 {
		shards = defaultClientShards
	}
	t := &clientTable{shards: make([]clientShard, shards), budget: budget}
	if maxClients > 0 {
		t.perShardCap = (maxClients + shards - 1) / shards
		if t.perShardCap < 1 {
			t.perShardCap = 1
		}
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.clients = make(map[types.ClientID]*clientState)
		if t.perShardCap > 0 {
			sh.lru = list.New()
			sh.watermarks = make(map[types.ClientID]types.RequestID)
		}
	}
	return t
}

func (t *clientTable) shardOf(c types.ClientID) *clientShard {
	return &t.shards[uint64(c)%uint64(len(t.shards))]
}

// get returns the clientState for c, creating (and, when the shard is over
// its cap, evicting) as needed. The boolean reports whether an eviction
// happened so the caller can trace it.
func (t *clientTable) get(c types.ClientID) (*clientState, evictInfo, bool) {
	sh := t.shardOf(c)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cs := sh.clients[c]; cs != nil {
		if cs.lruElem != nil {
			sh.lru.MoveToFront(cs.lruElem)
		}
		return cs, evictInfo{}, false
	}
	cs := &clientState{id: c}
	if sh.watermarks != nil {
		cs.execThrough = sh.watermarks[c]
	}
	sh.clients[c] = cs
	var ev evictInfo
	evicted := false
	if t.perShardCap > 0 {
		cs.lruElem = sh.lru.PushFront(cs)
		if len(sh.clients) > t.perShardCap {
			ev, evicted = sh.evictLocked()
		}
	}
	sh.size.Set(int64(len(sh.clients)))
	return cs, ev, evicted
}

// evictLocked removes the least-recently-used eligible client. Clients with
// pending request bodies or out-of-order executed IDs above the watermark
// carry live protocol state and are skipped; if every resident client is
// ineligible (all mid-flight), the shard temporarily exceeds its cap rather
// than corrupting in-flight requests.
func (sh *clientShard) evictLocked() (evictInfo, bool) {
	for e := sh.lru.Back(); e != nil; e = e.Prev() {
		cs := e.Value.(*clientState)
		if cs.pendingBodies > 0 || len(cs.execRecent) > 0 {
			continue
		}
		sh.lru.Remove(e)
		delete(sh.clients, cs.id)
		if cs.execThrough > 0 {
			sh.watermarks[cs.id] = cs.execThrough
		}
		sh.evictions.Inc()
		return evictInfo{client: cs.id, size: len(sh.clients)}, true
	}
	return evictInfo{}, false
}

// count returns the resident client total across shards (tests and the
// bounded-memory gate).
func (t *clientTable) count() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.clients)
		sh.mu.Unlock()
	}
	return n
}

// admit reserves one slot of c's shard admission budget. It returns false —
// reject-with-busy backpressure — when the shard's inflight count has
// reached the budget; with no budget configured every request is admitted.
// Safe for concurrent use with the apply stage: it touches only
// shard-mutex-guarded state and atomic counters.
func (t *clientTable) admit(c types.ClientID) bool {
	if t.budget <= 0 {
		t.admitted.Inc()
		return true
	}
	sh := t.shardOf(c)
	sh.mu.Lock()
	over := sh.inflight >= t.budget
	if !over {
		sh.inflight++
	}
	sh.mu.Unlock()
	if over {
		t.rejected.Inc()
		return false
	}
	t.admitted.Inc()
	return true
}

// release returns one admission slot after the admitted request left the
// apply stage. No-op when admission is off.
func (t *clientTable) release(c types.ClientID) {
	if t.budget <= 0 {
		return
	}
	sh := t.shardOf(c)
	sh.mu.Lock()
	if sh.inflight > 0 {
		sh.inflight--
	}
	sh.mu.Unlock()
}
