package core

import (
	"testing"
	"time"

	"rbft/internal/message"
	"rbft/internal/monitor"
	"rbft/internal/types"
)

// TestInstanceChangeDiscardStaleCPI: INSTANCE-CHANGE messages for a previous
// cpi are discarded (paper §IV-D).
func TestInstanceChangeDiscardsStaleCPI(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	n := nc.nodes[0]
	// Drive an instance change so cpi becomes 1.
	for voter := types.NodeID(1); voter <= 3; voter++ {
		ic := &message.InstanceChange{CPI: 0, Node: voter}
		ic.Auth = nc.ks.NodeRing(voter).AuthenticatorForNodes(nc.cfg.N, ic.Body())
		nc.collect(0, n.OnNodeMessage(ic, voter, nc.now))
	}
	if n.CPI() != 1 || n.View() != 1 {
		t.Fatalf("cpi=%d view=%d after quorum, want 1/1", n.CPI(), n.View())
	}
	// Replayed votes for cpi 0 must not advance anything.
	for voter := types.NodeID(1); voter <= 3; voter++ {
		ic := &message.InstanceChange{CPI: 0, Node: voter}
		ic.Auth = nc.ks.NodeRing(voter).AuthenticatorForNodes(nc.cfg.N, ic.Body())
		nc.collect(0, n.OnNodeMessage(ic, voter, nc.now))
	}
	if n.CPI() != 1 || n.View() != 1 {
		t.Fatalf("stale votes advanced cpi/view to %d/%d", n.CPI(), n.View())
	}
}

// TestInstanceChangeEcho: a node whose own monitor is suspicious echoes an
// INSTANCE-CHANGE when it receives one for the current cpi.
func TestInstanceChangeEcho(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	n := nc.nodes[0]
	n.lastSuspect = monitor.Verdict{Suspicious: true, Reason: monitor.ReasonThroughput}
	ic := &message.InstanceChange{CPI: 0, Node: 2}
	ic.Auth = nc.ks.NodeRing(2).AuthenticatorForNodes(nc.cfg.N, ic.Body())
	out := n.OnNodeMessage(ic, 2, nc.now)
	sent := false
	for _, m := range out.NodeMsgs {
		if m.Msg.MsgType() == message.TypeInstanceChange {
			sent = true
		}
	}
	if !sent {
		t.Fatal("suspicious node did not echo the instance-change vote")
	}
	// A node with a clean monitor does not echo.
	clean := nc.nodes[1]
	ic2 := &message.InstanceChange{CPI: 0, Node: 2}
	ic2.Auth = nc.ks.NodeRing(2).AuthenticatorForNodes(nc.cfg.N, ic2.Body())
	out2 := clean.OnNodeMessage(ic2, 2, nc.now)
	for _, m := range out2.NodeMsgs {
		if m.Msg.MsgType() == message.TypeInstanceChange {
			t.Fatal("non-suspicious node echoed an instance-change vote")
		}
	}
}

// TestMasterPrimaryTracksView: the master primary rotates with the view.
func TestMasterPrimaryTracksView(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	n := nc.nodes[1]
	if got := n.MasterPrimary(); got != 0 {
		t.Fatalf("view 0 master primary = %d, want 0", got)
	}
	for voter := types.NodeID(0); voter <= 2; voter++ {
		ic := &message.InstanceChange{CPI: 0, Node: voter}
		ic.Auth = nc.ks.NodeRing(voter).AuthenticatorForNodes(nc.cfg.N, ic.Body())
		nc.collect(1, n.OnNodeMessage(ic, voter, nc.now))
	}
	if got := n.MasterPrimary(); got != 1 {
		t.Fatalf("view 1 master primary = %d, want 1", got)
	}
}

// TestSpoofedInstanceMessageCounted: a message whose claimed sender differs
// from the authenticated transport sender counts as invalid traffic.
func TestSpoofedInstanceMessageCounted(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) {
		c.FloodThreshold = 3
		c.FloodWindow = time.Minute
	})
	n := nc.nodes[0]
	var closed bool
	for i := 0; i < 3; i++ {
		// Claimed node 2, delivered from node 3.
		p := &message.Prepare{Instance: 0, View: 0, Seq: 1, Node: 2}
		p.Auth = nc.ks.NodeRing(3).AuthenticatorForNodes(nc.cfg.N, p.Body())
		out := n.OnNodeMessage(p, 3, nc.now)
		if len(out.NICCloses) > 0 {
			closed = true
		}
	}
	if !closed {
		t.Fatal("spoofed senders did not trip the flood defence")
	}
}

// TestReplyCacheEviction: the per-client reply cache is bounded and evicts
// oldest entries.
func TestReplyCacheEviction(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) { c.ReplyCacheSize = 2 })
	for i := 1; i <= 3; i++ {
		nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 1})
	}
	nc.runFor(100 * time.Millisecond)
	n := nc.nodes[0]
	cs := n.client(1, nc.now)
	if len(cs.replies) != 2 {
		t.Fatalf("reply cache holds %d entries, want 2", len(cs.replies))
	}
	if cs.replies[0].id != 2 || cs.replies[1].id != 3 {
		t.Fatalf("cache kept ids %d,%d, want 2,3", cs.replies[0].id, cs.replies[1].id)
	}
	// Evicting the cached reply must NOT forget that the request executed:
	// the watermark is what stops a stale retransmission from re-executing.
	if !cs.isExecuted(1) {
		t.Fatal("executed watermark forgot the request whose reply was evicted")
	}
}

// TestOmegaUnfairnessTriggersVote: per-client latency gap beyond Omega
// produces an instance-change vote.
func TestOmegaUnfairnessTriggersVote(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) {
		c.Monitoring.Omega = time.Millisecond
		c.BatchSize = 1
	})
	// Directly exercise the monitor verdict path through absorb: simulate a
	// client whose master ordering lags far behind its backup ordering.
	n := nc.nodes[0]
	ref := types.RequestRef{Client: 5, ID: 1, Digest: types.Digest{1}}
	n.mon.RequestDispatched(ref, nc.now)
	n.mon.RequestOrdered(1, ref, nc.now.Add(100*time.Microsecond))
	verdict := n.mon.RequestOrdered(0, ref, nc.now.Add(5*time.Millisecond))
	if !verdict.Suspicious || verdict.Reason != monitor.ReasonFairness {
		t.Fatalf("verdict = %+v, want fairness suspicion", verdict)
	}
}
