package core

import (
	"testing"
	"time"

	"rbft/internal/app"
	"rbft/internal/client"
	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/pbft"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// nodeCluster wires N core.Nodes and a set of clients through an in-memory
// queue under a virtual clock. Used by the node-level tests; the full-fidelity
// driver with network and CPU cost models lives in internal/sim.
type nodeCluster struct {
	t       *testing.T
	cfg     types.Config
	ks      *crypto.KeyStore
	nodes   []*Node
	apps    []*app.Counter
	clients map[types.ClientID]*client.Client

	queue     []clusterEvent
	now       time.Time
	completed map[types.ClientID][]client.Completed
	executed  map[types.NodeID][]types.RequestRef
	icEvents  []ICEvent
	// records accumulates each node's durability log in emission order,
	// playing the role of that node's WAL for restart tests.
	records map[types.NodeID][]wal.Record
	// linkDown[from][to] drops node-to-node traffic.
	linkDown map[types.NodeID]map[types.NodeID]bool
}

type clusterEvent struct {
	// Exactly one of toNode/toClient delivery shapes is used.
	fromNode   types.NodeID
	fromClient types.ClientID
	isClient   bool // origin is a client
	toNode     types.NodeID
	toClient   types.ClientID
	nodeDst    bool
	msg        message.Message
}

func newNodeCluster(t *testing.T, f int, tweak func(*Config)) *nodeCluster {
	t.Helper()
	cfg := types.NewConfig(f)
	nc := &nodeCluster{
		t:         t,
		cfg:       cfg,
		ks:        crypto.NewKeyStore([]byte("core-test"), cfg.N, 16),
		now:       time.Unix(0, 0),
		clients:   make(map[types.ClientID]*client.Client),
		completed: make(map[types.ClientID][]client.Completed),
		executed:  make(map[types.NodeID][]types.RequestRef),
		records:   make(map[types.NodeID][]wal.Record),
		linkDown:  make(map[types.NodeID]map[types.NodeID]bool),
	}
	for i := 0; i < cfg.N; i++ {
		counter := app.NewCounter()
		c := Config{
			Cluster:      cfg,
			Node:         types.NodeID(i),
			App:          counter,
			BatchSize:    8,
			BatchTimeout: time.Millisecond,
		}
		c.Monitoring.Period = 50 * time.Millisecond
		c.Monitoring.Delta = 0.5
		c.Monitoring.MinRequests = 5
		if tweak != nil {
			tweak(&c)
		}
		nc.apps = append(nc.apps, counter)
		nc.nodes = append(nc.nodes, New(c, nc.ks.NodeRing(types.NodeID(i))))
	}
	return nc
}

func (nc *nodeCluster) client(id types.ClientID) *client.Client {
	cl := nc.clients[id]
	if cl == nil {
		cl = client.New(client.Config{Cluster: nc.cfg, ID: id}, nc.ks.ClientRing(id))
		nc.clients[id] = cl
	}
	return cl
}

// sendRequest has client id send op to all nodes (or only the given subset).
func (nc *nodeCluster) sendRequest(id types.ClientID, op []byte, onlyTo ...types.NodeID) *message.Request {
	cl := nc.client(id)
	req := cl.NewRequest(op, nc.now)
	targets := onlyTo
	if len(targets) == 0 {
		targets = nc.cfg.AllNodes()
	}
	for _, n := range targets {
		nc.queue = append(nc.queue, clusterEvent{
			isClient: true, fromClient: id, toNode: n, nodeDst: true, msg: req,
		})
	}
	return req
}

func (nc *nodeCluster) collect(from types.NodeID, out Output) {
	nc.icEvents = append(nc.icEvents, out.InstanceChanges...)
	nc.records[from] = append(nc.records[from], out.Records...)
	for _, ex := range out.Executions {
		nc.executed[from] = append(nc.executed[from], ex.Ref)
	}
	for _, cm := range out.ClientMsgs {
		nc.queue = append(nc.queue, clusterEvent{fromNode: from, toClient: cm.To, msg: cm.Msg})
	}
	for _, nm := range out.NodeMsgs {
		targets := nm.To
		if targets == nil {
			for i := 0; i < nc.cfg.N; i++ {
				if types.NodeID(i) != from {
					targets = append(targets, types.NodeID(i))
				}
			}
		}
		for _, to := range targets {
			if nc.linkDown[from][to] {
				continue
			}
			nc.queue = append(nc.queue, clusterEvent{fromNode: from, toNode: to, nodeDst: true, msg: nm.Msg})
		}
	}
}

// runFor advances the virtual clock by d, delivering messages and firing
// timers.
func (nc *nodeCluster) runFor(d time.Duration) {
	nc.t.Helper()
	end := nc.now.Add(d)
	for steps := 0; ; steps++ {
		if steps > 5_000_000 {
			nc.t.Fatal("nodeCluster.runFor: runaway event loop")
		}
		if len(nc.queue) > 0 {
			ev := nc.queue[0]
			nc.queue = nc.queue[1:]
			nc.deliver(ev)
			continue
		}
		var wake time.Time
		consider := func(w time.Time) {
			if w.IsZero() {
				return
			}
			if wake.IsZero() || w.Before(wake) {
				wake = w
			}
		}
		for _, n := range nc.nodes {
			consider(n.NextWake())
		}
		for _, cl := range nc.clients {
			consider(cl.NextWake())
		}
		if wake.IsZero() || wake.After(end) {
			nc.now = end
			return
		}
		if wake.After(nc.now) {
			nc.now = wake
		}
		for i, n := range nc.nodes {
			w := n.NextWake()
			if !w.IsZero() && !nc.now.Before(w) {
				nc.collect(types.NodeID(i), n.Tick(nc.now))
			}
		}
		for id, cl := range nc.clients {
			w := cl.NextWake()
			if !w.IsZero() && !nc.now.Before(w) {
				for _, req := range cl.Tick(nc.now) {
					for _, n := range nc.cfg.AllNodes() {
						nc.queue = append(nc.queue, clusterEvent{
							isClient: true, fromClient: id, toNode: n, nodeDst: true, msg: req,
						})
					}
				}
			}
		}
	}
}

func (nc *nodeCluster) deliver(ev clusterEvent) {
	if ev.nodeDst {
		node := nc.nodes[ev.toNode]
		if ev.isClient {
			req, ok := ev.msg.(*message.Request)
			if !ok {
				nc.t.Fatalf("client sent %T", ev.msg)
			}
			nc.collect(ev.toNode, node.OnClientRequest(req, nc.now))
			return
		}
		nc.collect(ev.toNode, node.OnNodeMessage(ev.msg, ev.fromNode, nc.now))
		return
	}
	// To a client.
	cl := nc.clients[ev.toClient]
	if cl == nil {
		return
	}
	rep, ok := ev.msg.(*message.Reply)
	if !ok {
		return
	}
	if done, ok := cl.OnReply(rep, ev.fromNode, nc.now); ok {
		nc.completed[ev.toClient] = append(nc.completed[ev.toClient], done)
	}
}

func sameRefs(a, b []types.RequestRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEndToEndExecution(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	for i := 0; i < 20; i++ {
		nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 2}) // +2 each
	}
	nc.runFor(200 * time.Millisecond)

	if got := len(nc.completed[1]); got != 20 {
		t.Fatalf("client completed %d requests, want 20", got)
	}
	for i := 1; i < nc.cfg.N; i++ {
		if nc.apps[i].Fingerprint() != nc.apps[0].Fingerprint() {
			t.Fatalf("node %d execution fingerprint differs", i)
		}
		if !sameRefs(nc.executed[0], nc.executed[types.NodeID(i)]) {
			t.Fatalf("node %d executed different sequence", i)
		}
	}
	if total := nc.apps[0].Total(1); total != 40 {
		t.Fatalf("counter total = %d, want 40", total)
	}
}

func TestRequestToSingleNodeStillExecutes(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	// The client sends only to node 2: PROPAGATE must spread it.
	nc.sendRequest(1, nil, 2)
	nc.runFor(100 * time.Millisecond)
	for i := 0; i < nc.cfg.N; i++ {
		if got := len(nc.executed[types.NodeID(i)]); got != 1 {
			t.Fatalf("node %d executed %d requests, want 1 (propagation)", i, got)
		}
	}
	if got := len(nc.completed[1]); got != 1 {
		t.Fatalf("client completed %d, want 1", got)
	}
}

func TestInvalidSignatureBlacklistsClient(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	cl := nc.client(1)
	req := cl.NewRequest([]byte("x"), nc.now)
	req.Sig[0] ^= 0xff // corrupt the signature, then re-MAC so MAC passes
	ring := nc.ks.ClientRing(1)
	body := req.Body()
	for i := range req.Auth {
		req.Auth[i] = ring.MACForNode(types.NodeID(i), body)
	}
	for _, n := range nc.cfg.AllNodes() {
		nc.queue = append(nc.queue, clusterEvent{isClient: true, fromClient: 1, toNode: n, nodeDst: true, msg: req})
	}
	nc.runFor(50 * time.Millisecond)
	if got := len(nc.executed[0]); got != 0 {
		t.Fatalf("executed %d forged requests", got)
	}
	// Subsequent valid requests from the blacklisted client are ignored.
	nc.sendRequest(1, []byte("y"))
	nc.runFor(50 * time.Millisecond)
	if got := len(nc.executed[0]); got != 0 {
		t.Fatalf("blacklisted client got %d requests executed", got)
	}
	// Another client is unaffected.
	nc.sendRequest(2, []byte("z"))
	nc.runFor(50 * time.Millisecond)
	if got := len(nc.executed[0]); got != 1 {
		t.Fatalf("innocent client executed %d, want 1", got)
	}
}

func TestBadMACDropped(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	cl := nc.client(1)
	req := cl.NewRequest([]byte("x"), nc.now)
	for i := range req.Auth {
		req.Auth[i][0] ^= 0xff
	}
	for _, n := range nc.cfg.AllNodes() {
		nc.queue = append(nc.queue, clusterEvent{isClient: true, fromClient: 1, toNode: n, nodeDst: true, msg: req})
	}
	nc.runFor(50 * time.Millisecond)
	if got := len(nc.executed[0]); got != 0 {
		t.Fatalf("executed %d requests with bad MACs", got)
	}
	// Bad MAC must not blacklist (it could be a network fault, and MACs do
	// not prove client origin to third parties).
	nc.sendRequest(1, []byte("y"))
	nc.runFor(50 * time.Millisecond)
	if got := len(nc.executed[0]); got != 1 {
		t.Fatalf("client wrongly blacklisted after MAC failure: executed %d", got)
	}
}

func TestRetransmissionGetsCachedReply(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	req := nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 5})
	nc.runFor(100 * time.Millisecond)
	if got := len(nc.completed[1]); got != 1 {
		t.Fatalf("completed %d, want 1", got)
	}
	// Deliver the same request again: nodes must reply from cache without
	// re-executing.
	before := nc.apps[0].Total(1)
	out := nc.nodes[0].OnClientRequest(req, nc.now)
	if len(out.ClientMsgs) != 1 {
		t.Fatalf("retransmission produced %d client messages, want 1 cached reply", len(out.ClientMsgs))
	}
	if nc.apps[0].Total(1) != before {
		t.Fatal("retransmission re-executed the request")
	}
}

func TestSilentMasterPrimaryTriggersInstanceChange(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	masterPrimary := nc.nodes[0].MasterPrimary()
	nc.nodes[masterPrimary].SetBehavior(Behavior{
		Instance: map[types.InstanceID]pbft.Behavior{
			types.MasterInstance: {Silent: true},
		},
	})
	oldView := nc.nodes[0].View()

	// Sustained load so the monitor sees backup progress.
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			nc.sendRequest(1, nil)
		}
		nc.runFor(60 * time.Millisecond)
	}

	if len(nc.icEvents) == 0 {
		t.Fatal("no instance change despite a silent master primary")
	}
	for i, n := range nc.nodes {
		if types.NodeID(i) == masterPrimary {
			continue
		}
		if n.View() == oldView {
			t.Fatalf("node %d still in view %d", i, oldView)
		}
		if n.MasterPrimary() == masterPrimary {
			t.Fatalf("master primary did not move off node %d", masterPrimary)
		}
	}
	// Liveness restored: all sent requests eventually execute on correct
	// nodes.
	nc.runFor(300 * time.Millisecond)
	correct := types.NodeID(0)
	if correct == masterPrimary {
		correct = 1
	}
	if got := len(nc.executed[correct]); got != 100 {
		t.Fatalf("executed %d of 100 requests after instance change", got)
	}
	if got := len(nc.completed[1]); got != 100 {
		t.Fatalf("client completed %d of 100", got)
	}
}

func TestInstanceChangeNeedsQuorum(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	// A single node voting must not change the view.
	out := nc.nodes[0].voteInstanceChange(0, nc.now)
	nc.collect(0, out)
	nc.runFor(20 * time.Millisecond)
	for i, n := range nc.nodes {
		if n.View() != 0 {
			t.Fatalf("node %d moved to view %d on a single vote", i, n.View())
		}
	}
}

func TestFloodingPeerGetsNICClosed(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) {
		c.FloodThreshold = 10
		c.FloodWindow = time.Second
		c.NICClosePeriod = time.Second
	})
	attacker := types.NodeID(3)
	var closed bool
	for i := 0; i < 10; i++ {
		out := nc.nodes[0].OnNodeMessage(&message.Invalid{Node: attacker, Padding: make([]byte, 64)}, attacker, nc.now)
		if len(out.NICCloses) > 0 {
			closed = true
			if out.NICCloses[0].Peer != attacker {
				t.Fatalf("closed NIC of %d, want %d", out.NICCloses[0].Peer, attacker)
			}
		}
	}
	if !closed {
		t.Fatal("flood did not close the attacker's NIC")
	}
	// While closed, even valid-looking traffic from the attacker is dropped
	// without processing.
	out := nc.nodes[0].OnNodeMessage(&message.Invalid{Node: attacker}, attacker, nc.now)
	if len(out.NICCloses) != 0 || len(out.NodeMsgs) != 0 {
		t.Fatal("traffic processed during NIC closure")
	}
}

func TestOpenLoopParallelRequests(t *testing.T) {
	nc := newNodeCluster(t, 1, nil)
	// Two clients, interleaved bursts, no waiting between requests.
	for i := 0; i < 30; i++ {
		nc.sendRequest(1, nil)
		nc.sendRequest(2, nil)
	}
	nc.runFor(300 * time.Millisecond)
	if got := len(nc.completed[1]); got != 30 {
		t.Fatalf("client 1 completed %d, want 30", got)
	}
	if got := len(nc.completed[2]); got != 30 {
		t.Fatalf("client 2 completed %d, want 30", got)
	}
	for i := 1; i < nc.cfg.N; i++ {
		if !sameRefs(nc.executed[0], nc.executed[types.NodeID(i)]) {
			t.Fatalf("node %d executed different sequence", i)
		}
	}
}

func TestF2EndToEnd(t *testing.T) {
	nc := newNodeCluster(t, 2, nil)
	for i := 0; i < 10; i++ {
		nc.sendRequest(1, nil)
	}
	nc.runFor(200 * time.Millisecond)
	if got := len(nc.completed[1]); got != 10 {
		t.Fatalf("completed %d, want 10", got)
	}
	for i := 1; i < nc.cfg.N; i++ {
		if !sameRefs(nc.executed[0], nc.executed[types.NodeID(i)]) {
			t.Fatalf("node %d executed different sequence", i)
		}
	}
}
