// Package core implements the RBFT node: the Verification, Propagation,
// Dispatch & Monitoring and Execution modules from the paper, the f+1 local
// protocol-instance replicas, and the protocol instance change mechanism.
//
// Like the pbft package, a Node is a pure state machine driven by a runtime:
// inputs are client requests, node-to-node messages and timer ticks; outputs
// are messages to send, executed requests, replies, instance-change events
// and NIC closures. The discrete-event simulator and the real-time TCP/UDP
// runtime both drive the same Node code.
package core

import (
	"container/list"
	"fmt"
	"time"

	"rbft/internal/app"
	"rbft/internal/crypto"
	"rbft/internal/exec"
	"rbft/internal/message"
	"rbft/internal/monitor"
	"rbft/internal/obs"
	"rbft/internal/pbft"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// Config parameterises an RBFT node.
type Config struct {
	// Cluster is the 3f+1 cluster configuration.
	Cluster types.Config
	// Node is this node's identity.
	Node types.NodeID
	// App is the replicated application; nil means app.Null.
	App app.Application

	// BatchSize, BatchTimeout, CheckpointInterval and WatermarkWindow are
	// passed to every protocol-instance replica.
	BatchSize          int
	BatchTimeout       time.Duration
	CheckpointInterval types.SeqNum
	WatermarkWindow    types.SeqNum

	// OrderingMode selects which instances' orderings reach execution:
	// types.OrderingMasterOnly (the default — all lanes order everything,
	// only the master's order executes) or types.OrderingMultiPrimary (each
	// lane orders a disjoint client partition and a deterministic round-robin
	// merge feeds execution; see lanes.go and docs/ORDERING.md).
	OrderingMode types.OrderingMode

	// ExecWorkers is the worker-shard count of the parallel execution
	// scheduler (internal/exec, docs/EXECUTION.md). The parallel path
	// engages only when ExecWorkers >= 2 AND App implements
	// app.ConflictKeyer; otherwise ordered requests apply serially,
	// byte-identical to a scheduler-less node. Replay after a crash is
	// always serial — wave execution is equivalent to the journaled order by
	// construction, so nothing extra is logged.
	ExecWorkers int

	// Monitoring carries the Δ/Λ/Ω monitoring parameters. Instances is
	// filled in from the cluster configuration; PerLane follows OrderingMode.
	Monitoring monitor.Config

	// ReplyCacheSize bounds the per-client reply cache.
	ReplyCacheSize int

	// ClientShards is the lock-stripe count of the client table (0 means
	// defaultClientShards). Sharding lets admission control run concurrently
	// with the apply stage and bounds per-shard metric cardinality.
	ClientShards int
	// MaxClients bounds the resident client-table entries across all shards;
	// beyond it the least-recently-used quiescent client is evicted
	// (docs/CLIENTS.md). 0 means unbounded (the historical behaviour).
	MaxClients int
	// IngressBudget is the per-shard admission budget: client frames beyond
	// this many in flight (admitted at ingress, not yet applied) are shed
	// before the crypto stage. 0 disables admission control.
	IngressBudget int

	// VerifyCacheSize bounds the request-signature verification cache of the
	// preverify stage (0 means message.DefaultVerifyCacheSize).
	VerifyCacheSize int

	// FloodThreshold is the number of invalid messages from one peer within
	// FloodWindow that triggers closing that peer's NIC for NICClosePeriod.
	FloodThreshold int
	// FloodWindow is the flood-detection window.
	FloodWindow time.Duration
	// NICClosePeriod is how long a flooding peer's NIC stays closed.
	NICClosePeriod time.Duration

	// Durable makes the node (and its replicas) attach wal.Records to
	// Outputs for crash-survivable state; the driver must persist an
	// output's records before transmitting its messages (see durability.go).
	Durable bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.App == nil {
		out.App = app.Null{}
	}
	if out.ReplyCacheSize == 0 {
		out.ReplyCacheSize = 256
	}
	if out.FloodThreshold == 0 {
		out.FloodThreshold = 64
	}
	if out.FloodWindow == 0 {
		out.FloodWindow = 100 * time.Millisecond
	}
	if out.NICClosePeriod == 0 {
		out.NICClosePeriod = time.Second
	}
	out.Monitoring.Instances = out.Cluster.Instances()
	out.Monitoring.PerLane = out.OrderingMode == types.OrderingMultiPrimary
	return out
}

// Behavior injects node-level Byzantine behaviour for attack experiments.
// The zero value is a correct node.
type Behavior struct {
	// Silent drops every input without producing output (a crashed node).
	Silent bool
	// DropPropagate makes the node not participate in the PROPAGATE phase
	// (worst-attack-2 step ii).
	DropPropagate bool
	// Instance installs per-instance replica behaviour, e.g. a delaying
	// primary or silent replicas of specific instances.
	Instance map[types.InstanceID]pbft.Behavior
}

// NodeSend is a message to other nodes. A nil To means every other node.
type NodeSend struct {
	To  []types.NodeID
	Msg message.Message
}

// ClientSend is a message to a client.
type ClientSend struct {
	To  types.ClientID
	Msg message.Message
}

// Execution reports a request executed on this node: ordered by the master
// instance in master-only mode, or released by the lane merge in
// multi-primary mode.
type Execution struct {
	Ref    types.RequestRef
	Result []byte
	// Wave indexes Output.ExecWaves: the parallel-execution wave that
	// applied this request. Always 0 on the serial path (ExecWaves nil).
	Wave int
}

// ICEvent reports a completed protocol instance change.
type ICEvent struct {
	CPI     uint64
	NewView types.View
	Reason  monitor.Reason
}

// NICClose instructs the driver to drop traffic from a flooding peer until
// the deadline.
type NICClose struct {
	Peer  types.NodeID
	Until time.Time
}

// Output aggregates the effects of one node input.
type Output struct {
	NodeMsgs        []NodeSend
	ClientMsgs      []ClientSend
	Executions      []Execution
	InstanceChanges []ICEvent
	NICCloses       []NICClose
	// OrderedByInstance counts refs delivered per instance in this step
	// (index = instance id); used by harnesses to sample monitoring data.
	OrderedByInstance []int
	// Records are durability records the driver must make crash-safe
	// *before* transmitting NodeMsgs/ClientMsgs (only when Config.Durable).
	Records []wal.Record
	// ExecWaves holds the parallel execution plan of this step's
	// Executions: entry w is the number of requests applied in wave w
	// (Execution.Wave indexes it). Nil on the serial path. Drivers that
	// model execution cost (internal/sim) charge each wave as one round of
	// ceil(size/workers) parallel applies.
	ExecWaves []int
}

func (o *Output) merge(other Output) {
	o.NodeMsgs = append(o.NodeMsgs, other.NodeMsgs...)
	o.ClientMsgs = append(o.ClientMsgs, other.ClientMsgs...)
	if len(other.ExecWaves) > 0 {
		// Re-base the incoming executions' wave indices onto this output's
		// wave list so indices stay valid after concatenation.
		if base := len(o.ExecWaves); base > 0 {
			for i := range other.Executions {
				other.Executions[i].Wave += base
			}
		}
		o.ExecWaves = append(o.ExecWaves, other.ExecWaves...)
	}
	o.Executions = append(o.Executions, other.Executions...)
	o.InstanceChanges = append(o.InstanceChanges, other.InstanceChanges...)
	o.NICCloses = append(o.NICCloses, other.NICCloses...)
	o.Records = append(o.Records, other.Records...)
	if other.OrderedByInstance != nil {
		if o.OrderedByInstance == nil {
			o.OrderedByInstance = make([]int, len(other.OrderedByInstance))
		}
		for i, n := range other.OrderedByInstance {
			o.OrderedByInstance[i] += n
		}
	}
}

// cachedReply is one reply-cache slot.
type cachedReply struct {
	id     types.RequestID
	result []byte
}

// clientState tracks per-client verification, reply and execution state. It
// lives in one clientTable shard (clients.go); id and lruElem are the
// shard's bookkeeping handles.
type clientState struct {
	id          types.ClientID
	lruElem     *list.Element
	blacklisted bool
	replies     []cachedReply // most recent last
	// pendingBodies bounds the per-client stored request bodies, limiting
	// the memory an equivocating client can pin.
	pendingBodies int
	// execThrough and execRecent together record which of the client's
	// request IDs have executed: every ID <= execThrough has, plus the
	// above-watermark IDs in execRecent (out-of-order executions whose
	// predecessors are still in flight; drained into the watermark as the
	// gap closes). Unlike the reply cache this knowledge is never evicted —
	// the watermark survives table eviction — so a stale retransmission can
	// be dropped but never re-executed.
	execThrough types.RequestID
	execRecent  map[types.RequestID]bool
}

// markExecuted records that request id executed, advancing the contiguous
// watermark when possible. Gaps (an out-of-order execution across ordering
// lanes while an earlier ID is still in flight) park in execRecent and drain
// as soon as the missing IDs execute; clients issue IDs sequentially, so the
// set stays bounded by the client's in-flight window.
func (cs *clientState) markExecuted(id types.RequestID) {
	if id <= cs.execThrough {
		return
	}
	if id == cs.execThrough+1 {
		cs.execThrough = id
		for len(cs.execRecent) > 0 && cs.execRecent[cs.execThrough+1] {
			delete(cs.execRecent, cs.execThrough+1)
			cs.execThrough++
		}
		return
	}
	if cs.execRecent == nil {
		cs.execRecent = make(map[types.RequestID]bool)
	}
	cs.execRecent[id] = true
}

// isExecuted reports whether request id has executed on this node.
func (cs *clientState) isExecuted(id types.RequestID) bool {
	return id <= cs.execThrough || cs.execRecent[id]
}

// cacheReply appends a reply to the bounded per-client cache, dropping the
// oldest entry beyond bound. Dropping a cached reply never forgets that the
// request executed — that lives in the executed watermark — so every
// eviction path shares this one method and the bound cannot silently
// diverge from the executed bookkeeping.
func (cs *clientState) cacheReply(id types.RequestID, result []byte, bound int) {
	cs.replies = append(cs.replies, cachedReply{id: id, result: result})
	if len(cs.replies) > bound {
		cs.replies = cs.replies[1:]
	}
}

// Node is one RBFT node: the deterministic apply stage of the ingress
// pipeline. Not safe for concurrent use; drivers serialise access. The
// node's Preverifier is the stateless stage in front of it and IS safe for
// concurrent use (see docs/PIPELINE.md).
type Node struct {
	cfg      Config
	behavior Behavior
	keys     *crypto.KeyRing
	pre      *message.Preverifier

	replicas []*pbft.Instance
	mon      *monitor.Monitor

	// sched is the parallel execution engine (docs/EXECUTION.md). When it
	// reports Parallel() == false — no ConflictKeyer app or ExecWorkers < 2
	// — execution takes the per-request serial path, byte-identical to a
	// scheduler-less node.
	sched *exec.Scheduler

	// Multi-primary ordering state (nil / zero in master-only mode): the
	// round-robin merge feeding execution, the pending empty-batch filler
	// deadline for a stalled idle lane, and the filler pacing interval.
	merge       *laneMerge
	fillerAt    time.Time
	fillerDelay time.Duration

	view types.View
	cpi  uint64

	// Propagation module state. Bodies are keyed by the full request ref
	// (digest included): an equivocating client may sign several bodies
	// under one request id, and execution must pick the same one on every
	// node — the first master-ordered ref.
	bodies     map[types.RequestRef]*message.Request
	byKey      map[types.RequestKey][]types.RequestRef
	propagates map[types.RequestRef]map[types.NodeID]bool
	dispatched map[types.RequestRef]bool

	// Execution module state. The sharded client table (clients.go) holds
	// per-client reply caches and executed watermarks; reader is the app's
	// read fast path (nil when the app is not a ReadExecutor).
	table  *clientTable
	reader app.ReadExecutor

	// Instance-change state.
	icVotes     map[uint64]map[types.NodeID]bool
	lastSuspect monitor.Verdict

	// Flood defence.
	floodCounts map[types.NodeID]int
	floodStart  time.Time
	closedUntil map[types.NodeID]time.Time

	// Observability. tr is node-stamped; the message counters index by
	// message.Type and stay nil (no-op) until SetRegistry wires them.
	// spansOn caches obs.WantSpans(tr); dispatchedAt anchors per-instance
	// order spans (dispatch → delivery) and is only populated when spans
	// are on. Entries are released with the rest of the propagation state
	// when the request executes, so a backup lane delivering after the
	// master has executed skips its order span (its quorum spans still
	// cover the lane).
	tr           obs.Tracer
	spansOn      bool
	dispatchedAt map[types.RequestRef]time.Time
	metricsOn    bool
	msgsIn       [64]*obs.Counter
	msgsOut      [64]*obs.Counter
	clientOut    *obs.Counter
	// executedByLane counts executions by the ordering lane the executing
	// order came from (always lane 0 in master-only mode).
	executedByLane []*obs.Counter
	// Parallel-execution counters (nil until SetRegistry): waves applied,
	// requests deferred by a conflict, requests that shared a wave.
	execWaves     *obs.Counter
	execConflicts *obs.Counter
	execParallel  *obs.Counter
}

// New creates an RBFT node. keys must be the node's own key ring.
func New(cfg Config, keys *crypto.KeyRing) *Node {
	c := cfg.withDefaults()
	n := &Node{
		cfg:          c,
		keys:         keys,
		mon:          monitor.New(c.Monitoring),
		bodies:       make(map[types.RequestRef]*message.Request),
		byKey:        make(map[types.RequestKey][]types.RequestRef),
		propagates:   make(map[types.RequestRef]map[types.NodeID]bool),
		dispatched:   make(map[types.RequestRef]bool),
		table:        newClientTable(c.ClientShards, c.MaxClients, c.IngressBudget),
		icVotes:      make(map[uint64]map[types.NodeID]bool),
		floodCounts:  make(map[types.NodeID]int),
		closedUntil:  make(map[types.NodeID]time.Time),
		tr:           obs.Nop{},
		dispatchedAt: make(map[types.RequestRef]time.Time),
	}
	n.pre = message.NewPreverifier(keys, c.Node, c.Cluster, message.NewVerifyCache(c.VerifyCacheSize))
	n.sched = exec.New(c.App, c.ExecWorkers)
	if re, ok := c.App.(app.ReadExecutor); ok {
		n.reader = re
	}
	if c.OrderingMode == types.OrderingMultiPrimary {
		n.merge = newLaneMerge(c.Cluster.Instances())
		n.fillerDelay = c.BatchTimeout
		if n.fillerDelay == 0 {
			n.fillerDelay = 5 * time.Millisecond // pbft's BatchTimeout default
		}
	}
	for i := 0; i < c.Cluster.Instances(); i++ {
		pc := pbft.Config{
			Cluster:            c.Cluster,
			Instance:           types.InstanceID(i),
			Node:               c.Node,
			BatchSize:          c.BatchSize,
			BatchTimeout:       c.BatchTimeout,
			CheckpointInterval: c.CheckpointInterval,
			WatermarkWindow:    c.WatermarkWindow,
			// The node's preverify stage checks VIEW-CHANGE signatures
			// (including the copies embedded in NEW-VIEW) before the replica
			// ever sees them; don't pay for them twice.
			SigPreverified: true,
			Durable:        c.Durable,
		}
		n.replicas = append(n.replicas, pbft.New(pc, keys))
	}
	return n
}

// Preverifier returns the stateless ingress verification stage paired with
// this node. Drivers run it on any number of goroutines (or charge it on
// parallel simulated cores) and feed the results to OnVerified /
// OnIngressFailure in arrival order.
func (n *Node) Preverifier() *message.Preverifier { return n.pre }

// SetTracer installs an event sink on the node and propagates it (node-
// stamped) to the replicas and the monitor. Install before driving the
// node; a nil tracer restores the no-op default.
func (n *Node) SetTracer(t obs.Tracer) {
	n.tr = obs.WithNode(t, n.cfg.Node)
	n.spansOn = obs.WantSpans(n.tr)
	for _, r := range n.replicas {
		r.SetTracer(n.tr)
	}
	n.mon.SetTracer(n.tr)
}

// SetRegistry wires the node's metrics: messages in/out by type, replies to
// clients, and the monitor's ordering-latency histogram. Counter pointers
// are resolved once here so increments on the hot path are a nil check and
// an atomic add.
func (n *Node) SetRegistry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n.metricsOn = true
	for _, t := range countedMsgTypes {
		n.msgsIn[t] = reg.Counter(obs.LabeledName("rbft_messages_in_total", "type", t.String()))
		n.msgsOut[t] = reg.Counter(obs.LabeledName("rbft_messages_out_total", "type", t.String()))
	}
	n.clientOut = reg.Counter("rbft_client_messages_out_total")
	n.executedByLane = make([]*obs.Counter, len(n.replicas))
	for i := range n.replicas {
		n.executedByLane[i] = reg.Counter(obs.LabeledName("rbft_executed_total", "lane", fmt.Sprintf("%d", i)))
	}
	n.execWaves = reg.Counter("rbft_exec_waves_total")
	n.execConflicts = reg.Counter("rbft_exec_conflicts_total")
	n.execParallel = reg.Counter("rbft_exec_parallel_total")
	for i := range n.table.shards {
		sh := &n.table.shards[i]
		sh.size = reg.Gauge(obs.LabeledName("rbft_client_table_size", "shard", fmt.Sprintf("%d", i)))
		sh.evictions = reg.Counter(obs.LabeledName("rbft_client_evictions_total", "shard", fmt.Sprintf("%d", i)))
	}
	n.table.admitted = reg.Counter("rbft_ingress_admitted_total")
	n.table.rejected = reg.Counter("rbft_ingress_rejected_total")
	n.pre.Cache().SetCounters(
		reg.Counter("rbft_sigcache_hits_total"),
		reg.Counter("rbft_sigcache_misses_total"),
	)
	n.mon.SetRegistry(reg)
}

// countedMsgTypes enumerates every wire message type for the per-type
// counters. All values fit the msgsIn/msgsOut arrays (max is 33).
var countedMsgTypes = []message.Type{
	message.TypeRequest, message.TypeReadRequest, message.TypePropagate, message.TypePrePrepare,
	message.TypePrepare, message.TypeCommit, message.TypeReply,
	message.TypeInstanceChange, message.TypeViewChange, message.TypeNewView,
	message.TypeCheckpoint, message.TypeInvalid, message.TypeFetch,
	message.TypeFetchResp,
}

// observeIO counts one handled input message and the node's emissions.
// Multicasts (NodeSend with nil To) count once: the counter tracks protocol
// emissions, not per-link transmissions (the transport counts bytes).
func (n *Node) observeIO(in message.Message, out *Output) {
	if !n.metricsOn {
		return
	}
	if in != nil {
		if t := in.MsgType(); int(t) < len(n.msgsIn) {
			n.msgsIn[t].Inc()
		}
	}
	for _, nm := range out.NodeMsgs {
		if t := nm.Msg.MsgType(); int(t) < len(n.msgsOut) {
			n.msgsOut[t].Inc()
		}
	}
	if len(out.ClientMsgs) > 0 {
		n.clientOut.Add(uint64(len(out.ClientMsgs)))
	}
}

// SetBehavior installs Byzantine behaviour (attack experiments only).
func (n *Node) SetBehavior(b Behavior) {
	n.behavior = b
	// Iterate replicas in instance order rather than ranging over the
	// b.Instance map, so installation order is deterministic.
	for i := range n.replicas {
		if rb, ok := b.Instance[types.InstanceID(i)]; ok {
			n.replicas[i].SetBehavior(rb)
		}
	}
}

// ID returns the node's identity.
func (n *Node) ID() types.NodeID { return n.cfg.Node }

// View returns the shared view number.
func (n *Node) View() types.View { return n.view }

// CPI returns the instance-change counter.
func (n *Node) CPI() uint64 { return n.cpi }

// Monitor exposes the node's monitoring module; harnesses sample
// per-instance throughput from it.
func (n *Node) Monitor() *monitor.Monitor { return n.mon }

// Replica returns the local replica of an instance (tests and harnesses).
func (n *Node) Replica(i types.InstanceID) *pbft.Instance { return n.replicas[i] }

// MasterPrimary returns the node currently hosting the master instance's
// primary.
func (n *Node) MasterPrimary() types.NodeID {
	return n.cfg.Cluster.PrimaryOf(n.view, types.MasterInstance)
}

// NextWake returns the earliest pending timer across the replicas and the
// monitor, or zero if none.
func (n *Node) NextWake() time.Time {
	var wake time.Time
	consider := func(t time.Time) {
		if t.IsZero() {
			return
		}
		if wake.IsZero() || t.Before(wake) {
			wake = t
		}
	}
	for _, r := range n.replicas {
		consider(r.NextWake())
	}
	consider(n.mon.NextWake())
	consider(n.fillerAt)
	return wake
}

// Tick fires due timers: replica batch timers and the monitoring period.
func (n *Node) Tick(now time.Time) Output {
	out := n.tick(now)
	n.observeIO(nil, &out)
	return out
}

func (n *Node) tick(now time.Time) Output {
	var out Output
	if n.behavior.Silent {
		return out
	}
	for i, r := range n.replicas {
		w := r.NextWake()
		if !w.IsZero() && !now.Before(w) {
			out.merge(n.absorb(types.InstanceID(i), r.Tick(now), now))
		}
	}
	if n.multiPrimary() {
		out.merge(n.tickFiller(now))
	}
	w := n.mon.NextWake()
	if !w.IsZero() && !now.Before(w) {
		verdict := n.mon.Tick(now)
		n.lastSuspect = verdict
		if verdict.Suspicious {
			out.merge(n.voteInstanceChange(verdict.Reason, now))
		}
	}
	return out
}

// OnClientRequest is the single-caller convenience entry point for a REQUEST
// received directly from a client: it runs the node's own preverify stage
// inline and then applies the result. Pipelined drivers call the
// Preverifier and OnVerified / OnIngressFailure separately instead.
func (n *Node) OnClientRequest(req *message.Request, now time.Time) Output {
	v, err := n.pre.PreverifyClient(req, req.Client)
	if err != nil {
		return n.OnIngressFailure(IngressFailure{
			FromClient: true, Client: req.Client,
			Kind: message.FailKindOf(err), Msg: req,
		}, now)
	}
	return n.OnVerified(v, now)
}

// OnNodeMessage is the single-caller convenience entry point for a message
// from another node: preverify inline, then apply.
func (n *Node) OnNodeMessage(msg message.Message, from types.NodeID, now time.Time) Output {
	v, err := n.pre.PreverifyNode(msg, from)
	if err != nil {
		return n.OnIngressFailure(IngressFailure{
			From: from, Kind: message.FailKindOf(err), Msg: msg,
		}, now)
	}
	return n.OnVerified(v, now)
}

// OnVerified is the apply stage: it consumes a preverified message and runs
// the deterministic protocol logic. No crypto happens past this point — the
// Verified value's authentication material is trusted unconditionally.
func (n *Node) OnVerified(v *message.Verified, now time.Time) Output {
	var out Output
	if v.FromClient {
		req, ok := v.Msg.(*message.Request)
		if !ok {
			return out // forged Verified; preverify never builds this
		}
		out = n.applyClientRequest(req, now)
	} else {
		out = n.applyNodeMessage(v.Msg, v.From, now)
	}
	n.observeIO(v.Msg, &out)
	return out
}

// IngressFailure describes a frame the preverify stage rejected. Msg is the
// decoded message when decoding succeeded (metrics only; may be nil).
type IngressFailure struct {
	FromClient bool
	Client     types.ClientID
	From       types.NodeID
	Kind       message.FailKind
	Msg        message.Message
}

// OnIngressFailure applies the node-state reaction to a preverification
// failure: flood accounting and NIC closures for node traffic, blacklisting
// for client signature failures. Keeping these decisions in the apply stage
// (rather than in the concurrent verifiers) keeps flood state deterministic.
func (n *Node) OnIngressFailure(f IngressFailure, now time.Time) Output {
	var out Output
	if n.behavior.Silent {
		return out
	}
	if f.FromClient {
		// An invalid signature blacklists the client: it proves the client
		// is faulty (MACs passed, so nobody else forged the frame). Bad MACs
		// and malformed frames are dropped without reaction — they carry no
		// proof of origin.
		if f.Kind == message.FailBadSig {
			n.client(f.Client, now).blacklisted = true
		}
		n.observeIO(f.Msg, &out)
		return out
	}
	if n.nicClosed(f.From, now) {
		return out
	}
	out = n.countInvalid(f.From, now)
	n.observeIO(f.Msg, &out)
	return out
}

// applyClientRequest processes a preverified client REQUEST.
func (n *Node) applyClientRequest(req *message.Request, now time.Time) Output {
	var out Output
	if n.behavior.Silent {
		return out
	}
	cs := n.client(req.Client, now)
	if cs.blacklisted {
		return out
	}
	if n.tr.Enabled() {
		n.tr.Trace(obs.Event{
			At: now, Type: obs.EvRequestReceived, Client: req.Client, Req: req.ID,
		})
	}
	// Speculative read-only fast path: answer from local state, no ordering,
	// no reply-cache or propagation bookkeeping. The client accepts only on
	// a read quorum (2f+1) of matching replies and re-issues through normal
	// ordering otherwise, so a request the app cannot serve as a read (or an
	// app with no read path at all) is simply dropped here.
	if req.ReadOnly {
		if n.reader == nil {
			return out
		}
		result, ok := n.reader.ExecuteRead(req.Op)
		if !ok {
			return out
		}
		out.ClientMsgs = append(out.ClientMsgs, n.replyTo(req.Client, req.ID, result))
		return out
	}
	// Retransmission of an executed request: resend the cached reply.
	if result, ok := n.cachedReply(cs, req.ID); ok {
		out.ClientMsgs = append(out.ClientMsgs, n.replyTo(req.Client, req.ID, result))
		return out
	}
	// Executed but the cached reply has been evicted: drop. Re-propagating
	// would re-execute on nodes that no longer remember the reply, so the
	// executed watermark wins over helpfulness (the client library re-issues
	// under a fresh ID if it truly never saw the reply).
	if cs.isExecuted(req.ID) {
		return out
	}
	out.merge(n.propagateOwn(req, now))
	return out
}

// propagateOwn runs the Propagation module for a locally verified request.
func (n *Node) propagateOwn(req *message.Request, now time.Time) Output {
	var out Output
	ref := req.Ref()
	if !n.storeBody(ref, req, now) {
		return out
	}
	senders := n.senderSet(ref)
	if !senders[n.cfg.Node] {
		senders[n.cfg.Node] = true
		if !n.behavior.DropPropagate {
			p := &message.Propagate{Req: *n.bodies[ref], Node: n.cfg.Node}
			p.Auth = n.keys.AuthenticatorForNodes(n.cfg.Cluster.N, p.Body())
			out.NodeMsgs = append(out.NodeMsgs, NodeSend{Msg: p})
		}
	}
	out.merge(n.maybeDispatch(ref, now))
	return out
}

// storeBody records a verified request body for its exact ref, bounding the
// per-client pending-body count. It reports whether the body is available.
func (n *Node) storeBody(ref types.RequestRef, req *message.Request, now time.Time) bool {
	if _, seen := n.bodies[ref]; seen {
		return true
	}
	cs := n.client(ref.Client, now)
	if cs.pendingBodies >= maxPendingBodiesPerClient {
		return false
	}
	cs.pendingBodies++
	stored := *req
	stored.Auth = nil
	n.bodies[ref] = &stored
	n.byKey[ref.Key()] = append(n.byKey[ref.Key()], ref)
	return true
}

// maxPendingBodiesPerClient bounds the request bodies a single (possibly
// equivocating) client can keep resident per node.
const maxPendingBodiesPerClient = 4096

// nicClosed reports whether traffic from a peer is currently dropped due to
// a flood closure, expiring the closure once its deadline passes.
func (n *Node) nicClosed(from types.NodeID, now time.Time) bool {
	until, closed := n.closedUntil[from]
	if !closed {
		return false
	}
	if now.Before(until) {
		return true
	}
	delete(n.closedUntil, from)
	return false
}

// applyNodeMessage processes a preverified message from another node:
// PROPAGATE, the per-instance protocol messages, and INSTANCE-CHANGE.
func (n *Node) applyNodeMessage(msg message.Message, from types.NodeID, now time.Time) Output {
	var out Output
	if n.behavior.Silent {
		return out
	}
	if n.nicClosed(from, now) {
		return out
	}

	switch m := msg.(type) {
	case *message.Propagate:
		return n.applyPropagate(m, from, now)

	case *message.InstanceChange:
		return n.onInstanceChange(m, now)

	default:
		return n.applyInstanceMessage(msg, from, now)
	}
}

// applyPropagate processes a preverified PROPAGATE (MAC and the embedded
// request's client signature both already checked).
func (n *Node) applyPropagate(p *message.Propagate, from types.NodeID, now time.Time) Output {
	var out Output
	ref := p.Req.Ref()
	cs := n.client(p.Req.Client, now)
	if cs.blacklisted {
		return out
	}
	// The request already executed here: it is decided, so further
	// PROPAGATEs for its key must not pin fresh bodies or re-enter dispatch.
	if cs.isExecuted(p.Req.ID) {
		return out
	}
	if _, seen := n.bodies[ref]; !seen {
		if !n.storeBody(ref, &p.Req, now) {
			return out
		}
	}
	senders := n.senderSet(ref)
	senders[from] = true
	// Echo our own PROPAGATE the first time we learn of the request.
	if !senders[n.cfg.Node] {
		senders[n.cfg.Node] = true
		if !n.behavior.DropPropagate {
			echo := &message.Propagate{Req: p.Req, Node: n.cfg.Node}
			echo.Auth = n.keys.AuthenticatorForNodes(n.cfg.Cluster.N, echo.Body())
			out.NodeMsgs = append(out.NodeMsgs, NodeSend{Msg: echo})
		}
	}
	out.merge(n.maybeDispatch(ref, now))
	return out
}

func (n *Node) senderSet(ref types.RequestRef) map[types.NodeID]bool {
	senders := n.propagates[ref]
	if senders == nil {
		senders = make(map[types.NodeID]bool, n.cfg.Cluster.WeakQuorum())
		n.propagates[ref] = senders
	}
	return senders
}

// maybeDispatch runs the Dispatch module once f+1 PROPAGATE copies
// (including our own) have been collected: in master-only mode the request
// goes to all f+1 local replicas for redundant ordering; in multi-primary
// mode only to the lane owning the client's partition.
func (n *Node) maybeDispatch(ref types.RequestRef, now time.Time) Output {
	var out Output
	if n.dispatched[ref] {
		return out
	}
	if len(n.propagates[ref]) < n.cfg.Cluster.WeakQuorum() {
		return out
	}
	n.dispatched[ref] = true
	if n.spansOn {
		n.dispatchedAt[ref] = now
	}
	if n.multiPrimary() {
		lane := types.PartitionOf(ref.Client, len(n.replicas))
		n.mon.RequestDispatchedTo(lane, ref, now)
		if n.tr.Enabled() {
			n.tr.Trace(obs.Event{
				At: now, Type: obs.EvRequestDispatched, Client: ref.Client, Req: ref.ID,
			})
		}
		out.merge(n.absorb(lane, n.replicas[lane].AddRequest(ref, now), now))
		return out
	}
	n.mon.RequestDispatched(ref, now)
	if n.tr.Enabled() {
		n.tr.Trace(obs.Event{
			At: now, Type: obs.EvRequestDispatched, Client: ref.Client, Req: ref.ID,
		})
	}
	for i, r := range n.replicas {
		out.merge(n.absorb(types.InstanceID(i), r.AddRequest(ref, now), now))
	}
	return out
}

// applyInstanceMessage routes a preverified protocol message to the right
// local replica. Sender attribution, instance bounds and MACs/signatures
// were all checked by the preverify stage; the bounds recheck below only
// guards against a forged Verified value. A replica-level rejection
// (semantically invalid message) still feeds flood accounting.
func (n *Node) applyInstanceMessage(msg message.Message, from types.NodeID, now time.Time) Output {
	inst, _, ok := message.InstanceAndSender(msg)
	if !ok || int(inst) >= len(n.replicas) || inst < 0 {
		return n.countInvalid(from, now)
	}
	res, err := n.replicas[inst].OnMessage(msg, now)
	if err != nil {
		return n.countInvalid(from, now)
	}
	return n.absorb(inst, res, now)
}

// absorb converts a replica's output into node output: forwards its
// messages, feeds deliveries to the monitor, and routes delivered batches to
// execution — directly for master-instance batches in master-only mode,
// through the round-robin lane merge in multi-primary mode.
func (n *Node) absorb(inst types.InstanceID, res pbft.Output, now time.Time) Output {
	var out Output
	out.Records = append(out.Records, res.Records...)
	for _, ob := range res.Msgs {
		out.NodeMsgs = append(out.NodeMsgs, NodeSend{To: ob.To, Msg: ob.Msg})
	}
	if len(res.Delivered) > 0 && out.OrderedByInstance == nil {
		out.OrderedByInstance = make([]int, len(n.replicas))
	}
	for _, batch := range res.Delivered {
		out.OrderedByInstance[inst] += len(batch.Refs)
		if n.tr.Enabled() {
			n.tr.Trace(obs.Event{
				At: now, Type: obs.EvOrdered, Instance: inst,
				Seq: batch.Seq, View: batch.View, Count: len(batch.Refs),
			})
		}
		// With the parallel scheduler engaged, the batch's executable refs
		// are collected and handed to the wave scheduler whole; the serial
		// path below keeps the original per-ref flow byte-for-byte.
		var execRefs []types.RequestRef
		for _, ref := range batch.Refs {
			if n.spansOn {
				if at, ok := n.dispatchedAt[ref]; ok {
					n.tr.Trace(obs.Event{
						At: now, Type: obs.EvSpan, Stage: obs.StageOrder,
						Instance: inst, Seq: batch.Seq, View: batch.View,
						Client: ref.Client, Req: ref.ID,
						Trace: obs.TraceID(ref.Digest), Dur: now.Sub(at),
					})
				}
			}
			verdict := n.mon.RequestOrdered(inst, ref, now)
			if verdict.Suspicious {
				n.lastSuspect = verdict
				out.merge(n.voteInstanceChange(verdict.Reason, now))
			}
			if !n.multiPrimary() && inst == types.MasterInstance {
				if n.sched.Parallel() {
					execRefs = append(execRefs, ref)
				} else {
					out.merge(n.execute(ref, inst, now))
				}
			}
		}
		if len(execRefs) > 0 {
			out.merge(n.executeWaves(execRefs, inst, now))
		}
		if n.multiPrimary() {
			for _, mb := range n.merge.push(inst, batch.Seq, batch.Refs) {
				n.journal(&out, wal.Record{Kind: wal.KindMerged, Instance: mb.lane, Seq: mb.seq})
				if n.sched.Parallel() {
					out.merge(n.executeWaves(mb.refs, mb.lane, now))
					continue
				}
				for _, ref := range mb.refs {
					out.merge(n.execute(ref, mb.lane, now))
				}
			}
		}
	}
	if n.multiPrimary() {
		n.updateFiller(now)
	}
	return out
}

// execute runs the Execution module for one request in the agreed execution
// order — the master's order in master-only mode, the lane merge's order in
// multi-primary mode; lane records which ordering lane released the request.
// The executed set is keyed by (client, id): if an equivocating client signed
// several bodies under one id, only the first ordered one executes — and
// since the execution order is identical everywhere, every correct node
// picks the same body.
func (n *Node) execute(ref types.RequestRef, lane types.InstanceID, now time.Time) Output {
	var out Output
	key := ref.Key()
	cs := n.client(ref.Client, now)
	if cs.isExecuted(ref.ID) {
		return out
	}
	body := n.bodies[ref]
	if body == nil || body.OpDigest() != ref.Digest {
		// Cannot happen for requests dispatched by this node (dispatch
		// requires the body); guards against divergent state.
		return out
	}
	cs.markExecuted(ref.ID)
	n.journal(&out, wal.Record{
		Kind: wal.KindExecuted, Client: ref.Client, Req: ref.ID,
		Digest: ref.Digest, Op: body.Op, Instance: lane,
	})
	if n.metricsOn && n.executedByLane != nil {
		n.executedByLane[lane].Inc()
	}
	result := n.cfg.App.Execute(ref.Client, ref.ID, body.Op)
	if n.tr.Enabled() {
		n.tr.Trace(obs.Event{
			At: now, Type: obs.EvExecuted, Client: ref.Client, Req: ref.ID,
		})
	}
	cs.cacheReply(ref.ID, result, n.cfg.ReplyCacheSize)
	out.Executions = append(out.Executions, Execution{Ref: ref, Result: result})
	out.ClientMsgs = append(out.ClientMsgs, n.replyTo(ref.Client, ref.ID, result))

	// The request is decided on this node; release propagation state for
	// this ref and any equivocated siblings under the same key.
	for _, sibling := range n.byKey[key] {
		delete(n.bodies, sibling)
		delete(n.propagates, sibling)
		delete(n.dispatched, sibling)
		delete(n.dispatchedAt, sibling)
		cs.pendingBodies--
	}
	delete(n.byKey, key)
	return out
}

// executeWaves runs the Execution module for one ordered batch through the
// parallel scheduler. The per-request effects — executed-set marking,
// journaling, reply caching, propagation-state release — are identical to
// n.execute and happen in sequence order on this (single-threaded) node;
// only the App.Execute calls fan out across worker shards, in waves of
// non-conflicting requests, so goroutine interleaving can never reach the
// node's state, trace or WAL. Requests already executed, duplicated within
// the batch, or lacking a digest-matching body are filtered exactly as the
// serial path filters them.
func (n *Node) executeWaves(refs []types.RequestRef, lane types.InstanceID, now time.Time) Output {
	var out Output
	type pendingExec struct {
		ref  types.RequestRef
		body *message.Request
	}
	var batch []pendingExec
	for _, ref := range refs {
		cs := n.client(ref.Client, now)
		if cs.isExecuted(ref.ID) {
			continue
		}
		body := n.bodies[ref]
		if body == nil || body.OpDigest() != ref.Digest {
			// Cannot happen for requests dispatched by this node (dispatch
			// requires the body); guards against divergent state.
			continue
		}
		cs.markExecuted(ref.ID)
		n.journal(&out, wal.Record{
			Kind: wal.KindExecuted, Client: ref.Client, Req: ref.ID,
			Digest: ref.Digest, Op: body.Op, Instance: lane,
		})
		if n.metricsOn && n.executedByLane != nil {
			n.executedByLane[lane].Inc()
		}
		batch = append(batch, pendingExec{ref: ref, body: body})
	}
	if len(batch) == 0 {
		return out
	}
	ops := make([]exec.Op, len(batch))
	for i, p := range batch {
		ops[i] = exec.Op{Client: p.ref.Client, ID: p.ref.ID, Body: p.body.Op}
	}
	res := n.sched.ExecuteBatch(ops)
	out.ExecWaves = res.Waves
	if n.metricsOn && n.execWaves != nil {
		n.execWaves.Add(uint64(len(res.Waves)))
		n.execConflicts.Add(uint64(res.Conflicts))
		n.execParallel.Add(uint64(res.Parallel))
	}
	for i, p := range batch {
		ref, result := p.ref, res.Results[i]
		if n.tr.Enabled() {
			n.tr.Trace(obs.Event{
				At: now, Type: obs.EvExecuted, Client: ref.Client, Req: ref.ID,
			})
		}
		cs := n.client(ref.Client, now)
		cs.cacheReply(ref.ID, result, n.cfg.ReplyCacheSize)
		out.Executions = append(out.Executions, Execution{Ref: ref, Result: result, Wave: res.Wave[i]})
		out.ClientMsgs = append(out.ClientMsgs, n.replyTo(ref.Client, ref.ID, result))

		key := ref.Key()
		for _, sibling := range n.byKey[key] {
			delete(n.bodies, sibling)
			delete(n.propagates, sibling)
			delete(n.dispatched, sibling)
			delete(n.dispatchedAt, sibling)
			cs.pendingBodies--
		}
		delete(n.byKey, key)
	}
	return out
}

// replyTo builds an authenticated REPLY.
func (n *Node) replyTo(client types.ClientID, id types.RequestID, result []byte) ClientSend {
	rep := &message.Reply{Client: client, ID: id, Result: result, Node: n.cfg.Node}
	rep.MAC = n.keys.MACForClient(client, rep.Body())
	return ClientSend{To: client, Msg: rep}
}

// cachedReply looks up a cached reply for a retransmitted request.
func (n *Node) cachedReply(cs *clientState, id types.RequestID) ([]byte, bool) {
	for i := len(cs.replies) - 1; i >= 0; i-- {
		if cs.replies[i].id == id {
			return cs.replies[i].result, true
		}
	}
	return nil, false
}

// client returns c's table entry, creating it (and possibly evicting the
// LRU quiescent client of c's shard) on first sight. now timestamps the
// eviction trace event.
func (n *Node) client(c types.ClientID, now time.Time) *clientState {
	cs, ev, evicted := n.table.get(c)
	if evicted && n.tr.Enabled() {
		n.tr.Trace(obs.Event{
			At: now, Type: obs.EvClientEvicted, Client: ev.client, Count: ev.size,
		})
	}
	return cs
}

// ClientCount returns the number of resident client-table entries (tests
// and the bounded-memory gate).
func (n *Node) ClientCount() int { return n.table.count() }

// AdmitIngress is the admission-control gate drivers call for every client
// frame BEFORE spending crypto on it: false means the client's shard has
// exhausted its pending budget and the frame should be shed (reject-with-
// busy). Unlike every other Node method this one is safe for concurrent use
// with the apply stage — it touches only shard-local admission state — which
// is what lets the runtime's reader shed floods ahead of the verifier pool.
func (n *Node) AdmitIngress(c types.ClientID) bool { return n.table.admit(c) }

// ReleaseIngress returns an AdmitIngress slot once the admitted frame has
// left the apply stage. Concurrency-safe like AdmitIngress.
func (n *Node) ReleaseIngress(c types.ClientID) { n.table.release(c) }

// countInvalid records an invalid message from a peer and closes its NIC if
// it exceeds the flood threshold within the window.
func (n *Node) countInvalid(from types.NodeID, now time.Time) Output {
	var out Output
	if now.Sub(n.floodStart) > n.cfg.FloodWindow {
		n.floodStart = now
		for k := range n.floodCounts {
			delete(n.floodCounts, k)
		}
	}
	n.floodCounts[from]++
	if n.floodCounts[from] >= n.cfg.FloodThreshold {
		until := now.Add(n.cfg.NICClosePeriod)
		n.closedUntil[from] = until
		out.NICCloses = append(out.NICCloses, NICClose{Peer: from, Until: until})
		n.floodCounts[from] = 0
		if n.tr.Enabled() {
			n.tr.Trace(obs.Event{At: now, Type: obs.EvNICClose, Peer: from})
		}
	}
	return out
}
