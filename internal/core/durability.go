package core

import (
	"fmt"
	"time"

	"rbft/internal/message"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// Durability at the node level mirrors pbft's (see pbft/durability.go): when
// Config.Durable is set, node-owned transitions that must survive a crash —
// executions and completed instance changes — attach wal.Records to the
// Output, and the driver persists them before transmitting. Replica records
// flow through untouched.

// journal appends rec to out when durability is on.
func (n *Node) journal(out *Output, rec wal.Record) {
	if !n.cfg.Durable {
		return
	}
	out.Records = append(out.Records, rec)
}

// RestoreStats summarises one WAL replay through Restore.
type RestoreStats struct {
	// Records is the total number of records replayed.
	Records int
	// Executed is how many executions were redone against the application.
	Executed int
	// View and CPI are the recovered node-level protocol position.
	View types.View
	CPI  uint64
}

// Restore rebuilds crash-survivable state by replaying a WAL record stream
// (typically (*wal.Log).Replay) into a freshly constructed Node. It must
// run before any live input. Executions are redone against the application
// in their original order, so the app state, the executed set and the
// reply cache come back exactly as they were at the crash; the protocol
// instances recover the promises they must not contradict plus their last
// stable checkpoint, and re-learn everything else through the normal fetch
// machinery.
func (n *Node) Restore(replay func(func(wal.Record) error) error) (RestoreStats, error) {
	var stats RestoreStats
	err := replay(func(rec wal.Record) error {
		stats.Records++
		switch rec.Kind {
		case wal.KindInstanceChange:
			n.cpi = rec.CPI
			n.view = rec.View
		case wal.KindExecuted:
			redone, err := n.restoreExecution(rec)
			if err != nil {
				return err
			}
			if redone {
				stats.Executed++
			}
		case wal.KindMerged:
			if n.merge == nil {
				return fmt.Errorf("core: restore: merged record in master-only mode")
			}
			if int(rec.Instance) >= len(n.replicas) || rec.Instance < 0 {
				return fmt.Errorf("core: restore: merged record for lane %d, node has %d", rec.Instance, len(n.replicas))
			}
			n.merge.restoreCursor(rec.Instance, rec.Seq)
		default:
			if int(rec.Instance) >= len(n.replicas) || rec.Instance < 0 {
				return fmt.Errorf("core: restore: record for instance %d, node has %d", rec.Instance, len(n.replicas))
			}
			n.replicas[rec.Instance].Restore(rec)
		}
		return nil
	})
	if err != nil {
		return stats, err
	}
	for _, r := range n.replicas {
		r.FinishRestore(n.view)
	}
	if n.merge != nil {
		// Clamp merge cursors to each lane's stable-checkpoint horizon
		// (LastDelivered == the replayed stable seq right after
		// FinishRestore): sequences below it are beyond fetch, so the
		// merge must not wait on them. See laneMerge.finishRestore.
		stable := make([]types.SeqNum, len(n.replicas))
		for i, r := range n.replicas {
			stable[i] = r.LastDelivered()
		}
		n.merge.finishRestore(stable)
	}
	stats.View = n.view
	stats.CPI = n.cpi
	return stats, nil
}

// restoreExecution redoes one logged execution. The log carries the full op
// so the application state machine is rebuilt deterministically; the digest
// ties the record back to the exact request that was ordered.
func (n *Node) restoreExecution(rec wal.Record) (bool, error) {
	check := message.Request{Client: rec.Client, ID: rec.Req, Op: rec.Op}
	if check.OpDigest() != rec.Digest {
		return false, fmt.Errorf("%w: executed record digest mismatch for client %d req %d",
			wal.ErrCorrupt, rec.Client, rec.Req)
	}
	// Replay runs before any live input, so the zero time stamps any
	// (traceless) eviction the table performs while rebuilding.
	cs := n.client(rec.Client, time.Time{})
	if cs.isExecuted(rec.Req) {
		return false, nil
	}
	cs.markExecuted(rec.Req)
	result := n.cfg.App.Execute(rec.Client, rec.Req, rec.Op)
	cs.cacheReply(rec.Req, result, n.cfg.ReplyCacheSize)
	return true, nil
}
