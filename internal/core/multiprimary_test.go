package core

import (
	"testing"
	"time"

	"rbft/internal/app"
	"rbft/internal/client"
	"rbft/internal/pbft"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// multiPrimaryTweak switches a test cluster to multi-primary ordering.
func multiPrimaryTweak(c *Config) { c.OrderingMode = types.OrderingMultiPrimary }

// TestMultiPrimaryEndToEnd: with clients on both partitions, every request
// completes, every node executes the identical merged sequence, and both
// lanes (not just the master) contribute ordered batches to it.
func TestMultiPrimaryEndToEnd(t *testing.T) {
	nc := newNodeCluster(t, 1, multiPrimaryTweak)
	// Clients 1..4 split across the two lanes (PartitionOf: odd ids on lane
	// 1, even on lane 0).
	for i := 0; i < 10; i++ {
		for c := types.ClientID(1); c <= 4; c++ {
			nc.sendRequest(c, []byte{0, 0, 0, 0, 0, 0, 0, 1})
		}
	}
	nc.runFor(300 * time.Millisecond)

	for c := types.ClientID(1); c <= 4; c++ {
		if got := len(nc.completed[c]); got != 10 {
			t.Fatalf("client %d completed %d requests, want 10", c, got)
		}
	}
	if got := len(nc.executed[0]); got != 40 {
		t.Fatalf("node 0 executed %d requests, want 40", got)
	}
	for i := 1; i < nc.cfg.N; i++ {
		if !sameRefs(nc.executed[0], nc.executed[types.NodeID(i)]) {
			t.Fatalf("node %d executed a different merged sequence", i)
		}
		if nc.apps[i].Fingerprint() != nc.apps[0].Fingerprint() {
			t.Fatalf("node %d execution fingerprint differs", i)
		}
	}
	// Both partitions were ordered by their own lane: every merge cursor
	// advanced past genesis.
	for i, n := range nc.nodes {
		cursors := n.MergeCursors()
		if len(cursors) != 2 {
			t.Fatalf("node %d has %d merge cursors, want 2", i, len(cursors))
		}
		for lane, c := range cursors {
			if c < 2 {
				t.Fatalf("node %d lane %d cursor = %d: lane never contributed a batch", i, lane, c)
			}
		}
	}
}

// TestMultiPrimaryBackupLaneEquivocationDedup: an equivocating client whose
// partition lands on a backup lane signs two different bodies under one
// request id. Only the first body in the lane's agreed order executes, every
// node picks the same one, and the executed record is attributed to the
// backup lane.
func TestMultiPrimaryBackupLaneEquivocationDedup(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) {
		multiPrimaryTweak(c)
		c.Durable = true
	})
	// Client 1 is odd, so types.PartitionOf places it on lane 1 — a backup
	// lane whose order master-only mode would never execute.
	if lane := types.PartitionOf(1, nc.cfg.Instances()); lane != 1 {
		t.Fatalf("client 1 partitions to lane %d, test expects 1", lane)
	}
	reqA := nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 2})
	// A second, validly signed body under the same request id: a fresh
	// client state machine for the same identity produces id 1 again.
	evil := client.New(client.Config{Cluster: nc.cfg, ID: 1}, nc.ks.ClientRing(1))
	reqB := evil.NewRequest([]byte{0, 0, 0, 0, 0, 0, 0, 9}, nc.now)
	if reqA.ID != reqB.ID {
		t.Fatalf("equivocation ids diverged: %d vs %d", reqA.ID, reqB.ID)
	}
	if reqA.OpDigest() == reqB.OpDigest() {
		t.Fatal("equivocation bodies collide")
	}
	for _, n := range nc.cfg.AllNodes() {
		nc.queue = append(nc.queue, clusterEvent{isClient: true, fromClient: 1, toNode: n, nodeDst: true, msg: reqB})
	}
	nc.runFor(200 * time.Millisecond)

	for i := 0; i < nc.cfg.N; i++ {
		if got := len(nc.executed[types.NodeID(i)]); got != 1 {
			t.Fatalf("node %d executed %d bodies for the equivocated id, want 1", i, got)
		}
		if !sameRefs(nc.executed[0], nc.executed[types.NodeID(i)]) {
			t.Fatalf("node %d executed a different body than node 0", i)
		}
		if nc.apps[i].Fingerprint() != nc.apps[0].Fingerprint() {
			t.Fatalf("node %d fingerprint differs: nodes disagree on the surviving body", i)
		}
	}
	// The surviving execution was released by the client's owning backup
	// lane, not the master.
	for _, rec := range nc.records[0] {
		if rec.Kind == wal.KindExecuted && rec.Instance != 1 {
			t.Fatalf("executed record attributed to lane %d, want 1", rec.Instance)
		}
	}
}

// TestMultiPrimaryBackupLaneReplyCacheEviction: reply-cache bounds and
// executed-set eviction behave identically when the executing order comes
// from a backup lane's partition.
func TestMultiPrimaryBackupLaneReplyCacheEviction(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) {
		multiPrimaryTweak(c)
		c.ReplyCacheSize = 2
		c.Durable = true
	})
	for i := 1; i <= 3; i++ {
		nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 1})
	}
	nc.runFor(200 * time.Millisecond)

	n := nc.nodes[0]
	if got := len(nc.executed[0]); got != 3 {
		t.Fatalf("node 0 executed %d requests, want 3", got)
	}
	cs := n.client(1, nc.now)
	if len(cs.replies) != 2 {
		t.Fatalf("reply cache holds %d entries, want 2", len(cs.replies))
	}
	if cs.replies[0].id != 2 || cs.replies[1].id != 3 {
		t.Fatalf("cache kept ids %d,%d, want 2,3", cs.replies[0].id, cs.replies[1].id)
	}
	if !cs.isExecuted(1) {
		t.Fatal("executed watermark forgot the request whose reply was evicted")
	}
	// All three executions were released by the backup lane owning the
	// client's partition.
	executedRecords := 0
	for _, rec := range nc.records[0] {
		if rec.Kind == wal.KindExecuted {
			executedRecords++
			if rec.Instance != 1 {
				t.Fatalf("executed record attributed to lane %d, want 1", rec.Instance)
			}
		}
	}
	if executedRecords != 3 {
		t.Fatalf("logged %d executed records, want 3", executedRecords)
	}
}

// TestMultiPrimarySlowPartitionOwnerTriggersInstanceChange: a lane primary
// that silently drops its partition is caught by the per-lane Δ test (its
// partition's completion ratio collapses while the other lane's stays at 1),
// the resulting instance change rotates every lane's primary off the faulty
// node, and the starved partition then completes.
func TestMultiPrimarySlowPartitionOwnerTriggersInstanceChange(t *testing.T) {
	nc := newNodeCluster(t, 1, multiPrimaryTweak)
	// In view 0, lane 1's primary is node 1 (PrimaryOf(0, 1)).
	faulty := nc.nodes[0].replicas[1].Primary()
	nc.nodes[faulty].SetBehavior(Behavior{
		Instance: map[types.InstanceID]pbft.Behavior{
			1: {Silent: true},
		},
	})
	oldView := nc.nodes[0].View()

	// Sustained load on both partitions so the per-lane ratios are
	// comparable: client 2 on lane 0, client 1 starved on lane 1.
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			nc.sendRequest(1, nil)
			nc.sendRequest(2, nil)
		}
		nc.runFor(60 * time.Millisecond)
	}

	if len(nc.icEvents) == 0 {
		t.Fatal("no instance change despite a silent partition owner")
	}
	for i, n := range nc.nodes {
		if types.NodeID(i) == faulty {
			continue
		}
		if n.View() == oldView {
			t.Fatalf("node %d still in view %d", i, oldView)
		}
		if n.replicas[1].Primary() == faulty {
			t.Fatalf("lane 1's primary did not move off node %d", faulty)
		}
	}
	// Liveness restored for the starved partition.
	nc.runFor(500 * time.Millisecond)
	if got := len(nc.completed[1]); got != 100 {
		t.Fatalf("starved partition's client completed %d of 100 after instance change", got)
	}
	if got := len(nc.completed[2]); got != 100 {
		t.Fatalf("healthy partition's client completed %d of 100", got)
	}
}

// TestMultiPrimaryDurableRestartRecoversCursors: a crashed node rebuilt from
// its WAL records resumes with the same per-lane merge cursors it had, never
// re-executes, and keeps pace with the cluster afterwards.
func TestMultiPrimaryDurableRestartRecoversCursors(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) {
		multiPrimaryTweak(c)
		c.Durable = true
		c.CheckpointInterval = 2
	})
	const victim = types.NodeID(2)

	for i := 0; i < 10; i++ {
		nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 2})
		nc.sendRequest(2, []byte{0, 0, 0, 0, 0, 0, 0, 3})
	}
	nc.runFor(300 * time.Millisecond)
	if got := len(nc.completed[1]); got != 10 {
		t.Fatalf("client 1 completed %d before crash, want 10", got)
	}
	if got := len(nc.completed[2]); got != 10 {
		t.Fatalf("client 2 completed %d before crash, want 10", got)
	}

	recs := nc.records[victim]
	merged := 0
	for _, r := range recs {
		if r.Kind == wal.KindMerged {
			merged++
		}
	}
	if merged == 0 {
		t.Fatal("durable multi-primary node logged no merged-cursor records")
	}

	oldCursors := nc.nodes[victim].MergeCursors()
	oldFP := nc.apps[victim].Fingerprint()
	counter := app.NewCounter()
	restored := New(durableConfig(nc, victim, counter, func(c *Config) {
		multiPrimaryTweak(c)
		c.CheckpointInterval = 2
	}), nc.ks.NodeRing(victim))
	stats, err := restored.Restore(replayOf(recs))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if stats.Executed != len(nc.executed[victim]) {
		t.Fatalf("Restore redid %d executions, want %d", stats.Executed, len(nc.executed[victim]))
	}
	if counter.Fingerprint() != oldFP {
		t.Fatal("restored application fingerprint differs from pre-crash state")
	}
	got := restored.MergeCursors()
	if len(got) != len(oldCursors) {
		t.Fatalf("restored %d cursors, want %d", len(got), len(oldCursors))
	}
	for lane := range got {
		if got[lane] != oldCursors[lane] {
			t.Fatalf("lane %d cursor restored to %d, want %d (cursors %v vs %v)",
				lane, got[lane], oldCursors[lane], got, oldCursors)
		}
	}

	// Rejoin and keep going: no double execution, no skipped partition.
	nc.nodes[victim] = restored
	nc.apps[victim] = counter
	for i := 0; i < 5; i++ {
		nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 2})
		nc.sendRequest(2, []byte{0, 0, 0, 0, 0, 0, 0, 3})
	}
	nc.runFor(400 * time.Millisecond)
	if got := len(nc.completed[1]); got != 15 {
		t.Fatalf("client 1 completed %d after restart, want 15", got)
	}
	if got := len(nc.completed[2]); got != 15 {
		t.Fatalf("client 2 completed %d after restart, want 15", got)
	}
	if total := counter.Total(1); total != 30 {
		t.Fatalf("restored node counter total for client 1 = %d, want 30 (each request exactly once)", total)
	}
	for i := 0; i < nc.cfg.N; i++ {
		if nc.apps[i].Fingerprint() != nc.apps[0].Fingerprint() {
			t.Fatalf("node %d fingerprint diverged after restart", i)
		}
	}
}

// TestMasterOnlyHasNoMergeState: the default mode must not grow any
// multi-primary machinery — no merge, no cursors, no lane records.
func TestMasterOnlyHasNoMergeState(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) { c.Durable = true })
	nc.sendRequest(1, nil)
	nc.runFor(100 * time.Millisecond)
	if cursors := nc.nodes[0].MergeCursors(); cursors != nil {
		t.Fatalf("master-only node has merge cursors %v", cursors)
	}
	for _, rec := range nc.records[0] {
		if rec.Kind == wal.KindMerged {
			t.Fatal("master-only node journalled a merged-cursor record")
		}
		if rec.Kind == wal.KindExecuted && rec.Instance != types.MasterInstance {
			t.Fatalf("master-only executed record attributed to lane %d", rec.Instance)
		}
	}
}
