package core

import (
	"time"

	"rbft/internal/message"
	"rbft/internal/monitor"
	"rbft/internal/obs"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// voteInstanceChange broadcasts this node's INSTANCE-CHANGE for the current
// cpi (at most once per cpi) and evaluates the quorum.
func (n *Node) voteInstanceChange(reason monitor.Reason, now time.Time) Output {
	var out Output
	votes := n.votesFor(n.cpi)
	if votes[n.cfg.Node] {
		return out // already voted this round
	}
	votes[n.cfg.Node] = true
	ic := &message.InstanceChange{CPI: n.cpi, Node: n.cfg.Node}
	ic.Auth = n.keys.AuthenticatorForNodes(n.cfg.Cluster.N, ic.Body())
	out.NodeMsgs = append(out.NodeMsgs, NodeSend{Msg: ic})
	if n.tr.Enabled() {
		n.tr.Trace(obs.Event{
			At: now, Type: obs.EvInstanceChangeStart,
			CPI: n.cpi, Reason: reason.String(),
		})
	}
	out.merge(n.checkInstanceChangeQuorum(reason, now))
	return out
}

// onInstanceChange processes a MAC-verified INSTANCE-CHANGE from a peer,
// per the paper: discard if the cpi is stale; otherwise record it and echo
// our own vote if our monitor also observed the problem.
func (n *Node) onInstanceChange(ic *message.InstanceChange, now time.Time) Output {
	var out Output
	if ic.CPI < n.cpi {
		return out // intended for a previous instance change
	}
	votes := n.votesFor(ic.CPI)
	votes[ic.Node] = true

	// "The node checks if it should also send an INSTANCE_CHANGE message. It
	// does so only if it also observes too much difference between the
	// performance of the replicas."
	if ic.CPI == n.cpi && n.lastSuspect.Suspicious && !votes[n.cfg.Node] {
		out.merge(n.voteInstanceChange(n.lastSuspect.Reason, now))
		return out
	}
	out.merge(n.checkInstanceChangeQuorum(n.lastSuspect.Reason, now))
	return out
}

// checkInstanceChangeQuorum performs the instance change once 2f+1 matching
// INSTANCE-CHANGE messages for the current cpi have been collected.
func (n *Node) checkInstanceChangeQuorum(reason monitor.Reason, now time.Time) Output {
	var out Output
	votes := n.icVotes[n.cpi]
	if len(votes) < n.cfg.Cluster.Quorum() {
		return out
	}
	n.cpi++
	n.view++
	n.lastSuspect = monitor.Verdict{}
	n.mon.Reset(now)
	for v := range n.icVotes {
		if v < n.cpi {
			delete(n.icVotes, v)
		}
	}
	out.InstanceChanges = append(out.InstanceChanges, ICEvent{
		CPI:     n.cpi,
		NewView: n.view,
		Reason:  reason,
	})
	// Journal before the replicas' view-change records so a replay sees the
	// node-level transition first, exactly as it happened.
	n.journal(&out, wal.Record{Kind: wal.KindInstanceChange, CPI: n.cpi, View: n.view})
	if n.tr.Enabled() {
		n.tr.Trace(obs.Event{
			At: now, Type: obs.EvInstanceChangeComplete,
			CPI: n.cpi, View: n.view, Reason: reason.String(),
		})
	}
	// Every local replica view-changes at once, rotating all primaries.
	for i, r := range n.replicas {
		out.merge(n.absorb(types.InstanceID(i), r.StartViewChange(n.view, now), now))
	}
	return out
}

func (n *Node) votesFor(cpi uint64) map[types.NodeID]bool {
	votes := n.icVotes[cpi]
	if votes == nil {
		votes = make(map[types.NodeID]bool, n.cfg.Cluster.Quorum())
		n.icVotes[cpi] = votes
	}
	return votes
}
