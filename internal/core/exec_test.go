package core

import (
	"fmt"
	"testing"
	"time"

	"rbft/internal/app"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// newKVCluster builds a nodeCluster whose nodes run the KV application (which
// implements app.ConflictKeyer) with the given parallel worker count. The
// returned slice holds each node's store for state comparison; nc.apps still
// holds the unused Counters newNodeCluster allocates.
func newKVCluster(t *testing.T, f, workers int, tweak func(*Config)) (*nodeCluster, []*app.KV) {
	t.Helper()
	var kvs []*app.KV
	nc := newNodeCluster(t, f, func(c *Config) {
		kv := app.NewKV()
		kvs = append(kvs, kv)
		c.App = kv
		c.ExecWorkers = workers
		if tweak != nil {
			tweak(c)
		}
	})
	return nc, kvs
}

// kvWorkload sends a conflict-dense KV mix from several clients: repeated
// writes to hot keys, reads between them, deletes, and malformed ops. Returns
// the number of requests per client.
func kvWorkload(nc *nodeCluster) map[types.ClientID]int {
	sent := make(map[types.ClientID]int)
	for round := 0; round < 6; round++ {
		for c := types.ClientID(1); c <= 3; c++ {
			ops := []string{
				fmt.Sprintf("PUT hot v%d-%d", round, c), // write/write conflicts
				fmt.Sprintf("PUT k%d-%d x", c, round),   // disjoint writes
				"GET hot",                               // read-after-write
				fmt.Sprintf("DEL k%d-%d", c, round-1),   // write after earlier rounds
				"NOPE arg",                              // malformed, commutes
			}
			for _, op := range ops {
				nc.sendRequest(c, []byte(op))
				sent[c]++
			}
		}
	}
	return sent
}

// TestExecParallelClusterConverges drives a full cluster with the parallel
// scheduler engaged and checks the replicated-state-machine property end to
// end: every node executes the same sequence and lands in the same KV state,
// and every client reply is byte-identical to a cluster running serial apply.
func TestExecParallelClusterConverges(t *testing.T) {
	par, parKVs := newKVCluster(t, 1, 4, nil)
	ser, serKVs := newKVCluster(t, 1, 0, nil)

	sentPar := kvWorkload(par)
	sentSer := kvWorkload(ser)
	par.runFor(500 * time.Millisecond)
	ser.runFor(500 * time.Millisecond)

	for c, want := range sentPar {
		if got := len(par.completed[c]); got != want {
			t.Fatalf("parallel cluster: client %d completed %d of %d", c, got, want)
		}
		if got := len(ser.completed[c]); got != sentSer[c] {
			t.Fatalf("serial cluster: client %d completed %d of %d", c, got, sentSer[c])
		}
	}

	// All parallel nodes agree with each other.
	want := fmt.Sprint(parKVs[0].Snapshot())
	for i := 1; i < par.cfg.N; i++ {
		if got := fmt.Sprint(parKVs[i].Snapshot()); got != want {
			t.Fatalf("node %d KV state diverged:\n%s\nwant:\n%s", i, got, want)
		}
		if !sameRefs(par.executed[0], par.executed[types.NodeID(i)]) {
			t.Fatalf("node %d executed a different sequence", i)
		}
	}
	// And with the serial reference cluster.
	if got := fmt.Sprint(serKVs[0].Snapshot()); got != want {
		t.Fatalf("parallel state differs from serial reference:\n%s\nwant:\n%s", want, got)
	}

	// Replies, matched by request ID, are byte-identical serial vs parallel.
	for c := range sentPar {
		serByID := make(map[types.RequestID]string)
		for _, done := range ser.completed[c] {
			serByID[done.ID] = string(done.Result)
		}
		for _, done := range par.completed[c] {
			if string(done.Result) != serByID[done.ID] {
				t.Fatalf("client %d req %d: parallel reply %q, serial reply %q",
					c, done.ID, done.Result, serByID[done.ID])
			}
		}
	}
}

// TestExecParallelMultiPrimaryConverges repeats the convergence check with the
// multi-primary ordering mode, where executeWaves consumes lane-merge batches.
func TestExecParallelMultiPrimaryConverges(t *testing.T) {
	nc, kvs := newKVCluster(t, 1, 4, multiPrimaryTweak)
	sent := kvWorkload(nc)
	nc.runFor(500 * time.Millisecond)
	for c, want := range sent {
		if got := len(nc.completed[c]); got != want {
			t.Fatalf("client %d completed %d of %d", c, got, want)
		}
	}
	want := fmt.Sprint(kvs[0].Snapshot())
	for i := 1; i < nc.cfg.N; i++ {
		if got := fmt.Sprint(kvs[i].Snapshot()); got != want {
			t.Fatalf("node %d KV state diverged under multi-primary", i)
		}
		if !sameRefs(nc.executed[0], nc.executed[types.NodeID(i)]) {
			t.Fatalf("node %d executed a different sequence", i)
		}
	}
}

// TestExecRetransmissionNotReExecuted: with the parallel scheduler engaged,
// a retransmitted request must be answered from the reply cache without
// reaching the application again.
func TestExecRetransmissionNotReExecuted(t *testing.T) {
	nc, kvs := newKVCluster(t, 1, 4, nil)
	req := nc.sendRequest(1, []byte("PUT a once"))
	nc.runFor(100 * time.Millisecond)
	if got := len(nc.completed[1]); got != 1 {
		t.Fatalf("completed %d, want 1", got)
	}
	executed := len(nc.executed[0])
	out := nc.nodes[0].OnClientRequest(req, nc.now)
	if len(out.Executions) != 0 {
		t.Fatal("retransmission re-executed through the scheduler")
	}
	if len(out.ClientMsgs) != 1 {
		t.Fatalf("retransmission produced %d client messages, want 1 cached reply", len(out.ClientMsgs))
	}
	if len(nc.executed[0]) != executed {
		t.Fatal("executed-ref log grew on retransmission")
	}
	if v := kvs[0].Snapshot()["a"]; v != "once" {
		t.Fatalf("state[a] = %q, want %q", v, "once")
	}
}

// TestExecDurableRestartCounter runs a durable cluster with the scheduler
// engaged (the Counter's global write key makes every wave serial, but the
// batch still flows through executeWaves and its journaling), crashes a node,
// and checks that a serial WAL replay reproduces the exact order-sensitive
// fingerprint with no double execution.
func TestExecDurableRestartCounter(t *testing.T) {
	nc := newNodeCluster(t, 1, func(c *Config) {
		c.Durable = true
		c.ExecWorkers = 4
	})
	const victim = types.NodeID(1)
	for i := 0; i < 20; i++ {
		nc.sendRequest(1, []byte{0, 0, 0, 0, 0, 0, 0, 3}) // +3 each
	}
	nc.runFor(200 * time.Millisecond)
	if got := len(nc.completed[1]); got != 20 {
		t.Fatalf("completed %d of 20 before crash", got)
	}

	recs := nc.records[victim]
	kinds := make(map[wal.Kind]int)
	for _, r := range recs {
		kinds[r.Kind]++
	}
	if kinds[wal.KindExecuted] != len(nc.executed[victim]) {
		t.Fatalf("journaled %d executions, node reported %d (batch execution must journal per request)",
			kinds[wal.KindExecuted], len(nc.executed[victim]))
	}

	oldFP := nc.apps[victim].Fingerprint()
	counter := app.NewCounter()
	restored := New(durableConfig(nc, victim, counter, func(c *Config) { c.ExecWorkers = 4 }), nc.ks.NodeRing(victim))
	stats, err := restored.Restore(replayOf(recs))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if stats.Executed != len(nc.executed[victim]) {
		t.Fatalf("Restore redid %d executions, want %d", stats.Executed, len(nc.executed[victim]))
	}
	if counter.Fingerprint() != oldFP {
		t.Fatal("restored fingerprint differs: serial replay did not reproduce wave execution")
	}
	if total := counter.Total(1); total != 60 {
		t.Fatalf("restored total = %d, want 60 (a request executed twice or not at all)", total)
	}
}

// TestExecDurableRestartKV is the same crash/replay check against the KV
// store, where waves genuinely run in parallel before the crash.
func TestExecDurableRestartKV(t *testing.T) {
	nc, kvs := newKVCluster(t, 1, 4, func(c *Config) { c.Durable = true })
	const victim = types.NodeID(2)
	sent := kvWorkload(nc)
	nc.runFor(500 * time.Millisecond)
	for c, want := range sent {
		if got := len(nc.completed[c]); got != want {
			t.Fatalf("client %d completed %d of %d", c, got, want)
		}
	}

	recs := nc.records[victim]
	kv := app.NewKV()
	restored := New(durableConfig(nc, victim, nil, func(c *Config) {
		c.App = kv
		c.ExecWorkers = 4
	}), nc.ks.NodeRing(victim))
	stats, err := restored.Restore(replayOf(recs))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if stats.Executed != len(nc.executed[victim]) {
		t.Fatalf("Restore redid %d executions, want %d", stats.Executed, len(nc.executed[victim]))
	}
	if got, want := fmt.Sprint(kv.Snapshot()), fmt.Sprint(kvs[victim].Snapshot()); got != want {
		t.Fatalf("restored KV state differs from pre-crash state:\n%s\nwant:\n%s", got, want)
	}
}

// TestExecSerialFallbackIdentical: ExecWorkers=0 with a keyed app must leave
// the node on the serial path — same executions, same output shape (no
// ExecWaves) — so existing deployments are byte-identical to before.
func TestExecSerialFallbackIdentical(t *testing.T) {
	nc, _ := newKVCluster(t, 1, 0, nil)
	if nc.nodes[0].sched.Parallel() {
		t.Fatal("ExecWorkers=0 must not engage the parallel scheduler")
	}
	nc.sendRequest(1, []byte("PUT a 1"))
	nc.runFor(100 * time.Millisecond)
	if got := len(nc.completed[1]); got != 1 {
		t.Fatalf("completed %d, want 1", got)
	}
}
