package core

import (
	"sort"
	"testing"

	"rbft/internal/types"
)

// laneRef builds the deterministic batch contents for lane l's sequence s in
// merge tests: the contents only matter for identity checks.
func laneRef(l types.InstanceID, s types.SeqNum) []types.RequestRef {
	return []types.RequestRef{{
		Client: types.ClientID(l),
		ID:     types.RequestID(s),
		Digest: types.Digest{byte(l), byte(s)},
	}}
}

func TestLaneMergeRoundRobin(t *testing.T) {
	m := newLaneMerge(2)
	if out := m.push(1, 1, laneRef(1, 1)); len(out) != 0 {
		t.Fatalf("lane 1 released %d batches while lane 0 is empty", len(out))
	}
	if lane, ok := m.stalled(); !ok || lane != 0 {
		t.Fatalf("stalled() = (%d, %v), want (0, true)", lane, ok)
	}
	out := m.push(0, 1, laneRef(0, 1))
	if len(out) != 2 {
		t.Fatalf("released %d batches, want 2", len(out))
	}
	if out[0].lane != 0 || out[0].seq != 1 || out[1].lane != 1 || out[1].seq != 1 {
		t.Fatalf("release order %v, want lane0/1 then lane1/1", out)
	}
	if _, ok := m.stalled(); ok {
		t.Fatal("drained merge reports a stall")
	}
	// A redelivery of an already-merged sequence is discarded.
	if out := m.push(0, 1, laneRef(0, 1)); len(out) != 0 {
		t.Fatalf("redelivery released %d batches", len(out))
	}
	if got := m.cursors(); got[0] != 2 || got[1] != 2 {
		t.Fatalf("cursors = %v, want [2 2]", got)
	}
}

func TestLaneMergeRestore(t *testing.T) {
	m := newLaneMerge(2)
	// Replayed merged records: lane 0 consumed through 3, lane 1 through 2.
	m.restoreCursor(0, 1)
	m.restoreCursor(0, 2)
	m.restoreCursor(0, 3)
	m.restoreCursor(1, 1)
	m.restoreCursor(1, 2)
	// Lane 1's stable checkpoint ran ahead to 4 while the merge waited on
	// lane 0: the clamp must skip the unfetchable gap.
	m.finishRestore([]types.SeqNum{3, 4})
	if got := m.cursors(); got[0] != 4 || got[1] != 5 {
		t.Fatalf("cursors after restore = %v, want [4 5]", got)
	}
	// Strict rotation consumed lane 0 three times and lane 1 twice... but
	// the clamp moved lane 1 ahead; the turn is the first lane with the
	// minimal cursor, so the rotation resumes on lane 0.
	if m.turn != 0 {
		t.Fatalf("turn after restore = %d, want 0", m.turn)
	}
	out := m.push(0, 4, laneRef(0, 4))
	if len(out) != 1 || out[0].lane != 0 || out[0].seq != 4 {
		t.Fatalf("post-restore release = %v, want lane 0 seq 4", out)
	}
}

// FuzzMergeSchedule feeds arbitrary interleavings of per-lane delivery
// streams to the merge scheduler. Invariants:
//   - determinism: any two interleavings of the same delivered batches
//     release the identical merged order (this is what makes multi-primary
//     execution consistent across nodes, whose lanes deliver in different
//     real-time orders);
//   - strict rotation: the i-th released batch is from lane i mod lanes;
//   - per-lane contiguity: each lane's released sequences are 1,2,3,...;
//   - duplicates and redeliveries release nothing.
func FuzzMergeSchedule(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 1, 1, 0, 2, 1, 2})
	f.Add(uint8(2), []byte{1, 1, 1, 2, 1, 3, 0, 1, 0, 2, 0, 3})
	f.Add(uint8(3), []byte{2, 1, 0, 1, 1, 1, 2, 2, 1, 2, 0, 2})
	f.Add(uint8(1), []byte{0, 1, 0, 1, 0, 2})
	f.Add(uint8(4), []byte{3, 2, 3, 1, 2, 1, 0, 1, 1, 1})

	f.Fuzz(func(t *testing.T, lanesByte uint8, data []byte) {
		lanes := 1 + int(lanesByte)%4
		type op struct {
			lane types.InstanceID
			seq  types.SeqNum
		}
		var ops []op
		for i := 0; i+1 < len(data); i += 2 {
			ops = append(ops, op{
				lane: types.InstanceID(int(data[i]) % lanes),
				seq:  types.SeqNum(1 + int(data[i+1])%8),
			})
		}

		apply := func(order []op) (released []mergedBatch, m *laneMerge) {
			m = newLaneMerge(lanes)
			for _, o := range order {
				released = append(released, m.push(o.lane, o.seq, laneRef(o.lane, o.seq))...)
			}
			return released, m
		}

		fuzzOrder, mA := apply(ops)
		canonical := append([]op(nil), ops...)
		sort.SliceStable(canonical, func(i, j int) bool {
			if canonical[i].lane != canonical[j].lane {
				return canonical[i].lane < canonical[j].lane
			}
			return canonical[i].seq < canonical[j].seq
		})
		canonOrder, mB := apply(canonical)

		if len(fuzzOrder) != len(canonOrder) {
			t.Fatalf("interleavings released %d vs %d batches", len(fuzzOrder), len(canonOrder))
		}
		for i := range fuzzOrder {
			a, b := fuzzOrder[i], canonOrder[i]
			if a.lane != b.lane || a.seq != b.seq || !sameRefs(a.refs, b.refs) {
				t.Fatalf("release %d differs between interleavings: (%d,%d) vs (%d,%d)",
					i, a.lane, a.seq, b.lane, b.seq)
			}
		}
		ca, cb := mA.cursors(), mB.cursors()
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("cursors differ between interleavings: %v vs %v", ca, cb)
			}
		}

		next := make([]types.SeqNum, lanes)
		for i := range next {
			next[i] = 1
		}
		for i, mb := range fuzzOrder {
			if int(mb.lane) != i%lanes {
				t.Fatalf("release %d from lane %d breaks strict rotation (lanes=%d)", i, mb.lane, lanes)
			}
			if mb.seq != next[mb.lane] {
				t.Fatalf("lane %d released seq %d, want contiguous %d", mb.lane, mb.seq, next[mb.lane])
			}
			next[mb.lane]++
		}
	})
}
