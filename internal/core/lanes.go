package core

import (
	"time"

	"rbft/internal/types"
)

// Multi-primary ordering (Config.OrderingMode = types.OrderingMultiPrimary)
// splits the three concerns that master-only mode fuses together:
//
//   - dispatch: maybeDispatch hands each request to the one lane that owns
//     its client's partition (types.PartitionOf) instead of to all f+1;
//   - ordering: every lane's delivered stream becomes execution-relevant,
//     not just the master's;
//   - execution: a deterministic round-robin merge of the lane streams
//     (laneMerge below) feeds the single execute path.
//
// Each lane's delivered stream is agreed by PBFT, so it is identical on all
// correct nodes; the merge order is a pure function of those streams and
// therefore identical too — one total order without any cross-lane
// coordination messages. An idle lane would stall the round-robin, so the
// node hosting the stalled lane's primary proposes empty filler batches
// (pbft.ProposeFiller); the agreed empty batch advances every node's cursor
// past a sequence that ordered nothing (the skip-empty-lane rule).

// mergedBatch is one lane batch released by the merge, in execution order.
type mergedBatch struct {
	lane types.InstanceID
	seq  types.SeqNum
	refs []types.RequestRef
}

// laneMerge is the deterministic round-robin merge scheduler. It buffers
// each lane's delivered batches and releases them in strict lane rotation:
// the batch at next[turn] on lane turn, then turn advances. Not a heap or a
// timestamp merge on purpose — rotation depends only on stream contents, so
// every correct node converges on the same interleaving.
type laneMerge struct {
	lanes int
	// next is the per-lane delivery cursor: the lane sequence number the
	// merge consumes next. Cursors are durable via wal.KindMerged records.
	next []types.SeqNum
	// turn is the lane the round-robin waits on.
	turn int
	// buf holds delivered-but-unmerged batches per lane, keyed by sequence.
	buf []map[types.SeqNum][]types.RequestRef
	// buffered counts batches across buf: non-zero means the merge is
	// stalled waiting on lane turn.
	buffered int
}

func newLaneMerge(lanes int) *laneMerge {
	m := &laneMerge{
		lanes: lanes,
		next:  make([]types.SeqNum, lanes),
		buf:   make([]map[types.SeqNum][]types.RequestRef, lanes),
	}
	for i := 0; i < lanes; i++ {
		m.next[i] = 1
		m.buf[i] = make(map[types.SeqNum][]types.RequestRef)
	}
	return m
}

// push buffers lane's delivered batch at seq and returns the batches the
// round-robin releases as a result, in execution order. Batches below the
// lane's cursor are redeliveries of already-merged sequences (fetch catch-up
// after a restart) and are discarded.
func (m *laneMerge) push(lane types.InstanceID, seq types.SeqNum, refs []types.RequestRef) []mergedBatch {
	if seq < m.next[lane] {
		return nil
	}
	if _, dup := m.buf[lane][seq]; dup {
		return nil
	}
	m.buf[lane][seq] = refs
	m.buffered++
	var out []mergedBatch
	for {
		refs, ok := m.buf[m.turn][m.next[m.turn]]
		if !ok {
			return out
		}
		out = append(out, mergedBatch{lane: types.InstanceID(m.turn), seq: m.next[m.turn], refs: refs})
		delete(m.buf[m.turn], m.next[m.turn])
		m.buffered--
		m.next[m.turn]++
		m.turn = (m.turn + 1) % m.lanes
	}
}

// stalled returns the lane the merge is waiting on. It only reports a stall
// when batches are buffered: an all-idle merge blocks nothing.
func (m *laneMerge) stalled() (types.InstanceID, bool) {
	if m.buffered == 0 {
		return 0, false
	}
	return types.InstanceID(m.turn), true
}

// cursors returns a copy of the per-lane delivery cursors (tests and
// harnesses).
func (m *laneMerge) cursors() []types.SeqNum {
	return append([]types.SeqNum(nil), m.next...)
}

// restoreCursor replays one wal.KindMerged record: the merge had consumed
// lane's batch at seq before the crash, so the cursor resumes above it.
func (m *laneMerge) restoreCursor(lane types.InstanceID, seq types.SeqNum) {
	if seq+1 > m.next[lane] {
		m.next[lane] = seq + 1
	}
}

// finishRestore completes a replay: cursors are clamped up to each lane's
// stable-checkpoint horizon, and the round-robin turn is re-derived.
//
// The clamp covers the lane-ran-ahead crash: a lane can stabilize a
// checkpoint above sequences the merge had not consumed yet (it was waiting
// on another lane). After the restart those batches are below the stable
// horizon — never redelivered locally and beyond fetch — so waiting on them
// would stall the merge forever. Skipping them is the same locally-
// unrecoverable degradation as master-only's body-less execution skip: the
// affected requests are re-ordered at a fresh sequence once their clients
// retransmit, and full state transfer (ROADMAP) is the complete fix.
//
// Turn derivation: strict rotation means consumed counts per lane differ by
// at most one, lower-indexed lanes first — so the next lane to consume is
// the first lane whose cursor is minimal.
func (m *laneMerge) finishRestore(stable []types.SeqNum) {
	for i := range m.next {
		if s := stable[i] + 1; m.next[i] < s {
			m.next[i] = s
		}
	}
	m.turn = 0
	for i, c := range m.next {
		if c < m.next[m.turn] {
			m.turn = i
		}
	}
}

// multiPrimary reports whether the node runs multi-primary ordering.
func (n *Node) multiPrimary() bool {
	return n.cfg.OrderingMode == types.OrderingMultiPrimary
}

// MergeCursors returns the per-lane merge cursors (nil in master-only mode).
// Tests use it to check crash recovery rebuilds the merge position.
func (n *Node) MergeCursors() []types.SeqNum {
	if n.merge == nil {
		return nil
	}
	return n.merge.cursors()
}

// updateFiller arms (or disarms) the filler deadline: when the merge is
// stalled on a lane whose primary this node hosts, the node proposes an
// empty batch for that lane after one batch-timeout of continued stall.
// The deadline paces fillers so an imbalanced partition does not flood the
// lane with empty consensus rounds.
func (n *Node) updateFiller(now time.Time) {
	if !n.multiPrimary() {
		return
	}
	lane, ok := n.merge.stalled()
	if !ok || !n.replicas[lane].IsPrimary() {
		n.fillerAt = time.Time{}
		return
	}
	if n.fillerAt.IsZero() {
		n.fillerAt = now.Add(n.fillerDelay)
	}
}

// tickFiller fires a due filler deadline.
func (n *Node) tickFiller(now time.Time) Output {
	var out Output
	if n.fillerAt.IsZero() || now.Before(n.fillerAt) {
		return out
	}
	n.fillerAt = time.Time{}
	if lane, ok := n.merge.stalled(); ok {
		out.merge(n.absorb(lane, n.replicas[lane].ProposeFiller(now), now))
	}
	n.updateFiller(now)
	return out
}
