package client

// Speculative read acceptance (docs/CLIENTS.md). A read-only request skips
// ordering, so each replica answers from its own local state — possibly at
// different points of the execution stream. The client therefore accepts a
// read only once a full read quorum (types.Quorum, 2f+1) of replicas returns
// byte-identical results: any 2f+1 set contains at least f+1 correct
// replicas, and f+1 correct replicas agreeing on a value pins it to a
// consistent snapshot. When no result group can reach the quorum any more,
// the read is refuted and the client re-issues the operation through normal
// ordering.

// tally summarises the reply state of one pending request: the size of the
// largest matching-result group and the number of distinct nodes heard from.
// A Byzantine node voting in several groups inflates distinct, which can
// only make refutation fire earlier — the fallback path is always safe.
func (p *pending) tally() (best, distinct int) {
	for _, nodes := range p.replies {
		if len(nodes) > best {
			best = len(nodes)
		}
		distinct += len(nodes)
	}
	return best, distinct
}

// readVerdict classifies a speculative read's reply tally. best is the
// largest matching-reply group, distinct the distinct nodes heard from, n
// the cluster size and quorum the read quorum (types.Quorum — never a raw
// 2*f+1, the quorumsafety analyzer enforces the helper). accepted means
// some group reached the quorum; impossible means even if every node not
// yet heard from joined the best group it could not reach the quorum, so
// waiting longer is pointless and the client should fall back to ordering.
func readVerdict(best, distinct, n, quorum int) (accepted, impossible bool) {
	if best >= quorum {
		return true, false
	}
	return false, best+(n-distinct) < quorum
}
