// Package client implements the RBFT client: it signs requests, wraps them
// in MAC authenticators, sends them to every node (open loop — multiple
// requests may be in flight), accepts a result once f+1 valid matching
// REPLY messages arrive, and retransmits on timeout.
package client

import (
	"sort"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/types"
)

// Config parameterises a client.
type Config struct {
	// Cluster is the 3f+1 cluster configuration.
	Cluster types.Config
	// ID is this client's identity.
	ID types.ClientID
	// RetransmitTimeout is how long to wait for f+1 matching replies before
	// resending the request to all nodes. Zero disables retransmission.
	RetransmitTimeout time.Duration
}

// Completed describes an accepted request result.
type Completed struct {
	ID      types.RequestID
	Result  []byte
	Latency time.Duration
}

// pending tracks one in-flight request.
type pending struct {
	req    *message.Request
	sentAt time.Time
	// readOnly marks a speculative read: it needs a read quorum (2f+1) of
	// matching replies and falls back to normal ordering on refutation or
	// timeout (read.go).
	readOnly bool
	deadline time.Time
	// replies counts nodes per result fingerprint.
	replies map[string]map[types.NodeID]bool
	result  map[string][]byte
}

// Client is an open-loop RBFT client. Not safe for concurrent use; drivers
// serialise access.
type Client struct {
	cfg  Config
	keys *crypto.KeyRing

	nextID  types.RequestID
	pending map[types.RequestID]*pending
}

// New creates a client with its key ring.
func New(cfg Config, keys *crypto.KeyRing) *Client {
	return &Client{
		cfg:     cfg,
		keys:    keys,
		nextID:  1,
		pending: make(map[types.RequestID]*pending),
	}
}

// ID returns the client's identity.
func (c *Client) ID() types.ClientID { return c.cfg.ID }

// Pending returns the number of in-flight requests.
func (c *Client) Pending() int { return len(c.pending) }

// NewRequest builds, signs and registers a request for operation op. The
// caller transmits the returned message to every node.
func (c *Client) NewRequest(op []byte, now time.Time) *message.Request {
	return c.issue(op, false, now, now)
}

// NewReadRequest builds, signs and registers a speculative read-only request
// for operation op: nodes answer it from local state without ordering, and
// the client accepts only once a read quorum (2f+1) of replies matches. On
// refutation or timeout the request falls back to normal ordering (read.go).
// The caller transmits the returned message to every node.
func (c *Client) NewReadRequest(op []byte, now time.Time) *message.Request {
	return c.issue(op, true, now, now)
}

// issue signs and registers one request. sentAt anchors the latency
// measurement: a read falling back to ordering keeps its original send time.
func (c *Client) issue(op []byte, readOnly bool, now, sentAt time.Time) *message.Request {
	req := &message.Request{Client: c.cfg.ID, ID: c.nextID, Op: op, ReadOnly: readOnly}
	c.nextID++
	req.Sig = c.keys.Sign(req.SignedBody())
	req.Auth = c.authForNodes(req)
	p := &pending{
		req:      req,
		readOnly: readOnly,
		sentAt:   sentAt,
		replies:  make(map[string]map[types.NodeID]bool),
		result:   make(map[string][]byte),
	}
	if c.cfg.RetransmitTimeout > 0 {
		p.deadline = now.Add(c.cfg.RetransmitTimeout)
	}
	c.pending[req.ID] = p
	return req
}

// authForNodes builds the client's MAC authenticator over the request body.
// Clients index authenticator entries by node id, like nodes do.
func (c *Client) authForNodes(req *message.Request) crypto.Authenticator {
	body := req.Body()
	auth := make(crypto.Authenticator, c.cfg.Cluster.N)
	for i := 0; i < c.cfg.Cluster.N; i++ {
		auth[i] = c.keys.MACForNode(types.NodeID(i), body)
	}
	return auth
}

// OnReply processes a REPLY from a node. It returns the completed request
// once f+1 valid matching replies from distinct nodes have arrived.
func (c *Client) OnReply(rep *message.Reply, from types.NodeID, now time.Time) (Completed, bool) {
	if rep.Client != c.cfg.ID || rep.Node != from {
		return Completed{}, false
	}
	p, ok := c.pending[rep.ID]
	if !ok {
		return Completed{}, false // duplicate or unknown
	}
	if err := c.keys.VerifyNodeMAC(from, rep.Body(), rep.MAC); err != nil {
		return Completed{}, false
	}
	key := string(rep.Result)
	nodes := p.replies[key]
	if nodes == nil {
		nodes = make(map[types.NodeID]bool, c.cfg.Cluster.WeakQuorum())
		p.replies[key] = nodes
		p.result[key] = rep.Result
	}
	nodes[from] = true
	threshold := c.cfg.Cluster.WeakQuorum()
	if p.readOnly {
		// Speculative replies are not execution commitments: any replica may
		// answer from a stale snapshot, so acceptance needs a full read
		// quorum — 2f+1 matching replies guarantee f+1 correct replicas
		// agree on the value at a consistent point.
		threshold = c.cfg.Cluster.Quorum()
	}
	if len(nodes) < threshold {
		if p.readOnly {
			best, distinct := p.tally()
			if _, impossible := readVerdict(best, distinct, c.cfg.Cluster.N, threshold); impossible {
				// No group can reach the read quorum any more (replica
				// states diverged mid-read): make the request due now so the
				// next Tick falls back to normal ordering.
				p.deadline = now
			}
		}
		return Completed{}, false
	}
	delete(c.pending, rep.ID)
	return Completed{
		ID:      rep.ID,
		Result:  p.result[key],
		Latency: now.Sub(p.sentAt),
	}, true
}

// NextWake returns the earliest retransmission deadline, or zero.
func (c *Client) NextWake() time.Time {
	var wake time.Time
	for _, p := range c.pending {
		if p.deadline.IsZero() {
			continue
		}
		if wake.IsZero() || p.deadline.Before(wake) {
			wake = p.deadline
		}
	}
	return wake
}

// Tick returns the requests due for (re)transmission to all nodes: ordinary
// requests are resent as-is; a due speculative read (timed out, or refuted —
// OnReply pulls its deadline forward when no read quorum can form) is
// replaced by a fresh ordered request for the same operation. Due requests
// are processed in request-ID order so drivers see a deterministic sequence.
func (c *Client) Tick(now time.Time) []*message.Request {
	if c.cfg.RetransmitTimeout == 0 {
		return nil
	}
	var due []*pending
	for _, p := range c.pending {
		if !p.deadline.IsZero() && !now.Before(p.deadline) {
			due = append(due, p)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].req.ID < due[j].req.ID })
	var resend []*message.Request
	for _, p := range due {
		if p.readOnly {
			// Fall back to normal ordering under a fresh ID. A fresh ID
			// (rather than re-flagging the old one) keeps straggling
			// speculative replies from ever being counted toward the ordered
			// request's f+1 acceptance — they belong to a different, deleted
			// pending entry. The original send time is kept so the measured
			// latency covers the whole read, speculation included.
			delete(c.pending, p.req.ID)
			resend = append(resend, c.issue(p.req.Op, false, now, p.sentAt))
			continue
		}
		p.deadline = now.Add(c.cfg.RetransmitTimeout)
		resend = append(resend, p.req)
	}
	return resend
}
