package client

import (
	"testing"
	"time"

	"rbft/internal/types"
)

func TestReadAcceptsOnReadQuorum(t *testing.T) {
	cl, ks, cfg := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewReadRequest([]byte("GET k"), now)
	if !req.ReadOnly {
		t.Fatal("NewReadRequest did not flag the request read-only")
	}

	// f+1 matching replies are NOT enough for a speculative read.
	for i := 0; i < cfg.WeakQuorum(); i++ {
		if _, ok := cl.OnReply(reply(ks, types.NodeID(i), 2, req.ID, "v"), types.NodeID(i), now); ok {
			t.Fatalf("read accepted on %d replies, need the 2f+1 read quorum", i+1)
		}
	}
	done, ok := cl.OnReply(reply(ks, types.NodeID(cfg.WeakQuorum()), 2, req.ID, "v"), types.NodeID(cfg.WeakQuorum()), now.Add(time.Millisecond))
	if !ok {
		t.Fatal("read not accepted on a 2f+1 quorum of matching replies")
	}
	if string(done.Result) != "v" {
		t.Fatalf("completed = %+v", done)
	}
	if cl.Pending() != 0 {
		t.Fatalf("pending = %d after read completion", cl.Pending())
	}
}

func TestReadRefutationFallsBackToOrdering(t *testing.T) {
	cl, ks, cfg := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewReadRequest([]byte("GET k"), now)

	// Split the cluster 2/2 (f=1, N=4): no group can ever reach 2f+1=3,
	// so the last reply must refute the read and pull its deadline to now.
	cl.OnReply(reply(ks, 0, 2, req.ID, "old"), 0, now)
	cl.OnReply(reply(ks, 1, 2, req.ID, "old"), 1, now)
	cl.OnReply(reply(ks, 2, 2, req.ID, "new"), 2, now)
	if _, ok := cl.OnReply(reply(ks, 3, 2, req.ID, "new"), 3, now); ok {
		t.Fatal("accepted a read without a read quorum")
	}
	if wake := cl.NextWake(); !wake.Equal(now) {
		t.Fatalf("refuted read's deadline = %v, want immediate fallback", wake)
	}

	// The next tick re-issues the operation as an ordered request under a
	// fresh ID; the refuted speculative pending is gone.
	resend := cl.Tick(now)
	if len(resend) != 1 {
		t.Fatalf("Tick returned %d requests, want the ordered re-issue", len(resend))
	}
	ordered := resend[0]
	if ordered.ReadOnly {
		t.Fatal("fallback request still flagged read-only")
	}
	if ordered.ID == req.ID {
		t.Fatal("fallback reused the speculative request's ID")
	}
	if string(ordered.Op) != "GET k" {
		t.Fatalf("fallback op = %q", ordered.Op)
	}
	if cl.Pending() != 1 {
		t.Fatalf("pending = %d after fallback, want 1", cl.Pending())
	}

	// Straggling speculative replies for the old ID no longer count.
	if _, ok := cl.OnReply(reply(ks, 0, 2, req.ID, "new"), 0, now); ok {
		t.Fatal("stale speculative reply completed a request")
	}

	// The ordered re-issue completes on the ordinary f+1 threshold, and its
	// latency covers the whole read, speculation included.
	cl.OnReply(reply(ks, 0, 2, ordered.ID, "new"), 0, now.Add(time.Millisecond))
	done, ok := cl.OnReply(reply(ks, 1, 2, ordered.ID, "new"), 1, now.Add(2*time.Millisecond))
	if !ok {
		t.Fatal("ordered fallback not accepted on f+1 matching replies")
	}
	if done.Latency != 2*time.Millisecond {
		t.Fatalf("latency = %v, want measured from the original read", done.Latency)
	}
	_ = cfg
}

func TestReadTimeoutFallsBackToOrdering(t *testing.T) {
	cl, _, _ := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewReadRequest([]byte("GET k"), now)

	resend := cl.Tick(now.Add(time.Second))
	if len(resend) != 1 {
		t.Fatalf("Tick returned %d requests, want 1", len(resend))
	}
	if resend[0].ReadOnly || resend[0].ID == req.ID {
		t.Fatalf("timed-out read must re-issue ordered under a fresh ID, got %+v", resend[0])
	}
	// The ordered fallback retransmits normally from then on.
	again := cl.Tick(now.Add(2 * time.Second))
	if len(again) != 1 || again[0].ID != resend[0].ID {
		t.Fatalf("fallback did not retransmit: %v", again)
	}
}

// FuzzReadQuorum cross-checks readVerdict against its defining properties
// for arbitrary tallies: accepted iff the best group holds a full read
// quorum, and impossible only when no completion of the tally could ever
// reach it — the two outcomes mutually exclusive.
func FuzzReadQuorum(f *testing.F) {
	f.Add(3, 3, 4, 3)  // unanimous enough: accepted
	f.Add(2, 4, 4, 3)  // 2/2 split, all heard: impossible
	f.Add(2, 2, 4, 3)  // two matching, two outstanding: still open
	f.Add(0, 0, 4, 3)  // nothing heard yet
	f.Add(1, 3, 4, 3)  // three-way split: impossible
	f.Add(6, 9, 10, 7) // larger cluster (f=3), still open
	f.Fuzz(func(t *testing.T, best, distinct, n, quorum int) {
		if best < 0 || distinct < best || n < distinct || quorum < 1 || quorum > n {
			t.Skip()
		}
		accepted, impossible := readVerdict(best, distinct, n, quorum)
		if accepted != (best >= quorum) {
			t.Fatalf("readVerdict(%d,%d,%d,%d) accepted=%v", best, distinct, n, quorum, accepted)
		}
		if accepted && impossible {
			t.Fatalf("readVerdict(%d,%d,%d,%d) both accepted and impossible", best, distinct, n, quorum)
		}
		// The best group can still grow by at most the nodes not heard from.
		reachable := best + (n - distinct)
		if impossible && reachable >= quorum {
			t.Fatalf("readVerdict(%d,%d,%d,%d) declared impossible with %d reachable", best, distinct, n, quorum, reachable)
		}
		if !accepted && !impossible && reachable < quorum {
			t.Fatalf("readVerdict(%d,%d,%d,%d) missed an impossible tally", best, distinct, n, quorum)
		}
	})
}
