package client

import (
	"testing"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/types"
)

func newTestClient(t *testing.T) (*Client, *crypto.KeyStore, types.Config) {
	t.Helper()
	cfg := types.NewConfig(1)
	ks := crypto.NewKeyStore([]byte("client-test"), cfg.N, 4)
	cl := New(Config{Cluster: cfg, ID: 2, RetransmitTimeout: time.Second}, ks.ClientRing(2))
	return cl, ks, cfg
}

func reply(ks *crypto.KeyStore, node types.NodeID, client types.ClientID, id types.RequestID, result string) *message.Reply {
	rep := &message.Reply{Client: client, ID: id, Result: []byte(result), Node: node}
	rep.MAC = ks.NodeRing(node).MACForClient(client, rep.Body())
	return rep
}

func TestRequestWellFormed(t *testing.T) {
	cl, ks, cfg := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewRequest([]byte("op"), now)
	if req.Client != 2 || req.ID != 1 {
		t.Fatalf("unexpected identity: %+v", req)
	}
	// Every node can verify the MAC entry and signature.
	for i := 0; i < cfg.N; i++ {
		ring := ks.NodeRing(types.NodeID(i))
		if err := ring.VerifyClientAuthenticatorEntry(2, types.NodeID(i), req.Body(), req.Auth); err != nil {
			t.Fatalf("node %d MAC: %v", i, err)
		}
		if err := ring.VerifyClientSignature(2, req.SignedBody(), req.Sig); err != nil {
			t.Fatalf("node %d signature: %v", i, err)
		}
	}
	// IDs increase.
	if req2 := cl.NewRequest(nil, now); req2.ID != 2 {
		t.Fatalf("second request ID = %d, want 2", req2.ID)
	}
}

func TestAcceptsOnWeakQuorum(t *testing.T) {
	cl, ks, _ := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewRequest([]byte("op"), now)

	if _, ok := cl.OnReply(reply(ks, 0, 2, req.ID, "r"), 0, now.Add(time.Millisecond)); ok {
		t.Fatal("accepted on a single reply")
	}
	done, ok := cl.OnReply(reply(ks, 1, 2, req.ID, "r"), 1, now.Add(2*time.Millisecond))
	if !ok {
		t.Fatal("not accepted on f+1 matching replies")
	}
	if string(done.Result) != "r" || done.Latency != 2*time.Millisecond {
		t.Fatalf("completed = %+v", done)
	}
	if cl.Pending() != 0 {
		t.Fatalf("pending = %d after completion", cl.Pending())
	}
	// Late duplicate is ignored.
	if _, ok := cl.OnReply(reply(ks, 2, 2, req.ID, "r"), 2, now); ok {
		t.Fatal("accepted a completed request twice")
	}
}

func TestMismatchedResultsDoNotCount(t *testing.T) {
	cl, ks, _ := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewRequest(nil, now)
	if _, ok := cl.OnReply(reply(ks, 0, 2, req.ID, "a"), 0, now); ok {
		t.Fatal("accepted on one reply")
	}
	if _, ok := cl.OnReply(reply(ks, 1, 2, req.ID, "b"), 1, now); ok {
		t.Fatal("accepted on mismatched replies")
	}
	// A second matching reply completes.
	if _, ok := cl.OnReply(reply(ks, 2, 2, req.ID, "a"), 2, now); !ok {
		t.Fatal("two matching replies from distinct nodes must complete")
	}
}

func TestDuplicateReplySameNodeDoesNotCount(t *testing.T) {
	cl, ks, _ := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewRequest(nil, now)
	cl.OnReply(reply(ks, 0, 2, req.ID, "r"), 0, now)
	if _, ok := cl.OnReply(reply(ks, 0, 2, req.ID, "r"), 0, now); ok {
		t.Fatal("two replies from the same node must not complete")
	}
}

func TestRejectsBadMACAndSpoofedSender(t *testing.T) {
	cl, ks, _ := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewRequest(nil, now)

	bad := reply(ks, 0, 2, req.ID, "r")
	bad.MAC[0] ^= 0xff
	cl.OnReply(bad, 0, now)

	// Node 1's reply claimed to be from node 0 (spoofed From).
	spoof := reply(ks, 1, 2, req.ID, "r")
	cl.OnReply(spoof, 0, now)

	// Neither should have counted; a single further good reply must not
	// complete (we need two valid ones).
	if _, ok := cl.OnReply(reply(ks, 2, 2, req.ID, "r"), 2, now); ok {
		t.Fatal("invalid replies were counted toward the quorum")
	}
}

func TestRetransmission(t *testing.T) {
	cl, _, _ := newTestClient(t)
	now := time.Unix(0, 0)
	req := cl.NewRequest(nil, now)
	if wake := cl.NextWake(); !wake.Equal(now.Add(time.Second)) {
		t.Fatalf("NextWake = %v, want +1s", wake)
	}
	resend := cl.Tick(now.Add(time.Second))
	if len(resend) != 1 || resend[0].ID != req.ID {
		t.Fatalf("Tick returned %v", resend)
	}
	// Deadline pushed out.
	if got := cl.Tick(now.Add(1500 * time.Millisecond)); len(got) != 0 {
		t.Fatalf("early re-tick resent %d requests", len(got))
	}
}

func TestNoRetransmitWhenDisabled(t *testing.T) {
	cfg := types.NewConfig(1)
	ks := crypto.NewKeyStore([]byte("x"), cfg.N, 4)
	cl := New(Config{Cluster: cfg, ID: 1}, ks.ClientRing(1))
	now := time.Unix(0, 0)
	cl.NewRequest(nil, now)
	if !cl.NextWake().IsZero() {
		t.Fatal("NextWake armed with retransmission disabled")
	}
	if got := cl.Tick(now.Add(time.Hour)); got != nil {
		t.Fatal("Tick resent with retransmission disabled")
	}
}

func TestIgnoresRepliesForOtherClients(t *testing.T) {
	cl, ks, _ := newTestClient(t)
	now := time.Unix(0, 0)
	cl.NewRequest(nil, now)
	other := reply(ks, 0, 3, 1, "r") // addressed to client 3
	if _, ok := cl.OnReply(other, 0, now); ok {
		t.Fatal("accepted a reply for another client")
	}
}
