package exec

import (
	"bytes"
	"fmt"
	"testing"

	"rbft/internal/app"
	"rbft/internal/types"
)

// kvOps builds a batch of KV ops from compact specs ("P k v", "G k", "D k").
func kvOps(t *testing.T, specs ...string) []Op {
	t.Helper()
	ops := make([]Op, len(specs))
	for i, sp := range specs {
		var body string
		if sp == "" {
			ops[i] = Op{Client: types.ClientID(i % 5), ID: types.RequestID(i)}
			continue
		}
		switch sp[0] {
		case 'P':
			body = "PUT" + sp[1:]
		case 'G':
			body = "GET" + sp[1:]
		case 'D':
			body = "DEL" + sp[1:]
		default:
			body = sp
		}
		ops[i] = Op{Client: types.ClientID(i % 5), ID: types.RequestID(i), Body: []byte(body)}
	}
	return ops
}

func TestPlanWavesConflicts(t *testing.T) {
	kv := app.NewKV()
	tests := []struct {
		name      string
		specs     []string
		wantWave  []int
		wantConfl int
	}{
		{
			name:     "disjoint writes share wave 0",
			specs:    []string{"P a 1", "P b 2", "P c 3"},
			wantWave: []int{0, 0, 0},
		},
		{
			name:      "write-write chains",
			specs:     []string{"P a 1", "P a 2", "P a 3"},
			wantWave:  []int{0, 1, 2},
			wantConfl: 2,
		},
		{
			name:      "read waits for write, reads share",
			specs:     []string{"P a 1", "G a", "G a"},
			wantWave:  []int{0, 1, 1},
			wantConfl: 2,
		},
		{
			name:      "write waits for every earlier read",
			specs:     []string{"G a", "G a", "P a 1"},
			wantWave:  []int{0, 0, 1},
			wantConfl: 1,
		},
		{
			name:      "delete conflicts like a write",
			specs:     []string{"P a 1", "D a", "G a"},
			wantWave:  []int{0, 1, 2},
			wantConfl: 2,
		},
		{
			name:     "malformed ops touch nothing and commute",
			specs:    []string{"P a 1", "", "NOPE x", "P a 2"},
			wantWave: []int{0, 0, 0, 1},
			// only the second PUT conflicts
			wantConfl: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ops := kvOps(t, tt.specs...)
			wave, waves, conflicts := PlanWaves(kv, ops)
			for i, w := range wave {
				if w != tt.wantWave[i] {
					t.Errorf("op %d (%q): wave %d, want %d", i, ops[i].Body, w, tt.wantWave[i])
				}
			}
			if conflicts != tt.wantConfl {
				t.Errorf("conflicts = %d, want %d", conflicts, tt.wantConfl)
			}
			total := 0
			for _, n := range waves {
				total += n
			}
			if total != len(ops) {
				t.Errorf("wave sizes sum to %d, want %d", total, len(ops))
			}
		})
	}
}

// TestParallelMatchesSerial: for a mixed batch, the parallel scheduler must
// produce the byte-exact replies and final state of serial in-order apply,
// for every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	specs := []string{
		"P a 1", "P b 2", "G a", "P a 3", "G a", "G b", "D b", "G b",
		"P c x", "P d y", "G c", "", "NOPE", "P a 4", "G a", "D zz",
	}
	ref := app.NewKV()
	serial := New(ref, 0)
	want := serial.ExecuteBatch(kvOps(t, specs...))

	for _, workers := range []int{2, 3, 8, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			kv := app.NewKV()
			s := New(kv, workers)
			if !s.Parallel() {
				t.Fatal("scheduler with ConflictKeyer and workers >= 2 must be parallel")
			}
			got := s.ExecuteBatch(kvOps(t, specs...))
			for i := range want.Results {
				if !bytes.Equal(got.Results[i], want.Results[i]) {
					t.Errorf("op %d: reply %q, want %q", i, got.Results[i], want.Results[i])
				}
			}
			gs, ws := kv.Snapshot(), ref.Snapshot()
			if len(gs) != len(ws) {
				t.Fatalf("state size %d, want %d", len(gs), len(ws))
			}
			for k, v := range ws {
				if gs[k] != v {
					t.Errorf("state[%q] = %q, want %q", k, gs[k], v)
				}
			}
		})
	}
}

// TestCounterDegeneratesToSerial: the Counter declares a single global write
// key, so every batch must collapse to one op per wave and the fingerprint
// must match serial execution exactly.
func TestCounterDegeneratesToSerial(t *testing.T) {
	ops := make([]Op, 32)
	for i := range ops {
		ops[i] = Op{Client: types.ClientID(i % 4), ID: types.RequestID(i)}
	}
	ref := app.NewCounter()
	for _, op := range ops {
		ref.Execute(op.Client, op.ID, op.Body)
	}
	c := app.NewCounter()
	s := New(c, 8)
	res := s.ExecuteBatch(ops)
	for w, n := range res.Waves {
		if n != 1 {
			t.Fatalf("wave %d has %d ops; Counter batches must be fully serial", w, n)
		}
	}
	if res.Parallel != 0 {
		t.Fatalf("Parallel = %d, want 0", res.Parallel)
	}
	if c.Fingerprint() != ref.Fingerprint() {
		t.Fatalf("fingerprint %#x, want %#x", c.Fingerprint(), ref.Fingerprint())
	}
}

// TestSerialFallback: without a ConflictKeyer (app.Null) or with fewer than
// two workers, the scheduler must not report Parallel.
func TestSerialFallback(t *testing.T) {
	if New(app.Null{}, 8).Parallel() {
		t.Error("app.Null has no ConflictKeyer; scheduler must stay serial")
	}
	if New(app.NewKV(), 1).Parallel() {
		t.Error("workers=1 must stay serial")
	}
	if New(app.NewKV(), 0).Parallel() {
		t.Error("workers=0 must stay serial")
	}
	var nilSched *Scheduler
	if nilSched.Parallel() {
		t.Error("nil scheduler must stay serial")
	}
	res := New(app.Null{}, 8).ExecuteBatch([]Op{{Client: 1, ID: 1}, {Client: 1, ID: 2}})
	if len(res.Results) != 2 || string(res.Results[0]) != "ok" {
		t.Fatalf("serial fallback results = %q", res.Results)
	}
}

// TestWavePlanIndependentOfWorkers: the wave plan is part of the replicated
// state machine (the sim charges it, metrics count it), so it must not
// depend on the worker count.
func TestWavePlanIndependentOfWorkers(t *testing.T) {
	specs := []string{"P a 1", "P a 2", "P b 1", "G a", "G b", "D a"}
	kv := app.NewKV()
	wave, waves, conflicts := PlanWaves(kv, kvOps(t, specs...))
	for _, workers := range []int{2, 7, 16} {
		s := New(app.NewKV(), workers)
		res := s.ExecuteBatch(kvOps(t, specs...))
		if fmt.Sprint(res.Wave) != fmt.Sprint(wave) ||
			fmt.Sprint(res.Waves) != fmt.Sprint(waves) ||
			res.Conflicts != conflicts {
			t.Errorf("workers=%d: plan (%v, %v, %d) differs from (%v, %v, %d)",
				workers, res.Wave, res.Waves, res.Conflicts, wave, waves, conflicts)
		}
	}
}
