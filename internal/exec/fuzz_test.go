package exec

import (
	"bytes"
	"fmt"
	"testing"

	"rbft/internal/app"
	"rbft/internal/types"
)

// FuzzWaveSchedule is the scheduler's determinism gate: for ANY op sequence
// and ANY worker count, parallel wave execution must produce the byte-exact
// replies and final state of serial in-order apply. Each input byte pair
// becomes one KV op (verb and key drawn from a deliberately tiny key space
// so write/write, write/read and read/write conflicts are dense), and the
// first byte picks the worker count — the interleaving dimension the
// property must be independent of.
func FuzzWaveSchedule(f *testing.F) {
	// Seed corpus: conflict-free, write-chained, read-heavy, mixed, and
	// degenerate (empty / single-op / malformed-heavy) schedules.
	f.Add([]byte{2, 0x00, 0x11, 0x22, 0x33})             // disjoint puts
	f.Add([]byte{3, 0x00, 0x10, 0x20, 0x30})             // one hot key, all writes
	f.Add([]byte{8, 0x40, 0x41, 0x42, 0x43, 0x00})       // reads then a write
	f.Add([]byte{5, 0x00, 0x44, 0x80, 0x04, 0xc1, 0x31}) // mixed verbs
	f.Add([]byte{16})                                    // no ops
	f.Add([]byte{7, 0xff})                               // single malformed op
	f.Add([]byte{4, 0xc0, 0xc0, 0x00, 0xc0, 0x40, 0xc0}) // del-heavy
	f.Add([]byte{64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}) // more workers than ops

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		workers := 2 + int(data[0])%15 // 2..16: always the parallel path
		ops := opsFromBytes(data[1:])

		ref := app.NewKV()
		want := New(ref, 0).ExecuteBatch(ops)

		kv := app.NewKV()
		got := New(kv, workers).ExecuteBatch(ops)

		for i := range want.Results {
			if !bytes.Equal(got.Results[i], want.Results[i]) {
				t.Fatalf("workers=%d op %d (%q): reply %q, want %q",
					workers, i, ops[i].Body, got.Results[i], want.Results[i])
			}
		}
		gs, ws := kv.Snapshot(), ref.Snapshot()
		if len(gs) != len(ws) {
			t.Fatalf("workers=%d: state size %d, want %d", workers, len(gs), len(ws))
		}
		for k, v := range ws {
			if gs[k] != v {
				t.Fatalf("workers=%d: state[%q] = %q, want %q", workers, k, gs[k], v)
			}
		}
		// The plan itself must also be worker-independent (it is charged and
		// counted identically on every replica).
		planWave, _, _ := PlanWaves(ref, ops)
		if fmt.Sprint(got.Wave) != fmt.Sprint(planWave) {
			t.Fatalf("workers=%d: wave plan diverged: %v vs %v", workers, got.Wave, planWave)
		}
	})
}

// opsFromBytes decodes one KV op per input byte: the top two bits pick the
// verb (PUT/GET/DEL/garbage) and the low bits one of 16 keys — small enough
// that real conflicts dominate any non-trivial input.
func opsFromBytes(data []byte) []Op {
	ops := make([]Op, 0, len(data))
	for i, b := range data {
		key := fmt.Sprintf("k%d", b&0x0f)
		var body string
		switch b >> 6 {
		case 0:
			body = fmt.Sprintf("PUT %s v%d", key, i)
		case 1:
			body = "GET " + key
		case 2:
			body = "DEL " + key
		default:
			// Garbage ops: empty, whitespace, unknown verbs, bad arity.
			switch b & 0x03 {
			case 0:
				body = ""
			case 1:
				body = "  "
			case 2:
				body = "PUT " + key
			default:
				body = "FROB " + key
			}
		}
		ops = append(ops, Op{
			Client: types.ClientID(i % 7),
			ID:     types.RequestID(i),
			Body:   []byte(body),
		})
	}
	return ops
}
