// Package exec is the deterministic parallel execution engine: the pipeline
// stage between the ordering lanes' merge and the application
// (docs/EXECUTION.md).
//
// The ordering pipeline delivers batches of requests in one agreed total
// order, but nothing in that order forces serial apply: operations that
// touch disjoint state commute. The scheduler asks the application for each
// operation's read/write sets (app.ConflictKeyer), partitions the batch into
// waves of mutually non-conflicting operations with a seq-order greedy
// coloring, and applies each wave across a pool of worker shards.
//
// Determinism argument (the property every replica depends on):
//
//  1. Wave construction is a pure function of the batch: operations are
//     scanned in sequence order and wave indices come from per-key
//     last-writer/last-reader lookups — no map iteration, no randomness, no
//     dependence on worker count.
//  2. Within a wave no operation writes a key another reads or writes, so
//     the wave's operations commute: any interleaving of the workers yields
//     the state and replies of applying the wave in sequence order.
//  3. Waves run in ascending order with a barrier between them, so the
//     whole batch is equivalent to serial sequence-order apply.
//
// Corollary: a WAL replay that re-executes the journaled order serially
// (core.Node.Restore) reproduces the exact state the scheduler produced, so
// the scheduler journals nothing new. FuzzWaveSchedule pounds on property 2
// with random op sets and worker counts.
//
// The package is deliberately NOT in the simdeterminism analyzer's scope:
// it spawns goroutines, but their only effect is filling disjoint result
// slots before the coordinator's barrier, so no goroutine interleaving is
// observable from outside ExecuteBatch.
package exec

import (
	"sync"

	"rbft/internal/app"
	"rbft/internal/types"
)

// Op is one ordered operation handed to the scheduler.
type Op struct {
	Client types.ClientID
	ID     types.RequestID
	Body   []byte
}

// Result is the outcome of one ExecuteBatch call.
type Result struct {
	// Results holds each operation's reply, in input order.
	Results [][]byte
	// Wave assigns each operation (input order) to the wave that applied it.
	Wave []int
	// Waves holds the operation count of each wave, in apply order.
	Waves []int
	// Conflicts counts operations deferred past wave 0 by a read/write
	// conflict with an earlier operation in the batch.
	Conflicts int
	// Parallel counts operations that shared their wave with at least one
	// other operation — the work that actually ran concurrently.
	Parallel int
}

// Scheduler plans and runs the parallel apply of ordered batches. A nil
// scheduler, a worker count below 2, or an application without
// app.ConflictKeyer all mean Parallel() is false and the caller keeps its
// serial apply path.
type Scheduler struct {
	app     app.Application
	keyer   app.ConflictKeyer
	workers int
}

// New builds a scheduler for a. The parallel path engages only when workers
// >= 2 AND a implements app.ConflictKeyer; otherwise the scheduler reports
// Parallel() == false and callers fall back to serial apply.
func New(a app.Application, workers int) *Scheduler {
	s := &Scheduler{app: a, workers: workers}
	if k, ok := a.(app.ConflictKeyer); ok {
		s.keyer = k
	}
	return s
}

// Parallel reports whether ExecuteBatch applies waves across workers.
func (s *Scheduler) Parallel() bool {
	return s != nil && s.workers >= 2 && s.keyer != nil
}

// Workers returns the configured worker-shard count.
func (s *Scheduler) Workers() int { return s.workers }

// PlanWaves partitions ops into waves of non-conflicting operations with a
// sequence-order greedy coloring: each operation lands in the first wave
// after every earlier conflicting operation's wave. Conflicts are
// write/write, write/read and read/write on a shared key; reads share waves
// freely. The plan is a pure function of keyer and ops (maps are only ever
// looked up by the current op's keys, never iterated), so every replica
// computes the same waves.
func PlanWaves(keyer app.ConflictKeyer, ops []Op) (wave []int, waves []int, conflicts int) {
	wave = make([]int, len(ops))
	// lastWriter[k] is the wave of k's latest writer; lastReader[k] the
	// highest wave of any reader. Presence in the map matters (wave 0 is a
	// valid value), hence explicit ok-checks rather than zero defaults.
	lastWriter := make(map[string]int)
	lastReader := make(map[string]int)
	maxWave := -1
	for i, op := range ops {
		reads, writes := keyer.Keys(op.Body)
		w := 0
		for _, k := range reads {
			if lw, ok := lastWriter[k]; ok && lw+1 > w {
				w = lw + 1 // read waits for the latest write
			}
		}
		for _, k := range writes {
			if lw, ok := lastWriter[k]; ok && lw+1 > w {
				w = lw + 1 // write waits for the latest write
			}
			if lr, ok := lastReader[k]; ok && lr+1 > w {
				w = lr + 1 // write waits for every earlier read
			}
		}
		wave[i] = w
		if w > 0 {
			conflicts++
		}
		if w > maxWave {
			maxWave = w
		}
		for _, k := range reads {
			if lr, ok := lastReader[k]; !ok || w > lr {
				lastReader[k] = w
			}
		}
		for _, k := range writes {
			lastWriter[k] = w
		}
	}
	waves = make([]int, maxWave+1)
	for _, w := range wave {
		waves[w]++
	}
	return wave, waves, conflicts
}

// ExecuteBatch applies ops — one merged, deduplicated batch in the agreed
// order — and returns every reply plus the wave plan. With Parallel() false
// it is a plain serial loop (one wave per op is still reported so callers
// can account uniformly). The caller must not touch application state
// concurrently; all cross-wave synchronisation happens inside.
func (s *Scheduler) ExecuteBatch(ops []Op) Result {
	res := Result{Results: make([][]byte, len(ops))}
	if !s.Parallel() {
		res.Wave = make([]int, len(ops))
		res.Waves = make([]int, len(ops))
		for i, op := range ops {
			res.Results[i] = s.app.Execute(op.Client, op.ID, op.Body)
			res.Wave[i] = i
			res.Waves[i] = 1
		}
		return res
	}
	res.Wave, res.Waves, res.Conflicts = PlanWaves(s.keyer, ops)

	// Bucket op indices by wave, preserving sequence order within each wave
	// (the buckets are filled by one in-order scan).
	buckets := make([][]int, len(res.Waves))
	for i, w := range res.Wave {
		buckets[w] = append(buckets[w], i)
	}
	for _, idx := range buckets {
		if len(idx) > 1 {
			res.Parallel += len(idx)
		}
		s.runWave(ops, idx, res.Results)
	}
	return res
}

// runWave applies one wave of non-conflicting operations across the worker
// shards. Shard w takes indices w, w+n, w+2n... — a deterministic partition,
// though correctness does not depend on it (the wave's ops commute).
func (s *Scheduler) runWave(ops []Op, idx []int, results [][]byte) {
	n := s.workers
	if len(idx) < n {
		n = len(idx)
	}
	if n <= 1 {
		s.applyShard(ops, idx, 0, 1, results)
		return
	}
	var wg sync.WaitGroup
	for shard := 1; shard < n; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			s.applyShard(ops, idx, shard, n, results)
		}(shard)
	}
	s.applyShard(ops, idx, 0, n, results)
	wg.Wait()
}

// applyShard is the worker-shard body: it applies its stride of the wave and
// writes each reply to the op's own result slot. It runs concurrently with
// its sibling shards, so it must stay lock-free and non-blocking — no node
// state, no channels; the coordinator owns all synchronisation.
//
//rbft:exec
func (s *Scheduler) applyShard(ops []Op, idx []int, shard, stride int, results [][]byte) {
	for p := shard; p < len(idx); p += stride {
		i := idx[p]
		results[i] = s.app.Execute(ops[i].Client, ops[i].ID, ops[i].Body)
	}
}
