// Package types defines the identifier vocabulary shared by every RBFT
// module: node, client, instance and view identifiers, sequence numbers,
// request references, and the cluster configuration with its quorum
// arithmetic.
package types

import (
	"fmt"
)

// NodeID identifies one of the N physical nodes in the cluster. Node IDs are
// dense integers in [0, N).
type NodeID int

// ClientID identifies a client. Client IDs live in a separate namespace from
// node IDs.
type ClientID int

// InstanceID identifies one of the f+1 protocol instances running on every
// node. Instance 0 is never special by itself; which instance is the master
// is a function of the current instance-change counter.
type InstanceID int

// View is the shared view number. RBFT increments the view on every protocol
// instance change, which rotates the primary of every instance at once.
type View uint64

// SeqNum is a per-instance sequence number assigned by that instance's
// primary during ordering.
type SeqNum uint64

// RequestID is the client-chosen request identifier (monotonically increasing
// per client in well-behaved clients).
type RequestID uint64

// DigestSize is the byte length of request and batch digests (SHA-256).
const DigestSize = 32

// Digest is a collision-resistant hash of a request payload or batch.
type Digest [DigestSize]byte

// String renders a short hex prefix, enough for logs.
func (d Digest) String() string {
	return fmt.Sprintf("%x", d[:4])
}

// IsZero reports whether the digest is all zeroes (an unset digest).
func (d Digest) IsZero() bool {
	return d == Digest{}
}

// RequestRef identifies a request for ordering purposes. RBFT instances
// order request identifiers, not request bodies: the triple
// (client, request id, digest) is what flows through the three-phase commit.
type RequestRef struct {
	Client ClientID
	ID     RequestID
	Digest Digest
}

// Key returns a map key uniquely identifying the request origin (client and
// request id). Two refs with the same Key but different digests indicate an
// equivocating client.
func (r RequestRef) Key() RequestKey {
	return RequestKey{Client: r.Client, ID: r.ID}
}

// RequestKey is the (client, request id) pair used to index request state.
type RequestKey struct {
	Client ClientID
	ID     RequestID
}

// Config captures the static cluster parameters.
type Config struct {
	// N is the number of nodes. RBFT requires N = 3f+1.
	N int
	// F is the number of Byzantine nodes tolerated.
	F int
}

// The named threshold helpers below are the only place in the repository
// where quorum arithmetic is spelled out. Everything else — protocol cores,
// baselines, drivers, tests — goes through them (or the Config methods that
// delegate to them), and the quorumsafety analyzer (tools/analyzers)
// rejects raw 2f+1 / f+1 / 2f / 3f+1 expressions anywhere outside this
// package. A threshold with a name can be audited once; an inline
// expression has to be re-derived at every call site, which is exactly how
// off-by-one quorum bugs survive review.

// Quorum returns the Byzantine quorum size 2f+1 for a cluster tolerating f
// faults: any two quorums intersect in at least one correct node.
func Quorum(f int) int { return 2*f + 1 }

// WeakQuorum returns f+1, the smallest count guaranteeing at least one
// correct node among the senders.
func WeakQuorum(f int) int { return f + 1 }

// PrepareThreshold returns 2f, the number of PREPARE messages (besides the
// PRE-PREPARE itself) needed for a replica to reach the prepared state.
func PrepareThreshold(f int) int { return 2 * f }

// ClusterSize returns 3f+1, the minimum number of nodes needed to tolerate
// f Byzantine faults.
func ClusterSize(f int) int { return 3*f + 1 }

// NewConfig returns the configuration tolerating f faults (N = 3f+1).
func NewConfig(f int) Config {
	return Config{N: ClusterSize(f), F: f}
}

// Validate reports whether the configuration is a well-formed 3f+1 cluster.
func (c Config) Validate() error {
	if c.F < 0 {
		return fmt.Errorf("config: negative f (%d)", c.F)
	}
	if c.N != ClusterSize(c.F) {
		return fmt.Errorf("config: N=%d is not 3f+1 for f=%d", c.N, c.F)
	}
	return nil
}

// Instances returns the number of protocol instances every node runs (f+1).
// Numerically equal to WeakQuorum but semantically distinct: it counts
// redundant ordering lanes, not message senders.
func (c Config) Instances() int { return c.F + 1 }

// Quorum returns the Byzantine quorum size 2f+1.
func (c Config) Quorum() int { return Quorum(c.F) }

// WeakQuorum returns f+1, the count guaranteeing at least one correct node.
func (c Config) WeakQuorum() int { return WeakQuorum(c.F) }

// PrepareQuorum returns 2f, the number of PREPARE messages (besides the
// PRE-PREPARE) needed for a replica to reach the prepared state.
func (c Config) PrepareQuorum() int { return PrepareThreshold(c.F) }

// PrimaryOf returns the node hosting the primary replica of instance inst in
// view v. The placement (v + inst) mod N guarantees that with f+1 <= N
// instances, no node hosts more than one primary at a time.
func (c Config) PrimaryOf(v View, inst InstanceID) NodeID {
	return NodeID((uint64(v) + uint64(inst)) % uint64(c.N))
}

// IsPrimary reports whether node n hosts the primary of instance inst in
// view v.
func (c Config) IsPrimary(n NodeID, v View, inst InstanceID) bool {
	return c.PrimaryOf(v, inst) == n
}

// AllNodes returns the node IDs [0, N).
func (c Config) AllNodes() []NodeID {
	nodes := make([]NodeID, c.N)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	return nodes
}

// MasterInstance is the instance whose ordering is executed. In RBFT the
// master is fixed (instance 0); instance changes replace its primary by
// advancing the shared view rather than by re-electing the master.
const MasterInstance InstanceID = 0

// OrderingMode selects which instances' orderings reach execution.
type OrderingMode int

const (
	// OrderingMasterOnly is the paper's design: all f+1 instances order
	// every request, only the master's order executes. The default.
	OrderingMasterOnly OrderingMode = iota
	// OrderingMultiPrimary partitions the request space over the f+1
	// instances (PartitionOf) so each lane orders a disjoint subset, and a
	// deterministic round-robin merge of the lane streams feeds execution.
	OrderingMultiPrimary
)

// String returns the flag/config spelling of the mode.
func (m OrderingMode) String() string {
	switch m {
	case OrderingMasterOnly:
		return "master-only"
	case OrderingMultiPrimary:
		return "multi-primary"
	default:
		return fmt.Sprintf("ordering-mode(%d)", int(m))
	}
}

// ParseOrderingMode maps a flag value back to the mode.
func ParseOrderingMode(s string) (OrderingMode, error) {
	switch s {
	case "master-only":
		return OrderingMasterOnly, nil
	case "multi-primary":
		return OrderingMultiPrimary, nil
	default:
		return OrderingMasterOnly, fmt.Errorf("unknown ordering mode %q (want master-only or multi-primary)", s)
	}
}

// PartitionOf returns the instance that owns a client's requests under
// multi-primary ordering. Like the threshold helpers above, this is the only
// place partition-assignment arithmetic is spelled out: the quorumsafety
// analyzer rejects raw `x % instances` expressions outside this package, so
// dispatch, re-proposal and recovery can never disagree about ownership.
//
// The map is a plain modulo over the dense deployment-assigned client-id
// space: balanced by construction and — deliberately — independent of the
// view and the instance-change counter. Prepared batches that survive a view
// change via NEW-VIEW re-proposal must commit unchanged, which a shifting
// partition map would violate; an instance change instead remaps *ownership*
// of each lane by rotating which node hosts its primary (PrimaryOf).
func PartitionOf(c ClientID, instances int) InstanceID {
	if instances <= 1 {
		return MasterInstance
	}
	return InstanceID(uint64(c) % uint64(instances))
}
