package types

import (
	"testing"
	"testing/quick"
)

func TestNewConfig(t *testing.T) {
	tests := []struct {
		f          int
		wantN      int
		quorum     int
		weakQuorum int
		instances  int
	}{
		{f: 1, wantN: 4, quorum: 3, weakQuorum: 2, instances: 2},
		{f: 2, wantN: 7, quorum: 5, weakQuorum: 3, instances: 3},
		{f: 3, wantN: 10, quorum: 7, weakQuorum: 4, instances: 4},
	}
	for _, tt := range tests {
		c := NewConfig(tt.f)
		if err := c.Validate(); err != nil {
			t.Errorf("f=%d: Validate() = %v", tt.f, err)
		}
		if c.N != tt.wantN {
			t.Errorf("f=%d: N = %d, want %d", tt.f, c.N, tt.wantN)
		}
		if got := c.Quorum(); got != tt.quorum {
			t.Errorf("f=%d: Quorum() = %d, want %d", tt.f, got, tt.quorum)
		}
		if got := c.WeakQuorum(); got != tt.weakQuorum {
			t.Errorf("f=%d: WeakQuorum() = %d, want %d", tt.f, got, tt.weakQuorum)
		}
		if got := c.Instances(); got != tt.instances {
			t.Errorf("f=%d: Instances() = %d, want %d", tt.f, got, tt.instances)
		}
		if got := c.PrepareQuorum(); got != 2*tt.f {
			t.Errorf("f=%d: PrepareQuorum() = %d, want %d", tt.f, got, 2*tt.f)
		}
	}
}

// TestNamedThresholdHelpers pins the package-level helpers — the single
// authority for quorum arithmetic repository-wide (the quorumsafety analyzer
// forbids the raw expressions everywhere else) — and checks that the Config
// methods agree with them.
func TestNamedThresholdHelpers(t *testing.T) {
	for f := 0; f <= 10; f++ {
		if got, want := Quorum(f), 2*f+1; got != want {
			t.Errorf("Quorum(%d) = %d, want %d", f, got, want)
		}
		if got, want := WeakQuorum(f), f+1; got != want {
			t.Errorf("WeakQuorum(%d) = %d, want %d", f, got, want)
		}
		if got, want := PrepareThreshold(f), 2*f; got != want {
			t.Errorf("PrepareThreshold(%d) = %d, want %d", f, got, want)
		}
		if got, want := ClusterSize(f), 3*f+1; got != want {
			t.Errorf("ClusterSize(%d) = %d, want %d", f, got, want)
		}
		c := NewConfig(f)
		if c.Quorum() != Quorum(f) || c.WeakQuorum() != WeakQuorum(f) ||
			c.PrepareQuorum() != PrepareThreshold(f) || c.N != ClusterSize(f) {
			t.Errorf("f=%d: Config methods disagree with package helpers", f)
		}
		// The quorum-intersection argument the protocol rests on: two 2f+1
		// quorums in a 3f+1 cluster share at least f+1 nodes, hence at
		// least one correct one.
		if overlap := 2*Quorum(f) - ClusterSize(f); overlap < WeakQuorum(f) {
			t.Errorf("f=%d: quorum intersection %d below weak quorum %d", f, overlap, WeakQuorum(f))
		}
	}
}

func TestConfigValidateRejectsMalformed(t *testing.T) {
	tests := []Config{
		{N: 4, F: 2},
		{N: 5, F: 1},
		{N: 0, F: 0},
		{N: 3, F: -1},
	}
	for _, c := range tests {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

// TestPrimaryPlacementInvariant checks the paper's placement requirement: at
// any view, the f+1 instances have their primaries on f+1 distinct nodes, so
// no node ever hosts more than one primary.
func TestPrimaryPlacementInvariant(t *testing.T) {
	for f := 1; f <= 5; f++ {
		c := NewConfig(f)
		for v := View(0); v < View(4*c.N); v++ {
			seen := make(map[NodeID]InstanceID, c.Instances())
			for i := InstanceID(0); int(i) < c.Instances(); i++ {
				p := c.PrimaryOf(v, i)
				if p < 0 || int(p) >= c.N {
					t.Fatalf("f=%d v=%d inst=%d: primary %d out of range", f, v, i, p)
				}
				if other, dup := seen[p]; dup {
					t.Fatalf("f=%d v=%d: node %d is primary of instances %d and %d", f, v, p, other, i)
				}
				seen[p] = i
			}
		}
	}
}

// TestPrimaryRotation checks that an instance change (view+1) moves the
// master primary to a different node.
func TestPrimaryRotation(t *testing.T) {
	c := NewConfig(1)
	for v := View(0); v < 100; v++ {
		before := c.PrimaryOf(v, MasterInstance)
		after := c.PrimaryOf(v+1, MasterInstance)
		if before == after {
			t.Fatalf("view %d -> %d: master primary did not move (node %d)", v, v+1, before)
		}
	}
}

func TestPrimaryPlacementProperty(t *testing.T) {
	prop := func(fRaw uint8, vRaw uint64) bool {
		f := int(fRaw%5) + 1
		c := NewConfig(f)
		v := View(vRaw)
		seen := make(map[NodeID]bool, c.Instances())
		for i := InstanceID(0); int(i) < c.Instances(); i++ {
			p := c.PrimaryOf(v, i)
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAllNodes(t *testing.T) {
	c := NewConfig(2)
	nodes := c.AllNodes()
	if len(nodes) != 7 {
		t.Fatalf("AllNodes() returned %d nodes, want 7", len(nodes))
	}
	for i, n := range nodes {
		if int(n) != i {
			t.Errorf("AllNodes()[%d] = %d", i, n)
		}
	}
}

func TestRequestRefKey(t *testing.T) {
	a := RequestRef{Client: 7, ID: 42, Digest: Digest{1}}
	b := RequestRef{Client: 7, ID: 42, Digest: Digest{2}}
	if a.Key() != b.Key() {
		t.Error("refs differing only in digest must share a key (equivocation detection)")
	}
	c := RequestRef{Client: 7, ID: 43, Digest: Digest{1}}
	if a.Key() == c.Key() {
		t.Error("refs with different request ids must not share a key")
	}
}

func TestDigestHelpers(t *testing.T) {
	var zero Digest
	if !zero.IsZero() {
		t.Error("zero digest should report IsZero")
	}
	d := Digest{0xab, 0xcd}
	if d.IsZero() {
		t.Error("non-zero digest should not report IsZero")
	}
	if got := d.String(); got != "abcd0000" {
		t.Errorf("String() = %q", got)
	}
}
