// Package types: see types.go for the full documentation of identifiers and
// cluster configuration. This file pins down the numerology used throughout
// the repository, matching the paper's system model (§II):
//
//   - N = 3f+1 nodes tolerate f Byzantine nodes (the theoretical bound).
//   - Each node runs f+1 protocol instances; instance 0 is the master.
//   - Quorum()      = 2f+1 — Byzantine majority: any two quorums intersect
//     in at least one correct node.
//   - WeakQuorum()  = f+1  — at least one correct node; used for PROPAGATE
//     (request durability), client reply acceptance, and batch fetch.
//   - PrepareQuorum() = 2f — PREPAREs matching a PRE-PREPARE (the sender's
//     own logged PREPARE counts toward it, per PBFT).
package types
