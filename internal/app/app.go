// Package app defines the replicated application interface executed by RBFT
// nodes, plus reference applications used by examples, tests and benchmarks.
package app

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"rbft/internal/types"
)

// Application is the deterministic state machine replicated by RBFT. Execute
// is invoked with requests in the total order decided by the master instance;
// it must be deterministic (identical inputs produce identical outputs and
// state on every node).
type Application interface {
	Execute(client types.ClientID, id types.RequestID, op []byte) []byte
}

// ConflictKeyer is the optional interface an Application implements to opt
// into parallel execution (internal/exec, docs/EXECUTION.md). Keys declares
// the state an operation touches: two operations conflict when one writes a
// key the other reads or writes. The contract is strict — Execute may only
// read state named in reads∪writes and only mutate state named in writes,
// for every possible op (including malformed ones; return nil,nil for an op
// that touches nothing). An undeclared access makes concurrent execution
// diverge across replicas. Applications that do not implement ConflictKeyer
// are applied serially, byte-identical to a scheduler-less node.
type ConflictKeyer interface {
	// Keys returns the read-set and write-set of op. It must be a pure
	// function of the op bytes and must not touch application state.
	Keys(op []byte) (reads, writes []string)
}

// ReadExecutor is the optional interface an Application implements to serve
// the speculative read-only fast path (docs/CLIENTS.md). ExecuteRead answers
// op against the current local state without going through ordering; it must
// be side-effect free. ok=false marks an op that is not a pure read — the
// node drops such a request and the client falls back to normal ordering.
// Because replicas answer at possibly different points in the execution
// stream, a result is only surfaced to callers once a read quorum (2f+1) of
// replicas returns identical bytes.
type ReadExecutor interface {
	ExecuteRead(op []byte) (result []byte, ok bool)
}

// Null is an application that does nothing and replies with a fixed
// acknowledgement. It is the workload used by the throughput benchmarks,
// where execution cost is modelled separately. It deliberately does NOT
// implement ConflictKeyer, making it the canonical serial-fallback app.
type Null struct{}

var _ Application = Null{}

// Execute implements Application.
func (Null) Execute(types.ClientID, types.RequestID, []byte) []byte {
	return []byte("ok")
}

// Counter is a tiny application maintaining one integer per client; every
// request adds the 8-byte big-endian value in the operation (or 1 if absent)
// and returns the new total. Used by integration tests to check that all
// nodes execute the same sequence.
type Counter struct {
	mu     sync.Mutex
	totals map[types.ClientID]uint64
	log    uint64 // order-sensitive digest of all executions
}

var _ Application = (*Counter)(nil)
var _ ConflictKeyer = (*Counter)(nil)

// NewCounter creates an empty counter application.
func NewCounter() *Counter {
	return &Counter{totals: make(map[types.ClientID]uint64)}
}

// Execute implements Application.
func (c *Counter) Execute(client types.ClientID, id types.RequestID, op []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	delta := uint64(1)
	if len(op) >= 8 {
		delta = binary.BigEndian.Uint64(op)
	}
	c.totals[client] += delta
	// Mix an order-sensitive fingerprint so divergent execution orders are
	// detectable.
	c.log = c.log*1099511628211 + uint64(client)*31 + uint64(id)*17 + delta
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, c.totals[client])
	return out
}

// counterLogKey is the single write key every Counter operation declares.
var counterLogKey = []string{"log"}

// Keys implements ConflictKeyer. Every operation writes the order-sensitive
// fingerprint, so all operations conflict and the execution scheduler
// degenerates to serial in-order apply — exactly what the fingerprint
// requires. The Counter exists to detect ordering divergence; declaring
// per-client keys would let the scheduler reorder across clients and destroy
// the property the integration tests rely on.
func (c *Counter) Keys([]byte) (reads, writes []string) {
	return nil, counterLogKey
}

// Total returns the current total for a client.
func (c *Counter) Total(client types.ClientID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals[client]
}

// Fingerprint returns the order-sensitive execution digest.
func (c *Counter) Fingerprint() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log
}

// KV is a replicated key-value store with GET/PUT/DEL operations encoded as
// text: "PUT key value", "GET key", "DEL key". Verbs are case-insensitive
// ("put k v" works); keys and values are case-sensitive and taken verbatim
// ("K" and "k" are different keys). A PUT value is everything after the
// second space, spaces included. Empty or whitespace-only operations are
// rejected explicitly. It backs the kvstore example.
//
// The store is sharded: each key lives in one of kvShards independently
// locked segments, so non-conflicting operations scheduled concurrently by
// internal/exec really do apply in parallel.
type KV struct {
	shards [kvShards]kvShard
}

// kvShards is the fixed shard count; a power of two so shardOf is a mask.
const kvShards = 16

type kvShard struct {
	mu   sync.Mutex
	data map[string]string
}

var _ Application = (*KV)(nil)
var _ ConflictKeyer = (*KV)(nil)
var _ ReadExecutor = (*KV)(nil)

// NewKV creates an empty key-value store.
func NewKV() *KV {
	kv := &KV{}
	for i := range kv.shards {
		kv.shards[i].data = make(map[string]string)
	}
	return kv
}

// shardOf maps a key to its segment (FNV-1a, masked).
func (kv *KV) shardOf(key string) *kvShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &kv.shards[h&(kvShards-1)]
}

// kvVerb classifies one operation. parseOp is the single parser shared by
// Execute and Keys so the declared conflict keys can never diverge from the
// state Execute actually touches.
type kvVerb int

const (
	kvEmpty kvVerb = iota // empty or whitespace-only op
	kvBadPut
	kvBadGet
	kvBadDel
	kvUnknown
	kvPut
	kvGet
	kvDel
)

// parseOp splits op into verb, key and value. Verbs match case-insensitively;
// the key (parts[1]) and value (parts[2], spaces preserved) are verbatim.
func parseOp(op []byte) (verb kvVerb, key, value, rawVerb string) {
	s := string(op)
	if strings.TrimSpace(s) == "" {
		return kvEmpty, "", "", ""
	}
	parts := strings.SplitN(s, " ", 3)
	rawVerb = parts[0]
	switch strings.ToUpper(rawVerb) {
	case "PUT":
		if len(parts) != 3 {
			return kvBadPut, "", "", rawVerb
		}
		return kvPut, parts[1], parts[2], rawVerb
	case "GET":
		if len(parts) != 2 {
			return kvBadGet, "", "", rawVerb
		}
		return kvGet, parts[1], "", rawVerb
	case "DEL":
		if len(parts) != 2 {
			return kvBadDel, "", "", rawVerb
		}
		return kvDel, parts[1], "", rawVerb
	default:
		return kvUnknown, "", "", rawVerb
	}
}

// Execute implements Application.
func (kv *KV) Execute(_ types.ClientID, _ types.RequestID, op []byte) []byte {
	verb, key, value, rawVerb := parseOp(op)
	switch verb {
	case kvPut:
		sh := kv.shardOf(key)
		sh.mu.Lock()
		sh.data[key] = value
		sh.mu.Unlock()
		return []byte("OK")
	case kvGet:
		sh := kv.shardOf(key)
		sh.mu.Lock()
		v, ok := sh.data[key]
		sh.mu.Unlock()
		if !ok {
			return []byte("NOT_FOUND")
		}
		return []byte(v)
	case kvDel:
		sh := kv.shardOf(key)
		sh.mu.Lock()
		delete(sh.data, key)
		sh.mu.Unlock()
		return []byte("OK")
	case kvEmpty:
		return []byte("ERR empty op")
	case kvBadPut:
		return []byte("ERR usage: PUT key value")
	case kvBadGet:
		return []byte("ERR usage: GET key")
	case kvBadDel:
		return []byte("ERR usage: DEL key")
	default:
		return []byte(fmt.Sprintf("ERR unknown op %q", rawVerb))
	}
}

// ExecuteRead implements ReadExecutor: a GET is answered from the key's
// shard under its lock — the same bytes Execute would produce for the same
// store state. Anything that is not a well-formed GET is not a read
// (ok=false) and must travel through ordering.
func (kv *KV) ExecuteRead(op []byte) ([]byte, bool) {
	verb, key, _, _ := parseOp(op)
	if verb != kvGet {
		return nil, false
	}
	sh := kv.shardOf(key)
	sh.mu.Lock()
	v, ok := sh.data[key]
	sh.mu.Unlock()
	if !ok {
		return []byte("NOT_FOUND"), true
	}
	return []byte(v), true
}

// Keys implements ConflictKeyer: GET reads its key; PUT and DEL write theirs.
// Malformed, empty and unknown operations touch no state and declare nothing,
// so they commute with everything.
func (kv *KV) Keys(op []byte) (reads, writes []string) {
	verb, key, _, _ := parseOp(op)
	switch verb {
	case kvGet:
		return []string{key}, nil
	case kvPut, kvDel:
		return nil, []string{key}
	default:
		return nil, nil
	}
}

// Len returns the number of stored keys.
func (kv *KV) Len() int {
	n := 0
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.mu.Lock()
		n += len(sh.data)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot copies the full store (tests compare replica states with it).
func (kv *KV) Snapshot() map[string]string {
	out := make(map[string]string)
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.mu.Lock()
		for k, v := range sh.data {
			out[k] = v
		}
		sh.mu.Unlock()
	}
	return out
}
