// Package app defines the replicated application interface executed by RBFT
// nodes, plus reference applications used by examples, tests and benchmarks.
package app

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"rbft/internal/types"
)

// Application is the deterministic state machine replicated by RBFT. Execute
// is invoked with requests in the total order decided by the master instance;
// it must be deterministic (identical inputs produce identical outputs and
// state on every node).
type Application interface {
	Execute(client types.ClientID, id types.RequestID, op []byte) []byte
}

// Null is an application that does nothing and replies with a fixed
// acknowledgement. It is the workload used by the throughput benchmarks,
// where execution cost is modelled separately.
type Null struct{}

var _ Application = Null{}

// Execute implements Application.
func (Null) Execute(types.ClientID, types.RequestID, []byte) []byte {
	return []byte("ok")
}

// Counter is a tiny application maintaining one integer per client; every
// request adds the 8-byte big-endian value in the operation (or 1 if absent)
// and returns the new total. Used by integration tests to check that all
// nodes execute the same sequence.
type Counter struct {
	mu     sync.Mutex
	totals map[types.ClientID]uint64
	log    uint64 // order-sensitive digest of all executions
}

var _ Application = (*Counter)(nil)

// NewCounter creates an empty counter application.
func NewCounter() *Counter {
	return &Counter{totals: make(map[types.ClientID]uint64)}
}

// Execute implements Application.
func (c *Counter) Execute(client types.ClientID, id types.RequestID, op []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	delta := uint64(1)
	if len(op) >= 8 {
		delta = binary.BigEndian.Uint64(op)
	}
	c.totals[client] += delta
	// Mix an order-sensitive fingerprint so divergent execution orders are
	// detectable.
	c.log = c.log*1099511628211 + uint64(client)*31 + uint64(id)*17 + delta
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, c.totals[client])
	return out
}

// Total returns the current total for a client.
func (c *Counter) Total(client types.ClientID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals[client]
}

// Fingerprint returns the order-sensitive execution digest.
func (c *Counter) Fingerprint() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log
}

// KV is a replicated key-value store with GET/PUT/DEL operations encoded as
// text: "PUT key value", "GET key", "DEL key". It backs the kvstore example.
type KV struct {
	mu   sync.Mutex
	data map[string]string
}

var _ Application = (*KV)(nil)

// NewKV creates an empty key-value store.
func NewKV() *KV {
	return &KV{data: make(map[string]string)}
}

// Execute implements Application.
func (kv *KV) Execute(_ types.ClientID, _ types.RequestID, op []byte) []byte {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	parts := strings.SplitN(string(op), " ", 3)
	switch strings.ToUpper(parts[0]) {
	case "PUT":
		if len(parts) != 3 {
			return []byte("ERR usage: PUT key value")
		}
		kv.data[parts[1]] = parts[2]
		return []byte("OK")
	case "GET":
		if len(parts) != 2 {
			return []byte("ERR usage: GET key")
		}
		v, ok := kv.data[parts[1]]
		if !ok {
			return []byte("NOT_FOUND")
		}
		return []byte(v)
	case "DEL":
		if len(parts) != 2 {
			return []byte("ERR usage: DEL key")
		}
		delete(kv.data, parts[1])
		return []byte("OK")
	default:
		return []byte(fmt.Sprintf("ERR unknown op %q", parts[0]))
	}
}

// Len returns the number of stored keys.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.data)
}
