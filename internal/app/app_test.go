package app

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"

	"rbft/internal/types"
)

func TestNullApp(t *testing.T) {
	var n Null
	if got := n.Execute(1, 2, []byte("anything")); string(got) != "ok" {
		t.Fatalf("Null.Execute = %q", got)
	}
}

func TestCounterAddsAndReplies(t *testing.T) {
	c := NewCounter()
	op := make([]byte, 8)
	binary.BigEndian.PutUint64(op, 5)
	out := c.Execute(1, 1, op)
	if got := binary.BigEndian.Uint64(out); got != 5 {
		t.Fatalf("result = %d, want 5", got)
	}
	c.Execute(1, 2, nil) // default +1
	if got := c.Total(1); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := c.Total(9); got != 0 {
		t.Fatalf("Total(unknown) = %d", got)
	}
}

// TestCounterFingerprintOrderSensitive: the fingerprint must distinguish
// execution orders — that is what the integration tests rely on to detect
// divergent replicas.
func TestCounterFingerprintOrderSensitive(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	a.Execute(1, 1, nil)
	a.Execute(2, 1, nil)
	b.Execute(2, 1, nil)
	b.Execute(1, 1, nil)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different orders produced the same fingerprint")
	}
	// Same order, same fingerprint.
	c, d := NewCounter(), NewCounter()
	for i := 0; i < 10; i++ {
		c.Execute(1, types.RequestID(i), nil)
		d.Execute(1, types.RequestID(i), nil)
	}
	if c.Fingerprint() != d.Fingerprint() {
		t.Fatal("identical orders produced different fingerprints")
	}
}

func TestKVOperations(t *testing.T) {
	kv := NewKV()
	tests := []struct {
		op   string
		want string
	}{
		{"PUT k v", "OK"},
		{"GET k", "v"},
		{"PUT k2 with spaces", "with spaces"},
		{"GET k2", "with spaces"},
		{"DEL k", "OK"},
		{"GET k", "NOT_FOUND"},
		{"put lower case", "case"}, // case-insensitive verbs
		{"GET lower", "case"},
		{"PUT", "ERR usage: PUT key value"},
		{"GET", "ERR usage: GET key"},
		{"DEL", "ERR usage: DEL key"},
		{"NOPE x", `ERR unknown op "NOPE"`},
	}
	for _, tt := range tests {
		got := kv.Execute(1, 1, []byte(tt.op))
		want := tt.want
		if tt.op == "PUT k2 with spaces" {
			want = "OK"
		}
		if tt.op == "put lower case" {
			want = "OK"
		}
		if !bytes.Equal(got, []byte(want)) {
			t.Errorf("Execute(%q) = %q, want %q", tt.op, got, want)
		}
	}
	if kv.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (k2, lower)", kv.Len())
	}
}

// TestKVDeterministic: identical op sequences produce identical stores
// (required of a replicated application).
func TestKVDeterministic(t *testing.T) {
	prop := func(keys []string, vals []string) bool {
		a, b := NewKV(), NewKV()
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			op := []byte("PUT " + sanitize(keys[i]) + " " + sanitize(vals[i]))
			ra := a.Execute(1, types.RequestID(i), op)
			rb := b.Execute(1, types.RequestID(i), op)
			if !bytes.Equal(ra, rb) {
				return false
			}
		}
		return a.Len() == b.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestKVRejectsEmptyOps: empty and whitespace-only operations are rejected
// explicitly instead of being misparsed as an unknown verb.
func TestKVRejectsEmptyOps(t *testing.T) {
	kv := NewKV()
	for _, op := range []string{"", " ", "   ", "\t", " \t "} {
		if got := kv.Execute(1, 1, []byte(op)); string(got) != "ERR empty op" {
			t.Errorf("Execute(%q) = %q, want ERR empty op", op, got)
		}
	}
	if kv.Len() != 0 {
		t.Fatalf("rejected ops mutated the store: Len = %d", kv.Len())
	}
}

// TestKVEdgeCases pins the parser contract: keys case-sensitive, verbs not;
// values keep every space after the second one; deleting a missing key is
// still OK (DEL is idempotent, as replayed operations must be).
func TestKVEdgeCases(t *testing.T) {
	kv := NewKV()
	steps := []struct {
		op   string
		want string
	}{
		{"DEL missing", "OK"},  // idempotent delete
		{"PUT k v", "OK"},      // lower-case key...
		{"GET K", "NOT_FOUND"}, // ...is not the upper-case key
		{"pUt K other", "OK"},  // mixed-case verb, distinct key
		{"GET k", "v"},
		{"GET K", "other"},
		{"PUT s  two  spaces ", "OK"}, // value " two  spaces " verbatim
		{"GET s", " two  spaces "},
		{"PUT s ", "OK"}, // trailing space: the value is the empty string
		{"GET s", ""},
		{"GET k extra", "ERR usage: GET key"}, // arity checked, not ignored
		{"DEL k extra", "ERR usage: DEL key"},
		{"PUT k", "ERR usage: PUT key value"},
	}
	for _, st := range steps {
		if got := kv.Execute(1, 1, []byte(st.op)); string(got) != st.want {
			t.Errorf("Execute(%q) = %q, want %q", st.op, got, st.want)
		}
	}
}

// TestKVKeys pins the ConflictKeyer contract Execute relies on: GET reads
// its key, PUT/DEL write theirs, and everything that touches no state
// declares nothing.
func TestKVKeys(t *testing.T) {
	kv := NewKV()
	tests := []struct {
		op     string
		reads  []string
		writes []string
	}{
		{"GET k", []string{"k"}, nil},
		{"get K", []string{"K"}, nil},
		{"PUT k v", nil, []string{"k"}},
		{"del k", nil, []string{"k"}},
		{"", nil, nil},
		{"   ", nil, nil},
		{"PUT k", nil, nil},
		{"GET", nil, nil},
		{"NOPE x", nil, nil},
	}
	for _, tt := range tests {
		reads, writes := kv.Keys([]byte(tt.op))
		if !equalStrings(reads, tt.reads) || !equalStrings(writes, tt.writes) {
			t.Errorf("Keys(%q) = %v, %v, want %v, %v", tt.op, reads, writes, tt.reads, tt.writes)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKVSnapshot: the snapshot is a complete, detached copy of the store.
func TestKVSnapshot(t *testing.T) {
	kv := NewKV()
	kv.Execute(1, 1, []byte("PUT a 1"))
	kv.Execute(1, 2, []byte("PUT b 2"))
	kv.Execute(1, 3, []byte("DEL a"))
	snap := kv.Snapshot()
	if len(snap) != 1 || snap["b"] != "2" {
		t.Fatalf("Snapshot = %v, want {b:2}", snap)
	}
	snap["b"] = "mutated"
	if got := kv.Execute(1, 4, []byte("GET b")); string(got) != "2" {
		t.Fatalf("mutating the snapshot changed the store: GET b = %q", got)
	}
}

// TestCounterKeysForceSerial: every Counter op declares the same write key,
// so the parallel scheduler must place any two ops in conflict — the
// property that keeps the order-sensitive fingerprint meaningful.
func TestCounterKeysForceSerial(t *testing.T) {
	c := NewCounter()
	r1, w1 := c.Keys(nil)
	r2, w2 := c.Keys([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if len(r1) != 0 || len(r2) != 0 {
		t.Fatalf("Counter declared reads: %v / %v", r1, r2)
	}
	if len(w1) != 1 || len(w2) != 1 || w1[0] != w2[0] {
		t.Fatalf("Counter ops must share one write key, got %v / %v", w1, w2)
	}
}

// TestCounterConcurrentClients: totals stay per-client and exact under
// concurrent Execute calls from many goroutines (the app must be internally
// thread-safe even though the scheduler serialises conflicting ops — a
// misdeclared keyer should corrupt state detectably, not silently).
func TestCounterConcurrentClients(t *testing.T) {
	c := NewCounter()
	const clients, perClient = 8, 200
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			op := make([]byte, 8)
			binary.BigEndian.PutUint64(op, uint64(cl+1))
			for i := 0; i < perClient; i++ {
				c.Execute(types.ClientID(cl), types.RequestID(i), op)
			}
		}(cl)
	}
	wg.Wait()
	for cl := 0; cl < clients; cl++ {
		want := uint64(cl+1) * perClient
		if got := c.Total(types.ClientID(cl)); got != want {
			t.Errorf("Total(%d) = %d, want %d", cl, got, want)
		}
	}
}

func sanitize(s string) string {
	out := []byte("k")
	for _, r := range s {
		if r > ' ' && r < 127 {
			out = append(out, byte(r))
		}
	}
	return string(out)
}
