package app

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"rbft/internal/types"
)

func TestNullApp(t *testing.T) {
	var n Null
	if got := n.Execute(1, 2, []byte("anything")); string(got) != "ok" {
		t.Fatalf("Null.Execute = %q", got)
	}
}

func TestCounterAddsAndReplies(t *testing.T) {
	c := NewCounter()
	op := make([]byte, 8)
	binary.BigEndian.PutUint64(op, 5)
	out := c.Execute(1, 1, op)
	if got := binary.BigEndian.Uint64(out); got != 5 {
		t.Fatalf("result = %d, want 5", got)
	}
	c.Execute(1, 2, nil) // default +1
	if got := c.Total(1); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := c.Total(9); got != 0 {
		t.Fatalf("Total(unknown) = %d", got)
	}
}

// TestCounterFingerprintOrderSensitive: the fingerprint must distinguish
// execution orders — that is what the integration tests rely on to detect
// divergent replicas.
func TestCounterFingerprintOrderSensitive(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	a.Execute(1, 1, nil)
	a.Execute(2, 1, nil)
	b.Execute(2, 1, nil)
	b.Execute(1, 1, nil)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different orders produced the same fingerprint")
	}
	// Same order, same fingerprint.
	c, d := NewCounter(), NewCounter()
	for i := 0; i < 10; i++ {
		c.Execute(1, types.RequestID(i), nil)
		d.Execute(1, types.RequestID(i), nil)
	}
	if c.Fingerprint() != d.Fingerprint() {
		t.Fatal("identical orders produced different fingerprints")
	}
}

func TestKVOperations(t *testing.T) {
	kv := NewKV()
	tests := []struct {
		op   string
		want string
	}{
		{"PUT k v", "OK"},
		{"GET k", "v"},
		{"PUT k2 with spaces", "with spaces"},
		{"GET k2", "with spaces"},
		{"DEL k", "OK"},
		{"GET k", "NOT_FOUND"},
		{"put lower case", "case"}, // case-insensitive verbs
		{"GET lower", "case"},
		{"PUT", "ERR usage: PUT key value"},
		{"GET", "ERR usage: GET key"},
		{"DEL", "ERR usage: DEL key"},
		{"NOPE x", `ERR unknown op "NOPE"`},
	}
	for _, tt := range tests {
		got := kv.Execute(1, 1, []byte(tt.op))
		want := tt.want
		if tt.op == "PUT k2 with spaces" {
			want = "OK"
		}
		if tt.op == "put lower case" {
			want = "OK"
		}
		if !bytes.Equal(got, []byte(want)) {
			t.Errorf("Execute(%q) = %q, want %q", tt.op, got, want)
		}
	}
	if kv.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (k2, lower)", kv.Len())
	}
}

// TestKVDeterministic: identical op sequences produce identical stores
// (required of a replicated application).
func TestKVDeterministic(t *testing.T) {
	prop := func(keys []string, vals []string) bool {
		a, b := NewKV(), NewKV()
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			op := []byte("PUT " + sanitize(keys[i]) + " " + sanitize(vals[i]))
			ra := a.Execute(1, types.RequestID(i), op)
			rb := b.Execute(1, types.RequestID(i), op)
			if !bytes.Equal(ra, rb) {
				return false
			}
		}
		return a.Len() == b.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	out := []byte("k")
	for _, r := range s {
		if r > ' ' && r < 127 {
			out = append(out, byte(r))
		}
	}
	return string(out)
}
