// Package tcpnet is the TCP transport: length-prefixed frames over
// long-lived connections. Per the paper, TCP is the deployment default —
// it provides loss-less FIFO channels, and the cryptography (not the
// network stack) is the bottleneck in BFT protocols.
//
// Each connection begins with a handshake frame carrying the dialer's
// endpoint name; subsequent frames are payloads. Identity is *claimed* at
// this layer and authenticated above it by MACs.
//
// The endpoint implements transport.BatchSender: several payloads flush as
// one batch frame (transport.AppendBatch) with a single buffered write —
// one length prefix, one syscall, one TCP segment train — and the receiving
// side splits batch frames back into individual Packets. Frame writes carry
// a write deadline so a peer that stops draining its socket wedges neither
// the sender goroutine nor the per-connection mutex: the write times out,
// the connection is torn down, and the next send redials.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rbft/internal/transport"
)

// defaultWriteTimeout bounds one frame write. A healthy peer drains its
// receive buffer in microseconds; multi-second stalls mean a wedged or dead
// peer, and the protocol tolerates the resulting connection teardown.
const defaultWriteTimeout = 5 * time.Second

// Endpoint is a TCP transport endpoint.
type Endpoint struct {
	name     string
	listener net.Listener
	recv     chan transport.Packet

	mu       sync.Mutex
	peers    map[string]string      // guarded by mu; name -> dial address
	conns    map[string]*lockedConn // guarded by mu; name -> established outbound connection
	accepted map[net.Conn]bool      // guarded by mu; inbound connections, closed on shutdown
	barred   map[string]time.Time   // guarded by mu; peer -> drop-inbound-until deadline
	done     bool                   // guarded by mu

	// writeTimeout is set once before the endpoint carries traffic.
	writeTimeout time.Duration

	// metrics is set once before the endpoint carries traffic; the counters
	// themselves are internally atomic.
	metrics transport.Metrics

	wg sync.WaitGroup
}

// lockedConn serialises concurrent frame writes on one connection.
type lockedConn struct {
	mu sync.Mutex
	// conn deliberately carries no guard annotation: the mutex only
	// serialises frame writes, while Close is called lock-free to unblock
	// stuck writers (net.Conn is safe for concurrent use).
	conn net.Conn
	// scratch accumulates one wire frame (length prefix + payload) so every
	// flush is a single Write call. guarded by mu.
	scratch []byte
}

// writeFrame flushes one length-prefixed frame with a single write under a
// deadline. A deadline expiry (or any other error) leaves the connection
// poisoned; callers tear it down and redial.
func (lc *lockedConn) writeFrame(data []byte, timeout time.Duration) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.scratch = appendFrame(lc.scratch[:0], data)
	return lc.writeLocked(timeout)
}

// writeBatch flushes payloads as one batch frame with a single write.
func (lc *lockedConn) writeBatch(payloads [][]byte, total int, timeout time.Duration) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	batchLen := transport.BatchSize(len(payloads), total)
	lc.scratch = appendFrameHeader(lc.scratch[:0], batchLen)
	lc.scratch = transport.AppendBatch(lc.scratch, payloads)
	return lc.writeLocked(timeout)
}

// writeLocked writes the accumulated scratch frame under the write deadline.
func (lc *lockedConn) writeLocked(timeout time.Duration) error {
	if timeout > 0 {
		if err := lc.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	_, err := lc.conn.Write(lc.scratch)
	return err
}

var (
	_ transport.Transport   = (*Endpoint)(nil)
	_ transport.PeerCloser  = (*Endpoint)(nil)
	_ transport.BatchSender = (*Endpoint)(nil)
)

// Listen creates an endpoint named name listening on addr (e.g.
// "127.0.0.1:0"). peers maps every peer name to its dial address; it may be
// extended later with AddPeer.
func Listen(name, addr string, peers map[string]string) (*Endpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	e := &Endpoint{
		name:         name,
		listener:     l,
		recv:         make(chan transport.Packet, 4096),
		peers:        make(map[string]string, len(peers)),
		conns:        make(map[string]*lockedConn),
		accepted:     make(map[net.Conn]bool),
		barred:       make(map[string]time.Time),
		writeTimeout: defaultWriteTimeout,
	}
	for k, v := range peers {
		e.peers[k] = v
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's listen address (useful with ":0").
func (e *Endpoint) Addr() string { return e.listener.Addr().String() }

// AddPeer registers or updates a peer's dial address.
func (e *Endpoint) AddPeer(name, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[name] = addr
}

// Name implements transport.Transport.
func (e *Endpoint) Name() string { return e.name }

// Packets implements transport.Transport.
func (e *Endpoint) Packets() <-chan transport.Packet { return e.recv }

// SetMetrics installs transport counters. Call before the endpoint carries
// traffic.
func (e *Endpoint) SetMetrics(m transport.Metrics) { e.metrics = m }

// SetWriteTimeout overrides the per-frame write deadline (0 disables). Call
// before the endpoint carries traffic.
func (e *Endpoint) SetWriteTimeout(d time.Duration) { e.writeTimeout = d }

// ClosePeer implements transport.PeerCloser: inbound frames claiming to be
// from peer are discarded until the deadline (RBFT flood defence).
func (e *Endpoint) ClosePeer(peer string, until time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.barred[peer] = until
	e.metrics.PeerClosures.Inc()
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.done {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(conn)
			e.mu.Lock()
			delete(e.accepted, conn)
			e.mu.Unlock()
		}()
	}
}

// serveConn reads the handshake then pumps frames into recv, splitting
// coalesced batch frames back into individual packets.
func (e *Endpoint) serveConn(conn net.Conn) {
	defer conn.Close()
	peer, err := readFrame(conn)
	if err != nil {
		return
	}
	from := string(peer)
	for {
		data, err := readFrame(conn)
		if err != nil {
			return
		}
		e.mu.Lock()
		closed := e.done
		until, blocked := e.barred[from]
		e.mu.Unlock()
		if closed {
			return
		}
		if blocked {
			if time.Now().Before(until) {
				e.metrics.Dropped.Inc()
				continue // NIC closed toward this peer
			}
			e.mu.Lock()
			delete(e.barred, from)
			e.mu.Unlock()
		}
		if transport.IsBatch(data) {
			if err := transport.SplitBatch(data, func(p []byte) {
				e.deliver(from, p)
			}); err != nil {
				e.metrics.Dropped.Inc() // corrupt batch frame: drop it whole
			}
			continue
		}
		e.deliver(from, data)
	}
}

// deliver enqueues one received payload, dropping on receiver overflow.
func (e *Endpoint) deliver(from string, data []byte) {
	select {
	case e.recv <- transport.Packet{From: from, Data: data}:
		e.metrics.BytesIn.Add(uint64(len(data)))
	default:
		// Receiver overloaded: drop rather than stall the socket and
		// back-pressure the whole cluster.
		e.metrics.Dropped.Inc()
	}
}

// Send implements transport.Transport. It dials lazily and retries once on
// a stale cached connection; a write that trips the deadline tears the
// connection down the same way.
func (e *Endpoint) Send(to string, data []byte) error {
	if len(data) > transport.MaxFrame {
		return transport.ErrFrameTooBig
	}
	err := e.withConn(to, func(lc *lockedConn) error {
		return lc.writeFrame(data, e.writeTimeout)
	})
	if err != nil {
		return err
	}
	e.metrics.BytesOut.Add(uint64(len(data)))
	return nil
}

// SendBatch implements transport.BatchSender: payloads flush as one batch
// frame with a single write. An oversized batch falls back to per-payload
// frames.
func (e *Endpoint) SendBatch(to string, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	if len(payloads) == 1 {
		return e.Send(to, payloads[0])
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	if transport.BatchSize(len(payloads), total) > transport.MaxFrame {
		for _, p := range payloads {
			if err := e.Send(to, p); err != nil {
				return err
			}
		}
		return nil
	}
	err := e.withConn(to, func(lc *lockedConn) error {
		return lc.writeBatch(payloads, total, e.writeTimeout)
	})
	if err != nil {
		return err
	}
	e.metrics.BytesOut.Add(uint64(total))
	e.metrics.BatchesSent.Inc()
	e.metrics.FramesCoalesced.Add(uint64(len(payloads)))
	e.metrics.BytesSaved.Add(uint64((len(payloads) - 1) * transport.PacketOverheadEstimate))
	return nil
}

// withConn runs write against the cached connection to the peer, tearing
// down and redialling once on failure (stale cache, wedged writer).
func (e *Endpoint) withConn(to string, write func(*lockedConn) error) error {
	conn, err := e.conn(to)
	if err != nil {
		return err
	}
	if err := write(conn); err != nil {
		e.dropConn(to, conn)
		conn, err = e.conn(to)
		if err != nil {
			return err
		}
		if err := write(conn); err != nil {
			e.dropConn(to, conn)
			return fmt.Errorf("tcpnet send to %q: %w", to, err)
		}
	}
	return nil
}

func (e *Endpoint) conn(to string) (*lockedConn, error) {
	e.mu.Lock()
	if e.done {
		e.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	addr, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", transport.ErrUnknownPeer, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet dial %q: %w", to, err)
	}
	if err := writeFrame(c, []byte(e.name)); err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpnet handshake with %q: %w", to, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		c.Close()
		return nil, transport.ErrClosed
	}
	if existing, ok := e.conns[to]; ok {
		c.Close()
		return existing, nil
	}
	lc := &lockedConn{conn: c}
	e.conns[to] = lc
	return lc, nil
}

func (e *Endpoint) dropConn(to string, conn *lockedConn) {
	e.mu.Lock()
	if e.conns[to] == conn {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	conn.conn.Close()
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.done {
		e.mu.Unlock()
		return nil
	}
	e.done = true
	conns := e.conns
	e.conns = map[string]*lockedConn{}
	accepted := make([]net.Conn, 0, len(e.accepted))
	for c := range e.accepted {
		accepted = append(accepted, c)
	}
	e.mu.Unlock()

	e.listener.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	e.wg.Wait()
	close(e.recv)
	return nil
}

// appendFrameHeader appends the 4-byte big-endian length prefix for a frame
// of n payload bytes.
func appendFrameHeader(b []byte, n int) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	return append(b, hdr[:]...)
}

// appendFrame appends a full wire frame (length prefix + payload).
func appendFrame(b, data []byte) []byte {
	b = appendFrameHeader(b, len(data))
	return append(b, data...)
}

// writeFrame writes a 4-byte big-endian length prefix followed by data
// (handshake path; steady-state frames go through lockedConn for the
// single-write + deadline discipline).
func writeFrame(w io.Writer, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > transport.MaxFrame {
		return nil, transport.ErrFrameTooBig
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}
