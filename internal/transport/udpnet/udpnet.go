// Package udpnet is the UDP transport: one datagram per frame, each
// prefixed with the sender's name. The paper's UDP variant of RBFT showed
// 18-22% lower latency than TCP at the same peak throughput; this transport
// lets the runtime reproduce that deployment. Frames larger than a safe
// datagram payload are rejected (RBFT instance traffic is small because
// instances order request identifiers, not bodies).
package udpnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"rbft/internal/transport"
)

// MaxDatagram bounds one UDP frame (name prefix + payload).
const MaxDatagram = 60 * 1024

// Endpoint is a UDP transport endpoint.
type Endpoint struct {
	name string
	conn *net.UDPConn
	recv chan transport.Packet

	mu     sync.RWMutex
	peers  map[string]*net.UDPAddr // guarded by mu
	barred map[string]time.Time    // guarded by mu; peer -> drop-inbound-until deadline
	done   bool                    // guarded by mu

	// metrics is set once before the endpoint carries traffic; the counters
	// themselves are internally atomic.
	metrics transport.Metrics

	wg sync.WaitGroup
}

var (
	_ transport.Transport   = (*Endpoint)(nil)
	_ transport.PeerCloser  = (*Endpoint)(nil)
	_ transport.BatchSender = (*Endpoint)(nil)
)

// Listen creates an endpoint named name bound to addr. peers maps peer
// names to their UDP addresses.
func Listen(name, addr string, peers map[string]string) (*Endpoint, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet resolve: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet listen: %w", err)
	}
	e := &Endpoint{
		name:   name,
		conn:   conn,
		recv:   make(chan transport.Packet, 4096),
		peers:  make(map[string]*net.UDPAddr, len(peers)),
		barred: make(map[string]time.Time),
	}
	for k, v := range peers {
		if err := e.AddPeer(k, v); err != nil {
			conn.Close()
			return nil, err
		}
	}
	e.wg.Add(1)
	go e.readLoop()
	return e, nil
}

// Addr returns the bound address.
func (e *Endpoint) Addr() string { return e.conn.LocalAddr().String() }

// AddPeer registers a peer's address.
func (e *Endpoint) AddPeer(name, addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udpnet resolve peer %q: %w", name, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[name] = udpAddr
	return nil
}

// Name implements transport.Transport.
func (e *Endpoint) Name() string { return e.name }

// Packets implements transport.Transport.
func (e *Endpoint) Packets() <-chan transport.Packet { return e.recv }

// SetMetrics installs transport counters. Call before the endpoint carries
// traffic.
func (e *Endpoint) SetMetrics(m transport.Metrics) { e.metrics = m }

// ClosePeer implements transport.PeerCloser: datagrams claiming to be from
// peer are discarded until the deadline (RBFT flood defence).
func (e *Endpoint) ClosePeer(peer string, until time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.barred[peer] = until
	e.metrics.PeerClosures.Inc()
}

func (e *Endpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, MaxDatagram+4)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 2 {
			continue
		}
		nameLen := int(binary.BigEndian.Uint16(buf[:2]))
		if 2+nameLen > n {
			continue
		}
		from := string(buf[2 : 2+nameLen])
		data := make([]byte, n-2-nameLen)
		copy(data, buf[2+nameLen:n])
		e.mu.RLock()
		closed := e.done
		until, blocked := e.barred[from]
		e.mu.RUnlock()
		if closed {
			return
		}
		if blocked {
			if time.Now().Before(until) {
				e.metrics.Dropped.Inc()
				continue // NIC closed toward this peer
			}
			e.mu.Lock()
			delete(e.barred, from)
			e.mu.Unlock()
		}
		if transport.IsBatch(data) {
			if err := transport.SplitBatch(data, func(p []byte) {
				e.deliver(from, p)
			}); err != nil {
				e.metrics.Dropped.Inc() // corrupt batch frame: drop it whole
			}
			continue
		}
		e.deliver(from, data)
	}
}

// deliver enqueues one received payload, dropping on receiver overflow.
func (e *Endpoint) deliver(from string, data []byte) {
	select {
	case e.recv <- transport.Packet{From: from, Data: data}:
		e.metrics.BytesIn.Add(uint64(len(data)))
	default:
		// Drop on overload: UDP semantics.
		e.metrics.Dropped.Inc()
	}
}

// Send implements transport.Transport.
func (e *Endpoint) Send(to string, data []byte) error {
	if 2+len(e.name)+len(data) > MaxDatagram {
		return transport.ErrFrameTooBig
	}
	e.mu.RLock()
	addr, ok := e.peers[to]
	done := e.done
	e.mu.RUnlock()
	if done {
		return transport.ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", transport.ErrUnknownPeer, to)
	}
	frame := make([]byte, 2+len(e.name)+len(data))
	binary.BigEndian.PutUint16(frame[:2], uint16(len(e.name)))
	copy(frame[2:], e.name)
	copy(frame[2+len(e.name):], data)
	_, err := e.conn.WriteToUDP(frame, addr)
	if err == nil {
		e.metrics.BytesOut.Add(uint64(len(data)))
	}
	return err
}

// SendBatch implements transport.BatchSender: the payloads coalesce into one
// batch frame carried by a single datagram. A batch too large for a datagram
// falls back to one datagram per payload.
func (e *Endpoint) SendBatch(to string, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	if len(payloads) == 1 {
		return e.Send(to, payloads[0])
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	size := transport.BatchSize(len(payloads), total)
	if 2+len(e.name)+size > MaxDatagram {
		for _, p := range payloads {
			if err := e.Send(to, p); err != nil {
				return err
			}
		}
		return nil
	}
	e.mu.RLock()
	addr, ok := e.peers[to]
	done := e.done
	e.mu.RUnlock()
	if done {
		return transport.ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", transport.ErrUnknownPeer, to)
	}
	frame := make([]byte, 0, 2+len(e.name)+size)
	frame = append(frame, byte(len(e.name)>>8), byte(len(e.name)))
	frame = append(frame, e.name...)
	frame = transport.AppendBatch(frame, payloads)
	if _, err := e.conn.WriteToUDP(frame, addr); err != nil {
		return err
	}
	e.metrics.BytesOut.Add(uint64(total))
	e.metrics.BatchesSent.Inc()
	e.metrics.FramesCoalesced.Add(uint64(len(payloads)))
	e.metrics.BytesSaved.Add(uint64((len(payloads) - 1) * transport.PacketOverheadEstimate))
	return nil
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.done {
		e.mu.Unlock()
		return nil
	}
	e.done = true
	e.mu.Unlock()
	e.conn.Close()
	e.wg.Wait()
	close(e.recv)
	return nil
}
