package transport

import (
	"encoding/binary"
	"fmt"
)

// Batch frames let a sender coalesce several protocol payloads into one wire
// frame, paying the per-frame overhead (length prefix, syscall, datagram)
// once per flush instead of once per message. The format is transport
// independent:
//
//	magic (1 byte) | count (u32) | { len_i (u32) | payload_i } * count
//
// Protocol payloads always begin with a message-type byte (small values:
// 1-33), and tcpnet handshake frames begin with an endpoint-name character,
// so BatchMagic can never collide with a non-batch frame's first byte. A
// receiving transport splits batch frames back into individual Packets
// before delivery, so everything above the transport still sees one protocol
// payload per Packet.
const BatchMagic = 0xBF

// batchHeaderSize is the fixed prefix of a batch frame (magic + count).
const batchHeaderSize = 1 + 4

// MaxBatchPayloads bounds the payload count of one batch frame; a malformed
// count field cannot trigger a huge allocation or iteration.
const MaxBatchPayloads = 1 << 16

// Batch framing errors.
var (
	ErrNotBatch     = fmt.Errorf("transport: not a batch frame")
	ErrCorruptBatch = fmt.Errorf("transport: corrupt batch frame")
)

// IsBatch reports whether frame is a coalesced batch frame.
func IsBatch(frame []byte) bool {
	return len(frame) >= batchHeaderSize && frame[0] == BatchMagic
}

// BatchSize returns the encoded size of a batch frame holding payloads of
// the given total byte length and count.
func BatchSize(count, totalBytes int) int {
	return batchHeaderSize + 4*count + totalBytes
}

// AppendBatch appends the batch-frame encoding of payloads to dst and
// returns the result.
func AppendBatch(dst []byte, payloads [][]byte) []byte {
	dst = append(dst, BatchMagic)
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(len(payloads)))
	dst = append(dst, cnt[:]...)
	for _, p := range payloads {
		var ln [4]byte
		binary.BigEndian.PutUint32(ln[:], uint32(len(p)))
		dst = append(dst, ln[:]...)
		dst = append(dst, p...)
	}
	return dst
}

// SplitBatch decodes a batch frame, invoking fn once per payload in order.
// Payloads are subslices of frame (no copy); callers that retain them beyond
// frame's lifetime must copy. Truncated or trailing-garbage frames return
// ErrCorruptBatch; a non-batch frame returns ErrNotBatch.
func SplitBatch(frame []byte, fn func(payload []byte)) error {
	if !IsBatch(frame) {
		return ErrNotBatch
	}
	count := binary.BigEndian.Uint32(frame[1:batchHeaderSize])
	if count > MaxBatchPayloads {
		return fmt.Errorf("%w: %d payloads", ErrCorruptBatch, count)
	}
	off := batchHeaderSize
	for i := uint32(0); i < count; i++ {
		if off+4 > len(frame) {
			return fmt.Errorf("%w: truncated length %d/%d", ErrCorruptBatch, i, count)
		}
		n := int(binary.BigEndian.Uint32(frame[off : off+4]))
		off += 4
		if n > MaxFrame || off+n > len(frame) {
			return fmt.Errorf("%w: truncated payload %d/%d", ErrCorruptBatch, i, count)
		}
		fn(frame[off : off+n])
		off += n
	}
	if off != len(frame) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptBatch, len(frame)-off)
	}
	return nil
}
