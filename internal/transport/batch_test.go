package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func collect(t *testing.T, frame []byte) [][]byte {
	t.Helper()
	var out [][]byte
	if err := SplitBatch(frame, func(p []byte) {
		out = append(out, append([]byte(nil), p...))
	}); err != nil {
		t.Fatalf("SplitBatch: %v", err)
	}
	return out
}

func TestBatchRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("solo")},
		{[]byte("a"), []byte("bc"), []byte("def")},
		{[]byte{}, []byte("x"), []byte{}}, // empty payloads survive
		{bytes.Repeat([]byte{0x7f}, 1 << 12), {0x01}},
	}
	for i, payloads := range cases {
		total := 0
		for _, p := range payloads {
			total += len(p)
		}
		frame := AppendBatch(nil, payloads)
		if got, want := len(frame), BatchSize(len(payloads), total); got != want {
			t.Errorf("case %d: frame is %d bytes, BatchSize says %d", i, got, want)
		}
		if !IsBatch(frame) {
			t.Errorf("case %d: encoded batch not recognised by IsBatch", i)
		}
		got := collect(t, frame)
		if len(got) != len(payloads) {
			t.Fatalf("case %d: split %d payloads, want %d", i, len(got), len(payloads))
		}
		for j := range payloads {
			if !bytes.Equal(got[j], payloads[j]) {
				t.Errorf("case %d payload %d: got %q, want %q", i, j, got[j], payloads[j])
			}
		}
	}
}

// TestIsBatchRejectsProtocolFrames pins the magic-byte separation: protocol
// payloads start with a small message-type byte and handshake frames with a
// printable name character, so neither can be mistaken for a batch frame.
func TestIsBatchRejectsProtocolFrames(t *testing.T) {
	for b := byte(0); b < 0x80; b++ {
		frame := []byte{b, 0, 0, 0, 1, 0xff}
		if IsBatch(frame) {
			t.Fatalf("frame with first byte %#x classified as batch", b)
		}
	}
	if IsBatch([]byte{BatchMagic}) {
		t.Error("frame shorter than a batch header classified as batch")
	}
	if !IsBatch([]byte{BatchMagic, 0, 0, 0, 0}) {
		t.Error("minimal empty batch not recognised")
	}
}

func TestSplitBatchCorrupt(t *testing.T) {
	valid := AppendBatch(nil, [][]byte{[]byte("ab"), []byte("cde")})
	nop := func([]byte) {}

	if err := SplitBatch([]byte("not a batch"), nop); !errors.Is(err, ErrNotBatch) {
		t.Errorf("non-batch frame: %v, want ErrNotBatch", err)
	}

	// Every strict prefix of a valid batch frame must be rejected.
	for n := batchHeaderSize; n < len(valid); n++ {
		err := SplitBatch(valid[:n], nop)
		if !errors.Is(err, ErrCorruptBatch) {
			t.Errorf("prefix of %d bytes: %v, want ErrCorruptBatch", n, err)
		}
	}

	// Trailing garbage after the last payload.
	if err := SplitBatch(append(append([]byte(nil), valid...), 0xcc), nop); !errors.Is(err, ErrCorruptBatch) {
		t.Errorf("trailing byte: %v, want ErrCorruptBatch", err)
	}

	// An absurd payload count must fail fast, not allocate or spin.
	huge := []byte{BatchMagic, 0xff, 0xff, 0xff, 0xff}
	if err := SplitBatch(huge, nop); !errors.Is(err, ErrCorruptBatch) {
		t.Errorf("huge count: %v, want ErrCorruptBatch", err)
	}

	// A payload length beyond MaxFrame is corrupt even if the count is sane.
	bad := []byte{BatchMagic, 0, 0, 0, 1}
	var ln [4]byte
	binary.BigEndian.PutUint32(ln[:], uint32(MaxFrame+1))
	bad = append(bad, ln[:]...)
	if err := SplitBatch(bad, nop); !errors.Is(err, ErrCorruptBatch) {
		t.Errorf("oversized payload length: %v, want ErrCorruptBatch", err)
	}
}

// FuzzFrameBatch fuzzes the batch frame codec: SplitBatch must never panic,
// must only fail with its classified errors, and any frame it accepts must
// survive a split/join round trip byte-identically. Truncating an accepted
// frame must always be detected.
func FuzzFrameBatch(f *testing.F) {
	f.Add(AppendBatch(nil, nil))
	f.Add(AppendBatch(nil, [][]byte{[]byte("a"), []byte("bc")}))
	f.Add(AppendBatch(nil, [][]byte{{}, []byte("xyz"), {}}))
	f.Add([]byte{BatchMagic, 0, 0, 0, 2, 0, 0, 0, 1, 0x41})
	f.Add([]byte{BatchMagic, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("hello"))
	f.Fuzz(func(t *testing.T, frame []byte) {
		var payloads [][]byte
		total := 0
		err := SplitBatch(frame, func(p []byte) {
			payloads = append(payloads, append([]byte(nil), p...))
			total += len(p)
		})
		if err != nil {
			if !errors.Is(err, ErrNotBatch) && !errors.Is(err, ErrCorruptBatch) {
				t.Fatalf("unclassified SplitBatch error: %v", err)
			}
			return
		}
		re := AppendBatch(nil, payloads)
		if !bytes.Equal(re, frame) {
			t.Fatalf("split/join is not a fixed point: %x -> %x", frame, re)
		}
		if got := BatchSize(len(payloads), total); got != len(frame) {
			t.Fatalf("BatchSize %d for a %d-byte frame", got, len(frame))
		}
		// Any strict truncation of an accepted frame must be rejected.
		if err := SplitBatch(frame[:len(frame)-1], func([]byte) {}); err == nil {
			t.Fatal("truncated frame accepted")
		}
	})
}
