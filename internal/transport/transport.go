// Package transport abstracts the wire for the real-time runtime: an
// endpoint can send byte frames to named peers and receive frames tagged
// with the sender's claimed name. Authentication of the claim happens above,
// at the MAC layer — a transport only provides framing and delivery.
//
// Three implementations exist: memnet (in-process channels, used by examples
// and tests), tcpnet (length-prefixed frames over TCP, the deployment
// default per the paper), and udpnet (datagrams, the paper's lower-latency
// variant).
package transport

import "errors"

// Packet is one received frame.
type Packet struct {
	// From is the sender's claimed endpoint name.
	From string
	// Data is the frame payload.
	Data []byte
}

// Transport is one endpoint's connection to the cluster.
type Transport interface {
	// Send transmits data to the named peer. It may block briefly but must
	// not block indefinitely on a slow peer.
	Send(to string, data []byte) error
	// Packets returns the receive channel. It is closed when the transport
	// closes.
	Packets() <-chan Packet
	// Name returns this endpoint's name.
	Name() string
	// Close releases resources and closes the Packets channel.
	Close() error
}

// Errors shared by implementations.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrUnknownPeer = errors.New("transport: unknown peer")
	ErrFrameTooBig = errors.New("transport: frame exceeds limit")
)

// MaxFrame bounds a single frame; larger frames are rejected on both sides.
const MaxFrame = 16 << 20
