// Package transport abstracts the wire for the real-time runtime: an
// endpoint can send byte frames to named peers and receive frames tagged
// with the sender's claimed name. Authentication of the claim happens above,
// at the MAC layer — a transport only provides framing and delivery.
//
// Three implementations exist: memnet (in-process channels, used by examples
// and tests), tcpnet (length-prefixed frames over TCP, the deployment
// default per the paper), and udpnet (datagrams, the paper's lower-latency
// variant).
package transport

import (
	"errors"
	"time"

	"rbft/internal/obs"
)

// Packet is one received frame.
type Packet struct {
	// From is the sender's claimed endpoint name.
	From string
	// Data is the frame payload.
	Data []byte
}

// Transport is one endpoint's connection to the cluster.
type Transport interface {
	// Send transmits data to the named peer. It may block briefly but must
	// not block indefinitely on a slow peer.
	Send(to string, data []byte) error
	// Packets returns the receive channel. It is closed when the transport
	// closes.
	Packets() <-chan Packet
	// Name returns this endpoint's name.
	Name() string
	// Close releases resources and closes the Packets channel.
	Close() error
}

// BatchSender is implemented by transports that can flush several payloads
// to one peer as a single coalesced wire frame (one length-prefixed batch
// frame on TCP, one datagram on UDP), amortising the per-frame overhead.
// The receiving side splits batch frames back into individual Packets, so
// SendBatch is semantically equivalent to calling Send once per payload —
// only cheaper. Implementations fall back to per-payload sends when a batch
// cannot be framed (e.g. it exceeds a datagram).
type BatchSender interface {
	// SendBatch transmits the payloads to the named peer, coalescing them
	// into as few wire frames as the transport allows.
	SendBatch(to string, payloads [][]byte) error
}

// PeerCloser is implemented by transports that can enforce a NIC closure:
// frames received from the named peer are discarded until the deadline
// passes. The RBFT flood defence (core.Output.NICCloses) is enforced here,
// at the receive path, so a flooding peer cannot even cost protocol-level
// processing.
type PeerCloser interface {
	// ClosePeer discards inbound frames from peer until the given time.
	ClosePeer(peer string, until time.Time)
}

// Metrics bundles the per-endpoint transport counters. The zero value is
// valid and counts nothing (obs counters are nil-safe), so endpoints carry
// it unconditionally and instrumentation is pay-for-use.
type Metrics struct {
	// Dropped counts inbound frames discarded: receiver overflow, frames
	// from a closed peer, or fault-injection rules.
	Dropped *obs.Counter
	// PeerClosures counts ClosePeer invocations (flood defence activations).
	PeerClosures *obs.Counter
	// BytesIn and BytesOut count payload bytes received and sent.
	BytesIn  *obs.Counter
	BytesOut *obs.Counter
	// BatchesSent counts coalesced batch frames flushed, and
	// FramesCoalesced the payloads they carried (FramesCoalesced/BatchesSent
	// is the mean coalescing factor).
	BatchesSent     *obs.Counter
	FramesCoalesced *obs.Counter
	// BytesSaved counts wire bytes avoided by coalescing: the per-frame
	// overhead (headers, prefixes) the payloads would have paid as
	// individual frames minus what the batch frame actually paid.
	BytesSaved *obs.Counter
}

// NewMetrics resolves the transport counter set from reg, labelled with the
// transport kind ("mem", "tcp", "udp"). A nil registry yields the zero
// Metrics, which counts nothing.
func NewMetrics(reg *obs.Registry, kind string) Metrics {
	return Metrics{
		Dropped:         reg.Counter(obs.LabeledName("rbft_transport_dropped_total", "transport", kind)),
		PeerClosures:    reg.Counter(obs.LabeledName("rbft_transport_peer_closures_total", "transport", kind)),
		BytesIn:         reg.Counter(obs.LabeledName("rbft_transport_bytes_in_total", "transport", kind)),
		BytesOut:        reg.Counter(obs.LabeledName("rbft_transport_bytes_out_total", "transport", kind)),
		BatchesSent:     reg.Counter(obs.LabeledName("rbft_transport_batches_sent_total", "transport", kind)),
		FramesCoalesced: reg.Counter(obs.LabeledName("rbft_transport_frames_coalesced_total", "transport", kind)),
		BytesSaved:      reg.Counter(obs.LabeledName("rbft_transport_bytes_saved_total", "transport", kind)),
	}
}

// Errors shared by implementations.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrUnknownPeer = errors.New("transport: unknown peer")
	ErrFrameTooBig = errors.New("transport: frame exceeds limit")
)

// MaxFrame bounds a single frame; larger frames are rejected on both sides.
const MaxFrame = 16 << 20

// PacketOverheadEstimate approximates the wire overhead of carrying one
// payload as its own physical frame (Ethernet + IP + TCP/UDP headers, ~66
// bytes on an Ethernet TCP path). Transports use it to account BytesSaved
// when n payloads coalesce into one frame: (n-1) * PacketOverheadEstimate.
const PacketOverheadEstimate = 66
