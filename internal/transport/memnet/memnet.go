// Package memnet is an in-process transport: endpoints exchange frames over
// channels inside one OS process. Used by examples and integration tests
// that want a full RBFT cluster without sockets, and by fault-injection
// tests (it supports per-link drop rules).
package memnet

import (
	"fmt"
	"sync"
	"time"

	"rbft/internal/transport"
)

// Network is the in-process hub connecting endpoints.
type Network struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint // guarded by mu
	// dropRule, when set, drops the frame if it returns true.
	dropRule func(from, to string, data []byte) bool // guarded by mu
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{endpoints: make(map[string]*Endpoint)}
}

// SetDropRule installs a frame-dropping predicate (fault injection). Pass
// nil to clear.
func (n *Network) SetDropRule(rule func(from, to string, data []byte) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropRule = rule
}

// Endpoint creates (or returns) the endpoint with the given name.
func (n *Network) Endpoint(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[name]; ok {
		return ep
	}
	ep := &Endpoint{
		net:  n,
		name: name,
		// A deep buffer so a slow receiver does not deadlock senders that
		// hold the node lock; overflow drops (the protocol tolerates loss).
		recv: make(chan transport.Packet, 4096),
	}
	n.endpoints[name] = ep
	return ep
}

// Endpoint is one in-process transport endpoint.
type Endpoint struct {
	net    *Network
	name   string
	recv   chan transport.Packet
	closed sync.Once
	done   bool                 // guarded by mu
	barred map[string]time.Time // guarded by mu; peer -> drop-inbound-until deadline
	// metrics is set once before the endpoint carries traffic; the counters
	// themselves are internally atomic.
	metrics transport.Metrics
	mu      sync.Mutex
}

var (
	_ transport.Transport   = (*Endpoint)(nil)
	_ transport.PeerCloser  = (*Endpoint)(nil)
	_ transport.BatchSender = (*Endpoint)(nil)
)

// SetMetrics installs transport counters. Call before the endpoint carries
// traffic.
func (e *Endpoint) SetMetrics(m transport.Metrics) { e.metrics = m }

// ClosePeer implements transport.PeerCloser: inbound frames from peer are
// discarded until the deadline (RBFT flood defence).
func (e *Endpoint) ClosePeer(peer string, until time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.barred == nil {
		e.barred = make(map[string]time.Time)
	}
	e.barred[peer] = until
	e.metrics.PeerClosures.Inc()
}

// Name implements transport.Transport.
func (e *Endpoint) Name() string { return e.name }

// Packets implements transport.Transport.
func (e *Endpoint) Packets() <-chan transport.Packet { return e.recv }

// Send implements transport.Transport.
func (e *Endpoint) Send(to string, data []byte) error {
	if len(data) > transport.MaxFrame {
		return transport.ErrFrameTooBig
	}
	e.net.mu.RLock()
	dst, ok := e.net.endpoints[to]
	drop := e.net.dropRule
	e.net.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", transport.ErrUnknownPeer, to)
	}
	if drop != nil && drop(e.name, to, data) {
		dst.metrics.Dropped.Inc()
		return nil // silently dropped (fault injection)
	}
	e.metrics.BytesOut.Add(uint64(len(data)))
	buf := make([]byte, len(data))
	copy(buf, data)
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.done {
		return transport.ErrClosed
	}
	if until, ok := dst.barred[e.name]; ok {
		if time.Now().Before(until) {
			dst.metrics.Dropped.Inc()
			return nil // receiver's NIC is closed toward us
		}
		delete(dst.barred, e.name)
	}
	select {
	case dst.recv <- transport.Packet{From: e.name, Data: buf}:
		dst.metrics.BytesIn.Add(uint64(len(buf)))
	default:
		// Receiver overloaded: drop, like a saturated NIC.
		dst.metrics.Dropped.Inc()
	}
	return nil
}

// SendBatch implements transport.BatchSender. The payloads travel as one
// coalesced batch frame — fault-injection drop rules see the whole frame, as
// they would on a real wire — and the receiving side splits it back into
// individual Packets before enqueueing.
func (e *Endpoint) SendBatch(to string, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	if len(payloads) == 1 {
		return e.Send(to, payloads[0])
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	size := transport.BatchSize(len(payloads), total)
	if size > transport.MaxFrame {
		for _, p := range payloads {
			if err := e.Send(to, p); err != nil {
				return err
			}
		}
		return nil
	}
	e.net.mu.RLock()
	dst, ok := e.net.endpoints[to]
	drop := e.net.dropRule
	e.net.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", transport.ErrUnknownPeer, to)
	}
	frame := transport.AppendBatch(make([]byte, 0, size), payloads)
	if drop != nil && drop(e.name, to, frame) {
		dst.metrics.Dropped.Inc()
		return nil // silently dropped (fault injection)
	}
	e.metrics.BytesOut.Add(uint64(total))
	e.metrics.BatchesSent.Inc()
	e.metrics.FramesCoalesced.Add(uint64(len(payloads)))
	e.metrics.BytesSaved.Add(uint64((len(payloads) - 1) * transport.PacketOverheadEstimate))
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.done {
		return transport.ErrClosed
	}
	if until, ok := dst.barred[e.name]; ok {
		if time.Now().Before(until) {
			dst.metrics.Dropped.Inc()
			return nil // receiver's NIC is closed toward us
		}
		delete(dst.barred, e.name)
	}
	return transport.SplitBatch(frame, func(p []byte) {
		buf := make([]byte, len(p))
		copy(buf, p)
		select {
		case dst.recv <- transport.Packet{From: e.name, Data: buf}:
			dst.metrics.BytesIn.Add(uint64(len(buf)))
		default:
			// Receiver overloaded: drop, like a saturated NIC.
			dst.metrics.Dropped.Inc()
		}
	})
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.closed.Do(func() {
		e.mu.Lock()
		e.done = true
		close(e.recv)
		e.mu.Unlock()
		e.net.mu.Lock()
		delete(e.net.endpoints, e.name)
		e.net.mu.Unlock()
	})
	return nil
}
