package transport_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rbft/internal/transport"
	"rbft/internal/transport/memnet"
	"rbft/internal/transport/tcpnet"
	"rbft/internal/transport/udpnet"
)

// harness builds a pair of connected endpoints for each implementation.
type pairFn func(t *testing.T) (a, b transport.Transport)

func memPair(t *testing.T) (transport.Transport, transport.Transport) {
	t.Helper()
	net := memnet.NewNetwork()
	return net.Endpoint("a"), net.Endpoint("b")
}

func tcpPair(t *testing.T) (transport.Transport, transport.Transport) {
	t.Helper()
	a, err := tcpnet.Listen("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tcpnet.Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())
	return a, b
}

func udpPair(t *testing.T) (transport.Transport, transport.Transport) {
	t.Helper()
	a, err := udpnet.Listen("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := udpnet.Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("a", a.Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func impls() map[string]pairFn {
	return map[string]pairFn{
		"memnet": memPair,
		"tcpnet": tcpPair,
		"udpnet": udpPair,
	}
}

func recvOne(t *testing.T, tr transport.Transport) transport.Packet {
	t.Helper()
	select {
	case p, ok := <-tr.Packets():
		if !ok {
			t.Fatal("packets channel closed")
		}
		return p
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for packet")
	}
	return transport.Packet{}
}

func TestSendReceive(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			want := []byte("hello rbft")
			if err := a.Send("b", want); err != nil {
				t.Fatal(err)
			}
			p := recvOne(t, b)
			if p.From != "a" || !bytes.Equal(p.Data, want) {
				t.Fatalf("got %q from %q", p.Data, p.From)
			}
			// And the reverse direction.
			if err := b.Send("a", []byte("pong")); err != nil {
				t.Fatal(err)
			}
			p = recvOne(t, a)
			if p.From != "b" || string(p.Data) != "pong" {
				t.Fatalf("got %q from %q", p.Data, p.From)
			}
		})
	}
}

func TestManyFramesInOrderTCP(t *testing.T) {
	// TCP guarantees FIFO; memnet does too.
	for _, name := range []string{"memnet", "tcpnet"} {
		mk := impls()[name]
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			const n = 500
			for i := 0; i < n; i++ {
				if err := a.Send("b", []byte(fmt.Sprintf("m%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				p := recvOne(t, b)
				if want := fmt.Sprintf("m%04d", i); string(p.Data) != want {
					t.Fatalf("frame %d: got %q, want %q", i, p.Data, want)
				}
			}
		})
	}
}

func TestUnknownPeer(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			if err := a.Send("nobody", []byte("x")); !errors.Is(err, transport.ErrUnknownPeer) {
				t.Fatalf("Send to unknown peer: %v, want ErrUnknownPeer", err)
			}
		})
	}
}

func TestCloseIdempotentAndChannelCloses(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer b.Close()
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case _, ok := <-a.Packets():
				if ok {
					t.Fatal("expected closed channel")
				}
			case <-time.After(time.Second):
				t.Fatal("packets channel not closed")
			}
		})
	}
}

func TestLargeFrameTCP(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	big := bytes.Repeat([]byte{0xab}, 1<<20)
	if err := a.Send("b", big); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if !bytes.Equal(p.Data, big) {
		t.Fatal("1MB frame corrupted")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	huge := make([]byte, transport.MaxFrame+1)
	if err := a.Send("b", huge); !errors.Is(err, transport.ErrFrameTooBig) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooBig", err)
	}
	// UDP has a much smaller datagram bound.
	ua, ub := udpPair(t)
	defer ua.Close()
	defer ub.Close()
	if err := ua.Send("b", make([]byte, udpnet.MaxDatagram)); !errors.Is(err, transport.ErrFrameTooBig) {
		t.Fatalf("oversized datagram: %v, want ErrFrameTooBig", err)
	}
}

func TestMemnetDropRule(t *testing.T) {
	net := memnet.NewNetwork()
	a, b := net.Endpoint("a"), net.Endpoint("b")
	defer a.Close()
	defer b.Close()
	net.SetDropRule(func(from, to string, data []byte) bool { return true })
	if err := a.Send("b", []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	net.SetDropRule(nil)
	if err := a.Send("b", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if string(p.Data) != "kept" {
		t.Fatalf("got %q, want the undropped frame", p.Data)
	}
}

// TestSendBatchDeliversIndividually checks the BatchSender contract on every
// transport: a coalesced batch arrives as one Packet per payload, in order,
// indistinguishable from individual sends.
func TestSendBatchDeliversIndividually(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			bs, ok := a.(transport.BatchSender)
			if !ok {
				t.Fatalf("%s does not implement transport.BatchSender", name)
			}
			want := [][]byte{[]byte("alpha"), []byte("beta"), {0x01}, []byte("gamma")}
			if err := bs.SendBatch("b", want); err != nil {
				t.Fatal(err)
			}
			for i, w := range want {
				p := recvOne(t, b)
				if p.From != "a" || !bytes.Equal(p.Data, w) {
					t.Fatalf("payload %d: got %q from %q, want %q from a", i, p.Data, p.From, w)
				}
			}
			// Degenerate batches: empty is a no-op, singleton a plain send.
			if err := bs.SendBatch("b", nil); err != nil {
				t.Fatal(err)
			}
			if err := bs.SendBatch("b", [][]byte{[]byte("solo")}); err != nil {
				t.Fatal(err)
			}
			if p := recvOne(t, b); string(p.Data) != "solo" {
				t.Fatalf("got %q, want the singleton payload", p.Data)
			}
		})
	}
}

// TestSendBatchOversizedFallsBack checks that a batch too large for one wire
// frame degrades to per-payload sends instead of failing.
func TestSendBatchOversizedFallsBack(t *testing.T) {
	a, b := udpPair(t)
	defer a.Close()
	defer b.Close()
	// Three payloads, each datagram-sized on its own terms, together beyond
	// one datagram.
	payloads := [][]byte{
		bytes.Repeat([]byte{1}, 30*1024),
		bytes.Repeat([]byte{2}, 30*1024),
		bytes.Repeat([]byte{3}, 30*1024),
	}
	if err := a.(transport.BatchSender).SendBatch("b", payloads); err != nil {
		t.Fatal(err)
	}
	seen := map[byte]int{}
	for i := 0; i < len(payloads); i++ {
		p := recvOne(t, b)
		seen[p.Data[0]] = len(p.Data)
	}
	for _, payload := range payloads {
		if seen[payload[0]] != len(payload) {
			t.Fatalf("payload %d missing or truncated: %v", payload[0], seen)
		}
	}
}

// TestTCPWriteDeadlineUnwedgesSender pins the robustness fix for a wedged
// peer: a connection whose remote end stops reading must not block the
// sender forever under the connection mutex — the write deadline trips, the
// connection is torn down, and Send returns an error in bounded time.
func TestTCPWriteDeadlineUnwedgesSender(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Accept connections and read only the handshake, never the frames, so
	// the kernel buffers fill and writes stall. Keep conns referenced so
	// finalizers cannot close them behind our back.
	var mu sync.Mutex
	var conns []net.Conn
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()

	a, err := tcpnet.Listen("a", "127.0.0.1:0", map[string]string{"wedged": ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetWriteTimeout(200 * time.Millisecond)

	// Pour 64 MB at the non-reading peer. Without write deadlines the kernel
	// buffers fill and Send blocks forever under the connection mutex; with
	// them every Send returns in bounded time (succeeding, or erroring after
	// a redial) and wedged connections are torn down and redialled.
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload := bytes.Repeat([]byte{0xee}, 1<<20)
		for i := 0; i < 64; i++ {
			_ = a.Send("wedged", payload) // errors are fine; blocking is not
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Send wedged on a non-reading peer: write deadline did not unblock it")
	}
	mu.Lock()
	redials := len(conns)
	mu.Unlock()
	if redials < 2 {
		t.Fatalf("sender never tore down the wedged connection (dialled %d times, want >= 2)", redials)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := tcpnet.Listen("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tcpnet.Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.AddPeer("b", addrB)
	if err := a.Send("b", []byte("one")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	// Restart b on the same address.
	b.Close()
	b2, err := tcpnet.Listen("b", addrB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	// The cached connection is stale; Send must recover (first send may be
	// lost in the reset window, so try a few times).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send("b", []byte("two")); err == nil {
			select {
			case p := <-b2.Packets():
				if string(p.Data) == "two" {
					return
				}
			case <-time.After(200 * time.Millisecond):
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("never recovered after peer restart")
		}
	}
}
