package transport_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"rbft/internal/transport"
	"rbft/internal/transport/memnet"
	"rbft/internal/transport/tcpnet"
	"rbft/internal/transport/udpnet"
)

// harness builds a pair of connected endpoints for each implementation.
type pairFn func(t *testing.T) (a, b transport.Transport)

func memPair(t *testing.T) (transport.Transport, transport.Transport) {
	t.Helper()
	net := memnet.NewNetwork()
	return net.Endpoint("a"), net.Endpoint("b")
}

func tcpPair(t *testing.T) (transport.Transport, transport.Transport) {
	t.Helper()
	a, err := tcpnet.Listen("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tcpnet.Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())
	return a, b
}

func udpPair(t *testing.T) (transport.Transport, transport.Transport) {
	t.Helper()
	a, err := udpnet.Listen("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := udpnet.Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("a", a.Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func impls() map[string]pairFn {
	return map[string]pairFn{
		"memnet": memPair,
		"tcpnet": tcpPair,
		"udpnet": udpPair,
	}
}

func recvOne(t *testing.T, tr transport.Transport) transport.Packet {
	t.Helper()
	select {
	case p, ok := <-tr.Packets():
		if !ok {
			t.Fatal("packets channel closed")
		}
		return p
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for packet")
	}
	return transport.Packet{}
}

func TestSendReceive(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			want := []byte("hello rbft")
			if err := a.Send("b", want); err != nil {
				t.Fatal(err)
			}
			p := recvOne(t, b)
			if p.From != "a" || !bytes.Equal(p.Data, want) {
				t.Fatalf("got %q from %q", p.Data, p.From)
			}
			// And the reverse direction.
			if err := b.Send("a", []byte("pong")); err != nil {
				t.Fatal(err)
			}
			p = recvOne(t, a)
			if p.From != "b" || string(p.Data) != "pong" {
				t.Fatalf("got %q from %q", p.Data, p.From)
			}
		})
	}
}

func TestManyFramesInOrderTCP(t *testing.T) {
	// TCP guarantees FIFO; memnet does too.
	for _, name := range []string{"memnet", "tcpnet"} {
		mk := impls()[name]
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			const n = 500
			for i := 0; i < n; i++ {
				if err := a.Send("b", []byte(fmt.Sprintf("m%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				p := recvOne(t, b)
				if want := fmt.Sprintf("m%04d", i); string(p.Data) != want {
					t.Fatalf("frame %d: got %q, want %q", i, p.Data, want)
				}
			}
		})
	}
}

func TestUnknownPeer(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			if err := a.Send("nobody", []byte("x")); !errors.Is(err, transport.ErrUnknownPeer) {
				t.Fatalf("Send to unknown peer: %v, want ErrUnknownPeer", err)
			}
		})
	}
}

func TestCloseIdempotentAndChannelCloses(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer b.Close()
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case _, ok := <-a.Packets():
				if ok {
					t.Fatal("expected closed channel")
				}
			case <-time.After(time.Second):
				t.Fatal("packets channel not closed")
			}
		})
	}
}

func TestLargeFrameTCP(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	big := bytes.Repeat([]byte{0xab}, 1<<20)
	if err := a.Send("b", big); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if !bytes.Equal(p.Data, big) {
		t.Fatal("1MB frame corrupted")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	huge := make([]byte, transport.MaxFrame+1)
	if err := a.Send("b", huge); !errors.Is(err, transport.ErrFrameTooBig) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooBig", err)
	}
	// UDP has a much smaller datagram bound.
	ua, ub := udpPair(t)
	defer ua.Close()
	defer ub.Close()
	if err := ua.Send("b", make([]byte, udpnet.MaxDatagram)); !errors.Is(err, transport.ErrFrameTooBig) {
		t.Fatalf("oversized datagram: %v, want ErrFrameTooBig", err)
	}
}

func TestMemnetDropRule(t *testing.T) {
	net := memnet.NewNetwork()
	a, b := net.Endpoint("a"), net.Endpoint("b")
	defer a.Close()
	defer b.Close()
	net.SetDropRule(func(from, to string, data []byte) bool { return true })
	if err := a.Send("b", []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	net.SetDropRule(nil)
	if err := a.Send("b", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if string(p.Data) != "kept" {
		t.Fatalf("got %q, want the undropped frame", p.Data)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := tcpnet.Listen("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tcpnet.Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.AddPeer("b", addrB)
	if err := a.Send("b", []byte("one")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	// Restart b on the same address.
	b.Close()
	b2, err := tcpnet.Listen("b", addrB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	// The cached connection is stale; Send must recover (first send may be
	// lost in the reset window, so try a few times).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send("b", []byte("two")); err == nil {
			select {
			case p := <-b2.Packets():
				if string(p.Data) == "two" {
					return
				}
			case <-time.After(200 * time.Millisecond):
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("never recovered after peer restart")
		}
	}
}
