package crypto

import (
	"sync"

	"rbft/internal/types"
)

// pairRef identifies one (a, b) principal pair in normalised order (a <= b).
type pairRef struct{ a, b principal }

// keyCache memoises derived pairwise MAC keys. Deriving a pair key costs one
// HMAC invocation; on the ingress hot path every MAC verification would pay
// it again, so the preverify pipeline caches the derived keys per ring. The
// cache is concurrency-safe because verifier worker goroutines share one
// ring.
type keyCache struct {
	mu   sync.RWMutex
	keys map[pairRef][]byte
}

func (c *keyCache) get(ref pairRef) []byte {
	c.mu.RLock()
	k := c.keys[ref]
	c.mu.RUnlock()
	return k
}

func (c *keyCache) put(ref pairRef, k []byte) {
	c.mu.Lock()
	if c.keys == nil {
		c.keys = make(map[pairRef][]byte)
	}
	c.keys[ref] = k
	c.mu.Unlock()
}

// pairKeyCached returns the symmetric key for the (a, b) pair, deriving and
// caching it on first use. Arguments may be passed in either order.
func (r *KeyRing) pairKeyCached(a, b principal) []byte {
	if a > b {
		a, b = b, a
	}
	ref := pairRef{a, b}
	if k := r.cache.get(ref); k != nil {
		return k
	}
	k := pairKey(r.secret, a, b)
	r.cache.put(ref, k)
	return k
}

// WarmPairKeys derives and caches this ring's pairwise keys with the n nodes
// and maxClients clients of the cluster, so the ingress pipeline never pays
// key derivation under load. Safe to call concurrently and more than once.
func (r *KeyRing) WarmPairKeys(n, maxClients int) {
	if r.fast {
		return // fast mode derives nothing per pair
	}
	for i := 0; i < n; i++ {
		r.pairKeyCached(r.self, nodePrincipal(types.NodeID(i)))
	}
	for i := 0; i < maxClients; i++ {
		r.pairKeyCached(r.self, clientPrincipal(types.ClientID(i)))
	}
}

// SigJob is one node-signature verification in a batch.
type SigJob struct {
	Node types.NodeID // claimed signer
	Data []byte       // signed bytes
	Sig  []byte
}

// VerifyNodeSignatureBatch verifies a batch of independent node signatures
// and returns the first failure (nil if all verify). It is the batch entry
// point the preverify stage uses for aggregate messages (a NEW-VIEW embeds
// 2f+1 signed VIEW-CHANGEs); verifying them together keeps the whole batch
// on one verifier core and leaves room for an amortised multi-signature
// verification backend without touching callers.
func (r *KeyRing) VerifyNodeSignatureBatch(jobs []SigJob) error {
	for i := range jobs {
		if err := r.VerifyNodeSignature(jobs[i].Node, jobs[i].Data, jobs[i].Sig); err != nil {
			return err
		}
	}
	return nil
}
