// Package crypto provides the authentication primitives RBFT uses on the
// wire: pairwise HMAC-SHA256 message authentication codes, MAC authenticators
// (one MAC per receiving node), Ed25519 request signatures, and SHA-256
// digests.
//
// The paper's layering is preserved: client requests carry a signature (for
// non-repudiation, because requests are forwarded node-to-node during the
// PROPAGATE phase) wrapped in a MAC authenticator (so that a flood of bogus
// requests is rejected at MAC cost, an order of magnitude cheaper than
// signature verification).
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"rbft/internal/types"
)

// MACSize is the byte length of a single truncated HMAC-SHA256 tag.
const MACSize = 16

// MAC is a single pairwise authentication tag.
type MAC [MACSize]byte

// Errors returned by verification.
var (
	ErrBadMAC       = errors.New("crypto: MAC verification failed")
	ErrBadSignature = errors.New("crypto: signature verification failed")
	ErrUnknownPeer  = errors.New("crypto: no key material for peer")
)

// Digest hashes a payload with SHA-256.
func Digest(data []byte) types.Digest {
	return sha256.Sum256(data)
}

// principal is an internal identity in the MAC key space. Nodes and clients
// live in disjoint halves.
type principal int64

func nodePrincipal(n types.NodeID) principal     { return principal(n) }
func clientPrincipal(c types.ClientID) principal { return principal(1<<32) + principal(c) }

// KeyRing holds one principal's secret material: its Ed25519 signing key and
// the symmetric keys it shares with every other principal. In a deployment
// these would come from a PKI plus a key-exchange protocol; here they are
// derived deterministically from a cluster secret, which models the same
// trust assumptions (faulty principals know only their own keys).
type KeyRing struct {
	self    principal
	signKey ed25519.PrivateKey
	store   *KeyStore
	secret  []byte
	fast    bool
	// cache memoises derived pair keys (see batch.go); verifier goroutines
	// share the ring, so the cache carries its own lock.
	cache keyCache
}

// KeyStore derives key rings for a cluster from a master secret. It is the
// test/simulation stand-in for a key distribution infrastructure.
//
// Public keys are derived lazily: a million-client front door must not pay a
// million Ed25519 key derivations at startup for clients that may never
// appear. Whether a principal is known at all is a pure range check against
// the configured cluster size; the actual public key is derived (and cached)
// only when a slow-path signature verification needs it. All rings of one
// store share the cache, which carries its own lock because verifier worker
// goroutines verify concurrently.
type KeyStore struct {
	secret  []byte
	nodes   int
	clients int
	fast    bool

	mu   sync.Mutex
	pubs map[principal]ed25519.PublicKey
}

// known reports whether a principal is inside the cluster's configured node
// and client ranges — the lazy equivalent of the old eager map's membership.
func (ks *KeyStore) known(p principal) bool {
	if p >= clientPrincipal(0) {
		return p < clientPrincipal(0)+principal(ks.clients)
	}
	return p >= 0 && p < principal(ks.nodes)
}

// pub returns the public key for a known principal, deriving and caching it
// on first use.
func (ks *KeyStore) pub(p principal) ed25519.PublicKey {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if k, ok := ks.pubs[p]; ok {
		return k
	}
	k := deriveSignKey(ks.secret, p).Public().(ed25519.PublicKey)
	if ks.pubs == nil {
		ks.pubs = make(map[principal]ed25519.PublicKey)
	}
	ks.pubs[p] = k
	return k
}

// NewInsecureFastKeyStore creates a key store whose MAC and signature
// operations are cheap non-cryptographic checksums. FOR SIMULATION ONLY:
// the discrete-event simulator charges modelled crypto costs in virtual
// time, so spending real CPU on Ed25519 would only slow the experiments
// down; integrity is still checked (corrupted authenticators fail), but
// nothing here resists a real adversary.
func NewInsecureFastKeyStore(secret []byte, n, maxClients int) *KeyStore {
	ks := NewKeyStore(secret, n, maxClients)
	ks.fast = true
	return ks
}

// NewKeyStore creates a key store for a cluster of n nodes and up to
// maxClients clients, deriving all keys from secret.
func NewKeyStore(secret []byte, n, maxClients int) *KeyStore {
	return &KeyStore{
		secret:  append([]byte(nil), secret...),
		nodes:   n,
		clients: maxClients,
	}
}

// NodeRing returns the key ring for node n.
func (ks *KeyStore) NodeRing(n types.NodeID) *KeyRing {
	return ks.ring(nodePrincipal(n))
}

// ClientRing returns the key ring for client c.
func (ks *KeyStore) ClientRing(c types.ClientID) *KeyRing {
	return ks.ring(clientPrincipal(c))
}

func (ks *KeyStore) ring(self principal) *KeyRing {
	r := &KeyRing{
		self:   self,
		store:  ks,
		secret: ks.secret,
		fast:   ks.fast,
	}
	// Fast (simulation) mode never touches the Ed25519 key: skipping the
	// derivation keeps ring creation cheap enough to mint rings lazily for
	// millions of simulated clients.
	if !ks.fast {
		r.signKey = deriveSignKey(ks.secret, self)
	}
	return r
}

func deriveSignKey(secret []byte, p principal) ed25519.PrivateKey {
	h := hmac.New(sha256.New, secret)
	var buf [9]byte
	buf[0] = 's'
	binary.BigEndian.PutUint64(buf[1:], uint64(p))
	h.Write(buf[:])
	return ed25519.NewKeyFromSeed(h.Sum(nil))
}

// pairKey derives the symmetric key shared between two principals. The key is
// symmetric in its arguments so both ends derive the same key.
func pairKey(secret []byte, a, b principal) []byte {
	if a > b {
		a, b = b, a
	}
	h := hmac.New(sha256.New, secret)
	var buf [17]byte
	buf[0] = 'm'
	binary.BigEndian.PutUint64(buf[1:9], uint64(a))
	binary.BigEndian.PutUint64(buf[9:17], uint64(b))
	h.Write(buf[:])
	return h.Sum(nil)
}

func computeMAC(key, data []byte) MAC {
	h := hmac.New(sha256.New, key)
	h.Write(data)
	var tag MAC
	copy(tag[:], h.Sum(nil))
	return tag
}

// fastSum is the simulation-only body checksum: FNV-1a over the ring secret
// and the data. Computed once per message; per-principal tags mix it with
// the pair identity (see fastMix).
func fastSum(key, data []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	h.Write(data)
	return h.Sum64()
}

// fastMix derives a 16-byte tag from a body checksum and a pair/principal
// identity (splitmix64-style finalisers).
func fastMix(sum, extra uint64) [16]byte {
	x := sum ^ (extra * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	y := x ^ 0xD6E8FEB86659FD93
	y ^= y >> 32
	y *= 0xFF51AFD7ED558CCD
	y ^= y >> 29
	var tag [16]byte
	binary.BigEndian.PutUint64(tag[:8], x)
	binary.BigEndian.PutUint64(tag[8:], y)
	return tag
}

// fastTag combines fastSum and fastMix for one-shot callers.
func fastTag(key []byte, extra uint64, data []byte) [16]byte {
	return fastMix(fastSum(key, data), extra)
}

// pairMAC computes a MAC for the (a, b) principal pair.
func (r *KeyRing) pairMAC(a, b principal, data []byte) MAC {
	if r.fast {
		if a > b {
			a, b = b, a
		}
		return MAC(fastMix(fastSum(r.secret, data), uint64(a)<<20^uint64(b)))
	}
	return computeMAC(r.pairKeyCached(a, b), data)
}

// MACForNode authenticates data for a single receiving node.
func (r *KeyRing) MACForNode(to types.NodeID, data []byte) MAC {
	return r.pairMAC(r.self, nodePrincipal(to), data)
}

// MACForClient authenticates data for a single receiving client.
func (r *KeyRing) MACForClient(to types.ClientID, data []byte) MAC {
	return r.pairMAC(r.self, clientPrincipal(to), data)
}

// VerifyNodeMAC checks a tag allegedly produced by node from over data.
func (r *KeyRing) VerifyNodeMAC(from types.NodeID, data []byte, tag MAC) error {
	want := r.pairMAC(r.self, nodePrincipal(from), data)
	if !hmac.Equal(want[:], tag[:]) {
		return ErrBadMAC
	}
	return nil
}

// VerifyClientMAC checks a tag allegedly produced by client from over data.
func (r *KeyRing) VerifyClientMAC(from types.ClientID, data []byte, tag MAC) error {
	want := r.pairMAC(r.self, clientPrincipal(from), data)
	if !hmac.Equal(want[:], tag[:]) {
		return ErrBadMAC
	}
	return nil
}

// Authenticator is a MAC authenticator: an array with one MAC per node,
// indexed by NodeID. A sender computes it once; each receiver verifies only
// its own entry.
type Authenticator []MAC

// AuthenticatorForNodes builds a MAC authenticator over data covering the n
// nodes of the cluster. In fast (simulation) mode the body is checksummed
// once and mixed per entry.
func (r *KeyRing) AuthenticatorForNodes(n int, data []byte) Authenticator {
	auth := make(Authenticator, n)
	if r.fast {
		sum := fastSum(r.secret, data)
		for i := 0; i < n; i++ {
			a, b := r.self, nodePrincipal(types.NodeID(i))
			if a > b {
				a, b = b, a
			}
			auth[i] = MAC(fastMix(sum, uint64(a)<<20^uint64(b)))
		}
		return auth
	}
	for i := 0; i < n; i++ {
		auth[i] = r.MACForNode(types.NodeID(i), data)
	}
	return auth
}

// VerifyAuthenticatorEntry checks this ring's node entry of an authenticator
// produced by node from. self must be this ring's node identity.
func (r *KeyRing) VerifyAuthenticatorEntry(from types.NodeID, self types.NodeID, data []byte, auth Authenticator) error {
	if int(self) >= len(auth) || self < 0 {
		return fmt.Errorf("%w: authenticator has %d entries, want entry %d", ErrBadMAC, len(auth), self)
	}
	return r.VerifyNodeMAC(from, data, auth[self])
}

// VerifyClientAuthenticatorEntry checks this ring's entry of an authenticator
// produced by client from.
func (r *KeyRing) VerifyClientAuthenticatorEntry(from types.ClientID, self types.NodeID, data []byte, auth Authenticator) error {
	if int(self) >= len(auth) || self < 0 {
		return fmt.Errorf("%w: authenticator has %d entries, want entry %d", ErrBadMAC, len(auth), self)
	}
	return r.VerifyClientMAC(from, data, auth[self])
}

// Sign produces an Ed25519 signature over data (or the simulation-only
// checksum in fast mode).
func (r *KeyRing) Sign(data []byte) []byte {
	if r.fast {
		tag := fastTag(r.secret, uint64(r.self), data)
		sig := make([]byte, ed25519.SignatureSize)
		copy(sig, tag[:])
		return sig
	}
	return ed25519.Sign(r.signKey, data)
}

// VerifyNodeSignature checks a signature allegedly produced by node from.
func (r *KeyRing) VerifyNodeSignature(from types.NodeID, data, sig []byte) error {
	return r.verifySig(nodePrincipal(from), data, sig)
}

// VerifyClientSignature checks a signature allegedly produced by client from.
func (r *KeyRing) VerifyClientSignature(from types.ClientID, data, sig []byte) error {
	return r.verifySig(clientPrincipal(from), data, sig)
}

func (r *KeyRing) verifySig(from principal, data, sig []byte) error {
	if !r.store.known(from) {
		return fmt.Errorf("%w: principal %d", ErrUnknownPeer, from)
	}
	if r.fast {
		want := fastTag(r.secret, uint64(from), data)
		if len(sig) != ed25519.SignatureSize || !hmac.Equal(sig[:16], want[:]) {
			return ErrBadSignature
		}
		return nil
	}
	pub := r.store.pub(from)
	if len(sig) != ed25519.SignatureSize || !ed25519.Verify(pub, data, sig) {
		return ErrBadSignature
	}
	return nil
}

// SignatureSize is the byte length of request signatures.
const SignatureSize = ed25519.SignatureSize
