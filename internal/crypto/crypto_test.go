package crypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"rbft/internal/types"
)

func newTestStore() *KeyStore {
	return NewKeyStore([]byte("test-cluster-secret"), 4, 8)
}

func TestPairwiseMACRoundTrip(t *testing.T) {
	ks := newTestStore()
	n0 := ks.NodeRing(0)
	n1 := ks.NodeRing(1)
	data := []byte("hello byzantine world")

	tag := n0.MACForNode(1, data)
	if err := n1.VerifyNodeMAC(0, data, tag); err != nil {
		t.Fatalf("VerifyNodeMAC: %v", err)
	}
	// Tampered data must fail.
	if err := n1.VerifyNodeMAC(0, []byte("tampered"), tag); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered data: got %v, want ErrBadMAC", err)
	}
	// Wrong claimed sender must fail.
	if err := n1.VerifyNodeMAC(2, data, tag); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("wrong sender: got %v, want ErrBadMAC", err)
	}
}

func TestClientMAC(t *testing.T) {
	ks := newTestStore()
	c := ks.ClientRing(3)
	n := ks.NodeRing(2)
	data := []byte("request payload")

	tag := c.MACForNode(2, data)
	if err := n.VerifyClientMAC(3, data, tag); err != nil {
		t.Fatalf("VerifyClientMAC: %v", err)
	}
	// Node->client direction.
	back := n.MACForClient(3, data)
	if err := c.VerifyNodeMAC(2, data, back); err != nil {
		t.Fatalf("client verifying node MAC: %v", err)
	}
}

// TestClientNodeKeySeparation guards against a client and a node with the
// same numeric id sharing key material.
func TestClientNodeKeySeparation(t *testing.T) {
	ks := newTestStore()
	node1 := ks.NodeRing(1)
	client1 := ks.ClientRing(1)
	data := []byte("identity confusion")

	tagFromNode := node1.MACForNode(0, data)
	n0 := ks.NodeRing(0)
	if err := n0.VerifyClientMAC(1, data, tagFromNode); !errors.Is(err, ErrBadMAC) {
		t.Fatal("node 1's MAC must not verify as client 1's MAC")
	}
	tagFromClient := client1.MACForNode(0, data)
	if err := n0.VerifyNodeMAC(1, data, tagFromClient); !errors.Is(err, ErrBadMAC) {
		t.Fatal("client 1's MAC must not verify as node 1's MAC")
	}
}

func TestAuthenticator(t *testing.T) {
	ks := newTestStore()
	sender := ks.NodeRing(0)
	data := []byte("broadcast body")
	auth := sender.AuthenticatorForNodes(4, data)
	if len(auth) != 4 {
		t.Fatalf("authenticator has %d entries, want 4", len(auth))
	}
	for i := 0; i < 4; i++ {
		ring := ks.NodeRing(types.NodeID(i))
		if err := ring.VerifyAuthenticatorEntry(0, types.NodeID(i), data, auth); err != nil {
			t.Errorf("node %d entry: %v", i, err)
		}
	}
	// A node must not accept another node's entry as its own.
	n2 := ks.NodeRing(2)
	swapped := append(Authenticator(nil), auth...)
	swapped[2] = auth[3]
	if err := n2.VerifyAuthenticatorEntry(0, 2, data, swapped); !errors.Is(err, ErrBadMAC) {
		t.Fatal("swapped authenticator entry must not verify")
	}
	// Short authenticator must be rejected, not panic.
	if err := n2.VerifyAuthenticatorEntry(0, 2, data, auth[:1]); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("short authenticator: got %v, want ErrBadMAC", err)
	}
}

func TestSignatures(t *testing.T) {
	ks := newTestStore()
	client := ks.ClientRing(5)
	node := ks.NodeRing(1)
	data := []byte("signed request")

	sig := client.Sign(data)
	if len(sig) != SignatureSize {
		t.Fatalf("signature size %d, want %d", len(sig), SignatureSize)
	}
	if err := node.VerifyClientSignature(5, data, sig); err != nil {
		t.Fatalf("VerifyClientSignature: %v", err)
	}
	if err := node.VerifyClientSignature(5, []byte("other"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered data: got %v, want ErrBadSignature", err)
	}
	if err := node.VerifyClientSignature(6, data, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong signer: got %v, want ErrBadSignature", err)
	}
	if err := node.VerifyClientSignature(5, data, sig[:10]); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("truncated signature: got %v, want ErrBadSignature", err)
	}
	// Unknown principal.
	if err := node.VerifyClientSignature(999, data, sig); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown client: got %v, want ErrUnknownPeer", err)
	}
}

func TestNodeSignatures(t *testing.T) {
	ks := newTestStore()
	n3 := ks.NodeRing(3)
	n0 := ks.NodeRing(0)
	data := []byte("view change")
	sig := n3.Sign(data)
	if err := n0.VerifyNodeSignature(3, data, sig); err != nil {
		t.Fatalf("VerifyNodeSignature: %v", err)
	}
	if err := n0.VerifyNodeSignature(2, data, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatal("signature must be bound to the signer")
	}
}

func TestDigestDeterministic(t *testing.T) {
	a := Digest([]byte("payload"))
	b := Digest([]byte("payload"))
	if a != b {
		t.Fatal("digest must be deterministic")
	}
	c := Digest([]byte("payloae"))
	if a == c {
		t.Fatal("distinct payloads must not collide")
	}
}

func TestKeyStoreDeterministic(t *testing.T) {
	a := NewKeyStore([]byte("s"), 4, 2).NodeRing(1)
	b := NewKeyStore([]byte("s"), 4, 2).NodeRing(1)
	if !bytes.Equal(a.Sign([]byte("x")), b.Sign([]byte("x"))) {
		t.Fatal("same secret must derive same keys")
	}
	c := NewKeyStore([]byte("other"), 4, 2).NodeRing(1)
	if bytes.Equal(a.Sign([]byte("x")), c.Sign([]byte("x"))) {
		t.Fatal("different secrets must derive different keys")
	}
}

// TestMACProperty: any MAC round-trips for random data and fails for any
// flipped bit in the data.
func TestMACProperty(t *testing.T) {
	ks := newTestStore()
	sender := ks.NodeRing(0)
	receiver := ks.NodeRing(1)
	prop := func(data []byte, flip uint16) bool {
		tag := sender.MACForNode(1, data)
		if receiver.VerifyNodeMAC(0, data, tag) != nil {
			return false
		}
		if len(data) == 0 {
			return true
		}
		mutated := append([]byte(nil), data...)
		mutated[int(flip)%len(mutated)] ^= 1 << (flip % 8)
		if bytes.Equal(mutated, data) {
			return true
		}
		return receiver.VerifyNodeMAC(0, mutated, tag) != nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
