package message

import (
	"rbft/internal/crypto"
	"rbft/internal/types"
)

// Fetch and FetchResp extend the wire vocabulary with a catch-up protocol:
// a replica that observes checkpoint evidence of committed sequence numbers
// it never delivered (lost datagrams, a flood-closed NIC interval) asks its
// peers for the missing batches. Responses are accepted once f+1 distinct
// peers return identical content — at least one of them is correct, and a
// correct node only serves batches it delivered.
const (
	// TypeFetch requests delivered batches in a sequence range.
	TypeFetch Type = 32
	// TypeFetchResp carries one delivered batch.
	TypeFetchResp Type = 33
)

// Fetch asks peers for the delivered batches in (FromSeq, ToSeq].
type Fetch struct {
	Instance types.InstanceID
	FromSeq  types.SeqNum // exclusive
	ToSeq    types.SeqNum // inclusive
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Fetch)(nil)

// MsgType implements Message.
func (m *Fetch) MsgType() Type { return TypeFetch }

// fetchBodySize is the fixed body length of FETCH.
const fetchBodySize = 1 + 8*4

func (m *Fetch) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypeFetch))
	b = appendU64(b, uint64(m.Instance))
	b = appendU64(b, uint64(m.FromSeq))
	b = appendU64(b, uint64(m.ToSeq))
	return appendU64(b, uint64(m.Node))
}

// Body implements Message.
func (m *Fetch) Body() []byte { return m.appendBody(make([]byte, 0, fetchBodySize)) }

// EncodedSize implements Message.
func (m *Fetch) EncodedSize() int { return fetchBodySize + authSize(m.Auth) }

// Marshal implements Message.
func (m *Fetch) Marshal(dst []byte) []byte {
	return appendAuth(m.appendBody(dst), m.Auth)
}

// FetchResp returns one delivered batch.
type FetchResp struct {
	Instance types.InstanceID
	Seq      types.SeqNum
	Batch    []types.RequestRef
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*FetchResp)(nil)

// MsgType implements Message.
func (m *FetchResp) MsgType() Type { return TypeFetchResp }

func (m *FetchResp) bodySize() int { return 1 + 8*3 + refsSize(m.Batch) }

func (m *FetchResp) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypeFetchResp))
	b = appendU64(b, uint64(m.Instance))
	b = appendU64(b, uint64(m.Seq))
	b = appendU64(b, uint64(m.Node))
	return appendRefs(b, m.Batch)
}

// Body implements Message.
func (m *FetchResp) Body() []byte { return m.appendBody(make([]byte, 0, m.bodySize())) }

// EncodedSize implements Message.
func (m *FetchResp) EncodedSize() int { return m.bodySize() + authSize(m.Auth) }

// Marshal implements Message.
func (m *FetchResp) Marshal(dst []byte) []byte {
	return appendAuth(m.appendBody(dst), m.Auth)
}

func decodeFetch(r *reader) *Fetch {
	f := &Fetch{
		Instance: types.InstanceID(r.u64()),
		FromSeq:  types.SeqNum(r.u64()),
		ToSeq:    types.SeqNum(r.u64()),
		Node:     types.NodeID(r.u64()),
	}
	f.Auth = r.auth()
	return f
}

func decodeFetchResp(r *reader) *FetchResp {
	f := &FetchResp{
		Instance: types.InstanceID(r.u64()),
		Seq:      types.SeqNum(r.u64()),
		Node:     types.NodeID(r.u64()),
	}
	f.Batch = r.refs()
	f.Auth = r.auth()
	return f
}
