package message

import (
	"errors"
	"fmt"
	"sync"

	"rbft/internal/crypto"
	"rbft/internal/obs"
	"rbft/internal/types"
)

// This file implements the first stage of the two-stage ingress pipeline
// (docs/PIPELINE.md): a pure, node-state-free preverification that decodes a
// frame and checks its authentication material, producing a Verified value
// the deterministic apply stage (core.Node) consumes without re-running any
// crypto. Because the stage reads no node state, drivers may run it on any
// number of goroutines (internal/runtime) or charge it on parallel simulated
// cores (internal/sim).

// FailKind classifies preverification failures so drivers can map them to
// the node's flood-accounting and blacklisting reactions without re-deriving
// the cause.
type FailKind uint8

// Preverification failure kinds.
const (
	// FailMalformed is an undecodable frame or a message type that cannot
	// arrive on this path (e.g. a REQUEST on the node-to-node NIC).
	FailMalformed FailKind = iota + 1
	// FailWrongSender is a decodable message whose claimed sender field does
	// not match the wire-level sender, or whose instance id is out of range.
	FailWrongSender
	// FailBadMAC is a MAC or MAC-authenticator mismatch.
	FailBadMAC
	// FailBadSig is a signature mismatch (client request or VIEW-CHANGE).
	FailBadSig
)

// String implements fmt.Stringer.
func (k FailKind) String() string {
	switch k {
	case FailMalformed:
		return "malformed"
	case FailWrongSender:
		return "wrong-sender"
	case FailBadMAC:
		return "bad-mac"
	case FailBadSig:
		return "bad-sig"
	default:
		return "unknown"
	}
}

// PreverifyError is a classified preverification failure.
type PreverifyError struct {
	Kind FailKind
	Err  error
}

// Error implements error.
func (e *PreverifyError) Error() string {
	if e.Err == nil {
		return "message: preverify failed: " + e.Kind.String()
	}
	return fmt.Sprintf("message: preverify failed (%s): %v", e.Kind, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *PreverifyError) Unwrap() error { return e.Err }

// FailKindOf extracts the failure kind of a preverification error
// (FailMalformed for foreign errors, since decode errors dominate those).
func FailKindOf(err error) FailKind {
	var pe *PreverifyError
	if errors.As(err, &pe) {
		return pe.Kind
	}
	return FailMalformed
}

func failKind(kind FailKind, err error) error { return &PreverifyError{Kind: kind, Err: err} }

// Verified is a message that passed the stateless preverify stage. The apply
// stage trusts its authentication material unconditionally; a Verified value
// must therefore only be constructed by Preverifier (or by tests that
// deliberately forge one).
type Verified struct {
	// Msg is the decoded message.
	Msg Message
	// FromClient reports whether the frame arrived on the client NIC; Client
	// is then the authenticated client, otherwise From is the authenticated
	// peer node.
	FromClient bool
	Client     types.ClientID
	From       types.NodeID
	// SigCached reports whether the request-signature check was served from
	// the verification cache (observability only).
	SigCached bool
}

// VerifyCache memoises request-signature verification outcomes, keyed by a
// digest over the signed body and the signature bytes. RBFT propagates every
// request to f+1 protocol instances and clients retransmit aggressively, so
// the same signature reaches a node many times; the cache collapses those to
// one Ed25519 verification plus one hash per copy. Keying by content digest
// makes the cache tamper-proof: any mutation of the body or signature
// changes the key, so a tampered message can never be served a stale "valid"
// verdict. Outcomes (including failures) are deterministic for fixed bytes,
// so caching them is sound.
//
// The cache is concurrency-safe; verifier worker goroutines share one
// instance per node.
type VerifyCache struct {
	mu      sync.Mutex
	entries map[types.Digest]bool // guarded by mu; verification outcome
	ring    []types.Digest        // guarded by mu; FIFO eviction order
	next    int                   // guarded by mu
	cap     int

	// hits/misses are nil-safe obs counters; SetCounters swaps in
	// registry-resolved ones.
	hits   *obs.Counter
	misses *obs.Counter
}

// DefaultVerifyCacheSize bounds the per-node signature verification cache.
const DefaultVerifyCacheSize = 4096

// NewVerifyCache creates a cache holding up to capacity outcomes (0 means
// DefaultVerifyCacheSize).
func NewVerifyCache(capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = DefaultVerifyCacheSize
	}
	return &VerifyCache{
		entries: make(map[types.Digest]bool, capacity),
		ring:    make([]types.Digest, capacity),
		cap:     capacity,
		hits:    &obs.Counter{},
		misses:  &obs.Counter{},
	}
}

// SetCounters replaces the cache's hit/miss counters, typically with
// registry-resolved ones so the ratio is exported via /metrics.
func (c *VerifyCache) SetCounters(hits, misses *obs.Counter) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if hits != nil {
		c.hits = hits
	}
	if misses != nil {
		c.misses = misses
	}
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *VerifyCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	h, m := c.hits, c.misses
	c.mu.Unlock()
	return h.Value(), m.Value()
}

// lookup returns the cached outcome for key and whether it was present.
func (c *VerifyCache) lookup(key types.Digest) (ok, hit bool) {
	if c == nil {
		return false, false
	}
	c.mu.Lock()
	ok, hit = c.entries[key]
	if hit {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	c.mu.Unlock()
	return ok, hit
}

// store records the outcome for key, evicting the oldest entry at capacity.
func (c *VerifyCache) store(key types.Digest, ok bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, dup := c.entries[key]; !dup {
		if len(c.entries) >= c.cap {
			delete(c.entries, c.ring[c.next])
		}
		c.ring[c.next] = key
		c.next = (c.next + 1) % c.cap
		c.entries[key] = ok
	}
	c.mu.Unlock()
}

// Preverifier performs the stateless ingress verification stage for one
// node: decode, sender-attribution checks, MAC/authenticator verification,
// and (cached) signature verification. It holds no node state, so one
// instance may be shared by any number of verifier goroutines.
type Preverifier struct {
	ring    *crypto.KeyRing
	self    types.NodeID
	cluster types.Config
	cache   *VerifyCache
}

// NewPreverifier builds the preverify stage for node self. cache may be nil
// to disable signature-verification caching.
func NewPreverifier(ring *crypto.KeyRing, self types.NodeID, cluster types.Config, cache *VerifyCache) *Preverifier {
	return &Preverifier{ring: ring, self: self, cluster: cluster, cache: cache}
}

// Cache exposes the signature-verification cache (metrics wiring).
func (p *Preverifier) Cache() *VerifyCache { return p.cache }

// PreverifyClientFrame decodes and preverifies a raw frame that arrived on
// the client NIC from the (transport-claimed) client.
func (p *Preverifier) PreverifyClientFrame(raw []byte, claimed types.ClientID) (*Verified, error) {
	msg, err := Decode(raw)
	if err != nil {
		return nil, failKind(FailMalformed, err)
	}
	return p.PreverifyClient(msg, claimed)
}

// PreverifyNodeFrame decodes and preverifies a raw frame that arrived on the
// node NIC from peer node from.
func (p *Preverifier) PreverifyNodeFrame(raw []byte, from types.NodeID) (*Verified, error) {
	msg, err := Decode(raw)
	if err != nil {
		return nil, failKind(FailMalformed, err)
	}
	return p.PreverifyNode(msg, from)
}

// PreverifyClient preverifies a decoded client-NIC message: only REQUESTs
// arrive there, carrying a MAC authenticator over the signed body and a
// client signature. MAC first: rejecting garbage at MAC cost is the
// Aardvark/RBFT flood defence's core economics.
func (p *Preverifier) PreverifyClient(msg Message, claimed types.ClientID) (*Verified, error) {
	req, ok := msg.(*Request)
	if !ok {
		return nil, failKind(FailMalformed, fmt.Errorf("client sent %s", msg.MsgType()))
	}
	if req.Client != claimed {
		return nil, failKind(FailWrongSender, fmt.Errorf("request claims client %d, sent by %d", req.Client, claimed))
	}
	if err := p.ring.VerifyClientAuthenticatorEntry(req.Client, p.self, req.Body(), req.Auth); err != nil {
		return nil, failKind(FailBadMAC, err)
	}
	cached, err := p.requestSigOK(req)
	if err != nil {
		return nil, err
	}
	return &Verified{Msg: req, FromClient: true, Client: claimed, SigCached: cached}, nil
}

// PreverifyNode preverifies a decoded node-NIC message from peer from.
func (p *Preverifier) PreverifyNode(msg Message, from types.NodeID) (*Verified, error) {
	// Every arm must authenticate msg before the Verified value is built.
	//rbft:dispatch
	switch m := msg.(type) {
	case *Request:
		// Requests reach nodes only via the client NIC or wrapped in
		// PROPAGATE; a bare node-NIC REQUEST is invalid traffic.
		return nil, failKind(FailMalformed, errors.New("REQUEST on node NIC"))
	case *Reply:
		return nil, failKind(FailMalformed, errors.New("REPLY on node NIC"))
	case *Invalid:
		return nil, failKind(FailMalformed, errors.New("INVALID message"))
	case *Propagate:
		if m.Node != from {
			return nil, failKind(FailWrongSender, fmt.Errorf("PROPAGATE claims node %d, sent by %d", m.Node, from))
		}
		if err := p.ring.VerifyAuthenticatorEntry(from, p.self, m.Body(), m.Auth); err != nil {
			return nil, failKind(FailBadMAC, err)
		}
		// The embedded request's client signature is what the PROPAGATE
		// phase exists to transfer; verify it here (cached) so the apply
		// stage can adopt the body without any crypto.
		if _, err := p.requestSigOK(&m.Req); err != nil {
			return nil, err
		}
	case *InstanceChange:
		if m.Node != from {
			return nil, failKind(FailWrongSender, fmt.Errorf("INSTANCE-CHANGE claims node %d, sent by %d", m.Node, from))
		}
		if err := p.ring.VerifyAuthenticatorEntry(from, p.self, m.Body(), m.Auth); err != nil {
			return nil, failKind(FailBadMAC, err)
		}
	case *ViewChange:
		if err := p.checkInstanceSender(msg, from); err != nil {
			return nil, err
		}
		if err := p.ring.VerifyNodeSignature(m.Node, m.Body(), m.Sig); err != nil {
			return nil, failKind(FailBadSig, err)
		}
	case *NewView:
		if err := p.checkInstanceSender(msg, from); err != nil {
			return nil, err
		}
		if err := p.ring.VerifyAuthenticatorEntry(from, p.self, m.Body(), m.Auth); err != nil {
			return nil, failKind(FailBadMAC, err)
		}
		// The embedded VIEW-CHANGE proofs are signed by their originators;
		// batch-verify them here so the instance can install the view
		// without re-running 2f+1 signature checks.
		jobs := make([]crypto.SigJob, 0, len(m.ViewChanges))
		for i := range m.ViewChanges {
			vc := &m.ViewChanges[i]
			jobs = append(jobs, crypto.SigJob{Node: vc.Node, Data: vc.Body(), Sig: vc.Sig})
		}
		if err := p.ring.VerifyNodeSignatureBatch(jobs); err != nil {
			return nil, failKind(FailBadSig, err)
		}
	case *PrePrepare, *Prepare, *Commit, *Checkpoint, *Fetch, *FetchResp:
		if err := p.checkInstanceSender(msg, from); err != nil {
			return nil, err
		}
		if err := p.ring.VerifyAuthenticatorEntry(from, p.self, msg.Body(), AuthOf(msg)); err != nil {
			return nil, failKind(FailBadMAC, err)
		}
	default:
		return nil, failKind(FailMalformed, fmt.Errorf("unhandled message type %s", msg.MsgType()))
	}
	return &Verified{Msg: msg, From: from}, nil
}

// checkInstanceSender validates the claimed sender and instance id of a
// per-instance protocol message.
func (p *Preverifier) checkInstanceSender(msg Message, from types.NodeID) error {
	inst, claimed, ok := InstanceAndSender(msg)
	if !ok {
		return failKind(FailMalformed, fmt.Errorf("%s carries no instance id", msg.MsgType()))
	}
	if claimed != from {
		return failKind(FailWrongSender, fmt.Errorf("%s claims node %d, sent by %d", msg.MsgType(), claimed, from))
	}
	if inst < 0 || int(inst) >= p.cluster.Instances() {
		return failKind(FailWrongSender, fmt.Errorf("%s for out-of-range instance %d", msg.MsgType(), inst))
	}
	return nil
}

// requestSigOK verifies the client signature of a request through the cache.
// It reports whether the verdict was served from cache.
func (p *Preverifier) requestSigOK(req *Request) (cached bool, err error) {
	body := req.SignedBody()
	key := sigCacheKey(body, req.Sig)
	if ok, hit := p.cache.lookup(key); hit {
		if !ok {
			return true, failKind(FailBadSig, crypto.ErrBadSignature)
		}
		return true, nil
	}
	verr := p.ring.VerifyClientSignature(req.Client, body, req.Sig)
	p.cache.store(key, verr == nil)
	if verr != nil {
		return false, failKind(FailBadSig, verr)
	}
	return false, nil
}

// sigCacheKey digests the signed body together with the signature, binding
// the cache entry to the exact bytes that were verified.
func sigCacheKey(body, sig []byte) types.Digest {
	buf := make([]byte, 0, len(body)+len(sig))
	buf = append(buf, body...)
	buf = append(buf, sig...)
	return crypto.Digest(buf)
}

// InstanceAndSender extracts the instance id and claimed sender of a
// per-instance protocol message (false for node-level messages).
func InstanceAndSender(msg Message) (types.InstanceID, types.NodeID, bool) {
	// Node-level messages carry no instance id; callers handle them before
	// delegating here, and the default arm rejects them.
	//rbft:dispatch ignore=Request,Propagate,Reply,InstanceChange,Invalid
	switch m := msg.(type) {
	case *PrePrepare:
		return m.Instance, m.Node, true
	case *Prepare:
		return m.Instance, m.Node, true
	case *Commit:
		return m.Instance, m.Node, true
	case *Checkpoint:
		return m.Instance, m.Node, true
	case *ViewChange:
		return m.Instance, m.Node, true
	case *NewView:
		return m.Instance, m.Node, true
	case *Fetch:
		return m.Instance, m.Node, true
	case *FetchResp:
		return m.Instance, m.Node, true
	default:
		return 0, 0, false
	}
}

// AuthOf returns the MAC authenticator of a per-instance protocol message.
func AuthOf(msg Message) crypto.Authenticator {
	// ViewChange is signed, not MAC'd; the remaining ignored types never
	// reach the instance path.
	//rbft:dispatch ignore=Request,Propagate,Reply,InstanceChange,Invalid,ViewChange
	switch m := msg.(type) {
	case *PrePrepare:
		return m.Auth
	case *Prepare:
		return m.Auth
	case *Commit:
		return m.Auth
	case *Checkpoint:
		return m.Auth
	case *NewView:
		return m.Auth
	case *Fetch:
		return m.Auth
	case *FetchResp:
		return m.Auth
	default:
		return nil
	}
}
