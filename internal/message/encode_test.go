package message

import (
	"bytes"
	"testing"

	"rbft/internal/crypto"
	"rbft/internal/types"
)

// sampleMessages returns one populated representative of every wire type,
// with realistic authentication material sizes (f=1 cluster: 4-entry
// authenticators).
func sampleMessages() []Message {
	auth := make(crypto.Authenticator, 4)
	for i := range auth {
		auth[i] = crypto.MAC{byte(i), 0xaa}
	}
	refs := []types.RequestRef{
		{Client: 1, ID: 2, Digest: types.Digest{1}},
		{Client: 3, ID: 4, Digest: types.Digest{2}},
	}
	sig := bytes.Repeat([]byte{0x5c}, crypto.SignatureSize)
	vc := ViewChange{
		Instance: 0, NewView: 2, StableSeq: 128, Node: 1, Sig: sig,
		Prepared: []PreparedProof{{Seq: 129, View: 1, Digest: types.Digest{9}, Batch: refs}},
	}
	return []Message{
		&Request{Client: 1, ID: 2, Op: []byte("op"), Sig: sig, Auth: auth},
		&Propagate{Req: Request{Client: 1, ID: 2, Op: []byte("op"), Sig: sig}, Node: 3, Auth: auth},
		&PrePrepare{Instance: 0, View: 1, Seq: 2, Batch: refs, Node: 0, Auth: auth},
		&Prepare{Instance: 1, View: 1, Seq: 2, Digest: types.Digest{7}, Node: 1, Auth: auth},
		&Commit{Instance: 0, View: 1, Seq: 2, Digest: types.Digest{7}, Node: 2, Auth: auth},
		&Reply{Client: 1, ID: 2, Result: []byte("r"), Node: 0, MAC: crypto.MAC{1}},
		&InstanceChange{CPI: 7, Node: 3, Auth: auth},
		&vc,
		&NewView{Instance: 0, View: 2, ViewChanges: []ViewChange{vc}, PrePrepares: []PrePrepare{{Instance: 0, View: 2, Seq: 2, Batch: refs, Node: 1, Auth: auth}}, Node: 1, Auth: auth},
		&Checkpoint{Instance: 0, Seq: 128, Digest: types.Digest{3}, Node: 0, Auth: auth},
		&Invalid{Node: 1, Padding: []byte("xxxx")},
		&Fetch{Instance: 0, FromSeq: 1, ToSeq: 3, Node: 2, Auth: auth},
		&FetchResp{Instance: 0, Seq: 2, Batch: refs, Node: 0, Auth: auth},
	}
}

// TestEncodedSizeExact pins the size hint contract: EncodedSize must equal
// the exact marshaled length for every message type, because the simulator's
// wire-size model and the pooled encode path both rely on it.
func TestEncodedSizeExact(t *testing.T) {
	for _, m := range sampleMessages() {
		enc := m.Marshal(nil)
		if got, want := m.EncodedSize(), len(enc); got != want {
			t.Errorf("%s: EncodedSize %d, marshaled length %d", m.MsgType(), got, want)
		}
	}
}

// TestMarshalAppendsInPlace verifies Marshal with a pre-sized destination
// produces the same bytes as a fresh marshal and does not grow the slice.
func TestMarshalAppendsInPlace(t *testing.T) {
	for _, m := range sampleMessages() {
		want := m.Marshal(nil)
		dst := make([]byte, 0, m.EncodedSize())
		got := m.Marshal(dst)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: in-place marshal differs from fresh marshal", m.MsgType())
		}
		if &got[0] != &dst[:1][0] {
			t.Errorf("%s: marshal into sufficient capacity reallocated", m.MsgType())
		}
	}
}

// TestEncodeRoundTrip checks the pooled encode path produces decodable
// frames and reuses buffers across Encode/Release cycles.
func TestEncodeRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		buf := Encode(m)
		if !bytes.Equal(buf.Bytes(), m.Marshal(nil)) {
			t.Errorf("%s: pooled encode differs from Marshal", m.MsgType())
		}
		if buf.Len() != m.EncodedSize() {
			t.Errorf("%s: pooled encode length %d, want %d", m.MsgType(), buf.Len(), m.EncodedSize())
		}
		if _, err := Decode(buf.Bytes()); err != nil {
			t.Errorf("%s: decoding pooled encode: %v", m.MsgType(), err)
		}
		buf.Release()
	}
}

// TestEncodeZeroAlloc is the allocation-regression gate for the steady-state
// encode path: once the pool is warm, encoding a hot-path message must not
// allocate at all. This is the property that keeps the egress pipeline off
// the garbage collector's back under load.
func TestEncodeZeroAlloc(t *testing.T) {
	auth := make(crypto.Authenticator, 4)
	hot := []Message{
		&Prepare{Instance: 1, View: 1, Seq: 2, Digest: types.Digest{7}, Node: 1, Auth: auth},
		&Commit{Instance: 0, View: 1, Seq: 2, Digest: types.Digest{7}, Node: 2, Auth: auth},
		&PrePrepare{Instance: 0, View: 1, Seq: 2, Node: 0, Auth: auth,
			Batch: []types.RequestRef{{Client: 1, ID: 2}, {Client: 3, ID: 4}}},
		&Propagate{Req: Request{Client: 1, ID: 2, Op: bytes.Repeat([]byte{0x42}, 64),
			Sig: make([]byte, crypto.SignatureSize)}, Node: 3, Auth: auth},
		&Reply{Client: 1, ID: 2, Result: []byte("r"), Node: 0},
		&Checkpoint{Instance: 0, Seq: 128, Node: 0, Auth: auth},
	}
	for _, m := range hot {
		// Warm the pool so the buffer reaches its high-water capacity.
		for i := 0; i < 8; i++ {
			Encode(m).Release()
		}
		allocs := testing.AllocsPerRun(200, func() {
			buf := Encode(m)
			buf.Release()
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state Encode allocates %.1f allocs/op, want 0", m.MsgType(), allocs)
		}
	}
}

// BenchmarkMarshal measures the raw append-in-place encode of the hot
// ordering messages (the per-message cost the egress path pays before
// framing). Run with -benchmem: steady-state it must report 0 allocs/op.
func BenchmarkMarshal(b *testing.B) {
	auth := make(crypto.Authenticator, 4)
	msgs := map[string]Message{
		"prepare": &Prepare{Instance: 1, View: 1, Seq: 2, Digest: types.Digest{7}, Node: 1, Auth: auth},
		"preprepare-64refs": &PrePrepare{Instance: 0, View: 1, Seq: 2, Node: 0, Auth: auth,
			Batch: make([]types.RequestRef, 64)},
		"propagate-64B": &Propagate{Req: Request{Client: 1, ID: 2, Op: make([]byte, 64),
			Sig: make([]byte, crypto.SignatureSize)}, Node: 3, Auth: auth},
	}
	for name, m := range msgs {
		b.Run(name, func(b *testing.B) {
			dst := make([]byte, 0, m.EncodedSize())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = m.Marshal(dst[:0])
			}
		})
	}
}

// BenchmarkEncode measures the pooled encode path (Encode + Release), the
// exact sequence the runtime egress uses per outbound message.
func BenchmarkEncode(b *testing.B) {
	auth := make(crypto.Authenticator, 4)
	m := &Prepare{Instance: 1, View: 1, Seq: 2, Digest: types.Digest{7}, Node: 1, Auth: auth}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m).Release()
	}
}
