package message

import "sync"

// Buf is a pooled encode buffer holding one marshaled frame. The egress hot
// path encodes every outbound message into one of these: steady-state the
// pool hands back a buffer whose capacity already fits the message (thanks to
// the EncodedSize hint growing it to the working set's high-water mark), so
// Encode performs zero allocations per message.
//
// A Buf's bytes may be shared read-only across any number of concurrent
// senders; call Release exactly once, after the last reader is done, to
// return the buffer to the pool. Releasing while a reader still holds
// Bytes() is a use-after-free-style race — the pool will hand the backing
// array to the next Encode.
type Buf struct {
	b []byte
}

var encodePool = sync.Pool{New: func() interface{} { return new(Buf) }}

// Encode marshals msg into a pooled buffer sized by its EncodedSize hint and
// returns the buffer. The caller owns the buffer until Release.
func Encode(msg Message) *Buf {
	buf := encodePool.Get().(*Buf)
	if n := msg.EncodedSize(); cap(buf.b) < n {
		buf.b = make([]byte, 0, n)
	}
	buf.b = msg.Marshal(buf.b[:0])
	return buf
}

// Bytes returns the encoded frame. Valid until Release.
func (b *Buf) Bytes() []byte { return b.b }

// Len returns the encoded frame length.
func (b *Buf) Len() int { return len(b.b) }

// Release returns the buffer to the pool. The caller must not touch the
// buffer (or any slice obtained from Bytes) afterwards.
func (b *Buf) Release() { encodePool.Put(b) }
