package message

import (
	"bytes"
	"testing"

	"rbft/internal/crypto"
	"rbft/internal/types"
)

// fuzzSeeds marshals one representative of every message type so the fuzzers
// start from structurally valid frames and mutate from there.
func fuzzSeeds(f *testing.F) {
	refs := []types.RequestRef{{Client: 1, ID: 2}, {Client: 3, ID: 4}}
	msgs := []Message{
		&Request{Client: 1, ID: 2, Op: []byte("op"), Sig: make([]byte, crypto.SignatureSize)},
		&Propagate{Req: Request{Client: 1, ID: 2, Op: []byte("op")}, Node: 3},
		&PrePrepare{Instance: 0, View: 1, Seq: 2, Batch: refs, Node: 0},
		&Prepare{Instance: 1, View: 1, Seq: 2, Node: 1},
		&Commit{Instance: 0, View: 1, Seq: 2, Node: 2},
		&Reply{Client: 1, ID: 2, Result: []byte("r"), Node: 0},
		&InstanceChange{CPI: 7, Node: 3},
		&ViewChange{Instance: 0, NewView: 2, StableSeq: 1, Node: 1, Sig: make([]byte, crypto.SignatureSize)},
		&NewView{Instance: 0, View: 2, ViewChanges: []ViewChange{{Instance: 0, NewView: 2, Node: 1}}, Node: 1},
		&Checkpoint{Instance: 0, Seq: 128, Node: 0},
		&Invalid{Node: 1, Padding: []byte("xxxx")},
		&Fetch{Instance: 0, FromSeq: 1, ToSeq: 3, Node: 2},
		&FetchResp{Instance: 0, Seq: 2, Batch: refs, Node: 0},
	}
	for _, m := range msgs {
		f.Add(m.Marshal(nil))
	}
	// A few degenerate frames.
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(bytes.Repeat([]byte{0x01}, 64))
}

// FuzzDecode checks that Decode never panics on arbitrary bytes and that any
// frame it accepts survives a marshal/decode round trip with the same type.
func FuzzDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			if msg != nil {
				t.Fatalf("Decode returned both a message and error %v", err)
			}
			return
		}
		re := msg.Marshal(nil)
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decoding marshaled %s: %v", msg.MsgType(), err)
		}
		if msg2.MsgType() != msg.MsgType() {
			t.Fatalf("round trip changed type %s -> %s", msg.MsgType(), msg2.MsgType())
		}
		if got := msg.EncodedSize(); got != len(re) {
			t.Fatalf("%s: EncodedSize %d but marshaled %d bytes", msg.MsgType(), got, len(re))
		}
		if !bytes.Equal(msg2.Marshal(nil), re) {
			t.Fatalf("marshaling %s is not a fixed point", msg.MsgType())
		}
	})
}

// FuzzPreverify drives the full preverify stage (decode + authentication)
// with arbitrary frames on both NICs. Invariants: no panics, a Verified
// value exactly when there is no error, and every error is a classified
// PreverifyError kind.
func FuzzPreverify(f *testing.F) {
	fuzzSeeds(f)
	// Also seed a fully authenticated request so the accept path (and the
	// signature cache) is exercised, not just rejections.
	ks := crypto.NewKeyStore([]byte("fuzz-preverify"), 4, 4)
	cl := ks.ClientRing(1)
	req := &Request{Client: 1, ID: 2, Op: []byte("op")}
	req.Sig = cl.Sign(req.SignedBody())
	req.Auth = cl.AuthenticatorForNodes(4, req.Body())
	f.Add(req.Marshal(nil))

	cluster := types.NewConfig(1)
	pre := NewPreverifier(ks.NodeRing(0), 0, cluster, NewVerifyCache(64))
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(v *Verified, err error) {
			if (v == nil) == (err == nil) {
				t.Fatalf("got verified=%v error=%v; want exactly one", v, err)
			}
			if err != nil {
				if k := FailKindOf(err); k < FailMalformed || k > FailBadSig {
					t.Fatalf("unclassified preverify error %v", err)
				}
			}
		}
		check(pre.PreverifyClientFrame(data, 1))
		check(pre.PreverifyNodeFrame(data, 2))
	})
}
