package message

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rbft/internal/crypto"
	"rbft/internal/types"
)

// Codec errors.
var (
	ErrTruncated   = errors.New("message: truncated encoding")
	ErrUnknownType = errors.New("message: unknown message type")
	ErrOversized   = errors.New("message: length field exceeds limits")
)

// maxFieldLen bounds variable-length fields so a malformed length prefix
// cannot trigger a huge allocation.
const maxFieldLen = 16 << 20

func putU64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// Append-style encoding helpers. Each appends its encoding to b and returns
// the result; with sufficient capacity in b none of them allocates, which is
// what makes the EncodedSize-hinted Marshal path zero-allocation.

func appendU8(b []byte, v uint8) []byte { return append(b, v) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendDigest(b []byte, d types.Digest) []byte { return append(b, d[:]...) }

// refSize is the encoded length of one types.RequestRef.
const refSize = 8 + 8 + types.DigestSize

// refsSize is the encoded length of a request-reference list.
func refsSize(refs []types.RequestRef) int { return 4 + len(refs)*refSize }

func appendRefs(b []byte, refs []types.RequestRef) []byte {
	b = appendU32(b, uint32(len(refs)))
	for i := range refs {
		b = appendU64(b, uint64(refs[i].Client))
		b = appendU64(b, uint64(refs[i].ID))
		b = appendDigest(b, refs[i].Digest)
	}
	return b
}

// authSize is the encoded length of a MAC authenticator.
func authSize(a crypto.Authenticator) int { return 4 + len(a)*crypto.MACSize }

func appendAuth(b []byte, a crypto.Authenticator) []byte {
	b = appendU32(b, uint32(len(a)))
	for i := range a {
		b = append(b, a[i][:]...)
	}
	return b
}

// reader decodes from a byte slice, latching the first error.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *reader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if n > maxFieldLen {
		r.fail(ErrOversized)
		return nil
	}
	p := r.take(int(n))
	if p == nil && n > 0 {
		return nil
	}
	// Present-but-empty fields decode to an empty (non-nil) slice so
	// encode/decode round trips preserve shape.
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

func (r *reader) digest() types.Digest {
	var d types.Digest
	p := r.take(types.DigestSize)
	if p != nil {
		copy(d[:], p)
	}
	return d
}

func (r *reader) mac() crypto.MAC {
	var m crypto.MAC
	p := r.take(crypto.MACSize)
	if p != nil {
		copy(m[:], p)
	}
	return m
}

func (r *reader) refs() []types.RequestRef {
	n := r.u32()
	if n > maxFieldLen/types.DigestSize {
		r.fail(ErrOversized)
		return nil
	}
	refs := make([]types.RequestRef, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		ref := types.RequestRef{
			Client: types.ClientID(r.u64()),
			ID:     types.RequestID(r.u64()),
			Digest: r.digest(),
		}
		refs = append(refs, ref)
	}
	return refs
}

func (r *reader) auth() crypto.Authenticator {
	n := r.u32()
	if n > maxFieldLen/crypto.MACSize {
		r.fail(ErrOversized)
		return nil
	}
	a := make(crypto.Authenticator, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		a = append(a, r.mac())
	}
	return a
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(r.b)-r.off)
	}
	return nil
}

// Decode parses a full wire encoding back into a Message.
func Decode(data []byte) (Message, error) {
	r := &reader{b: data}
	t := Type(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	var m Message
	//rbft:dispatch
	switch t {
	case TypeRequest:
		m = decodeRequest(r, false)
	case TypeReadRequest:
		m = decodeRequest(r, true)
	case TypePropagate:
		m = decodePropagate(r)
	case TypePrePrepare:
		m = decodePrePrepare(r)
	case TypePrepare:
		p := &Prepare{}
		p.Instance, p.View, p.Seq, p.Digest, p.Node = decodePhase(r)
		p.Auth = r.auth()
		m = p
	case TypeCommit:
		c := &Commit{}
		c.Instance, c.View, c.Seq, c.Digest, c.Node = decodePhase(r)
		c.Auth = r.auth()
		m = c
	case TypeReply:
		m = decodeReply(r)
	case TypeInstanceChange:
		ic := &InstanceChange{CPI: r.u64(), Node: types.NodeID(r.u64())}
		ic.Auth = r.auth()
		m = ic
	case TypeViewChange:
		m = decodeViewChange(r)
	case TypeNewView:
		m = decodeNewView(r)
	case TypeCheckpoint:
		cp := &Checkpoint{
			Instance: types.InstanceID(r.u64()),
			Seq:      types.SeqNum(r.u64()),
			Digest:   r.digest(),
			Node:     types.NodeID(r.u64()),
		}
		cp.Auth = r.auth()
		m = cp
	case TypeInvalid:
		iv := &Invalid{Node: types.NodeID(r.u64()), Padding: r.bytes()}
		m = iv
	case TypeFetch:
		m = decodeFetch(r)
	case TypeFetchResp:
		m = decodeFetchResp(r)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeRequest(r *reader, readOnly bool) *Request {
	return &Request{
		Client:   types.ClientID(r.u64()),
		ID:       types.RequestID(r.u64()),
		Op:       r.bytes(),
		ReadOnly: readOnly,
		Sig:      r.bytes(),
		Auth:     r.auth(),
	}
}

func decodePropagate(r *reader) *Propagate {
	p := &Propagate{Node: types.NodeID(r.u64())}
	inner := r.bytes()
	if r.err == nil {
		ir := &reader{b: inner}
		// Only ordinary requests may be propagated: read-only requests
		// (TypeReadRequest) never enter ordering, so an inner read tag is
		// rejected as malformed.
		if t := Type(ir.u8()); t != TypeRequest {
			r.fail(fmt.Errorf("%w: propagate inner type %d", ErrUnknownType, t))
			return p
		}
		p.Req = Request{
			Client: types.ClientID(ir.u64()),
			ID:     types.RequestID(ir.u64()),
			Op:     ir.bytes(),
			Sig:    ir.bytes(),
		}
		if err := ir.done(); err != nil {
			r.fail(err)
		}
	}
	p.Auth = r.auth()
	return p
}

func decodePrePrepare(r *reader) *PrePrepare {
	pp := &PrePrepare{
		Instance: types.InstanceID(r.u64()),
		View:     types.View(r.u64()),
		Seq:      types.SeqNum(r.u64()),
		Node:     types.NodeID(r.u64()),
	}
	pp.Batch = r.refs()
	pp.Auth = r.auth()
	return pp
}

func decodePhase(r *reader) (types.InstanceID, types.View, types.SeqNum, types.Digest, types.NodeID) {
	return types.InstanceID(r.u64()), types.View(r.u64()), types.SeqNum(r.u64()), r.digest(), types.NodeID(r.u64())
}

func decodeReply(r *reader) *Reply {
	rep := &Reply{
		Client: types.ClientID(r.u64()),
		ID:     types.RequestID(r.u64()),
		Node:   types.NodeID(r.u64()),
		Result: r.bytes(),
	}
	rep.MAC = r.mac()
	return rep
}

func decodeViewChange(r *reader) *ViewChange {
	vc := &ViewChange{
		Instance:  types.InstanceID(r.u64()),
		NewView:   types.View(r.u64()),
		StableSeq: types.SeqNum(r.u64()),
		Node:      types.NodeID(r.u64()),
	}
	n := r.u32()
	if n > maxFieldLen/types.DigestSize {
		r.fail(ErrOversized)
		return vc
	}
	vc.Prepared = make([]PreparedProof, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		p := PreparedProof{
			Seq:    types.SeqNum(r.u64()),
			View:   types.View(r.u64()),
			Digest: r.digest(),
		}
		p.Batch = r.refs()
		vc.Prepared = append(vc.Prepared, p)
	}
	vc.Sig = r.bytes()
	return vc
}

func decodeNewView(r *reader) *NewView {
	nv := &NewView{
		Instance: types.InstanceID(r.u64()),
		View:     types.View(r.u64()),
		Node:     types.NodeID(r.u64()),
	}
	nvc := r.u32()
	if nvc > 1<<16 {
		r.fail(ErrOversized)
		return nv
	}
	nv.ViewChanges = make([]ViewChange, 0, nvc)
	for i := uint32(0); i < nvc && r.err == nil; i++ {
		sub, err := decodeSub(r.bytes())
		if err != nil {
			r.fail(err)
			return nv
		}
		vc, ok := sub.(*ViewChange)
		if !ok {
			r.fail(fmt.Errorf("%w: new-view embeds %T", ErrUnknownType, sub))
			return nv
		}
		nv.ViewChanges = append(nv.ViewChanges, *vc)
	}
	npp := r.u32()
	if npp > 1<<16 {
		r.fail(ErrOversized)
		return nv
	}
	nv.PrePrepares = make([]PrePrepare, 0, npp)
	for i := uint32(0); i < npp && r.err == nil; i++ {
		sub, err := decodeSub(r.bytes())
		if err != nil {
			r.fail(err)
			return nv
		}
		pp, ok := sub.(*PrePrepare)
		if !ok {
			r.fail(fmt.Errorf("%w: new-view embeds %T", ErrUnknownType, sub))
			return nv
		}
		nv.PrePrepares = append(nv.PrePrepares, *pp)
	}
	nv.Auth = r.auth()
	return nv
}

func decodeSub(data []byte) (Message, error) {
	if data == nil {
		return nil, ErrTruncated
	}
	return Decode(data)
}
