package message

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rbft/internal/crypto"
	"rbft/internal/types"
)

func sampleAuth(n int, seed byte) crypto.Authenticator {
	a := make(crypto.Authenticator, n)
	for i := range a {
		for j := range a[i] {
			a[i][j] = seed + byte(i*7+j)
		}
	}
	return a
}

func sampleRefs(n int) []types.RequestRef {
	refs := make([]types.RequestRef, n)
	for i := range refs {
		refs[i] = types.RequestRef{
			Client: types.ClientID(i),
			ID:     types.RequestID(100 + i),
			Digest: types.Digest{byte(i), 0xfe},
		}
	}
	return refs
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	wire := m.Marshal(nil)
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode(%s): %v", m.MsgType(), err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch for %s:\n sent %#v\n got  %#v", m.MsgType(), m, got)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	req := &Request{Client: 3, ID: 9, Op: []byte("put k v"), Sig: bytes.Repeat([]byte{7}, 64), Auth: sampleAuth(4, 1)}
	msgs := []Message{
		req,
		&Propagate{Req: Request{Client: 3, ID: 9, Op: []byte("put k v"), Sig: bytes.Repeat([]byte{7}, 64)}, Node: 2, Auth: sampleAuth(4, 2)},
		&PrePrepare{Instance: 1, View: 7, Seq: 42, Batch: sampleRefs(3), Node: 0, Auth: sampleAuth(4, 3)},
		&Prepare{Instance: 1, View: 7, Seq: 42, Digest: types.Digest{9}, Node: 3, Auth: sampleAuth(4, 4)},
		&Commit{Instance: 0, View: 7, Seq: 42, Digest: types.Digest{9}, Node: 1, Auth: sampleAuth(4, 5)},
		&Reply{Client: 3, ID: 9, Result: []byte("ok"), Node: 2, MAC: crypto.MAC{1, 2, 3}},
		&InstanceChange{CPI: 11, Node: 2, Auth: sampleAuth(4, 6)},
		&ViewChange{
			Instance:  1,
			NewView:   8,
			StableSeq: 40,
			Prepared: []PreparedProof{
				{Seq: 41, View: 7, Digest: types.Digest{4}, Batch: sampleRefs(2)},
				{Seq: 42, View: 6, Digest: types.Digest{5}, Batch: sampleRefs(1)},
			},
			Node: 3,
			Sig:  bytes.Repeat([]byte{9}, 64),
		},
		&Checkpoint{Instance: 1, Seq: 100, Digest: types.Digest{0xaa}, Node: 0, Auth: sampleAuth(4, 7)},
		&Invalid{Node: 3, Padding: bytes.Repeat([]byte{0xff}, 128)},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestRoundTripNewView(t *testing.T) {
	vc := ViewChange{
		Instance:  0,
		NewView:   3,
		StableSeq: 10,
		Prepared:  []PreparedProof{{Seq: 11, View: 2, Digest: types.Digest{1}, Batch: sampleRefs(1)}},
		Node:      1,
		Sig:       bytes.Repeat([]byte{5}, 64),
	}
	pp := PrePrepare{Instance: 0, View: 3, Seq: 11, Batch: sampleRefs(1), Node: 3, Auth: sampleAuth(4, 8)}
	nv := &NewView{
		Instance:    0,
		View:        3,
		ViewChanges: []ViewChange{vc, vc, vc},
		PrePrepares: []PrePrepare{pp},
		Node:        3,
		Auth:        sampleAuth(4, 9),
	}
	roundTrip(t, nv)
}

func TestRoundTripEmptySlices(t *testing.T) {
	// Empty batches and empty prepared sets are valid (e.g. a NEW-VIEW with
	// nothing to re-propose); make sure the codec preserves emptiness.
	pp := &PrePrepare{Instance: 0, View: 0, Seq: 1, Batch: []types.RequestRef{}, Node: 0, Auth: sampleAuth(4, 1)}
	got := roundTrip(t, pp).(*PrePrepare)
	if got.Batch == nil || len(got.Batch) != 0 {
		t.Errorf("empty batch decoded as %#v", got.Batch)
	}
	nv := &NewView{Instance: 0, View: 1, ViewChanges: []ViewChange{}, PrePrepares: []PrePrepare{}, Node: 1, Auth: sampleAuth(4, 2)}
	roundTrip(t, nv)
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{name: "empty", data: nil, want: ErrTruncated},
		{name: "unknown type", data: []byte{0xEE}, want: ErrUnknownType},
		{name: "truncated request", data: []byte{byte(TypeRequest), 0, 0}, want: ErrTruncated},
		{name: "oversized field", data: append([]byte{byte(TypeRequest), 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2}, 0xff, 0xff, 0xff, 0xff), want: ErrOversized},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.data); !errors.Is(err, tt.want) {
				t.Errorf("Decode() error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	m := &Reply{Client: 1, ID: 2, Result: []byte("r"), Node: 0}
	wire := append(m.Marshal(nil), 0x00)
	if _, err := Decode(wire); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing bytes: got %v, want ErrTruncated", err)
	}
}

func TestBodyExcludesAuth(t *testing.T) {
	pp := &PrePrepare{Instance: 1, View: 2, Seq: 3, Batch: sampleRefs(2), Node: 0, Auth: sampleAuth(4, 1)}
	body1 := pp.Body()
	pp.Auth = sampleAuth(4, 99)
	body2 := pp.Body()
	if !bytes.Equal(body1, body2) {
		t.Fatal("Body() must not depend on the authenticator")
	}
	wire := pp.Marshal(nil)
	if !bytes.HasPrefix(wire, body2) {
		t.Fatal("wire encoding must begin with the body")
	}
}

func TestRequestSignedBodyExcludesSigAndAuth(t *testing.T) {
	r := &Request{Client: 1, ID: 2, Op: []byte("op"), Sig: []byte("sig1"), Auth: sampleAuth(4, 1)}
	b1 := r.SignedBody()
	r.Sig = []byte("sig2")
	r.Auth = sampleAuth(4, 2)
	b2 := r.SignedBody()
	if !bytes.Equal(b1, b2) {
		t.Fatal("SignedBody must cover only client-chosen fields")
	}
	// But Body (what the MAC covers) must include the signature.
	r.Sig = []byte("sig1")
	bodyA := r.Body()
	r.Sig = []byte("sigX")
	bodyB := r.Body()
	if bytes.Equal(bodyA, bodyB) {
		t.Fatal("Body must cover the signature")
	}
}

func TestOpDigestBindsOrigin(t *testing.T) {
	a := &Request{Client: 1, ID: 2, Op: []byte("op")}
	b := &Request{Client: 2, ID: 2, Op: []byte("op")}
	c := &Request{Client: 1, ID: 3, Op: []byte("op")}
	if a.OpDigest() == b.OpDigest() || a.OpDigest() == c.OpDigest() {
		t.Fatal("request digest must bind client and request id")
	}
	if a.Ref().Digest != a.OpDigest() {
		t.Fatal("Ref digest must equal OpDigest")
	}
}

func TestBatchDigestBindsContext(t *testing.T) {
	base := PrePrepare{Instance: 0, View: 1, Seq: 2, Batch: sampleRefs(2)}
	d := base.BatchDigest()
	alt := base
	alt.View = 9
	if alt.BatchDigest() == d {
		t.Error("batch digest must bind the view")
	}
	alt = base
	alt.Seq = 9
	if alt.BatchDigest() == d {
		t.Error("batch digest must bind the sequence number")
	}
	alt = base
	alt.Instance = 1
	if alt.BatchDigest() == d {
		t.Error("batch digest must bind the instance")
	}
	alt = base
	alt.Batch = sampleRefs(1)
	if alt.BatchDigest() == d {
		t.Error("batch digest must bind the batch contents")
	}
}

func TestTypeString(t *testing.T) {
	if TypePrePrepare.String() != "PRE-PREPARE" {
		t.Errorf("TypePrePrepare.String() = %q", TypePrePrepare.String())
	}
	if Type(200).String() != "UNKNOWN" {
		t.Errorf("unknown type renders %q", Type(200).String())
	}
}

// randomRequest builds a structurally valid random request for the property
// test.
func randomRequest(r *rand.Rand) *Request {
	op := make([]byte, r.Intn(256))
	r.Read(op)
	sig := make([]byte, 64)
	r.Read(sig)
	return &Request{
		Client: types.ClientID(r.Intn(1000)),
		ID:     types.RequestID(r.Uint64()),
		Op:     op,
		Sig:    sig,
		Auth:   sampleAuth(4, byte(r.Intn(256))),
	}
}

// TestCodecRoundTripProperty fuzzes structured random messages through the
// codec.
func TestCodecRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m Message
		switch r.Intn(5) {
		case 0:
			m = randomRequest(r)
		case 1:
			m = &PrePrepare{
				Instance: types.InstanceID(r.Intn(3)),
				View:     types.View(r.Uint64()),
				Seq:      types.SeqNum(r.Uint64()),
				Batch:    sampleRefs(r.Intn(10)),
				Node:     types.NodeID(r.Intn(4)),
				Auth:     sampleAuth(4, byte(r.Intn(256))),
			}
		case 2:
			m = &Commit{
				Instance: types.InstanceID(r.Intn(3)),
				View:     types.View(r.Uint64()),
				Seq:      types.SeqNum(r.Uint64()),
				Digest:   types.Digest{byte(r.Intn(256))},
				Node:     types.NodeID(r.Intn(4)),
				Auth:     sampleAuth(4, byte(r.Intn(256))),
			}
		case 3:
			m = &InstanceChange{CPI: r.Uint64(), Node: types.NodeID(r.Intn(4)), Auth: sampleAuth(4, byte(r.Intn(256)))}
		default:
			res := make([]byte, r.Intn(64))
			r.Read(res)
			m = &Reply{Client: types.ClientID(r.Intn(100)), ID: types.RequestID(r.Uint64()), Result: res, Node: types.NodeID(r.Intn(4))}
		}
		wire := m.Marshal(nil)
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics feeds random garbage at the decoder.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(300))
		r.Read(buf)
		// Bias the first byte toward valid types so decoding goes deeper.
		if len(buf) > 0 && i%2 == 0 {
			buf[0] = byte(r.Intn(int(TypeInvalid)) + 1)
		}
		_, _ = Decode(buf) // must not panic
	}
}
