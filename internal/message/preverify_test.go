package message

import (
	"testing"

	"rbft/internal/crypto"
	"rbft/internal/obs"
	"rbft/internal/types"
)

const testN = 4

func testKeys() *crypto.KeyStore {
	return crypto.NewKeyStore([]byte("preverify-test"), testN, 8)
}

// signedRequest builds a fully authenticated client request.
func signedRequest(ks *crypto.KeyStore, client types.ClientID, id types.RequestID, op []byte) *Request {
	cl := ks.ClientRing(client)
	req := &Request{Client: client, ID: id, Op: op}
	req.Sig = cl.Sign(req.SignedBody())
	req.Auth = cl.AuthenticatorForNodes(testN, req.Body())
	return req
}

// propagateOf wraps req in a PROPAGATE correctly MAC'd by node.
func propagateOf(ks *crypto.KeyStore, node types.NodeID, req *Request) *Propagate {
	p := &Propagate{Req: *req, Node: node}
	p.Req.Auth = nil
	p.Auth = ks.NodeRing(node).AuthenticatorForNodes(testN, p.Body())
	return p
}

func newPreverifier(ks *crypto.KeyStore, cacheCap int) *Preverifier {
	return NewPreverifier(ks.NodeRing(0), 0, types.NewConfig(1), NewVerifyCache(cacheCap))
}

// TestVerifyCacheHitMissCounters pins the cache's observability contract: the
// first verification of a signature is a miss, a retransmission of the exact
// same bytes is a hit, and both Stats and registry-wired counters agree.
func TestVerifyCacheHitMissCounters(t *testing.T) {
	ks := testKeys()
	pre := newPreverifier(ks, 16)
	reg := obs.NewRegistry()
	hits, misses := reg.Counter("rbft_sigcache_hits_total"), reg.Counter("rbft_sigcache_misses_total")
	pre.Cache().SetCounters(hits, misses)

	req := signedRequest(ks, 1, 1, []byte("op"))
	v, err := pre.PreverifyClient(req, 1)
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if v.SigCached {
		t.Fatal("first verification reported as cache hit")
	}
	if h, m := pre.Cache().Stats(); h != 0 || m != 1 {
		t.Fatalf("after first verify: hits=%d misses=%d, want 0/1", h, m)
	}

	// Client retransmission: same bytes, so the verdict is served from cache.
	v, err = pre.PreverifyClient(req, 1)
	if err != nil {
		t.Fatalf("retransmitted request rejected: %v", err)
	}
	if !v.SigCached {
		t.Fatal("retransmission not served from cache")
	}
	if h, m := pre.Cache().Stats(); h != 1 || m != 1 {
		t.Fatalf("after retransmit: hits=%d misses=%d, want 1/1", h, m)
	}
	if hits.Value() != 1 || misses.Value() != 1 {
		t.Fatalf("registry counters hits=%d misses=%d, want 1/1", hits.Value(), misses.Value())
	}
}

// TestPropagateSharesClientSigVerdict pins the point of the cache in RBFT:
// the same request arrives once per protocol instance (client NIC, then
// wrapped in PROPAGATEs), and only the first copy pays the signature check.
func TestPropagateSharesClientSigVerdict(t *testing.T) {
	ks := testKeys()
	pre := newPreverifier(ks, 16)
	req := signedRequest(ks, 2, 7, []byte("shared"))
	if _, err := pre.PreverifyClient(req, 2); err != nil {
		t.Fatalf("client copy rejected: %v", err)
	}
	v, err := pre.PreverifyNode(propagateOf(ks, 1, req), 1)
	if err != nil {
		t.Fatalf("propagated copy rejected: %v", err)
	}
	if h, m := pre.Cache().Stats(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (propagate served from cache)", h, m)
	}
	if v.From != 1 || v.FromClient {
		t.Fatalf("propagate attributed to %+v, want node 1", v)
	}
}

// TestTamperedRequestMissesCacheAndIsRejected is the security property of
// content-keyed caching: after a valid verdict is cached, any mutation of the
// signed body or the signature changes the cache key, so the stale "valid"
// verdict can never be replayed onto tampered bytes — the tampered copy gets
// a full verification and is rejected.
func TestTamperedRequestMissesCacheAndIsRejected(t *testing.T) {
	ks := testKeys()
	pre := newPreverifier(ks, 16)
	req := signedRequest(ks, 1, 3, []byte("genuine"))
	if _, err := pre.PreverifyClient(req, 1); err != nil {
		t.Fatalf("genuine request rejected: %v", err)
	}

	// A faulty node alters the operation inside its PROPAGATE but keeps the
	// original client signature; its own MAC over the wrapper is valid.
	tamperedOp := *req
	tamperedOp.Op = []byte("Genuine")
	tamperedOp.Sig = append([]byte(nil), req.Sig...)
	if _, err := pre.PreverifyNode(propagateOf(ks, 1, &tamperedOp), 1); FailKindOf(err) != FailBadSig {
		t.Fatalf("tampered op accepted or misclassified: %v", err)
	}

	// A tampered signature with a freshly minted MAC (a faulty client) must
	// likewise miss the cache and fail the real check.
	tamperedSig := *req
	tamperedSig.Sig = append([]byte(nil), req.Sig...)
	tamperedSig.Sig[0] ^= 0x01
	tamperedSig.Auth = ks.ClientRing(1).AuthenticatorForNodes(testN, tamperedSig.Body())
	if _, err := pre.PreverifyClient(&tamperedSig, 1); FailKindOf(err) != FailBadSig {
		t.Fatalf("tampered sig accepted or misclassified: %v", err)
	}

	if h, m := pre.Cache().Stats(); h != 0 || m != 3 {
		t.Fatalf("hits=%d misses=%d, want 0/3 (both tampered copies must miss)", h, m)
	}
}

// TestBadSignatureVerdictCached checks negative caching: a retransmitted
// bad-signature request is rejected again from cache, without paying a second
// signature verification.
func TestBadSignatureVerdictCached(t *testing.T) {
	ks := testKeys()
	pre := newPreverifier(ks, 16)
	req := signedRequest(ks, 1, 4, []byte("bad"))
	req.Sig[1] ^= 0x80
	req.Auth = ks.ClientRing(1).AuthenticatorForNodes(testN, req.Body())
	for i, wantHits := range []uint64{0, 1} {
		if _, err := pre.PreverifyClient(req, 1); FailKindOf(err) != FailBadSig {
			t.Fatalf("attempt %d: bad signature accepted or misclassified: %v", i, err)
		}
		if h, _ := pre.Cache().Stats(); h != wantHits {
			t.Fatalf("attempt %d: hits=%d, want %d", i, h, wantHits)
		}
	}
}

// TestVerifyCacheEviction checks the FIFO bound: once capacity is exceeded
// the oldest verdict is evicted and must be re-verified, while newer entries
// stay resident.
func TestVerifyCacheEviction(t *testing.T) {
	ks := testKeys()
	pre := newPreverifier(ks, 2)
	reqs := make([]*Request, 3)
	for i := range reqs {
		reqs[i] = signedRequest(ks, 1, types.RequestID(10+i), []byte{byte(i)})
		if _, err := pre.PreverifyClient(reqs[i], 1); err != nil {
			t.Fatalf("request %d rejected: %v", i, err)
		}
	}
	// reqs[0] was evicted by reqs[2]; reqs[2] is still resident.
	v, err := pre.PreverifyClient(reqs[0], 1)
	if err != nil {
		t.Fatalf("evicted request rejected on re-verify: %v", err)
	}
	if v.SigCached {
		t.Fatal("evicted verdict still served from cache")
	}
	v, err = pre.PreverifyClient(reqs[2], 1)
	if err != nil {
		t.Fatalf("resident request rejected: %v", err)
	}
	if !v.SigCached {
		t.Fatal("resident verdict not served from cache")
	}
}
