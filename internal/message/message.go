// Package message defines every RBFT wire message and its binary encoding.
//
// Each message type carries its own authentication material (a signature, a
// single MAC, or a MAC authenticator with one entry per node). Authentication
// always covers the message body — the encoding of every field except the
// authentication material itself — which the Body method exposes so senders
// can authenticate and receivers can verify without re-implementing the
// codec.
package message

import (
	"rbft/internal/crypto"
	"rbft/internal/types"
)

// Type discriminates wire messages.
type Type uint8

// Wire message types.
const (
	TypeRequest Type = iota + 1
	TypePropagate
	TypePrePrepare
	TypePrepare
	TypeCommit
	TypeReply
	TypeInstanceChange
	TypeViewChange
	TypeNewView
	TypeCheckpoint
	TypeInvalid // deliberately malformed traffic used by flooding attackers
)

var typeNames = map[Type]string{
	TypeRequest:        "REQUEST",
	TypePropagate:      "PROPAGATE",
	TypePrePrepare:     "PRE-PREPARE",
	TypePrepare:        "PREPARE",
	TypeCommit:         "COMMIT",
	TypeReply:          "REPLY",
	TypeInstanceChange: "INSTANCE-CHANGE",
	TypeViewChange:     "VIEW-CHANGE",
	TypeNewView:        "NEW-VIEW",
	TypeCheckpoint:     "CHECKPOINT",
	TypeInvalid:        "INVALID",
	TypeFetch:          "FETCH",
	TypeFetchResp:      "FETCH-RESP",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "UNKNOWN"
}

// Message is implemented by every wire message.
type Message interface {
	// MsgType returns the wire type tag.
	MsgType() Type
	// Marshal appends the full wire encoding (type tag, body,
	// authentication material) to dst and returns the result.
	Marshal(dst []byte) []byte
	// Body returns the authenticated portion of the encoding: type tag and
	// all fields except the authentication material.
	Body() []byte
}

// Request is the client's signed request: operation o, request id rid, client
// id c, signed with the client's key and wrapped in a MAC authenticator for
// all nodes.
type Request struct {
	Client types.ClientID
	ID     types.RequestID
	Op     []byte

	Sig  []byte
	Auth crypto.Authenticator
}

var _ Message = (*Request)(nil)

// MsgType implements Message.
func (m *Request) MsgType() Type { return TypeRequest }

// Ref returns the ordering identifier of the request.
func (m *Request) Ref() types.RequestRef {
	return types.RequestRef{Client: m.Client, ID: m.ID, Digest: m.OpDigest()}
}

// OpDigest hashes the request operation together with its origin, binding the
// digest to the (client, id) pair.
func (m *Request) OpDigest() types.Digest {
	var hdr [16]byte
	putU64(hdr[0:], uint64(m.Client))
	putU64(hdr[8:], uint64(m.ID))
	buf := make([]byte, 0, 16+len(m.Op))
	buf = append(buf, hdr[:]...)
	buf = append(buf, m.Op...)
	return crypto.Digest(buf)
}

// SignedBody returns the portion of the request covered by the client
// signature (everything except signature and authenticator).
func (m *Request) SignedBody() []byte {
	var w writer
	w.u8(uint8(TypeRequest))
	w.u64(uint64(m.Client))
	w.u64(uint64(m.ID))
	w.bytes(m.Op)
	return w.b
}

// Body implements Message. The MAC authenticator covers the signed body plus
// the signature, so a tampered signature is caught at MAC cost.
func (m *Request) Body() []byte {
	var w writer
	w.b = m.SignedBody()
	w.bytes(m.Sig)
	return w.b
}

// Marshal implements Message.
func (m *Request) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.auth(m.Auth)
	return w.b
}

// Propagate is a node's forwarding of a verified client request to all other
// nodes, authenticated with a MAC authenticator.
type Propagate struct {
	Req  Request // embedded request (with its client signature, no client auth)
	Node types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Propagate)(nil)

// MsgType implements Message.
func (m *Propagate) MsgType() Type { return TypePropagate }

// Body implements Message.
func (m *Propagate) Body() []byte {
	var w writer
	w.u8(uint8(TypePropagate))
	w.u64(uint64(m.Node))
	inner := m.Req.SignedBody()
	var iw writer
	iw.b = inner
	iw.bytes(m.Req.Sig)
	w.bytes(iw.b)
	return w.b
}

// Marshal implements Message.
func (m *Propagate) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.auth(m.Auth)
	return w.b
}

// PrePrepare is the ordering proposal from an instance's primary. It assigns
// sequence number Seq in view View to a batch of request references.
type PrePrepare struct {
	Instance types.InstanceID
	View     types.View
	Seq      types.SeqNum
	Batch    []types.RequestRef
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*PrePrepare)(nil)

// MsgType implements Message.
func (m *PrePrepare) MsgType() Type { return TypePrePrepare }

// BatchDigest hashes the batch contents, binding instance, view and sequence
// number.
func (m *PrePrepare) BatchDigest() types.Digest {
	var w writer
	w.u64(uint64(m.Instance))
	w.u64(uint64(m.View))
	w.u64(uint64(m.Seq))
	w.refs(m.Batch)
	return crypto.Digest(w.b)
}

// Body implements Message.
func (m *PrePrepare) Body() []byte {
	var w writer
	w.u8(uint8(TypePrePrepare))
	w.u64(uint64(m.Instance))
	w.u64(uint64(m.View))
	w.u64(uint64(m.Seq))
	w.u64(uint64(m.Node))
	w.refs(m.Batch)
	return w.b
}

// Marshal implements Message.
func (m *PrePrepare) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.auth(m.Auth)
	return w.b
}

// Prepare is a non-primary replica's echo of a PRE-PREPARE.
type Prepare struct {
	Instance types.InstanceID
	View     types.View
	Seq      types.SeqNum
	Digest   types.Digest // batch digest
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Prepare)(nil)

// MsgType implements Message.
func (m *Prepare) MsgType() Type { return TypePrepare }

// Body implements Message.
func (m *Prepare) Body() []byte {
	return phaseBody(TypePrepare, m.Instance, m.View, m.Seq, m.Digest, m.Node)
}

// Marshal implements Message.
func (m *Prepare) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.auth(m.Auth)
	return w.b
}

// Commit is the third-phase message: the sender has collected a prepared
// certificate for (view, seq, digest).
type Commit struct {
	Instance types.InstanceID
	View     types.View
	Seq      types.SeqNum
	Digest   types.Digest
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Commit)(nil)

// MsgType implements Message.
func (m *Commit) MsgType() Type { return TypeCommit }

// Body implements Message.
func (m *Commit) Body() []byte {
	return phaseBody(TypeCommit, m.Instance, m.View, m.Seq, m.Digest, m.Node)
}

// Marshal implements Message.
func (m *Commit) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.auth(m.Auth)
	return w.b
}

func phaseBody(t Type, inst types.InstanceID, v types.View, n types.SeqNum, d types.Digest, node types.NodeID) []byte {
	var w writer
	w.u8(uint8(t))
	w.u64(uint64(inst))
	w.u64(uint64(v))
	w.u64(uint64(n))
	w.digest(d)
	w.u64(uint64(node))
	return w.b
}

// Reply carries the execution result back to the client, authenticated with a
// single node-to-client MAC.
type Reply struct {
	Client types.ClientID
	ID     types.RequestID
	Result []byte
	Node   types.NodeID

	MAC crypto.MAC
}

var _ Message = (*Reply)(nil)

// MsgType implements Message.
func (m *Reply) MsgType() Type { return TypeReply }

// Body implements Message.
func (m *Reply) Body() []byte {
	var w writer
	w.u8(uint8(TypeReply))
	w.u64(uint64(m.Client))
	w.u64(uint64(m.ID))
	w.u64(uint64(m.Node))
	w.bytes(m.Result)
	return w.b
}

// Marshal implements Message.
func (m *Reply) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.b = append(w.b, m.MAC[:]...)
	return w.b
}

// InstanceChange is a node's vote that the master instance's primary is
// malicious. CPI uniquely identifies the protocol-instance-change round.
type InstanceChange struct {
	CPI  uint64
	Node types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*InstanceChange)(nil)

// MsgType implements Message.
func (m *InstanceChange) MsgType() Type { return TypeInstanceChange }

// Body implements Message.
func (m *InstanceChange) Body() []byte {
	var w writer
	w.u8(uint8(TypeInstanceChange))
	w.u64(m.CPI)
	w.u64(uint64(m.Node))
	return w.b
}

// Marshal implements Message.
func (m *InstanceChange) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.auth(m.Auth)
	return w.b
}

// PreparedProof is one prepared-but-possibly-uncommitted entry carried in a
// VIEW-CHANGE so the new primary can re-propose it.
type PreparedProof struct {
	Seq    types.SeqNum
	View   types.View // view in which it prepared
	Digest types.Digest
	Batch  []types.RequestRef
}

// ViewChange is a replica's signed report of its prepared state when moving
// to NewView. Signed (not MAC'd) because it is relayed inside NEW-VIEW.
type ViewChange struct {
	Instance  types.InstanceID
	NewView   types.View
	StableSeq types.SeqNum // last stable checkpoint sequence
	Prepared  []PreparedProof
	Node      types.NodeID

	Sig []byte
}

var _ Message = (*ViewChange)(nil)

// MsgType implements Message.
func (m *ViewChange) MsgType() Type { return TypeViewChange }

// Body implements Message.
func (m *ViewChange) Body() []byte {
	var w writer
	w.u8(uint8(TypeViewChange))
	w.u64(uint64(m.Instance))
	w.u64(uint64(m.NewView))
	w.u64(uint64(m.StableSeq))
	w.u64(uint64(m.Node))
	w.u32(uint32(len(m.Prepared)))
	for _, p := range m.Prepared {
		w.u64(uint64(p.Seq))
		w.u64(uint64(p.View))
		w.digest(p.Digest)
		w.refs(p.Batch)
	}
	return w.b
}

// Marshal implements Message.
func (m *ViewChange) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.bytes(m.Sig)
	return w.b
}

// NewView is the new primary's installation message for a view: the 2f+1
// VIEW-CHANGE proofs it collected and the PRE-PREPAREs it re-issues for
// prepared-but-uncommitted sequence numbers.
type NewView struct {
	Instance    types.InstanceID
	View        types.View
	ViewChanges []ViewChange
	PrePrepares []PrePrepare
	Node        types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*NewView)(nil)

// MsgType implements Message.
func (m *NewView) MsgType() Type { return TypeNewView }

// Body implements Message.
func (m *NewView) Body() []byte {
	var w writer
	w.u8(uint8(TypeNewView))
	w.u64(uint64(m.Instance))
	w.u64(uint64(m.View))
	w.u64(uint64(m.Node))
	w.u32(uint32(len(m.ViewChanges)))
	for i := range m.ViewChanges {
		w.bytes(m.ViewChanges[i].Marshal(nil))
	}
	w.u32(uint32(len(m.PrePrepares)))
	for i := range m.PrePrepares {
		w.bytes(m.PrePrepares[i].Marshal(nil))
	}
	return w.b
}

// Marshal implements Message.
func (m *NewView) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.auth(m.Auth)
	return w.b
}

// Checkpoint advertises a replica's ordering-log digest at sequence Seq so
// replicas can establish stable checkpoints and garbage-collect their logs.
type Checkpoint struct {
	Instance types.InstanceID
	Seq      types.SeqNum
	Digest   types.Digest
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Checkpoint)(nil)

// MsgType implements Message.
func (m *Checkpoint) MsgType() Type { return TypeCheckpoint }

// Body implements Message.
func (m *Checkpoint) Body() []byte {
	var w writer
	w.u8(uint8(TypeCheckpoint))
	w.u64(uint64(m.Instance))
	w.u64(uint64(m.Seq))
	w.digest(m.Digest)
	w.u64(uint64(m.Node))
	return w.b
}

// Marshal implements Message.
func (m *Checkpoint) Marshal(dst []byte) []byte {
	var w writer
	w.b = append(dst, m.Body()...)
	w.auth(m.Auth)
	return w.b
}

// Invalid is a deliberately garbage message used by the attack harness to
// model flooding with unverifiable traffic of a chosen size.
type Invalid struct {
	Node    types.NodeID
	Padding []byte
}

var _ Message = (*Invalid)(nil)

// MsgType implements Message.
func (m *Invalid) MsgType() Type { return TypeInvalid }

// Body implements Message.
func (m *Invalid) Body() []byte {
	var w writer
	w.u8(uint8(TypeInvalid))
	w.u64(uint64(m.Node))
	w.bytes(m.Padding)
	return w.b
}

// Marshal implements Message.
func (m *Invalid) Marshal(dst []byte) []byte {
	return append(dst, m.Body()...)
}
