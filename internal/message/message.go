// Package message defines every RBFT wire message and its binary encoding.
//
// Each message type carries its own authentication material (a signature, a
// single MAC, or a MAC authenticator with one entry per node). Authentication
// always covers the message body — the encoding of every field except the
// authentication material itself — which the Body method exposes so senders
// can authenticate and receivers can verify without re-implementing the
// codec.
//
// Encoding is allocation-disciplined: every message knows its exact encoded
// length (EncodedSize) and Marshal appends in place, so marshalling into a
// buffer with sufficient capacity performs zero allocations. The egress hot
// path relies on this via the pooled buffers in encode.go.
package message

import (
	"rbft/internal/crypto"
	"rbft/internal/types"
)

// Type discriminates wire messages.
type Type uint8

// Wire message types.
const (
	TypeRequest Type = iota + 1
	TypePropagate
	TypePrePrepare
	TypePrepare
	TypeCommit
	TypeReply
	TypeInstanceChange
	TypeViewChange
	TypeNewView
	TypeCheckpoint
	TypeInvalid // deliberately malformed traffic used by flooding attackers
)

// TypeReadRequest is the wire tag of a read-only request (docs/CLIENTS.md):
// the same Request structure, flagged for the speculative read fast path.
// The tag is part of the signed body, so a read-only flag cannot be added or
// stripped without invalidating the client signature — and ordinary requests
// keep their historical byte encoding exactly.
const TypeReadRequest Type = 12

var typeNames = map[Type]string{
	TypeRequest:        "REQUEST",
	TypeReadRequest:    "READ-REQUEST",
	TypePropagate:      "PROPAGATE",
	TypePrePrepare:     "PRE-PREPARE",
	TypePrepare:        "PREPARE",
	TypeCommit:         "COMMIT",
	TypeReply:          "REPLY",
	TypeInstanceChange: "INSTANCE-CHANGE",
	TypeViewChange:     "VIEW-CHANGE",
	TypeNewView:        "NEW-VIEW",
	TypeCheckpoint:     "CHECKPOINT",
	TypeInvalid:        "INVALID",
	TypeFetch:          "FETCH",
	TypeFetchResp:      "FETCH-RESP",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "UNKNOWN"
}

// Message is implemented by every wire message.
type Message interface {
	// MsgType returns the wire type tag.
	MsgType() Type
	// Marshal appends the full wire encoding (type tag, body,
	// authentication material) to dst and returns the result.
	Marshal(dst []byte) []byte
	// Body returns the authenticated portion of the encoding: type tag and
	// all fields except the authentication material.
	Body() []byte
	// EncodedSize returns the exact length Marshal will append: the size
	// hint that lets callers marshal without growing the destination.
	EncodedSize() int
}

// Request is the client's signed request: operation o, request id rid, client
// id c, signed with the client's key and wrapped in a MAC authenticator for
// all nodes.
type Request struct {
	Client types.ClientID
	ID     types.RequestID
	Op     []byte
	// ReadOnly flags the request for the speculative read fast path: nodes
	// answer it from local state without ordering, and the client accepts
	// only on a 2f+1 read quorum of matching replies (docs/CLIENTS.md). The
	// flag is carried in the wire tag, inside the signed body.
	ReadOnly bool

	Sig  []byte
	Auth crypto.Authenticator
}

var _ Message = (*Request)(nil)

// tag returns the wire tag encoding the read-only flag.
func (m *Request) tag() Type {
	if m.ReadOnly {
		return TypeReadRequest
	}
	return TypeRequest
}

// MsgType implements Message.
func (m *Request) MsgType() Type { return m.tag() }

// Ref returns the ordering identifier of the request.
func (m *Request) Ref() types.RequestRef {
	return types.RequestRef{Client: m.Client, ID: m.ID, Digest: m.OpDigest()}
}

// OpDigest hashes the request operation together with its origin, binding the
// digest to the (client, id) pair.
func (m *Request) OpDigest() types.Digest {
	var hdr [16]byte
	putU64(hdr[0:], uint64(m.Client))
	putU64(hdr[8:], uint64(m.ID))
	buf := make([]byte, 0, 16+len(m.Op))
	buf = append(buf, hdr[:]...)
	buf = append(buf, m.Op...)
	return crypto.Digest(buf)
}

func (m *Request) signedBodySize() int { return 1 + 8 + 8 + 4 + len(m.Op) }

func (m *Request) appendSignedBody(b []byte) []byte {
	b = appendU8(b, uint8(m.tag()))
	b = appendU64(b, uint64(m.Client))
	b = appendU64(b, uint64(m.ID))
	return appendBytes(b, m.Op)
}

// SignedBody returns the portion of the request covered by the client
// signature (everything except signature and authenticator).
func (m *Request) SignedBody() []byte {
	return m.appendSignedBody(make([]byte, 0, m.signedBodySize()))
}

func (m *Request) bodySize() int { return m.signedBodySize() + 4 + len(m.Sig) }

func (m *Request) appendBody(b []byte) []byte {
	b = m.appendSignedBody(b)
	return appendBytes(b, m.Sig)
}

// Body implements Message. The MAC authenticator covers the signed body plus
// the signature, so a tampered signature is caught at MAC cost.
func (m *Request) Body() []byte { return m.appendBody(make([]byte, 0, m.bodySize())) }

// EncodedSize implements Message.
func (m *Request) EncodedSize() int { return m.bodySize() + authSize(m.Auth) }

// Marshal implements Message.
func (m *Request) Marshal(dst []byte) []byte {
	return appendAuth(m.appendBody(dst), m.Auth)
}

// Propagate is a node's forwarding of a verified client request to all other
// nodes, authenticated with a MAC authenticator.
type Propagate struct {
	Req  Request // embedded request (with its client signature, no client auth)
	Node types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Propagate)(nil)

// MsgType implements Message.
func (m *Propagate) MsgType() Type { return TypePropagate }

// innerSize is the length of the embedded request encoding (signed body plus
// signature, no client authenticator).
func (m *Propagate) innerSize() int { return m.Req.signedBodySize() + 4 + len(m.Req.Sig) }

func (m *Propagate) bodySize() int { return 1 + 8 + 4 + m.innerSize() }

func (m *Propagate) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypePropagate))
	b = appendU64(b, uint64(m.Node))
	b = appendU32(b, uint32(m.innerSize()))
	b = m.Req.appendSignedBody(b)
	return appendBytes(b, m.Req.Sig)
}

// Body implements Message.
func (m *Propagate) Body() []byte { return m.appendBody(make([]byte, 0, m.bodySize())) }

// EncodedSize implements Message.
func (m *Propagate) EncodedSize() int { return m.bodySize() + authSize(m.Auth) }

// Marshal implements Message.
func (m *Propagate) Marshal(dst []byte) []byte {
	return appendAuth(m.appendBody(dst), m.Auth)
}

// PrePrepare is the ordering proposal from an instance's primary. It assigns
// sequence number Seq in view View to a batch of request references.
type PrePrepare struct {
	Instance types.InstanceID
	View     types.View
	Seq      types.SeqNum
	Batch    []types.RequestRef
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*PrePrepare)(nil)

// MsgType implements Message.
func (m *PrePrepare) MsgType() Type { return TypePrePrepare }

// BatchDigest hashes the batch contents, binding instance, view and sequence
// number.
func (m *PrePrepare) BatchDigest() types.Digest {
	b := make([]byte, 0, 8*3+refsSize(m.Batch))
	b = appendU64(b, uint64(m.Instance))
	b = appendU64(b, uint64(m.View))
	b = appendU64(b, uint64(m.Seq))
	b = appendRefs(b, m.Batch)
	return crypto.Digest(b)
}

func (m *PrePrepare) bodySize() int { return 1 + 8*4 + refsSize(m.Batch) }

func (m *PrePrepare) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypePrePrepare))
	b = appendU64(b, uint64(m.Instance))
	b = appendU64(b, uint64(m.View))
	b = appendU64(b, uint64(m.Seq))
	b = appendU64(b, uint64(m.Node))
	return appendRefs(b, m.Batch)
}

// Body implements Message.
func (m *PrePrepare) Body() []byte { return m.appendBody(make([]byte, 0, m.bodySize())) }

// EncodedSize implements Message.
func (m *PrePrepare) EncodedSize() int { return m.bodySize() + authSize(m.Auth) }

// Marshal implements Message.
func (m *PrePrepare) Marshal(dst []byte) []byte {
	return appendAuth(m.appendBody(dst), m.Auth)
}

// Prepare is a non-primary replica's echo of a PRE-PREPARE.
type Prepare struct {
	Instance types.InstanceID
	View     types.View
	Seq      types.SeqNum
	Digest   types.Digest // batch digest
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Prepare)(nil)

// MsgType implements Message.
func (m *Prepare) MsgType() Type { return TypePrepare }

// Body implements Message.
func (m *Prepare) Body() []byte {
	return appendPhaseBody(make([]byte, 0, phaseBodySize), TypePrepare, m.Instance, m.View, m.Seq, m.Digest, m.Node)
}

// EncodedSize implements Message.
func (m *Prepare) EncodedSize() int { return phaseBodySize + authSize(m.Auth) }

// Marshal implements Message.
func (m *Prepare) Marshal(dst []byte) []byte {
	b := appendPhaseBody(dst, TypePrepare, m.Instance, m.View, m.Seq, m.Digest, m.Node)
	return appendAuth(b, m.Auth)
}

// Commit is the third-phase message: the sender has collected a prepared
// certificate for (view, seq, digest).
type Commit struct {
	Instance types.InstanceID
	View     types.View
	Seq      types.SeqNum
	Digest   types.Digest
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Commit)(nil)

// MsgType implements Message.
func (m *Commit) MsgType() Type { return TypeCommit }

// Body implements Message.
func (m *Commit) Body() []byte {
	return appendPhaseBody(make([]byte, 0, phaseBodySize), TypeCommit, m.Instance, m.View, m.Seq, m.Digest, m.Node)
}

// EncodedSize implements Message.
func (m *Commit) EncodedSize() int { return phaseBodySize + authSize(m.Auth) }

// Marshal implements Message.
func (m *Commit) Marshal(dst []byte) []byte {
	b := appendPhaseBody(dst, TypeCommit, m.Instance, m.View, m.Seq, m.Digest, m.Node)
	return appendAuth(b, m.Auth)
}

// phaseBodySize is the fixed body length of PREPARE and COMMIT.
const phaseBodySize = 1 + 8 + 8 + 8 + types.DigestSize + 8

func appendPhaseBody(b []byte, t Type, inst types.InstanceID, v types.View, n types.SeqNum, d types.Digest, node types.NodeID) []byte {
	b = appendU8(b, uint8(t))
	b = appendU64(b, uint64(inst))
	b = appendU64(b, uint64(v))
	b = appendU64(b, uint64(n))
	b = appendDigest(b, d)
	return appendU64(b, uint64(node))
}

// Reply carries the execution result back to the client, authenticated with a
// single node-to-client MAC.
type Reply struct {
	Client types.ClientID
	ID     types.RequestID
	Result []byte
	Node   types.NodeID

	MAC crypto.MAC
}

var _ Message = (*Reply)(nil)

// MsgType implements Message.
func (m *Reply) MsgType() Type { return TypeReply }

func (m *Reply) bodySize() int { return 1 + 8 + 8 + 8 + 4 + len(m.Result) }

func (m *Reply) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypeReply))
	b = appendU64(b, uint64(m.Client))
	b = appendU64(b, uint64(m.ID))
	b = appendU64(b, uint64(m.Node))
	return appendBytes(b, m.Result)
}

// Body implements Message.
func (m *Reply) Body() []byte { return m.appendBody(make([]byte, 0, m.bodySize())) }

// EncodedSize implements Message.
func (m *Reply) EncodedSize() int { return m.bodySize() + crypto.MACSize }

// Marshal implements Message.
func (m *Reply) Marshal(dst []byte) []byte {
	b := m.appendBody(dst)
	return append(b, m.MAC[:]...)
}

// InstanceChange is a node's vote that the master instance's primary is
// malicious. CPI uniquely identifies the protocol-instance-change round.
type InstanceChange struct {
	CPI  uint64
	Node types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*InstanceChange)(nil)

// MsgType implements Message.
func (m *InstanceChange) MsgType() Type { return TypeInstanceChange }

func (m *InstanceChange) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypeInstanceChange))
	b = appendU64(b, m.CPI)
	return appendU64(b, uint64(m.Node))
}

// Body implements Message.
func (m *InstanceChange) Body() []byte { return m.appendBody(make([]byte, 0, 1+8+8)) }

// EncodedSize implements Message.
func (m *InstanceChange) EncodedSize() int { return 1 + 8 + 8 + authSize(m.Auth) }

// Marshal implements Message.
func (m *InstanceChange) Marshal(dst []byte) []byte {
	return appendAuth(m.appendBody(dst), m.Auth)
}

// PreparedProof is one prepared-but-possibly-uncommitted entry carried in a
// VIEW-CHANGE so the new primary can re-propose it.
type PreparedProof struct {
	Seq    types.SeqNum
	View   types.View // view in which it prepared
	Digest types.Digest
	Batch  []types.RequestRef
}

// ViewChange is a replica's signed report of its prepared state when moving
// to NewView. Signed (not MAC'd) because it is relayed inside NEW-VIEW.
type ViewChange struct {
	Instance  types.InstanceID
	NewView   types.View
	StableSeq types.SeqNum // last stable checkpoint sequence
	Prepared  []PreparedProof
	Node      types.NodeID

	Sig []byte
}

var _ Message = (*ViewChange)(nil)

// MsgType implements Message.
func (m *ViewChange) MsgType() Type { return TypeViewChange }

func (m *ViewChange) bodySize() int {
	n := 1 + 8*4 + 4
	for i := range m.Prepared {
		n += 8 + 8 + types.DigestSize + refsSize(m.Prepared[i].Batch)
	}
	return n
}

func (m *ViewChange) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypeViewChange))
	b = appendU64(b, uint64(m.Instance))
	b = appendU64(b, uint64(m.NewView))
	b = appendU64(b, uint64(m.StableSeq))
	b = appendU64(b, uint64(m.Node))
	b = appendU32(b, uint32(len(m.Prepared)))
	for i := range m.Prepared {
		p := &m.Prepared[i]
		b = appendU64(b, uint64(p.Seq))
		b = appendU64(b, uint64(p.View))
		b = appendDigest(b, p.Digest)
		b = appendRefs(b, p.Batch)
	}
	return b
}

// Body implements Message.
func (m *ViewChange) Body() []byte { return m.appendBody(make([]byte, 0, m.bodySize())) }

// EncodedSize implements Message.
func (m *ViewChange) EncodedSize() int { return m.bodySize() + 4 + len(m.Sig) }

// Marshal implements Message.
func (m *ViewChange) Marshal(dst []byte) []byte {
	return appendBytes(m.appendBody(dst), m.Sig)
}

// NewView is the new primary's installation message for a view: the 2f+1
// VIEW-CHANGE proofs it collected and the PRE-PREPAREs it re-issues for
// prepared-but-uncommitted sequence numbers.
type NewView struct {
	Instance    types.InstanceID
	View        types.View
	ViewChanges []ViewChange
	PrePrepares []PrePrepare
	Node        types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*NewView)(nil)

// MsgType implements Message.
func (m *NewView) MsgType() Type { return TypeNewView }

func (m *NewView) bodySize() int {
	n := 1 + 8*3 + 4 + 4
	for i := range m.ViewChanges {
		n += 4 + m.ViewChanges[i].EncodedSize()
	}
	for i := range m.PrePrepares {
		n += 4 + m.PrePrepares[i].EncodedSize()
	}
	return n
}

func (m *NewView) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypeNewView))
	b = appendU64(b, uint64(m.Instance))
	b = appendU64(b, uint64(m.View))
	b = appendU64(b, uint64(m.Node))
	b = appendU32(b, uint32(len(m.ViewChanges)))
	for i := range m.ViewChanges {
		b = appendU32(b, uint32(m.ViewChanges[i].EncodedSize()))
		b = m.ViewChanges[i].Marshal(b)
	}
	b = appendU32(b, uint32(len(m.PrePrepares)))
	for i := range m.PrePrepares {
		b = appendU32(b, uint32(m.PrePrepares[i].EncodedSize()))
		b = m.PrePrepares[i].Marshal(b)
	}
	return b
}

// Body implements Message.
func (m *NewView) Body() []byte { return m.appendBody(make([]byte, 0, m.bodySize())) }

// EncodedSize implements Message.
func (m *NewView) EncodedSize() int { return m.bodySize() + authSize(m.Auth) }

// Marshal implements Message.
func (m *NewView) Marshal(dst []byte) []byte {
	return appendAuth(m.appendBody(dst), m.Auth)
}

// Checkpoint advertises a replica's ordering-log digest at sequence Seq so
// replicas can establish stable checkpoints and garbage-collect their logs.
type Checkpoint struct {
	Instance types.InstanceID
	Seq      types.SeqNum
	Digest   types.Digest
	Node     types.NodeID

	Auth crypto.Authenticator
}

var _ Message = (*Checkpoint)(nil)

// MsgType implements Message.
func (m *Checkpoint) MsgType() Type { return TypeCheckpoint }

// checkpointBodySize is the fixed body length of CHECKPOINT.
const checkpointBodySize = 1 + 8 + 8 + types.DigestSize + 8

func (m *Checkpoint) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypeCheckpoint))
	b = appendU64(b, uint64(m.Instance))
	b = appendU64(b, uint64(m.Seq))
	b = appendDigest(b, m.Digest)
	return appendU64(b, uint64(m.Node))
}

// Body implements Message.
func (m *Checkpoint) Body() []byte { return m.appendBody(make([]byte, 0, checkpointBodySize)) }

// EncodedSize implements Message.
func (m *Checkpoint) EncodedSize() int { return checkpointBodySize + authSize(m.Auth) }

// Marshal implements Message.
func (m *Checkpoint) Marshal(dst []byte) []byte {
	return appendAuth(m.appendBody(dst), m.Auth)
}

// Invalid is a deliberately garbage message used by the attack harness to
// model flooding with unverifiable traffic of a chosen size.
type Invalid struct {
	Node    types.NodeID
	Padding []byte
}

var _ Message = (*Invalid)(nil)

// MsgType implements Message.
func (m *Invalid) MsgType() Type { return TypeInvalid }

func (m *Invalid) appendBody(b []byte) []byte {
	b = appendU8(b, uint8(TypeInvalid))
	b = appendU64(b, uint64(m.Node))
	return appendBytes(b, m.Padding)
}

// Body implements Message.
func (m *Invalid) Body() []byte { return m.appendBody(make([]byte, 0, m.EncodedSize())) }

// EncodedSize implements Message.
func (m *Invalid) EncodedSize() int { return 1 + 8 + 4 + len(m.Padding) }

// Marshal implements Message.
func (m *Invalid) Marshal(dst []byte) []byte {
	return m.appendBody(dst)
}
