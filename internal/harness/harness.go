// Package harness regenerates every table and figure of the RBFT paper's
// evaluation (§III and §VI). Each experiment has one entry point returning a
// typed result with a text rendering that mirrors the paper's rows/series.
//
// Experiment index (see DESIGN.md):
//
//	Table1    — max throughput degradation of Prime / Aardvark / Spinning
//	Figure1   — Prime relative throughput under attack vs request size
//	Figure2   — Aardvark, same
//	Figure3   — Spinning, same
//	Figure7   — latency vs throughput, fault-free, all five systems
//	Figure8   — RBFT under worst-attack-1 (f=1 and f=2)
//	Figure9   — per-node monitor readings under worst-attack-1
//	Figure10  — RBFT under worst-attack-2 (f=1 and f=2)
//	Figure11  — per-node monitor readings under worst-attack-2
//	Figure12  — unfair-primary latency series with the Λ test
//	AblationOrderedPayload — ordering IDs vs full requests (§VI-B)
package harness

import (
	"time"

	"rbft/internal/monitor"
	"rbft/internal/sim"
	"rbft/internal/types"
)

// Options tune experiment scale. The zero value gives paper-scale runs; Quick
// shrinks durations for tests and smoke runs.
type Options struct {
	// Seed feeds every simulation.
	Seed int64
	// RunTime is the measured duration of each simulation run.
	RunTime time.Duration
	// Warmup precedes the measurement window.
	Warmup time.Duration
	// Sizes is the request-size sweep for the per-size figures.
	Sizes []int
	// Quick shrinks runs for CI/tests (shorter runs, fewer sizes).
	Quick bool
}

func (o Options) withDefaults() Options {
	out := o
	if out.RunTime == 0 {
		out.RunTime = 3 * time.Second
		if out.Quick {
			out.RunTime = time.Second
		}
	}
	if out.Warmup == 0 {
		out.Warmup = 400 * time.Millisecond
		if out.Quick {
			out.Warmup = 300 * time.Millisecond
		}
	}
	if len(out.Sizes) == 0 {
		out.Sizes = []int{8, 512, 1024, 2048, 4096}
		if out.Quick {
			out.Sizes = []int{8, 4096}
		}
	}
	return out
}

// Delta is the Δ threshold used in all RBFT experiments: the paper tunes it
// tightly from the observed fault-free master/backup ratio (~2% gap in
// figure 9), which is what bounds the worst-attack-2 damage to ~3%.
const Delta = 0.97

// rbftConfig builds the standard RBFT simulation configuration used across
// experiments.
func rbftConfig(f, size int, offered float64, o Options) sim.Config {
	clients := 10
	return sim.Config{
		F:            f,
		Cost:         sim.DefaultCostModel(),
		Seed:         o.Seed + 1,
		BatchSize:    64,
		BatchTimeout: 2 * time.Millisecond,
		Monitoring: monitor.Config{
			// A window long enough to hold many batches even at 4kB keeps
			// the Δ measurement's quantisation noise well under 1-Δ.
			Period:      500 * time.Millisecond,
			Delta:       Delta,
			MinRequests: 64,
		},
		Workload: sim.StaticLoad(clients, offered/float64(clients), size),
		Warmup:   o.Warmup,
	}
}

// saturationLoad approximates 80% of the RBFT cluster's capacity for a
// request size at f=1 — high enough to be "saturating" in the paper's sense
// while keeping queues stable so relative-throughput ratios are clean.
func saturationLoad(size int) float64 { return loadFor(1, size) }

// loadFor is saturationLoad scaled down for larger clusters (bigger MAC
// authenticators and more propagation traffic per request).
func loadFor(f, size int) float64 {
	// Calibrated capacities: ~33 kreq/s at 8B, ~5 kreq/s at 4kB, with the
	// size-dependent per-request cost interpolating between them.
	perReq := 30e-6 + float64(size)/1024*42e-6
	load := 0.8 / perReq
	if f > 1 {
		// Larger clusters pay more per request (wider MAC authenticators,
		// more propagation); keep the same relative headroom.
		load *= 0.6
	}
	return load
}

// dynamicWorkload builds the paper's dynamic load for a request size and
// cluster: the 50-client spike reaches about the static load level.
func dynamicWorkload(f, size int, o Options) sim.Workload {
	stepDur := o.RunTime / 9
	perClient := loadFor(f, size) / 50
	return sim.DynamicLoad(perClient, size, stepDur)
}

// runExecuted runs a simulation and returns the executed-request count on a
// designated correct node, plus the full result.
func runExecuted(cfg sim.Config, runTime time.Duration, correct types.NodeID) (int, *sim.Result) {
	res := sim.New(cfg).Run(runTime)
	return res.ExecutedPerNode[correct], res
}

// pct returns 100*a/b, guarding division by zero.
func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
