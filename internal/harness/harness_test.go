package harness

import (
	"testing"
	"time"
)

// quickOpts keeps harness tests tractable on CI hardware: one size, short
// runs. The full experiment scale runs through cmd/rbft-bench.
func quickOpts() Options {
	return Options{
		Quick:   true,
		Seed:    1,
		Sizes:   []int{8},
		RunTime: 1200 * time.Millisecond,
		Warmup:  300 * time.Millisecond,
	}
}

func TestTable1MatchesPaperOrdering(t *testing.T) {
	rows := Table1(quickOpts())
	if len(rows) != 3 {
		t.Fatalf("Table1 returned %d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Protocol] = r.MaxDegradationPct
	}
	// Paper: Prime 78%, Aardvark 87%, Spinning 99%. The ordering
	// Spinning > Aardvark > Prime must hold, with each in a plausible band.
	if !(byName["Spinning"] > byName["Aardvark"] && byName["Aardvark"] > byName["Prime"]) {
		t.Fatalf("degradation ordering wrong: %v", byName)
	}
	if byName["Spinning"] < 90 {
		t.Errorf("Spinning degradation %.1f%%, paper says 99%%", byName["Spinning"])
	}
	if byName["Aardvark"] < 70 || byName["Aardvark"] > 95 {
		t.Errorf("Aardvark degradation %.1f%%, paper says 87%%", byName["Aardvark"])
	}
	if byName["Prime"] < 55 || byName["Prime"] > 90 {
		t.Errorf("Prime degradation %.1f%%, paper says 78%%", byName["Prime"])
	}
}

func TestFigure1Shape(t *testing.T) {
	o := quickOpts()
	o.Sizes = []int{8, 4096}
	c := Figure1(o)
	if len(c.StaticPct) != 2 {
		t.Fatal("missing sizes")
	}
	// Rising with size; minimum around the paper's 22%.
	if c.StaticPct[1] <= c.StaticPct[0] {
		t.Errorf("Prime static curve must rise with size: %v", c.StaticPct)
	}
	if c.MinPct() < 10 || c.MinPct() > 40 {
		t.Errorf("Prime worst relative = %.1f%%, paper says ~22%%", c.MinPct())
	}
}

func TestFigure3Shape(t *testing.T) {
	c := Figure3(quickOpts())
	if c.StaticPct[0] > 5 {
		t.Errorf("Spinning static relative = %.1f%%, paper says ~1%%", c.StaticPct[0])
	}
	if c.DynamicPct[0] < c.StaticPct[0] {
		t.Errorf("Spinning dynamic (%.1f%%) should not be below static (%.1f%%)",
			c.DynamicPct[0], c.StaticPct[0])
	}
}

func TestFigure7CurvesWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	curves := Figure7(8, quickOpts())
	if len(curves) != 5 {
		t.Fatalf("Figure7 returned %d curves, want 5 systems", len(curves))
	}
	peaks := map[string]float64{}
	for _, c := range curves {
		if len(c.Points) == 0 {
			t.Fatalf("%s: empty curve", c.System)
		}
		for _, p := range c.Points {
			if p.LatencyMs <= 0 || p.ThroughputKreqS < 0 {
				t.Fatalf("%s: bad point %+v", c.System, p)
			}
		}
		peak := 0.0
		for _, p := range c.Points {
			if p.ThroughputKreqS > peak {
				peak = p.ThroughputKreqS
			}
		}
		peaks[c.System] = peak
	}
	// Paper fig 7a orderings: Spinning highest, Prime lowest.
	if !(peaks["Spinning"] > peaks["RBFT w/ TCP"]) {
		t.Errorf("Spinning peak (%.1f) must exceed RBFT (%.1f)", peaks["Spinning"], peaks["RBFT w/ TCP"])
	}
	if !(peaks["Prime"] < peaks["RBFT w/ TCP"]) {
		t.Errorf("Prime peak (%.1f) must trail RBFT (%.1f)", peaks["Prime"], peaks["RBFT w/ TCP"])
	}
}

func TestFigure10SmallLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	c := Figure10(1, quickOpts())
	if c.InstanceChanges != 0 {
		t.Errorf("smart worst-attack-2 was detected (%d instance changes)", c.InstanceChanges)
	}
	if min := c.MinPct(); min < 90 {
		t.Errorf("worst-attack-2 drove relative throughput to %.1f%%, paper bounds the loss at 3%%", min)
	}
}

func TestFigure12InstanceChangeOnLambda(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	r := Figure12(quickOpts())
	if len(r.Series) == 0 {
		t.Fatal("no latency series")
	}
	if r.InstanceChangeAt < 0 {
		t.Fatal("unfair primary exceeded Lambda but no instance change occurred")
	}
	if r.MaxAttackedLatency <= r.Lambda {
		t.Fatalf("attack never exceeded Lambda (max %v)", r.MaxAttackedLatency)
	}
}
