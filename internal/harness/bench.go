package harness

import (
	"time"

	"rbft/internal/sim"
	"rbft/internal/types"
)

// BenchScenario is one named benchmark configuration, exposed (rather than
// run internally) so callers can attach trace sinks to Config before
// running — e.g. rbft-bench's -trace flag wires a JSONL writer here.
type BenchScenario struct {
	Name    string
	Config  sim.Config
	RunTime time.Duration
}

// BenchResult is the machine-readable summary of one scenario run; rbft-bench
// serialises a slice of these into BENCH_sim.json for CI tracking.
type BenchResult struct {
	Scenario        string  `json:"scenario"`
	Throughput      float64 `json:"throughput_req_s"`
	P50LatencyMS    float64 `json:"p50_latency_ms"`
	P99LatencyMS    float64 `json:"p99_latency_ms"`
	InstanceChanges int     `json:"instance_changes"`
}

// BenchScenarios builds the standard benchmark suite: the fault-free
// baseline and both worst attacks, all at f=1 with small requests so the
// suite stays fast enough for a CI smoke step.
func BenchScenarios(o Options) []BenchScenario {
	o = o.withDefaults()
	const size = 8
	offered := loadFor(1, size)
	build := func(name string, install func(cfg *sim.Config, offered float64)) BenchScenario {
		cfg := rbftConfig(1, size, offered, o)
		if install != nil {
			install(&cfg, offered)
		}
		return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
	}
	return []BenchScenario{
		build("fault-free", nil),
		build("worst-attack-1", func(cfg *sim.Config, _ float64) { attack1Config(cfg) }),
		build("worst-attack-2", attack2Config),
		pipelineScenario("pipeline-serial", 1, o),
		pipelineScenario("pipeline-parallel", pipelineParallelCores, o),
		walScenario("wal-serial-fsync", sim.DurabilitySerialFsync, o),
		walScenario("wal-group-commit", sim.DurabilityGroupCommit, o),
		egressScenario("egress-per-message", 0, o),
		egressScenario("egress-coalesced", egressCoalesce, o),
		orderingScenario("ordering-master-only", types.OrderingMasterOnly, o),
		orderingScenario("ordering-multi-primary", types.OrderingMultiPrimary, o),
		execScenario("exec-serial", 0, o),
		execScenario("exec-parallel", execBenchWorkers, o),
		frontdoorScenario("frontdoor-ordered", false, o),
		frontdoorScenario("frontdoor-speculative", true, o),
	}
}

// frontdoorOfferedLoad oversubscribes the master ordering lane (~35 kreq/s
// at orderingPerRefProcess per ref) by ~2x, so the frontdoor pair measures
// ordering capacity: whatever the speculative path lifts off that lane is
// throughput won back.
const frontdoorOfferedLoad = 64_000

// frontdoorKVWorkload is the read-heavy Zipfian KV workload of the frontdoor
// bench pair: overwhelmingly GETs, as a lookup-serving front door sees. The
// mild skew keeps a hot head so speculative reads race writes on popular
// keys and the refutation fallback is actually exercised.
var frontdoorKVWorkload = sim.KVWorkload{Keys: 4096, ZipfS: 1.1, ReadFraction: 0.95}

// frontdoorScenario builds an ordering-bound read-heavy scenario: the
// per-reference ordering cost raised until the master lane is the
// bottleneck, verification pipelined onto parallel cores, and a 95%-GET KV
// workload. The pair (ordered vs speculative) quantifies what the read-only
// fast path buys: reads answered from local state on a 2f+1 read quorum
// never touch the saturated ordering lane at all.
func frontdoorScenario(name string, speculative bool, o Options) BenchScenario {
	o = o.withDefaults()
	cfg := rbftConfig(1, 8, frontdoorOfferedLoad, o)
	cfg.Cost.PerRefProcess = orderingPerRefProcess
	cfg.VerifyCores = pipelineParallelCores
	kv := frontdoorKVWorkload
	cfg.Workload.KV = &kv
	cfg.SpeculativeReads = speculative
	return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
}

// execPerRequest is the per-request application execution cost of the exec
// bench pair, raised from the default 500ns to a deliberately heavy 30µs so
// the apply stage — not ordering or verification — is the bottleneck. With
// execution bound, the pair measures what dependency-aware wave scheduling
// buys: conflict-free operations of a wave apply concurrently across
// execBenchWorkers shards, compressing the charge per wave to ceil(n/k)
// execution quanta.
const execPerRequest = 30 * time.Microsecond

// execOfferedLoad oversubscribes the serial execution capacity (~30 kreq/s
// at 30µs/request once batch and ordering overheads are counted) by ~2× so
// the pair measures execution capacity, not offered load, while staying
// under the parallel scheduler's cap.
const execOfferedLoad = 60_000

// execBenchWorkers is the worker count of the exec-parallel scenario,
// mirroring the paper's 8-core testbed nodes.
const execBenchWorkers = 8

// execKVWorkload is the conflict-light Zipfian key-value workload of the
// exec bench pair: a large key space with mild skew (a hot head that forces
// real conflict waves, a long tail that parallelises) and an even read/write
// mix so the scheduler sees both shared-read waves and writer conflicts.
var execKVWorkload = sim.KVWorkload{Keys: 8192, ZipfS: 1.1, ReadFraction: 0.5}

// execScenario builds an execution-bound scenario: per-request execution
// cost raised until the apply stage is the bottleneck, verification
// pipelined onto parallel cores so ingress is not, and a Zipfian KV
// workload so operations carry real conflict keys. The pair (serial vs
// execBenchWorkers) quantifies what the dependency-aware parallel execution
// scheduler buys over applying a committed batch one operation at a time.
func execScenario(name string, workers int, o Options) BenchScenario {
	o = o.withDefaults()
	cfg := rbftConfig(1, 8, execOfferedLoad, o)
	cfg.Cost.ExecPerRequest = execPerRequest
	cfg.VerifyCores = pipelineParallelCores
	cfg.ExecWorkers = workers
	kv := execKVWorkload
	cfg.Workload.KV = &kv
	return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
}

// orderingPerRefProcess is the per-reference ordering bookkeeping cost of the
// ordering bench pair, raised from the default 300ns to a deliberately heavy
// 30µs so the per-instance ordering core is the bottleneck (a primary's core
// pays it twice per request: once proposing, once applying). With ordering
// bound, the pair measures what partitioned multi-primary ordering buys:
// each lane carries 1/(f+1) of the load, so the per-lane core saturates at
// (f+1)× the master-only rate.
const orderingPerRefProcess = 30 * time.Microsecond

// orderingOfferedLoad oversubscribes the master-only ordering capacity
// (~35 kreq/s at 30µs/ref once batch overheads are counted) by ~2× so the
// pair measures ordering capacity, not offered load, while staying under the
// multi-primary cap.
const orderingOfferedLoad = 64_000

// orderingScenario builds an ordering-bound scenario: per-reference ordering
// cost raised until the instance cores are the bottleneck, verification
// pipelined onto parallel cores so ingress is not. The pair (master-only vs
// multi-primary) quantifies what ordering disjoint partitions on all f+1
// instances buys over funnelling every request through the master lane.
func orderingScenario(name string, mode types.OrderingMode, o Options) BenchScenario {
	o = o.withDefaults()
	cfg := rbftConfig(1, 8, orderingOfferedLoad, o)
	cfg.Cost.PerRefProcess = orderingPerRefProcess
	cfg.VerifyCores = pipelineParallelCores
	cfg.OrderingMode = mode
	return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
}

// egressPacketOverheadBytes is the modelled per-physical-frame wire overhead
// of the egress bench pair: Ethernet + IP + TCP headers plus the length
// prefix, ~66 bytes — what every protocol message pays when it travels as
// its own frame.
const egressPacketOverheadBytes = 66

// egressLinkBandwidth is the egress pair's link speed, ~16 Mbit/s. It is
// deliberately slow enough that the wire (not crypto) is the bottleneck:
// RBFT messages are ~100-200 bytes, so at this speed per-frame overhead is a
// third of every transmission and framing policy decides throughput. On the
// default Gigabit model the same workload is CPU-bound and the pair would
// measure nothing.
const egressLinkBandwidth = 2e6

// egressCoalesce is the coalescing bound of the egress-coalesced scenario,
// matching the runtime's egressMaxCoalesce.
const egressCoalesce = 64

// egressScenario builds a wire-bound scenario: the standard small-request
// workload with per-packet overhead charged and the link slowed until it is
// the bottleneck. The pair (per-message vs coalesced) quantifies what the
// frame-coalescing batch writer buys: one packet overhead per flush instead
// of one per protocol message.
func egressScenario(name string, coalesce int, o Options) BenchScenario {
	o = o.withDefaults()
	const size = 8
	cfg := rbftConfig(1, size, loadFor(1, size), o)
	cfg.Cost.PacketOverheadBytes = egressPacketOverheadBytes
	cfg.Cost.LinkBandwidth = egressLinkBandwidth
	cfg.EgressCoalesce = coalesce
	return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
}

// walFsyncLatency is the modelled device fsync latency of the WAL bench
// pair. It is deliberately a slow commodity disk (SATA SSD / HDD class):
// with one fsync per records-bearing output the device serializes the whole
// ordering pipeline, which is exactly the pathology group commit exists to
// remove.
const walFsyncLatency = 2 * time.Millisecond

// walDiskBandwidth is the WAL device's sequential write bandwidth; records
// are small, so fsync latency dominates and this mostly guards the model
// against free bulk writes.
const walDiskBandwidth = 200e6

// walScenario builds a durability-bound scenario: the standard fault-free
// workload with the modelled WAL switched on. The pair (serial fsync vs
// group commit) quantifies what batching fsyncs buys: serial fsync caps the
// node at ~1/FsyncLatency records-bearing outputs per second, while group
// commit amortises one fsync across every output of a flush interval.
func walScenario(name string, mode sim.DurabilityMode, o Options) BenchScenario {
	o = o.withDefaults()
	const size = 8
	cfg := rbftConfig(1, size, loadFor(1, size), o)
	cfg.Durability = mode
	cfg.Cost.FsyncLatency = walFsyncLatency
	cfg.Cost.DiskBandwidth = walDiskBandwidth
	return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
}

// pipelineParallelCores is the verify-core count of the pipeline-parallel
// scenario, mirroring the paper's testbed where each node kept several cores
// free beyond the f+1 instance replicas.
const pipelineParallelCores = 4

// pipelineOfferedLoad saturates the single-core verify stage several times
// over (a signature verification per request bounds one core near 45 kreq/s)
// so the serial/parallel comparison measures verification capacity, not
// offered load.
const pipelineOfferedLoad = 100_000

// pipelineScenario builds a preverify-bound scenario: small requests at a
// load far beyond one verify core's signature-check capacity, so throughput
// scales with verify cores until the apply stage binds. The pair of
// scenarios (1 core vs pipelineParallelCores) quantifies what hoisting
// verification out of the state machine buys.
func pipelineScenario(name string, cores int, o Options) BenchScenario {
	o = o.withDefaults()
	cfg := rbftConfig(1, 8, pipelineOfferedLoad, o)
	cfg.VerifyCores = cores
	return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
}

// RunBench executes one scenario and summarises it.
func RunBench(sc BenchScenario) BenchResult {
	res := sim.New(sc.Config).Run(sc.RunTime)
	return BenchResult{
		Scenario:        sc.Name,
		Throughput:      res.Throughput,
		P50LatencyMS:    float64(res.P50Latency) / 1e6,
		P99LatencyMS:    float64(res.P99Latency) / 1e6,
		InstanceChanges: len(res.InstanceChanges),
	}
}
