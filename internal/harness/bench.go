package harness

import (
	"time"

	"rbft/internal/sim"
)

// BenchScenario is one named benchmark configuration, exposed (rather than
// run internally) so callers can attach trace sinks to Config before
// running — e.g. rbft-bench's -trace flag wires a JSONL writer here.
type BenchScenario struct {
	Name    string
	Config  sim.Config
	RunTime time.Duration
}

// BenchResult is the machine-readable summary of one scenario run; rbft-bench
// serialises a slice of these into BENCH_sim.json for CI tracking.
type BenchResult struct {
	Scenario        string  `json:"scenario"`
	Throughput      float64 `json:"throughput_req_s"`
	P50LatencyMS    float64 `json:"p50_latency_ms"`
	P99LatencyMS    float64 `json:"p99_latency_ms"`
	InstanceChanges int     `json:"instance_changes"`
}

// BenchScenarios builds the standard benchmark suite: the fault-free
// baseline and both worst attacks, all at f=1 with small requests so the
// suite stays fast enough for a CI smoke step.
func BenchScenarios(o Options) []BenchScenario {
	o = o.withDefaults()
	const size = 8
	offered := loadFor(1, size)
	build := func(name string, install func(cfg *sim.Config, offered float64)) BenchScenario {
		cfg := rbftConfig(1, size, offered, o)
		if install != nil {
			install(&cfg, offered)
		}
		return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
	}
	return []BenchScenario{
		build("fault-free", nil),
		build("worst-attack-1", func(cfg *sim.Config, _ float64) { attack1Config(cfg) }),
		build("worst-attack-2", attack2Config),
		pipelineScenario("pipeline-serial", 1, o),
		pipelineScenario("pipeline-parallel", pipelineParallelCores, o),
	}
}

// pipelineParallelCores is the verify-core count of the pipeline-parallel
// scenario, mirroring the paper's testbed where each node kept several cores
// free beyond the f+1 instance replicas.
const pipelineParallelCores = 4

// pipelineOfferedLoad saturates the single-core verify stage several times
// over (a signature verification per request bounds one core near 45 kreq/s)
// so the serial/parallel comparison measures verification capacity, not
// offered load.
const pipelineOfferedLoad = 100_000

// pipelineScenario builds a preverify-bound scenario: small requests at a
// load far beyond one verify core's signature-check capacity, so throughput
// scales with verify cores until the apply stage binds. The pair of
// scenarios (1 core vs pipelineParallelCores) quantifies what hoisting
// verification out of the state machine buys.
func pipelineScenario(name string, cores int, o Options) BenchScenario {
	o = o.withDefaults()
	cfg := rbftConfig(1, 8, pipelineOfferedLoad, o)
	cfg.VerifyCores = cores
	return BenchScenario{Name: name, Config: cfg, RunTime: o.RunTime}
}

// RunBench executes one scenario and summarises it.
func RunBench(sc BenchScenario) BenchResult {
	res := sim.New(sc.Config).Run(sc.RunTime)
	return BenchResult{
		Scenario:        sc.Name,
		Throughput:      res.Throughput,
		P50LatencyMS:    float64(res.P50Latency) / 1e6,
		P99LatencyMS:    float64(res.P99Latency) / 1e6,
		InstanceChanges: len(res.InstanceChanges),
	}
}
