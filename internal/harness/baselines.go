package harness

import (
	"fmt"
	"strings"
	"time"

	"rbft/internal/baseline"
)

// RelativeCurve is one protocol's relative throughput under attack, in
// percent of its fault-free throughput, across request sizes — the layout of
// figures 1, 2 and 3.
type RelativeCurve struct {
	Protocol string
	Sizes    []int
	// StaticPct and DynamicPct are the two workload curves.
	StaticPct  []float64
	DynamicPct []float64
}

// MinPct returns the worst (lowest) relative throughput across both curves.
func (c RelativeCurve) MinPct() float64 {
	min := 100.0
	for _, v := range append(append([]float64{}, c.StaticPct...), c.DynamicPct...) {
		if v < min {
			min = v
		}
	}
	return min
}

// String renders the curve as paper-style rows.
func (c RelativeCurve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s relative throughput under attack (%% of fault-free)\n", c.Protocol)
	fmt.Fprintf(&b, "%-12s", "size(B)")
	for _, s := range c.Sizes {
		fmt.Fprintf(&b, "%8d", s)
	}
	fmt.Fprintf(&b, "\n%-12s", "static")
	for _, v := range c.StaticPct {
		fmt.Fprintf(&b, "%8.1f", v)
	}
	fmt.Fprintf(&b, "\n%-12s", "dynamic")
	for _, v := range c.DynamicPct {
		fmt.Fprintf(&b, "%8.1f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// baselineRun abstracts the three baseline protocols for the shared sweep.
// The window bounds where the attack applies and where throughput is
// measured (figures 1-3 report the throughput while the malicious primary
// is in place, relative to fault-free over the same window).
type baselineRun func(attack bool, from, until time.Duration, w baseline.Workload) baseline.Result

func relativeCurve(name string, run baselineRun, o Options) RelativeCurve {
	o = o.withDefaults()
	// Batch-level simulations are cheap; use paper-scale durations so the
	// monitoring histories (5s grace windows) are meaningful.
	staticDur := 30 * time.Second
	stepDur := 5 * time.Second
	curve := RelativeCurve{Protocol: name, Sizes: o.Sizes}
	for _, size := range o.Sizes {
		static := baseline.Static(500000, size, staticDur) // saturating
		from := staticDur / 3
		ff := run(false, from, 0, static)
		at := run(true, from, 0, static)
		curve.StaticPct = append(curve.StaticPct, 100*ratio(at.WindowThroughput, ff.WindowThroughput))

		dyn := baseline.Dynamic(1000, size, stepDur)
		spike := dyn.SpikeStart()
		ffd := run(false, spike, spike+stepDur, dyn)
		atd := run(true, spike, spike+stepDur, dyn)
		curve.DynamicPct = append(curve.DynamicPct, 100*ratio(atd.WindowThroughput, ffd.WindowThroughput))
	}
	return curve
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	r := a / b
	if r > 1 {
		r = 1
	}
	return r
}

// Figure1 regenerates figure 1: Prime under the RTT-inflation attack.
func Figure1(o Options) RelativeCurve {
	return relativeCurve("Prime", func(attack bool, from, until time.Duration, w baseline.Workload) baseline.Result {
		return baseline.Prime(baseline.PrimeConfig{Attack: attack, AttackFrom: from, AttackUntil: until}, w)
	}, o)
}

// Figure2 regenerates figure 2: Aardvark under the delay-to-threshold
// attack.
func Figure2(o Options) RelativeCurve {
	return relativeCurve("Aardvark", func(attack bool, from, until time.Duration, w baseline.Workload) baseline.Result {
		return baseline.Aardvark(baseline.AardvarkConfig{Attack: attack, AttackFrom: from, AttackUntil: until}, w)
	}, o)
}

// Figure3 regenerates figure 3: Spinning under the just-below-Stimeout
// delay attack. Spinning's rotation makes the attack continuous, so the
// whole window is attacked.
func Figure3(o Options) RelativeCurve {
	return relativeCurve("Spinning", func(attack bool, _, _ time.Duration, w baseline.Workload) baseline.Result {
		return baseline.Spinning(baseline.SpinningConfig{Attack: attack}, w)
	}, o)
}

// Table1Row is one row of Table I.
type Table1Row struct {
	Protocol          string
	MaxDegradationPct float64
}

// Table1 regenerates Table I: the maximum throughput degradation of the
// three baseline protocols under attack (paper: Prime 78%, Aardvark 87%,
// Spinning 99%).
func Table1(o Options) []Table1Row {
	curves := []RelativeCurve{Figure1(o), Figure2(o), Figure3(o)}
	rows := make([]Table1Row, 0, len(curves))
	for _, c := range curves {
		rows = append(rows, Table1Row{
			Protocol:          c.Protocol,
			MaxDegradationPct: 100 - c.MinPct(),
		})
	}
	return rows
}

// FormatTable1 renders Table I like the paper.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I: maximum throughput degradation under attack\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %5.1f%%\n", r.Protocol, r.MaxDegradationPct)
	}
	return b.String()
}

// BaselineFaultFree reports each baseline's fault-free peak throughput and
// latency at a request size (used by Figure 7 and tests).
func BaselineFaultFree(size int, o Options) map[string]baseline.Result {
	o = o.withDefaults()
	w := baseline.Static(500000, size, 30*time.Second)
	return map[string]baseline.Result{
		"Prime":    baseline.Prime(baseline.PrimeConfig{}, w),
		"Aardvark": baseline.Aardvark(baseline.AardvarkConfig{}, w),
		"Spinning": baseline.Spinning(baseline.SpinningConfig{}, w),
	}
}

// BaselineCurve produces a latency-vs-throughput curve for one baseline by
// sweeping offered load (figure 7's Prime/Aardvark/Spinning series).
func BaselineCurve(name string, size int, loads []float64, o Options) []CurvePoint {
	o = o.withDefaults()
	dur := 10 * time.Second
	var run func(w baseline.Workload) baseline.Result
	switch name {
	case "Prime":
		run = func(w baseline.Workload) baseline.Result {
			return baseline.Prime(baseline.PrimeConfig{}, w)
		}
	case "Aardvark":
		run = func(w baseline.Workload) baseline.Result {
			return baseline.Aardvark(baseline.AardvarkConfig{}, w)
		}
	case "Spinning":
		run = func(w baseline.Workload) baseline.Result {
			return baseline.Spinning(baseline.SpinningConfig{}, w)
		}
	default:
		return nil
	}
	var points []CurvePoint
	for _, load := range loads {
		res := run(baseline.Static(load, size, dur))
		points = append(points, CurvePoint{
			ThroughputKreqS: res.Throughput / 1000,
			LatencyMs:       float64(res.AvgLatency) / float64(time.Millisecond),
		})
		// Past saturation the open-loop latency diverges; stop the curve.
		if res.Throughput < load*0.9 {
			break
		}
	}
	return points
}
