package harness

import (
	"fmt"
	"strings"
	"time"

	"rbft/internal/core"
	"rbft/internal/monitor"
	"rbft/internal/pbft"
	"rbft/internal/sim"
	"rbft/internal/types"
)

// CurvePoint is one latency-vs-throughput sample (figure 7's axes).
type CurvePoint struct {
	ThroughputKreqS float64
	LatencyMs       float64
}

// LatencyCurve is one system's figure-7 series.
type LatencyCurve struct {
	System string
	Points []CurvePoint
}

// String renders the curve.
func (c LatencyCurve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", c.System)
	for _, p := range c.Points {
		fmt.Fprintf(&b, " (%.1f kreq/s, %.2f ms)", p.ThroughputKreqS, p.LatencyMs)
	}
	b.WriteByte('\n')
	return b.String()
}

// Figure7 regenerates figure 7 (a: 8B, b: 4kB): latency vs throughput for
// RBFT over TCP and UDP plus the three baselines, fault-free, f=1.
func Figure7(size int, o Options) []LatencyCurve {
	o = o.withDefaults()
	peak := saturationLoad(size) / 0.8
	loads := []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95}
	if o.Quick {
		loads = []float64{0.2, 0.6, 0.95}
	}

	var curves []LatencyCurve
	for _, udp := range []bool{false, true} {
		name := "RBFT w/ TCP"
		if udp {
			name = "RBFT w/ UDP"
		}
		var points []CurvePoint
		for _, frac := range loads {
			cfg := rbftConfig(1, size, frac*peak, o)
			cfg.UDP = udp
			res := sim.New(cfg).Run(o.RunTime)
			points = append(points, CurvePoint{
				ThroughputKreqS: res.Throughput / 1000,
				LatencyMs:       float64(res.AvgLatency) / float64(time.Millisecond),
			})
			if res.Throughput < frac*peak*0.9 {
				break // saturated
			}
		}
		curves = append(curves, LatencyCurve{System: name, Points: points})
	}

	// Baselines sweep absolute loads around each one's own capacity.
	baselinePeaks := map[string]float64{
		"Prime":    primePeak(size),
		"Aardvark": aardvarkPeak(size),
		"Spinning": spinningPeak(size),
	}
	for _, name := range []string{"Prime", "Aardvark", "Spinning"} {
		cap := baselinePeaks[name]
		var abs []float64
		for _, frac := range loads {
			abs = append(abs, frac*cap)
		}
		curves = append(curves, LatencyCurve{System: name, Points: BaselineCurve(name, size, abs, o)})
	}
	return curves
}

// Rough capacity anchors for the figure-7 sweeps, matching each baseline's
// calibrated per-request cost (a fixed term plus a per-KB payload term); the
// sweep itself measures the real saturation point.
func primePeak(size int) float64    { return 1 / (85e-6 + float64(size)/1024*140e-6) }
func aardvarkPeak(size int) float64 { return 1 / (30e-6 + float64(size)/1024*140e-6) }
func spinningPeak(size int) float64 { return 1 / (24e-6 + float64(size)/1024*33e-6) }

// AttackCurve is RBFT's relative throughput under a worst attack across
// request sizes — the layout of figures 8 and 10.
type AttackCurve struct {
	Attack     string
	F          int
	Sizes      []int
	StaticPct  []float64
	DynamicPct []float64
	// InstanceChanges counts instance changes observed during the attacked
	// static runs (the worst attacks are calibrated to stay undetected).
	InstanceChanges int
}

// MinPct returns the worst relative throughput across both workloads.
func (c AttackCurve) MinPct() float64 {
	min := 100.0
	for _, v := range append(append([]float64{}, c.StaticPct...), c.DynamicPct...) {
		if v < min {
			min = v
		}
	}
	return min
}

// String renders the curve as paper-style rows.
func (c AttackCurve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RBFT under %s (f=%d), relative throughput (%%)\n", c.Attack, c.F)
	fmt.Fprintf(&b, "%-12s", "size(B)")
	for _, s := range c.Sizes {
		fmt.Fprintf(&b, "%8d", s)
	}
	fmt.Fprintf(&b, "\n%-12s", "static")
	for _, v := range c.StaticPct {
		fmt.Fprintf(&b, "%8.1f", v)
	}
	fmt.Fprintf(&b, "\n%-12s", "dynamic")
	for _, v := range c.DynamicPct {
		fmt.Fprintf(&b, "%8.1f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// attack1Config installs worst-attack-1 (paper §VI-C1) on a fault-free
// configuration: the master primary is correct (node 0 in view 0); the f
// faulty nodes are the highest-numbered ones. Faulty clients craft requests
// unverifiable by the master primary's node; faulty nodes flood it (and the
// correct nodes) with garbage; the faulty replicas of the master instance
// stay silent.
func attack1Config(cfg *sim.Config) {
	cluster := types.NewConfig(cfg.F)
	p := types.NodeID(0) // master primary's node in view 0
	cfg.CorruptClientAuthFor = []types.NodeID{p}
	cfg.NodeBehavior = map[types.NodeID]core.Behavior{}
	var correct []types.NodeID
	for i := 0; i < cluster.N-cfg.F; i++ {
		correct = append(correct, types.NodeID(i))
	}
	for i := cluster.N - cfg.F; i < cluster.N; i++ {
		faulty := types.NodeID(i)
		cfg.NodeBehavior[faulty] = core.Behavior{
			Instance: map[types.InstanceID]pbft.Behavior{
				types.MasterInstance: {Silent: true},
			},
		}
		// Flood the master primary's node hard and the other correct nodes
		// as well (steps ii and iii).
		cfg.Floods = append(cfg.Floods,
			sim.Flood{From: faulty, Targets: []types.NodeID{p}, Size: 8192, Rate: 20000},
			sim.Flood{From: faulty, Targets: correct, Size: 8192, Rate: 5000},
		)
	}
}

// attack2Config installs worst-attack-2 (paper §VI-C2): the master primary
// is faulty (node 0 in view 0). It throttles its instance to just above the
// Δ detection limit; the faulty nodes drop out of PROPAGATE, silence their
// backup-instance replicas, and flood the correct nodes; faulty clients
// flood the client NICs with invalid requests.
func attack2Config(cfg *sim.Config, offered float64) {
	installAttack2WithDelta(cfg, offered, Delta)
}

// installAttack2WithDelta is attack2Config parameterised by the Δ the
// attacker must evade (the Δ-sensitivity ablation sweeps it).
func installAttack2WithDelta(cfg *sim.Config, offered float64, delta float64) {
	cluster := types.NewConfig(cfg.F)
	faulty0 := types.NodeID(0) // hosts the master primary in view 0
	// The smart attacker throttles to Δ·(expected backup throughput) plus a
	// small safety margin, the minimum rate that evades the ratio test.
	throttleRate := delta * 1.02 * offered

	cfg.NodeBehavior = map[types.NodeID]core.Behavior{}
	var correct []types.NodeID
	for i := cfg.F; i < cluster.N; i++ {
		correct = append(correct, types.NodeID(i))
	}
	behavior := core.Behavior{
		DropPropagate: true,
		Instance:      map[types.InstanceID]pbft.Behavior{},
	}
	behavior.Instance[types.MasterInstance] = pbft.Behavior{ProposeRate: throttleRate}
	for b := 1; b < cluster.Instances(); b++ {
		behavior.Instance[types.InstanceID(b)] = pbft.Behavior{Silent: true}
	}
	cfg.NodeBehavior[faulty0] = behavior
	// The node hosting the malicious master primary floods just BELOW the
	// NIC-closure threshold: tripping the defence would sever its own
	// primary's ordering traffic and hand the master instance away at the
	// next instance change. (A flood detector keyed on invalid-message rate
	// is exactly the kind of threshold a smart attacker hides under.)
	stealthRate := 0.8 * floodClosureRate(cfg)
	cfg.Floods = append(cfg.Floods,
		sim.Flood{From: faulty0, Targets: correct, Size: 8192, Rate: stealthRate},
		sim.Flood{FromClients: true, Targets: correct, Size: 4096, Rate: 2000},
	)
	// The remaining f-1 faulty nodes silence all their replicas (including
	// any backup-instance primary they host — stalling that instance is
	// harmless because the Δ test compares against the best backup) and
	// flood the correct nodes.
	for i := 1; i < cfg.F; i++ {
		faulty := types.NodeID(i)
		fb := core.Behavior{DropPropagate: true, Instance: map[types.InstanceID]pbft.Behavior{}}
		for inst := 0; inst < cluster.Instances(); inst++ {
			fb.Instance[types.InstanceID(inst)] = pbft.Behavior{Silent: true}
		}
		cfg.NodeBehavior[faulty] = fb
		// These nodes host nothing the attack needs: they flood at full
		// blast and eat the NIC closures.
		cfg.Floods = append(cfg.Floods,
			sim.Flood{From: faulty, Targets: correct, Size: 8192, Rate: 5000})
	}
}

// floodClosureRate returns the invalid-message rate at which the node flood
// defence closes a peer's NIC.
func floodClosureRate(cfg *sim.Config) float64 {
	threshold := cfg.FloodThreshold
	if threshold == 0 {
		threshold = 64 // core.Config default
	}
	window := cfg.FloodWindow
	if window == 0 {
		window = 100 * time.Millisecond
	}
	return float64(threshold) / window.Seconds()
}

// worstAttackCurve runs one of the two worst attacks across the size sweep.
func worstAttackCurve(name string, f int, install func(cfg *sim.Config, offered float64), o Options) AttackCurve {
	o = o.withDefaults()
	correct := types.NodeID(types.NewConfig(f).N - 1) // highest node is correct in attack-2
	if name == "worst-attack-1" {
		correct = 1 // nodes N-f.. are the faulty ones there; node 1 is correct
	}
	curve := AttackCurve{Attack: name, F: f, Sizes: o.Sizes}
	for _, size := range o.Sizes {
		offered := loadFor(f, size)

		ffCfg := rbftConfig(f, size, offered, o)
		ffExec, _ := runExecuted(ffCfg, o.RunTime, correct)

		atCfg := rbftConfig(f, size, offered, o)
		install(&atCfg, offered)
		atExec, atRes := runExecuted(atCfg, o.RunTime, correct)
		curve.StaticPct = append(curve.StaticPct, pct(atExec, ffExec))
		curve.InstanceChanges += len(atRes.InstanceChanges)

		// Dynamic workload.
		ffDyn := rbftConfig(f, size, offered, o)
		ffDyn.Workload = dynamicWorkload(f, size, o)
		ffDynExec, _ := runExecuted(ffDyn, o.RunTime, correct)

		atDyn := rbftConfig(f, size, offered, o)
		atDyn.Workload = dynamicWorkload(f, size, o)
		install(&atDyn, offered)
		atDynExec, _ := runExecuted(atDyn, o.RunTime, correct)
		curve.DynamicPct = append(curve.DynamicPct, pct(atDynExec, ffDynExec))
	}
	// Relative throughput is capped at 100%: tiny scheduling differences can
	// put the attacked run a hair above the fault-free one.
	for i := range curve.StaticPct {
		if curve.StaticPct[i] > 100 {
			curve.StaticPct[i] = 100
		}
	}
	for i := range curve.DynamicPct {
		if curve.DynamicPct[i] > 100 {
			curve.DynamicPct[i] = 100
		}
	}
	return curve
}

// Figure8 regenerates figure 8: RBFT under worst-attack-1.
func Figure8(f int, o Options) AttackCurve {
	return worstAttackCurve("worst-attack-1", f, func(cfg *sim.Config, _ float64) {
		attack1Config(cfg)
	}, o)
}

// Figure10 regenerates figure 10: RBFT under worst-attack-2.
func Figure10(f int, o Options) AttackCurve {
	return worstAttackCurve("worst-attack-2", f, attack2Config, o)
}

// NodeReading is one node's master/backup monitor reading (figures 9, 11).
type NodeReading struct {
	Node           types.NodeID
	MasterKreqS    float64
	AvgBackupKreqS float64
}

// FormatNodeReadings renders figure 9/11 bars.
func FormatNodeReadings(rs []NodeReading) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "  node %d: master %.2f kreq/s, backup %.2f kreq/s\n",
			r.Node, r.MasterKreqS, r.AvgBackupKreqS)
	}
	return b.String()
}

// monitorReadings runs an attacked 4kB static run and averages each correct
// node's per-instance monitor samples.
func monitorReadings(f int, install func(cfg *sim.Config, offered float64), correctNodes []types.NodeID, o Options) []NodeReading {
	o = o.withDefaults()
	size := 4096
	offered := saturationLoad(size)
	cfg := rbftConfig(f, size, offered, o)
	install(&cfg, offered)
	cfg.MonitorSampleEvery = cfg.Monitoring.Period
	res := sim.New(cfg).Run(o.RunTime)

	sums := make(map[types.NodeID][]float64)
	counts := make(map[types.NodeID]int)
	for _, s := range res.MonitorSamples {
		// Skip warmup samples and empty readings.
		if s.Throughput[types.MasterInstance] == 0 {
			continue
		}
		acc := sums[s.Node]
		if acc == nil {
			acc = make([]float64, len(s.Throughput))
			sums[s.Node] = acc
		}
		for i, v := range s.Throughput {
			acc[i] += v
		}
		counts[s.Node]++
	}
	var out []NodeReading
	for _, n := range correctNodes {
		acc := sums[n]
		if acc == nil || counts[n] == 0 {
			out = append(out, NodeReading{Node: n})
			continue
		}
		master := acc[types.MasterInstance] / float64(counts[n])
		var backup float64
		nb := 0
		for i, v := range acc {
			if types.InstanceID(i) != types.MasterInstance {
				backup += v / float64(counts[n])
				nb++
			}
		}
		if nb > 0 {
			backup /= float64(nb)
		}
		out = append(out, NodeReading{
			Node:           n,
			MasterKreqS:    master / 1000,
			AvgBackupKreqS: backup / 1000,
		})
	}
	return out
}

// Figure9 regenerates figure 9: throughput measured by the correct nodes'
// monitors under worst-attack-1 (f=1, static 4kB). Nodes 0, 1, 2 are
// correct; node 3 is faulty.
func Figure9(o Options) []NodeReading {
	return monitorReadings(1, func(cfg *sim.Config, _ float64) { attack1Config(cfg) },
		[]types.NodeID{0, 1, 2}, o)
}

// Figure11 regenerates figure 11: monitor readings under worst-attack-2
// (f=1, static 4kB). Node 0 is faulty; nodes 1, 2, 3 are correct.
func Figure11(o Options) []NodeReading {
	return monitorReadings(1, attack2Config, []types.NodeID{1, 2, 3}, o)
}

// UnfairResult is figure 12's data: the per-request master-ordering latency
// series of the attacked and untargeted clients, plus the instance-change
// point.
type UnfairResult struct {
	Lambda time.Duration
	// Series is the ordering-latency log from a correct node's monitor.
	Series []monitor.LatencyRecord
	// InstanceChangeAt is the index in Series after which the instance
	// change took effect (-1 if none occurred).
	InstanceChangeAt int
	// MaxAttackedLatency is the worst latency the attacked client suffered.
	MaxAttackedLatency time.Duration
}

// Figure12 regenerates figure 12: an unfair master primary delays one
// client's requests more and more until a request exceeds Λ and the nodes
// vote a protocol instance change.
func Figure12(o Options) UnfairResult {
	o = o.withDefaults()
	lambda := 1500 * time.Microsecond
	size := 4096

	cfg := rbftConfig(1, size, 600, o)
	cfg.BatchSize = 1 // per-request ordering so per-client delays separate
	cfg.Workload = sim.StaticLoad(2, 300, size)
	cfg.Monitoring.Lambda = lambda
	cfg.Monitoring.Omega = time.Hour // "a high value for Ω", §VI-C3
	cfg.Monitoring.RecordLatencies = true
	cfg.Monitoring.MinRequests = 1 << 30 // disable the Δ test: throughput stays balanced

	run := o.RunTime * 2
	third := run / 3
	// The unfair primary (node 0, master instance) starts fair, then delays
	// client 0 moderately, then beyond Λ.
	moderate := 500 * time.Microsecond
	excessive := 1200 * time.Microsecond
	start := time.Unix(0, 0)
	cfg.Script = []sim.Action{
		{At: start.Add(third), Do: func(s *sim.Sim) {
			s.Node(0).SetBehavior(core.Behavior{Instance: map[types.InstanceID]pbft.Behavior{
				types.MasterInstance: {
					PrePrepareDelay: moderate,
					DelayClients:    map[types.ClientID]bool{0: true},
				},
			}})
		}},
		{At: start.Add(2 * third), Do: func(s *sim.Sim) {
			s.Node(0).SetBehavior(core.Behavior{Instance: map[types.InstanceID]pbft.Behavior{
				types.MasterInstance: {
					PrePrepareDelay: excessive,
					DelayClients:    map[types.ClientID]bool{0: true},
				},
			}})
		}},
	}

	simulator := sim.New(cfg)
	res := simulator.Run(run)

	// Read the latency log from correct node 1's monitor.
	series := simulator.Node(1).Monitor().LatencyLog()
	out := UnfairResult{Lambda: lambda, Series: series, InstanceChangeAt: -1}
	for _, rec := range series {
		if rec.Client == 0 && rec.Latency > out.MaxAttackedLatency {
			out.MaxAttackedLatency = rec.Latency
		}
	}
	if len(res.InstanceChanges) > 0 {
		// Locate the first over-Λ record: the instance change follows it.
		for i, rec := range series {
			if rec.Latency > lambda {
				out.InstanceChangeAt = i
				break
			}
		}
		if out.InstanceChangeAt == -1 {
			out.InstanceChangeAt = len(series) - 1
		}
	}
	return out
}
