package harness

import (
	"testing"
)

// TestBenchPipelineSpeedup pins the headline claim of the staged ingress
// pipeline: under a preverify-bound load, parallelizing the verify stage
// must buy at least 1.5x throughput over a single verify core. The
// simulation is deterministic, so this is a stable bound, not a flaky
// wall-clock benchmark.
func TestBenchPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	o := Options{Quick: true}
	serial := RunBench(pipelineScenario("pipeline-serial", 1, o))
	parallel := RunBench(pipelineScenario("pipeline-parallel", pipelineParallelCores, o))
	if serial.Throughput <= 0 {
		t.Fatalf("serial scenario completed no requests: %+v", serial)
	}
	ratio := parallel.Throughput / serial.Throughput
	t.Logf("pipeline-serial %.0f req/s, pipeline-parallel %.0f req/s, speedup %.2fx",
		serial.Throughput, parallel.Throughput, ratio)
	if ratio < 1.5 {
		t.Fatalf("pipeline-parallel/%d-core speedup %.2fx, want >= 1.5x (serial %.0f, parallel %.0f req/s)",
			pipelineParallelCores, ratio, serial.Throughput, parallel.Throughput)
	}
}

// TestBenchScenariosIncludePipeline keeps the BENCH_sim.json suite honest:
// both pipeline scenarios must be part of the standard bench set.
func TestBenchScenariosIncludePipeline(t *testing.T) {
	names := make(map[string]bool)
	for _, sc := range BenchScenarios(Options{Quick: true}) {
		names[sc.Name] = true
	}
	for _, want := range []string{"fault-free", "worst-attack-1", "worst-attack-2", "pipeline-serial", "pipeline-parallel"} {
		if !names[want] {
			t.Errorf("bench suite is missing scenario %q", want)
		}
	}
}
