package harness

import (
	"testing"

	"rbft/internal/sim"
	"rbft/internal/types"
)

// TestBenchPipelineSpeedup pins the headline claim of the staged ingress
// pipeline: under a preverify-bound load, parallelizing the verify stage
// must buy at least 1.5x throughput over a single verify core. The
// simulation is deterministic, so this is a stable bound, not a flaky
// wall-clock benchmark.
func TestBenchPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	o := Options{Quick: true}
	serial := RunBench(pipelineScenario("pipeline-serial", 1, o))
	parallel := RunBench(pipelineScenario("pipeline-parallel", pipelineParallelCores, o))
	if serial.Throughput <= 0 {
		t.Fatalf("serial scenario completed no requests: %+v", serial)
	}
	ratio := parallel.Throughput / serial.Throughput
	t.Logf("pipeline-serial %.0f req/s, pipeline-parallel %.0f req/s, speedup %.2fx",
		serial.Throughput, parallel.Throughput, ratio)
	if ratio < 1.5 {
		t.Fatalf("pipeline-parallel/%d-core speedup %.2fx, want >= 1.5x (serial %.0f, parallel %.0f req/s)",
			pipelineParallelCores, ratio, serial.Throughput, parallel.Throughput)
	}
}

// TestBenchScenariosIncludePipeline keeps the BENCH_sim.json suite honest:
// both pipeline scenarios must be part of the standard bench set.
func TestBenchScenariosIncludePipeline(t *testing.T) {
	names := make(map[string]bool)
	for _, sc := range BenchScenarios(Options{Quick: true}) {
		names[sc.Name] = true
	}
	for _, want := range []string{"fault-free", "worst-attack-1", "worst-attack-2", "pipeline-serial", "pipeline-parallel", "wal-serial-fsync", "wal-group-commit", "egress-per-message", "egress-coalesced", "ordering-master-only", "ordering-multi-primary", "exec-serial", "exec-parallel", "frontdoor-ordered", "frontdoor-speculative"} {
		if !names[want] {
			t.Errorf("bench suite is missing scenario %q", want)
		}
	}
}

// TestBenchEgressCoalescingSpeedup pins the headline claim of the egress
// pipeline's frame coalescing: on a wire-bound configuration with realistic
// per-packet overhead, flushing queued messages as coalesced batch frames
// must buy at least 1.3x throughput over one physical frame per message.
// Deterministic simulation makes this a stable bound.
func TestBenchEgressCoalescingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	o := Options{Quick: true}
	perMessage := RunBench(egressScenario("egress-per-message", 0, o))
	coalesced := RunBench(egressScenario("egress-coalesced", egressCoalesce, o))
	if perMessage.Throughput <= 0 {
		t.Fatalf("per-message scenario completed no requests: %+v", perMessage)
	}
	ratio := coalesced.Throughput / perMessage.Throughput
	t.Logf("egress-per-message %.0f req/s, egress-coalesced %.0f req/s, speedup %.2fx",
		perMessage.Throughput, coalesced.Throughput, ratio)
	if ratio < 1.3 {
		t.Fatalf("coalesced/per-message speedup %.2fx, want >= 1.3x (per-message %.0f, coalesced %.0f req/s)",
			ratio, perMessage.Throughput, coalesced.Throughput)
	}
}

// TestBenchMultiPrimarySpeedup pins the headline claim of multi-primary
// ordering: on an ordering-bound configuration (per-reference ordering cost
// dominating, verification pipelined off the instance cores), ordering
// disjoint client partitions on all f+1 instances must buy at least 1.5x
// throughput over funnelling everything through the master lane, and must do
// so without tripping the per-lane Δ test. Deterministic simulation makes
// this a stable bound.
func TestBenchMultiPrimarySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	o := Options{Quick: true}
	master := RunBench(orderingScenario("ordering-master-only", types.OrderingMasterOnly, o))
	multi := RunBench(orderingScenario("ordering-multi-primary", types.OrderingMultiPrimary, o))
	if master.Throughput <= 0 {
		t.Fatalf("master-only scenario completed no requests: %+v", master)
	}
	ratio := multi.Throughput / master.Throughput
	t.Logf("ordering-master-only %.0f req/s, ordering-multi-primary %.0f req/s, speedup %.2fx",
		master.Throughput, multi.Throughput, ratio)
	if ratio < 1.5 {
		t.Fatalf("multi-primary/master-only speedup %.2fx, want >= 1.5x (master %.0f, multi %.0f req/s)",
			ratio, master.Throughput, multi.Throughput)
	}
	if multi.InstanceChanges != 0 {
		t.Fatalf("multi-primary run triggered %d instance changes on a fault-free cluster", multi.InstanceChanges)
	}
}

// TestBenchExecSpeedup pins the headline claim of the parallel execution
// engine: on an execution-bound configuration (per-request execution cost
// dominating, verification pipelined off the instance cores) with a
// conflict-light Zipfian KV workload, wave-scheduled parallel execution must
// buy at least 1.5x throughput over serial apply, and must do so without
// tripping the per-lane Δ test. Deterministic simulation makes this a stable
// bound.
func TestBenchExecSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	o := Options{Quick: true}
	serial := RunBench(execScenario("exec-serial", 0, o))
	parallel := RunBench(execScenario("exec-parallel", execBenchWorkers, o))
	if serial.Throughput <= 0 {
		t.Fatalf("serial scenario completed no requests: %+v", serial)
	}
	ratio := parallel.Throughput / serial.Throughput
	t.Logf("exec-serial %.0f req/s, exec-parallel %.0f req/s, speedup %.2fx",
		serial.Throughput, parallel.Throughput, ratio)
	if ratio < 1.5 {
		t.Fatalf("exec-parallel/%d-worker speedup %.2fx, want >= 1.5x (serial %.0f, parallel %.0f req/s)",
			execBenchWorkers, ratio, serial.Throughput, parallel.Throughput)
	}
	if parallel.InstanceChanges != 0 {
		t.Fatalf("exec-parallel run triggered %d instance changes on a fault-free cluster", parallel.InstanceChanges)
	}
}

// TestBenchFrontdoorSpeedup pins the headline claim of the speculative
// read-only fast path: on an ordering-bound configuration with a 95%-GET
// workload, answering reads from local state on a 2f+1 read quorum must buy
// at least 1.5x throughput over ordering every GET through the master lane,
// without tripping the per-lane Δ test in either mode. Deterministic
// simulation makes this a stable bound.
func TestBenchFrontdoorSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	o := Options{Quick: true}
	ordered := RunBench(frontdoorScenario("frontdoor-ordered", false, o))
	speculative := RunBench(frontdoorScenario("frontdoor-speculative", true, o))
	if ordered.Throughput <= 0 {
		t.Fatalf("ordered scenario completed no requests: %+v", ordered)
	}
	ratio := speculative.Throughput / ordered.Throughput
	t.Logf("frontdoor-ordered %.0f req/s, frontdoor-speculative %.0f req/s, speedup %.2fx",
		ordered.Throughput, speculative.Throughput, ratio)
	if ratio < 1.5 {
		t.Fatalf("speculative/ordered speedup %.2fx, want >= 1.5x (ordered %.0f, speculative %.0f req/s)",
			ratio, ordered.Throughput, speculative.Throughput)
	}
	if ordered.InstanceChanges != 0 || speculative.InstanceChanges != 0 {
		t.Fatalf("instance changes: ordered %d, speculative %d; want 0/0",
			ordered.InstanceChanges, speculative.InstanceChanges)
	}
}

// TestBenchWALGroupCommitSpeedup pins the headline claim of the WAL's group
// commit: on a slow-fsync device, batching fsyncs must buy at least 2x
// throughput over one fsync per records-bearing output. Deterministic
// simulation makes this a stable bound.
func TestBenchWALGroupCommitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	o := Options{Quick: true}
	serial := RunBench(walScenario("wal-serial-fsync", sim.DurabilitySerialFsync, o))
	group := RunBench(walScenario("wal-group-commit", sim.DurabilityGroupCommit, o))
	if serial.Throughput <= 0 {
		t.Fatalf("serial-fsync scenario completed no requests: %+v", serial)
	}
	ratio := group.Throughput / serial.Throughput
	t.Logf("wal-serial-fsync %.0f req/s, wal-group-commit %.0f req/s, speedup %.2fx",
		serial.Throughput, group.Throughput, ratio)
	if ratio < 2 {
		t.Fatalf("group-commit/serial-fsync speedup %.2fx, want >= 2x (serial %.0f, group %.0f req/s)",
			ratio, serial.Throughput, group.Throughput)
	}
}
