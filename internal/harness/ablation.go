package harness

import (
	"rbft/internal/sim"
)

// AblationResult compares RBFT's identifier-ordering design against ordering
// full request payloads (paper §VI-B: at 4kB the peak drops from 5 kreq/s to
// 1.8 kreq/s when instances order whole requests).
type AblationResult struct {
	IdentifiersThroughput float64
	FullThroughput        float64
}

// AblationOrderedPayload runs the ordering-payload ablation at 4kB.
func AblationOrderedPayload(o Options) AblationResult {
	o = o.withDefaults()
	size := 4096
	offered := saturationLoad(size)

	idCfg := rbftConfig(1, size, offered, o)
	idRes := sim.New(idCfg).Run(o.RunTime)

	fullCfg := rbftConfig(1, size, offered, o)
	fullCfg.Cost.OrderedPayloadBytes = size
	fullRes := sim.New(fullCfg).Run(o.RunTime)

	return AblationResult{
		IdentifiersThroughput: idRes.Throughput,
		FullThroughput:        fullRes.Throughput,
	}
}

// DeltaSensitivity measures the worst-attack-2 damage as a function of the Δ
// threshold — the design-choice ablation DESIGN.md calls out: a looser Δ
// hands the attacker proportionally more headroom.
type DeltaSensitivityRow struct {
	Delta       float64
	RelativePct float64
}

// AblationDeltaSensitivity sweeps Δ for worst-attack-2 at 8B.
func AblationDeltaSensitivity(deltas []float64, o Options) []DeltaSensitivityRow {
	o = o.withDefaults()
	size := 8
	offered := saturationLoad(size)

	ffCfg := rbftConfig(1, size, offered, o)
	ffExec, _ := runExecuted(ffCfg, o.RunTime, 3)

	var rows []DeltaSensitivityRow
	for _, d := range deltas {
		cfg := rbftConfig(1, size, offered, o)
		cfg.Monitoring.Delta = d
		installAttack2WithDelta(&cfg, offered, d)
		exec, _ := runExecuted(cfg, o.RunTime, 3)
		rel := pct(exec, ffExec)
		if rel > 100 {
			rel = 100
		}
		rows = append(rows, DeltaSensitivityRow{Delta: d, RelativePct: rel})
	}
	return rows
}
