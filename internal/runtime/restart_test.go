package runtime

import (
	"testing"
	"time"

	"rbft/internal/app"
	"rbft/internal/core"
	"rbft/internal/types"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashRestartRecoversAndRejoins kills a node under load, restarts it
// from its data directory, and checks that recovery rebuilds the exact
// application state without re-executing anything, and that the node then
// keeps up with the cluster.
func TestCrashRestartRecoversAndRejoins(t *testing.T) {
	apps := make(map[types.NodeID]*app.Counter)
	lc, err := StartLocalCluster(ClusterOptions{
		F:         1,
		Transport: Mem,
		DataDir:   t.TempDir(),
		NewApp: func(n types.NodeID) app.Application {
			c := app.NewCounter()
			apps[n] = c
			return c
		},
		// Frequent checkpoints: the restarted node discovers its delivery gap
		// through checkpoint evidence and fills it via fetch.
		Tune: func(c *core.Config) { c.CheckpointInterval = 4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Stop()
	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}

	const victim = types.NodeID(2)
	for i := 0; i < 20; i++ {
		if _, err := cr.Invoke(nil, 10*time.Second); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	waitUntil(t, "victim to execute the initial load", func() bool {
		return apps[victim].Total(1) == 20
	})
	preCrash := apps[victim]
	wantFP := preCrash.Fingerprint()

	// Crash + restart: the node object and its application are discarded;
	// everything comes back from the WAL.
	if err := lc.RestartNode(victim); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	restored := apps[victim]
	if restored == preCrash {
		t.Fatal("restart reused the old application instance; recovery proved nothing")
	}
	if got := restored.Total(1); got != 20 {
		t.Fatalf("recovered counter total = %d, want 20 (no lost or re-executed requests)", got)
	}
	if restored.Fingerprint() != wantFP {
		t.Fatal("recovered application fingerprint differs from pre-crash state")
	}

	// The restarted node must rejoin and execute new load exactly once.
	for i := 0; i < 10; i++ {
		if _, err := cr.Invoke(nil, 10*time.Second); err != nil {
			t.Fatalf("post-restart request %d: %v", i, err)
		}
	}
	waitUntil(t, "restarted node to catch up", func() bool {
		return restored.Total(1) == 30
	})
	// Give stray retransmissions a chance to (incorrectly) double-execute.
	time.Sleep(200 * time.Millisecond)
	if got := restored.Total(1); got != 30 {
		t.Fatalf("counter moved to %d after settling, want 30", got)
	}
	waitUntil(t, "all nodes to converge", func() bool {
		fp := apps[0].Fingerprint()
		for n := types.NodeID(1); n < types.NodeID(lc.Cluster.N); n++ {
			if apps[n].Fingerprint() != fp {
				return false
			}
		}
		return true
	})
}

// TestRestartSurvivesRepeatedCrashes cycles the same node through several
// crash/restart rounds with traffic in between; each recovery starts from a
// longer log.
func TestRestartSurvivesRepeatedCrashes(t *testing.T) {
	apps := make(map[types.NodeID]*app.Counter)
	lc, err := StartLocalCluster(ClusterOptions{
		F:         1,
		Transport: Mem,
		DataDir:   t.TempDir(),
		NewApp: func(n types.NodeID) app.Application {
			c := app.NewCounter()
			apps[n] = c
			return c
		},
		Tune: func(c *core.Config) { c.CheckpointInterval = 4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Stop()
	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}

	const victim = types.NodeID(1)
	total := uint64(0)
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			if _, err := cr.Invoke(nil, 10*time.Second); err != nil {
				t.Fatalf("round %d request %d: %v", round, i, err)
			}
			total++
		}
		waitUntil(t, "victim to catch up before the crash", func() bool {
			return apps[victim].Total(1) == total
		})
		if err := lc.RestartNode(victim); err != nil {
			t.Fatalf("round %d RestartNode: %v", round, err)
		}
		if got := apps[victim].Total(1); got != total {
			t.Fatalf("round %d: recovered total = %d, want %d", round, got, total)
		}
	}
}

// TestRestartRequiresDataDir: without durability there is nothing to recover
// from, and RestartNode must say so instead of silently resurrecting an
// amnesiac node.
func TestRestartRequiresDataDir(t *testing.T) {
	lc, _ := startCluster(t, Mem, nil)
	if err := lc.RestartNode(0); err == nil {
		t.Fatal("RestartNode succeeded without a data directory")
	}
}
