package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"rbft/internal/message"
	"rbft/internal/obs"
	"rbft/internal/transport"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// Egress pipeline (docs/EGRESS.md): the apply loop never touches the wire.
// emit encodes each output message once into a pooled buffer and enqueues it
// on the per-peer egress queues; one worker goroutine per peer drains its
// queue, waits out the durability horizon, and flushes — coalescing whatever
// is queued into a single batch frame when the transport supports it.
//
// The queues are bounded with drop-oldest overflow: RBFT tolerates message
// loss (retransmission and fetch recover), but it does not tolerate the
// apply loop stalling, and the oldest frame is the one most likely to be
// stale. A wedged or dead peer therefore costs its own queue, never the
// ordering pipeline.

const (
	// egressQueueDepth bounds one peer's queue. At protocol message sizes
	// (~100-200 B) this is a few hundred KB per wedged peer, and far more
	// than a healthy peer ever accumulates.
	egressQueueDepth = 256
	// egressMaxCoalesce bounds the payloads flushed as one batch frame, so
	// one flush cannot monopolise the wire or build an oversized frame.
	egressMaxCoalesce = 64
)

// egressFrame is one encoded message shared by every peer queue it was
// fanned out to. refs counts outstanding queue references; the pooled buffer
// returns to the encode pool when the last reference releases.
type egressFrame struct {
	buf *message.Buf
	// lsn is the frame's durability horizon: the WAL position that must be
	// durable before the frame may leave the box (log-before-send). Zero
	// means no durability dependency.
	lsn  uint64
	refs int32 // atomic

	// Span bookkeeping, populated only for reply frames when spans are on:
	// at is the enqueue stamp, client/req identify the request so the
	// wal-durable and egress spans can join the rest of its lifecycle.
	at      time.Time
	isReply bool
	client  types.ClientID
	req     types.RequestID
}

func (f *egressFrame) release() {
	if atomic.AddInt32(&f.refs, -1) == 0 {
		f.buf.Release()
	}
}

// peerQueue is one peer's bounded egress queue plus its gauges.
type peerQueue struct {
	ch      chan *egressFrame
	depth   *obs.Gauge
	dropped *obs.Counter
}

// egress owns the per-peer queues and workers of one node runtime.
type egress struct {
	tr   transport.Transport
	wal  *wal.Log // nil unless durability is on
	self string   // this node's endpoint name, for metric labels
	// flushInterval > 0 makes a worker linger that long collecting more
	// frames before flushing a non-full batch; 0 flushes greedily (coalesce
	// only what is already queued).
	flushInterval time.Duration
	reg           *obs.Registry
	sp            obs.Tracer // node-stamped span sink; Nop unless spans are on
	spans         bool

	mu     sync.Mutex
	queues map[string]*peerQueue // guarded by mu; lazily created per peer

	stop chan struct{}
	wg   sync.WaitGroup
}

func newEgress(tr transport.Transport, w *wal.Log, self string, flushInterval time.Duration, reg *obs.Registry, stop chan struct{}) *egress {
	return &egress{
		tr:            tr,
		wal:           w,
		self:          self,
		flushInterval: flushInterval,
		reg:           reg,
		sp:            obs.Nop{},
		queues:        make(map[string]*peerQueue),
		stop:          stop,
	}
}

// queue returns the peer's queue, creating it (and its worker) on first use.
func (e *egress) queue(peer string) *peerQueue {
	e.mu.Lock()
	defer e.mu.Unlock()
	if q, ok := e.queues[peer]; ok {
		return q
	}
	link := e.self + "->" + peer
	q := &peerQueue{
		ch:      make(chan *egressFrame, egressQueueDepth),
		depth:   e.reg.Gauge(obs.LabeledName("rbft_egress_queue_depth", "link", link)),
		dropped: e.reg.Counter(obs.LabeledName("rbft_egress_dropped_total", "link", link)),
	}
	e.queues[peer] = q
	e.wg.Add(1)
	go e.worker(peer, q)
	return q
}

// enqueue hands a frame to the peer's queue without ever blocking the
// caller: on overflow it drops the oldest queued frame and retries. Runs on
// the apply loop — it must stay non-blocking and lock-free apart from the
// queue-map mutex.
func (e *egress) enqueue(peer string, f *egressFrame) {
	q := e.queue(peer)
	for {
		select {
		case q.ch <- f:
			q.depth.Set(int64(len(q.ch)))
			return
		default:
		}
		// Queue full: evict the oldest frame (most likely already stale) and
		// retry. The pop can race with the worker draining; losing the race
		// just means the retry succeeds immediately.
		select {
		case old := <-q.ch:
			old.release()
			q.dropped.Inc()
		default:
		}
	}
}

// worker drains one peer's queue: it collects whatever is queued (bounded by
// egressMaxCoalesce, optionally lingering flushInterval), waits for the
// batch's durability horizon, and flushes it as one coalesced wire frame
// when the transport can. Send errors are deliberate best-effort: the
// protocol tolerates loss, and a dead peer must cost nothing but its queue.
//
//rbft:egress
func (e *egress) worker(peer string, q *peerQueue) {
	defer e.wg.Done()
	bs, canBatch := e.tr.(transport.BatchSender)
	batch := make([]*egressFrame, 0, egressMaxCoalesce)
	payloads := make([][]byte, 0, egressMaxCoalesce)
	for {
		batch = batch[:0]
		select {
		case <-e.stop:
			return
		case f := <-q.ch:
			batch = append(batch, f)
		}
	drain:
		for len(batch) < egressMaxCoalesce {
			select {
			case f := <-q.ch:
				batch = append(batch, f)
			default:
				break drain
			}
		}
		if e.flushInterval > 0 && len(batch) < egressMaxCoalesce {
			linger := time.NewTimer(e.flushInterval)
		lingerLoop:
			for len(batch) < egressMaxCoalesce {
				select {
				case f := <-q.ch:
					batch = append(batch, f)
				case <-linger.C:
					break lingerLoop
				case <-e.stop:
					linger.Stop()
					releaseAll(batch)
					return
				}
			}
			linger.Stop()
		}
		q.depth.Set(int64(len(q.ch)))

		// Log-before-send: nothing in this batch leaves until the WAL has
		// fsynced past its durability horizon. The wait runs here, on the
		// peer's worker, so an fsync stall never reaches the apply loop.
		var walWait time.Duration
		if e.wal != nil {
			var horizon uint64
			for _, f := range batch {
				if f.lsn > horizon {
					horizon = f.lsn
				}
			}
			if horizon > 0 {
				var w0 time.Time
				if e.spans {
					w0 = time.Now()
				}
				if err := e.wal.WaitDurable(horizon); err != nil {
					// A node that cannot persist must not speak (it could
					// equivocate after restart); dropping is indistinguishable
					// from crashing, which the protocol tolerates.
					releaseAll(batch)
					continue
				}
				if e.spans {
					walWait = time.Since(w0)
				}
			}
		}

		if canBatch && len(batch) > 1 {
			payloads = payloads[:0]
			for _, f := range batch {
				payloads = append(payloads, f.buf.Bytes())
			}
			_ = bs.SendBatch(peer, payloads)
		} else {
			for _, f := range batch {
				_ = e.tr.Send(peer, f.buf.Bytes())
			}
		}
		if e.spans {
			e.emitReplySpans(batch, walWait)
		}
		releaseAll(batch)
	}
}

// emitReplySpans records, for each reply frame the flushed batch carried, a
// wal-durable span (the batch's shared log-before-send wait, when one ran)
// and an egress span (enqueue to post-send, with the WAL wait subtracted so
// the two stages attribute disjoint time). Transit to the client is not
// observable server-side, so runtime traces carry no reply span — the
// critical-path analyzer falls back to execution events.
func (e *egress) emitReplySpans(batch []*egressFrame, walWait time.Duration) {
	now := time.Now()
	for _, f := range batch {
		if !f.isReply {
			continue
		}
		if walWait > 0 {
			e.sp.Trace(obs.Event{
				At: now, Type: obs.EvSpan, Stage: obs.StageWALDurable,
				Client: f.client, Req: f.req, Dur: walWait,
			})
		}
		d := now.Sub(f.at) - walWait
		if d < 0 {
			d = 0
		}
		e.sp.Trace(obs.Event{
			At: now, Type: obs.EvSpan, Stage: obs.StageEgress,
			Client: f.client, Req: f.req, Dur: d,
		})
	}
}

func releaseAll(batch []*egressFrame) {
	for _, f := range batch {
		f.release()
	}
}

// wait blocks until every worker has exited (call after closing stop). A
// worker parked inside an in-flight Send exits once that write returns; the
// Transport contract (Send must not block indefinitely) plus tcpnet's write
// deadline bound that, so wait terminates even with a wedged peer.
func (e *egress) wait() { e.wg.Wait() }
