package runtime

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rbft/internal/core"
	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/obs"
	"rbft/internal/transport"
	"rbft/internal/transport/memnet"
	"rbft/internal/types"
)

// recordingTransport captures sends without a wire; Send to the wedged peer
// blocks until unblock is closed, emulating a dead TCP peer with full kernel
// buffers.
type recordingTransport struct {
	name    string
	wedged  string
	unblock chan struct{}

	mu      sync.Mutex
	sends   map[string][][]byte // guarded by mu; peer -> individual payloads
	batches map[string][]int    // guarded by mu; peer -> coalesced batch sizes
	gate    chan struct{}       // when non-nil, each flush blocks until a tick
}

func newRecordingTransport(wedged string) *recordingTransport {
	return &recordingTransport{
		name:    "node/0",
		wedged:  wedged,
		unblock: make(chan struct{}),
		sends:   make(map[string][][]byte),
		batches: make(map[string][]int),
	}
}

func (rt *recordingTransport) Name() string                      { return rt.name }
func (rt *recordingTransport) Packets() <-chan transport.Packet  { return nil }
func (rt *recordingTransport) Close() error                      { return nil }
func (rt *recordingTransport) record(to string, data []byte) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.sends[to] = append(rt.sends[to], append([]byte(nil), data...))
}

func (rt *recordingTransport) wait(to string) {
	if to == rt.wedged {
		<-rt.unblock
	}
	if rt.gate != nil {
		<-rt.gate
	}
}

func (rt *recordingTransport) Send(to string, data []byte) error {
	rt.wait(to)
	rt.record(to, data)
	return nil
}

func (rt *recordingTransport) SendBatch(to string, payloads [][]byte) error {
	rt.wait(to)
	rt.mu.Lock()
	rt.batches[to] = append(rt.batches[to], len(payloads))
	rt.mu.Unlock()
	for _, p := range payloads {
		rt.record(to, p)
	}
	return nil
}

func (rt *recordingTransport) received(to string) [][]byte {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([][]byte, len(rt.sends[to]))
	copy(out, rt.sends[to])
	return out
}

func testFrame(seq uint64) *egressFrame {
	msg := &message.Prepare{Instance: 0, View: 1, Seq: types.SeqNum(seq), Node: 0}
	return &egressFrame{buf: message.Encode(msg), refs: 1}
}

// TestEgressEnqueueNeverBlocks pins the tentpole guarantee: enqueueing
// toward a peer whose transport writes block forever must complete promptly
// (drop-oldest, never back-pressure), while a healthy peer's traffic flows.
func TestEgressEnqueueNeverBlocks(t *testing.T) {
	rt := newRecordingTransport("node/1")
	defer close(rt.unblock)
	reg := obs.NewRegistry()
	stop := make(chan struct{})
	defer close(stop)
	eg := newEgress(rt, nil, "node/0", 0, reg, stop)

	const n = 10 * egressQueueDepth
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			eg.enqueue("node/1", testFrame(uint64(i)))
			eg.enqueue("node/2", testFrame(uint64(i)))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("enqueue blocked behind a wedged peer")
	}

	// The healthy peer's queue keeps draining: a sentinel enqueued after the
	// flood must come out the other side.
	sentinel := testFrame(1 << 40)
	want := append([]byte(nil), sentinel.buf.Bytes()...)
	eg.enqueue("node/2", sentinel)
	deadline := time.Now().Add(5 * time.Second)
	for {
		frames := rt.received("node/2")
		if len(frames) > 0 && bytes.Equal(frames[len(frames)-1], want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy peer stalled behind a wedged one: %d frames, sentinel missing", len(frames))
		}
		time.Sleep(time.Millisecond)
	}

	// The wedged peer's overflow was dropped, oldest first, and counted.
	dropped := reg.Counter(obs.LabeledName("rbft_egress_dropped_total", "link", "node/0->node/1")).Value()
	if dropped == 0 {
		t.Fatal("no drops recorded on the wedged link")
	}
	if got := len(rt.received("node/1")); got != 0 {
		t.Fatalf("wedged peer received %d frames while blocked", got)
	}
}

// TestEgressCoalesces pins the batch path: frames that queue up while a
// flush is in flight leave as one coalesced batch, in order.
func TestEgressCoalesces(t *testing.T) {
	rt := newRecordingTransport("") // nothing wedged
	rt.gate = make(chan struct{})
	reg := obs.NewRegistry()
	stop := make(chan struct{})
	defer close(stop)
	eg := newEgress(rt, nil, "node/0", 0, reg, stop)

	// The first frame starts a flush that parks on the gate; give the worker
	// a beat to pick it up, then pile the rest up behind it.
	const n = 16
	var want [][]byte
	first := testFrame(0)
	want = append(want, append([]byte(nil), first.buf.Bytes()...))
	eg.enqueue("node/1", first)
	time.Sleep(100 * time.Millisecond)
	for i := 1; i < n; i++ {
		f := testFrame(uint64(i))
		want = append(want, append([]byte(nil), f.buf.Bytes()...))
		eg.enqueue("node/1", f)
	}
	// Release the parked flush and the coalesced one behind it.
	rt.gate <- struct{}{}
	rt.gate <- struct{}{}

	deadline := time.Now().Add(5 * time.Second)
	for len(rt.received("node/1")) < n {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d frames", len(rt.received("node/1")), n)
		}
		time.Sleep(time.Millisecond)
	}
	got := rt.received("node/1")
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d out of order or corrupted", i)
		}
	}
	rt.mu.Lock()
	batches := append([]int(nil), rt.batches["node/1"]...)
	rt.mu.Unlock()
	coalesced := 0
	for _, b := range batches {
		coalesced += b
	}
	// The first flush is a singleton; everything that queued behind it must
	// have left as one coalesced batch.
	if len(batches) != 1 || coalesced != n-1 {
		t.Fatalf("expected one %d-payload batch behind the parked flush, got batches %v", n-1, batches)
	}
}

// TestEgressSharedFrameRefcount checks a broadcast frame returns to the
// encode pool only after every peer queue has released it: the payload every
// peer observes is identical and intact.
func TestEgressSharedFrameRefcount(t *testing.T) {
	rt := newRecordingTransport("")
	reg := obs.NewRegistry()
	stop := make(chan struct{})
	defer close(stop)
	eg := newEgress(rt, nil, "node/0", 0, reg, stop)

	peers := []string{"node/1", "node/2", "node/3"}
	msg := &message.Commit{Instance: 0, View: 1, Seq: 9, Node: 0}
	want := msg.Marshal(nil)
	for i := 0; i < 100; i++ {
		f := &egressFrame{buf: message.Encode(msg), refs: int32(len(peers))}
		for _, p := range peers {
			eg.enqueue(p, f)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, p := range peers {
		for len(rt.received(p)) < 100 {
			if time.Now().After(deadline) {
				t.Fatalf("peer %s got %d/100 frames", p, len(rt.received(p)))
			}
			time.Sleep(time.Millisecond)
		}
		for i, data := range rt.received(p) {
			if !bytes.Equal(data, want) {
				t.Fatalf("peer %s frame %d corrupted (pooled buffer reused too early?)", p, i)
			}
		}
	}
}

// wedgeEndpoint wraps a memnet endpoint; sends to the wedged peer block
// until the test releases them, like a TCP connection with full buffers.
type wedgeEndpoint struct {
	transport.Transport
	wedged  string
	blocked atomic.Int64
	unblock chan struct{}
}

func (w *wedgeEndpoint) Send(to string, data []byte) error {
	if to == w.wedged {
		w.blocked.Add(1)
		<-w.unblock
		return nil
	}
	return w.Transport.Send(to, data)
}

// TestApplyLoopSurvivesWedgedPeer is the dead-peer regression test from the
// issue: wedge every write toward one peer mid-run and prove the node's
// apply loop keeps ordering — it keeps producing protocol traffic toward the
// healthy peers — rather than stalling behind the dead connection.
func TestApplyLoopSurvivesWedgedPeer(t *testing.T) {
	cluster := types.NewConfig(1)
	ks := crypto.NewKeyStore([]byte("egress-wedge"), cluster.N, 4)
	ring := ks.NodeRing(0)
	ring.WarmPairKeys(cluster.N, 4)
	node := core.New(core.Config{Cluster: cluster, Node: 0, BatchTimeout: time.Millisecond}, ring)

	net := memnet.NewNetwork()
	we := &wedgeEndpoint{Transport: net.Endpoint(NodeName(0)), wedged: NodeName(1), unblock: make(chan struct{})}
	healthy := net.Endpoint(NodeName(2))
	clientEp := net.Endpoint(ClientName(1))

	nr := StartNodeOpts(node, we, cluster, NodeOptions{IngressWorkers: 2})
	defer nr.Stop()
	// Unwedge before Stop (defers run LIFO): Stop waits for the egress
	// workers, and a worker parked inside the wedged Send can only observe
	// shutdown once its in-flight write returns. Live transports bound that
	// write (tcpnet's deadline tears the connection down); the test double
	// blocks unconditionally, so the test must release it itself.
	defer close(we.unblock)

	// Drive the node with authenticated client requests; each one makes it
	// PROPAGATE to all peers, including the wedged one.
	cl := ks.ClientRing(1)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			req := &message.Request{Client: 1, ID: types.RequestID(i + 1), Op: []byte(fmt.Sprintf("op%d", i))}
			req.Sig = cl.Sign(req.SignedBody())
			req.Auth = cl.AuthenticatorForNodes(cluster.N, req.Body())
			_ = clientEp.Send(NodeName(0), req.Marshal(nil))
		}
	}()

	// The healthy peer must keep receiving protocol traffic for all n
	// requests even though every frame toward node/1 wedges its worker.
	seen := 0
	deadline := time.After(20 * time.Second)
	for seen < n {
		select {
		case <-healthy.Packets():
			seen++
		case <-deadline:
			t.Fatalf("apply loop stalled behind the wedged peer: healthy peer saw %d/%d frames (blocked sends: %d)",
				seen, n, we.blocked.Load())
		}
	}
	if we.blocked.Load() == 0 {
		t.Fatal("test vacuous: nothing ever blocked toward the wedged peer")
	}
}

// BenchmarkEgress measures the full emit path — pooled encode, fan-out to
// three peer queues, coalesced flush — as the apply loop experiences it.
func BenchmarkEgress(b *testing.B) {
	net := memnet.NewNetwork()
	ep := net.Endpoint("node/0")
	for i := 1; i < 4; i++ {
		sink := net.Endpoint(NodeName(types.NodeID(i)))
		go func() {
			for range sink.Packets() {
			}
		}()
	}
	stop := make(chan struct{})
	defer close(stop)
	eg := newEgress(ep, nil, "node/0", 0, nil, stop)
	msg := &message.Prepare{Instance: 0, View: 1, Seq: 2, Node: 0, Auth: make(crypto.Authenticator, 4)}
	peers := []string{"node/1", "node/2", "node/3"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &egressFrame{buf: message.Encode(msg), refs: int32(len(peers))}
		for _, p := range peers {
			eg.enqueue(p, f)
		}
	}
}
