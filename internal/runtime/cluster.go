package runtime

import (
	"fmt"
	"path/filepath"
	"time"

	"rbft/internal/app"
	"rbft/internal/client"
	"rbft/internal/core"
	"rbft/internal/crypto"
	"rbft/internal/monitor"
	"rbft/internal/obs"
	"rbft/internal/transport"
	"rbft/internal/transport/memnet"
	"rbft/internal/transport/tcpnet"
	"rbft/internal/transport/udpnet"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// TransportKind selects the wire for a local cluster.
type TransportKind int

// Supported transports.
const (
	// Mem wires the cluster through in-process channels.
	Mem TransportKind = iota + 1
	// TCP wires the cluster over loopback TCP (the deployment default).
	TCP
	// UDP wires the cluster over loopback UDP.
	UDP
)

// ClusterOptions configures StartLocalCluster.
type ClusterOptions struct {
	// F is the number of tolerated faults; the cluster has 3f+1 nodes.
	F int
	// Transport selects the wire (default Mem).
	Transport TransportKind
	// NewApp builds each node's application instance (default app.Null).
	NewApp func(n types.NodeID) app.Application
	// OrderingMode selects which instances' orderings reach execution
	// (default master-only; see docs/ORDERING.md). Applies to every node:
	// the mode is a cluster-wide protocol parameter.
	OrderingMode types.OrderingMode
	// ExecWorkers sets each node's parallel execution worker count
	// (core.Config.ExecWorkers, docs/EXECUTION.md). Parallel apply engages
	// only when >= 2 AND the application implements app.ConflictKeyer;
	// otherwise nodes keep the serial execution path.
	ExecWorkers int
	// Tune adjusts each node's configuration before start.
	Tune func(c *core.Config)
	// Secret seeds the cluster key store.
	Secret []byte
	// MaxClients bounds the client id space (default 64).
	MaxClients int
	// RetransmitTimeout configures client retransmission (default 500ms).
	RetransmitTimeout time.Duration
	// Metrics, when set, receives node and transport counters (message
	// volumes, ordering latency, transport drops).
	Metrics *obs.Registry
	// Tracer, when set, receives every node's protocol events (e.g. an
	// obs.FlightRecorder for post-mortem inspection).
	Tracer obs.Tracer
	// IngressWorkers sets each node's preverify worker-pool size (0 means
	// DefaultIngressWorkers()).
	IngressWorkers int
	// EgressFlushInterval is each node's egress linger window (see
	// NodeOptions.EgressFlushInterval; 0 means greedy flushing).
	EgressFlushInterval time.Duration
	// DataDir, when set, turns on durability: each node keeps a WAL under
	// DataDir/node-<i>, persists crash-survivable state before it becomes
	// externally visible, and recovers from it on (re)start.
	DataDir string
	// WALTune adjusts each node's WAL options (group-commit interval and
	// thresholds) before the log is opened. Only used with DataDir.
	WALTune func(o *wal.Options)
}

// LocalCluster is a full RBFT cluster running inside one process, over
// in-memory channels or real loopback sockets. It backs the examples, the
// integration tests and the cmd tools' --local mode.
type LocalCluster struct {
	Cluster types.Config

	opts  ClusterOptions
	ks    *crypto.KeyStore
	net   *memnet.Network
	nodes []*NodeRuntime
	wals  []*wal.Log        // per node; nil entries without DataDir
	addrs map[string]string // endpoint name -> dial address (tcp/udp)

	clients []*ClientRuntime
}

// StartLocalCluster boots 3f+1 nodes and returns the running cluster.
func StartLocalCluster(opts ClusterOptions) (*LocalCluster, error) {
	if opts.Transport == 0 {
		opts.Transport = Mem
	}
	if opts.MaxClients == 0 {
		opts.MaxClients = 64
	}
	if opts.Secret == nil {
		opts.Secret = []byte("rbft-local-cluster")
	}
	if opts.RetransmitTimeout == 0 {
		opts.RetransmitTimeout = 500 * time.Millisecond
	}
	cluster := types.NewConfig(opts.F)
	lc := &LocalCluster{
		Cluster: cluster,
		opts:    opts,
		ks:      crypto.NewKeyStore(opts.Secret, cluster.N, opts.MaxClients),
		addrs:   make(map[string]string),
	}
	if opts.Transport == Mem {
		lc.net = memnet.NewNetwork()
	}

	// First pass: create transports so every node's address is known.
	transports := make([]transport.Transport, cluster.N)
	for i := 0; i < cluster.N; i++ {
		tr, err := lc.listen(NodeName(types.NodeID(i)))
		if err != nil {
			lc.Stop()
			return nil, err
		}
		transports[i] = tr
	}
	lc.connectPeers(transports)

	// Second pass: start the nodes.
	lc.nodes = make([]*NodeRuntime, cluster.N)
	lc.wals = make([]*wal.Log, cluster.N)
	for i := 0; i < cluster.N; i++ {
		if err := lc.startNode(types.NodeID(i), transports[i]); err != nil {
			lc.Stop()
			return nil, err
		}
	}
	return lc, nil
}

// startNode builds node id (recovering it from its WAL when durability is
// on) and launches its runtime over tr. Used both at boot and by
// RestartNode.
func (lc *LocalCluster) startNode(id types.NodeID, tr transport.Transport) error {
	cfg := core.Config{
		Cluster: lc.Cluster,
		Node:    id,
		Monitoring: monitor.Config{
			Period:      250 * time.Millisecond,
			Delta:       0.5,
			MinRequests: 32,
		},
		BatchTimeout: 2 * time.Millisecond,
		OrderingMode: lc.opts.OrderingMode,
		ExecWorkers:  lc.opts.ExecWorkers,
		Durable:      lc.opts.DataDir != "",
	}
	if lc.opts.NewApp != nil {
		cfg.App = lc.opts.NewApp(id)
	}
	if lc.opts.Tune != nil {
		lc.opts.Tune(&cfg)
	}
	if cfg.App == nil {
		cfg.App = app.Null{}
	}
	cfg.App = InstrumentApp(cfg.App, lc.opts.Tracer, id)
	ring := lc.ks.NodeRing(id)
	// Derive the pairwise MAC keys up front so the ingress pipeline
	// never pays key derivation under load.
	ring.WarmPairKeys(lc.Cluster.N, lc.opts.MaxClients)
	node := core.New(cfg, ring)
	if lc.opts.Tracer != nil {
		node.SetTracer(lc.opts.Tracer)
	}
	if lc.opts.Metrics != nil {
		node.SetRegistry(lc.opts.Metrics)
	}

	var w *wal.Log
	if lc.opts.DataDir != "" {
		wopts := wal.Options{Dir: filepath.Join(lc.opts.DataDir, fmt.Sprintf("node-%d", id))}
		if lc.opts.WALTune != nil {
			lc.opts.WALTune(&wopts)
		}
		var err error
		w, err = OpenNodeWAL(node, wopts, lc.opts.Metrics)
		if err != nil {
			return fmt.Errorf("runtime: node %d: %w", id, err)
		}
	}
	lc.wals[id] = w
	lc.nodes[id] = StartNodeOpts(node, tr, lc.Cluster, NodeOptions{
		IngressWorkers:      lc.opts.IngressWorkers,
		WAL:                 w,
		EgressFlushInterval: lc.opts.EgressFlushInterval,
		Metrics:             lc.opts.Metrics,
		Tracer:              lc.opts.Tracer,
	})
	return nil
}

// OpenNodeWAL opens (or creates) a node's WAL and replays it into the
// freshly constructed node, which must have been built with Durable set and
// must not have processed any input yet. Recovery is instrumented on reg:
// rbft_wal_recovery_us holds the last replay's duration and
// rbft_wal_replayed_records how many records it carried.
func OpenNodeWAL(node *core.Node, wopts wal.Options, reg *obs.Registry) (*wal.Log, error) {
	start := time.Now()
	w, err := wal.Open(wopts)
	if err != nil {
		return nil, fmt.Errorf("open wal: %w", err)
	}
	w.SetMetrics(reg)
	if _, err := node.Restore(w.Replay); err != nil {
		w.Close()
		return nil, fmt.Errorf("recover from wal: %w", err)
	}
	if reg != nil {
		reg.Gauge("rbft_wal_recovery_us").Set(time.Since(start).Microseconds())
		reg.Gauge("rbft_wal_replayed_records").Set(int64(w.Replayed()))
	}
	return w, nil
}

// RestartNode simulates a crash and recovery of node id: the runtime is
// stopped and discarded, and a brand-new node (fresh application instance
// included) is rebuilt purely from the WAL in the cluster's data directory,
// rejoining on the same endpoint name. Requires DataDir.
func (lc *LocalCluster) RestartNode(id types.NodeID) error {
	if lc.opts.DataDir == "" {
		return fmt.Errorf("runtime: RestartNode requires ClusterOptions.DataDir")
	}
	lc.nodes[id].Stop()
	if w := lc.wals[id]; w != nil {
		w.Close()
		lc.wals[id] = nil
	}
	tr, err := lc.listen(NodeName(id))
	if err != nil {
		return err
	}
	if lc.opts.Transport != Mem {
		// The reborn endpoint has a new port: refresh everyone's peer table.
		lc.addPeersTo(tr)
		for i, nr := range lc.nodes {
			if types.NodeID(i) != id {
				lc.addPeersTo(nr.tr)
			}
		}
		for _, cr := range lc.clients {
			lc.addPeersTo(cr.tr)
		}
	}
	return lc.startNode(id, tr)
}

// listen creates one endpoint of the configured kind.
func (lc *LocalCluster) listen(name string) (transport.Transport, error) {
	switch lc.opts.Transport {
	case Mem:
		ep := lc.net.Endpoint(name)
		ep.SetMetrics(transport.NewMetrics(lc.opts.Metrics, "mem"))
		return ep, nil
	case TCP:
		ep, err := tcpnet.Listen(name, "127.0.0.1:0", nil)
		if err != nil {
			return nil, err
		}
		ep.SetMetrics(transport.NewMetrics(lc.opts.Metrics, "tcp"))
		lc.addrs[name] = ep.Addr()
		return ep, nil
	case UDP:
		ep, err := udpnet.Listen(name, "127.0.0.1:0", nil)
		if err != nil {
			return nil, err
		}
		ep.SetMetrics(transport.NewMetrics(lc.opts.Metrics, "udp"))
		lc.addrs[name] = ep.Addr()
		return ep, nil
	default:
		return nil, fmt.Errorf("runtime: unknown transport kind %d", lc.opts.Transport)
	}
}

// connectPeers registers every node address with every endpoint.
func (lc *LocalCluster) connectPeers(eps []transport.Transport) {
	for _, ep := range eps {
		lc.addPeersTo(ep)
	}
}

func (lc *LocalCluster) addPeersTo(ep transport.Transport) {
	switch e := ep.(type) {
	case *tcpnet.Endpoint:
		for name, addr := range lc.addrs {
			if name != e.Name() {
				e.AddPeer(name, addr)
			}
		}
	case *udpnet.Endpoint:
		for name, addr := range lc.addrs {
			if name != e.Name() {
				_ = e.AddPeer(name, addr)
			}
		}
	}
}

// NewClient starts a client runtime attached to the cluster.
func (lc *LocalCluster) NewClient(id types.ClientID) (*ClientRuntime, error) {
	tr, err := lc.listen(ClientName(id))
	if err != nil {
		return nil, err
	}
	// Tell every node how to reach this client, and this client how to
	// reach every node.
	if lc.opts.Transport != Mem {
		for _, nr := range lc.nodes {
			lc.addPeersTo(nr.tr)
		}
		lc.addPeersTo(tr)
	}
	cl := client.New(client.Config{
		Cluster:           lc.Cluster,
		ID:                id,
		RetransmitTimeout: lc.opts.RetransmitTimeout,
	}, lc.ks.ClientRing(id))
	cr := StartClient(cl, tr, lc.Cluster)
	lc.clients = append(lc.clients, cr)
	return cr, nil
}

// Node returns the runtime of node i (fault injection in tests).
func (lc *LocalCluster) Node(i types.NodeID) *NodeRuntime { return lc.nodes[i] }

// Stop shuts down all clients and nodes, flushing and closing any WALs.
func (lc *LocalCluster) Stop() {
	for _, cr := range lc.clients {
		cr.Stop()
	}
	for _, nr := range lc.nodes {
		if nr != nil {
			nr.Stop()
		}
	}
	for i, w := range lc.wals {
		if w != nil {
			w.Close()
			lc.wals[i] = nil
		}
	}
}
