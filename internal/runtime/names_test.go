package runtime

import "testing"

func TestNames(t *testing.T) {
	if got := NodeName(3); got != "node/3" {
		t.Errorf("NodeName(3) = %q", got)
	}
	if got := ClientName(7); got != "client/7" {
		t.Errorf("ClientName(7) = %q", got)
	}
}

func TestParseName(t *testing.T) {
	tests := []struct {
		in      string
		kind    string
		id      int
		wantErr bool
	}{
		{in: "node/0", kind: "node", id: 0},
		{in: "node/12", kind: "node", id: 12},
		{in: "client/5", kind: "client", id: 5},
		{in: "garbage", wantErr: true},
		{in: "node/x", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		kind, id, err := parseName(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseName(%q) succeeded, want error", tt.in)
			}
			continue
		}
		if err != nil || kind != tt.kind || id != tt.id {
			t.Errorf("parseName(%q) = (%q, %d, %v), want (%q, %d)", tt.in, kind, id, err, tt.kind, tt.id)
		}
	}
}
