package runtime

import (
	"testing"
	"time"

	"rbft/internal/obs"
)

// TestRuntimeEmitsLifecycleSpans drives a live durable cluster through a
// few requests and checks the runtime-owned lifecycle spans — ingress,
// preverify, execute, wal-durable, egress — land in the tracer with the
// same schema the simulator emits, so rbft-trace can analyze either.
func TestRuntimeEmitsLifecycleSpans(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.DefaultRecorderSize)
	lc, err := StartLocalCluster(ClusterOptions{
		F:       1,
		Tracer:  fr,
		DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Stop)

	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cr.Stop)
	for i := 0; i < 5; i++ {
		if _, err := cr.Invoke(nil, 10*time.Second); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	seen := map[obs.Stage]int{}
	for _, ev := range fr.Events() {
		if ev.Type == obs.EvSpan {
			seen[ev.Stage]++
			if ev.Dur < 0 {
				t.Fatalf("negative span duration: %+v", ev)
			}
		}
	}
	for _, st := range []obs.Stage{
		obs.StageIngress, obs.StagePreverify, obs.StagePropose,
		obs.StagePrepareQuorum, obs.StageCommitQuorum, obs.StageOrder,
		obs.StageExecute, obs.StageWALDurable, obs.StageEgress,
	} {
		if seen[st] == 0 {
			t.Fatalf("no %s spans recorded (saw %v)", st, seen)
		}
	}
	// Reply transit is unobservable server-side: a runtime trace must not
	// fabricate reply spans.
	if seen[obs.StageReply] != 0 {
		t.Fatalf("runtime emitted %d reply spans; reply transit is simulator-only", seen[obs.StageReply])
	}
}
