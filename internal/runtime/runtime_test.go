package runtime

import (
	"fmt"
	"testing"
	"time"

	"rbft/internal/app"
	"rbft/internal/core"
	"rbft/internal/obs"
	"rbft/internal/pbft"
	"rbft/internal/types"
)

func startCluster(t *testing.T, kind TransportKind, tune func(*core.Config)) (*LocalCluster, []*app.Counter) {
	t.Helper()
	var apps []*app.Counter
	lc, err := StartLocalCluster(ClusterOptions{
		F:         1,
		Transport: kind,
		NewApp: func(n types.NodeID) app.Application {
			c := app.NewCounter()
			apps = append(apps, c)
			return c
		},
		Tune: tune,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Stop)
	return lc, apps
}

func testEndToEnd(t *testing.T, kind TransportKind) {
	lc, apps := startCluster(t, kind, nil)
	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		done, err := cr.Invoke(nil, 10*time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if done.Latency <= 0 {
			t.Fatalf("request %d: non-positive latency", i)
		}
	}
	// All nodes converge to the same execution history.
	deadline := time.Now().Add(5 * time.Second)
	for {
		same := true
		for i := 1; i < len(apps); i++ {
			if apps[i].Fingerprint() != apps[0].Fingerprint() {
				same = false
			}
		}
		if same && apps[0].Total(1) == 10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes did not converge: totals %d, fingerprints diverge=%v",
				apps[0].Total(1), !same)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestEndToEndMem(t *testing.T) { testEndToEnd(t, Mem) }
func TestEndToEndTCP(t *testing.T) { testEndToEnd(t, TCP) }
func TestEndToEndUDP(t *testing.T) { testEndToEnd(t, UDP) }

func TestOpenLoopBurstTCP(t *testing.T) {
	lc, _ := startCluster(t, TCP, nil)
	cr, err := lc.NewClient(2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		cr.Submit([]byte(fmt.Sprintf("op-%d", i)))
	}
	got := 0
	deadline := time.After(30 * time.Second)
	for got < n {
		select {
		case <-cr.Completions():
			got++
		case <-deadline:
			t.Fatalf("completed %d of %d burst requests", got, n)
		}
	}
}

func TestTwoClientsConcurrentlyTCP(t *testing.T) {
	lc, apps := startCluster(t, TCP, nil)
	var crs []*ClientRuntime
	for id := types.ClientID(1); id <= 2; id++ {
		cr, err := lc.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		crs = append(crs, cr)
	}
	const n = 20
	errs := make(chan error, 2)
	for _, cr := range crs {
		go func(cr *ClientRuntime) {
			for i := 0; i < n; i++ {
				if _, err := cr.Invoke(nil, 10*time.Second); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(cr)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for apps[0].Total(1) != n || apps[0].Total(2) != n {
		if time.Now().After(deadline) {
			t.Fatalf("totals %d/%d, want %d/%d", apps[0].Total(1), apps[0].Total(2), n, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestIngressAdmissionControl(t *testing.T) {
	// With a one-slot ingress budget, a burst of client frames must be shed
	// at the reader — before the crypto stage — yet the protocol still
	// completes every request through client retransmission.
	reg := obs.NewRegistry()
	var apps []*app.Counter
	lc, err := StartLocalCluster(ClusterOptions{
		F:         1,
		Transport: Mem,
		Metrics:   reg,
		NewApp: func(n types.NodeID) app.Application {
			c := app.NewCounter()
			apps = append(apps, c)
			return c
		},
		RetransmitTimeout: 50 * time.Millisecond,
		Tune:              func(c *core.Config) { c.IngressBudget = 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Stop)
	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		cr.Submit([]byte(fmt.Sprintf("op-%d", i)))
	}
	got := 0
	deadline := time.After(30 * time.Second)
	for got < n {
		select {
		case <-cr.Completions():
			got++
		case <-deadline:
			t.Fatalf("completed %d of %d requests under admission control", got, n)
		}
	}
	admitted := reg.Counter("rbft_ingress_admitted_total").Value()
	rejected := reg.Counter("rbft_ingress_rejected_total").Value()
	if admitted == 0 {
		t.Fatal("no client frames counted as admitted")
	}
	if rejected == 0 {
		t.Fatal("a one-slot budget under a 50-request burst shed nothing")
	}
}

func TestInstanceChangeOverLiveTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-cluster test")
	}
	lc, _ := startCluster(t, Mem, func(c *core.Config) {
		c.Monitoring.Period = 150 * time.Millisecond
		c.Monitoring.Delta = 0.5
		c.Monitoring.MinRequests = 10
	})
	// Silence the master instance's primary replica: node 0 in view 0.
	lc.Node(0).WithNode(func(n *core.Node) core.Output {
		n.SetBehavior(core.Behavior{Instance: map[types.InstanceID]pbft.Behavior{
			types.MasterInstance: {Silent: true},
		}})
		return core.Output{}
	})
	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	// Open-loop load; completions only resume after the instance change.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				cr.Submit(nil)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	defer close(stop)

	deadline := time.After(30 * time.Second)
	for {
		select {
		case <-cr.Completions():
			// A completion implies the master instance made progress, which
			// requires the instance change to have replaced the silent
			// primary.
			var view types.View
			lc.Node(1).WithNode(func(n *core.Node) core.Output {
				view = n.View()
				return core.Output{}
			})
			if view == 0 {
				t.Fatal("completion without an instance change — master primary was silent")
			}
			return
		case <-deadline:
			t.Fatal("no completion: instance change never recovered liveness")
		}
	}
}

func TestMultiPrimaryEndToEndLive(t *testing.T) {
	// Multi-primary ordering over a live transport: clients land on both
	// partitions, every node executes the same merged order, and the idle
	// stretches of each lane are bridged by filler batches.
	var apps []*app.Counter
	lc, err := StartLocalCluster(ClusterOptions{
		F:            1,
		Transport:    Mem,
		OrderingMode: types.OrderingMultiPrimary,
		NewApp: func(n types.NodeID) app.Application {
			c := app.NewCounter()
			apps = append(apps, c)
			return c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Stop)

	// Client 1 → lane 1, client 2 → lane 0 (PartitionOf is id % instances).
	const n = 10
	for id := types.ClientID(1); id <= 2; id++ {
		cr, err := lc.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := cr.Invoke(nil, 10*time.Second); err != nil {
				t.Fatalf("client %d request %d: %v", id, i, err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		same := true
		for i := 1; i < len(apps); i++ {
			if apps[i].Fingerprint() != apps[0].Fingerprint() {
				same = false
			}
		}
		if same && apps[0].Total(1) == n && apps[0].Total(2) == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes did not converge: totals %d/%d, fingerprints diverge=%v",
				apps[0].Total(1), apps[0].Total(2), !same)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
