package runtime

import (
	"time"

	"rbft/internal/app"
	"rbft/internal/obs"
	"rbft/internal/types"
)

// InstrumentApp wraps an application so every Execute is timed and emitted
// as an execute-stage span on t, stamped with node. Spans without a digest
// in hand carry Trace 0 and join the rest of the request's lifecycle on
// (Client, Req), per the span schema in docs/OBSERVABILITY.md. When the
// tracer opted out of spans, a is returned unwrapped. The wrapper preserves
// an app.ConflictKeyer implementation: instrumentation must not silently
// demote a keyed application to the serial execution path.
func InstrumentApp(a app.Application, t obs.Tracer, node types.NodeID) app.Application {
	if !obs.WantSpans(t) {
		return a
	}
	ia := &instrumentedApp{app: a, tr: obs.WithNode(t, node)}
	if k, ok := a.(app.ConflictKeyer); ok {
		return &instrumentedKeyedApp{instrumentedApp: ia, keyer: k}
	}
	return ia
}

type instrumentedApp struct {
	app app.Application
	tr  obs.Tracer
}

func (ia *instrumentedApp) Execute(client types.ClientID, id types.RequestID, op []byte) []byte {
	t0 := time.Now()
	res := ia.app.Execute(client, id, op)
	t1 := time.Now()
	ia.tr.Trace(obs.Event{
		At: t1, Type: obs.EvSpan, Stage: obs.StageExecute,
		Client: client, Req: id, Dur: t1.Sub(t0),
	})
	return res
}

// instrumentedKeyedApp forwards the wrapped application's conflict keys so
// the exec scheduler still sees them through the instrumentation layer.
type instrumentedKeyedApp struct {
	*instrumentedApp
	keyer app.ConflictKeyer
}

func (ia *instrumentedKeyedApp) Keys(op []byte) (reads, writes []string) {
	return ia.keyer.Keys(op)
}
