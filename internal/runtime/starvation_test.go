package runtime

import (
	"bytes"
	stdruntime "runtime"
	"testing"
	"time"

	"rbft/internal/core"
	"rbft/internal/types"
)

// TestTimerNotStarvedByIngressFlood pins the deadline-based timer fix in the
// apply loop: protocol ticks must fire even when the ingress queue never
// drains. The batch size is set far above the offered load, so the single
// client request can only be ordered when the primary's BatchTimeout tick
// fires — under a strict-FIFO apply loop a sustained garbage flood keeps the
// pending queue non-empty and can postpone that tick indefinitely; with the
// fix, any overdue tick runs ahead of the next queued frame.
func TestTimerNotStarvedByIngressFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-flood test")
	}
	lc, _ := startCluster(t, Mem, func(c *core.Config) {
		// A batch never fills; ordering depends entirely on BatchTimeout.
		c.BatchSize = 10000
		c.BatchTimeout = 5 * time.Millisecond
	})

	// Flood every node with malformed frames from a fake client endpoint.
	// The frames fail preverify (decode error), so they are cheap — the
	// pressure is on the ingress queue, not the verifiers. memnet drops on
	// overflow, so the flooder can spin without blocking; it yields each
	// burst so single-CPU runs still schedule the pipelines it is flooding.
	flood := lc.net.Endpoint(ClientName(60))
	garbage := bytes.Repeat([]byte{0x7f}, 48)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				for burst := 0; burst < 8; burst++ {
					for i := 0; i < lc.Cluster.N; i++ {
						_ = flood.Send(NodeName(types.NodeID(i)), garbage)
					}
				}
				stdruntime.Gosched()
			}
		}
	}()
	defer func() { close(stop); <-done }()

	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Invoke([]byte("under-flood"), 15*time.Second); err != nil {
		t.Fatalf("request starved under ingress flood: %v", err)
	}
}
