package runtime

import (
	"testing"
	"time"

	"rbft/internal/core"
	"rbft/internal/pbft"
	"rbft/internal/types"
)

// TestCrashedNonPrimaryNodeTolerated: with f=1, one silent node (not hosting
// the master primary) must not affect liveness.
func TestCrashedNonPrimaryNodeTolerated(t *testing.T) {
	lc, apps := startCluster(t, Mem, nil)
	lc.Node(3).WithNode(func(n *core.Node) core.Output {
		n.SetBehavior(core.Behavior{Silent: true})
		return core.Output{}
	})
	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cr.Invoke(nil, 10*time.Second); err != nil {
			t.Fatalf("request %d with crashed node: %v", i, err)
		}
	}
	// The three live nodes agree.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if apps[0].Fingerprint() == apps[1].Fingerprint() &&
			apps[1].Fingerprint() == apps[2].Fingerprint() &&
			apps[0].Total(1) == 10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("live nodes diverged or stalled: totals %d/%d/%d",
				apps[0].Total(1), apps[1].Total(1), apps[2].Total(1))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSilentBackupInstanceReplicasTolerated: the worst-attack-1 fault shape
// over a live transport — one node's master-instance replica goes silent but
// the node itself keeps propagating.
func TestSilentMasterInstanceReplicaTolerated(t *testing.T) {
	lc, _ := startCluster(t, Mem, nil)
	// Node 3 is not the master primary (node 0 is, in view 0); silencing
	// its master-instance replica must not stall ordering.
	lc.Node(3).WithNode(func(n *core.Node) core.Output {
		n.SetBehavior(core.Behavior{Instance: map[types.InstanceID]pbft.Behavior{
			types.MasterInstance: {Silent: true},
		}})
		return core.Output{}
	})
	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cr.Invoke(nil, 10*time.Second); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

// TestDuplicateAndReplayedTraffic: replaying captured frames must not break
// safety (the counter increments exactly once per request).
func TestDuplicateAndReplayedTraffic(t *testing.T) {
	lc, apps := startCluster(t, Mem, nil)
	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	done, err := cr.Invoke(nil, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.ID != 1 {
		t.Fatalf("request id = %d", done.ID)
	}
	// Invoke returns on f+1 matching replies, which does not imply node 0
	// has executed yet; wait until it has before asserting stability.
	deadline := time.Now().Add(5 * time.Second)
	for apps[0].Total(1) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("node 0 never executed the request: total %d", apps[0].Total(1))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Give any stray duplicates (client retransmissions, PROPAGATE echoes)
	// time to (incorrectly) execute a second time.
	time.Sleep(200 * time.Millisecond)
	if after := apps[0].Total(1); after != 1 {
		t.Fatalf("counter moved from 1 to %d without new requests", after)
	}
}
