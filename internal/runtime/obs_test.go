package runtime

import (
	"testing"
	"time"

	"rbft/internal/app"
	"rbft/internal/core"
	"rbft/internal/message"
	"rbft/internal/obs"
	"rbft/internal/types"
)

func counterValue(reg *obs.Registry, name string) float64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// TestFloodDropsCountedAtTransport drives the full flood-defence path over a
// live cluster: a peer floods invalid traffic, the victim's core closes the
// peer's NIC, the runtime enforces the closure at the transport, and the
// transport's drop counter records the subsequently discarded frames.
func TestFloodDropsCountedAtTransport(t *testing.T) {
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(obs.DefaultRecorderSize)
	lc, err := StartLocalCluster(ClusterOptions{
		F: 1,
		NewApp: func(n types.NodeID) app.Application {
			return app.NewCounter()
		},
		Tune: func(c *core.Config) {
			c.FloodThreshold = 8
			c.FloodWindow = 10 * time.Second
			c.NICClosePeriod = 30 * time.Second
		},
		Metrics: reg,
		Tracer:  fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Stop)

	// Node 3 floods node 0 with invalid frames. After FloodThreshold of
	// them, node 0 closes its NIC toward node/3; the frames that keep
	// arriving must be dropped at the transport and counted.
	flood := func() {
		lc.Node(3).WithNode(func(n *core.Node) core.Output {
			var out core.Output
			for i := 0; i < 16; i++ {
				out.NodeMsgs = append(out.NodeMsgs, core.NodeSend{
					Msg: &message.Invalid{Node: 3, Padding: make([]byte, 32)},
					To:  []types.NodeID{0},
				})
			}
			return out
		})
	}

	const (
		closures = `rbft_transport_peer_closures_total{transport="mem"}`
		dropped  = `rbft_transport_dropped_total{transport="mem"}`
	)
	deadline := time.Now().Add(10 * time.Second)
	for counterValue(reg, closures) == 0 || counterValue(reg, dropped) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flood not reflected in transport counters: closures=%v dropped=%v",
				counterValue(reg, closures), counterValue(reg, dropped))
		}
		flood()
		time.Sleep(20 * time.Millisecond)
	}

	// The flight recorder must hold the protocol-level view of the same
	// incident: an EvNICClose emitted by node 0 against peer 3.
	sawClose := false
	for _, ev := range fr.Events() {
		if ev.Type == obs.EvNICClose && ev.Node == 0 && ev.Peer == 3 {
			sawClose = true
		}
	}
	if !sawClose {
		t.Fatal("flight recorder holds no nic-close event for node 0 / peer 3")
	}
}
