package runtime

import (
	"fmt"
	"testing"
	"time"

	"rbft/internal/app"
	"rbft/internal/obs"
	"rbft/internal/types"
)

// TestParallelExecutionEndToEnd runs a live cluster with the wave scheduler
// engaged (KV app + ExecWorkers) under a conflict-mixed workload and checks
// that every node converges to the same store and every reply is correct.
func TestParallelExecutionEndToEnd(t *testing.T) {
	var kvs []*app.KV
	lc, err := StartLocalCluster(ClusterOptions{
		F: 1,
		NewApp: func(n types.NodeID) app.Application {
			kv := app.NewKV()
			kvs = append(kvs, kv)
			return kv
		},
		ExecWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Stop)

	cr, err := lc.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for _, op := range []string{
			fmt.Sprintf("PUT hot v%d", i),
			fmt.Sprintf("PUT k%d x", i),
			"GET hot",
		} {
			done, err := cr.Invoke([]byte(op), 10*time.Second)
			if err != nil {
				t.Fatalf("%q: %v", op, err)
			}
			if op == "GET hot" {
				if want := fmt.Sprintf("v%d", i); string(done.Result) != want {
					t.Fatalf("GET hot = %q, want %q", done.Result, want)
				}
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		want := fmt.Sprint(kvs[0].Snapshot())
		same := kvs[0].Len() == 11
		for i := 1; i < len(kvs); i++ {
			if fmt.Sprint(kvs[i].Snapshot()) != want {
				same = false
			}
		}
		if same {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stores did not converge: node 0 has %d keys", kvs[0].Len())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestInstrumentAppPreservesConflictKeyer: wrapping a keyed application for
// span tracing must not hide its ConflictKeyer — otherwise turning on
// observability would silently disable parallel execution.
func TestInstrumentAppPreservesConflictKeyer(t *testing.T) {
	rec := obs.NewFlightRecorder(16)
	wrapped := InstrumentApp(app.NewKV(), rec, 0)
	k, ok := wrapped.(app.ConflictKeyer)
	if !ok {
		t.Fatal("instrumented KV lost its ConflictKeyer")
	}
	reads, writes := k.Keys([]byte("GET a"))
	if len(reads) != 1 || reads[0] != "a" || len(writes) != 0 {
		t.Fatalf("forwarded Keys = (%v, %v), want ([a], [])", reads, writes)
	}
	if _, ok := InstrumentApp(app.Null{}, rec, 0).(app.ConflictKeyer); ok {
		t.Fatal("instrumented Null gained a ConflictKeyer it never had")
	}
}
