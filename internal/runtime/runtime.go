// Package runtime drives the RBFT state machines in real time over a live
// transport: one goroutine per node (and per client) multiplexes incoming
// packets and timers, feeds them to the pure state machines, and transmits
// the resulting messages. This is the deployment path; the discrete-event
// simulator in internal/sim drives the same state machines in virtual time.
package runtime

import (
	"fmt"
	stdruntime "runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"rbft/internal/client"
	"rbft/internal/core"
	"rbft/internal/message"
	"rbft/internal/obs"
	"rbft/internal/transport"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// NodeName returns the canonical endpoint name of a node.
func NodeName(id types.NodeID) string { return "node/" + strconv.Itoa(int(id)) }

// ClientName returns the canonical endpoint name of a client.
func ClientName(id types.ClientID) string { return "client/" + strconv.Itoa(int(id)) }

// parseName splits an endpoint name into kind and numeric id.
func parseName(name string) (kind string, id int, err error) {
	k, v, ok := strings.Cut(name, "/")
	if !ok {
		return "", 0, fmt.Errorf("runtime: malformed endpoint name %q", name)
	}
	id, err = strconv.Atoi(v)
	if err != nil {
		return "", 0, fmt.Errorf("runtime: malformed endpoint name %q: %w", name, err)
	}
	return k, id, nil
}

// NodeOptions tunes a node runtime.
type NodeOptions struct {
	// IngressWorkers is the number of verifier goroutines in the preverify
	// stage (0 means DefaultIngressWorkers()).
	IngressWorkers int
	// WAL, when set, receives every durability record the node emits; an
	// output's records are persisted (group-committed and fsynced) before
	// any of its messages are transmitted. The node must have been built
	// with core.Config.Durable, and restored from this log, by the caller.
	// The caller keeps ownership: close it after Stop returns.
	WAL *wal.Log
	// EgressFlushInterval makes egress workers linger that long collecting
	// more frames before flushing a non-full batch. 0 (the default) flushes
	// greedily: a flush coalesces whatever queued while the previous flush
	// was on the wire, so coalescing is self-regulating under load and adds
	// no latency when idle.
	EgressFlushInterval time.Duration
	// Metrics, when set, receives the egress gauges and counters (per-link
	// queue depth and drops).
	Metrics *obs.Registry
	// Tracer, when set, additionally receives the runtime's own lifecycle
	// spans (ingress wait, preverify, WAL wait, egress) stamped with this
	// node's id, alongside whatever the caller installed on the node itself.
	// Span emission is skipped when the tracer opts out via obs.SpanSink.
	Tracer obs.Tracer
}

// DefaultIngressWorkers is the default preverify worker-pool size: one per
// CPU, capped — past a handful of workers the serial apply stage is the
// bottleneck and more verifiers only add scheduling noise.
func DefaultIngressWorkers() int {
	n := stdruntime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ingressQueueDepth bounds the in-flight ingress items between the reader,
// the verifier pool and the apply loop. Beyond it the reader blocks and the
// transport's own backpressure/drop policy takes over.
const ingressQueueDepth = 1024

// ingressItem is one raw frame travelling through the two-stage pipeline.
// ready is closed by the verifier worker once v/err are populated; the
// apply loop consumes items in arrival order and waits on ready, so apply
// order is ingress order regardless of which worker finishes first.
type ingressItem struct {
	data       []byte
	fromClient bool
	client     types.ClientID
	from       types.NodeID
	admitted   bool      // client frame holds an ingress-budget slot until applied
	at         time.Time // arrival stamp, set only when spans are on

	ready chan struct{}
	v     *message.Verified
	err   error
}

// NodeRuntime runs one RBFT node over a transport using the two-stage
// ingress pipeline (docs/PIPELINE.md): a reader goroutine classifies frames
// and enqueues them, a pool of verifier goroutines runs the stateless
// preverify stage concurrently, and the apply loop consumes verified items
// in arrival order, feeding the node state machine under the mutex. Crypto
// never runs under mu.
type NodeRuntime struct {
	cluster types.Config
	tr      transport.Transport
	pre     *message.Preverifier // stateless; shared by the verifier pool
	wal     *wal.Log             // nil unless durability is on
	self    types.NodeID         // immutable after construction
	eg      *egress              // per-peer send queues and workers

	mu   sync.Mutex
	node *core.Node // guarded by mu

	sp    obs.Tracer // node-stamped span sink; Nop unless spans are on
	spans bool       // cached obs.WantSpans(opts.Tracer)

	work    chan *ingressItem // reader -> verifier pool
	pending chan *ingressItem // reader -> apply loop, arrival-ordered
	stop    chan struct{}
	done    chan struct{} // apply loop exited
	wg      sync.WaitGroup
}

// StartNode launches the pipeline for node over tr with default options.
// The caller retains no right to touch node concurrently; use WithNode for
// synchronised access.
func StartNode(node *core.Node, tr transport.Transport, cluster types.Config) *NodeRuntime {
	return StartNodeOpts(node, tr, cluster, NodeOptions{})
}

// StartNodeOpts launches the pipeline for node over tr.
func StartNodeOpts(node *core.Node, tr transport.Transport, cluster types.Config, opts NodeOptions) *NodeRuntime {
	workers := opts.IngressWorkers
	if workers <= 0 {
		workers = DefaultIngressWorkers()
	}
	nr := &NodeRuntime{
		cluster: cluster,
		tr:      tr,
		pre:     node.Preverifier(),
		wal:     opts.WAL,
		self:    node.ID(),
		node:    node,
		work:    make(chan *ingressItem, ingressQueueDepth),
		pending: make(chan *ingressItem, ingressQueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	nr.spans = obs.WantSpans(opts.Tracer)
	if nr.spans {
		nr.sp = obs.WithNode(opts.Tracer, nr.self)
	} else {
		nr.sp = obs.Nop{}
	}
	nr.eg = newEgress(tr, opts.WAL, NodeName(nr.self), opts.EgressFlushInterval, opts.Metrics, nr.stop)
	nr.eg.sp, nr.eg.spans = nr.sp, nr.spans
	nr.wg.Add(1 + workers)
	for i := 0; i < workers; i++ {
		go nr.verifyLoop()
	}
	go nr.readLoop()
	go nr.applyLoop()
	return nr
}

// WithNode runs fn with exclusive access to the node state machine and
// transmits any output it produced (fault-injection hooks in tests).
func (nr *NodeRuntime) WithNode(fn func(n *core.Node) core.Output) {
	nr.mu.Lock()
	out := fn(nr.node)
	nr.mu.Unlock()
	nr.emit(out)
}

// Stop terminates the pipeline and waits for every stage — including the
// egress workers — to exit. The transport is closed as part of shutdown;
// frames still queued for egress are dropped (the protocol tolerates loss).
func (nr *NodeRuntime) Stop() {
	select {
	case <-nr.stop:
	default:
		close(nr.stop)
	}
	nr.tr.Close()
	<-nr.done
	nr.wg.Wait()
	nr.eg.wait()
}

// readLoop classifies raw frames and enqueues them: into work first (so the
// verifier pool can start, and so every item the apply loop ever sees is
// guaranteed to become ready), then into pending to fix the apply order.
func (nr *NodeRuntime) readLoop() {
	defer nr.wg.Done()
	defer close(nr.work)
	defer close(nr.pending)
	for p := range nr.tr.Packets() {
		it := nr.classify(p)
		if it == nil {
			continue
		}
		if it.fromClient {
			// Admission control (core.Config.IngressBudget): a client frame
			// claims a per-shard budget slot before it reaches the verifier
			// pool, so an overload burst is shed here — ahead of the crypto
			// stage, where the cost would be paid.
			//rbft:ignore lockdiscipline -- AdmitIngress touches only the lock-striped client table, never node state guarded by mu
			if !nr.node.AdmitIngress(it.client) {
				continue
			}
			it.admitted = true
		}
		select {
		case nr.work <- it:
		case <-nr.stop:
			return
		}
		select {
		case nr.pending <- it:
		case <-nr.stop:
			return
		}
	}
}

// classify parses the frame's origin; nil means an unattributable frame
// (unknown endpoint name), dropped before it costs anything.
func (nr *NodeRuntime) classify(p transport.Packet) *ingressItem {
	kind, id, err := parseName(p.From)
	if err != nil {
		return nil
	}
	it := &ingressItem{data: p.Data, ready: make(chan struct{})}
	if nr.spans {
		it.at = time.Now()
	}
	switch kind {
	case "client":
		it.fromClient = true
		it.client = types.ClientID(id)
	case "node":
		if id < 0 || id >= nr.cluster.N {
			return nil
		}
		it.from = types.NodeID(id)
	default:
		return nil
	}
	return it
}

// verifyLoop is one verifier worker: it runs the stateless preverify stage
// (decode + MAC/signature checks) with no access to node state, so any
// number of workers can run concurrently while the apply loop holds mu.
//
//rbft:verifier
func (nr *NodeRuntime) verifyLoop() {
	defer nr.wg.Done()
	for it := range nr.work {
		var t0 time.Time
		if nr.spans {
			t0 = time.Now()
		}
		if it.fromClient {
			it.v, it.err = nr.pre.PreverifyClientFrame(it.data, it.client)
		} else {
			it.v, it.err = nr.pre.PreverifyNodeFrame(it.data, it.from)
		}
		if nr.spans && it.fromClient && it.err == nil {
			nr.emitIngressSpans(it, t0)
		}
		close(it.ready)
	}
}

// emitIngressSpans emits a client request's ingress span (arrival to the
// start of preverification — the queue wait behind the verifier pool) and
// preverify span (the crypto itself), mirroring the simulator's schema.
func (nr *NodeRuntime) emitIngressSpans(it *ingressItem, t0 time.Time) {
	req, ok := it.v.Msg.(*message.Request)
	if !ok {
		return
	}
	t1 := time.Now()
	nr.sp.Trace(obs.Event{
		At: t0, Type: obs.EvSpan, Stage: obs.StageIngress,
		Client: req.Client, Req: req.ID, Dur: t0.Sub(it.at),
	})
	nr.sp.Trace(obs.Event{
		At: t1, Type: obs.EvSpan, Stage: obs.StagePreverify,
		Client: req.Client, Req: req.ID, Dur: t1.Sub(t0),
	})
}

// applyLoop consumes preverified items in arrival order and drives the node
// state machine. Protocol timers are deadline-checked before every apply:
// a saturated ingress queue must not starve batch deadlines or the
// monitoring period, so overdue ticks fire ahead of the next message
// rather than relying on select fairness.
func (nr *NodeRuntime) applyLoop() {
	defer close(nr.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		nr.rearm(timer)
		select {
		case <-nr.stop:
			return
		case it, ok := <-nr.pending:
			if !ok {
				return
			}
			select {
			case <-it.ready:
			case <-nr.stop:
				return
			}
			nr.apply(it)
		case now := <-timer.C:
			nr.mu.Lock()
			out := nr.node.Tick(now)
			nr.mu.Unlock()
			nr.emit(out)
		}
	}
}

// apply feeds one verified (or rejected) item to the node, firing any
// overdue timer first.
func (nr *NodeRuntime) apply(it *ingressItem) {
	now := time.Now()
	var tickOut, out core.Output
	nr.mu.Lock()
	if wake := nr.node.NextWake(); !wake.IsZero() && !now.Before(wake) {
		tickOut = nr.node.Tick(now)
	}
	if it.err != nil {
		out = nr.node.OnIngressFailure(core.IngressFailure{
			FromClient: it.fromClient,
			Client:     it.client,
			From:       it.from,
			Kind:       message.FailKindOf(it.err),
		}, now)
	} else {
		out = nr.node.OnVerified(it.v, now)
	}
	nr.mu.Unlock()
	if it.admitted {
		nr.node.ReleaseIngress(it.client)
	}
	nr.emit(tickOut)
	nr.emit(out)
}

// rearm points the timer at the node's next wake-up.
func (nr *NodeRuntime) rearm(timer *time.Timer) {
	nr.mu.Lock()
	wake := nr.node.NextWake()
	nr.mu.Unlock()
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	if wake.IsZero() {
		timer.Reset(time.Hour)
		return
	}
	d := time.Until(wake)
	if d < 0 {
		d = 0
	}
	timer.Reset(d)
}

// emit hands a node output to the egress pipeline. It never touches the
// wire and never blocks: each message is encoded once into a pooled buffer
// and the frame is fanned out to the per-peer queues (drop-oldest on
// overflow), so a dead or wedged peer can never stall the apply loop.
// Durability records are appended to the WAL here — a cheap buffer copy —
// but the fsync wait happens on the egress workers, which hold the frames
// back until the WAL is durable past the output's horizon (log-before-send).
func (nr *NodeRuntime) emit(out core.Output) {
	var lsn uint64
	if nr.wal != nil && len(out.Records) > 0 {
		var err error
		lsn, err = nr.wal.Append(out.Records...)
		if err != nil {
			// A node that cannot persist must not speak: swallowing the
			// output is indistinguishable from crashing here, and the
			// protocol tolerates crashes. Sending anyway could equivocate
			// after a restart.
			return
		}
	}
	// Enforce flood-defence NIC closures at the transport so frames from the
	// offending peer are discarded before they cost any protocol processing.
	if pc, ok := nr.tr.(transport.PeerCloser); ok {
		for _, nc := range out.NICCloses {
			pc.ClosePeer(NodeName(nc.Peer), nc.Until)
		}
	}
	for _, nm := range out.NodeMsgs {
		targets := nm.To
		if targets == nil {
			for i := 0; i < nr.cluster.N; i++ {
				if types.NodeID(i) != nr.self {
					targets = append(targets, types.NodeID(i))
				}
			}
		}
		if len(targets) == 0 {
			continue
		}
		f := &egressFrame{buf: message.Encode(nm.Msg), lsn: lsn, refs: int32(len(targets))}
		for _, to := range targets {
			nr.eg.enqueue(NodeName(to), f)
		}
	}
	for _, cm := range out.ClientMsgs {
		f := &egressFrame{buf: message.Encode(cm.Msg), lsn: lsn, refs: 1}
		if nr.spans {
			if rep, ok := cm.Msg.(*message.Reply); ok {
				f.at = time.Now()
				f.isReply = true
				f.client = rep.Client
				f.req = rep.ID
			}
		}
		nr.eg.enqueue(ClientName(cm.To), f)
	}
}

// ClientRuntime runs one RBFT client over a transport.
type ClientRuntime struct {
	cluster types.Config
	tr      transport.Transport

	mu sync.Mutex
	cl *client.Client // guarded by mu

	completions chan client.Completed
	stop        chan struct{}
	done        chan struct{}
}

// StartClient launches the event loop for cl over tr.
func StartClient(cl *client.Client, tr transport.Transport, cluster types.Config) *ClientRuntime {
	cr := &ClientRuntime{
		cluster:     cluster,
		tr:          tr,
		cl:          cl,
		completions: make(chan client.Completed, 1024),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	go cr.loop()
	return cr
}

// Submit signs and transmits a new request to every node (open loop: it
// does not wait for completion).
func (cr *ClientRuntime) Submit(op []byte) {
	cr.mu.Lock()
	req := cr.cl.NewRequest(op, time.Now())
	cr.mu.Unlock()
	data := req.Marshal(nil)
	for i := 0; i < cr.cluster.N; i++ {
		_ = cr.tr.Send(NodeName(types.NodeID(i)), data)
	}
}

// Completions streams accepted results (f+1 matching replies).
func (cr *ClientRuntime) Completions() <-chan client.Completed { return cr.completions }

// Invoke submits op and blocks until it completes or the timeout expires.
// It must not run concurrently with other Invoke/Submit consumers of the
// Completions channel.
func (cr *ClientRuntime) Invoke(op []byte, timeout time.Duration) (client.Completed, error) {
	cr.mu.Lock()
	req := cr.cl.NewRequest(op, time.Now())
	cr.mu.Unlock()
	data := req.Marshal(nil)
	for i := 0; i < cr.cluster.N; i++ {
		_ = cr.tr.Send(NodeName(types.NodeID(i)), data)
	}
	deadline := time.After(timeout)
	for {
		select {
		case done := <-cr.completions:
			if done.ID == req.ID {
				return done, nil
			}
			// Another in-flight request finished; keep waiting for ours.
		case <-deadline:
			return client.Completed{}, fmt.Errorf("runtime: request %d timed out after %v", req.ID, timeout)
		}
	}
}

// Stop terminates the event loop.
func (cr *ClientRuntime) Stop() {
	select {
	case <-cr.stop:
	default:
		close(cr.stop)
	}
	cr.tr.Close()
	<-cr.done
}

func (cr *ClientRuntime) loop() {
	defer close(cr.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		cr.rearm(timer)
		select {
		case <-cr.stop:
			return
		case p, ok := <-cr.tr.Packets():
			if !ok {
				return
			}
			cr.handlePacket(p)
		case now := <-timer.C:
			cr.mu.Lock()
			resend := cr.cl.Tick(now)
			cr.mu.Unlock()
			for _, req := range resend {
				data := req.Marshal(nil)
				for i := 0; i < cr.cluster.N; i++ {
					_ = cr.tr.Send(NodeName(types.NodeID(i)), data)
				}
			}
		}
	}
}

func (cr *ClientRuntime) rearm(timer *time.Timer) {
	cr.mu.Lock()
	wake := cr.cl.NextWake()
	cr.mu.Unlock()
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	if wake.IsZero() {
		timer.Reset(time.Hour)
		return
	}
	d := time.Until(wake)
	if d < 0 {
		d = 0
	}
	timer.Reset(d)
}

func (cr *ClientRuntime) handlePacket(p transport.Packet) {
	msg, err := message.Decode(p.Data)
	if err != nil {
		return
	}
	rep, ok := msg.(*message.Reply)
	if !ok {
		return
	}
	kind, id, err := parseName(p.From)
	if err != nil || kind != "node" {
		return
	}
	cr.mu.Lock()
	done, ok := cr.cl.OnReply(rep, types.NodeID(id), time.Now())
	cr.mu.Unlock()
	if !ok {
		return
	}
	select {
	case cr.completions <- done:
	default:
		// Consumer not draining; drop rather than wedge the loop.
	}
}
