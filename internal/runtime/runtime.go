// Package runtime drives the RBFT state machines in real time over a live
// transport: one goroutine per node (and per client) multiplexes incoming
// packets and timers, feeds them to the pure state machines, and transmits
// the resulting messages. This is the deployment path; the discrete-event
// simulator in internal/sim drives the same state machines in virtual time.
package runtime

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"rbft/internal/client"
	"rbft/internal/core"
	"rbft/internal/message"
	"rbft/internal/transport"
	"rbft/internal/types"
)

// NodeName returns the canonical endpoint name of a node.
func NodeName(id types.NodeID) string { return "node/" + strconv.Itoa(int(id)) }

// ClientName returns the canonical endpoint name of a client.
func ClientName(id types.ClientID) string { return "client/" + strconv.Itoa(int(id)) }

// parseName splits an endpoint name into kind and numeric id.
func parseName(name string) (kind string, id int, err error) {
	k, v, ok := strings.Cut(name, "/")
	if !ok {
		return "", 0, fmt.Errorf("runtime: malformed endpoint name %q", name)
	}
	id, err = strconv.Atoi(v)
	if err != nil {
		return "", 0, fmt.Errorf("runtime: malformed endpoint name %q: %w", name, err)
	}
	return k, id, nil
}

// NodeRuntime runs one RBFT node over a transport.
type NodeRuntime struct {
	cluster types.Config
	tr      transport.Transport

	mu   sync.Mutex
	node *core.Node // guarded by mu

	stop chan struct{}
	done chan struct{}
}

// StartNode launches the event loop for node over tr. The caller retains no
// right to touch node concurrently; use WithNode for synchronised access.
func StartNode(node *core.Node, tr transport.Transport, cluster types.Config) *NodeRuntime {
	nr := &NodeRuntime{
		cluster: cluster,
		tr:      tr,
		node:    node,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go nr.loop()
	return nr
}

// WithNode runs fn with exclusive access to the node state machine and
// transmits any output it produced (fault-injection hooks in tests).
func (nr *NodeRuntime) WithNode(fn func(n *core.Node) core.Output) {
	nr.mu.Lock()
	out := fn(nr.node)
	nr.mu.Unlock()
	nr.emit(out)
}

// Stop terminates the event loop and waits for it to exit. The transport is
// closed as part of shutdown.
func (nr *NodeRuntime) Stop() {
	select {
	case <-nr.stop:
	default:
		close(nr.stop)
	}
	nr.tr.Close()
	<-nr.done
}

func (nr *NodeRuntime) loop() {
	defer close(nr.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		nr.rearm(timer)
		select {
		case <-nr.stop:
			return
		case p, ok := <-nr.tr.Packets():
			if !ok {
				return
			}
			nr.handlePacket(p)
		case now := <-timer.C:
			nr.mu.Lock()
			out := nr.node.Tick(now)
			nr.mu.Unlock()
			nr.emit(out)
		}
	}
}

// rearm points the timer at the node's next wake-up.
func (nr *NodeRuntime) rearm(timer *time.Timer) {
	nr.mu.Lock()
	wake := nr.node.NextWake()
	nr.mu.Unlock()
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	if wake.IsZero() {
		timer.Reset(time.Hour)
		return
	}
	d := time.Until(wake)
	if d < 0 {
		d = 0
	}
	timer.Reset(d)
}

func (nr *NodeRuntime) handlePacket(p transport.Packet) {
	msg, err := message.Decode(p.Data)
	if err != nil {
		return // garbage frame
	}
	kind, id, err := parseName(p.From)
	if err != nil {
		return
	}
	now := time.Now()
	var out core.Output
	switch kind {
	case "client":
		req, ok := msg.(*message.Request)
		if !ok || int(req.Client) != id {
			return
		}
		nr.mu.Lock()
		out = nr.node.OnClientRequest(req, now)
		nr.mu.Unlock()
	case "node":
		if id < 0 || id >= nr.cluster.N {
			return
		}
		nr.mu.Lock()
		out = nr.node.OnNodeMessage(msg, types.NodeID(id), now)
		nr.mu.Unlock()
	default:
		return
	}
	nr.emit(out)
}

// emit transmits a node output over the wire.
func (nr *NodeRuntime) emit(out core.Output) {
	nr.mu.Lock()
	self := nr.node.ID()
	nr.mu.Unlock()
	// Enforce flood-defence NIC closures at the transport so frames from the
	// offending peer are discarded before they cost any protocol processing.
	if pc, ok := nr.tr.(transport.PeerCloser); ok {
		for _, nc := range out.NICCloses {
			pc.ClosePeer(NodeName(nc.Peer), nc.Until)
		}
	}
	for _, nm := range out.NodeMsgs {
		data := nm.Msg.Marshal(nil)
		targets := nm.To
		if targets == nil {
			for i := 0; i < nr.cluster.N; i++ {
				if types.NodeID(i) != self {
					targets = append(targets, types.NodeID(i))
				}
			}
		}
		for _, to := range targets {
			// Best effort: the protocol tolerates message loss, and a dead
			// peer must not wedge the loop.
			_ = nr.tr.Send(NodeName(to), data)
		}
	}
	for _, cm := range out.ClientMsgs {
		_ = nr.tr.Send(ClientName(cm.To), cm.Msg.Marshal(nil))
	}
}

// ClientRuntime runs one RBFT client over a transport.
type ClientRuntime struct {
	cluster types.Config
	tr      transport.Transport

	mu sync.Mutex
	cl *client.Client // guarded by mu

	completions chan client.Completed
	stop        chan struct{}
	done        chan struct{}
}

// StartClient launches the event loop for cl over tr.
func StartClient(cl *client.Client, tr transport.Transport, cluster types.Config) *ClientRuntime {
	cr := &ClientRuntime{
		cluster:     cluster,
		tr:          tr,
		cl:          cl,
		completions: make(chan client.Completed, 1024),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	go cr.loop()
	return cr
}

// Submit signs and transmits a new request to every node (open loop: it
// does not wait for completion).
func (cr *ClientRuntime) Submit(op []byte) {
	cr.mu.Lock()
	req := cr.cl.NewRequest(op, time.Now())
	cr.mu.Unlock()
	data := req.Marshal(nil)
	for i := 0; i < cr.cluster.N; i++ {
		_ = cr.tr.Send(NodeName(types.NodeID(i)), data)
	}
}

// Completions streams accepted results (f+1 matching replies).
func (cr *ClientRuntime) Completions() <-chan client.Completed { return cr.completions }

// Invoke submits op and blocks until it completes or the timeout expires.
// It must not run concurrently with other Invoke/Submit consumers of the
// Completions channel.
func (cr *ClientRuntime) Invoke(op []byte, timeout time.Duration) (client.Completed, error) {
	cr.mu.Lock()
	req := cr.cl.NewRequest(op, time.Now())
	cr.mu.Unlock()
	data := req.Marshal(nil)
	for i := 0; i < cr.cluster.N; i++ {
		_ = cr.tr.Send(NodeName(types.NodeID(i)), data)
	}
	deadline := time.After(timeout)
	for {
		select {
		case done := <-cr.completions:
			if done.ID == req.ID {
				return done, nil
			}
			// Another in-flight request finished; keep waiting for ours.
		case <-deadline:
			return client.Completed{}, fmt.Errorf("runtime: request %d timed out after %v", req.ID, timeout)
		}
	}
}

// Stop terminates the event loop.
func (cr *ClientRuntime) Stop() {
	select {
	case <-cr.stop:
	default:
		close(cr.stop)
	}
	cr.tr.Close()
	<-cr.done
}

func (cr *ClientRuntime) loop() {
	defer close(cr.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		cr.rearm(timer)
		select {
		case <-cr.stop:
			return
		case p, ok := <-cr.tr.Packets():
			if !ok {
				return
			}
			cr.handlePacket(p)
		case now := <-timer.C:
			cr.mu.Lock()
			resend := cr.cl.Tick(now)
			cr.mu.Unlock()
			for _, req := range resend {
				data := req.Marshal(nil)
				for i := 0; i < cr.cluster.N; i++ {
					_ = cr.tr.Send(NodeName(types.NodeID(i)), data)
				}
			}
		}
	}
}

func (cr *ClientRuntime) rearm(timer *time.Timer) {
	cr.mu.Lock()
	wake := cr.cl.NextWake()
	cr.mu.Unlock()
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	if wake.IsZero() {
		timer.Reset(time.Hour)
		return
	}
	d := time.Until(wake)
	if d < 0 {
		d = 0
	}
	timer.Reset(d)
}

func (cr *ClientRuntime) handlePacket(p transport.Packet) {
	msg, err := message.Decode(p.Data)
	if err != nil {
		return
	}
	rep, ok := msg.(*message.Reply)
	if !ok {
		return
	}
	kind, id, err := parseName(p.From)
	if err != nil || kind != "node" {
		return
	}
	cr.mu.Lock()
	done, ok := cr.cl.OnReply(rep, types.NodeID(id), time.Now())
	cr.mu.Unlock()
	if !ok {
		return
	}
	select {
	case cr.completions <- done:
	default:
		// Consumer not draining; drop rather than wedge the loop.
	}
}
