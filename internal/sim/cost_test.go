package sim

import (
	"testing"
	"time"

	"rbft/internal/message"
	"rbft/internal/types"
)

func TestSerializationScalesWithSize(t *testing.T) {
	c := DefaultCostModel()
	small := c.Serialization(8)
	big := c.Serialization(8192)
	if big <= small {
		t.Fatalf("serialization must grow with size: %v vs %v", small, big)
	}
	// 1 Gbit/s: 125 bytes/µs.
	if got := c.Serialization(125_000_000); got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Fatalf("1s worth of bytes serialized in %v", got)
	}
	zero := CostModel{}
	if zero.Serialization(1000) != 0 {
		t.Fatal("zero bandwidth must not divide by zero")
	}
}

func TestInCostChargesSignatureOnce(t *testing.T) {
	c := DefaultCostModel()
	req := &message.Request{Client: 1, ID: 1, Op: make([]byte, 8)}
	first := c.inCost(req, true)
	later := c.inCost(req, false)
	if first-later != c.SigVerify {
		t.Fatalf("first-sight premium = %v, want SigVerify %v", first-later, c.SigVerify)
	}
}

func TestInCostGrowsWithPayload(t *testing.T) {
	c := DefaultCostModel()
	small := c.inCost(&message.Propagate{Req: message.Request{Op: make([]byte, 8)}}, false)
	big := c.inCost(&message.Propagate{Req: message.Request{Op: make([]byte, 4096)}}, false)
	if big <= small {
		t.Fatalf("payload hashing must grow with size: %v vs %v", small, big)
	}
}

func TestOutCostScalesWithClusterSize(t *testing.T) {
	c := DefaultCostModel()
	p := &message.Prepare{}
	four := c.outCost(p, 4)
	seven := c.outCost(p, 7)
	if seven <= four {
		t.Fatalf("authenticator generation must scale with N: %v vs %v", four, seven)
	}
}

func TestOrderedPayloadAblationCosts(t *testing.T) {
	plain := DefaultCostModel()
	full := DefaultCostModel()
	full.OrderedPayloadBytes = 4096
	pp := &message.PrePrepare{Batch: make([]types.RequestRef, 64)}
	if full.inCost(pp, false) <= plain.inCost(pp, false) {
		t.Fatal("ordered-payload ablation must raise PRE-PREPARE processing cost")
	}
	if full.wireSize(pp) <= plain.wireSize(pp) {
		t.Fatal("ordered-payload ablation must raise PRE-PREPARE wire size")
	}
	// Other message types are unaffected.
	p := &message.Prepare{}
	if full.wireSize(p) != plain.wireSize(p) {
		t.Fatal("ablation must only affect PRE-PREPAREs")
	}
}

func TestExecCost(t *testing.T) {
	c := DefaultCostModel()
	if c.execCost(4096) <= c.execCost(8) {
		t.Fatal("execution cost must grow with operation size")
	}
}
