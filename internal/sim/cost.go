// Package sim is a deterministic discrete-event simulator that runs the real
// RBFT node, replica and client state machines in virtual time over a
// modelled cluster: per-node CPU queues (one per protocol-instance replica
// plus one for the node modules, mirroring the paper's thread/process/core
// layout), per-peer network links (mirroring the paper's one-NIC-per-peer
// cabling), and a crypto/execution cost model.
//
// The paper's evaluation ran on a Gigabit cluster of 8-core Xeons; this
// simulator substitutes for that testbed. Because the protocol logic under
// simulation is the same code that runs over live TCP (internal/runtime),
// the simulator reproduces protocol behaviour exactly and performance
// behaviour to the fidelity of the cost model below.
package sim

import (
	"time"

	"rbft/internal/message"
)

// CostModel holds the CPU and network cost constants. Durations are per
// operation; the defaults are calibrated so the fault-free RBFT curves land
// near the paper's reported peaks (~35 kreq/s at 8 B requests, ~5 kreq/s at
// 4 kB, f=1).
type CostModel struct {
	// MACGen and MACVerify are per-MAC HMAC costs.
	MACGen    time.Duration
	MACVerify time.Duration
	// SigSign and SigVerify are per-signature costs (an order of magnitude
	// above MACs, per the paper).
	SigSign   time.Duration
	SigVerify time.Duration
	// HashPerKB is the digest cost per kilobyte of payload.
	HashPerKB time.Duration
	// BaseProcess is the fixed per-message handling overhead.
	BaseProcess time.Duration
	// PerRefProcess is the ordering bookkeeping cost per request reference
	// inside a batch.
	PerRefProcess time.Duration
	// ExecPerRequest is the application execution cost per request.
	ExecPerRequest time.Duration
	// ExecPerKB is the additional execution cost per kilobyte of operation.
	ExecPerKB time.Duration

	// LinkLatency is the one-way propagation delay of every link.
	LinkLatency time.Duration
	// LinkBandwidth is per-link bandwidth in bytes/second (each node pair
	// has its own NICs and cable, per the paper's architecture).
	LinkBandwidth float64
	// TCPExtraLatency is added to every message delivery when the transport
	// is TCP, modelling acknowledgement and flow-control overhead; the
	// paper measured UDP latency 18-22% below TCP.
	TCPExtraLatency time.Duration
	// PacketOverheadBytes is the fixed wire overhead of one physical frame
	// (Ethernet + IP + TCP/UDP headers plus the length prefix, ~66 bytes on
	// an Ethernet TCP path). Every frame on a link pays it once, however
	// many protocol payloads the frame coalesces — this is the per-packet
	// cost that Config.EgressCoalesce amortises. Zero (the default) models
	// header-free framing and leaves legacy traces unchanged.
	PacketOverheadBytes int

	// FsyncLatency is the device latency of one fsync — the dominant cost
	// of making a WAL batch durable. Zero (the default) models an
	// infinitely fast disk; the durability scenarios set it explicitly.
	FsyncLatency time.Duration
	// DiskBandwidth is the sequential write bandwidth of the WAL device in
	// bytes/second (zero means the write itself is free and only
	// FsyncLatency is charged).
	DiskBandwidth float64

	// OrderedPayloadBytes models the ablation where protocol instances
	// order whole requests instead of request identifiers (§VI-B: RBFT's
	// 4kB peak drops from 5 to 1.8 kreq/s). Each PRE-PREPARE is charged
	// this many extra bytes per batched request, on the wire and in MAC
	// computation. Zero (the default) is the paper's identifier-ordering
	// design.
	OrderedPayloadBytes int
}

// DefaultCostModel returns constants calibrated against the paper's
// fault-free numbers.
func DefaultCostModel() CostModel {
	return CostModel{
		MACGen:          500 * time.Nanosecond,
		MACVerify:       500 * time.Nanosecond,
		SigSign:         20 * time.Microsecond,
		SigVerify:       20 * time.Microsecond,
		HashPerKB:       5 * time.Microsecond,
		BaseProcess:     1 * time.Microsecond,
		PerRefProcess:   300 * time.Nanosecond,
		ExecPerRequest:  500 * time.Nanosecond,
		ExecPerKB:       200 * time.Nanosecond,
		LinkLatency:     60 * time.Microsecond,
		LinkBandwidth:   125e6, // 1 Gbit/s
		TCPExtraLatency: 90 * time.Microsecond,
	}
}

// Hash returns the digest/MAC cost over size bytes of payload.
func (c CostModel) Hash(size int) time.Duration {
	return time.Duration(float64(c.HashPerKB) * float64(size) / 1024)
}

func (c CostModel) hash(size int) time.Duration { return c.Hash(size) }

// orderedPayloadCostFactor scales the CPU charged per ordered-payload byte:
// a full request travelling inside the ordering messages is MACed, copied
// and digested at several hops (the same multi-hop handling that caps
// Aardvark, which orders full requests, at 1.7 kreq/s for 4kB requests).
const orderedPayloadCostFactor = 6

// wireSize returns the modelled wire size of a message, including the
// ordered-payload ablation bytes for PRE-PREPAREs.
func (c CostModel) wireSize(msg message.Message) int {
	size := len(msg.Marshal(nil))
	if c.OrderedPayloadBytes > 0 {
		if pp, ok := msg.(*message.PrePrepare); ok {
			size += len(pp.Batch) * c.OrderedPayloadBytes
		}
	}
	return size
}

// Serialization returns the wire transmission time for size bytes.
func (c CostModel) Serialization(size int) time.Duration {
	if c.LinkBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(size) / c.LinkBandwidth * float64(time.Second))
}

// PacketCost returns the wire transmission time of one physical frame
// carrying payloadBytes of protocol payload: the payload's serialization
// plus the per-packet overhead. Coalescing k payloads into one frame pays
// PacketOverheadBytes once instead of k times, which is exactly the saving
// the egress batch writer buys (docs/EGRESS.md).
func (c CostModel) PacketCost(payloadBytes int) time.Duration {
	return c.Serialization(payloadBytes + c.PacketOverheadBytes)
}

// inCost models the CPU cost of receiving and verifying msg at a node. It
// is by construction the sum of the two pipeline stages, so the serial
// (VerifyCores=0) and pipelined charging models account the same total CPU
// per message. firstSight reports whether this node sees the request body
// for the first time (signature verification is charged once per request
// per node).
func (c CostModel) inCost(msg message.Message, firstSight bool) time.Duration {
	return c.preverifyCost(msg, firstSight) + c.applyCost(msg)
}

// preverifyCost models the stateless verification stage: MAC/authenticator
// checks, payload digests and signature verification. This is the portion
// the pipelined model charges on the parallel verify cores.
func (c CostModel) preverifyCost(msg message.Message, firstSight bool) time.Duration {
	var cost time.Duration
	// Replies are consumed by clients, which the cost model charges on the
	// outbound side only.
	//rbft:dispatch ignore=Reply
	switch m := msg.(type) {
	case *message.Request:
		cost += c.MACVerify + c.hash(len(m.Op))
		if firstSight {
			cost += c.SigVerify
		}
	case *message.Propagate:
		cost += c.MACVerify + c.hash(len(m.Req.Op))
		if firstSight {
			cost += c.SigVerify
		}
	case *message.PrePrepare:
		cost += c.MACVerify + c.hash(orderedPayloadCostFactor*len(m.Batch)*c.OrderedPayloadBytes)
	case *message.Prepare, *message.Commit, *message.Checkpoint, *message.InstanceChange, *message.Fetch:
		cost += c.MACVerify
	case *message.FetchResp:
		cost += c.MACVerify
	case *message.ViewChange:
		cost += c.SigVerify
	case *message.NewView:
		cost += c.MACVerify + time.Duration(len(m.ViewChanges))*c.SigVerify
	case *message.Invalid:
		cost += c.MACVerify // verification fails, but the attempt costs CPU
	}
	return cost
}

// applyCost models the deterministic apply stage: fixed handling overhead
// plus per-reference ordering bookkeeping. Charged on the node-module or
// instance core the message routes to.
func (c CostModel) applyCost(msg message.Message) time.Duration {
	cost := c.BaseProcess
	// Only batch-carrying messages have per-reference apply work — plus
	// read-only requests, which the speculative fast path executes against
	// local state right at apply time.
	//rbft:dispatch ignore=Propagate,Prepare,Commit,Checkpoint,InstanceChange,Fetch,ViewChange,NewView,Invalid,Reply
	switch m := msg.(type) {
	case *message.Request:
		if m.ReadOnly {
			cost += c.execCost(len(m.Op))
		}
	case *message.PrePrepare:
		cost += time.Duration(len(m.Batch)) * c.PerRefProcess
	case *message.FetchResp:
		cost += time.Duration(len(m.Batch)) * c.PerRefProcess
	}
	return cost
}

// outCost models the CPU cost of authenticating an outbound message for n
// cluster nodes.
func (c CostModel) outCost(msg message.Message, n int) time.Duration {
	// Correct nodes never emit Invalid; attack injection charges it zero.
	//rbft:dispatch ignore=Invalid
	switch m := msg.(type) {
	case *message.Request:
		return c.SigSign + time.Duration(n)*c.MACGen
	case *message.Propagate:
		// One MAC per recipient over the full request body.
		return time.Duration(n) * (c.MACGen + c.hash(len(m.Req.Op)))
	case *message.PrePrepare:
		return time.Duration(n)*c.MACGen + time.Duration(len(m.Batch))*c.PerRefProcess +
			time.Duration(n)*c.hash(orderedPayloadCostFactor*len(m.Batch)*c.OrderedPayloadBytes)
	case *message.Prepare, *message.Commit, *message.Checkpoint, *message.InstanceChange, *message.Fetch:
		return time.Duration(n) * c.MACGen
	case *message.FetchResp:
		return time.Duration(n)*c.MACGen + time.Duration(len(m.Batch))*c.PerRefProcess
	case *message.ViewChange:
		return c.SigSign
	case *message.NewView:
		return time.Duration(n) * c.MACGen
	case *message.Reply:
		return c.MACGen
	default:
		return 0
	}
}

// DiskWrite returns the time to persist size bytes durably: a sequential
// write at DiskBandwidth followed by one fsync.
func (c CostModel) DiskWrite(size int) time.Duration {
	d := c.FsyncLatency
	if c.DiskBandwidth > 0 {
		d += time.Duration(float64(size) / c.DiskBandwidth * float64(time.Second))
	}
	return d
}

// execCost models executing one request of the given operation size.
func (c CostModel) execCost(opSize int) time.Duration {
	return c.ExecPerRequest + time.Duration(float64(c.ExecPerKB)*float64(opSize)/1024)
}
