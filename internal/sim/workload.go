package sim

import (
	"fmt"
	"math/rand"
	"time"

	"rbft/internal/client"
	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/types"
)

// Phase is one segment of a workload: a number of active open-loop clients,
// each sending at RatePerClient, for Duration.
type Phase struct {
	Duration      time.Duration
	Clients       int
	RatePerClient float64 // requests per second per client
	// OpenLoop switches the phase from per-client generators to one
	// aggregate arrival process: Clients is the addressable population and
	// requests arrive at Clients x RatePerClient per second, each arrival
	// cycling through the population. Clients are instantiated lazily — a
	// million-client front door only ever materialises the clients that
	// actually send — which is the regime the sharded client table and
	// admission control are sized for.
	OpenLoop bool
}

// Workload drives the simulated clients.
type Workload struct {
	// RequestSize is the operation payload size in bytes.
	RequestSize int
	// Phases execute in order; the last phase's client population persists
	// until the run ends.
	Phases []Phase
	// RetransmitTimeout configures client retransmission (0 = a 2s default).
	RetransmitTimeout time.Duration
	// KV, when set, switches the clients from opaque fixed payloads to KV
	// operations over a Zipfian key population, and every node runs the
	// keyed store application (app.KV) instead of the default. This is the
	// workload the parallel execution model (Config.ExecWorkers) is
	// exercised with: conflict density is controlled by Keys and ZipfS.
	KV *KVWorkload
}

// KVWorkload parameterises the Zipfian key-value workload.
type KVWorkload struct {
	// Keys is the key-population size (minimum 2).
	Keys int
	// ZipfS is the Zipf skew exponent (must be > 1; 0 means the 1.1 default).
	// Larger values concentrate traffic on fewer keys — more conflicts.
	ZipfS float64
	// ReadFraction is the probability a request is a GET (0 = all writes).
	ReadFraction float64
}

// kvOpGen draws KV operations for the clients. PUT values are padded so
// every operation is RequestSize bytes — the size the cost model charges.
type kvOpGen struct {
	zipf         *rand.Zipf
	readFraction float64
	size         int
}

func newKVOpGen(cfg *KVWorkload, size int, rng *rand.Rand) *kvOpGen {
	keys := cfg.Keys
	if keys < 2 {
		keys = 2
	}
	skew := cfg.ZipfS
	if skew <= 1 {
		skew = 1.1
	}
	return &kvOpGen{
		zipf:         rand.NewZipf(rng, skew, 1, uint64(keys-1)),
		readFraction: cfg.ReadFraction,
		size:         size,
	}
}

// next draws one operation, reporting whether it is a read (a GET — the
// operations Config.SpeculativeReads routes through the read-only fast
// path). Each call allocates a fresh slice: the client retains the op inside
// its pending request for retransmission.
func (g *kvOpGen) next(rng *rand.Rand) (op []byte, isRead bool) {
	key := g.zipf.Uint64()
	if rng.Float64() < g.readFraction {
		return []byte(fmt.Sprintf("GET k%d", key)), true
	}
	op = []byte(fmt.Sprintf("PUT k%d ", key))
	pad := g.size - len(op)
	if pad < 1 {
		pad = 1
	}
	for i := 0; i < pad; i++ {
		op = append(op, 'a'+byte(i%26))
	}
	return op, false
}

func (w Workload) maxClients() int {
	max := 0
	for _, p := range w.Phases {
		if p.Clients > max {
			max = p.Clients
		}
	}
	return max
}

// StaticLoad is the paper's static workload: a fixed saturating client
// population sending at a constant rate.
func StaticLoad(clients int, ratePerClient float64, requestSize int) Workload {
	return Workload{
		RequestSize: requestSize,
		Phases:      []Phase{{Duration: 0, Clients: clients, RatePerClient: ratePerClient}},
	}
}

// DynamicLoad is the paper's dynamic workload: start with one client,
// progressively increase to ten, spike to fifty, then ramp back down to one.
// stepDur is the duration of each population step.
func DynamicLoad(ratePerClient float64, requestSize int, stepDur time.Duration) Workload {
	var phases []Phase
	for c := 1; c <= 10; c += 3 {
		phases = append(phases, Phase{Duration: stepDur, Clients: c, RatePerClient: ratePerClient})
	}
	phases = append(phases, Phase{Duration: stepDur, Clients: 50, RatePerClient: ratePerClient})
	for c := 10; c >= 1; c -= 3 {
		phases = append(phases, Phase{Duration: stepDur, Clients: c, RatePerClient: ratePerClient})
	}
	return Workload{RequestSize: requestSize, Phases: phases}
}

// simClient wraps a client state machine with its open-loop generator state.
type simClient struct {
	cl      *client.Client
	id      types.ClientID
	active  bool
	rate    float64
	op      []byte
	timerAt time.Time
}

// setupClients prepares the client population without materialising it:
// clients are instantiated lazily by clientAt the first time they send, so a
// huge addressable population costs one pointer slot per client until used.
func (s *Sim) setupClients() {
	s.clientRT = s.cfg.Workload.RetransmitTimeout
	if s.clientRT == 0 {
		s.clientRT = 2 * time.Second
	}
	op := make([]byte, s.cfg.Workload.RequestSize)
	for i := range op {
		op[i] = byte(i * 31)
	}
	s.clientOp = op
	if s.cfg.Workload.KV != nil {
		s.kvOps = newKVOpGen(s.cfg.Workload.KV, s.cfg.Workload.RequestSize, s.rng)
	}
	s.clients = make([]*simClient, s.cfg.Workload.maxClients())
}

// clientAt returns client i, instantiating it on first use. Instantiation
// draws no randomness, so lazy creation leaves same-seed traces unchanged.
func (s *Sim) clientAt(i int) *simClient {
	if sc := s.clients[i]; sc != nil {
		return sc
	}
	id := types.ClientID(i)
	sc := &simClient{
		cl: client.New(client.Config{
			Cluster:           s.cluster,
			ID:                id,
			RetransmitTimeout: s.clientRT,
		}, s.ks.ClientRing(id)),
		id: id,
		op: s.clientOp,
	}
	s.clients[i] = sc
	return sc
}

// startWorkload schedules the phase transitions.
func (s *Sim) startWorkload() {
	at := s.now
	for i, p := range s.cfg.Workload.Phases {
		phase := p
		s.schedule(at, func() { s.applyPhase(phase) })
		if i < len(s.cfg.Workload.Phases)-1 {
			at = at.Add(p.Duration)
		}
	}
}

func (s *Sim) applyPhase(p Phase) {
	// Each transition supersedes any running open-loop arrival process.
	s.olEpoch++
	if p.OpenLoop {
		for _, sc := range s.clients {
			if sc != nil {
				sc.active = false
			}
		}
		if p.Clients <= 0 || p.RatePerClient <= 0 {
			return
		}
		ep := s.olEpoch
		s.schedule(s.now, func() { s.openLoopArrival(p, ep) })
		return
	}
	// Closed-loop phase: clients 0..Clients-1 each run their own generator.
	// Instantiation is in ascending id order and activation draws happen only
	// for newly-active clients, exactly as when the population was eager —
	// same-seed traces are unchanged.
	for i := range s.clients {
		if i >= p.Clients {
			if sc := s.clients[i]; sc != nil {
				sc.active = false
			}
			continue
		}
		sc := s.clientAt(i)
		wasActive := sc.active
		sc.active = true
		sc.rate = p.RatePerClient
		if !wasActive {
			// Stagger activations slightly to avoid phase-locked bursts.
			delay := time.Duration(s.rng.Int63n(int64(time.Millisecond) + 1))
			client := sc
			s.schedule(s.now.Add(delay), func() { s.clientSend(client) })
		}
	}
}

// openLoopArrival issues one request from the aggregate arrival process and
// schedules the next. Arrivals cycle through the population, so a population
// larger than the run's arrival count touches each client at most once.
func (s *Sim) openLoopArrival(p Phase, ep int) {
	if ep != s.olEpoch {
		return // a later phase superseded this arrival process
	}
	sc := s.clientAt(s.olNext % p.Clients)
	s.olNext++
	s.issueRequest(sc)

	// Next arrival at the aggregate rate with ±20% jitter.
	interval := time.Duration(float64(time.Second) / (float64(p.Clients) * p.RatePerClient))
	jitter := time.Duration((s.rng.Float64() - 0.5) * 0.4 * float64(interval))
	s.schedule(s.now.Add(interval+jitter), func() { s.openLoopArrival(p, ep) })
}

// clientSend emits one request and schedules the next per the open-loop rate.
func (s *Sim) clientSend(sc *simClient) {
	if !sc.active || sc.rate <= 0 {
		return
	}
	s.issueRequest(sc)

	// Next send: deterministic interval with ±20% jitter.
	interval := time.Duration(float64(time.Second) / sc.rate)
	jitter := time.Duration((s.rng.Float64() - 0.5) * 0.4 * float64(interval))
	s.schedule(s.now.Add(interval+jitter), func() { s.clientSend(sc) })
}

// issueRequest draws one operation for sc, signs and broadcasts it. KV GETs
// go through the speculative read-only path when Config.SpeculativeReads is
// on; everything else (and every request when it is off) is ordered normally.
func (s *Sim) issueRequest(sc *simClient) {
	op := sc.op
	isRead := false
	if s.kvOps != nil {
		op, isRead = s.kvOps.next(s.rng)
	}
	var req *message.Request
	if isRead && s.cfg.SpeculativeReads {
		req = sc.cl.NewReadRequest(op, s.now)
	} else {
		req = sc.cl.NewRequest(op, s.now)
	}
	s.broadcastRequest(sc, req)
	s.armClientTimer(sc)
}

// broadcastRequest transmits a request to every node through each node's
// client NIC, applying the worst-attack-1 MAC corruption if configured.
func (s *Sim) broadcastRequest(sc *simClient, req *message.Request) {
	size := len(req.Marshal(nil))
	for _, sn := range s.nodes {
		msg := message.Message(req)
		if s.corruptFor(sn.id) {
			bad := *req
			bad.Auth = append(crypto.Authenticator(nil), req.Auth...)
			if int(sn.id) < len(bad.Auth) {
				bad.Auth[sn.id][0] ^= 0xff
			}
			msg = &bad
		}
		l := &sn.clientRx
		start := s.now
		if l.busyUntil.After(start) {
			start = l.busyUntil
		}
		l.busyUntil = start.Add(s.cfg.Cost.PacketCost(size))
		arrive := l.busyUntil.Add(s.cfg.Cost.LinkLatency)
		if !s.cfg.UDP {
			arrive = arrive.Add(s.cfg.Cost.TCPExtraLatency)
		}
		node := sn
		m := msg
		s.schedule(arrive, func() { s.deliverToNode(node, m, 0, true) })
	}
}

func (s *Sim) corruptFor(n types.NodeID) bool {
	for _, id := range s.cfg.CorruptClientAuthFor {
		if id == n {
			return true
		}
	}
	return false
}

// clientReceive processes a reply at the client.
func (s *Sim) clientReceive(sc *simClient, msg message.Message, from types.NodeID) {
	rep, ok := msg.(*message.Reply)
	if !ok {
		return
	}
	done, ok := sc.cl.OnReply(rep, from, s.now)
	if !ok {
		if s.cfg.SpeculativeReads {
			// A refuted read pulls its deadline to now (client.OnReply); re-arm
			// so the fallback to ordering fires immediately rather than at the
			// stale retransmission wake-up. Gated: without speculative reads a
			// reply never moves a deadline, and the extra schedule calls would
			// perturb legacy traces.
			s.armClientTimer(sc)
		}
		return
	}
	s.metrics.recordCompletion(sc.id, done, s.now, s.cfg.TrackClientLatency)
}

// armClientTimer keeps one pending retransmission wake-up per client.
func (s *Sim) armClientTimer(sc *simClient) {
	wake := sc.cl.NextWake()
	if wake.IsZero() || wake.After(s.endAt) {
		return
	}
	if !sc.timerAt.IsZero() && !sc.timerAt.After(wake) && sc.timerAt.After(s.now) {
		return
	}
	if wake.Before(s.now) {
		wake = s.now
	}
	sc.timerAt = wake
	s.schedule(wake, func() { s.fireClientTimer(sc) })
}

func (s *Sim) fireClientTimer(sc *simClient) {
	sc.timerAt = time.Time{}
	for _, req := range sc.cl.Tick(s.now) {
		s.broadcastRequest(sc, req)
	}
	s.armClientTimer(sc)
}
