package sim

import (
	"fmt"
	"math/rand"
	"time"

	"rbft/internal/client"
	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/types"
)

// Phase is one segment of a workload: a number of active open-loop clients,
// each sending at RatePerClient, for Duration.
type Phase struct {
	Duration      time.Duration
	Clients       int
	RatePerClient float64 // requests per second per client
}

// Workload drives the simulated clients.
type Workload struct {
	// RequestSize is the operation payload size in bytes.
	RequestSize int
	// Phases execute in order; the last phase's client population persists
	// until the run ends.
	Phases []Phase
	// RetransmitTimeout configures client retransmission (0 = a 2s default).
	RetransmitTimeout time.Duration
	// KV, when set, switches the clients from opaque fixed payloads to KV
	// operations over a Zipfian key population, and every node runs the
	// keyed store application (app.KV) instead of the default. This is the
	// workload the parallel execution model (Config.ExecWorkers) is
	// exercised with: conflict density is controlled by Keys and ZipfS.
	KV *KVWorkload
}

// KVWorkload parameterises the Zipfian key-value workload.
type KVWorkload struct {
	// Keys is the key-population size (minimum 2).
	Keys int
	// ZipfS is the Zipf skew exponent (must be > 1; 0 means the 1.1 default).
	// Larger values concentrate traffic on fewer keys — more conflicts.
	ZipfS float64
	// ReadFraction is the probability a request is a GET (0 = all writes).
	ReadFraction float64
}

// kvOpGen draws KV operations for the clients. PUT values are padded so
// every operation is RequestSize bytes — the size the cost model charges.
type kvOpGen struct {
	zipf         *rand.Zipf
	readFraction float64
	size         int
}

func newKVOpGen(cfg *KVWorkload, size int, rng *rand.Rand) *kvOpGen {
	keys := cfg.Keys
	if keys < 2 {
		keys = 2
	}
	skew := cfg.ZipfS
	if skew <= 1 {
		skew = 1.1
	}
	return &kvOpGen{
		zipf:         rand.NewZipf(rng, skew, 1, uint64(keys-1)),
		readFraction: cfg.ReadFraction,
		size:         size,
	}
}

// next draws one operation. Each call allocates a fresh slice: the client
// retains the op inside its pending request for retransmission.
func (g *kvOpGen) next(rng *rand.Rand) []byte {
	key := g.zipf.Uint64()
	if rng.Float64() < g.readFraction {
		return []byte(fmt.Sprintf("GET k%d", key))
	}
	op := []byte(fmt.Sprintf("PUT k%d ", key))
	pad := g.size - len(op)
	if pad < 1 {
		pad = 1
	}
	for i := 0; i < pad; i++ {
		op = append(op, 'a'+byte(i%26))
	}
	return op
}

func (w Workload) maxClients() int {
	max := 0
	for _, p := range w.Phases {
		if p.Clients > max {
			max = p.Clients
		}
	}
	return max
}

// StaticLoad is the paper's static workload: a fixed saturating client
// population sending at a constant rate.
func StaticLoad(clients int, ratePerClient float64, requestSize int) Workload {
	return Workload{
		RequestSize: requestSize,
		Phases:      []Phase{{Duration: 0, Clients: clients, RatePerClient: ratePerClient}},
	}
}

// DynamicLoad is the paper's dynamic workload: start with one client,
// progressively increase to ten, spike to fifty, then ramp back down to one.
// stepDur is the duration of each population step.
func DynamicLoad(ratePerClient float64, requestSize int, stepDur time.Duration) Workload {
	var phases []Phase
	for c := 1; c <= 10; c += 3 {
		phases = append(phases, Phase{Duration: stepDur, Clients: c, RatePerClient: ratePerClient})
	}
	phases = append(phases, Phase{Duration: stepDur, Clients: 50, RatePerClient: ratePerClient})
	for c := 10; c >= 1; c -= 3 {
		phases = append(phases, Phase{Duration: stepDur, Clients: c, RatePerClient: ratePerClient})
	}
	return Workload{RequestSize: requestSize, Phases: phases}
}

// simClient wraps a client state machine with its open-loop generator state.
type simClient struct {
	cl      *client.Client
	id      types.ClientID
	active  bool
	rate    float64
	op      []byte
	timerAt time.Time
}

func (s *Sim) setupClients() {
	n := s.cfg.Workload.maxClients()
	rt := s.cfg.Workload.RetransmitTimeout
	if rt == 0 {
		rt = 2 * time.Second
	}
	op := make([]byte, s.cfg.Workload.RequestSize)
	for i := range op {
		op[i] = byte(i * 31)
	}
	if s.cfg.Workload.KV != nil {
		s.kvOps = newKVOpGen(s.cfg.Workload.KV, s.cfg.Workload.RequestSize, s.rng)
	}
	for i := 0; i < n; i++ {
		id := types.ClientID(i)
		s.clients = append(s.clients, &simClient{
			cl: client.New(client.Config{
				Cluster:           s.cluster,
				ID:                id,
				RetransmitTimeout: rt,
			}, s.ks.ClientRing(id)),
			id: id,
			op: op,
		})
	}
}

// startWorkload schedules the phase transitions.
func (s *Sim) startWorkload() {
	at := s.now
	for i, p := range s.cfg.Workload.Phases {
		phase := p
		s.schedule(at, func() { s.applyPhase(phase) })
		if i < len(s.cfg.Workload.Phases)-1 {
			at = at.Add(p.Duration)
		}
	}
}

func (s *Sim) applyPhase(p Phase) {
	for i, sc := range s.clients {
		wasActive := sc.active
		sc.active = i < p.Clients
		sc.rate = p.RatePerClient
		if sc.active && !wasActive {
			// Stagger activations slightly to avoid phase-locked bursts.
			delay := time.Duration(s.rng.Int63n(int64(time.Millisecond) + 1))
			client := sc
			s.schedule(s.now.Add(delay), func() { s.clientSend(client) })
		}
	}
}

// clientSend emits one request and schedules the next per the open-loop rate.
func (s *Sim) clientSend(sc *simClient) {
	if !sc.active || sc.rate <= 0 {
		return
	}
	op := sc.op
	if s.kvOps != nil {
		op = s.kvOps.next(s.rng)
	}
	req := sc.cl.NewRequest(op, s.now)
	s.broadcastRequest(sc, req)
	s.armClientTimer(sc)

	// Next send: deterministic interval with ±20% jitter.
	interval := time.Duration(float64(time.Second) / sc.rate)
	jitter := time.Duration((s.rng.Float64() - 0.5) * 0.4 * float64(interval))
	s.schedule(s.now.Add(interval+jitter), func() { s.clientSend(sc) })
}

// broadcastRequest transmits a request to every node through each node's
// client NIC, applying the worst-attack-1 MAC corruption if configured.
func (s *Sim) broadcastRequest(sc *simClient, req *message.Request) {
	size := len(req.Marshal(nil))
	for _, sn := range s.nodes {
		msg := message.Message(req)
		if s.corruptFor(sn.id) {
			bad := *req
			bad.Auth = append(crypto.Authenticator(nil), req.Auth...)
			if int(sn.id) < len(bad.Auth) {
				bad.Auth[sn.id][0] ^= 0xff
			}
			msg = &bad
		}
		l := &sn.clientRx
		start := s.now
		if l.busyUntil.After(start) {
			start = l.busyUntil
		}
		l.busyUntil = start.Add(s.cfg.Cost.PacketCost(size))
		arrive := l.busyUntil.Add(s.cfg.Cost.LinkLatency)
		if !s.cfg.UDP {
			arrive = arrive.Add(s.cfg.Cost.TCPExtraLatency)
		}
		node := sn
		m := msg
		s.schedule(arrive, func() { s.deliverToNode(node, m, 0, true) })
	}
}

func (s *Sim) corruptFor(n types.NodeID) bool {
	for _, id := range s.cfg.CorruptClientAuthFor {
		if id == n {
			return true
		}
	}
	return false
}

// clientReceive processes a reply at the client.
func (s *Sim) clientReceive(sc *simClient, msg message.Message, from types.NodeID) {
	rep, ok := msg.(*message.Reply)
	if !ok {
		return
	}
	done, ok := sc.cl.OnReply(rep, from, s.now)
	if !ok {
		return
	}
	s.metrics.recordCompletion(sc.id, done, s.now, s.cfg.TrackClientLatency)
}

// armClientTimer keeps one pending retransmission wake-up per client.
func (s *Sim) armClientTimer(sc *simClient) {
	wake := sc.cl.NextWake()
	if wake.IsZero() || wake.After(s.endAt) {
		return
	}
	if !sc.timerAt.IsZero() && !sc.timerAt.After(wake) && sc.timerAt.After(s.now) {
		return
	}
	if wake.Before(s.now) {
		wake = s.now
	}
	sc.timerAt = wake
	s.schedule(wake, func() { s.fireClientTimer(sc) })
}

func (s *Sim) fireClientTimer(sc *simClient) {
	sc.timerAt = time.Time{}
	for _, req := range sc.cl.Tick(s.now) {
		s.broadcastRequest(sc, req)
	}
	s.armClientTimer(sc)
}
