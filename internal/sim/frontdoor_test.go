package sim

import (
	"bytes"
	"testing"
	"time"

	"rbft/internal/obs"
	"rbft/internal/types"
)

// frontdoorConfig is a read-heavy KV scenario: high ReadFraction over a
// Zipfian population, with the speculative fast path toggleable.
func frontdoorConfig(seed int64, speculative bool) Config {
	cfg := baseConfig(1, 32, 6, 400)
	cfg.Seed = seed
	cfg.SpeculativeReads = speculative
	cfg.Workload.KV = &KVWorkload{Keys: 1024, ZipfS: 1.1, ReadFraction: 0.9}
	return cfg
}

// TestSpeculativeReadsComplete: with the fast path on, a read-heavy workload
// completes (reads accepted on the 2f+1 read quorum, writes ordered
// normally) and the protocol stays fault-free — speculation must never
// destabilise the monitored instances.
func TestSpeculativeReadsComplete(t *testing.T) {
	res := New(frontdoorConfig(7, true)).Run(2 * time.Second)
	if res.Completed == 0 {
		t.Fatal("speculative run completed no requests")
	}
	if len(res.InstanceChanges) != 0 {
		t.Fatalf("speculative run triggered %d instance changes, want 0", len(res.InstanceChanges))
	}
}

// TestSpeculativeReadsByteIdentical is the determinism gate for the fast
// path: two same-seed speculative runs must produce byte-identical results
// and JSONL traces.
func TestSpeculativeReadsByteIdentical(t *testing.T) {
	run := func(seed int64) ([]byte, []byte) {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		cfg := frontdoorConfig(seed, true)
		cfg.Trace = w
		res := New(cfg).Run(2 * time.Second)
		if err := w.Err(); err != nil {
			t.Fatalf("trace writer: %v", err)
		}
		return serialize(t, res), buf.Bytes()
	}
	resA, traceA := run(7)
	resB, traceB := run(7)
	if !bytes.Equal(resA, resB) {
		t.Fatalf("same seed produced different results:\n run1: %s\n run2: %s", resA, resB)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("same seed produced different JSONL traces with speculative reads on")
	}
	resC, _ := run(8)
	if bytes.Equal(resA, resC) {
		t.Fatal("different seeds produced byte-identical traces; the check is vacuous")
	}
}

// TestSpeculativeFlagInertWithoutReads: with no read-only traffic the
// SpeculativeReads flag must be invisible — the trace of a write-only
// workload is byte-identical whichever way it is set. This is the guarantee
// that lets the flag default on in deployments without re-validating every
// existing trace.
func TestSpeculativeFlagInertWithoutReads(t *testing.T) {
	run := func(speculative bool, mode types.OrderingMode) []byte {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		cfg := frontdoorConfig(7, speculative)
		cfg.OrderingMode = mode
		cfg.Workload.KV.ReadFraction = 0
		cfg.Trace = w
		New(cfg).Run(2 * time.Second)
		if err := w.Err(); err != nil {
			t.Fatalf("trace writer: %v", err)
		}
		return buf.Bytes()
	}
	for _, mode := range []types.OrderingMode{types.OrderingMasterOnly, types.OrderingMultiPrimary} {
		if !bytes.Equal(run(false, mode), run(true, mode)) {
			t.Fatalf("SpeculativeReads changed a %v trace that carries no read-only traffic", mode)
		}
	}
}

// TestOpenLoopMillionClientFrontDoor is the tentpole's scale gate: a
// million-client open-loop population against a 4096-entry client table. The
// run must complete requests, stay fault-free, and every node's resident
// client table must stay within the configured bound even though the arrival
// process touches far more distinct clients than the table can hold.
func TestOpenLoopMillionClientFrontDoor(t *testing.T) {
	if testing.Short() {
		t.Skip("million-client open-loop run")
	}
	cfg := baseConfig(1, 8, 0, 0)
	cfg.Seed = 11
	cfg.MaxClients = 4096
	cfg.ClientShards = 16
	cfg.CheckpointInterval = 128
	cfg.WatermarkWindow = 1024
	cfg.Workload = Workload{
		RequestSize: 8,
		Phases: []Phase{{
			OpenLoop:      true,
			Clients:       1_000_000,
			RatePerClient: 0.01, // 10k aggregate arrivals/s
		}},
	}
	s := New(cfg)
	res := s.Run(2 * time.Second)
	if res.Completed == 0 {
		t.Fatal("million-client run completed no requests")
	}
	if len(res.InstanceChanges) != 0 {
		t.Fatalf("million-client run triggered %d instance changes, want 0", len(res.InstanceChanges))
	}
	// ~20k distinct clients sent; a table that held them all would be 5x the
	// bound, so staying under it proves eviction is working on every node.
	for i := 0; i < s.Cluster().N; i++ {
		if got := s.Node(types.NodeID(i)).ClientCount(); got > cfg.MaxClients {
			t.Fatalf("node %d client table holds %d entries, bound %d", i, got, cfg.MaxClients)
		}
	}
}
