package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rbft/internal/obs"
)

// kvExecScenario is the parallel-execution configuration: a Zipfian KV
// workload (so the nodes run the keyed application) with the wave scheduler
// charging on workers cores. Execution cost is raised so the execution stage
// actually matters in the charged traces.
func kvExecScenario(seed int64, workers int) Config {
	cfg := baseConfig(1, 32, 6, 400)
	cfg.Seed = seed
	cfg.ExecWorkers = workers
	cfg.Cost.ExecPerRequest = 20 * time.Microsecond
	cfg.Workload.KV = &KVWorkload{Keys: 4096, ZipfS: 1.1, ReadFraction: 0.5}
	return cfg
}

// TestKVExecParallelByteIdentical is the determinism gate for the parallel
// execution model: two same-seed runs with the wave scheduler engaged must
// produce byte-identical results and JSONL traces.
func TestKVExecParallelByteIdentical(t *testing.T) {
	run := func(seed int64) ([]byte, []byte) {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		cfg := kvExecScenario(seed, 8)
		cfg.Trace = w
		res := New(cfg).Run(2 * time.Second)
		if err := w.Err(); err != nil {
			t.Fatalf("trace writer: %v", err)
		}
		return serialize(t, res), buf.Bytes()
	}
	resA, traceA := run(7)
	resB, traceB := run(7)
	if !bytes.Equal(resA, resB) {
		t.Fatalf("same seed produced different results:\n run1: %s\n run2: %s", resA, resB)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("same seed produced different JSONL traces under parallel execution")
	}
	var res Result
	if err := json.Unmarshal(resA, &res); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("KV scenario completed no requests")
	}
	resC, _ := run(8)
	if bytes.Equal(resA, resC) {
		t.Fatal("different seeds produced byte-identical traces; the check is vacuous")
	}
}

// TestKVExecParallelOutpacesSerial checks the charging model end to end: with
// execution dominating the CPU budget, the parallel model must complete more
// requests than the serial model on the identical seeded workload, and both
// must stay fault-free (zero instance changes — parallelism must never come
// from protocol instability).
func TestKVExecParallelOutpacesSerial(t *testing.T) {
	serial := New(kvExecScenario(7, 0)).Run(2 * time.Second)
	parallel := New(kvExecScenario(7, 8)).Run(2 * time.Second)
	if serial.Completed == 0 {
		t.Fatal("serial run completed no requests")
	}
	if len(serial.InstanceChanges) != 0 || len(parallel.InstanceChanges) != 0 {
		t.Fatalf("instance changes: serial %d, parallel %d; want 0/0",
			len(serial.InstanceChanges), len(parallel.InstanceChanges))
	}
	if parallel.Completed < serial.Completed {
		t.Fatalf("parallel model completed %d requests, serial %d; the wave charging lost throughput",
			parallel.Completed, serial.Completed)
	}
}

// TestKVWorkloadOpsWellFormed: the generated operations must parse as real
// KV verbs — the replies tell. A run where every reply is an ERR means the
// generator and the application disagree about the encoding.
func TestKVWorkloadOpsWellFormed(t *testing.T) {
	cfg := kvExecScenario(3, 4)
	res := New(cfg).Run(time.Second)
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
}
