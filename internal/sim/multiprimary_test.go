package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rbft/internal/obs"
	"rbft/internal/types"
)

// multiPrimaryScenario is the multi-primary counterpart of the determinism
// scenarios: several clients spread across both partitions under a seeded
// jittered load.
func multiPrimaryScenario(seed int64) Config {
	cfg := baseConfig(1, 8, 4, 500)
	cfg.Seed = seed
	cfg.OrderingMode = types.OrderingMultiPrimary
	cfg.TrackClientLatency = true
	return cfg
}

// TestMultiPrimaryByteIdenticalAcrossRuns extends the determinism gate to
// multi-primary ordering: the lane merge, partition dispatch and filler
// batches must all be pure functions of the seeded event order.
func TestMultiPrimaryByteIdenticalAcrossRuns(t *testing.T) {
	run := func() []byte {
		return serialize(t, New(multiPrimaryScenario(7)).Run(2*time.Second))
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different multi-primary traces:\n run1: %s\n run2: %s", a, b)
	}
	var res Result
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("multi-primary scenario completed no requests")
	}
	// Every lane ordered part of the workload: the defining property of the
	// mode. Master-only runs leave the backup instances ordering the same
	// refs; here each instance orders its own disjoint partition.
	for n, perInst := range res.OrderedPerNodeInstance {
		for inst, count := range perInst {
			if count == 0 {
				t.Fatalf("node %d instance %d ordered nothing; partitions did not spread", n, inst)
			}
		}
	}
	if len(res.InstanceChanges) != 0 {
		t.Fatalf("fault-free multi-primary run recorded %d instance changes", len(res.InstanceChanges))
	}
	c := serialize(t, New(multiPrimaryScenario(8)).Run(2*time.Second))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical multi-primary traces; the check is vacuous")
	}
}

// multiPrimaryCrashScenario crashes a node mid-run while the lane merge is
// active, with the modelled WAL on, so recovery must rebuild the per-lane
// merge cursors from KindMerged records.
func multiPrimaryCrashScenario(seed int64) Config {
	cfg := multiPrimaryScenario(seed)
	cfg.Durability = DurabilityGroupCommit
	cfg.Cost.FsyncLatency = 100 * time.Microsecond
	cfg.Cost.DiskBandwidth = 500e6
	cfg.CheckpointInterval = 16
	cfg.Crashes = []Crash{
		{Node: 2, At: time.Unix(0, 0).Add(600 * time.Millisecond), Down: 250 * time.Millisecond},
	}
	return cfg
}

// TestMultiPrimaryCrashRestart kills a node mid-merge and checks recovery:
// the run stays deterministic, no node ever double-executes a request, the
// surviving nodes' merged execution orders are identical, neither partition
// is skipped, and the crashed node resumes executing after its restart.
func TestMultiPrimaryCrashRestart(t *testing.T) {
	run := func() ([]byte, *Result) {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		cfg := multiPrimaryCrashScenario(11)
		cfg.Trace = w
		res := New(cfg).Run(2 * time.Second)
		if err := w.Err(); err != nil {
			t.Fatalf("trace writer: %v", err)
		}
		return buf.Bytes(), res
	}
	a, res := run()
	b, _ := run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different multi-primary crash/restart traces")
	}
	if !bytes.Contains(a, []byte("node-crash")) || !bytes.Contains(a, []byte("node-restart")) {
		t.Fatal("trace carries no crash/restart events; the gate is not exercising recovery")
	}
	if res.Completed == 0 {
		t.Fatal("crash scenario completed no requests")
	}

	events, err := obs.ReadTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("reading trace back: %v", err)
	}
	type nodeReq struct {
		node   types.NodeID
		client types.ClientID
		req    types.RequestID
	}
	seen := make(map[nodeReq]int)
	order := make(map[types.NodeID][]nodeReq)
	var restartAt time.Time
	crashed := types.NodeID(2)
	for _, ev := range events {
		switch ev.Type {
		case obs.EvExecuted:
			k := nodeReq{ev.Node, ev.Client, ev.Req}
			seen[k]++
			if seen[k] > 1 {
				t.Fatalf("node %d executed client %d request %d twice", ev.Node, ev.Client, ev.Req)
			}
			order[ev.Node] = append(order[ev.Node], k)
		case obs.EvNodeRestart:
			if ev.Node == crashed {
				restartAt = ev.At
			}
		}
	}
	// The never-crashed nodes must agree on the merged execution order
	// exactly (node 0 vs 1 vs 3; node 2 crashed).
	ref := order[0]
	if len(ref) == 0 {
		t.Fatal("node 0 executed nothing")
	}
	for _, n := range []types.NodeID{1, 3} {
		got := order[n]
		if len(got) != len(ref) {
			t.Fatalf("node %d executed %d requests, node 0 executed %d", n, len(got), len(ref))
		}
		for i := range ref {
			if got[i].client != ref[i].client || got[i].req != ref[i].req {
				t.Fatalf("node %d merged order diverges from node 0 at %d: %v vs %v", n, i, got[i], ref[i])
			}
		}
	}
	// Neither partition was skipped: both lanes keep ordering on every node
	// and both partitions' clients appear in the executed stream.
	lanes := make(map[types.InstanceID]bool)
	for _, k := range ref {
		lanes[types.PartitionOf(k.client, 2)] = true
	}
	if !lanes[0] || !lanes[1] {
		t.Fatalf("executed stream covers lanes %v, want both partitions", lanes)
	}
	// The crashed node resumed: it executes again after its restart.
	if restartAt.IsZero() {
		t.Fatal("no restart event for the crashed node")
	}
	resumed := false
	for _, ev := range events {
		if ev.Type == obs.EvExecuted && ev.Node == crashed && ev.At.After(restartAt) {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Fatal("crashed node never executed after its restart")
	}
}
