package sim

import (
	"testing"
	"time"

	"rbft/internal/types"
)

// durableConfig returns the fault-free base scenario with the modelled WAL
// switched on: a 100µs-fsync NVMe-class device, 500 MB/s sequential writes.
func durableConfig(mode DurabilityMode) Config {
	cfg := baseConfig(1, 8, 4, 500)
	cfg.Durability = mode
	cfg.Cost.FsyncLatency = 100 * time.Microsecond
	cfg.Cost.DiskBandwidth = 500e6
	return cfg
}

// TestDurableGroupCommitRunCompletes: group commit must sustain the offered
// load despite every sent message being preceded by a durable record.
func TestDurableGroupCommitRunCompletes(t *testing.T) {
	res := New(durableConfig(DurabilityGroupCommit)).Run(2 * time.Second)
	if res.Completed == 0 {
		t.Fatal("no requests completed under group-commit durability")
	}
	if res.Throughput < 1500 {
		t.Fatalf("group-commit throughput %.0f req/s, want most of the offered 2000", res.Throughput)
	}
}

// TestDurableSerialFsyncRunCompletes: serial fsync is slower but must not
// wedge the protocol.
func TestDurableSerialFsyncRunCompletes(t *testing.T) {
	res := New(durableConfig(DurabilitySerialFsync)).Run(2 * time.Second)
	if res.Completed == 0 {
		t.Fatal("no requests completed under serial-fsync durability")
	}
}

// TestCrashRestartMidRun: a node crashes under load and recovers from its
// durable log; the cluster rides through (f=1) and the revenant keeps
// executing after recovery.
func TestCrashRestartMidRun(t *testing.T) {
	cfg := durableConfig(DurabilityGroupCommit)
	victim := types.NodeID(2)
	cfg.Crashes = []Crash{
		{Node: victim, At: time.Unix(0, 0).Add(800 * time.Millisecond), Down: 200 * time.Millisecond},
	}
	// Frequent checkpoints so the revenant can fetch past its gap.
	cfg.CheckpointInterval = 16
	res := New(cfg).Run(3 * time.Second)
	if res.Completed == 0 {
		t.Fatal("cluster stalled around the crash")
	}
	if res.Throughput < 1000 {
		t.Fatalf("throughput %.0f req/s with one transient crash, want >1000", res.Throughput)
	}
	// The victim executed strictly fewer requests than its peers (it was
	// down and its WAL replay does not re-emit EvExecuted within the
	// window twice), but it must have kept executing overall.
	if res.ExecutedPerNode[victim] == 0 {
		t.Fatal("crashed node never executed anything")
	}
	healthy := res.ExecutedPerNode[0]
	if res.ExecutedPerNode[victim] >= healthy+500 {
		t.Fatalf("victim executed %d vs healthy %d; double execution suspected",
			res.ExecutedPerNode[victim], healthy)
	}
}

// TestCrashWithoutDurabilityStaysSafe: an amnesiac restart (no WAL) must
// still leave the cluster live — the other 3 nodes carry the quorum — and
// must not panic the simulator.
func TestCrashWithoutDurabilityStaysSafe(t *testing.T) {
	cfg := baseConfig(1, 8, 4, 500)
	cfg.Crashes = []Crash{
		{Node: 3, At: time.Unix(0, 0).Add(700 * time.Millisecond), Down: 300 * time.Millisecond},
	}
	res := New(cfg).Run(2 * time.Second)
	if res.Completed == 0 {
		t.Fatal("cluster stalled around the amnesiac crash")
	}
}
