package sim

import (
	"sort"
	"time"

	"rbft/internal/client"
	"rbft/internal/monitor"
	"rbft/internal/types"
)

// ICRecord is one observed protocol instance change.
type ICRecord struct {
	At      time.Time
	Node    types.NodeID
	CPI     uint64
	NewView types.View
	Reason  monitor.Reason
}

// MonitorSample is one node's per-instance throughput reading (figures 9
// and 11 plot these).
type MonitorSample struct {
	At         time.Time
	Node       types.NodeID
	Throughput []float64 // req/s per instance
}

// LatencyPoint is one completed request's latency (figure 12 plots these per
// client).
type LatencyPoint struct {
	Client  types.ClientID
	ID      types.RequestID
	At      time.Time
	Latency time.Duration
}

// Metrics accumulates raw observations during a run.
type Metrics struct {
	cluster types.Config

	start, end time.Time // measurement window (after warmup)

	completions    int
	latencySum     time.Duration
	latencies      []time.Duration
	clientSeries   []LatencyPoint
	executed       []int   // per node, within window
	orderedByInst  [][]int // per node per instance, cumulative (whole run)
	icEvents       []ICRecord
	nicCloses      int
	monitorSamples []MonitorSample
}

func newMetrics(cluster types.Config) *Metrics {
	m := &Metrics{
		cluster:  cluster,
		executed: make([]int, cluster.N),
	}
	m.orderedByInst = make([][]int, cluster.N)
	for i := range m.orderedByInst {
		m.orderedByInst[i] = make([]int, cluster.Instances())
	}
	return m
}

func (m *Metrics) inWindow(now time.Time) bool {
	return !now.Before(m.start) && !now.After(m.end)
}

func (m *Metrics) recordExecution(node types.NodeID, _ types.RequestRef, now time.Time) {
	if m.inWindow(now) {
		m.executed[node]++
	}
}

func (m *Metrics) recordOrdered(node types.NodeID, counts []int) {
	for i, c := range counts {
		if i < len(m.orderedByInst[node]) {
			m.orderedByInst[node][i] += c
		}
	}
}

func (m *Metrics) recordCompletion(id types.ClientID, done client.Completed, now time.Time, trackSeries bool) {
	if trackSeries {
		m.clientSeries = append(m.clientSeries, LatencyPoint{
			Client: id, ID: done.ID, At: now, Latency: done.Latency,
		})
	}
	if !m.inWindow(now) {
		return
	}
	m.completions++
	m.latencySum += done.Latency
	m.latencies = append(m.latencies, done.Latency)
}

func (m *Metrics) recordMonitorSample(node types.NodeID, now time.Time, tp []float64) {
	m.monitorSamples = append(m.monitorSamples, MonitorSample{At: now, Node: node, Throughput: tp})
}

// Result is the summary of one simulation run.
type Result struct {
	// Window is the measurement window length (run duration minus warmup).
	Window time.Duration
	// Completed counts client-accepted requests within the window.
	Completed int
	// Throughput is Completed divided by the window, in req/s.
	Throughput float64
	// AvgLatency, P50Latency and P99Latency summarise client-observed
	// latency within the window.
	AvgLatency time.Duration
	P50Latency time.Duration
	P99Latency time.Duration
	// ExecutedPerNode counts master-ordered executions per node within the
	// window.
	ExecutedPerNode []int
	// OrderedPerNodeInstance counts refs ordered per node per instance over
	// the whole run.
	OrderedPerNodeInstance [][]int
	// InstanceChanges lists all observed instance-change completions.
	InstanceChanges []ICRecord
	// NICCloses counts flood-triggered NIC closures.
	NICCloses int
	// ClientSeries is the per-request latency series (when tracked).
	ClientSeries []LatencyPoint
	// MonitorSamples are the per-node monitor readings (when sampled).
	MonitorSamples []MonitorSample
}

func (m *Metrics) result(cfg Config) *Result {
	window := m.end.Sub(m.start)
	r := &Result{
		Window:                 window,
		Completed:              m.completions,
		ExecutedPerNode:        m.executed,
		OrderedPerNodeInstance: m.orderedByInst,
		InstanceChanges:        m.icEvents,
		NICCloses:              m.nicCloses,
		ClientSeries:           m.clientSeries,
		MonitorSamples:         m.monitorSamples,
	}
	if window > 0 {
		r.Throughput = float64(m.completions) / window.Seconds()
	}
	if len(m.latencies) > 0 {
		r.AvgLatency = m.latencySum / time.Duration(len(m.latencies))
		sorted := append([]time.Duration(nil), m.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r.P50Latency = sorted[len(sorted)/2]
		r.P99Latency = sorted[len(sorted)*99/100]
	}
	return r
}

// ViewChanged reports whether any node completed an instance change.
func (r *Result) ViewChanged() bool { return len(r.InstanceChanges) > 0 }
