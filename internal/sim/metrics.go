package sim

import (
	"math"
	"sort"
	"time"

	"rbft/internal/client"
	"rbft/internal/monitor"
	"rbft/internal/obs"
	"rbft/internal/types"
)

// ICRecord is one observed protocol instance change.
type ICRecord struct {
	At      time.Time
	Node    types.NodeID
	CPI     uint64
	NewView types.View
	Reason  monitor.Reason
}

// MonitorSample is one node's per-instance throughput reading (figures 9
// and 11 plot these).
type MonitorSample struct {
	At         time.Time
	Node       types.NodeID
	Throughput []float64 // req/s per instance
}

// LatencyPoint is one completed request's latency (figure 12 plots these per
// client).
type LatencyPoint struct {
	Client  types.ClientID
	ID      types.RequestID
	At      time.Time
	Latency time.Duration
}

// Metrics accumulates raw observations during a run. It aggregates the
// node-side series from the protocol event trace — Metrics is an obs.Tracer
// installed on every simulated node — while client-side completions are
// recorded directly by the simulated clients (they sit outside the traced
// node stack).
type Metrics struct {
	cluster types.Config

	start, end time.Time // measurement window (after warmup)

	completions    int
	latencySum     time.Duration
	latencies      []time.Duration
	clientSeries   []LatencyPoint
	executed       []int   // per node, within window
	orderedByInst  [][]int // per node per instance, cumulative (whole run)
	icEvents       []ICRecord
	nicCloses      int
	monitorSamples []MonitorSample
}

var _ obs.Tracer = (*Metrics)(nil)

// Enabled implements obs.Tracer.
func (m *Metrics) Enabled() bool { return true }

// WantSpans implements obs.SpanSink: the aggregator folds protocol events
// into scalar results and ignores spans, so a metrics-only run (every
// benchmark) must not pay for span emission.
func (m *Metrics) WantSpans() bool { return false }

// Trace implements obs.Tracer: trace events are folded into the run's
// aggregate series. Unhandled event types (phase transitions, verdicts,
// request lifecycle) pass through untouched — they exist for the JSONL
// trace sinks.
func (m *Metrics) Trace(ev obs.Event) {
	switch ev.Type {
	case obs.EvExecuted:
		if m.inWindow(ev.At) && int(ev.Node) < len(m.executed) {
			m.executed[ev.Node]++
		}
	case obs.EvOrdered:
		if int(ev.Node) < len(m.orderedByInst) && int(ev.Instance) < len(m.orderedByInst[ev.Node]) {
			m.orderedByInst[ev.Node][ev.Instance] += ev.Count
		}
	case obs.EvInstanceChangeComplete:
		reason, _ := monitor.ParseReason(ev.Reason)
		m.icEvents = append(m.icEvents, ICRecord{
			At: ev.At, Node: ev.Node, CPI: ev.CPI, NewView: ev.View, Reason: reason,
		})
	case obs.EvNICClose:
		m.nicCloses++
	case obs.EvMonitorSample:
		m.monitorSamples = append(m.monitorSamples, MonitorSample{
			At: ev.At, Node: ev.Node, Throughput: ev.Values,
		})
	}
}

func newMetrics(cluster types.Config) *Metrics {
	m := &Metrics{
		cluster:  cluster,
		executed: make([]int, cluster.N),
	}
	m.orderedByInst = make([][]int, cluster.N)
	for i := range m.orderedByInst {
		m.orderedByInst[i] = make([]int, cluster.Instances())
	}
	return m
}

func (m *Metrics) inWindow(now time.Time) bool {
	return !now.Before(m.start) && !now.After(m.end)
}

func (m *Metrics) recordCompletion(id types.ClientID, done client.Completed, now time.Time, trackSeries bool) {
	if trackSeries {
		m.clientSeries = append(m.clientSeries, LatencyPoint{
			Client: id, ID: done.ID, At: now, Latency: done.Latency,
		})
	}
	if !m.inWindow(now) {
		return
	}
	m.completions++
	m.latencySum += done.Latency
	m.latencies = append(m.latencies, done.Latency)
}

// Result is the summary of one simulation run.
type Result struct {
	// Window is the measurement window length (run duration minus warmup).
	Window time.Duration
	// Completed counts client-accepted requests within the window.
	Completed int
	// Throughput is Completed divided by the window, in req/s.
	Throughput float64
	// AvgLatency, P50Latency and P99Latency summarise client-observed
	// latency within the window.
	AvgLatency time.Duration
	P50Latency time.Duration
	P99Latency time.Duration
	// ExecutedPerNode counts master-ordered executions per node within the
	// window.
	ExecutedPerNode []int
	// OrderedPerNodeInstance counts refs ordered per node per instance over
	// the whole run.
	OrderedPerNodeInstance [][]int
	// InstanceChanges lists all observed instance-change completions.
	InstanceChanges []ICRecord
	// NICCloses counts flood-triggered NIC closures.
	NICCloses int
	// ClientSeries is the per-request latency series (when tracked).
	ClientSeries []LatencyPoint
	// MonitorSamples are the per-node monitor readings (when sampled).
	MonitorSamples []MonitorSample
}

func (m *Metrics) result(cfg Config) *Result {
	window := m.end.Sub(m.start)
	r := &Result{
		Window:                 window,
		Completed:              m.completions,
		ExecutedPerNode:        m.executed,
		OrderedPerNodeInstance: m.orderedByInst,
		InstanceChanges:        m.icEvents,
		NICCloses:              m.nicCloses,
		ClientSeries:           m.clientSeries,
		MonitorSamples:         m.monitorSamples,
	}
	if window > 0 {
		r.Throughput = float64(m.completions) / window.Seconds()
	}
	if len(m.latencies) > 0 {
		r.AvgLatency = m.latencySum / time.Duration(len(m.latencies))
		sorted := append([]time.Duration(nil), m.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r.P50Latency = sorted[nearestRank(0.50, len(sorted))]
		r.P99Latency = sorted[nearestRank(0.99, len(sorted))]
	}
	return r
}

// nearestRank returns the zero-based index of the p-th percentile under the
// nearest-rank definition: the smallest value such that at least p·n of the
// observations are <= it, i.e. index ceil(p·n)-1 of the sorted sample.
func nearestRank(p float64, n int) int {
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// ViewChanged reports whether any node completed an instance change.
func (r *Result) ViewChanged() bool { return len(r.InstanceChanges) > 0 }
