package sim

import (
	"testing"
	"time"

	"rbft/internal/core"
	"rbft/internal/monitor"
	"rbft/internal/pbft"
	"rbft/internal/types"
)

func baseConfig(f int, size int, clients int, rate float64) Config {
	return Config{
		F:            f,
		Cost:         DefaultCostModel(),
		Seed:         1,
		BatchSize:    64,
		BatchTimeout: 2 * time.Millisecond,
		Monitoring: monitor.Config{
			Period:      200 * time.Millisecond,
			Delta:       0.85,
			MinRequests: 20,
		},
		Workload: StaticLoad(clients, rate, size),
		Warmup:   200 * time.Millisecond,
	}
}

func TestFaultFreeRunCompletes(t *testing.T) {
	cfg := baseConfig(1, 8, 4, 500)
	res := New(cfg).Run(2 * time.Second)
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	// Offered load 2000 req/s; the cluster must sustain it.
	if res.Throughput < 1800 {
		t.Fatalf("throughput %.0f req/s, want ~2000", res.Throughput)
	}
	if res.AvgLatency <= 0 || res.AvgLatency > 50*time.Millisecond {
		t.Fatalf("implausible latency %v", res.AvgLatency)
	}
	if res.ViewChanged() {
		t.Fatalf("spurious instance change in fault-free run: %+v", res.InstanceChanges)
	}
	// All nodes executed the same count (within the window boundary skew).
	for i := 1; i < len(res.ExecutedPerNode); i++ {
		a, b := res.ExecutedPerNode[0], res.ExecutedPerNode[i]
		if diff := a - b; diff < -100 || diff > 100 {
			t.Fatalf("node execution counts diverge: %v", res.ExecutedPerNode)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() *Result {
		return New(baseConfig(1, 8, 3, 300)).Run(1 * time.Second)
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.AvgLatency != b.AvgLatency || a.Throughput != b.Throughput {
		t.Fatalf("same seed produced different results: %d/%v vs %d/%v",
			a.Completed, a.AvgLatency, b.Completed, b.AvgLatency)
	}
	c := New(func() Config { cfg := baseConfig(1, 8, 3, 300); cfg.Seed = 99; return cfg }()).Run(1 * time.Second)
	if c.Completed == a.Completed && c.AvgLatency == a.AvgLatency {
		t.Log("different seed produced identical results (possible but unlikely)")
	}
}

func TestUDPLowerLatencyThanTCP(t *testing.T) {
	tcp := New(baseConfig(1, 8, 3, 300)).Run(1 * time.Second)
	udpCfg := baseConfig(1, 8, 3, 300)
	udpCfg.UDP = true
	udp := New(udpCfg).Run(1 * time.Second)
	if udp.AvgLatency >= tcp.AvgLatency {
		t.Fatalf("UDP latency %v not below TCP latency %v", udp.AvgLatency, tcp.AvgLatency)
	}
	// Same order of magnitude of throughput.
	if udp.Throughput < tcp.Throughput*0.8 {
		t.Fatalf("UDP throughput collapsed: %v vs %v", udp.Throughput, tcp.Throughput)
	}
}

func TestSilentMasterPrimaryRecoversViaInstanceChange(t *testing.T) {
	cfg := baseConfig(1, 8, 4, 500)
	masterPrimaryNode := types.NodeID(0) // view 0: primary of instance 0 is node 0
	cfg.NodeBehavior = map[types.NodeID]core.Behavior{
		masterPrimaryNode: {Instance: map[types.InstanceID]pbft.Behavior{
			types.MasterInstance: {Silent: true},
		}},
	}
	res := New(cfg).Run(3 * time.Second)
	if !res.ViewChanged() {
		t.Fatal("silent master primary did not trigger an instance change")
	}
	if res.Throughput < 1000 {
		t.Fatalf("throughput %.0f req/s after recovery, want most of the 2000 offered", res.Throughput)
	}
}

func TestThrottledMasterPrimaryDetected(t *testing.T) {
	// A master primary that throttles hard (far below Δ) must be replaced.
	cfg := baseConfig(1, 8, 4, 500)
	cfg.NodeBehavior = map[types.NodeID]core.Behavior{
		0: {Instance: map[types.InstanceID]pbft.Behavior{
			types.MasterInstance: {ProposeInterval: 100 * time.Millisecond},
		}},
	}
	res := New(cfg).Run(3 * time.Second)
	if !res.ViewChanged() {
		t.Fatal("throttling master primary evaded detection")
	}
}

func TestNodeFloodTriggersNICClosureNotCollapse(t *testing.T) {
	cfg := baseConfig(1, 8, 4, 500)
	cfg.FloodThreshold = 32
	cfg.FloodWindow = 100 * time.Millisecond
	cfg.NICClosePeriod = time.Second
	cfg.Floods = []Flood{{
		From: 3, Targets: []types.NodeID{0, 1, 2}, Size: 4096, Rate: 5000,
	}}
	res := New(cfg).Run(2 * time.Second)
	if res.NICCloses == 0 {
		t.Fatal("flood never tripped NIC closure")
	}
	if res.Throughput < 1500 {
		t.Fatalf("throughput %.0f req/s under flood, want most of 2000", res.Throughput)
	}
}

func TestDynamicWorkloadRuns(t *testing.T) {
	cfg := baseConfig(1, 8, 1, 300)
	cfg.Workload = DynamicLoad(300, 8, 150*time.Millisecond)
	res := New(cfg).Run(2 * time.Second)
	if res.Completed == 0 {
		t.Fatal("dynamic workload completed nothing")
	}
	if res.ViewChanged() {
		t.Fatalf("dynamic load alone triggered an instance change: %+v", res.InstanceChanges)
	}
}

func TestMonitorSampling(t *testing.T) {
	cfg := baseConfig(1, 8, 3, 300)
	cfg.MonitorSampleEvery = 250 * time.Millisecond
	res := New(cfg).Run(1 * time.Second)
	if len(res.MonitorSamples) == 0 {
		t.Fatal("no monitor samples collected")
	}
	sample := res.MonitorSamples[len(res.MonitorSamples)-1]
	if len(sample.Throughput) != 2 {
		t.Fatalf("sample has %d instances, want 2", len(sample.Throughput))
	}
}

func TestClientLatencySeries(t *testing.T) {
	cfg := baseConfig(1, 8, 2, 100)
	cfg.TrackClientLatency = true
	res := New(cfg).Run(1 * time.Second)
	if len(res.ClientSeries) == 0 {
		t.Fatal("no latency series recorded")
	}
	for _, p := range res.ClientSeries {
		if p.Latency <= 0 {
			t.Fatalf("non-positive latency point %+v", p)
		}
	}
}

func TestF2Run(t *testing.T) {
	cfg := baseConfig(2, 8, 4, 300)
	res := New(cfg).Run(1 * time.Second)
	if res.Completed == 0 {
		t.Fatal("f=2 run completed nothing")
	}
	if res.ViewChanged() {
		t.Fatalf("spurious instance change: %+v", res.InstanceChanges)
	}
}
