package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rbft/internal/core"
	"rbft/internal/obs"
	"rbft/internal/pbft"
	"rbft/internal/types"
)

// determinismScenario is a deliberately rich configuration: an attack (the
// master primary throttles), monitor sampling, and a per-request latency
// series, so the byte-level comparison covers every trace the simulator can
// produce, not just the summary counters.
func determinismScenario(seed int64) Config {
	cfg := baseConfig(1, 8, 4, 500)
	cfg.Seed = seed
	cfg.TrackClientLatency = true
	cfg.MonitorSampleEvery = 100 * time.Millisecond
	cfg.NodeBehavior = map[types.NodeID]core.Behavior{
		0: {Instance: map[types.InstanceID]pbft.Behavior{
			types.MasterInstance: {ProposeInterval: 100 * time.Millisecond},
		}},
	}
	return cfg
}

// serialize renders a full Result — metrics, instance-change records,
// monitor samples and the client latency series — into a canonical byte
// form for exact comparison.
func serialize(t *testing.T, r *Result) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("serializing result: %v", err)
	}
	return data
}

// TestSimulationByteIdenticalAcrossRuns is the determinism gate: two
// in-process runs of the same seeded scenario must produce byte-identical
// serialized results. Any hidden dependence on wall-clock time, map
// iteration order or scheduler interleaving shows up here as a diff.
func TestSimulationByteIdenticalAcrossRuns(t *testing.T) {
	run := func() []byte {
		return serialize(t, New(determinismScenario(7)).Run(2*time.Second))
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces:\n run1: %s\n run2: %s", a, b)
	}
	// Sanity: the scenario actually exercised the interesting paths, so a
	// future regression cannot hide behind an empty trace.
	var res Result
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("scenario completed no requests")
	}
	if len(res.InstanceChanges) == 0 {
		t.Fatal("throttling attack triggered no instance change")
	}
	if len(res.MonitorSamples) == 0 {
		t.Fatal("no monitor samples recorded")
	}
	if len(res.ClientSeries) == 0 {
		t.Fatal("no client latency series recorded")
	}
}

// TestSimulationSeedChangesTrace guards against the comparison becoming
// vacuous: a different seed must perturb the trace. The seed feeds client
// jitter, so at minimum the latency series shifts.
func TestSimulationSeedChangesTrace(t *testing.T) {
	a := serialize(t, New(determinismScenario(7)).Run(2*time.Second))
	c := serialize(t, New(determinismScenario(8)).Run(2*time.Second))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical traces; the determinism check is vacuous")
	}
}

// runWithJSONL runs the determinism scenario with a JSONL trace sink
// attached and returns the raw trace bytes alongside the summary result.
func runWithJSONL(t *testing.T, seed int64) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	cfg := determinismScenario(seed)
	cfg.Trace = w
	res := New(cfg).Run(2 * time.Second)
	if err := w.Err(); err != nil {
		t.Fatalf("trace writer: %v", err)
	}
	return buf.Bytes(), res
}

// TestJSONLTraceByteIdenticalAcrossRuns extends the determinism gate to the
// event trace itself: two same-seed attacked runs must emit byte-identical
// JSONL, because events are stamped with virtual time and serialized with a
// fixed field order.
func TestJSONLTraceByteIdenticalAcrossRuns(t *testing.T) {
	a, _ := runWithJSONL(t, 7)
	b, _ := runWithJSONL(t, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different JSONL traces")
	}
	if len(a) == 0 {
		t.Fatal("scenario emitted no trace events")
	}
	c, _ := runWithJSONL(t, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical JSONL traces; the check is vacuous")
	}
}

// TestTraceForensicsMatchesResult is the end-to-end acceptance check for the
// forensics pipeline: the explanations reconstructed from the JSONL trace
// must name the same monitor.Reason for every instance change the simulator
// recorded, and a throughput-delta change must carry a measured ratio below
// the configured Delta threshold.
func TestTraceForensicsMatchesResult(t *testing.T) {
	raw, res := runWithJSONL(t, 7)
	events, err := obs.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("reading trace back: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace round-tripped to zero events")
	}
	expl := obs.ExplainInstanceChanges(events)
	if len(expl) != len(res.InstanceChanges) {
		t.Fatalf("forensics found %d instance changes, result recorded %d",
			len(expl), len(res.InstanceChanges))
	}
	if len(expl) == 0 {
		t.Fatal("throttling attack produced no instance changes to explain")
	}
	delta := determinismScenario(7).Monitoring.Delta
	for i, e := range expl {
		ic := res.InstanceChanges[i]
		if e.Node != ic.Node || e.CPI != ic.CPI || e.NewView != ic.NewView {
			t.Fatalf("explanation %d = %+v does not match record %+v", i, e, ic)
		}
		if e.Reason != ic.Reason.String() {
			t.Fatalf("explanation %d reason %q, result recorded %q", i, e.Reason, ic.Reason)
		}
		if e.Reason == "throughput-delta" {
			if e.Ratio <= 0 || e.Ratio >= delta {
				t.Fatalf("explanation %d: measured ratio %.3f not in (0, %.2f)", i, e.Ratio, delta)
			}
			if len(e.RatioSeries) == 0 {
				t.Fatalf("explanation %d has no ratio series", i)
			}
		}
		if len(e.Voters) == 0 {
			t.Fatalf("explanation %d reconstructed no voters", i)
		}
	}
}

// crashScenario layers the modelled WAL and deterministic crash/restart
// events on top of the attacked determinism scenario, so the byte-identical
// gate also covers the durability and recovery paths.
func crashScenario(seed int64) Config {
	cfg := determinismScenario(seed)
	cfg.Durability = DurabilityGroupCommit
	cfg.Cost.FsyncLatency = 100 * time.Microsecond
	cfg.Cost.DiskBandwidth = 500e6
	cfg.CheckpointInterval = 16
	cfg.Crashes = []Crash{
		{Node: 2, At: time.Unix(0, 0).Add(600 * time.Millisecond), Down: 250 * time.Millisecond},
		{Node: 1, At: time.Unix(0, 0).Add(1300 * time.Millisecond), Down: 150 * time.Millisecond},
	}
	return cfg
}

// TestCrashRestartByteIdenticalAcrossRuns is the determinism gate for the
// durability subsystem: same-seed runs with crashes, WAL flushes and
// recovery replay must produce byte-identical results. Epoch-guarded event
// cancellation, group-commit batching and restore order all feed this.
func TestCrashRestartByteIdenticalAcrossRuns(t *testing.T) {
	run := func() []byte {
		return serialize(t, New(crashScenario(11)).Run(2*time.Second))
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different crash/restart traces:\n run1: %s\n run2: %s", a, b)
	}
	var res Result
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("crash scenario completed no requests")
	}
	c := serialize(t, New(crashScenario(12)).Run(2*time.Second))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical crash traces; the check is vacuous")
	}
}

// TestCrashRestartJSONLByteIdentical extends the crash/restart gate to the
// raw event trace, which now includes node-crash and node-restart events.
func TestCrashRestartJSONLByteIdentical(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		cfg := crashScenario(11)
		cfg.Trace = w
		New(cfg).Run(2 * time.Second)
		if err := w.Err(); err != nil {
			t.Fatalf("trace writer: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different crash/restart JSONL traces")
	}
	if !bytes.Contains(a, []byte("node-crash")) || !bytes.Contains(a, []byte("node-restart")) {
		t.Fatal("trace carries no crash/restart events; the gate is not exercising recovery")
	}
}
