package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rbft/internal/core"
	"rbft/internal/pbft"
	"rbft/internal/types"
)

// determinismScenario is a deliberately rich configuration: an attack (the
// master primary throttles), monitor sampling, and a per-request latency
// series, so the byte-level comparison covers every trace the simulator can
// produce, not just the summary counters.
func determinismScenario(seed int64) Config {
	cfg := baseConfig(1, 8, 4, 500)
	cfg.Seed = seed
	cfg.TrackClientLatency = true
	cfg.MonitorSampleEvery = 100 * time.Millisecond
	cfg.NodeBehavior = map[types.NodeID]core.Behavior{
		0: {Instance: map[types.InstanceID]pbft.Behavior{
			types.MasterInstance: {ProposeInterval: 100 * time.Millisecond},
		}},
	}
	return cfg
}

// serialize renders a full Result — metrics, instance-change records,
// monitor samples and the client latency series — into a canonical byte
// form for exact comparison.
func serialize(t *testing.T, r *Result) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("serializing result: %v", err)
	}
	return data
}

// TestSimulationByteIdenticalAcrossRuns is the determinism gate: two
// in-process runs of the same seeded scenario must produce byte-identical
// serialized results. Any hidden dependence on wall-clock time, map
// iteration order or scheduler interleaving shows up here as a diff.
func TestSimulationByteIdenticalAcrossRuns(t *testing.T) {
	run := func() []byte {
		return serialize(t, New(determinismScenario(7)).Run(2*time.Second))
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces:\n run1: %s\n run2: %s", a, b)
	}
	// Sanity: the scenario actually exercised the interesting paths, so a
	// future regression cannot hide behind an empty trace.
	var res Result
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("scenario completed no requests")
	}
	if len(res.InstanceChanges) == 0 {
		t.Fatal("throttling attack triggered no instance change")
	}
	if len(res.MonitorSamples) == 0 {
		t.Fatal("no monitor samples recorded")
	}
	if len(res.ClientSeries) == 0 {
		t.Fatal("no client latency series recorded")
	}
}

// TestSimulationSeedChangesTrace guards against the comparison becoming
// vacuous: a different seed must perturb the trace. The seed feeds client
// jitter, so at minimum the latency series shifts.
func TestSimulationSeedChangesTrace(t *testing.T) {
	a := serialize(t, New(determinismScenario(7)).Run(2*time.Second))
	c := serialize(t, New(determinismScenario(8)).Run(2*time.Second))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical traces; the determinism check is vacuous")
	}
}
