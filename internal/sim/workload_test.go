package sim

import (
	"testing"
	"time"
)

func TestStaticLoadShape(t *testing.T) {
	w := StaticLoad(5, 100, 4096)
	if w.maxClients() != 5 {
		t.Fatalf("maxClients = %d", w.maxClients())
	}
	if w.RequestSize != 4096 {
		t.Fatalf("RequestSize = %d", w.RequestSize)
	}
	if len(w.Phases) != 1 || w.Phases[0].RatePerClient != 100 {
		t.Fatalf("phases = %+v", w.Phases)
	}
}

func TestDynamicLoadShape(t *testing.T) {
	w := DynamicLoad(200, 8, time.Second)
	if w.maxClients() != 50 {
		t.Fatalf("maxClients = %d, want the 50-client spike", w.maxClients())
	}
	// Ramp up, spike, ramp down: first and last phases have one client.
	first, last := w.Phases[0], w.Phases[len(w.Phases)-1]
	if first.Clients != 1 || last.Clients != 1 {
		t.Fatalf("ramp endpoints: %d..%d clients", first.Clients, last.Clients)
	}
	spike := 0
	for _, p := range w.Phases {
		if p.Clients > spike {
			spike = p.Clients
		}
	}
	if spike != 50 {
		t.Fatalf("spike = %d clients, want 50", spike)
	}
}

// TestPhaseDeactivationStopsClients: after the population shrinks, the
// deactivated clients stop sending.
func TestPhaseDeactivationStopsClients(t *testing.T) {
	cfg := Config{
		F:    1,
		Cost: DefaultCostModel(),
		Seed: 1,
		Workload: Workload{
			RequestSize: 8,
			Phases: []Phase{
				{Duration: 200 * time.Millisecond, Clients: 5, RatePerClient: 200},
				{Duration: 0, Clients: 1, RatePerClient: 200},
			},
		},
		BatchTimeout: 2 * time.Millisecond,
	}
	s := New(cfg)
	res := s.Run(600 * time.Millisecond)
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	// Offered: 5 clients for 0.2s (200/s) + 1 client for 0.4s ≈ 280 reqs.
	// With all 5 active throughout it would be ~600.
	if res.Completed > 420 {
		t.Fatalf("completed %d requests; deactivated clients kept sending", res.Completed)
	}
}
