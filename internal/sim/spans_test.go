package sim

import (
	"bytes"
	"testing"
	"time"

	"rbft/internal/obs"
)

// spanCapture collects the full event stream of a run in memory, spans
// included (it does not implement obs.SpanSink, so WantSpans is true).
type spanCapture struct {
	events []obs.Event
}

func (c *spanCapture) Enabled() bool      { return true }
func (c *spanCapture) Trace(ev obs.Event) { c.events = append(c.events, ev) }

func (c *spanCapture) spans() []obs.Event {
	var out []obs.Event
	for _, ev := range c.events {
		if ev.Type == obs.EvSpan {
			out = append(out, ev)
		}
	}
	return out
}

// TestSpanTraceByteIdentical extends the determinism gate to lifecycle
// spans: two same-seed runs with a JSONL trace sink attached must produce
// byte-identical trace files, and those traces must actually contain spans
// for every pipeline stage the scenario exercises.
func TestSpanTraceByteIdentical(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		cfg := baseConfig(1, 8, 3, 200)
		cfg.Durability = DurabilityGroupCommit
		cfg.Cost.FsyncLatency = 100 * time.Microsecond
		cfg.Trace = obs.NewJSONLWriter(&buf)
		New(cfg).Run(1 * time.Second)
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different span traces")
	}
	if !bytes.Contains(a, []byte(`"ev":"span"`)) {
		t.Fatal("trace contains no span events")
	}
	for _, stage := range []string{
		"ingress", "preverify", "propose", "prepare-quorum",
		"commit-quorum", "order", "wal-durable", "execute", "egress", "reply",
	} {
		if !bytes.Contains(a, []byte(`"stage":"`+stage+`"`)) {
			t.Fatalf("trace has no %s-stage spans", stage)
		}
	}
}

// TestCriticalPathConsistency checks the analysis invariant end to end on a
// real simulated trace: every reconstructed request's segments sum to its
// end-to-end latency exactly, and the report covers a meaningful share of
// the run's completed requests.
func TestCriticalPathConsistency(t *testing.T) {
	cap := &spanCapture{}
	cfg := baseConfig(1, 8, 3, 200)
	cfg.Trace = cap
	res := New(cfg).Run(1 * time.Second)

	rep := obs.CriticalPaths(cap.events, len(cap.events))
	if rep.Requests == 0 {
		t.Fatal("no completed requests reconstructed from the trace")
	}
	if rep.Requests < res.Completed/2 {
		t.Fatalf("reconstructed %d requests from a run that completed %d", rep.Requests, res.Completed)
	}
	if rep.F != 1 || rep.Nodes != 4 {
		t.Fatalf("inferred nodes=%d f=%d, want 4/1", rep.Nodes, rep.F)
	}
	for _, p := range rep.Slowest {
		var sum time.Duration
		for _, s := range p.Segments {
			if s.Dur < 0 {
				t.Fatalf("negative segment %s=%s for client=%d req=%d", s.Stage, s.Dur, p.Client, p.Req)
			}
			sum += s.Dur
		}
		if sum != p.Latency {
			t.Fatalf("client=%d req=%d: segments sum %s != latency %s (%v)",
				p.Client, p.Req, sum, p.Latency, p.Segments)
		}
	}
}

// TestAttributeNamesInflatedExec injects a grossly inflated application
// execution cost and checks the attribution pipeline pins the latency on
// the execute stage.
func TestAttributeNamesInflatedExec(t *testing.T) {
	cap := &spanCapture{}
	cfg := baseConfig(1, 8, 2, 100)
	cfg.Cost.ExecPerRequest = 2 * time.Millisecond
	cfg.Trace = cap
	New(cfg).Run(1 * time.Second)

	rep := obs.Attribute(cap.events, -1)
	if rep.Dominant != "execute" {
		t.Fatalf("dominant stage %q, want execute (diffs %+v, segments %+v)",
			rep.Dominant, rep.Diffs, rep.Segments)
	}
}

// TestAttributeNamesSlowDisk injects a slow WAL device and checks the
// wal-durable stage is named dominant: the fsync wait hits every instance
// lane's quorum spans symmetrically (so the lane-vs-lane excess cancels),
// while the reply path's log-before-send wait shows up as an absolute
// wal-durable segment.
func TestAttributeNamesSlowDisk(t *testing.T) {
	cap := &spanCapture{}
	cfg := baseConfig(1, 8, 2, 100)
	cfg.Durability = DurabilityGroupCommit
	cfg.Cost.FsyncLatency = 2 * time.Millisecond
	cfg.Trace = cap
	New(cfg).Run(1 * time.Second)

	rep := obs.Attribute(cap.events, -1)
	if rep.Dominant != "wal-durable" {
		t.Fatalf("dominant stage %q, want wal-durable (diffs %+v, segments %+v)",
			rep.Dominant, rep.Diffs, rep.Segments)
	}
}

// TestMetricsOnlyRunEmitsNoSpans pins the benchmark-path opt-out: a run
// whose only sink is the aggregating Metrics tracer must not emit (or pay
// for) span events.
func TestMetricsOnlyRunEmitsNoSpans(t *testing.T) {
	cfg := baseConfig(1, 8, 2, 100)
	s := New(cfg)
	if s.spans {
		t.Fatal("metrics-only run has spans enabled")
	}
}
