package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rbft/internal/obs"
)

func TestPacketCostIncludesOverhead(t *testing.T) {
	c := DefaultCostModel()
	if c.PacketOverheadBytes != 0 {
		t.Fatalf("default PacketOverheadBytes %d, want 0 (legacy traces must stay unchanged)", c.PacketOverheadBytes)
	}
	if got, want := c.PacketCost(1000), c.Serialization(1000); got != want {
		t.Fatalf("zero-overhead PacketCost %v, want Serialization %v", got, want)
	}
	c.PacketOverheadBytes = 66
	if got, want := c.PacketCost(1000), c.Serialization(1066); got != want {
		t.Fatalf("PacketCost %v, want Serialization(payload+overhead) %v", got, want)
	}
	// k payloads in one frame pay the overhead once; k frames pay it k times.
	coalesced := c.PacketCost(10 * 100)
	var individual time.Duration
	for i := 0; i < 10; i++ {
		individual += c.PacketCost(100)
	}
	if coalesced >= individual {
		t.Fatalf("coalesced frame %v not cheaper than %v of individual frames", coalesced, individual)
	}
}

// egressScenario is a wire-bound configuration: a slow link and realistic
// per-packet overhead, so framing policy (per-message vs coalesced) is what
// decides throughput.
func egressScenario(seed int64, coalesce int) Config {
	cfg := baseConfig(1, 8, 8, 4000)
	cfg.Seed = seed
	cfg.Cost.PacketOverheadBytes = 66
	cfg.Cost.LinkBandwidth = 2e6 // ~16 Mbit/s: the wire is the bottleneck
	cfg.EgressCoalesce = coalesce
	return cfg
}

// TestEgressCoalescingAmortizesOverhead pins the modelled win: with the wire
// as the bottleneck and per-packet overhead charged, the coalescing egress
// must order strictly more requests than the per-message egress in the same
// virtual time.
func TestEgressCoalescingAmortizesOverhead(t *testing.T) {
	perMessage := New(egressScenario(3, 0)).Run(2 * time.Second)
	coalesced := New(egressScenario(3, 64)).Run(2 * time.Second)
	if perMessage.Completed == 0 || coalesced.Completed == 0 {
		t.Fatalf("scenario completed no requests: per-message %d, coalesced %d",
			perMessage.Completed, coalesced.Completed)
	}
	if coalesced.Throughput <= perMessage.Throughput {
		t.Fatalf("coalescing did not help: %.0f req/s coalesced vs %.0f req/s per-message",
			coalesced.Throughput, perMessage.Throughput)
	}
	t.Logf("per-message %.0f req/s, coalesced %.0f req/s (%.2fx)",
		perMessage.Throughput, coalesced.Throughput, coalesced.Throughput/perMessage.Throughput)
}

// TestEgressCoalescingByteIdentical extends the determinism gate to the
// coalescing egress model: link parking, batched flush events and per-packet
// overhead must all be functions of (config, seed) alone.
func TestEgressCoalescingByteIdentical(t *testing.T) {
	run := func(seed int64) []byte {
		return serialize(t, New(egressScenario(seed, 16)).Run(2*time.Second))
	}
	a, b := run(5), run(5)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different coalesced-egress traces:\n run1: %s\n run2: %s", a, b)
	}
	var res Result
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("coalesced-egress scenario completed no requests")
	}
	if c := run(6); bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical coalesced-egress traces; the check is vacuous")
	}
}

// TestEgressCoalescingJSONLByteIdentical pins the raw event trace under the
// coalescing model, matching the JSONL gates of the other subsystems.
func TestEgressCoalescingJSONLByteIdentical(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		cfg := egressScenario(5, 16)
		cfg.Trace = w
		New(cfg).Run(2 * time.Second)
		if err := w.Err(); err != nil {
			t.Fatalf("trace writer: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different coalesced-egress JSONL traces")
	}
}

// TestEgressCoalescingWithCrashes checks the interaction the crash model
// must get right: payloads parked on a busy link die with the host (they are
// the node's egress queues), scheduled flushes are invalidated by the epoch
// bump, and the combination stays deterministic.
func TestEgressCoalescingWithCrashes(t *testing.T) {
	scenario := func() Config {
		cfg := egressScenario(9, 16)
		cfg.Durability = DurabilityGroupCommit
		cfg.Cost.FsyncLatency = 100 * time.Microsecond
		cfg.Crashes = []Crash{{
			Node: 2,
			At:   time.Unix(0, 0).Add(500 * time.Millisecond),
			Down: 300 * time.Millisecond,
		}}
		return cfg
	}
	run := func() []byte {
		return serialize(t, New(scenario()).Run(2*time.Second))
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different coalesced-egress crash traces")
	}
	var res Result
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("crash scenario completed no requests")
	}
}
