package sim

import (
	"testing"
	"time"

	"rbft/internal/client"
	"rbft/internal/obs"
	"rbft/internal/types"
)

func TestMetricsWindowing(t *testing.T) {
	m := newMetrics(types.NewConfig(1))
	start := time.Unix(0, 0)
	m.start = start.Add(time.Second) // warmup boundary
	m.end = start.Add(3 * time.Second)

	// Before the window: ignored.
	m.recordCompletion(1, client.Completed{ID: 1, Latency: time.Millisecond}, start, false)
	m.Trace(obs.Event{At: start, Type: obs.EvExecuted, Node: 0})
	// Inside: counted.
	m.recordCompletion(1, client.Completed{ID: 2, Latency: 2 * time.Millisecond}, start.Add(2*time.Second), false)
	m.Trace(obs.Event{At: start.Add(2 * time.Second), Type: obs.EvExecuted, Node: 0})
	// After: ignored.
	m.recordCompletion(1, client.Completed{ID: 3, Latency: time.Millisecond}, start.Add(4*time.Second), false)

	res := m.result(Config{})
	if res.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (window only)", res.Completed)
	}
	if res.ExecutedPerNode[0] != 1 {
		t.Fatalf("ExecutedPerNode[0] = %d, want 1", res.ExecutedPerNode[0])
	}
	if res.AvgLatency != 2*time.Millisecond {
		t.Fatalf("AvgLatency = %v", res.AvgLatency)
	}
	if res.Window != 2*time.Second {
		t.Fatalf("Window = %v", res.Window)
	}
	if res.Throughput != 0.5 {
		t.Fatalf("Throughput = %v, want 0.5 req/s", res.Throughput)
	}
}

func TestMetricsLatencySeriesTracking(t *testing.T) {
	m := newMetrics(types.NewConfig(1))
	m.start = time.Unix(0, 0)
	m.end = time.Unix(10, 0)
	// Series points are recorded regardless of the window (the whole
	// timeline matters for figure 12), but summary stats stay windowed.
	m.recordCompletion(2, client.Completed{ID: 1, Latency: time.Millisecond}, time.Unix(20, 0), true)
	res := m.result(Config{})
	if len(res.ClientSeries) != 1 || res.ClientSeries[0].Client != 2 {
		t.Fatalf("series = %+v", res.ClientSeries)
	}
	if res.Completed != 0 {
		t.Fatal("out-of-window completion leaked into the summary")
	}
}

func TestPercentiles(t *testing.T) {
	m := newMetrics(types.NewConfig(1))
	m.start = time.Unix(0, 0)
	m.end = time.Unix(1000, 0)
	at := time.Unix(500, 0)
	for i := 1; i <= 100; i++ {
		m.recordCompletion(0, client.Completed{ID: types.RequestID(i), Latency: time.Duration(i) * time.Millisecond}, at, false)
	}
	res := m.result(Config{})
	if res.P50Latency < 49*time.Millisecond || res.P50Latency > 52*time.Millisecond {
		t.Fatalf("P50 = %v", res.P50Latency)
	}
	if res.P99Latency < 98*time.Millisecond {
		t.Fatalf("P99 = %v", res.P99Latency)
	}
}

// TestNearestRank pins the nearest-rank percentile definition: the
// percentile is the ceil(p·n)-th smallest observation (index ceil(p·n)-1).
func TestNearestRank(t *testing.T) {
	cases := []struct {
		p    float64
		n    int
		want int
	}{
		{0.50, 1, 0},
		{0.99, 1, 0},
		{0.50, 2, 0}, // ceil(1.0)-1
		{0.50, 3, 1}, // ceil(1.5)-1
		{0.50, 100, 49},
		{0.99, 100, 98},
		{0.99, 99, 98},  // ceil(98.01)-1
		{0.99, 101, 99}, // ceil(99.99)-1
		{0.25, 4, 0},
		{0.75, 4, 2},
		{1.00, 10, 9},
		{0.01, 10, 0},
	}
	for _, c := range cases {
		if got := nearestRank(c.p, c.n); got != c.want {
			t.Errorf("nearestRank(%v, %d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

// TestMetricsTraceAggregation checks the event-to-aggregate folding that
// replaced the ad-hoc recording hooks.
func TestMetricsTraceAggregation(t *testing.T) {
	m := newMetrics(types.NewConfig(1))
	m.start = time.Unix(0, 0)
	m.end = time.Unix(10, 0)
	at := time.Unix(1, 0)

	m.Trace(obs.Event{At: at, Type: obs.EvOrdered, Node: 1, Instance: 1, Count: 5})
	m.Trace(obs.Event{At: at, Type: obs.EvOrdered, Node: 1, Instance: 1, Count: 2})
	m.Trace(obs.Event{At: at, Type: obs.EvInstanceChangeComplete, Node: 2, CPI: 1, View: 1, Reason: "throughput-delta"})
	m.Trace(obs.Event{At: at, Type: obs.EvNICClose, Node: 0, Peer: 3})
	m.Trace(obs.Event{At: at, Type: obs.EvMonitorSample, Node: 3, Values: []float64{7, 8}})
	// Unaggregated event types must be ignored, not counted anywhere.
	m.Trace(obs.Event{At: at, Type: obs.EvPrePrepare, Node: 0, Instance: 0, Seq: 1})

	res := m.result(Config{})
	if res.OrderedPerNodeInstance[1][1] != 7 {
		t.Fatalf("ordered[1][1] = %d, want 7", res.OrderedPerNodeInstance[1][1])
	}
	if len(res.InstanceChanges) != 1 {
		t.Fatalf("instance changes = %d, want 1", len(res.InstanceChanges))
	}
	ic := res.InstanceChanges[0]
	if ic.Node != 2 || ic.CPI != 1 || ic.NewView != 1 || ic.Reason.String() != "throughput-delta" {
		t.Fatalf("IC record wrong: %+v", ic)
	}
	if res.NICCloses != 1 {
		t.Fatalf("NICCloses = %d, want 1", res.NICCloses)
	}
	if len(res.MonitorSamples) != 1 || res.MonitorSamples[0].Node != 3 || res.MonitorSamples[0].Throughput[1] != 8 {
		t.Fatalf("monitor samples wrong: %+v", res.MonitorSamples)
	}
}

func TestResultViewChanged(t *testing.T) {
	r := &Result{}
	if r.ViewChanged() {
		t.Fatal("empty result claims a view change")
	}
	r.InstanceChanges = append(r.InstanceChanges, ICRecord{})
	if !r.ViewChanged() {
		t.Fatal("result with IC records denies a view change")
	}
}
