package sim

import (
	"testing"
	"time"

	"rbft/internal/client"
	"rbft/internal/types"
)

func TestMetricsWindowing(t *testing.T) {
	m := newMetrics(types.NewConfig(1))
	start := time.Unix(0, 0)
	m.start = start.Add(time.Second) // warmup boundary
	m.end = start.Add(3 * time.Second)

	// Before the window: ignored.
	m.recordCompletion(1, client.Completed{ID: 1, Latency: time.Millisecond}, start, false)
	m.recordExecution(0, types.RequestRef{}, start)
	// Inside: counted.
	m.recordCompletion(1, client.Completed{ID: 2, Latency: 2 * time.Millisecond}, start.Add(2*time.Second), false)
	m.recordExecution(0, types.RequestRef{}, start.Add(2*time.Second))
	// After: ignored.
	m.recordCompletion(1, client.Completed{ID: 3, Latency: time.Millisecond}, start.Add(4*time.Second), false)

	res := m.result(Config{})
	if res.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (window only)", res.Completed)
	}
	if res.ExecutedPerNode[0] != 1 {
		t.Fatalf("ExecutedPerNode[0] = %d, want 1", res.ExecutedPerNode[0])
	}
	if res.AvgLatency != 2*time.Millisecond {
		t.Fatalf("AvgLatency = %v", res.AvgLatency)
	}
	if res.Window != 2*time.Second {
		t.Fatalf("Window = %v", res.Window)
	}
	if res.Throughput != 0.5 {
		t.Fatalf("Throughput = %v, want 0.5 req/s", res.Throughput)
	}
}

func TestMetricsLatencySeriesTracking(t *testing.T) {
	m := newMetrics(types.NewConfig(1))
	m.start = time.Unix(0, 0)
	m.end = time.Unix(10, 0)
	// Series points are recorded regardless of the window (the whole
	// timeline matters for figure 12), but summary stats stay windowed.
	m.recordCompletion(2, client.Completed{ID: 1, Latency: time.Millisecond}, time.Unix(20, 0), true)
	res := m.result(Config{})
	if len(res.ClientSeries) != 1 || res.ClientSeries[0].Client != 2 {
		t.Fatalf("series = %+v", res.ClientSeries)
	}
	if res.Completed != 0 {
		t.Fatal("out-of-window completion leaked into the summary")
	}
}

func TestPercentiles(t *testing.T) {
	m := newMetrics(types.NewConfig(1))
	m.start = time.Unix(0, 0)
	m.end = time.Unix(1000, 0)
	at := time.Unix(500, 0)
	for i := 1; i <= 100; i++ {
		m.recordCompletion(0, client.Completed{ID: types.RequestID(i), Latency: time.Duration(i) * time.Millisecond}, at, false)
	}
	res := m.result(Config{})
	if res.P50Latency < 49*time.Millisecond || res.P50Latency > 52*time.Millisecond {
		t.Fatalf("P50 = %v", res.P50Latency)
	}
	if res.P99Latency < 98*time.Millisecond {
		t.Fatalf("P99 = %v", res.P99Latency)
	}
}

func TestResultViewChanged(t *testing.T) {
	r := &Result{}
	if r.ViewChanged() {
		t.Fatal("empty result claims a view change")
	}
	r.InstanceChanges = append(r.InstanceChanges, ICRecord{})
	if !r.ViewChanged() {
		t.Fatal("result with IC records denies a view change")
	}
}
