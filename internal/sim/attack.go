package sim

import (
	"time"

	"rbft/internal/message"
	"rbft/internal/types"
)

// Flood is a message-flooding attack: garbage messages of Size bytes at Rate
// per second per target, starting Start after the run begins (Stop zero
// means until the end of the run).
type Flood struct {
	// From is the attacking node (ignored when FromClients is set).
	From types.NodeID
	// FromClients models faulty clients flooding the nodes' client NICs
	// with unverifiable requests.
	FromClients bool
	// Targets are the victim nodes.
	Targets []types.NodeID
	// Size is the garbage message size ("messages of the maximal size").
	Size int
	// Rate is messages per second per target.
	Rate float64
	// Start and Stop are offsets from the beginning of the run.
	Start, Stop time.Duration
}

// floodMsg returns a cached garbage message for a flood (the padding is
// immutable, so reuse is safe).
func (s *Sim) floodMsg(f Flood) *message.Invalid {
	if s.floodCache == nil {
		s.floodCache = make(map[int]*message.Invalid)
	}
	if m, ok := s.floodCache[f.Size]; ok && m.Node == f.From {
		return m
	}
	m := &message.Invalid{Node: f.From, Padding: make([]byte, f.Size)}
	s.floodCache[f.Size] = m
	return m
}

func (s *Sim) startFloods() {
	for _, f := range s.cfg.Floods {
		flood := f
		if flood.Rate <= 0 || len(flood.Targets) == 0 {
			continue
		}
		start := s.now.Add(flood.Start)
		var stop time.Time
		if flood.Stop > 0 {
			stop = s.now.Add(flood.Stop)
		}
		for _, target := range flood.Targets {
			t := target
			s.schedule(start, func() { s.floodOnce(flood, t, stop) })
		}
	}
}

// floodOnce sends one garbage message to the target and reschedules.
func (s *Sim) floodOnce(f Flood, target types.NodeID, stop time.Time) {
	if !stop.IsZero() && !s.now.Before(stop) {
		return
	}
	dst := s.nodes[target]
	garbage := s.floodMsg(f)

	if f.FromClients {
		// Client-NIC flood: consumes the victim's client NIC inbound
		// bandwidth and MAC-verification CPU; it cannot be attributed to a
		// node, so no NIC closure applies.
		l := &dst.clientRx
		start := s.now
		if l.busyUntil.After(start) {
			start = l.busyUntil
		}
		l.busyUntil = start.Add(s.cfg.Cost.PacketCost(f.Size))
		arrive := l.busyUntil.Add(s.cfg.Cost.LinkLatency)
		s.schedule(arrive, func() { s.deliverToNode(dst, garbage, 0, true) })
	} else {
		// Node-to-node flood: consumes the attacker's dedicated link to the
		// victim (per-peer NICs isolate other traffic) and the victim's CPU
		// until the flood detector closes the NIC.
		s.sendNodeToNode(s.nodes[f.From], target, garbage)
	}

	next := s.now.Add(time.Duration(float64(time.Second) / f.Rate))
	s.schedule(next, func() { s.floodOnce(f, target, stop) })
}
