package sim

import (
	"container/heap"
	"math/rand"
	"time"

	"rbft/internal/app"
	"rbft/internal/core"
	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/monitor"
	"rbft/internal/obs"
	"rbft/internal/types"
)

// event is one scheduled simulator action.
type event struct {
	at  time.Time
	seq uint64 // FIFO tiebreak for identical timestamps
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Config parameterises one simulation run.
type Config struct {
	// F is the number of tolerated faults (N = 3f+1 nodes).
	F int
	// Cost is the CPU/network cost model.
	Cost CostModel
	// UDP disables the TCP per-message latency overhead.
	UDP bool
	// Seed feeds the deterministic jitter source.
	Seed int64
	// VerifyCores selects the ingress charging model. 0 (the default) is the
	// serial model: each message's full inCost is charged on the CPU queue
	// that processes it. k >= 1 models the two-stage pipeline of the live
	// runtime: preverifyCost is charged on k parallel verify cores (with
	// queueing) and only applyCost on the node-module/instance cores, with
	// an order-preserving handoff between the stages. Either model is
	// deterministic for a fixed seed.
	VerifyCores int
	// EgressCoalesce models the frame-coalescing egress of the live runtime
	// (docs/EGRESS.md). 0 (the default) is the per-message model: every
	// node-to-node message is its own physical frame, paying
	// Cost.PacketOverheadBytes each. k >= 1 models the coalescing batch
	// writer: messages emitted while their peer link is still transmitting
	// park on the link and leave as one coalesced frame of up to k payloads,
	// paying the packet overhead once per flush — self-regulating, exactly
	// like the runtime's greedy flush policy. Either model is deterministic
	// for a fixed seed.
	EgressCoalesce int
	// ExecWorkers selects the execution charging model. 0 or 1 (the default)
	// is serial: each executed request is charged execCost on the executing
	// core. k >= 2 models the parallel wave scheduler of the live node
	// (internal/exec, docs/EXECUTION.md): when an output carries a wave plan,
	// each wave of n non-conflicting requests is charged ceil(n/k) execution
	// quanta — the span of n requests spread over k worker cores. The wave
	// plan is computed by the real scheduler inside core.Node, so the model
	// charges exactly the parallelism the application's conflict keys allow.
	// Outputs without a wave plan (serial path) are charged per request as
	// before. Either model is deterministic for a fixed seed.
	ExecWorkers int

	// BatchSize and BatchTimeout configure the ordering instances.
	BatchSize    int
	BatchTimeout time.Duration
	// OrderingMode selects master-only (default) or multi-primary ordering
	// (core.Config.OrderingMode): in multi-primary mode each instance orders
	// a disjoint client partition and a deterministic merge feeds execution.
	OrderingMode types.OrderingMode
	// Monitoring carries Δ/Λ/Ω; Instances is filled in automatically.
	Monitoring monitor.Config
	// CheckpointInterval and WatermarkWindow tune log GC.
	CheckpointInterval types.SeqNum
	WatermarkWindow    types.SeqNum
	// FloodThreshold etc. tune the node flood defence; zero uses the node
	// defaults.
	FloodThreshold int
	FloodWindow    time.Duration
	NICClosePeriod time.Duration

	// Durability selects the modelled WAL mode (default none). With
	// durability on, every node logs crash-survivable state and an output's
	// messages are released only after its records' modelled flush
	// completes (log before send, exactly as internal/runtime enforces).
	Durability DurabilityMode
	// GroupCommitInterval is the flush interval of the modelled group-commit
	// WAL (default 2ms, matching wal.Options).
	GroupCommitInterval time.Duration
	// Crashes schedules deterministic node crash/restart events. A crashed
	// node loses every non-durable structure — CPU queues, un-fsynced WAL
	// batches, in-flight verification — and recovers from its durable log
	// image when it restarts.
	Crashes []Crash

	// Workload drives the clients.
	Workload Workload
	// SpeculativeReads routes the KV workload's GET operations through the
	// client's speculative read-only fast path (docs/CLIENTS.md): reads skip
	// ordering, nodes answer them from local state at apply time, and the
	// client accepts on a read quorum (2f+1) of matching replies, falling
	// back to normal ordering on refutation or timeout. Off (the default)
	// keeps every trace byte-identical to the legacy behaviour.
	SpeculativeReads bool
	// MaxClients bounds each node's client table (core.Config.MaxClients):
	// beyond it the least-recently-active quiescent clients are evicted, and
	// an evicted client that retransmits is re-verified from scratch. 0 (the
	// default) keeps the table unbounded, as before.
	MaxClients int
	// ClientShards sets each node's client-table shard count
	// (core.Config.ClientShards); 0 uses the core default. Sharding only
	// matters for lock striping in the live runtime — the simulator is
	// single-threaded — but the shard count changes eviction (per-shard LRU),
	// so it is a modelled parameter too.
	ClientShards int

	// NodeBehavior installs Byzantine node behaviour for attacks.
	NodeBehavior map[types.NodeID]core.Behavior
	// Floods are message-flooding attacks.
	Floods []Flood
	// CorruptClientAuthFor lists nodes for which all clients corrupt their
	// request MAC entry (worst-attack-1 step i).
	CorruptClientAuthFor []types.NodeID
	// Script schedules arbitrary mid-run actions (e.g. changing an
	// attacker's behaviour).
	Script []Action

	// Trace is an optional additional event sink (e.g. an obs.JSONLWriter)
	// receiving the full protocol event trace alongside the run's metrics.
	// Events carry virtual-time timestamps, so same-seed runs produce
	// byte-identical JSONL traces.
	Trace obs.Tracer

	// Warmup excludes the initial interval from summary metrics.
	Warmup time.Duration
	// TrackClientLatency records a per-request latency series per client
	// (figure 12).
	TrackClientLatency bool
	// MonitorSampleEvery samples every node's per-instance monitor
	// throughput at this interval (figures 9 and 11). Zero disables.
	MonitorSampleEvery time.Duration
}

// Action is a scheduled scriptable step.
type Action struct {
	At time.Time
	Do func(s *Sim)
}

// cpuTask is one unit of work waiting on a node CPU queue. In the pipelined
// model (VerifyCores >= 1), piped marks a task that already went through the
// verify stage: v/verr carry the preverification outcome and only the apply
// cost remains to be charged.
type cpuTask struct {
	msg      message.Message
	from     types.NodeID
	isClient bool
	isTick   bool

	piped bool
	v     *message.Verified
	verr  error

	// arrivedAt is when the frame reached the node (ingress-span anchor).
	arrivedAt time.Time
}

// cpuQueue is a single-server FIFO CPU queue (one core).
type cpuQueue struct {
	pending []cpuTask
	running bool
}

// link models one unidirectional network link (dedicated NICs per pair).
// With EgressCoalesce > 0, messages emitted while the link is transmitting
// accumulate in pending and flush as one coalesced frame when it frees;
// pending is the modelled peer egress queue, held on the sending host, so a
// crash loses it (unlike frames already on the wire). The queue is
// unbounded: the simulator's emit step is instantaneous, so the queue only
// ever holds what one busy period accumulates — the live runtime bounds its
// queues to protect the apply loop, which the sim cannot stall by design.
type link struct {
	busyUntil time.Time
	// pending holds parked payloads awaiting a coalesced flush.
	pending []pendingFrame
	// flushArmed marks that a flush event is scheduled for busyUntil.
	flushArmed bool
}

// pendingFrame is one protocol payload parked on a busy link.
type pendingFrame struct {
	msg  message.Message
	size int
}

// simNode wraps a core.Node with its CPU queues and NIC links.
type simNode struct {
	node *core.Node
	id   types.NodeID
	// queues: index 0 = node modules (verification, propagation, dispatch,
	// execution); 1..f+1 = one core per protocol-instance replica.
	queues []cpuQueue
	// peerTx[j] is the outbound link to node j; clientTx/clientRx are the
	// client-facing NIC directions.
	peerTx   []link
	clientTx link
	clientRx link
	// closed[peer] drops traffic from that peer until the deadline (NIC
	// closure on flood detection).
	closed map[types.NodeID]time.Time
	// sigSeen tracks request keys whose signature this node has already
	// verified (signature cost charged once).
	sigSeen map[types.RequestKey]bool
	// verify models the parallel preverify cores of the pipelined ingress
	// (nil in the serial model). An arriving message is charged on the
	// earliest-free core (lowest index on ties).
	verify []time.Time // busy-until per verify core
	// ingressSeq numbers arrivals; reorder holds verified tasks until every
	// earlier arrival has been handed to the apply stage, and nextApply is
	// the next sequence to release. This is the simulated counterpart of the
	// runtime's order-preserving handoff.
	ingressSeq uint64
	nextApply  uint64
	reorder    map[uint64]cpuTask
	// timerAt is the currently scheduled wake-up (zero if none).
	timerAt time.Time
	// trace is the node-stamped event sink for events the simulator itself
	// emits on this node's behalf (monitor samples, NIC-closure drops).
	trace obs.Tracer

	// ---- modelled durability and crash state (see durability.go) ----
	// epoch invalidates scheduled events that captured a pre-crash node
	// incarnation; crashed drops deliveries while the node is down.
	epoch   int
	crashed bool
	// durable is the node's on-disk WAL image (encoded records); it is the
	// ONLY state that survives a crash.
	durable []byte
	// diskBusyUntil serializes flushes on the node's single WAL device.
	diskBusyUntil time.Time
	// pendingFlush and flushWaiters hold the group-commit batch that has
	// been appended but not yet fsynced, and the outputs waiting on it;
	// both are lost on crash.
	pendingFlush []byte
	flushWaiters []flushWaiter
	flushArmed   bool
}

// flushWaiter is one output parked behind the group-commit fsync, with its
// append time (the wal-durable span anchor).
type flushWaiter struct {
	at  time.Time
	out core.Output
}

// Sim is one simulation run.
type Sim struct {
	cfg     Config
	cluster types.Config
	ks      *crypto.KeyStore
	rng     *rand.Rand
	sink    obs.Tracer // every node's event sink (metrics + optional trace)

	// spans caches obs.WantSpans(sink): the metrics aggregator alone does
	// not consume spans, so untraced runs skip span emission entirely.
	spans bool

	events eventHeap
	seq    uint64
	now    time.Time
	endAt  time.Time

	nodes []*simNode
	// clients is indexed by client id; entries are instantiated lazily on
	// first use (clientAt), so a million-addressable-client population only
	// ever materialises the clients that actually send.
	clients  []*simClient
	clientRT time.Duration // per-client retransmission timeout
	clientOp []byte        // shared fixed payload of the opaque workload
	// kvOps generates KV operations when Workload.KV is configured.
	kvOps *kvOpGen
	// olEpoch invalidates a superseded open-loop arrival process on phase
	// transitions; olNext cycles arrivals through the phase's population.
	olEpoch int
	olNext  int

	floodCache map[int]*message.Invalid

	metrics *Metrics
}

// New builds a simulator from the configuration.
func New(cfg Config) *Sim {
	cluster := types.NewConfig(cfg.F)
	maxClients := cfg.Workload.maxClients() + 1
	s := &Sim{
		cfg:     cfg,
		cluster: cluster,
		ks:      crypto.NewInsecureFastKeyStore([]byte("rbft-sim"), cluster.N, maxClients),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		now:     time.Unix(0, 0),
		metrics: newMetrics(cluster),
	}
	// Every node's events feed the metrics aggregator, and additionally the
	// configured trace sink (JSONL etc.) when one is installed.
	s.sink = obs.Multi(s.metrics, cfg.Trace)
	s.spans = obs.WantSpans(s.sink)
	for i := 0; i < cluster.N; i++ {
		id := types.NodeID(i)
		sn := &simNode{
			node:    s.newCoreNode(id),
			id:      id,
			queues:  make([]cpuQueue, cluster.Instances()+1),
			peerTx:  make([]link, cluster.N),
			closed:  make(map[types.NodeID]time.Time),
			sigSeen: make(map[types.RequestKey]bool),
			trace:   obs.WithNode(s.sink, id),
		}
		if cfg.VerifyCores > 0 {
			sn.verify = make([]time.Time, cfg.VerifyCores)
			sn.reorder = make(map[uint64]cpuTask)
		}
		s.nodes = append(s.nodes, sn)
	}
	s.setupClients()
	return s
}

// newCoreNode builds a fresh node state machine for id — used at start-up
// and again when a crashed node restarts (recovery then replays the durable
// log into it).
func (s *Sim) newCoreNode(id types.NodeID) *core.Node {
	nodeCfg := core.Config{
		Cluster:            s.cluster,
		Node:               id,
		BatchSize:          s.cfg.BatchSize,
		BatchTimeout:       s.cfg.BatchTimeout,
		ExecWorkers:        s.cfg.ExecWorkers,
		OrderingMode:       s.cfg.OrderingMode,
		CheckpointInterval: s.cfg.CheckpointInterval,
		WatermarkWindow:    s.cfg.WatermarkWindow,
		MaxClients:         s.cfg.MaxClients,
		ClientShards:       s.cfg.ClientShards,
		Monitoring:         s.cfg.Monitoring,
		FloodThreshold:     s.cfg.FloodThreshold,
		FloodWindow:        s.cfg.FloodWindow,
		NICClosePeriod:     s.cfg.NICClosePeriod,
		Durable:            s.cfg.Durability != DurabilityNone,
	}
	if s.cfg.Workload.KV != nil {
		// The KV workload replicates the keyed store application — the app
		// whose conflict declarations the parallel scheduler consumes. A
		// fresh store per (re)build; recovery replay refills it after a
		// crash.
		nodeCfg.App = app.NewKV()
	}
	node := core.New(nodeCfg, s.ks.NodeRing(id))
	node.SetTracer(s.sink)
	if b, ok := s.cfg.NodeBehavior[id]; ok {
		node.SetBehavior(b)
	}
	return node
}

// Cluster returns the cluster configuration of the run.
func (s *Sim) Cluster() types.Config { return s.cluster }

// Node returns the core node state machine of node id (scripted attacks).
func (s *Sim) Node(id types.NodeID) *core.Node { return s.nodes[id].node }

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

func (s *Sim) schedule(at time.Time, fn func()) {
	if at.Before(s.now) {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// Run executes the simulation for duration d and returns the collected
// metrics.
func (s *Sim) Run(d time.Duration) *Result {
	start := s.now
	s.endAt = start.Add(d)
	s.metrics.start = start.Add(s.cfg.Warmup)
	s.metrics.end = s.endAt

	s.startWorkload()
	s.startFloods()
	for _, a := range s.cfg.Script {
		act := a
		s.schedule(act.At, func() { act.Do(s) })
	}
	for _, c := range s.cfg.Crashes {
		cr := c
		s.schedule(cr.At, func() { s.crashNode(cr.Node) })
		s.schedule(cr.At.Add(cr.Down), func() { s.restartNode(cr.Node) })
	}
	if s.cfg.MonitorSampleEvery > 0 {
		s.schedule(start.Add(s.cfg.MonitorSampleEvery), s.sampleMonitors)
	}
	for _, sn := range s.nodes {
		s.armNodeTimer(sn)
	}

	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.at.After(s.endAt) {
			break
		}
		s.now = ev.at
		ev.fn()
	}
	s.now = s.endAt
	return s.metrics.result(s.cfg)
}

// ---- node task processing ----

// queueFor routes a message to the CPU queue that processes it: node-level
// messages on queue 0, per-instance protocol messages on their instance
// core.
func queueFor(msg message.Message, instances int) int {
	inst, _, ok := message.InstanceAndSender(msg)
	if ok && int(inst) < instances {
		return 1 + int(inst)
	}
	return 0
}

// enqueueTask appends a task to a node CPU queue, starting the queue if idle.
func (s *Sim) enqueueTask(sn *simNode, q int, task cpuTask) {
	queue := &sn.queues[q]
	queue.pending = append(queue.pending, task)
	if !queue.running {
		s.startNextTask(sn, q)
	}
}

// startNextTask runs the head-of-queue task at the current time.
func (s *Sim) startNextTask(sn *simNode, q int) {
	queue := &sn.queues[q]
	if len(queue.pending) == 0 {
		queue.running = false
		return
	}
	task := queue.pending[0]
	queue.pending = queue.pending[1:]
	queue.running = true

	cost, out := s.runTask(sn, task)
	done := s.now.Add(cost)
	ep := sn.epoch
	s.schedule(done, func() {
		if sn.epoch != ep {
			return // the node crashed while this task was "running"
		}
		s.emitExecuteSpans(sn, out)
		s.persistThenEmit(sn, out)
		s.armNodeTimer(sn)
		s.startNextTask(sn, q)
	})
}

// runTask invokes the node state machine for one task and returns the CPU
// cost plus the node output (emitted at completion).
func (s *Sim) runTask(sn *simNode, task cpuTask) (time.Duration, core.Output) {
	if task.isTick {
		out := sn.node.Tick(s.now)
		return s.outputCost(out), out
	}
	if task.piped {
		return s.runApplyTask(sn, task)
	}
	first := s.chargeFirstSight(sn, task.msg)
	cost := s.cfg.Cost.inCost(task.msg, first)
	var out core.Output
	if task.isClient {
		req, ok := task.msg.(*message.Request)
		if !ok {
			return cost, out
		}
		if s.spans {
			// The serial model charges preverify and apply as one task:
			// the ingress span is the queue wait, the preverify span the
			// verification share of the charged cost.
			pv := s.cfg.Cost.preverifyCost(task.msg, first)
			s.emitIngressSpans(sn, task, s.now, s.now.Add(pv), pv)
		}
		out = sn.node.OnClientRequest(req, s.now)
	} else {
		out = sn.node.OnNodeMessage(task.msg, task.from, s.now)
	}
	return cost + s.outputCost(out), out
}

// runApplyTask invokes the apply stage for a task that already passed the
// simulated verify cores; only the apply cost is charged here.
func (s *Sim) runApplyTask(sn *simNode, task cpuTask) (time.Duration, core.Output) {
	cost := s.cfg.Cost.applyCost(task.msg)
	var out core.Output
	if task.verr != nil {
		f := core.IngressFailure{
			FromClient: task.isClient,
			From:       task.from,
			Kind:       message.FailKindOf(task.verr),
			Msg:        task.msg,
		}
		if req, ok := task.msg.(*message.Request); ok && task.isClient {
			f.Client = req.Client
		}
		out = sn.node.OnIngressFailure(f, s.now)
	} else {
		out = sn.node.OnVerified(task.v, s.now)
	}
	return cost + s.outputCost(out), out
}

// ---- pipelined ingress (VerifyCores >= 1) ----

// pipeIngress charges a message's stateless verification on the
// earliest-free verify core and schedules the handoff to the apply stage.
func (s *Sim) pipeIngress(sn *simNode, task cpuTask) {
	seq := sn.ingressSeq
	sn.ingressSeq++
	first := s.chargeFirstSight(sn, task.msg)
	cost := s.cfg.Cost.preverifyCost(task.msg, first)

	// Earliest-free core, lowest index on ties: deterministic and
	// work-conserving.
	coreIdx := 0
	for i := 1; i < len(sn.verify); i++ {
		if sn.verify[i].Before(sn.verify[coreIdx]) {
			coreIdx = i
		}
	}
	start := s.now
	if sn.verify[coreIdx].After(start) {
		start = sn.verify[coreIdx]
	}
	done := start.Add(cost)
	sn.verify[coreIdx] = done
	if s.spans && task.isClient {
		s.emitIngressSpans(sn, task, start, done, cost)
	}
	ep := sn.epoch
	s.schedule(done, func() {
		if sn.epoch != ep {
			return // crashed mid-verification; the frame is lost
		}
		s.verifyDone(sn, seq, task)
	})
}

// verifyDone runs the actual (fast-mode) preverification for one message and
// parks the outcome in the reorder buffer until every earlier arrival has
// been released, preserving ingress order into the apply queues.
func (s *Sim) verifyDone(sn *simNode, seq uint64, task cpuTask) {
	pre := sn.node.Preverifier()
	if task.isClient {
		if req, ok := task.msg.(*message.Request); ok {
			task.v, task.verr = pre.PreverifyClient(req, req.Client)
		} else {
			task.verr = &message.PreverifyError{Kind: message.FailMalformed}
		}
	} else {
		task.v, task.verr = pre.PreverifyNode(task.msg, task.from)
	}
	task.piped = true
	sn.reorder[seq] = task
	for {
		next, ok := sn.reorder[sn.nextApply]
		if !ok {
			return
		}
		delete(sn.reorder, sn.nextApply)
		sn.nextApply++
		s.enqueueTask(sn, queueFor(next.msg, s.cluster.Instances()), next)
	}
}

// emitIngressSpans emits a client request's ingress span (arrival to the
// start of preverification) and preverify span (the verification itself).
// start/done bracket the verification; the At of each span is its end.
func (s *Sim) emitIngressSpans(sn *simNode, task cpuTask, start, done time.Time, cost time.Duration) {
	req, ok := task.msg.(*message.Request)
	if !ok {
		return
	}
	sn.trace.Trace(obs.Event{
		At: start, Type: obs.EvSpan, Stage: obs.StageIngress,
		Client: req.Client, Req: req.ID, Dur: start.Sub(task.arrivedAt),
	})
	sn.trace.Trace(obs.Event{
		At: done, Type: obs.EvSpan, Stage: obs.StagePreverify,
		Client: req.Client, Req: req.ID, Dur: cost,
	})
}

// emitExecuteSpans emits one execute span per request executed by a
// completed task, charged at the modelled per-request execution cost.
func (s *Sim) emitExecuteSpans(sn *simNode, out core.Output) {
	if !s.spans || len(out.Executions) == 0 {
		return
	}
	quantum := s.cfg.Cost.execCost(s.cfg.Workload.RequestSize)
	k := s.cfg.ExecWorkers
	waved := k >= 2 && len(out.ExecWaves) > 0
	for _, ex := range out.Executions {
		// Under the parallel model a request's execute span is its wave's
		// span: the wave's requests spread over k worker cores.
		d := quantum
		if waved && ex.Wave < len(out.ExecWaves) {
			d = time.Duration((out.ExecWaves[ex.Wave]+k-1)/k) * quantum
		}
		sn.trace.Trace(obs.Event{
			At: s.now, Type: obs.EvSpan, Stage: obs.StageExecute,
			Client: ex.Ref.Client, Req: ex.Ref.ID,
			Trace: obs.TraceID(ex.Ref.Digest), Dur: d,
		})
	}
}

// chargeFirstSight reports whether msg carries a request body this node has
// not yet signature-verified, and marks it.
func (s *Sim) chargeFirstSight(sn *simNode, msg message.Message) bool {
	var key types.RequestKey
	switch m := msg.(type) {
	case *message.Request:
		key = types.RequestKey{Client: m.Client, ID: m.ID}
	case *message.Propagate:
		key = types.RequestKey{Client: m.Req.Client, ID: m.Req.ID}
	default:
		return false
	}
	if sn.sigSeen[key] {
		return false
	}
	sn.sigSeen[key] = true
	return true
}

// outputCost sums the authentication and execution costs of a node output.
func (s *Sim) outputCost(out core.Output) time.Duration {
	var cost time.Duration
	for _, nm := range out.NodeMsgs {
		cost += s.cfg.Cost.outCost(nm.Msg, s.cluster.N)
	}
	for _, cm := range out.ClientMsgs {
		cost += s.cfg.Cost.outCost(cm.Msg, 1)
	}
	cost += s.execChargeFor(out)
	return cost
}

// execChargeFor charges an output's executions. With the parallel model on
// (ExecWorkers >= 2) and a wave plan present, each wave of n requests costs
// ceil(n/k) execution quanta — its span over k worker cores; the serial model
// (and any output the node executed serially) charges one quantum per
// request. Both models charge the same total CPU-seconds of execution work;
// the parallel model only compresses the critical path, exactly like the
// verify-core pipeline.
func (s *Sim) execChargeFor(out core.Output) time.Duration {
	if len(out.Executions) == 0 {
		return 0
	}
	quantum := s.cfg.Cost.execCost(s.cfg.Workload.RequestSize)
	k := s.cfg.ExecWorkers
	if k >= 2 && len(out.ExecWaves) > 0 {
		var cost time.Duration
		for _, n := range out.ExecWaves {
			cost += time.Duration((n+k-1)/k) * quantum
		}
		return cost
	}
	return time.Duration(len(out.Executions)) * quantum
}

// emitOutputs transmits a node output over the modelled network. Metric
// recording happens via the event trace at node-processing time; here the
// simulator only applies the network-level effects.
func (s *Sim) emitOutputs(sn *simNode, out core.Output) {
	for _, nc := range out.NICCloses {
		sn.closed[nc.Peer] = nc.Until
	}
	for _, nm := range out.NodeMsgs {
		size := s.cfg.Cost.wireSize(nm.Msg)
		targets := nm.To
		if targets == nil {
			for i := 0; i < s.cluster.N; i++ {
				if types.NodeID(i) != sn.id {
					targets = append(targets, types.NodeID(i))
				}
			}
		}
		for _, to := range targets {
			s.sendNodeToNodeSized(sn, to, nm.Msg, size)
		}
	}
	for _, cm := range out.ClientMsgs {
		s.sendNodeToClient(sn, cm.To, cm.Msg)
	}
}

// sendNodeToNode transmits msg on the dedicated from→to link.
func (s *Sim) sendNodeToNode(from *simNode, to types.NodeID, msg message.Message) {
	s.sendNodeToNodeSized(from, to, msg, s.cfg.Cost.wireSize(msg))
}

func (s *Sim) sendNodeToNodeSized(from *simNode, to types.NodeID, msg message.Message, size int) {
	l := &from.peerTx[to]
	if s.cfg.EgressCoalesce > 0 && (l.busyUntil.After(s.now) || len(l.pending) > 0) {
		// Link busy (or a flush is already queued behind it): park the
		// payload; it leaves in the next coalesced frame.
		l.pending = append(l.pending, pendingFrame{msg: msg, size: size})
		if !l.flushArmed {
			l.flushArmed = true
			ep := from.epoch
			s.schedule(l.busyUntil, func() { s.flushLink(from, to, ep) })
		}
		return
	}
	// Link idle: the payload leaves immediately as its own physical frame
	// (greedy flush — coalescing adds no latency when the wire is keeping
	// up, exactly like the runtime's flush policy).
	start := s.now
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	l.busyUntil = start.Add(s.cfg.Cost.PacketCost(size))
	arrive := l.busyUntil.Add(s.cfg.Cost.LinkLatency)
	if !s.cfg.UDP {
		arrive = arrive.Add(s.cfg.Cost.TCPExtraLatency)
	}
	dst := s.nodes[to]
	fromID := from.id
	s.schedule(arrive, func() { s.deliverToNode(dst, msg, fromID, false) })
}

// flushLink transmits up to EgressCoalesce parked payloads as one coalesced
// physical frame: one packet overhead for the whole batch. Runs when the
// link frees; if more payloads remain parked (a burst larger than one
// batch), the next flush is armed for the end of this transmission.
func (s *Sim) flushLink(from *simNode, to types.NodeID, ep int) {
	l := &from.peerTx[to]
	l.flushArmed = false
	if from.epoch != ep || len(l.pending) == 0 {
		// The sender crashed since this flush was armed (its egress queue
		// died with it) or the queue was cleared; nothing to transmit.
		return
	}
	k := len(l.pending)
	if k > s.cfg.EgressCoalesce {
		k = s.cfg.EgressCoalesce
	}
	batch := l.pending[:k:k]
	l.pending = l.pending[k:]
	total := 0
	for _, pf := range batch {
		total += pf.size
	}
	l.busyUntil = s.now.Add(s.cfg.Cost.PacketCost(total))
	arrive := l.busyUntil.Add(s.cfg.Cost.LinkLatency)
	if !s.cfg.UDP {
		arrive = arrive.Add(s.cfg.Cost.TCPExtraLatency)
	}
	dst := s.nodes[to]
	fromID := from.id
	for _, pf := range batch {
		msg := pf.msg
		s.schedule(arrive, func() { s.deliverToNode(dst, msg, fromID, false) })
	}
	if len(l.pending) > 0 {
		l.flushArmed = true
		s.schedule(l.busyUntil, func() { s.flushLink(from, to, ep) })
	}
}

// deliverToNode enqueues an arrived message unless the sender's NIC is
// closed (dropped at zero CPU cost).
func (s *Sim) deliverToNode(sn *simNode, msg message.Message, from types.NodeID, isClient bool) {
	if sn.crashed {
		return // the host is down; frames on the wire are lost
	}
	if !isClient {
		if until, closed := sn.closed[from]; closed {
			if s.now.Before(until) {
				if sn.trace.Enabled() {
					sn.trace.Trace(obs.Event{At: s.now, Type: obs.EvMsgDrop, Peer: from})
				}
				return
			}
			delete(sn.closed, from)
		}
	}
	task := cpuTask{msg: msg, from: from, isClient: isClient, arrivedAt: s.now}
	if sn.verify != nil {
		s.pipeIngress(sn, task)
		return
	}
	s.enqueueTask(sn, queueFor(msg, s.cluster.Instances()), task)
}

// sendNodeToClient transmits a reply over the node's client NIC.
func (s *Sim) sendNodeToClient(from *simNode, to types.ClientID, msg message.Message) {
	if int(to) >= len(s.clients) || s.clients[to] == nil {
		return // unknown or never-instantiated client: nothing awaits this reply
	}
	size := len(msg.Marshal(nil))
	l := &from.clientTx
	start := s.now
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	ser := s.cfg.Cost.PacketCost(size)
	l.busyUntil = start.Add(ser)
	arrive := l.busyUntil.Add(s.cfg.Cost.LinkLatency)
	if !s.cfg.UDP {
		arrive = arrive.Add(s.cfg.Cost.TCPExtraLatency)
	}
	if s.spans {
		if rep, ok := msg.(*message.Reply); ok {
			// egress: client-NIC queue wait plus serialization; reply: the
			// wire transit, which only the simulator can observe.
			from.trace.Trace(obs.Event{
				At: l.busyUntil, Type: obs.EvSpan, Stage: obs.StageEgress,
				Client: rep.Client, Req: rep.ID, Dur: l.busyUntil.Sub(s.now),
			})
			from.trace.Trace(obs.Event{
				At: arrive, Type: obs.EvSpan, Stage: obs.StageReply,
				Client: rep.Client, Req: rep.ID, Dur: arrive.Sub(l.busyUntil),
			})
		}
	}
	cl := s.clients[to]
	fromID := from.id
	s.schedule(arrive, func() { s.clientReceive(cl, msg, fromID) })
}

// armNodeTimer keeps exactly one pending wake-up per node.
func (s *Sim) armNodeTimer(sn *simNode) {
	wake := sn.node.NextWake()
	if wake.IsZero() || wake.After(s.endAt) {
		return
	}
	if !sn.timerAt.IsZero() && !sn.timerAt.After(wake) && sn.timerAt.After(s.now) {
		return // an earlier or equal wake-up is already scheduled
	}
	if wake.Before(s.now) {
		wake = s.now
	}
	sn.timerAt = wake
	s.schedule(wake, func() { s.fireNodeTimer(sn) })
}

func (s *Sim) fireNodeTimer(sn *simNode) {
	sn.timerAt = time.Time{}
	if sn.crashed {
		return
	}
	wake := sn.node.NextWake()
	if wake.IsZero() {
		return
	}
	if wake.After(s.now) {
		s.armNodeTimer(sn)
		return
	}
	s.enqueueTask(sn, 0, cpuTask{isTick: true})
}

// sampleMonitors records every node's per-instance monitor throughput as
// EvMonitorSample events (aggregated by Metrics, serialized by trace sinks).
func (s *Sim) sampleMonitors() {
	for _, sn := range s.nodes {
		sn.trace.Trace(obs.Event{
			At: s.now, Type: obs.EvMonitorSample,
			Values: sn.node.Monitor().Throughput(),
		})
	}
	s.schedule(s.now.Add(s.cfg.MonitorSampleEvery), s.sampleMonitors)
}
