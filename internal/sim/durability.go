package sim

import (
	"fmt"
	"time"

	"rbft/internal/core"
	"rbft/internal/message"
	"rbft/internal/obs"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// DurabilityMode selects how the simulator models the WAL that
// internal/runtime drives for real: not at all, one fsync per output, or
// interval-batched group commit.
type DurabilityMode int

const (
	// DurabilityNone disables durability: nodes log nothing and crashes
	// cannot be recovered from (the paper's in-memory configuration).
	DurabilityNone DurabilityMode = iota
	// DurabilitySerialFsync persists each records-bearing output with its
	// own write+fsync before the output's messages are released. Simple and
	// safe, but the disk serializes the whole node pipeline.
	DurabilitySerialFsync
	// DurabilityGroupCommit batches appended records and fsyncs the batch
	// once per GroupCommitInterval; every output in the batch is released
	// together when the shared fsync completes, amortising the device
	// latency across all of them (the internal/wal design).
	DurabilityGroupCommit
)

// Crash schedules one deterministic node crash: at At the node loses every
// non-durable structure, and after Down it restarts, recovering from its
// durable WAL image. With DurabilityNone the node restarts empty-handed.
type Crash struct {
	Node types.NodeID
	At   time.Time
	Down time.Duration
}

// groupCommitInterval returns the configured flush interval, defaulting to
// the internal/wal default.
func (s *Sim) groupCommitInterval() time.Duration {
	if s.cfg.GroupCommitInterval > 0 {
		return s.cfg.GroupCommitInterval
	}
	return 2 * time.Millisecond
}

// persistThenEmit releases an output's network effects, first persisting its
// durability records according to the configured mode. This is the simulated
// counterpart of the runtime's append + WaitDurable before transmission:
// messages never precede their records onto the wire.
func (s *Sim) persistThenEmit(sn *simNode, out core.Output) {
	if s.cfg.Durability == DurabilityNone || len(out.Records) == 0 {
		s.emitOutputs(sn, out)
		return
	}
	data := wal.EncodeRecords(nil, out.Records)
	switch s.cfg.Durability {
	case DurabilitySerialFsync:
		// A dedicated write+fsync per output, serialized on the one device.
		appendedAt := s.now
		doneAt := s.diskReserve(sn, len(data))
		ep := sn.epoch
		s.schedule(doneAt, func() {
			if sn.epoch != ep {
				return // crashed mid-fsync: neither durable nor sent
			}
			sn.durable = append(sn.durable, data...)
			s.emitWALSpans(sn, out, appendedAt)
			s.emitOutputs(sn, out)
		})
	case DurabilityGroupCommit:
		sn.pendingFlush = append(sn.pendingFlush, data...)
		sn.flushWaiters = append(sn.flushWaiters, flushWaiter{at: s.now, out: out})
		if !sn.flushArmed {
			sn.flushArmed = true
			ep := sn.epoch
			s.schedule(s.now.Add(s.groupCommitInterval()), func() {
				if sn.epoch != ep {
					return
				}
				s.flushGroupCommit(sn)
			})
		}
	}
}

// flushGroupCommit steals the pending batch, charges one shared write+fsync
// for it, and releases every waiting output when the fsync lands.
func (s *Sim) flushGroupCommit(sn *simNode) {
	sn.flushArmed = false
	data := sn.pendingFlush
	waiters := sn.flushWaiters
	sn.pendingFlush = nil
	sn.flushWaiters = nil
	if len(data) == 0 {
		return
	}
	doneAt := s.diskReserve(sn, len(data))
	ep := sn.epoch
	s.schedule(doneAt, func() {
		if sn.epoch != ep {
			return // the un-fsynced batch died with the node
		}
		sn.durable = append(sn.durable, data...)
		for _, w := range waiters {
			s.emitWALSpans(sn, w.out, w.at)
			s.emitOutputs(sn, w.out)
		}
	})
}

// emitWALSpans emits a wal-durable span per reply an output releases: the
// wait from the output's WAL append to the fsync that made it durable (the
// log-before-send delay on the reply path).
func (s *Sim) emitWALSpans(sn *simNode, out core.Output, appendedAt time.Time) {
	if !s.spans {
		return
	}
	for _, cm := range out.ClientMsgs {
		rep, ok := cm.Msg.(*message.Reply)
		if !ok {
			continue
		}
		sn.trace.Trace(obs.Event{
			At: s.now, Type: obs.EvSpan, Stage: obs.StageWALDurable,
			Client: rep.Client, Req: rep.ID, Dur: s.now.Sub(appendedAt),
		})
	}
}

// diskReserve books size bytes of WAL write on the node's single device and
// returns the completion time.
func (s *Sim) diskReserve(sn *simNode, size int) time.Time {
	start := s.now
	if sn.diskBusyUntil.After(start) {
		start = sn.diskBusyUntil
	}
	doneAt := start.Add(s.cfg.Cost.DiskWrite(size))
	sn.diskBusyUntil = doneAt
	return doneAt
}

// crashNode kills a node: everything except the durable WAL image vanishes.
// Scheduled completions of in-flight work are invalidated by the epoch bump.
func (s *Sim) crashNode(id types.NodeID) {
	sn := s.nodes[id]
	if sn.crashed {
		return
	}
	sn.crashed = true
	sn.epoch++
	for q := range sn.queues {
		sn.queues[q] = cpuQueue{}
	}
	for i := range sn.verify {
		sn.verify[i] = time.Time{}
	}
	if sn.reorder != nil {
		sn.reorder = make(map[uint64]cpuTask)
	}
	sn.ingressSeq = 0
	sn.nextApply = 0
	sn.sigSeen = make(map[types.RequestKey]bool)
	sn.closed = make(map[types.NodeID]time.Time)
	sn.timerAt = time.Time{}
	// The un-fsynced group-commit batch is exactly what a real power cut
	// loses; the waiting outputs were never transmitted, so losing them
	// together keeps the node consistent.
	sn.pendingFlush = nil
	sn.flushWaiters = nil
	sn.flushArmed = false
	sn.diskBusyUntil = time.Time{}
	// Payloads parked on a busy link are the node's in-memory egress queues;
	// they die with the host. Frames already on the wire (delivery events
	// scheduled) stay in flight. Scheduled link flushes are invalidated by
	// the epoch bump.
	for i := range sn.peerTx {
		sn.peerTx[i].pending = nil
	}
	if sn.trace.Enabled() {
		sn.trace.Trace(obs.Event{At: s.now, Type: obs.EvNodeCrash})
	}
}

// restartNode rebuilds a crashed node from scratch and replays its durable
// WAL image into it, then rejoins it to the cluster.
func (s *Sim) restartNode(id types.NodeID) {
	sn := s.nodes[id]
	if !sn.crashed {
		return
	}
	node := s.newCoreNode(id)
	recs, clean, err := wal.DecodeRecords(sn.durable)
	if err != nil || clean != len(sn.durable) {
		// The simulator wrote these bytes itself; any mismatch is a bug,
		// and failing loudly beats silently diverging state machines.
		panic(fmt.Sprintf("sim: node %d durable log corrupt on restart: clean %d/%d bytes, err=%v",
			id, clean, len(sn.durable), err))
	}
	if _, err := node.Restore(func(fn func(wal.Record) error) error {
		for _, r := range recs {
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		panic(fmt.Sprintf("sim: node %d recovery failed: %v", id, err))
	}
	sn.node = node
	sn.crashed = false
	if sn.trace.Enabled() {
		sn.trace.Trace(obs.Event{At: s.now, Type: obs.EvNodeRestart, Count: len(recs)})
	}
	s.armNodeTimer(sn)
}
