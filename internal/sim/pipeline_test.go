package sim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rbft/internal/message"
	"rbft/internal/obs"
	"rbft/internal/types"
)

// sampleMessages covers every wire message type with non-trivial payloads,
// so the cost-identity check exercises the per-ref and per-VC terms.
func sampleMessages() []message.Message {
	refs := []types.RequestRef{
		{Client: 1, ID: 1}, {Client: 2, ID: 7}, {Client: 1, ID: 2},
	}
	vcs := []message.ViewChange{
		{Instance: 0, NewView: 1, Node: 1},
		{Instance: 0, NewView: 1, Node: 2},
		{Instance: 0, NewView: 1, Node: 3},
	}
	return []message.Message{
		&message.Request{Client: 1, ID: 3, Op: make([]byte, 4096)},
		&message.Propagate{Req: message.Request{Client: 1, ID: 3, Op: make([]byte, 4096)}, Node: 2},
		&message.PrePrepare{Instance: 0, Seq: 5, Batch: refs, Node: 0},
		&message.Prepare{Instance: 1, Seq: 5, Node: 1},
		&message.Commit{Instance: 0, Seq: 5, Node: 2},
		&message.Reply{Client: 1, ID: 3, Node: 0},
		&message.InstanceChange{CPI: 1, Node: 3},
		&message.ViewChange{Instance: 0, NewView: 1, Node: 1},
		&message.NewView{Instance: 0, View: 1, ViewChanges: vcs, Node: 1},
		&message.Checkpoint{Instance: 0, Seq: 128, Node: 0},
		&message.Invalid{Node: 1, Padding: make([]byte, 64)},
		&message.Fetch{Instance: 0, FromSeq: 1, ToSeq: 4, Node: 2},
		&message.FetchResp{Instance: 0, Seq: 2, Batch: refs, Node: 0},
	}
}

// pipelineScenario is the determinism scenario with the pipelined ingress
// charging model enabled on cores verify cores.
func pipelineScenario(seed int64, cores int) Config {
	cfg := determinismScenario(seed)
	cfg.VerifyCores = cores
	return cfg
}

// TestPipelinedSimByteIdenticalAcrossRuns extends the determinism gate to
// the pipelined ingress model: for every configured verify-core count, two
// same-seed runs must produce byte-identical results and JSONL traces. The
// reorder handoff, the earliest-free-core selection and the verify-stage
// scheduling must therefore be fully deterministic.
func TestPipelinedSimByteIdenticalAcrossRuns(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			run := func() ([]byte, []byte) {
				var buf bytes.Buffer
				w := obs.NewJSONLWriter(&buf)
				cfg := pipelineScenario(7, cores)
				cfg.Trace = w
				res := New(cfg).Run(2 * time.Second)
				if err := w.Err(); err != nil {
					t.Fatalf("trace writer: %v", err)
				}
				return serialize(t, res), buf.Bytes()
			}
			resA, traceA := run()
			resB, traceB := run()
			if !bytes.Equal(resA, resB) {
				t.Fatalf("same seed produced different results with %d verify cores:\n run1: %s\n run2: %s",
					cores, resA, resB)
			}
			if !bytes.Equal(traceA, traceB) {
				t.Fatalf("same seed produced different JSONL traces with %d verify cores", cores)
			}
			if len(traceA) == 0 {
				t.Fatal("scenario emitted no trace events")
			}
		})
	}
}

// TestPipelinedSimStillOrders sanity-checks that the pipelined model runs
// the protocol to completion: requests complete and the throttling attack
// still triggers an instance change, for any core count.
func TestPipelinedSimStillOrders(t *testing.T) {
	for _, cores := range []int{1, 3} {
		res := New(pipelineScenario(7, cores)).Run(2 * time.Second)
		if res.Completed == 0 {
			t.Fatalf("pipelined run with %d verify cores completed no requests", cores)
		}
		if len(res.InstanceChanges) == 0 {
			t.Fatalf("pipelined run with %d verify cores triggered no instance change", cores)
		}
	}
}

// TestPipelineChargesSameTotalCPU pins the cost-model identity the two
// charging models rely on: for every message shape, preverifyCost +
// applyCost must equal inCost, so switching models never changes the total
// CPU a message is charged — only where it queues.
func TestPipelineChargesSameTotalCPU(t *testing.T) {
	c := DefaultCostModel()
	c.OrderedPayloadBytes = 32 // exercise the ordered-payload terms too
	for _, msg := range sampleMessages() {
		for _, first := range []bool{false, true} {
			got := c.preverifyCost(msg, first) + c.applyCost(msg)
			want := c.inCost(msg, first)
			if got != want {
				t.Errorf("%s (first=%v): preverify+apply = %v, inCost = %v",
					msg.MsgType(), first, got, want)
			}
		}
	}
}
