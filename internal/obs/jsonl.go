package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"rbft/internal/types"
)

// eventJSON is the JSONL wire form of an Event. Timestamps are UnixNano so
// the simulator's virtual times serialize exactly; numeric fields use
// omitempty, which is lossless because an omitted field decodes back to the
// zero value it encoded from. Field order is fixed by the struct, and
// encoding/json is deterministic over it, so same-seed sim runs produce
// byte-identical trace files.
type eventJSON struct {
	T      int64     `json:"t"`
	Ev     string    `json:"ev"`
	Node   int       `json:"node"`
	Inst   int       `json:"inst,omitempty"`
	Client int       `json:"client,omitempty"`
	Peer   int       `json:"peer,omitempty"`
	Req    uint64    `json:"req,omitempty"`
	Seq    uint64    `json:"seq,omitempty"`
	View   uint64    `json:"view,omitempty"`
	CPI    uint64    `json:"cpi,omitempty"`
	Count  int       `json:"n,omitempty"`
	Reason string    `json:"reason,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Values []float64 `json:"values,omitempty"`
	// Span fields (EvSpan only). Dur is nanoseconds. Appended after the
	// original fields so pre-span traces decode unchanged.
	Stage string `json:"stage,omitempty"`
	Dur   int64  `json:"dur,omitempty"`
	Trace uint64 `json:"trace,omitempty"`
}

func encodeEvent(ev Event) eventJSON {
	return eventJSON{
		T:      ev.At.UnixNano(),
		Ev:     ev.Type.String(),
		Node:   int(ev.Node),
		Inst:   int(ev.Instance),
		Client: int(ev.Client),
		Peer:   int(ev.Peer),
		Req:    uint64(ev.Req),
		Seq:    uint64(ev.Seq),
		View:   uint64(ev.View),
		CPI:    ev.CPI,
		Count:  ev.Count,
		Reason: ev.Reason,
		Value:  ev.Value,
		Values: ev.Values,
		Stage:  stageName(ev.Stage),
		Dur:    int64(ev.Dur),
		Trace:  ev.Trace,
	}
}

// stageName renders a stage for the wire, keeping the zero Stage as the
// empty string so omitempty elides it on non-span events.
func stageName(s Stage) string {
	if s == 0 {
		return ""
	}
	return s.String()
}

func decodeEvent(ej eventJSON) (Event, bool) {
	t, ok := ParseEventType(ej.Ev)
	if !ok {
		return Event{}, false
	}
	e := Event{
		At:       time.Unix(0, ej.T),
		Type:     t,
		Node:     types.NodeID(ej.Node),
		Instance: types.InstanceID(ej.Inst),
		Client:   types.ClientID(ej.Client),
		Peer:     types.NodeID(ej.Peer),
		Req:      types.RequestID(ej.Req),
		Seq:      types.SeqNum(ej.Seq),
		View:     types.View(ej.View),
		CPI:      ej.CPI,
		Count:    ej.Count,
		Reason:   ej.Reason,
		Value:    ej.Value,
		Values:   ej.Values,
		Dur:      time.Duration(ej.Dur),
		Trace:    ej.Trace,
	}
	if ej.Stage != "" {
		// Unknown stage names (future vocabulary) keep the event but leave
		// Stage zero, mirroring how unknown event types skip the line.
		e.Stage, _ = ParseStage(ej.Stage)
	}
	return e, true
}

// JSONLWriter streams events as one JSON object per line. It is safe for
// concurrent use; under the single-threaded simulator the lock is
// uncontended. Encoding errors are sticky and surfaced via Err.
type JSONLWriter struct {
	mu  sync.Mutex
	enc *json.Encoder // guarded by mu
	err error         // guarded by mu
}

// NewJSONLWriter creates a writer emitting to w. The caller owns w's
// lifecycle (flushing and closing).
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Enabled implements Tracer.
func (jw *JSONLWriter) Enabled() bool { return true }

// Trace implements Tracer.
func (jw *JSONLWriter) Trace(ev Event) {
	jw.mu.Lock()
	if jw.err == nil {
		jw.err = jw.enc.Encode(encodeEvent(ev))
	}
	jw.mu.Unlock()
}

// Err returns the first encoding or write error, if any.
func (jw *JSONLWriter) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}
