// Package obs is the observability layer: a typed protocol event trace and
// a metrics registry, both injectable into the pure state machines (core,
// pbft, monitor) and the drivers (sim, runtime, transports).
//
// The package is deliberately dependency-light (it imports only the types
// vocabulary) so every layer can emit into it without import cycles, and it
// is part of the simdeterminism analyzer's scope: nothing here reads the
// wall clock, spawns goroutines, or iterates maps in emission order — the
// sim's JSONL traces must stay byte-identical across same-seed runs.
//
// The default Tracer is Nop, and every emission site guards with
// Enabled(), so an uninstrumented node pays one interface call per
// potential event at most.
package obs

import (
	"encoding/binary"
	"fmt"
	"time"

	"rbft/internal/types"
)

// EventType enumerates the protocol events the trace can carry.
type EventType uint8

// Protocol event kinds. The comment after each name is the JSONL wire name.
const (
	// EvRequestReceived: a client REQUEST passed MAC verification at a node.
	EvRequestReceived EventType = iota + 1 // request-received
	// EvRequestDispatched: the node collected f+1 PROPAGATEs and handed the
	// request to its local replicas.
	EvRequestDispatched // request-dispatched
	// EvPrePrepare: an instance primary proposed a batch.
	EvPrePrepare // pre-prepare
	// EvPrepare: an instance replica reached the prepared state for a batch.
	EvPrepare // prepared
	// EvCommit: an instance replica reached the committed state for a batch.
	EvCommit // committed
	// EvOrdered: an instance delivered a batch to the node (Count refs).
	EvOrdered // ordered
	// EvExecuted: the master-ordered request executed on the application.
	EvExecuted // executed
	// EvMonitorSample: a periodic sample of per-instance throughput (Values).
	EvMonitorSample // monitor-sample
	// EvVerdict: the monitor evaluated a Δ/Λ/Ω test. Reason carries the
	// outcome ("none" for a passing Δ period); Value carries the measured
	// ratio (Δ) or latency/gap in seconds (Λ/Ω); Values carries the
	// per-instance throughput snapshot for Δ-period verdicts.
	EvVerdict // verdict
	// EvInstanceChangeStart: this node broadcast INSTANCE-CHANGE for CPI.
	EvInstanceChangeStart // instance-change-start
	// EvInstanceChangeComplete: the 2f+1 quorum was reached; CPI and View
	// carry the post-change values.
	EvInstanceChangeComplete // instance-change-complete
	// EvNICClose: flood defence closed the NIC toward Peer until a deadline.
	EvNICClose // nic-close
	// EvMsgDrop: the driver or transport dropped a message from Peer.
	EvMsgDrop // msg-drop
	// EvNodeCrash: the node crashed, losing all non-durable state.
	EvNodeCrash // node-crash
	// EvNodeRestart: the node restarted and recovered from its WAL; Count
	// carries the number of replayed records.
	EvNodeRestart // node-restart
	// EvSpan: a request-lifecycle span. Stage names the pipeline stage, Dur
	// its duration; At is the emission time (the span's end under both
	// drivers). Request-scoped spans carry Client/Req (and Trace when the
	// digest is known); instance-scoped spans carry Instance/Seq/View. The
	// order span carries both, joining a request to the batch that ordered
	// it on each instance lane.
	EvSpan // span
	// EvClientEvicted: the bounded client table evicted a client's state
	// (LRU). Client is the evicted client; Count is the owning shard's size
	// after the eviction.
	EvClientEvicted // client-evicted
)

// String returns the stable wire name used in JSONL traces.
func (t EventType) String() string {
	switch t {
	case EvRequestReceived:
		return "request-received"
	case EvRequestDispatched:
		return "request-dispatched"
	case EvPrePrepare:
		return "pre-prepare"
	case EvPrepare:
		return "prepared"
	case EvCommit:
		return "committed"
	case EvOrdered:
		return "ordered"
	case EvExecuted:
		return "executed"
	case EvMonitorSample:
		return "monitor-sample"
	case EvVerdict:
		return "verdict"
	case EvInstanceChangeStart:
		return "instance-change-start"
	case EvInstanceChangeComplete:
		return "instance-change-complete"
	case EvNICClose:
		return "nic-close"
	case EvMsgDrop:
		return "msg-drop"
	case EvNodeCrash:
		return "node-crash"
	case EvNodeRestart:
		return "node-restart"
	case EvSpan:
		return "span"
	case EvClientEvicted:
		return "client-evicted"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// ParseEventType maps a wire name back to its EventType.
func ParseEventType(s string) (EventType, bool) {
	for t := EvRequestReceived; t <= EvClientEvicted; t++ {
		if t.String() == s {
			return t, true
		}
	}
	return 0, false
}

// Stage enumerates the request-lifecycle pipeline stages a span can cover.
// The comment after each name is the JSONL wire name.
type Stage uint8

// Pipeline stages, in rough lifecycle order. Ingress through preverify and
// wal-durable through reply are driver-owned (the simulator emits them from
// virtual time, the runtime from the wall clock); propose through order are
// emitted by the protocol cores from the virtual/wall `now` they are driven
// with, once per instance lane.
const (
	// StageIngress: frame arrival to the start of preverification (NIC and
	// verifier-queue wait).
	StageIngress Stage = iota + 1 // ingress
	// StagePreverify: MAC/digest verification of a client request.
	StagePreverify // preverify
	// StagePropose: a primary's batching wait — first enqueue of the batch's
	// requests to PRE-PREPARE emission (includes any throttling delay).
	StagePropose // propose
	// StagePrepareQuorum: PRE-PREPARE acceptance to the prepared state.
	StagePrepareQuorum // prepare-quorum
	// StageCommitQuorum: prepared to committed (delivery-ready).
	StageCommitQuorum // commit-quorum
	// StageOrder: request dispatch to delivery on one instance lane; carries
	// Client/Req and Instance/Seq, joining a request to its ordering batch.
	StageOrder // order
	// StageWALDurable: execution output to its WAL records being fsynced
	// (log-before-send wait on the reply path).
	StageWALDurable // wal-durable
	// StageExecute: application execution of one request.
	StageExecute // execute
	// StageEgress: reply enqueue to its frame leaving the node.
	StageEgress // egress
	// StageReply: reply transit from node NIC to client (simulator only; a
	// node cannot observe its reply's arrival in a real deployment).
	StageReply // reply
)

// String returns the stable wire name used in JSONL traces.
func (s Stage) String() string {
	switch s {
	case StageIngress:
		return "ingress"
	case StagePreverify:
		return "preverify"
	case StagePropose:
		return "propose"
	case StagePrepareQuorum:
		return "prepare-quorum"
	case StageCommitQuorum:
		return "commit-quorum"
	case StageOrder:
		return "order"
	case StageWALDurable:
		return "wal-durable"
	case StageExecute:
		return "execute"
	case StageEgress:
		return "egress"
	case StageReply:
		return "reply"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// ParseStage maps a wire name back to its Stage.
func ParseStage(s string) (Stage, bool) {
	for st := StageIngress; st <= StageReply; st++ {
		if st.String() == s {
			return st, true
		}
	}
	return 0, false
}

// PerInstance reports whether the stage is scoped to one protocol instance
// lane (and its spans therefore carry a meaningful Instance field).
func (s Stage) PerInstance() bool {
	switch s {
	case StagePropose, StagePrepareQuorum, StageCommitQuorum, StageOrder:
		return true
	}
	return false
}

// Stages returns every defined stage, in lifecycle order.
func Stages() []Stage {
	out := make([]Stage, 0, int(StageReply))
	for st := StageIngress; st <= StageReply; st++ {
		out = append(out, st)
	}
	return out
}

// TraceID derives the request trace identifier from its digest: the first
// eight bytes, big-endian. Spans emitted below the layer that knows the
// digest (e.g. the reply path, which only sees client and request id) leave
// it zero and join on (Client, Req) instead.
func TraceID(d types.Digest) uint64 {
	return binary.BigEndian.Uint64(d[:8])
}

// Event is one traced protocol event. Not every field is meaningful for
// every type; docs/OBSERVABILITY.md tabulates the per-type field usage.
// Emitters fill the fields relevant to the event; Node is normally stamped
// by the WithNode wrapper the driver installs.
type Event struct {
	// At is the event time: virtual time under the simulator, wall time
	// under the real-time runtime.
	At   time.Time
	Type EventType

	Node     types.NodeID
	Instance types.InstanceID
	Client   types.ClientID
	// Peer is the remote node for EvNICClose and EvMsgDrop.
	Peer types.NodeID
	Req  types.RequestID
	Seq  types.SeqNum
	View types.View
	CPI  uint64
	// Count carries a cardinality: batch size for EvPrePrepare/EvOrdered.
	Count int
	// Reason is a monitor.Reason or instance-change reason wire string.
	Reason string
	// Value is the measured quantity of a verdict (ratio, or seconds).
	Value float64
	// Values is a per-instance series (throughput snapshot). Emitters must
	// pass a private copy; sinks may retain it.
	Values []float64
	// Stage and Dur carry the pipeline stage and span duration of an EvSpan.
	Stage Stage
	Dur   time.Duration
	// Trace is the request trace ID (TraceID of the request digest), set on
	// spans emitted by layers that know the digest; zero otherwise.
	Trace uint64
}

// Tracer consumes protocol events. Implementations must be safe for
// concurrent use when driven by the real-time runtime; the simulator is
// single-threaded. Trace must not mutate the event's Values slice.
type Tracer interface {
	// Enabled reports whether events will be consumed; emitters use it to
	// skip event construction entirely on the no-op path.
	Enabled() bool
	Trace(Event)
}

// Nop is the default tracer: disabled, zero cost.
type Nop struct{}

// Enabled implements Tracer.
func (Nop) Enabled() bool { return false }

// Trace implements Tracer.
func (Nop) Trace(Event) {}

// OrNop returns t, or Nop if t is nil, so holders never nil-check.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop{}
	}
	return t
}

// nodeTracer stamps a fixed node identity onto every event.
type nodeTracer struct {
	t    Tracer
	node types.NodeID
}

// WithNode wraps t so every traced event carries the node identity. A nil
// or disabled t collapses to Nop, keeping the fast path free.
func WithNode(t Tracer, node types.NodeID) Tracer {
	if t == nil || !t.Enabled() {
		return Nop{}
	}
	return nodeTracer{t: t, node: node}
}

func (nt nodeTracer) Enabled() bool { return true }

func (nt nodeTracer) Trace(ev Event) {
	ev.Node = nt.node
	nt.t.Trace(ev)
}

// WantSpans implements SpanSink by delegating to the wrapped tracer.
func (nt nodeTracer) WantSpans() bool { return WantSpans(nt.t) }

// multi fans one event out to several sinks, in fixed order.
type multi []Tracer

// Multi combines tracers into one; nil and disabled entries are elided, and
// degenerate combinations collapse (no sinks → Nop, one sink → itself).
func Multi(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil && t.Enabled() {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return Nop{}
	case 1:
		return live[0]
	}
	return multi(live)
}

func (m multi) Enabled() bool { return true }

func (m multi) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// WantSpans implements SpanSink: a fan-out wants spans if any member does.
func (m multi) WantSpans() bool {
	for _, t := range m {
		if WantSpans(t) {
			return true
		}
	}
	return false
}

// SpanSink is an optional Tracer refinement: a sink that does not consume
// EvSpan events (e.g. an aggregator that only folds protocol events into
// scalar metrics) can return false so emitters skip span construction
// entirely. Tracers that do not implement it are assumed to want spans.
type SpanSink interface {
	// WantSpans reports whether EvSpan events should be delivered.
	WantSpans() bool
}

// WantSpans reports whether t consumes span events: false for nil or
// disabled tracers and for sinks opting out via SpanSink, true otherwise.
// Emitters cache the result alongside their tracer and guard every span
// emission with it, so an untraced or metrics-only run pays nothing for the
// span instrumentation.
func WantSpans(t Tracer) bool {
	if t == nil || !t.Enabled() {
		return false
	}
	if ss, ok := t.(SpanSink); ok {
		return ss.WantSpans()
	}
	return true
}
