package obs

import (
	"io"
	"testing"
	"time"

	"rbft/internal/types"
)

func TestStageRoundTrip(t *testing.T) {
	for _, st := range Stages() {
		got, ok := ParseStage(st.String())
		if !ok || got != st {
			t.Fatalf("stage %d (%s) did not round-trip: got %d ok=%v", st, st, got, ok)
		}
	}
	if _, ok := ParseStage("no-such-stage"); ok {
		t.Fatal("ParseStage accepted an unknown stage name")
	}
	if s := Stage(0).String(); s != "stage(0)" {
		t.Fatalf("zero stage string = %q", s)
	}
}

func TestTraceID(t *testing.T) {
	var d types.Digest
	d[0] = 0x01
	d[7] = 0xff
	if id := TraceID(d); id != 0x01000000000000ff {
		t.Fatalf("TraceID = %#x", id)
	}
}

func TestMergeTracesStable(t *testing.T) {
	a := []Event{
		{At: at(1), Type: EvExecuted, Node: 0},
		{At: at(3), Type: EvExecuted, Node: 0},
	}
	b := []Event{
		{At: at(1), Type: EvExecuted, Node: 1},
		{At: at(2), Type: EvExecuted, Node: 1},
	}
	m := MergeTraces(a, b)
	if len(m) != 4 {
		t.Fatalf("merged %d events, want 4", len(m))
	}
	wantNodes := []types.NodeID{0, 1, 1, 0} // equal stamps keep input order: a before b
	for i, ev := range m {
		if ev.Node != wantNodes[i] {
			t.Fatalf("merge order at %d: node %d, want %d", i, ev.Node, wantNodes[i])
		}
	}
}

// span is a test shorthand for one lifecycle span event.
func span(ms int, node types.NodeID, st Stage, dur time.Duration, ev Event) Event {
	ev.At, ev.Node, ev.Type, ev.Stage, ev.Dur = at(ms), node, EvSpan, st, dur
	return ev
}

// criticalPathTrace builds a 4-node trace with one completed request whose
// lifecycle is fully spanned. Node 2's reply completes the f+1=2 quorum at
// 21ms, so node 2 is the critical replica.
func criticalPathTrace() []Event {
	req := Event{Client: 1, Req: 1}
	batch := Event{Instance: types.MasterInstance, Seq: 5}
	events := []Event{
		{At: at(0), Type: EvRequestReceived, Node: 0, Client: 1, Req: 1},
		{At: at(0), Type: EvRequestReceived, Node: 1, Client: 1, Req: 1},
		{At: at(0), Type: EvRequestReceived, Node: 2, Client: 1, Req: 1},
		{At: at(0), Type: EvRequestReceived, Node: 3, Client: 1, Req: 1},
		// Node 2's lane, in lifecycle order.
		span(1, 2, StageIngress, 1*time.Millisecond, req),
		span(2, 2, StagePreverify, 1*time.Millisecond, req),
		span(4, 0, StagePropose, 2*time.Millisecond, batch), // primary's batching wait
		span(8, 2, StagePrepareQuorum, 3*time.Millisecond, batch),
		span(14, 2, StageCommitQuorum, 6*time.Millisecond, batch),
		func() Event {
			ev := span(14, 2, StageOrder, 2*time.Millisecond, req)
			ev.Instance, ev.Seq, ev.Trace = types.MasterInstance, 5, 42
			return ev
		}(),
		span(15, 2, StageExecute, 1*time.Millisecond, req),
		span(17, 2, StageWALDurable, 2*time.Millisecond, req),
		span(18, 2, StageEgress, 1*time.Millisecond, req),
		// Replies: node 0 at 20ms, node 2 at 21ms (completes the quorum),
		// node 1 late at 22ms.
		span(20, 0, StageReply, 1*time.Millisecond, req),
		span(21, 2, StageReply, 1*time.Millisecond, req),
		span(22, 1, StageReply, 1*time.Millisecond, req),
	}
	return events
}

func TestCriticalPaths(t *testing.T) {
	rep := CriticalPaths(criticalPathTrace(), 3)
	if rep.Requests != 1 || rep.Nodes != 4 || rep.F != 1 {
		t.Fatalf("requests=%d nodes=%d f=%d, want 1/4/1", rep.Requests, rep.Nodes, rep.F)
	}
	if len(rep.Slowest) != 1 {
		t.Fatalf("slowest has %d paths, want 1", len(rep.Slowest))
	}
	p := rep.Slowest[0]
	if p.Node != 2 {
		t.Fatalf("critical node = %d, want 2 (second distinct reply)", p.Node)
	}
	if p.Latency != 21*time.Millisecond {
		t.Fatalf("latency = %s, want 21ms", p.Latency)
	}
	if p.Trace != 42 {
		t.Fatalf("trace id = %d, want 42 (joined from the order span)", p.Trace)
	}
	var sum time.Duration
	seen := map[string]time.Duration{}
	for _, s := range p.Segments {
		sum += s.Dur
		seen[s.Stage] = s.Dur
	}
	if sum != p.Latency {
		t.Fatalf("segments sum to %s, want exactly the latency %s", sum, p.Latency)
	}
	for stage, want := range map[string]time.Duration{
		"ingress": 1 * time.Millisecond, "preverify": 1 * time.Millisecond,
		"propose": 2 * time.Millisecond, "prepare-quorum": 3 * time.Millisecond,
		"commit-quorum": 6 * time.Millisecond, "execute": 1 * time.Millisecond,
		"wal-durable": 2 * time.Millisecond, "egress": 1 * time.Millisecond,
		"reply": 1 * time.Millisecond, UnattributedStage: 3 * time.Millisecond,
	} {
		if seen[stage] != want {
			t.Fatalf("segment %s = %s, want %s (all: %v)", stage, seen[stage], want, p.Segments)
		}
	}
	if p.Dominant != "commit-quorum" {
		t.Fatalf("dominant = %q, want commit-quorum", p.Dominant)
	}
	if rep.Latency.Stage != EndToEndStage || rep.Latency.P50 != 21*time.Millisecond {
		t.Fatalf("end-to-end stats = %+v", rep.Latency)
	}
}

func TestCriticalPathsExecFallback(t *testing.T) {
	// Runtime-style trace: no reply spans, completion falls back to the
	// f+1-th distinct execution event.
	events := []Event{
		{At: at(0), Type: EvRequestReceived, Node: 0, Client: 1, Req: 1},
		{At: at(0), Type: EvRequestReceived, Node: 1, Client: 1, Req: 1},
		{At: at(0), Type: EvRequestReceived, Node: 2, Client: 1, Req: 1},
		{At: at(0), Type: EvRequestReceived, Node: 3, Client: 1, Req: 1},
		{At: at(10), Type: EvExecuted, Node: 1, Client: 1, Req: 1},
		{At: at(12), Type: EvExecuted, Node: 3, Client: 1, Req: 1},
		{At: at(15), Type: EvExecuted, Node: 0, Client: 1, Req: 1},
	}
	rep := CriticalPaths(events, 1)
	if rep.Requests != 1 {
		t.Fatalf("requests = %d, want 1", rep.Requests)
	}
	p := rep.Slowest[0]
	if p.Node != 3 || p.Latency != 12*time.Millisecond {
		t.Fatalf("critical node=%d latency=%s, want node 3 at 12ms", p.Node, p.Latency)
	}
	// Nothing is spanned, so the whole budget is unattributed.
	if p.Dominant != UnattributedStage {
		t.Fatalf("dominant = %q, want %s", p.Dominant, UnattributedStage)
	}
}

func TestAttributeNamesExcessStage(t *testing.T) {
	batch := func(inst types.InstanceID) Event { return Event{Instance: inst, Seq: 1} }
	var events []Event
	for i := 0; i < 3; i++ {
		// The master's prepare quorum is 5ms; backups' 1ms.
		events = append(events,
			span(i, 0, StagePrepareQuorum, 5*time.Millisecond, batch(0)),
			span(i, 0, StagePrepareQuorum, 1*time.Millisecond, batch(1)),
			span(i, 0, StagePrepareQuorum, 1*time.Millisecond, batch(2)),
			span(i, 0, StageCommitQuorum, 1*time.Millisecond, batch(0)),
			span(i, 0, StageCommitQuorum, 1*time.Millisecond, batch(1)),
			span(i, 0, StageCommitQuorum, 1*time.Millisecond, batch(2)),
		)
	}
	rep := Attribute(events, -1)
	if rep.Suspect != types.MasterInstance {
		t.Fatalf("suspect defaulted to %d, want master", rep.Suspect)
	}
	if len(rep.Instances) != 3 {
		t.Fatalf("profiled %d instances, want 3", len(rep.Instances))
	}
	if rep.Dominant != "prepare-quorum" {
		t.Fatalf("dominant = %q, want prepare-quorum", rep.Dominant)
	}
	var prep *StageDiff
	for i := range rep.Diffs {
		if rep.Diffs[i].Stage == "prepare-quorum" {
			prep = &rep.Diffs[i]
		}
	}
	if prep == nil {
		t.Fatalf("no prepare-quorum diff in %+v", rep.Diffs)
	}
	if prep.Suspect != 5*time.Millisecond || prep.Healthy != 1*time.Millisecond || prep.Excess != 4*time.Millisecond {
		t.Fatalf("prepare-quorum diff = %+v", prep)
	}
}

func TestAttributeSymmetricSlowdownCancels(t *testing.T) {
	// A slowdown hitting every lane equally (e.g. a slow disk stretching all
	// quorum waits) must not be blamed on the suspect lane: the redundant
	// instances are each other's baseline.
	batch := func(inst types.InstanceID) Event { return Event{Instance: inst, Seq: 1} }
	var events []Event
	for inst := types.InstanceID(0); inst < 3; inst++ {
		events = append(events, span(int(inst), 0, StagePrepareQuorum, 5*time.Millisecond, batch(inst)))
	}
	rep := Attribute(events, 0)
	if rep.Dominant != "" {
		t.Fatalf("dominant = %q, want none for a symmetric slowdown", rep.Dominant)
	}
}

// BenchmarkSpanRecord measures the cost of one span record in the states a
// production emitter sees: spans disabled (the emitter's WantSpans gate is
// false — the cost every request pays when tracing is off), recording into
// the in-memory flight recorder, and encoding to a JSONL sink.
func BenchmarkSpanRecord(b *testing.B) {
	ev := Event{
		At: at(1), Type: EvSpan, Stage: StagePrepareQuorum,
		Instance: 0, Seq: 9, View: 1, Count: 4, Dur: 3 * time.Millisecond,
	}
	b.Run("disabled", func(b *testing.B) {
		tr := OrNop(nil)
		on := WantSpans(tr)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if on {
				tr.Trace(ev)
			}
		}
	})
	b.Run("recorder", func(b *testing.B) {
		fr := NewFlightRecorder(DefaultRecorderSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fr.Trace(ev)
		}
	})
	b.Run("jsonl", func(b *testing.B) {
		jw := NewJSONLWriter(io.Discard)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			jw.Trace(ev)
		}
	})
}
