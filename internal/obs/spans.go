package obs

import (
	"math"
	"sort"
	"time"

	"rbft/internal/types"
)

// This file reconstructs request-lifecycle critical paths from span traces.
// Spans are flat events (see EvSpan); the joins that turn them back into a
// per-request story are:
//
//   - request-scoped spans (ingress, preverify, execute, wal-durable,
//     egress, reply) join on (Client, Req) and Node;
//   - the order span carries both (Client, Req) and (Instance, Seq), tying
//     a request to the batch that ordered it on each instance lane;
//   - batch-scoped quorum spans (propose, prepare-quorum, commit-quorum)
//     join on (Instance, Seq) — propose on the primary's node, the quorum
//     waits on every node's lane.
//
// Everything here is deterministic for a fixed input: maps are only used
// for aggregation and every output is sorted before it is returned.

// MergeTraces merges per-node JSONL traces into one stream ordered by
// timestamp. The sort is stable, so events with equal timestamps keep their
// input order (trace argument order, then line order) and merging a fixed
// set of traces is deterministic.
func MergeTraces(traces ...[]Event) []Event {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make([]Event, 0, total)
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// UnattributedStage names the critical-path remainder: end-to-end time not
// covered by any measured span (network transit, propagate wait, queueing
// the instrumentation cannot see). It is reported explicitly so a request's
// segments always sum to its end-to-end latency exactly.
const UnattributedStage = "unattributed"

// EndToEndStage names the whole-request latency row in stage tables.
const EndToEndStage = "end-to-end"

// Segment is one attributed slice of a request's end-to-end latency.
type Segment struct {
	Stage string
	Dur   time.Duration
}

// RequestPath is one request's reconstructed critical path.
type RequestPath struct {
	Client types.ClientID
	Req    types.RequestID
	// Trace is the request's trace ID when any span carried it.
	Trace uint64
	// Node is the critical replica: the node whose reply (or execution,
	// when the trace has no reply spans) completed the client's f+1 quorum.
	// Per-node stages are taken from its lane.
	Node  types.NodeID
	Start time.Time
	End   time.Time
	// Latency is End - Start; Segments always sum to it exactly, the
	// UnattributedStage remainder absorbing whatever the spans do not cover.
	Latency  time.Duration
	Segments []Segment
	// Dominant is the largest segment's stage (ties break toward the
	// earlier lifecycle stage).
	Dominant string
}

// StageStats summarizes one stage's duration distribution.
type StageStats struct {
	Stage string
	Count int
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// CriticalPathReport is the output of CriticalPaths.
type CriticalPathReport struct {
	// Requests is the number of completed requests analyzed (requests whose
	// trace shows a receive and an f+1 completion quorum).
	Requests int
	// Nodes is the number of distinct nodes observed in the trace; F is the
	// fault tolerance inferred from it ((Nodes-1)/3), which fixes the f+1
	// completion quorum.
	Nodes int
	F     int
	// Latency is the end-to-end distribution over completed requests.
	Latency StageStats
	// Stages holds the per-stage distribution of critical-path segments, in
	// lifecycle order with the unattributed remainder last. A stage's Count
	// is the number of requests whose path observed it.
	Stages []StageStats
	// Slowest is the top-k completed requests by latency, descending.
	Slowest []RequestPath
}

// pathStages is the lifecycle order in which a request's budget is
// attributed to segments (see CriticalPaths).
var pathStages = []Stage{
	StageIngress, StagePreverify,
	StagePropose, StagePrepareQuorum, StageCommitQuorum,
	StageExecute, StageWALDurable, StageEgress, StageReply,
}

// batchKey identifies one ordering batch on one instance lane.
type batchKey struct {
	inst types.InstanceID
	seq  types.SeqNum
}

// nodeBatchKey identifies one node's view of one ordering batch.
type nodeBatchKey struct {
	node types.NodeID
	inst types.InstanceID
	seq  types.SeqNum
}

// nodePathObs is what one node observed about one request. Durations are
// first-wins so client retransmissions do not double-attribute.
type nodePathObs struct {
	received   time.Time
	haveRecv   bool
	executedAt time.Time
	haveExec   bool
	replyAt    time.Time
	haveReply  bool

	stageDur  [StageReply + 1]time.Duration
	stageSeen [StageReply + 1]bool

	orderSeq  types.SeqNum
	haveOrder bool
}

func (o *nodePathObs) observe(st Stage, d time.Duration) {
	if !o.stageSeen[st] {
		o.stageSeen[st] = true
		o.stageDur[st] = d
	}
}

// reqPathObs aggregates one request across nodes.
type reqPathObs struct {
	trace     uint64
	firstRecv time.Time
	haveRecv  bool
	nodes     map[types.NodeID]*nodePathObs
}

func (r *reqPathObs) node(n types.NodeID) *nodePathObs {
	o := r.nodes[n]
	if o == nil {
		o = &nodePathObs{}
		r.nodes[n] = o
	}
	return o
}

// CriticalPaths reconstructs every completed request's cross-node critical
// path from a (typically merged, see MergeTraces) trace.
//
// A request completes when f+1 distinct nodes have replied (the client's
// acceptance quorum), f inferred from the number of distinct nodes in the
// trace; traces without reply spans (real-runtime traces, where reply
// transit is unobservable) fall back to f+1 distinct executions. The
// critical replica is the node completing that quorum, and the path is
// decomposed on its lane: the end-to-end budget is attributed to observed
// stages in lifecycle order — ingress, preverify, propose (primary's
// batching wait), prepare-quorum, commit-quorum, execute, wal-durable,
// egress, reply — each segment clamped to the budget remaining, with the
// explicit unattributed remainder last. Segments therefore always sum to
// the end-to-end latency exactly.
func CriticalPaths(events []Event, topK int) CriticalPathReport {
	reqs := make(map[types.RequestKey]*reqPathObs)
	proposeDur := make(map[batchKey]time.Duration)
	quorumDur := make(map[nodeBatchKey][2]time.Duration) // [prepare, commit]
	quorumSeen := make(map[nodeBatchKey][2]bool)
	nodesSeen := make(map[types.NodeID]bool)

	req := func(c types.ClientID, id types.RequestID) *reqPathObs {
		k := types.RequestKey{Client: c, ID: id}
		r := reqs[k]
		if r == nil {
			r = &reqPathObs{nodes: make(map[types.NodeID]*nodePathObs)}
			reqs[k] = r
		}
		return r
	}

	for _, ev := range events {
		nodesSeen[ev.Node] = true
		switch ev.Type {
		case EvRequestReceived:
			r := req(ev.Client, ev.Req)
			if !r.haveRecv || ev.At.Before(r.firstRecv) {
				r.firstRecv, r.haveRecv = ev.At, true
			}
			if o := r.node(ev.Node); !o.haveRecv {
				o.received, o.haveRecv = ev.At, true
			}
		case EvExecuted:
			if o := req(ev.Client, ev.Req).node(ev.Node); !o.haveExec {
				o.executedAt, o.haveExec = ev.At, true
			}
		case EvSpan:
			switch ev.Stage {
			case StagePropose:
				k := batchKey{inst: ev.Instance, seq: ev.Seq}
				if _, ok := proposeDur[k]; !ok {
					proposeDur[k] = ev.Dur
				}
			case StagePrepareQuorum, StageCommitQuorum:
				k := nodeBatchKey{node: ev.Node, inst: ev.Instance, seq: ev.Seq}
				i := 0
				if ev.Stage == StageCommitQuorum {
					i = 1
				}
				if seen := quorumSeen[k]; !seen[i] {
					seen[i] = true
					quorumSeen[k] = seen
					d := quorumDur[k]
					d[i] = ev.Dur
					quorumDur[k] = d
				}
			case StageOrder:
				r := req(ev.Client, ev.Req)
				if ev.Trace != 0 {
					r.trace = ev.Trace
				}
				if ev.Instance == types.MasterInstance {
					o := r.node(ev.Node)
					if !o.haveOrder {
						o.haveOrder, o.orderSeq = true, ev.Seq
						o.observe(StageOrder, ev.Dur)
					}
				}
			case StageIngress, StagePreverify, StageExecute, StageWALDurable, StageEgress, StageReply:
				r := req(ev.Client, ev.Req)
				if ev.Trace != 0 {
					r.trace = ev.Trace
				}
				o := r.node(ev.Node)
				o.observe(ev.Stage, ev.Dur)
				if ev.Stage == StageReply && !o.haveReply {
					o.replyAt, o.haveReply = ev.At, true
				}
			}
		}
	}

	rep := CriticalPathReport{Nodes: len(nodesSeen)}
	if rep.Nodes > 0 {
		rep.F = (rep.Nodes - 1) / 3
	}
	quorum := types.WeakQuorum(rep.F)

	keys := make([]types.RequestKey, 0, len(reqs))
	for k := range reqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Client != keys[j].Client {
			return keys[i].Client < keys[j].Client
		}
		return keys[i].ID < keys[j].ID
	})

	stageDurs := make(map[string][]time.Duration)
	var latencies []time.Duration
	var paths []RequestPath

	for _, k := range keys {
		r := reqs[k]
		if !r.haveRecv {
			continue
		}
		node, end, ok := completion(r, quorum)
		if !ok {
			continue
		}
		o := r.nodes[node]
		latency := end.Sub(r.firstRecv)
		if latency < 0 {
			continue
		}

		p := RequestPath{
			Client:  k.Client,
			Req:     k.ID,
			Trace:   r.trace,
			Node:    node,
			Start:   r.firstRecv,
			End:     end,
			Latency: latency,
		}
		remaining := latency
		add := func(stage Stage, d time.Duration, have bool) {
			if !have {
				return
			}
			if d < 0 {
				d = 0
			}
			if d > remaining {
				d = remaining
			}
			p.Segments = append(p.Segments, Segment{Stage: stage.String(), Dur: d})
			remaining -= d
		}
		for _, st := range pathStages {
			switch st {
			case StagePropose:
				if o.haveOrder {
					d, have := proposeDur[batchKey{inst: types.MasterInstance, seq: o.orderSeq}]
					add(st, d, have)
				}
			case StagePrepareQuorum, StageCommitQuorum:
				if o.haveOrder {
					i := 0
					if st == StageCommitQuorum {
						i = 1
					}
					k := nodeBatchKey{node: node, inst: types.MasterInstance, seq: o.orderSeq}
					add(st, quorumDur[k][i], quorumSeen[k][i])
				}
			default:
				add(st, o.stageDur[st], o.stageSeen[st])
			}
		}
		p.Segments = append(p.Segments, Segment{Stage: UnattributedStage, Dur: remaining})
		p.Dominant = dominantSegment(p.Segments)

		for _, s := range p.Segments {
			stageDurs[s.Stage] = append(stageDurs[s.Stage], s.Dur)
		}
		latencies = append(latencies, latency)
		paths = append(paths, p)
	}

	rep.Requests = len(paths)
	rep.Latency = stageStats(EndToEndStage, latencies)
	for _, st := range pathStages {
		if durs := stageDurs[st.String()]; len(durs) > 0 {
			rep.Stages = append(rep.Stages, stageStats(st.String(), durs))
		}
	}
	if durs := stageDurs[UnattributedStage]; len(durs) > 0 {
		rep.Stages = append(rep.Stages, stageStats(UnattributedStage, durs))
	}

	if topK > 0 {
		sort.SliceStable(paths, func(i, j int) bool { return paths[i].Latency > paths[j].Latency })
		if len(paths) > topK {
			paths = paths[:topK]
		}
		rep.Slowest = paths
	}
	return rep
}

// completion finds the node and time completing the request's f+1 quorum:
// the quorum-th distinct node to reply (or, without reply spans, to
// execute). Returns ok=false for incomplete requests.
func completion(r *reqPathObs, quorum int) (types.NodeID, time.Time, bool) {
	type arrival struct {
		node types.NodeID
		at   time.Time
	}
	var replies, execs []arrival
	for n, o := range r.nodes {
		if o.haveReply {
			replies = append(replies, arrival{node: n, at: o.replyAt})
		}
		if o.haveExec {
			execs = append(execs, arrival{node: n, at: o.executedAt})
		}
	}
	pick := func(as []arrival) (types.NodeID, time.Time, bool) {
		if len(as) < quorum {
			return 0, time.Time{}, false
		}
		sort.Slice(as, func(i, j int) bool {
			if !as[i].at.Equal(as[j].at) {
				return as[i].at.Before(as[j].at)
			}
			return as[i].node < as[j].node
		})
		a := as[quorum-1]
		return a.node, a.at, true
	}
	if n, at, ok := pick(replies); ok {
		return n, at, true
	}
	return pick(execs)
}

func dominantSegment(segs []Segment) string {
	best := ""
	var bestDur time.Duration = -1
	for _, s := range segs {
		if s.Dur > bestDur {
			best, bestDur = s.Stage, s.Dur
		}
	}
	return best
}

func stageStats(name string, durs []time.Duration) StageStats {
	return StageStats{
		Stage: name,
		Count: len(durs),
		P50:   percentileDur(durs, 0.50),
		P95:   percentileDur(durs, 0.95),
		P99:   percentileDur(durs, 0.99),
	}
}

// percentileDur is the nearest-rank percentile of durs (q in (0,1]).
func percentileDur(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// StageDiff compares one instance-scoped stage between the suspect instance
// and the healthy lanes.
type StageDiff struct {
	Stage string
	// Suspect is the suspect instance's p50; Healthy the median of the
	// other instances' p50s for the same stage.
	Suspect time.Duration
	Healthy time.Duration
	// Excess is Suspect - Healthy (negative when the suspect is faster).
	Excess time.Duration
}

// InstanceProfile is one instance lane's stage-duration distribution.
type InstanceProfile struct {
	Instance types.InstanceID
	Stages   []StageStats
}

// AttributionReport explains where a suspect instance's latency goes,
// backing a Δ/Λ/Ω verdict with a stage-level story.
type AttributionReport struct {
	Suspect types.InstanceID
	// Instances profiles every lane observed in the trace over the
	// instance-scoped stages (propose, prepare-quorum, commit-quorum,
	// order).
	Instances []InstanceProfile
	// Diffs compares the suspect lane against the healthy lanes per
	// instance-scoped stage.
	Diffs []StageDiff
	// Segments is the cluster-wide critical-path segment distribution (see
	// CriticalPathReport.Stages).
	Segments []StageStats
	// Dominant names the stage explaining the most latency. Instance-scoped
	// stages are judged by the suspect's excess over the healthy lanes —
	// RBFT's redundant instances are each other's baseline, so a slowdown
	// hitting every lane symmetrically (a slow disk, slow crypto) cancels
	// out — while request-scoped stages are judged by their absolute p50
	// contribution. The unattributed remainder is reported but never named
	// dominant.
	Dominant string
	// Changes is the instance-change forensics for the same trace (see
	// ExplainInstanceChanges): the verdicts the stage profile explains.
	Changes []ICExplanation
}

// instanceStages are the per-lane stages profiled by Attribute.
var instanceStages = []Stage{StagePropose, StagePrepareQuorum, StageCommitQuorum, StageOrder}

// Attribute builds the stage-level explanation of a suspect instance's
// latency from a (typically merged) trace. The suspect defaults to the
// master instance — the lane whose degradation triggers instance changes.
func Attribute(events []Event, suspect types.InstanceID) AttributionReport {
	if suspect < 0 {
		suspect = types.MasterInstance
	}
	perInst := make(map[types.InstanceID]map[Stage][]time.Duration)
	for _, ev := range events {
		if ev.Type != EvSpan || !ev.Stage.PerInstance() {
			continue
		}
		m := perInst[ev.Instance]
		if m == nil {
			m = make(map[Stage][]time.Duration)
			perInst[ev.Instance] = m
		}
		m[ev.Stage] = append(m[ev.Stage], ev.Dur)
	}

	rep := AttributionReport{Suspect: suspect}
	insts := make([]types.InstanceID, 0, len(perInst))
	for i := range perInst {
		insts = append(insts, i)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		p := InstanceProfile{Instance: inst}
		for _, st := range instanceStages {
			if durs := perInst[inst][st]; len(durs) > 0 {
				p.Stages = append(p.Stages, stageStats(st.String(), durs))
			}
		}
		rep.Instances = append(rep.Instances, p)
	}

	// Suspect-vs-healthy diff per instance stage.
	for _, st := range instanceStages {
		suspectDurs := perInst[suspect][st]
		var healthyP50s []time.Duration
		for _, inst := range insts {
			if inst == suspect {
				continue
			}
			if durs := perInst[inst][st]; len(durs) > 0 {
				healthyP50s = append(healthyP50s, percentileDur(durs, 0.50))
			}
		}
		if len(suspectDurs) == 0 && len(healthyP50s) == 0 {
			continue
		}
		d := StageDiff{
			Stage:   st.String(),
			Suspect: percentileDur(suspectDurs, 0.50),
			Healthy: percentileDur(healthyP50s, 0.50),
		}
		d.Excess = d.Suspect - d.Healthy
		rep.Diffs = append(rep.Diffs, d)
	}

	cp := CriticalPaths(events, 0)
	rep.Segments = cp.Stages

	// Dominance: instance stages by excess, request stages by p50.
	var bestDur time.Duration = -1
	consider := func(name string, d time.Duration) {
		if d > bestDur {
			rep.Dominant, bestDur = name, d
		}
	}
	for _, d := range rep.Diffs {
		consider(d.Stage, d.Excess)
	}
	for _, s := range rep.Segments {
		if s.Stage == UnattributedStage {
			continue
		}
		if st, ok := ParseStage(s.Stage); ok && st.PerInstance() {
			continue
		}
		consider(s.Stage, s.P50)
	}
	if bestDur <= 0 {
		rep.Dominant = ""
	}

	rep.Changes = ExplainInstanceChanges(events)
	return rep
}
