package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
)

// HTTPHandler serves the observability endpoints:
//
//	GET /metrics       — registry snapshot in Prometheus text format
//	GET /debug/events  — flight-recorder contents as a JSON array
//
// Either argument may be nil, in which case its endpoint reports 404. The
// handler only reads; serving it (goroutines, listeners) is the caller's
// business — cmd/rbft-node starts the listener, keeping this package free
// of concurrency primitives the simdeterminism analyzer forbids.
func HTTPHandler(reg *Registry, fr *FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetricsText(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.NotFound(w, r)
			return
		}
		events := fr.Events()
		wire := make([]eventJSON, len(events))
		for i, ev := range events {
			wire[i] = encodeEvent(ev)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(wire)
	})
	return mux
}

// writeMetricsText renders a snapshot in the Prometheus exposition format.
func writeMetricsText(w http.ResponseWriter, snap []Metric) {
	for _, m := range snap {
		switch m.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value))
		case KindHistogram:
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.Le, 1) {
					le = formatFloat(b.Le)
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, b.Count)
			}
			fmt.Fprintf(w, "%s_sum %s\n", m.Name, formatFloat(m.Sum))
			fmt.Fprintf(w, "%s_count %d\n", m.Name, m.Count)
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
