package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// HTTPHandler serves the observability endpoints:
//
//	GET /metrics       — registry snapshot in Prometheus text format
//	GET /debug/events  — flight-recorder contents as a JSON array
//
// Either argument may be nil, in which case its endpoint reports 404. The
// handler only reads; serving it (goroutines, listeners) is the caller's
// business — cmd/rbft-node starts the listener, keeping this package free
// of concurrency primitives the simdeterminism analyzer forbids.
func HTTPHandler(reg *Registry, fr *FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetricsText(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.NotFound(w, r)
			return
		}
		events := fr.Events()
		wire := make([]eventJSON, len(events))
		for i, ev := range events {
			wire[i] = encodeEvent(ev)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(wire)
	})
	return mux
}

// writeMetricsText renders a snapshot in the Prometheus exposition format.
func writeMetricsText(w http.ResponseWriter, snap []Metric) {
	for _, m := range snap {
		switch m.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value))
		case KindHistogram:
			// A labeled histogram name carries its label set in braces
			// (e.g. rbft_stage_seconds{stage="ingress"}); the _bucket/_sum/
			// _count suffixes belong on the base name, with le joining the
			// existing labels.
			base, labels := splitLabels(m.Name)
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.Le, 1) {
					le = formatFloat(b.Le)
				}
				if labels == "" {
					fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", base, le, b.Count)
				} else {
					fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", base, labels, le, b.Count)
				}
			}
			suffix := ""
			if labels != "" {
				suffix = "{" + labels + "}"
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(m.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, m.Count)
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitLabels splits a metric name of the form base{labels} into its parts;
// an unlabeled name returns labels "".
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}
