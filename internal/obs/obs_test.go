package obs

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"rbft/internal/types"
)

func at(ms int) time.Time { return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond) }

// capture is a test sink recording every event.
type capture struct {
	events []Event
}

func (c *capture) Enabled() bool  { return true }
func (c *capture) Trace(ev Event) { c.events = append(c.events, ev) }
func (c *capture) last() Event    { return c.events[len(c.events)-1] }

func TestEventTypeRoundTrip(t *testing.T) {
	for typ := EvRequestReceived; typ <= EvNodeRestart; typ++ {
		name := typ.String()
		if strings.HasPrefix(name, "event(") {
			t.Fatalf("event type %d has no wire name", typ)
		}
		got, ok := ParseEventType(name)
		if !ok || got != typ {
			t.Fatalf("ParseEventType(%q) = %v, %v; want %v", name, got, ok, typ)
		}
	}
	if _, ok := ParseEventType("no-such-event"); ok {
		t.Fatal("ParseEventType accepted an unknown name")
	}
}

func TestNopAndWrappers(t *testing.T) {
	if (Nop{}).Enabled() {
		t.Fatal("Nop reports enabled")
	}
	if OrNop(nil) != (Nop{}) {
		t.Fatal("OrNop(nil) is not Nop")
	}
	if WithNode(nil, 1) != (Nop{}) || WithNode(Nop{}, 1) != (Nop{}) {
		t.Fatal("WithNode over a dead tracer should collapse to Nop")
	}
	if Multi() != (Nop{}) || Multi(nil, Nop{}) != (Nop{}) {
		t.Fatal("Multi over dead tracers should collapse to Nop")
	}

	var c capture
	tr := WithNode(&c, 3)
	if !tr.Enabled() {
		t.Fatal("WithNode over a live tracer must stay enabled")
	}
	tr.Trace(Event{Type: EvExecuted})
	if c.last().Node != 3 {
		t.Fatalf("WithNode did not stamp the node: %+v", c.last())
	}

	if got := Multi(&c); got != Tracer(&c) {
		t.Fatal("Multi with one live sink should return it unwrapped")
	}
	var c2 capture
	m := Multi(&c, &c2, nil)
	m.Trace(Event{Type: EvOrdered})
	if len(c2.events) != 1 || c.last().Type != EvOrdered {
		t.Fatal("Multi did not fan out to every live sink")
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	fr := NewFlightRecorder(4)
	if !fr.Enabled() {
		t.Fatal("recorder must be enabled")
	}
	for i := 0; i < 6; i++ {
		fr.Trace(Event{Type: EvExecuted, Req: types.RequestID(i)})
	}
	got := fr.Events()
	if len(got) != 4 {
		t.Fatalf("recorder kept %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := types.RequestID(i + 2); ev.Req != want {
			t.Fatalf("event %d has req %d, want %d (oldest-first order broken)", i, ev.Req, want)
		}
	}
	if fr.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", fr.Dropped())
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(7)
	r.Histogram("z", LatencyBuckets).Observe(1)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read zero")
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Inc()
	r.Gauge("c_gauge").Set(-4)
	h := r.Histogram("d_latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, m := range snap {
		names[i] = m.Name
	}
	want := []string{"a_total", "b_total", "c_gauge", "d_latency"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order %v, want %v", names, want)
	}
	hist := snap[3]
	if hist.Count != 3 || hist.Sum != 5.55 {
		t.Fatalf("histogram count=%d sum=%v, want 3, 5.55", hist.Count, hist.Sum)
	}
	// Buckets are cumulative: <=0.1 has 1, <=1 has 2, +Inf has 3.
	counts := []uint64{hist.Buckets[0].Count, hist.Buckets[1].Count, hist.Buckets[2].Count}
	if !reflect.DeepEqual(counts, []uint64{1, 2, 3}) {
		t.Fatalf("cumulative buckets %v, want [1 2 3]", counts)
	}
	// Same instance on repeat lookup.
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Fatal("repeated Counter lookups must return the same instance")
	}
}

func TestLabeledName(t *testing.T) {
	if got := LabeledName("m_total", "type", "PRE-PREPARE"); got != `m_total{type="PRE-PREPARE"}` {
		t.Fatalf("LabeledName = %q", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{At: at(10), Type: EvRequestReceived, Node: 1, Client: 2, Req: 9},
		{At: at(20), Type: EvPrePrepare, Node: 0, Instance: 1, Seq: 3, View: 4, Count: 8},
		{At: at(30), Type: EvVerdict, Node: 2, Reason: "throughput-delta", Value: 0.42, Values: []float64{10, 24}},
		{At: at(40), Type: EvInstanceChangeComplete, Node: 2, CPI: 1, View: 1, Reason: "throughput-delta"},
		{At: at(50), Type: EvNICClose, Node: 0, Peer: 3},
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, ev := range events {
		w.Trace(ev)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		w := NewJSONLWriter(&buf)
		w.Trace(Event{At: at(5), Type: EvOrdered, Node: 1, Instance: 0, Seq: 1, Count: 3})
		w.Trace(Event{At: at(6), Type: EvVerdict, Node: 1, Reason: "none", Value: 1, Values: []float64{3.5, 3.5}})
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical event sequences serialized differently")
	}
}

func TestMetricsTracerDerivesMetrics(t *testing.T) {
	reg := NewRegistry()
	mt := NewMetricsTracer(reg)
	mt.Trace(Event{Type: EvOrdered, Instance: 0, Count: 3})
	mt.Trace(Event{Type: EvOrdered, Instance: 1, Count: 2})
	mt.Trace(Event{Type: EvOrdered, Instance: 0, Count: 1})
	mt.Trace(Event{Type: EvExecuted})
	mt.Trace(Event{Type: EvInstanceChangeStart, CPI: 0})
	mt.Trace(Event{Type: EvInstanceChangeComplete, CPI: 1, Reason: "throughput-delta"})
	mt.Trace(Event{Type: EvNICClose, Peer: 2})
	mt.Trace(Event{Type: EvMsgDrop, Peer: 2})

	check := func(name string, want uint64) {
		t.Helper()
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	check(`rbft_ordered_total{instance="0"}`, 4)
	check(`rbft_ordered_total{instance="1"}`, 2)
	check("rbft_executed_total", 1)
	check("rbft_instance_change_votes_total", 1)
	check(`rbft_instance_changes_total{reason="throughput-delta"}`, 1)
	check("rbft_nic_closures_total", 1)
	check("rbft_messages_dropped_total", 1)
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rbft_executed_total").Add(41)
	reg.Histogram("rbft_batch_size", []float64{1, 2}).Observe(2)
	fr := NewFlightRecorder(8)
	fr.Trace(Event{At: at(1), Type: EvExecuted, Node: 0, Client: 1, Req: 7})

	h := HTTPHandler(reg, fr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"rbft_executed_total 41\n",
		`rbft_batch_size_bucket{le="2"} 1`,
		`rbft_batch_size_bucket{le="+Inf"} 1`,
		"rbft_batch_size_count 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics output missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if !strings.Contains(rec.Body.String(), `"ev": "executed"`) {
		t.Fatalf("/debug/events output missing event: %s", rec.Body.String())
	}
}

func TestExplainInstanceChanges(t *testing.T) {
	events := []Event{
		{At: at(100), Type: EvVerdict, Node: 1, Reason: "none", Value: 1, Values: []float64{50, 50}},
		{At: at(200), Type: EvVerdict, Node: 1, Reason: "throughput-delta", Value: 0.4, Values: []float64{20, 50}},
		{At: at(200), Type: EvInstanceChangeStart, Node: 1, CPI: 0, Reason: "throughput-delta"},
		{At: at(201), Type: EvInstanceChangeStart, Node: 2, CPI: 0, Reason: "throughput-delta"},
		{At: at(202), Type: EvInstanceChangeStart, Node: 0, CPI: 0, Reason: "throughput-delta"},
		{At: at(203), Type: EvInstanceChangeComplete, Node: 1, CPI: 1, View: 1, Reason: "throughput-delta"},
		// A later Λ-triggered change on node 0.
		{At: at(300), Type: EvVerdict, Node: 0, Instance: 0, Client: 4, Req: 11, Reason: "latency-lambda", Value: 2.5},
		{At: at(301), Type: EvInstanceChangeStart, Node: 0, CPI: 1, Reason: "latency-lambda"},
		{At: at(305), Type: EvInstanceChangeComplete, Node: 0, CPI: 2, View: 2, Reason: "latency-lambda"},
	}
	exps := ExplainInstanceChanges(events)
	if len(exps) != 2 {
		t.Fatalf("got %d explanations, want 2", len(exps))
	}
	first := exps[0]
	if first.Node != 1 || first.Reason != "throughput-delta" || first.CPI != 1 {
		t.Fatalf("first explanation wrong: %+v", first)
	}
	if first.Ratio != 0.4 {
		t.Fatalf("first explanation ratio = %v, want 0.4", first.Ratio)
	}
	if len(first.RatioSeries) != 2 || !first.RatioSeries[1].Suspicious || first.RatioSeries[0].Suspicious {
		t.Fatalf("ratio series wrong: %+v", first.RatioSeries)
	}
	if !reflect.DeepEqual(first.Voters, []types.NodeID{1, 2, 0}) {
		t.Fatalf("voters = %v", first.Voters)
	}
	second := exps[1]
	if second.Reason != "latency-lambda" || second.Value != 2.5 || second.Client != 4 {
		t.Fatalf("second explanation wrong: %+v", second)
	}
	if !reflect.DeepEqual(second.Voters, []types.NodeID{0}) {
		t.Fatalf("second voters = %v", second.Voters)
	}
}

func TestTimelineAndSummary(t *testing.T) {
	events := []Event{
		{Type: EvRequestReceived, Node: 0},
		{Type: EvPrePrepare, Node: 0, Instance: 0},
		{Type: EvPrePrepare, Node: 0, Instance: 1},
		{Type: EvOrdered, Node: 1, Instance: 0},
	}
	tl := Timeline(events, 0, 1)
	if len(tl) != 1 || tl[0].Type != EvPrePrepare || tl[0].Instance != 1 {
		t.Fatalf("timeline filter wrong: %+v", tl)
	}
	all := Timeline(events, -1, -1)
	if len(all) != 4 {
		t.Fatalf("unfiltered timeline dropped events: %d", len(all))
	}
	s := Summarize(events)
	if s.Total != 4 || len(s.ByType) != 3 || s.ByType[1].Type != EvPrePrepare || s.ByType[1].Count != 2 {
		t.Fatalf("summary wrong: %+v", s)
	}
}
