package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rbft/internal/types"
)

func TestMetricsEndpointContentTypeAndOrdering(t *testing.T) {
	reg := NewRegistry()
	// Register out of lexicographic order; the snapshot must still render
	// sorted so scrapes diff cleanly.
	reg.Counter("rbft_zz_total").Add(2)
	reg.Counter("rbft_aa_total").Add(1)
	reg.Gauge("rbft_mm_depth").Set(7)
	h := HTTPHandler(reg, nil)

	get := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec
	}
	rec := get()
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	body := rec.Body.String()
	aa := strings.Index(body, "rbft_aa_total")
	mm := strings.Index(body, "rbft_mm_depth")
	zz := strings.Index(body, "rbft_zz_total")
	if aa < 0 || mm < 0 || zz < 0 || !(aa < mm && mm < zz) {
		t.Fatalf("/metrics not in deterministic sorted order:\n%s", body)
	}
	if again := get().Body.String(); again != body {
		t.Fatalf("two scrapes of an unchanged registry differ:\n%s\n--\n%s", body, again)
	}
}

func TestStageHistogramOnMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	mt := NewMetricsTracer(reg)
	mt.Trace(Event{At: at(1), Type: EvSpan, Stage: StagePrepareQuorum, Instance: 0, Dur: 3 * time.Millisecond})
	mt.Trace(Event{At: at(2), Type: EvSpan, Stage: StageIngress, Dur: time.Millisecond})

	rec := httptest.NewRecorder()
	HTTPHandler(reg, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`rbft_stage_seconds_count{instance="0",stage="prepare-quorum"} 1`,
		`rbft_stage_seconds_count{stage="ingress"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestDebugEventsEmptyRecorder(t *testing.T) {
	rec := httptest.NewRecorder()
	HTTPHandler(nil, NewFlightRecorder(8)).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/events content-type = %q", ct)
	}
	var events []json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("/debug/events on an empty recorder is not a JSON array: %v\n%s", err, rec.Body.String())
	}
	if len(events) != 0 {
		t.Fatalf("empty recorder served %d events", len(events))
	}
}

func TestDebugEventsBoundedByCapacity(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Trace(Event{At: at(i), Type: EvExecuted, Req: types.RequestID(100 + i)})
	}
	rec := httptest.NewRecorder()
	HTTPHandler(nil, fr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	var events []struct {
		Req int `json:"req"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("decode /debug/events: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("served %d events, want the recorder capacity 4", len(events))
	}
	for i, ev := range events {
		if want := 106 + i; ev.Req != want {
			t.Fatalf("event %d req=%d, want %d (oldest evicted, order preserved)", i, ev.Req, want)
		}
	}
}

func TestHTTPHandlerNilBackends(t *testing.T) {
	h := HTTPHandler(nil, nil)
	for _, path := range []string{"/metrics", "/debug/events"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 404 {
			t.Fatalf("%s with nil backend: status %d, want 404", path, rec.Code)
		}
	}
}
