package obs

import (
	"strconv"
	"sync"

	"rbft/internal/types"
)

// MetricsTracer derives registry metrics from the event stream, so a
// deployment gets per-instance ordered counts, batch-size distribution,
// instance-change counts by reason, NIC closures and message drops from the
// same instrumentation points that feed the trace sinks.
type MetricsTracer struct {
	reg *Registry

	executed  *Counter
	nicCloses *Counter
	msgDrops  *Counter
	icStarts  *Counter
	batchSize *Histogram

	mu        sync.Mutex
	ordered   map[types.InstanceID]*Counter // guarded by mu
	icReasons map[string]*Counter           // guarded by mu
}

// NewMetricsTracer creates a tracer deriving metrics into reg.
func NewMetricsTracer(reg *Registry) *MetricsTracer {
	return &MetricsTracer{
		reg:       reg,
		executed:  reg.Counter("rbft_executed_total"),
		nicCloses: reg.Counter("rbft_nic_closures_total"),
		msgDrops:  reg.Counter("rbft_messages_dropped_total"),
		icStarts:  reg.Counter("rbft_instance_change_votes_total"),
		batchSize: reg.Histogram("rbft_batch_size", BatchSizeBuckets),
		ordered:   make(map[types.InstanceID]*Counter),
		icReasons: make(map[string]*Counter),
	}
}

// Enabled implements Tracer.
func (mt *MetricsTracer) Enabled() bool { return true }

// Trace implements Tracer.
func (mt *MetricsTracer) Trace(ev Event) {
	switch ev.Type {
	case EvOrdered:
		mt.orderedCounter(ev.Instance).Add(uint64(ev.Count))
		mt.batchSize.Observe(float64(ev.Count))
	case EvExecuted:
		mt.executed.Inc()
	case EvInstanceChangeStart:
		mt.icStarts.Inc()
	case EvInstanceChangeComplete:
		mt.icReason(ev.Reason).Inc()
	case EvNICClose:
		mt.nicCloses.Inc()
	case EvMsgDrop:
		mt.msgDrops.Inc()
	}
}

// orderedCounter resolves rbft_ordered_total{instance="i"} once per
// instance, caching so the steady state is one map read per event.
func (mt *MetricsTracer) orderedCounter(inst types.InstanceID) *Counter {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	c := mt.ordered[inst]
	if c == nil {
		c = mt.reg.Counter(LabeledName("rbft_ordered_total", "instance", strconv.Itoa(int(inst))))
		mt.ordered[inst] = c
	}
	return c
}

func (mt *MetricsTracer) icReason(reason string) *Counter {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	c := mt.icReasons[reason]
	if c == nil {
		c = mt.reg.Counter(LabeledName("rbft_instance_changes_total", "reason", reason))
		mt.icReasons[reason] = c
	}
	return c
}
