package obs

import (
	"strconv"
	"sync"

	"rbft/internal/types"
)

// MetricsTracer derives registry metrics from the event stream, so a
// deployment gets per-instance ordered counts, batch-size distribution,
// instance-change counts by reason, NIC closures and message drops from the
// same instrumentation points that feed the trace sinks.
type MetricsTracer struct {
	reg *Registry

	executed  *Counter
	nicCloses *Counter
	msgDrops  *Counter
	icStarts  *Counter
	batchSize *Histogram

	mu        sync.Mutex
	ordered   map[types.InstanceID]*Counter // guarded by mu
	icReasons map[string]*Counter           // guarded by mu
	stages    map[stageKey]*Histogram       // guarded by mu
}

// stageKey caches one rbft_stage_seconds series. Instance is -1 for stages
// that are not scoped to an instance lane.
type stageKey struct {
	stage Stage
	inst  types.InstanceID
}

// NewMetricsTracer creates a tracer deriving metrics into reg.
func NewMetricsTracer(reg *Registry) *MetricsTracer {
	return &MetricsTracer{
		reg:       reg,
		executed:  reg.Counter("rbft_executed_total"),
		nicCloses: reg.Counter("rbft_nic_closures_total"),
		msgDrops:  reg.Counter("rbft_messages_dropped_total"),
		icStarts:  reg.Counter("rbft_instance_change_votes_total"),
		batchSize: reg.Histogram("rbft_batch_size", BatchSizeBuckets),
		ordered:   make(map[types.InstanceID]*Counter),
		icReasons: make(map[string]*Counter),
		stages:    make(map[stageKey]*Histogram),
	}
}

// Enabled implements Tracer.
func (mt *MetricsTracer) Enabled() bool { return true }

// Trace implements Tracer.
func (mt *MetricsTracer) Trace(ev Event) {
	switch ev.Type {
	case EvOrdered:
		mt.orderedCounter(ev.Instance).Add(uint64(ev.Count))
		mt.batchSize.Observe(float64(ev.Count))
	case EvExecuted:
		mt.executed.Inc()
	case EvInstanceChangeStart:
		mt.icStarts.Inc()
	case EvInstanceChangeComplete:
		mt.icReason(ev.Reason).Inc()
	case EvNICClose:
		mt.nicCloses.Inc()
	case EvMsgDrop:
		mt.msgDrops.Inc()
	case EvSpan:
		mt.stageHistogram(ev.Stage, ev.Instance).Observe(ev.Dur.Seconds())
	}
}

// stageHistogram resolves the rbft_stage_seconds series for a span. Stages
// scoped to an instance lane get an instance label
// (rbft_stage_seconds{instance="0",stage="prepare-quorum"}, labels in
// alphabetical order); request-scoped stages get the stage label only.
func (mt *MetricsTracer) stageHistogram(stage Stage, inst types.InstanceID) *Histogram {
	key := stageKey{stage: stage, inst: inst}
	if !stage.PerInstance() {
		key.inst = -1
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	h := mt.stages[key]
	if h == nil {
		name := "rbft_stage_seconds{"
		if key.inst >= 0 {
			name += `instance=` + strconv.Quote(strconv.Itoa(int(key.inst))) + `,`
		}
		name += `stage=` + strconv.Quote(stage.String()) + `}`
		h = mt.reg.Histogram(name, LatencyBuckets)
		mt.stages[key] = h
	}
	return h
}

// orderedCounter resolves rbft_ordered_total{instance="i"} once per
// instance, caching so the steady state is one map read per event.
func (mt *MetricsTracer) orderedCounter(inst types.InstanceID) *Counter {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	c := mt.ordered[inst]
	if c == nil {
		c = mt.reg.Counter(LabeledName("rbft_ordered_total", "instance", strconv.Itoa(int(inst))))
		mt.ordered[inst] = c
	}
	return c
}

func (mt *MetricsTracer) icReason(reason string) *Counter {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	c := mt.icReasons[reason]
	if c == nil {
		c = mt.reg.Counter(LabeledName("rbft_instance_changes_total", "reason", reason))
		mt.icReasons[reason] = c
	}
	return c
}
