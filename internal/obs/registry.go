package obs

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are safe on a
// nil receiver (no-ops), so code can hold unresolved metrics without
// branching at every increment site.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Bounds are upper bucket edges in
// ascending order; observations above the last bound land in the implicit
// +Inf bucket. Nil-safe like Counter.
type Histogram struct {
	bounds []float64 // immutable after construction

	mu     sync.Mutex
	counts []uint64 // guarded by mu; len(bounds)+1, last is +Inf
	sum    float64  // guarded by mu
	count  uint64   // guarded by mu
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// LatencyBuckets are the default upper bounds (seconds) for ordering- and
// request-latency histograms, spanning sub-millisecond crypto costs to
// multi-second attack-induced stalls.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// BatchSizeBuckets are the default upper bounds for batch-size histograms.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// MetricKind discriminates Snapshot entries.
type MetricKind uint8

// Snapshot entry kinds.
const (
	KindCounter MetricKind = iota + 1
	KindGauge
	KindHistogram
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	Le    float64 // upper bound; +Inf for the overflow bucket
	Count uint64  // cumulative count of observations <= Le
}

// Metric is one snapshotted metric.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value float64 // counter or gauge value
	// Histogram fields.
	Sum     float64
	Count   uint64
	Buckets []Bucket
}

// Registry is a named collection of metrics. Lookup methods get-or-create;
// on a nil registry they return nil metrics whose methods no-op, so wiring
// is optional everywhere.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds if needed (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every metric's current state, sorted by name so the
// output is deterministic regardless of registration or map order.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: float64(g.Value())})
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, h := range hists {
		h.mu.Lock()
		m := Metric{Name: name, Kind: KindHistogram, Sum: h.sum, Count: h.count}
		var cum uint64
		for i, c := range h.counts {
			cum += c
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			m.Buckets = append(m.Buckets, Bucket{Le: le, Count: cum})
		}
		h.mu.Unlock()
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LabeledName renders name{label="value"}; the registry treats the result
// as an opaque name, which keeps labels deterministic and allocation-free
// at increment time (resolve once, increment many).
func LabeledName(name, label, value string) string {
	return name + "{" + label + "=" + strconv.Quote(value) + "}"
}
