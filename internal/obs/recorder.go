package obs

import "sync"

// FlightRecorder is a bounded in-memory event sink: a ring buffer holding
// the most recent events, cheap enough to leave always-on in a deployed
// node and dump post-incident via /debug/events. One Event is ~200 bytes,
// so the default 4096-slot recorder costs under a megabyte.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []Event // guarded by mu
	next    int     // guarded by mu; next write position
	wrapped bool    // guarded by mu; buffer has been filled at least once
	dropped uint64  // guarded by mu; events overwritten so far
}

// DefaultRecorderSize is the flight-recorder capacity used by cmd/rbft-node
// unless overridden.
const DefaultRecorderSize = 4096

// NewFlightRecorder creates a recorder holding the last n events (n <= 0
// uses DefaultRecorderSize).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultRecorderSize
	}
	return &FlightRecorder{buf: make([]Event, n)}
}

// Enabled implements Tracer.
func (r *FlightRecorder) Enabled() bool { return true }

// Trace implements Tracer.
func (r *FlightRecorder) Trace(ev Event) {
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first. The slice is a copy.
func (r *FlightRecorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many events have been overwritten since creation;
// a post-incident dump with Dropped() > 0 is missing its oldest history.
func (r *FlightRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
