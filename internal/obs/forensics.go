package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rbft/internal/types"
)

// ReadTrace parses a JSONL trace (as produced by JSONLWriter) back into
// events, preserving order. Lines with an unknown event name are skipped so
// traces from newer builds stay partially readable.
func ReadTrace(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ej eventJSON
		if err := json.Unmarshal(raw, &ej); err != nil {
			return events, fmt.Errorf("trace line %d: %w", line, err)
		}
		ev, ok := decodeEvent(ej)
		if !ok {
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("reading trace: %w", err)
	}
	return events, nil
}

// RatioPoint is one Δ-test evaluation: the master/best-backup throughput
// ratio a node's monitor measured when closing a period.
type RatioPoint struct {
	At    time.Time
	Ratio float64
	// Suspicious marks the period whose ratio fell below Δ.
	Suspicious bool
	// Throughput is the per-instance req/s snapshot of the period.
	Throughput []float64
}

// ICExplanation reconstructs why one node completed an instance change:
// the verdict that triggered it, the measured value behind the verdict, and
// the node's Δ-ratio history leading up to the decision.
type ICExplanation struct {
	Node    types.NodeID
	At      time.Time
	CPI     uint64 // post-change instance-change counter
	NewView types.View
	Reason  string

	// Ratio is the measured Δ ratio at the deciding verdict (throughput
	// reason), or the last ratio the node observed before the change.
	Ratio float64
	// Value is the offending measurement for Λ/Ω reasons: the request
	// latency (Λ) or the master-vs-backup latency gap (Ω), in seconds.
	Value float64
	// Client is the client whose request triggered a Λ/Ω verdict.
	Client types.ClientID

	// RatioSeries is this node's Δ-test history up to and including the
	// change (at most the trace's full history).
	RatioSeries []RatioPoint
	// Voters are the nodes observed broadcasting INSTANCE-CHANGE for this
	// round (a per-node trace shows only the local vote; a merged cluster
	// trace shows the full quorum).
	Voters []types.NodeID
}

// ExplainInstanceChanges reconstructs every instance change completion in
// the trace from the verdict and vote events preceding it. Events must be
// in trace order.
func ExplainInstanceChanges(events []Event) []ICExplanation {
	type nodeState struct {
		ratios      []RatioPoint
		lastLatency Event // last suspicious Λ/Ω verdict
		haveLatency bool
	}
	states := make(map[types.NodeID]*nodeState)
	state := func(n types.NodeID) *nodeState {
		st := states[n]
		if st == nil {
			st = &nodeState{}
			states[n] = st
		}
		return st
	}
	// votes[cpi] accumulates voters for the round voting at counter cpi;
	// the completion event carries cpi+1.
	votes := make(map[uint64][]types.NodeID)

	var out []ICExplanation
	for _, ev := range events {
		switch ev.Type {
		case EvVerdict:
			st := state(ev.Node)
			switch ev.Reason {
			case "latency-lambda", "fairness-omega":
				st.lastLatency = ev
				st.haveLatency = true
			default:
				// Δ-period verdict ("none" or "throughput-delta").
				st.ratios = append(st.ratios, RatioPoint{
					At:         ev.At,
					Ratio:      ev.Value,
					Suspicious: ev.Reason == "throughput-delta",
					Throughput: ev.Values,
				})
			}
		case EvInstanceChangeStart:
			seen := false
			for _, v := range votes[ev.CPI] {
				if v == ev.Node {
					seen = true
					break
				}
			}
			if !seen {
				votes[ev.CPI] = append(votes[ev.CPI], ev.Node)
			}
		case EvInstanceChangeComplete:
			st := state(ev.Node)
			exp := ICExplanation{
				Node:    ev.Node,
				At:      ev.At,
				CPI:     ev.CPI,
				NewView: ev.View,
				Reason:  ev.Reason,
			}
			if n := len(st.ratios); n > 0 {
				exp.Ratio = st.ratios[n-1].Ratio
				exp.RatioSeries = append([]RatioPoint(nil), st.ratios...)
			}
			if st.haveLatency {
				exp.Value = st.lastLatency.Value
				exp.Client = st.lastLatency.Client
			}
			if ev.CPI > 0 {
				exp.Voters = append([]types.NodeID(nil), votes[ev.CPI-1]...)
			}
			out = append(out, exp)
		}
	}
	return out
}

// Timeline filters a trace down to one node (or all nodes when node < 0)
// and, when inst >= 0, to events carrying that instance. Order-preserving.
func Timeline(events []Event, node types.NodeID, inst types.InstanceID) []Event {
	var out []Event
	for _, ev := range events {
		if node >= 0 && ev.Node != node {
			continue
		}
		if inst >= 0 {
			switch ev.Type {
			case EvPrePrepare, EvPrepare, EvCommit, EvOrdered:
				if ev.Instance != inst {
					continue
				}
			default:
				continue
			}
		}
		out = append(out, ev)
	}
	return out
}

// Summary counts events by type, deterministically ordered by event kind.
type Summary struct {
	Total  int
	ByType []TypeCount
}

// TypeCount is one event type's occurrence count.
type TypeCount struct {
	Type  EventType
	Count int
}

// Summarize tallies a trace.
func Summarize(events []Event) Summary {
	counts := make(map[EventType]int)
	for _, ev := range events {
		counts[ev.Type]++
	}
	s := Summary{Total: len(events)}
	for t := EvRequestReceived; t <= EvClientEvicted; t++ {
		if c := counts[t]; c > 0 {
			s.ByType = append(s.ByType, TypeCount{Type: t, Count: c})
		}
	}
	return s
}
