package baseline

import (
	"time"

	"rbft/internal/sim"
	"rbft/internal/types"
)

// SpinningConfig parameterises the Spinning baseline (Veronese et al., SRDS
// 2009): the primary rotates automatically after every ordered batch, a
// statically configured Stimeout bounds how long replicas wait for the
// primary's ordering message, and a primary that exceeds it is blacklisted
// (with the oldest of f blacklisted replicas recycled for liveness).
//
// The protocol pipelines ordering (MAC-only, UDP multicast), so its
// fault-free throughput is the highest of the three baselines and largely
// independent of the per-view batch. Its weakness (paper §III-C): a
// malicious primary delays its ordering message by just under Stimeout. It
// is never blacklisted, and because sequence numbers execute in order, every
// f-th rotation stalls the whole pipeline for almost Stimeout — throughput
// collapses to 1% (static) / 4.5% (dynamic) of fault-free, a 99%
// degradation (Table I).
type SpinningConfig struct {
	F    int
	Cost sim.CostModel

	// BatchSize is the per-rotation batch (small: the primary orders a
	// single batch then rotates).
	BatchSize    int
	BatchTimeout time.Duration
	// Stimeout is the static ordering timeout (40ms in the paper's runs).
	Stimeout time.Duration
	// PerReqCPU is the fitted size-independent per-request cost at the
	// bottleneck replica (MAC-only verification, no signatures).
	PerReqCPU time.Duration
	// PerBatchCost is the fixed per-rotation cost (pipelined, so no
	// network-latency additive term).
	PerBatchCost time.Duration
	// PayloadSerFactor scales the per-request serialization term (Spinning
	// orders full requests).
	PayloadSerFactor float64
	// AttackMargin is how far below Stimeout the malicious primary stays.
	AttackMargin time.Duration

	// Attack enables the f malicious rotating primaries for the whole run.
	Attack bool
}

func (c *SpinningConfig) withDefaults() SpinningConfig {
	out := *c
	if out.F == 0 {
		out.F = 1
	}
	if out.Cost == (sim.CostModel{}) {
		out.Cost = sim.DefaultCostModel()
	}
	if out.BatchSize == 0 {
		out.BatchSize = 8
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = time.Millisecond
	}
	if out.Stimeout == 0 {
		out.Stimeout = 40 * time.Millisecond
	}
	if out.PerReqCPU == 0 {
		out.PerReqCPU = 21 * time.Microsecond
	}
	if out.PerBatchCost == 0 {
		out.PerBatchCost = 30 * time.Microsecond
	}
	if out.PayloadSerFactor == 0 {
		out.PayloadSerFactor = 4
	}
	if out.AttackMargin == 0 {
		out.AttackMargin = time.Millisecond
	}
	return out
}

// Spinning runs the workload under the Spinning protocol.
func Spinning(cfg SpinningConfig, w Workload) Result {
	c := cfg.withDefaults()
	n := types.ClusterSize(c.F)

	en := &engine{
		cost:         c.Cost,
		n:            n,
		f:            c.F,
		batchSize:    c.BatchSize,
		batchTimeout: c.BatchTimeout,
		perBatch: func(b, size int) time.Duration {
			// Pipelined rotation: throughput is CPU/NIC bound, without a
			// per-rotation network round trip.
			perReq := c.PerReqCPU + time.Duration(c.PayloadSerFactor*float64(c.Cost.Serialization(size)))
			return time.Duration(b)*perReq + c.PerBatchCost
		},
		pipeline: 4 * c.Cost.LinkLatency, // UDP multicast: no TCP overhead
		attackDelay: func(st *engineState) time.Duration {
			if !c.Attack {
				return 0
			}
			// Every rotation whose primary index falls on a faulty replica
			// stalls in-order execution by just under Stimeout.
			if st.View%n < c.F {
				return c.Stimeout - c.AttackMargin
			}
			return 0
		},
		afterBatch: func(st *engineState, _ time.Duration) bool {
			st.View++ // automatic rotation after every batch
			return true
		},
	}
	// Spinning's attack runs for the whole workload (rotation is inherent);
	// attackFrom stays zero so InAttack is always true.
	return en.run(w)
}
