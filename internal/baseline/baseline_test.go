package baseline

import (
	"testing"
	"time"
)

func staticW(size int) Workload  { return Static(500000, size, 30*time.Second) }
func dynamicW(size int) Workload { return Dynamic(1000, size, 5*time.Second) }

func TestSpinningFaultFreePeaks(t *testing.T) {
	r8 := Spinning(SpinningConfig{}, staticW(8))
	if r8.Throughput < 34000 || r8.Throughput > 50000 {
		t.Fatalf("Spinning fault-free @8B = %.0f req/s, want ~42k (paper: +20%% over RBFT's 35k)", r8.Throughput)
	}
	r4k := Spinning(SpinningConfig{}, staticW(4096))
	if r4k.Throughput < 5000 || r4k.Throughput > 8500 {
		t.Fatalf("Spinning fault-free @4kB = %.0f req/s, want ~6.5k", r4k.Throughput)
	}
}

func TestSpinningAttackCollapse(t *testing.T) {
	ff := Spinning(SpinningConfig{}, staticW(8))
	at := Spinning(SpinningConfig{Attack: true}, staticW(8))
	rel := at.Throughput / ff.Throughput
	if rel > 0.05 {
		t.Fatalf("Spinning static attack relative throughput = %.1f%%, want ~1-4%%", 100*rel)
	}
	// The malicious primary stays just under Stimeout: never blacklisted, so
	// rotation continues (PrimaryChanges > 0 both ways).
	if at.PrimaryChanges == 0 {
		t.Fatal("Spinning rotation stopped under attack")
	}
}

func TestSpinningRotatesEveryBatch(t *testing.T) {
	r := Spinning(SpinningConfig{}, Static(10000, 8, time.Second))
	if r.PrimaryChanges == 0 || r.PrimaryChanges < r.Ordered/64 {
		t.Fatalf("expected per-batch rotation, got %d changes for %d requests", r.PrimaryChanges, r.Ordered)
	}
}

func TestAardvarkFaultFreePeaks(t *testing.T) {
	r8 := Aardvark(AardvarkConfig{}, staticW(8))
	if r8.Throughput < 25000 || r8.Throughput > 38000 {
		t.Fatalf("Aardvark fault-free @8B = %.0f req/s, want ~31.6k", r8.Throughput)
	}
	r4k := Aardvark(AardvarkConfig{}, staticW(4096))
	if r4k.Throughput < 1200 || r4k.Throughput > 2400 {
		t.Fatalf("Aardvark fault-free @4kB = %.0f req/s, want ~1.7k", r4k.Throughput)
	}
	if r8.PrimaryChanges == 0 {
		t.Fatal("Aardvark must perform regular view changes")
	}
}

func TestAardvarkStaticAttackBounded(t *testing.T) {
	w := staticW(8)
	from := w.Total() / 3
	ff := Aardvark(AardvarkConfig{AttackFrom: from}, w)
	at := Aardvark(AardvarkConfig{Attack: true, AttackFrom: from}, w)
	rel := at.WindowThroughput / ff.WindowThroughput
	if rel < 0.70 || rel > 0.95 {
		t.Fatalf("Aardvark static attack relative = %.1f%%, want ~76-90%%", 100*rel)
	}
}

func TestAardvarkDynamicAttackSevere(t *testing.T) {
	w := dynamicW(8)
	spike := w.SpikeStart()
	until := spike + 5*time.Second
	ff := Aardvark(AardvarkConfig{AttackFrom: spike, AttackUntil: until}, w)
	at := Aardvark(AardvarkConfig{Attack: true, AttackFrom: spike, AttackUntil: until}, w)
	rel := at.WindowThroughput / ff.WindowThroughput
	if rel > 0.35 {
		t.Fatalf("Aardvark dynamic attack relative = %.1f%%, want ~13-25%% (stale history exploit)", 100*rel)
	}
	if rel < 0.05 {
		t.Fatalf("Aardvark dynamic attack relative = %.1f%%, implausibly low", 100*rel)
	}
}

func TestPrimeFaultFree(t *testing.T) {
	r8 := Prime(PrimeConfig{}, staticW(8))
	if r8.Throughput < 9000 || r8.Throughput > 16000 {
		t.Fatalf("Prime fault-free @8B = %.0f req/s, want ~12.4k (35k/2.83)", r8.Throughput)
	}
	// Prime's latency is an order of magnitude above the others.
	low := Prime(PrimeConfig{}, Static(1000, 8, 10*time.Second))
	if low.AvgLatency < 8*time.Millisecond {
		t.Fatalf("Prime low-load latency = %v, want >= 8ms (periodic ordering)", low.AvgLatency)
	}
}

func TestPrimeAttack(t *testing.T) {
	w := staticW(8)
	from := w.Total() / 3
	ff := Prime(PrimeConfig{AttackFrom: from}, w)
	at := Prime(PrimeConfig{Attack: true, AttackFrom: from}, w)
	rel := at.WindowThroughput / ff.WindowThroughput
	if rel < 0.10 || rel > 0.40 {
		t.Fatalf("Prime static attack relative = %.1f%%, want ~22%%", 100*rel)
	}
	// At 4kB the ratio is higher (figure 1's rising curve).
	w4 := staticW(4096)
	from4 := w4.Total() / 3
	ff4 := Prime(PrimeConfig{AttackFrom: from4}, w4)
	at4 := Prime(PrimeConfig{Attack: true, AttackFrom: from4}, w4)
	rel4 := at4.WindowThroughput / ff4.WindowThroughput
	if rel4 <= rel {
		t.Fatalf("Prime attack relative must rise with size: %.1f%% @8B vs %.1f%% @4kB", 100*rel, 100*rel4)
	}
}

func TestWorkloadHelpers(t *testing.T) {
	w := Dynamic(1000, 8, time.Second)
	if got := w.Total(); got != 9*time.Second {
		t.Fatalf("Total() = %v, want 9s", got)
	}
	if got := w.SpikeStart(); got != 4*time.Second {
		t.Fatalf("SpikeStart() = %v, want 4s", got)
	}
	if got := w.offeredAt(4500 * time.Millisecond); got != 50000 {
		t.Fatalf("offeredAt(spike) = %v, want 50000", got)
	}
	if got := w.offeredAt(20 * time.Second); got != 1000 {
		t.Fatalf("offeredAt(past end) = %v, want last phase", got)
	}
	var empty Workload
	if got := empty.offeredAt(0); got != 0 {
		t.Fatalf("empty workload offeredAt = %v", got)
	}
}
