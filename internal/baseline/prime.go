package baseline

import (
	"time"

	"rbft/internal/sim"
	"rbft/internal/types"
)

// PrimeConfig parameterises the Prime baseline (Amir et al., DSN 2008).
// Prime relies on signatures everywhere and on a periodic ordering flow:
// the primary must emit (possibly empty) ordering messages at a frequency
// replicas derive from live round-trip-time monitoring scaled by a
// developer-set variability constant K_Lat, plus the batch execution time.
//
// The protocol's weakness (paper §III-A): the monitoring is only as good as
// the traffic it measures. A faulty client colluding with the malicious
// primary submits heavy requests (1ms execution instead of 0.1ms in the
// paper's experiment; the effect grows with the request size), inflating the
// measured RTT. The allowed inter-ordering delay grows accordingly, and with
// a bounded number of summaries in flight the primary slows the system down
// to 22% of fault-free throughput without violating the bound (a 78%
// degradation, Table I).
type PrimeConfig struct {
	F    int
	Cost sim.CostModel

	// AggregationLimit caps one ordering message's summary (fault-free the
	// primary aggregates aggressively).
	AggregationLimit int
	BatchTimeout     time.Duration

	// PerReqCPU is the fitted size-independent per-request cost. Prime is
	// signature-only, hence the highest constant of the three baselines.
	PerReqCPU time.Duration
	// PayloadHashFactor and PayloadSerFactor scale the size-dependent
	// per-request cost (Prime also disseminates full requests).
	PayloadHashFactor float64
	PayloadSerFactor  float64
	// LatencyFloor is the fault-free client-observed latency floor of the
	// multi-stage periodic ordering flow (an order of magnitude above the
	// other protocols, figure 7).
	LatencyFloor time.Duration

	// KLat is the network-variability constant replicas multiply into the
	// measured RTT ("set by the developer", §III-A).
	KLat float64
	// BaseRTT is the un-attacked round-trip time between replicas.
	BaseRTT time.Duration
	// HeavyExecTime is the faulty client's heavy-request execution time
	// (1ms vs 0.1ms in the paper).
	HeavyExecTime time.Duration
	// HeavyPayloadPerKB grows the heavy request's RTT-inflating effect with
	// the request size.
	HeavyPayloadPerKB float64
	// AttackWindow bounds the ordering summaries in flight while the
	// primary stretches the inter-summary gap.
	AttackWindow int

	// Attack enables the RTT-inflation attack from AttackFrom on.
	Attack      bool
	AttackFrom  time.Duration
	AttackUntil time.Duration
}

func (c *PrimeConfig) withDefaults() PrimeConfig {
	out := *c
	if out.F == 0 {
		out.F = 1
	}
	if out.Cost == (sim.CostModel{}) {
		out.Cost = sim.DefaultCostModel()
	}
	if out.AggregationLimit == 0 {
		out.AggregationLimit = 1024
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = 2 * time.Millisecond
	}
	if out.PerReqCPU == 0 {
		out.PerReqCPU = 80 * time.Microsecond
	}
	if out.PayloadHashFactor == 0 {
		out.PayloadHashFactor = 18
	}
	if out.PayloadSerFactor == 0 {
		out.PayloadSerFactor = 6
	}
	if out.LatencyFloor == 0 {
		out.LatencyFloor = 12 * time.Millisecond
	}
	if out.KLat == 0 {
		out.KLat = 17
	}
	if out.BaseRTT == 0 {
		out.BaseRTT = 2 * (out.Cost.LinkLatency + out.Cost.TCPExtraLatency)
	}
	if out.HeavyExecTime == 0 {
		out.HeavyExecTime = time.Millisecond
	}
	if out.HeavyPayloadPerKB == 0 {
		out.HeavyPayloadPerKB = 1.3
	}
	if out.AttackWindow == 0 {
		out.AttackWindow = 64
	}
	return out
}

// allowedDelay is the maximum inter-ordering-message delay the replicas
// accept under the inflated RTT measurement.
func (c PrimeConfig) allowedDelay(size int) time.Duration {
	sizeKB := float64(size) / 1024
	inflated := float64(c.BaseRTT) +
		float64(c.HeavyExecTime)*(1+c.HeavyPayloadPerKB*sizeKB)
	return time.Duration(c.KLat * inflated)
}

// Prime runs the workload under the Prime protocol.
func Prime(cfg PrimeConfig, w Workload) Result {
	c := cfg.withDefaults()
	if c.AttackFrom == 0 {
		c.AttackFrom = w.Total() / 3
	}
	n := types.ClusterSize(c.F)

	perBatch := func(b, size int) time.Duration {
		perReq := c.PerReqCPU +
			time.Duration(c.PayloadHashFactor*float64(c.Cost.Hash(size))) +
			time.Duration(c.PayloadSerFactor*float64(c.Cost.Serialization(size)))
		return time.Duration(b)*perReq + 3*(c.Cost.LinkLatency+c.Cost.TCPExtraLatency)
	}

	en := &engine{
		cost:         c.Cost,
		n:            n,
		f:            c.F,
		batchSize:    c.AggregationLimit,
		batchTimeout: c.BatchTimeout,
		perBatch:     perBatch,
		pipeline:     c.LatencyFloor,
		attackFrom:   c.AttackFrom,
		attackUntil:  c.AttackUntil,
		maxBatch: func(st *engineState) int {
			if c.Attack && st.InAttack {
				// Bounded summaries in flight while the gap is stretched.
				return c.AttackWindow
			}
			return c.AggregationLimit
		},
		attackDelay: func(st *engineState) time.Duration {
			if !c.Attack {
				return 0
			}
			b := int(st.Backlog)
			if b > c.AttackWindow {
				b = c.AttackWindow
			}
			if b == 0 {
				b = 1
			}
			service := perBatch(b, st.Size)
			allowed := c.allowedDelay(st.Size)
			if allowed > service {
				return allowed - service
			}
			return 0
		},
	}
	return en.run(w)
}
