// Package baseline implements the three "robust" BFT protocols the RBFT
// paper compares against — Prime, Aardvark and Spinning — at batch
// granularity, each with its own primary-rotation and primary-monitoring
// rules and the attack that defeats it (paper §III).
//
// Each protocol runs as a deterministic time-stepped simulation built on the
// shared engine in this file: requests arrive according to a workload,
// primaries order batches with service times derived from the cost model,
// and the protocol's monitoring rules (Aardvark's 90%-of-max requirement,
// Spinning's static Stimeout, Prime's RTT-derived bound) decide how far a
// smart malicious primary can slow ordering without being caught.
//
// Attack accounting follows the paper's measurements: figures 1 and 2 report
// the system's throughput while the malicious primary is in place relative
// to the fault-free throughput over the same window, so the engine supports
// an attack window (`attackFrom`): the run warms up fault-free (building the
// monitoring history the attacker must respect), the attack engages at
// attackFrom, and Result.WindowThroughput measures from there. Spinning's
// attack is inherent to its per-batch rotation and runs for the whole
// window as well.
package baseline

import (
	"time"

	"rbft/internal/sim"
)

// Phase is one workload segment with a fixed offered load.
type Phase struct {
	Duration time.Duration
	// Offered is the total offered load in req/s.
	Offered float64
}

// Workload is the offered-load profile of a run.
type Workload struct {
	RequestSize int
	Phases      []Phase
}

// Static is the paper's static workload: constant saturating load.
func Static(offered float64, size int, dur time.Duration) Workload {
	return Workload{
		RequestSize: size,
		Phases:      []Phase{{Duration: dur, Offered: offered}},
	}
}

// Dynamic is the paper's dynamic workload: ramp 1→10 clients, spike to 50,
// ramp back down, expressed as offered load with perClient req/s per client.
func Dynamic(perClient float64, size int, stepDur time.Duration) Workload {
	counts := []int{1, 4, 7, 10, 50, 10, 7, 4, 1}
	phases := make([]Phase, 0, len(counts))
	for _, c := range counts {
		phases = append(phases, Phase{Duration: stepDur, Offered: float64(c) * perClient})
	}
	return Workload{RequestSize: size, Phases: phases}
}

// SpikeStart returns when the dynamic workload's 50-client spike begins
// (attacks are measured from there, the worst case the paper reports).
func (w Workload) SpikeStart() time.Duration {
	var at time.Duration
	best := at
	maxOffered := 0.0
	for _, p := range w.Phases {
		if p.Offered > maxOffered {
			maxOffered = p.Offered
			best = at
		}
		at += p.Duration
	}
	return best
}

// Total returns the workload's total duration.
func (w Workload) Total() time.Duration {
	var d time.Duration
	for _, p := range w.Phases {
		d += p.Duration
	}
	return d
}

// offeredAt returns the offered load at elapsed time t.
func (w Workload) offeredAt(t time.Duration) float64 {
	for _, p := range w.Phases {
		if t < p.Duration {
			return p.Offered
		}
		t -= p.Duration
	}
	if len(w.Phases) == 0 {
		return 0
	}
	return w.Phases[len(w.Phases)-1].Offered
}

// Result summarises a baseline run.
type Result struct {
	// Ordered is the number of requests ordered and executed over the whole
	// run.
	Ordered int
	// Throughput is Ordered divided by the run duration, req/s.
	Throughput float64
	// WindowThroughput is the throughput from the attack window start to the
	// end of the run (equals Throughput when the window starts at zero).
	WindowThroughput float64
	// AvgLatency approximates client-observed latency (aggregation wait +
	// queueing + pipeline) over the whole run.
	AvgLatency time.Duration
	// PrimaryChanges counts view/primary rotations during the run.
	PrimaryChanges int
}

// engine is the shared batch-level simulation loop. Protocol behaviour is
// injected through the hooks.
type engine struct {
	cost sim.CostModel
	n, f int

	batchSize    int
	batchTimeout time.Duration

	// perBatch returns the service time to order and execute a batch of b
	// requests of the given size (primary-side bottleneck).
	perBatch func(b, size int) time.Duration
	// maxBatch optionally overrides batchSize per call (Prime's attack
	// window); zero means batchSize.
	maxBatch func(st *engineState) int
	// pipeline is the fixed client→reply latency floor outside queueing.
	pipeline time.Duration
	// attackFrom/attackUntil bound the attack window (attackUntil zero
	// means the end of the run).
	attackFrom  time.Duration
	attackUntil time.Duration
	// attackDelay returns the extra delay the primary inserts before this
	// batch; called only inside the attack window.
	attackDelay func(st *engineState) time.Duration
	// afterBatch lets the protocol update monitoring state and rotate the
	// primary; return true if the primary changed.
	afterBatch func(st *engineState, batchDur time.Duration) bool
}

// engineState is the mutable run state visible to protocol hooks.
type engineState struct {
	Now      time.Duration
	Backlog  float64
	View     int
	Batch    int
	Ordered  int
	Offered  float64
	Size     int
	InAttack bool
}

// run executes the workload and returns the result.
func (en *engine) run(w Workload) Result {
	st := &engineState{Size: w.RequestSize}
	total := w.Total()
	var latSum time.Duration
	var latCount int
	changes := 0
	windowOrdered := 0

	until := en.attackUntil
	if until == 0 {
		until = total
	}
	for st.Now < total {
		st.Offered = w.offeredAt(st.Now)
		st.InAttack = st.Now >= en.attackFrom && st.Now < until
		if st.Backlog < 1 {
			if st.Offered <= 0 {
				st.Now += time.Millisecond
				continue
			}
			wait := time.Duration(float64(time.Second) / st.Offered)
			st.Now += wait
			st.Backlog++
			continue
		}
		limit := en.batchSize
		if en.maxBatch != nil {
			if m := en.maxBatch(st); m > 0 {
				limit = m
			}
		}
		b := int(st.Backlog)
		if b > limit {
			b = limit
		}
		aggWait := time.Duration(0)
		if b < limit && st.Offered > 0 {
			aggWait = time.Duration(float64(en.batchTimeout) / 2)
		}
		service := en.perBatch(b, w.RequestSize)
		delay := time.Duration(0)
		if st.InAttack && en.attackDelay != nil {
			delay = en.attackDelay(st)
		}
		batchDur := aggWait + service + delay

		backlogBefore := st.Backlog
		st.Now += batchDur
		st.Backlog += st.Offered*batchDur.Seconds() - float64(b)
		if st.Backlog < 0 {
			st.Backlog = 0
		}
		st.Ordered += b
		st.Batch++
		if st.InAttack {
			windowOrdered += b
		}

		// Latency ≈ pipeline floor + batch duration + queueing wait behind
		// the backlog at the current service rate (Little's law).
		rate := float64(b) / batchDur.Seconds()
		queueWait := time.Duration(backlogBefore / rate * float64(time.Second))
		latSum += time.Duration(b) * (en.pipeline + batchDur + queueWait)
		latCount += b

		if en.afterBatch != nil && en.afterBatch(st, batchDur) {
			changes++
		}
	}

	res := Result{Ordered: st.Ordered, PrimaryChanges: changes}
	if total > 0 {
		res.Throughput = float64(st.Ordered) / total.Seconds()
	}
	if window := until - en.attackFrom; window > 0 {
		res.WindowThroughput = float64(windowOrdered) / window.Seconds()
	} else {
		res.WindowThroughput = res.Throughput
	}
	if latCount > 0 {
		res.AvgLatency = latSum / time.Duration(latCount)
	}
	return res
}
