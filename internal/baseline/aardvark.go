package baseline

import (
	"time"

	"rbft/internal/sim"
	"rbft/internal/types"
)

// AardvarkConfig parameterises the Aardvark baseline (Clement et al., NSDI
// 2009): PBFT with regular primary changes. A primary must deliver at least
// 90% of the maximum throughput observed over the last N views; after a 5s
// grace period the replicas ratchet the requirement up by 1% periodically
// until the primary fails it, triggering a view change.
//
// The protocol's weakness (paper §III-B): the requirement is derived from
// *observed history*, so a smart malicious primary orders at just above it.
// Under a static saturating load the history tracks capacity and the damage
// is bounded (the paper measured ≥76% relative throughput while the faulty
// primary is in place, approaching 100% at large request sizes where the
// network bounds both the observation and the attack). Under a dynamic load
// the history is stale: when the 50-client spike arrives during a faulty
// view, the primary keeps ordering at the requirement computed from the
// pre-spike trickle — the paper measured throughput down to 13% of
// fault-free (an 87% degradation, Table I).
//
// Following the paper's measurement, AttackFrom opens the attack window:
// history accumulates fault-free before it, the malicious primary holds the
// view from then on, and Result.WindowThroughput measures the damage.
type AardvarkConfig struct {
	F    int
	Cost sim.CostModel

	BatchSize    int
	BatchTimeout time.Duration

	// GracePeriod is the requirement-stable interval that also paces the
	// history measurement windows (5s in the paper).
	GracePeriod time.Duration
	// RequiredFraction is the fraction of the historical maximum a primary
	// must sustain (0.9 in the paper).
	RequiredFraction float64
	// HistoryViews is how many measurement windows feed the maximum.
	HistoryViews int
	// ViewChangePause is the ordering gap at each regular view change;
	// fault-free Aardvark pays this periodically (disabling view changes
	// made Aardvark match RBFT in the paper's measurements, §VI-B).
	ViewChangePause time.Duration
	// ViewLength is the fault-free interval between regular view changes
	// (grace period plus the ratcheting ramp).
	ViewLength time.Duration

	// PerReqCPU is the fitted size-independent per-request bottleneck cost
	// (client signature verification plus MAC work).
	PerReqCPU time.Duration
	// PayloadHashFactor and PayloadSerFactor scale the size-dependent
	// per-request cost: Aardvark orders full requests, so the payload is
	// MACed at several hops and crosses the primary NIC once per replica.
	PayloadHashFactor float64
	PayloadSerFactor  float64

	// MeasurementSlackBase is the extra margin below the requirement the
	// attacker exploits at small request sizes: replica throughput
	// observation is noisy and the attacker hides inside the tolerance. It
	// shrinks (to zero) as the request size grows and the network pins the
	// observation to capacity — this reproduces figure 2's static curve
	// rising from ~76% to ~100%.
	MeasurementSlackBase float64

	// Attack makes the primary malicious from AttackFrom on.
	Attack bool
	// AttackFrom is the attack-window start (default: a third into the
	// run for static loads; the harness sets the spike start for dynamic
	// loads). AttackUntil closes it (zero: end of run).
	AttackFrom  time.Duration
	AttackUntil time.Duration
}

func (c *AardvarkConfig) withDefaults() AardvarkConfig {
	out := *c
	if out.F == 0 {
		out.F = 1
	}
	if out.Cost == (sim.CostModel{}) {
		out.Cost = sim.DefaultCostModel()
	}
	if out.BatchSize == 0 {
		out.BatchSize = 64
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = 2 * time.Millisecond
	}
	if out.GracePeriod == 0 {
		out.GracePeriod = 5 * time.Second
	}
	if out.RequiredFraction == 0 {
		out.RequiredFraction = 0.9
	}
	if out.HistoryViews == 0 {
		out.HistoryViews = types.ClusterSize(out.F)
	}
	if out.ViewChangePause == 0 {
		out.ViewChangePause = 300 * time.Millisecond
	}
	if out.ViewLength == 0 {
		out.ViewLength = out.GracePeriod + time.Second
	}
	if out.PerReqCPU == 0 {
		out.PerReqCPU = 26 * time.Microsecond
	}
	if out.PayloadHashFactor == 0 {
		out.PayloadHashFactor = 18
	}
	if out.PayloadSerFactor == 0 {
		out.PayloadSerFactor = 6
	}
	if out.MeasurementSlackBase == 0 {
		out.MeasurementSlackBase = 0.15
	}
	return out
}

// aardvarkState tracks the throughput-history monitoring.
type aardvarkState struct {
	windowStart time.Duration
	windowBase  int // Ordered at window start
	history     []float64
	required    float64
	nextViewAt  time.Duration
}

// Aardvark runs the workload under the Aardvark protocol.
func Aardvark(cfg AardvarkConfig, w Workload) Result {
	c := cfg.withDefaults()
	if c.AttackFrom == 0 {
		// The measurement window (attacked or not) opens a third in, after
		// the monitoring history has warmed up.
		c.AttackFrom = w.Total() / 3
	}
	n := types.ClusterSize(c.F)

	perBatch := func(b, size int) time.Duration {
		perReq := c.PerReqCPU +
			time.Duration(c.PayloadHashFactor*float64(c.Cost.Hash(size))) +
			time.Duration(c.PayloadSerFactor*float64(c.Cost.Serialization(size)))
		return time.Duration(b)*perReq + 3*(c.Cost.LinkLatency+c.Cost.TCPExtraLatency)
	}

	// slack is the observation tolerance the attacker exploits; it fades
	// with request size.
	sizeKB := float64(w.RequestSize) / 1024
	slack := 1 - c.MeasurementSlackBase*(1-sizeKB/4)
	if slack > 1 {
		slack = 1
	}

	as := &aardvarkState{nextViewAt: c.ViewLength}

	en := &engine{
		cost:         c.Cost,
		n:            n,
		f:            c.F,
		batchSize:    c.BatchSize,
		batchTimeout: c.BatchTimeout,
		perBatch:     perBatch,
		pipeline:     4 * (c.Cost.LinkLatency + c.Cost.TCPExtraLatency),
		attackFrom:   c.AttackFrom,
		attackUntil:  c.AttackUntil,
		attackDelay: func(st *engineState) time.Duration {
			if !c.Attack || as.required <= 0 {
				return 0
			}
			// Pace batches so the view's throughput sits at the lowest rate
			// the monitoring tolerates.
			targetRate := as.required * slack
			if targetRate <= 0 {
				return 0
			}
			b := int(st.Backlog)
			if b > c.BatchSize {
				b = c.BatchSize
			}
			if b == 0 {
				b = 1
			}
			target := time.Duration(float64(b) / targetRate * float64(time.Second))
			service := perBatch(b, st.Size)
			if target > service {
				return target - service
			}
			return 0
		},
		afterBatch: func(st *engineState, _ time.Duration) bool {
			// Close a measurement window every GracePeriod while fault-free
			// (the history the attacker must respect freezes at the attack
			// window: the paper measures the first attacked views, before
			// the depressed observations feed back).
			frozen := c.Attack && st.InAttack
			if !frozen && st.Now-as.windowStart >= c.GracePeriod {
				elapsed := (st.Now - as.windowStart).Seconds()
				tput := float64(st.Ordered-as.windowBase) / elapsed
				as.history = append(as.history, tput)
				if len(as.history) > c.HistoryViews {
					as.history = as.history[len(as.history)-c.HistoryViews:]
				}
				max := 0.0
				for _, h := range as.history {
					if h > max {
						max = h
					}
				}
				as.required = c.RequiredFraction * max
				as.windowStart = st.Now
				as.windowBase = st.Ordered
			}
			// Regular view changes (fault-free cost; the malicious primary
			// stays in place by construction of the measurement window).
			if !frozen && st.Now >= as.nextViewAt {
				as.nextViewAt = st.Now + c.ViewLength
				st.View++
				st.Backlog += st.Offered * c.ViewChangePause.Seconds()
				st.Now += c.ViewChangePause
				return true
			}
			return false
		},
	}
	return en.run(w)
}
