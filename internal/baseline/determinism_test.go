package baseline

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestBaselineByteIdenticalAcrossRuns pins the baseline engines (which
// share the simulator's cost model) to the same determinism standard as
// the RBFT simulator: repeated runs of an attacked Aardvark scenario must
// agree byte for byte.
func TestBaselineByteIdenticalAcrossRuns(t *testing.T) {
	run := func() []byte {
		w := Static(4000, 8, 2*time.Second)
		r := Aardvark(AardvarkConfig{Attack: true}, w)
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("serializing baseline result: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("baseline runs diverged:\n run1: %s\n run2: %s", a, b)
	}
}
