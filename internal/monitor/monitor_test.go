package monitor

import (
	"testing"
	"time"

	"rbft/internal/types"
)

func ref(c types.ClientID, id types.RequestID) types.RequestRef {
	return types.RequestRef{Client: c, ID: id, Digest: types.Digest{byte(c), byte(id)}}
}

func TestDeltaTestFiresWhenMasterSlow(t *testing.T) {
	m := New(Config{Instances: 2, Period: 100 * time.Millisecond, Delta: 0.9, MinRequests: 5})
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		r := ref(0, types.RequestID(i))
		m.RequestDispatched(r, now)
		m.RequestOrdered(1, r, now) // backup orders everything
		if i < 5 {
			m.RequestOrdered(0, r, now) // master orders only 25%
		}
	}
	v := m.Tick(now.Add(100 * time.Millisecond))
	if !v.Suspicious || v.Reason != ReasonThroughput {
		t.Fatalf("verdict = %+v, want throughput suspicion", v)
	}
	if v.Ratio < 0.2 || v.Ratio > 0.3 {
		t.Fatalf("ratio = %v, want 0.25", v.Ratio)
	}
}

func TestDeltaTestPassesWhenBalanced(t *testing.T) {
	m := New(Config{Instances: 2, Period: 100 * time.Millisecond, Delta: 0.9, MinRequests: 5})
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		r := ref(0, types.RequestID(i))
		m.RequestDispatched(r, now)
		m.RequestOrdered(1, r, now)
		m.RequestOrdered(0, r, now)
	}
	if v := m.Tick(now.Add(100 * time.Millisecond)); v.Suspicious {
		t.Fatalf("balanced instances flagged: %+v", v)
	}
}

func TestDeltaTestSuppressedBelowMinRequests(t *testing.T) {
	m := New(Config{Instances: 2, Period: 100 * time.Millisecond, Delta: 0.9, MinRequests: 50})
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		r := ref(0, types.RequestID(i))
		m.RequestDispatched(r, now)
		m.RequestOrdered(1, r, now)
	}
	if v := m.Tick(now.Add(100 * time.Millisecond)); v.Suspicious {
		t.Fatal("idle-period noise must not trigger the delta test")
	}
}

func TestTickBeforePeriodEndIsNoop(t *testing.T) {
	m := New(Config{Instances: 2, Period: 100 * time.Millisecond, MinRequests: 1})
	now := time.Unix(0, 0)
	r := ref(0, 1)
	m.RequestDispatched(r, now)
	m.RequestOrdered(1, r, now)
	if v := m.Tick(now.Add(50 * time.Millisecond)); v.Suspicious {
		t.Fatal("tick before period end must not evaluate")
	}
}

func TestLambdaTest(t *testing.T) {
	m := New(Config{Instances: 2, Lambda: time.Millisecond})
	now := time.Unix(0, 0)
	r := ref(0, 1)
	m.RequestDispatched(r, now)
	v := m.RequestOrdered(0, r, now.Add(2*time.Millisecond))
	if !v.Suspicious || v.Reason != ReasonLatency {
		t.Fatalf("verdict = %+v, want latency suspicion", v)
	}
	// Within the bound: fine.
	r2 := ref(0, 2)
	m.RequestDispatched(r2, now)
	if v := m.RequestOrdered(0, r2, now.Add(500*time.Microsecond)); v.Suspicious {
		t.Fatalf("fast request flagged: %+v", v)
	}
}

func TestLambdaIgnoresBackupLatency(t *testing.T) {
	m := New(Config{Instances: 2, Lambda: time.Millisecond})
	now := time.Unix(0, 0)
	r := ref(0, 1)
	m.RequestDispatched(r, now)
	if v := m.RequestOrdered(1, r, now.Add(time.Hour)); v.Suspicious {
		t.Fatal("lambda applies only to master-ordered requests")
	}
}

func TestOmegaTest(t *testing.T) {
	m := New(Config{Instances: 2, Omega: time.Millisecond})
	now := time.Unix(0, 0)
	// Build up a history where the backup orders promptly but the master is
	// slow for this client.
	for i := 1; i <= 10; i++ {
		r := ref(3, types.RequestID(i))
		m.RequestDispatched(r, now)
		m.RequestOrdered(1, r, now.Add(100*time.Microsecond))
		v := m.RequestOrdered(0, r, now.Add(5*time.Millisecond))
		if i >= 2 && (!v.Suspicious || v.Reason != ReasonFairness) {
			t.Fatalf("request %d: verdict = %+v, want fairness suspicion", i, v)
		}
	}
}

func TestOmegaPassesWhenFair(t *testing.T) {
	m := New(Config{Instances: 2, Omega: time.Millisecond})
	now := time.Unix(0, 0)
	for i := 1; i <= 10; i++ {
		r := ref(3, types.RequestID(i))
		m.RequestDispatched(r, now)
		m.RequestOrdered(1, r, now.Add(100*time.Microsecond))
		if v := m.RequestOrdered(0, r, now.Add(200*time.Microsecond)); v.Suspicious {
			t.Fatalf("fair master flagged: %+v", v)
		}
	}
}

func TestThroughputReporting(t *testing.T) {
	m := New(Config{Instances: 2, Period: time.Second, MinRequests: 1})
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		r := ref(0, types.RequestID(i))
		m.RequestDispatched(r, now)
		m.RequestOrdered(0, r, now)
		m.RequestOrdered(1, r, now)
	}
	m.Tick(now.Add(time.Second))
	tp := m.Throughput()
	if len(tp) != 2 || tp[0] != 100 || tp[1] != 100 {
		t.Fatalf("throughput = %v, want [100 100]", tp)
	}
}

func TestResetClearsCountsButKeepsDispatch(t *testing.T) {
	m := New(Config{Instances: 2, Period: time.Second, MinRequests: 1, Lambda: time.Hour})
	now := time.Unix(0, 0)
	r := ref(0, 1)
	m.RequestDispatched(r, now)
	m.Reset(now.Add(time.Millisecond))
	// The in-flight request still completes and is measured.
	v := m.RequestOrdered(0, r, now.Add(2*time.Millisecond))
	if v.Suspicious {
		t.Fatalf("unexpected suspicion after reset: %+v", v)
	}
	if m.NextWake().IsZero() {
		t.Fatal("monitor must stay armed after reset")
	}
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonNone:       "none",
		ReasonThroughput: "throughput-delta",
		ReasonLatency:    "latency-lambda",
		ReasonFairness:   "fairness-omega",
	} {
		if got := r.String(); got != want {
			t.Errorf("Reason(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestParseReasonRoundTrip(t *testing.T) {
	for _, r := range []Reason{ReasonNone, ReasonThroughput, ReasonLatency, ReasonFairness} {
		got, ok := ParseReason(r.String())
		if !ok || got != r {
			t.Errorf("ParseReason(%q) = (%v, %v), want (%v, true)", r.String(), got, ok, r)
		}
	}
	if got, ok := ParseReason("not-a-reason"); ok {
		t.Errorf("ParseReason accepted unknown string as %v", got)
	}
	if got, ok := ParseReason(""); ok {
		t.Errorf("ParseReason accepted empty string as %v", got)
	}
}

func TestRecordLatenciesAccumulates(t *testing.T) {
	m := New(Config{Instances: 2, Period: time.Second, RecordLatencies: true})
	now := time.Unix(0, 0)
	want := []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	for i, lat := range want {
		r := ref(1, types.RequestID(i+1))
		m.RequestDispatched(r, now)
		// A backup ordering must not enter the log; only the master's does.
		m.RequestOrdered(1, r, now.Add(lat/2))
		m.RequestOrdered(0, r, now.Add(lat))
	}
	log := m.LatencyLog()
	if len(log) != len(want) {
		t.Fatalf("latency log has %d records, want %d", len(log), len(want))
	}
	for i, rec := range log {
		if rec.Latency != want[i] || rec.Client != 1 || rec.ID != types.RequestID(i+1) {
			t.Fatalf("record %d = %+v, want latency %v client 1 id %d", i, rec, want[i], i+1)
		}
	}

	// With recording off the log stays empty under the same traffic.
	m = New(Config{Instances: 2, Period: time.Second})
	r := ref(1, 1)
	m.RequestDispatched(r, now)
	m.RequestOrdered(0, r, now.Add(time.Millisecond))
	if got := m.LatencyLog(); len(got) != 0 {
		t.Fatalf("latency log populated without RecordLatencies: %+v", got)
	}
}

func TestMasterSilentRatioZero(t *testing.T) {
	m := New(Config{Instances: 3, Period: 100 * time.Millisecond, Delta: 0.9, MinRequests: 5})
	now := time.Unix(0, 0)
	for i := 0; i < 30; i++ {
		r := ref(0, types.RequestID(i))
		m.RequestDispatched(r, now)
		m.RequestOrdered(1, r, now)
		m.RequestOrdered(2, r, now)
	}
	v := m.Tick(now.Add(100 * time.Millisecond))
	if !v.Suspicious || v.Ratio != 0 {
		t.Fatalf("silent master: verdict = %+v, want ratio 0 suspicion", v)
	}
}

// TestPerLaneDeltaFiresOnSlowPartitionOwner: in per-lane mode each instance
// orders a disjoint partition, so the Δ test compares per-lane completion
// ratios (ordered/dispatched); a lane completing a much smaller fraction of
// its own partition marks its owner.
func TestPerLaneDeltaFiresOnSlowPartitionOwner(t *testing.T) {
	m := New(Config{Instances: 2, Period: 100 * time.Millisecond, Delta: 0.9, MinRequests: 5, PerLane: true})
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		// Even clients on lane 0, odd on lane 1 — lane 1 orders only 25%.
		r0 := ref(2, types.RequestID(i))
		m.RequestDispatchedTo(0, r0, now)
		m.RequestOrdered(0, r0, now)
		r1 := ref(1, types.RequestID(i))
		m.RequestDispatchedTo(1, r1, now)
		if i < 5 {
			m.RequestOrdered(1, r1, now)
		}
	}
	v := m.Tick(now.Add(100 * time.Millisecond))
	if !v.Suspicious || v.Reason != ReasonThroughput {
		t.Fatalf("verdict = %+v, want throughput suspicion", v)
	}
	if v.Ratio < 0.2 || v.Ratio > 0.3 {
		t.Fatalf("ratio = %v, want 0.25 (worst/best completion)", v.Ratio)
	}
}

// TestPerLaneDeltaToleratesImbalancedPartitions: raw count ratios would
// accuse a lane that simply owns a smaller partition; completion ratios must
// not.
func TestPerLaneDeltaToleratesImbalancedPartitions(t *testing.T) {
	m := New(Config{Instances: 2, Period: 100 * time.Millisecond, Delta: 0.9, MinRequests: 5, PerLane: true})
	now := time.Unix(0, 0)
	// Lane 0 owns 4x the load of lane 1; both complete everything.
	for i := 0; i < 20; i++ {
		r := ref(2, types.RequestID(i))
		m.RequestDispatchedTo(0, r, now)
		m.RequestOrdered(0, r, now)
	}
	for i := 0; i < 5; i++ {
		r := ref(1, types.RequestID(i))
		m.RequestDispatchedTo(1, r, now)
		m.RequestOrdered(1, r, now)
	}
	v := m.Tick(now.Add(100 * time.Millisecond))
	if v.Suspicious {
		t.Fatalf("verdict = %+v: imbalanced but healthy partitions accused", v)
	}
	if v.Ratio != 1 {
		t.Fatalf("ratio = %v, want 1", v.Ratio)
	}
}

// TestPerLaneDeltaSuppressedBelowMinRequests: a lane with too few dispatches
// in the period neither accuses nor excuses.
func TestPerLaneDeltaSuppressedBelowMinRequests(t *testing.T) {
	m := New(Config{Instances: 2, Period: 100 * time.Millisecond, Delta: 0.9, MinRequests: 10, PerLane: true})
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		r := ref(2, types.RequestID(i))
		m.RequestDispatchedTo(0, r, now)
		m.RequestOrdered(0, r, now)
	}
	// Lane 1: 5 dispatches (below MinRequests), none ordered.
	for i := 0; i < 5; i++ {
		m.RequestDispatchedTo(1, ref(1, types.RequestID(i)), now)
	}
	v := m.Tick(now.Add(100 * time.Millisecond))
	if v.Suspicious {
		t.Fatalf("verdict = %+v, want suppression below MinRequests", v)
	}
}

// TestPerLaneBackupOrderingCompletesRequest: in per-lane mode a backup
// lane's delivery completes the request — the dispatch entry is dropped and
// the latency tests run on it.
func TestPerLaneBackupOrderingCompletesRequest(t *testing.T) {
	m := New(Config{Instances: 2, Period: 100 * time.Millisecond, Delta: 0.9, MinRequests: 5,
		PerLane: true, Lambda: time.Millisecond})
	now := time.Unix(0, 0)
	r := ref(1, 1)
	m.RequestDispatchedTo(1, r, now)
	v := m.RequestOrdered(1, r, now.Add(5*time.Millisecond))
	if !v.Suspicious || v.Reason != ReasonLatency {
		t.Fatalf("verdict = %+v, want Λ violation on the owning backup lane", v)
	}
	if _, ok := m.dispatch[r.Key()]; ok {
		t.Fatal("completed request still tracked in the dispatch map")
	}
}
