// Package monitor implements RBFT's monitoring mechanism: per-instance
// throughput accounting with the Δ ratio test, and request-latency tracking
// with the Λ (absolute per-request bound) and Ω (cross-instance per-client
// gap) tests. A violation of any test is grounds for a protocol instance
// change.
package monitor

import (
	"fmt"
	"time"

	"rbft/internal/obs"
	"rbft/internal/types"
)

// Reason identifies which monitoring test fired.
type Reason int

// Monitoring verdict reasons.
const (
	// ReasonNone: no violation.
	ReasonNone Reason = iota
	// ReasonThroughput: t_master / avg(t_backup) fell below Δ.
	ReasonThroughput
	// ReasonLatency: a master-ordered request exceeded Λ.
	ReasonLatency
	// ReasonFairness: a client's average latency on the master exceeds its
	// average on the backups by more than Ω.
	ReasonFairness
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonThroughput:
		return "throughput-delta"
	case ReasonLatency:
		return "latency-lambda"
	case ReasonFairness:
		return "fairness-omega"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// ParseReason maps a Reason.String() value back to the Reason. It is the
// bridge from serialized traces (which carry the string form to keep the
// obs package free of a monitor dependency) back to the typed enum.
func ParseReason(s string) (Reason, bool) {
	for _, r := range []Reason{ReasonNone, ReasonThroughput, ReasonLatency, ReasonFairness} {
		if r.String() == s {
			return r, true
		}
	}
	return ReasonNone, false
}

// Config parameterises the monitor. The paper sets Δ, Λ and Ω from the
// cryptographic costs and network conditions; defaults here are calibrated
// for the simulator.
type Config struct {
	// Instances is the number of protocol instances (f+1).
	Instances int
	// Period is the throughput measurement window.
	Period time.Duration
	// Delta is the minimum acceptable ratio between the master instance's
	// throughput and the best backup instance's throughput (0 < Δ ≤ 1).
	// The paper's overview (§IV-A) compares against the best backup; its
	// §IV-C text says "average". Best is the robust reading: with f ≥ 2 a
	// faulty node hosts some backup instance's primary and can stall that
	// instance, which would drag an average-based threshold down and hand
	// the malicious master primary that much headroom.
	Delta float64
	// Lambda is the maximum acceptable ordering latency for any single
	// master-ordered request. Zero disables the test.
	Lambda time.Duration
	// Omega is the maximum acceptable excess of a client's average latency
	// on the master instance over its average on the backup instances. Zero
	// disables the test.
	Omega time.Duration
	// MinRequests is the minimum number of backup-ordered requests in a
	// period before the Δ test is evaluated, suppressing idle-period noise.
	// In per-lane mode it is the minimum number of requests dispatched to a
	// lane before that lane participates in the Δ comparison.
	MinRequests uint64
	// RecordLatencies keeps a log of every master-ordered request's
	// ordering latency (figure 12 plots this series).
	RecordLatencies bool
	// PerLane adapts the Δ test for multi-primary ordering, where each
	// instance orders a disjoint request partition: instances no longer see
	// the same stream, so raw count ratios are meaningless. Instead the
	// monitor compares per-lane completion ratios (ordered / dispatched):
	// a lane completing a much smaller fraction of its own partition than
	// the best lane marks a slow partition owner. The Λ and Ω gates also
	// evaluate on every lane's deliveries rather than the master's only.
	PerLane bool
}

// LatencyRecord is one master-ordered request's ordering latency.
type LatencyRecord struct {
	Client  types.ClientID
	ID      types.RequestID
	Latency time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Instances == 0 {
		out.Instances = 2
	}
	if out.Period == 0 {
		out.Period = 100 * time.Millisecond
	}
	if out.Delta == 0 {
		out.Delta = 0.9
	}
	if out.MinRequests == 0 {
		out.MinRequests = 10
	}
	return out
}

// Verdict is the outcome of a monitoring check.
type Verdict struct {
	Suspicious bool
	Reason     Reason
	// Ratio is the observed master/backup throughput ratio (Δ test only).
	Ratio float64
}

// clientLat tracks a windowed average latency per instance for one client.
type clientLat struct {
	sum   []time.Duration
	count []uint64
}

// Monitor implements the node's Dispatch & Monitoring accounting. Not safe
// for concurrent use; the owning node serialises access.
type Monitor struct {
	cfg Config

	counts      []uint64 // ordered requests per instance, current period
	dispatched  []uint64 // per-lane dispatches, current period (PerLane only)
	periodStart time.Time
	started     bool

	throughput []float64 // last completed period, req/s per instance

	dispatch map[types.RequestKey]time.Time
	clients  map[types.ClientID]*clientLat

	latencyLog []LatencyRecord

	// tr receives verdict events; latHist, when wired to a registry,
	// accumulates master-ordering latencies.
	tr      obs.Tracer
	latHist *obs.Histogram
}

// New creates a monitor.
func New(cfg Config) *Monitor {
	c := cfg.withDefaults()
	return &Monitor{
		cfg:        c,
		counts:     make([]uint64, c.Instances),
		dispatched: make([]uint64, c.Instances),
		throughput: make([]float64, c.Instances),
		dispatch:   make(map[types.RequestKey]time.Time),
		clients:    make(map[types.ClientID]*clientLat),
		tr:         obs.Nop{},
	}
}

// SetTracer installs an event sink. The monitor emits an EvVerdict for
// every closed Δ period (reason "none" when passing, with the measured
// ratio and per-instance throughput) and for every Λ/Ω violation (with the
// offending measurement in seconds). Callers pass a node-stamped tracer.
func (m *Monitor) SetTracer(t obs.Tracer) { m.tr = obs.OrNop(t) }

// SetRegistry wires the monitor's metrics: the ordering-latency histogram
// over master-ordered requests.
func (m *Monitor) SetRegistry(reg *obs.Registry) {
	m.latHist = reg.Histogram("rbft_ordering_latency_seconds", obs.LatencyBuckets)
}

// Config returns the monitor's effective configuration.
func (m *Monitor) Config() Config { return m.cfg }

// RequestDispatched records that the node handed the request to its local
// replicas for ordering.
func (m *Monitor) RequestDispatched(ref types.RequestRef, now time.Time) {
	if !m.started {
		m.started = true
		m.periodStart = now
	}
	key := ref.Key()
	if _, exists := m.dispatch[key]; !exists {
		m.dispatch[key] = now
	}
}

// RequestDispatchedTo records a partition-targeted dispatch: the node handed
// the request to the single lane owning its client's partition. Besides the
// dispatch-time bookkeeping it counts the dispatch against the lane so the
// per-lane Δ test can compare completion ratios.
func (m *Monitor) RequestDispatchedTo(lane types.InstanceID, ref types.RequestRef, now time.Time) {
	m.RequestDispatched(ref, now)
	if int(lane) < len(m.dispatched) {
		m.dispatched[lane]++
	}
}

// RequestOrdered records that instance inst delivered the request, returning
// a verdict from the latency tests when inst is the master.
func (m *Monitor) RequestOrdered(inst types.InstanceID, ref types.RequestRef, now time.Time) Verdict {
	if int(inst) < len(m.counts) {
		m.counts[inst]++
	}
	start, ok := m.dispatch[ref.Key()]
	if !ok {
		return Verdict{}
	}
	lat := now.Sub(start)
	cl := m.clients[ref.Client]
	if cl == nil {
		cl = &clientLat{
			sum:   make([]time.Duration, m.cfg.Instances),
			count: make([]uint64, m.cfg.Instances),
		}
		m.clients[ref.Client] = cl
	}
	if int(inst) < m.cfg.Instances {
		cl.sum[inst] += lat
		cl.count[inst]++
	}

	// In master-only mode a request "completes" when the master orders it;
	// in per-lane mode it completes when its owning lane (the only one it
	// was dispatched to) delivers it.
	if !m.cfg.PerLane && inst != types.MasterInstance {
		return Verdict{}
	}
	// The request has completed its ordering; forget its dispatch time so
	// the map stays bounded.
	delete(m.dispatch, ref.Key())

	if m.cfg.RecordLatencies {
		m.latencyLog = append(m.latencyLog, LatencyRecord{
			Client: ref.Client, ID: ref.ID, Latency: lat,
		})
	}
	m.latHist.Observe(lat.Seconds())

	if m.cfg.Lambda > 0 && lat > m.cfg.Lambda {
		if m.tr.Enabled() {
			m.tr.Trace(obs.Event{
				At: now, Type: obs.EvVerdict, Instance: inst,
				Client: ref.Client, Req: ref.ID,
				Reason: ReasonLatency.String(), Value: lat.Seconds(),
			})
		}
		return Verdict{Suspicious: true, Reason: ReasonLatency}
	}
	if m.cfg.Omega > 0 {
		if v, gap := m.checkFairness(cl); v.Suspicious {
			if m.tr.Enabled() {
				m.tr.Trace(obs.Event{
					At: now, Type: obs.EvVerdict, Instance: inst,
					Client: ref.Client, Req: ref.ID,
					Reason: ReasonFairness.String(), Value: gap.Seconds(),
				})
			}
			return v
		}
	}
	return Verdict{}
}

// checkFairness compares the client's average master latency against its
// average latency across backup instances (Ω test), returning the verdict
// and the measured master-over-backup gap.
func (m *Monitor) checkFairness(cl *clientLat) (Verdict, time.Duration) {
	master := types.MasterInstance
	if cl.count[master] == 0 {
		return Verdict{}, 0
	}
	masterAvg := cl.sum[master] / time.Duration(cl.count[master])
	var backupSum time.Duration
	var backupCount uint64
	for i := 0; i < m.cfg.Instances; i++ {
		if types.InstanceID(i) == master {
			continue
		}
		backupSum += cl.sum[i]
		backupCount += cl.count[i]
	}
	if backupCount == 0 {
		return Verdict{}, 0
	}
	backupAvg := backupSum / time.Duration(backupCount)
	gap := masterAvg - backupAvg
	if gap > m.cfg.Omega {
		return Verdict{Suspicious: true, Reason: ReasonFairness}, gap
	}
	return Verdict{}, gap
}

// NextWake returns when the current measurement period ends (zero before the
// first dispatch).
func (m *Monitor) NextWake() time.Time {
	if !m.started {
		return time.Time{}
	}
	return m.periodStart.Add(m.cfg.Period)
}

// Tick closes the measurement period if due and runs the Δ test.
func (m *Monitor) Tick(now time.Time) Verdict {
	if !m.started || now.Before(m.periodStart.Add(m.cfg.Period)) {
		return Verdict{}
	}
	elapsed := now.Sub(m.periodStart).Seconds()
	var backupBest uint64
	for i := range m.counts {
		m.throughput[i] = float64(m.counts[i]) / elapsed
		if types.InstanceID(i) != types.MasterInstance && m.counts[i] > backupBest {
			backupBest = m.counts[i]
		}
	}
	masterCount := m.counts[types.MasterInstance]

	verdict := Verdict{Ratio: 1}
	if m.cfg.PerLane {
		verdict = m.perLaneVerdict()
	} else if backupBest >= m.cfg.MinRequests {
		ratio := float64(masterCount) / float64(backupBest)
		verdict.Ratio = ratio
		if ratio < m.cfg.Delta {
			verdict.Suspicious = true
			verdict.Reason = ReasonThroughput
		}
	}
	if m.tr.Enabled() {
		m.tr.Trace(obs.Event{
			At: now, Type: obs.EvVerdict,
			Reason: verdict.Reason.String(), Value: verdict.Ratio,
			Values: m.Throughput(),
		})
	}

	for i := range m.counts {
		m.counts[i] = 0
		m.dispatched[i] = 0
	}
	m.periodStart = now
	return verdict
}

// perLaneVerdict runs the partition-aware Δ test: each lane's completion
// ratio (ordered / dispatched this period) is compared, and the period is
// suspicious when the worst lane completes less than Δ of the best lane's
// fraction. Only lanes with at least MinRequests dispatches participate, so
// an idle or lightly-loaded partition neither accuses nor excuses anyone.
func (m *Monitor) perLaneVerdict() Verdict {
	verdict := Verdict{Ratio: 1}
	best, worst := -1.0, -1.0
	for i := range m.counts {
		if m.dispatched[i] < m.cfg.MinRequests {
			continue
		}
		r := float64(m.counts[i]) / float64(m.dispatched[i])
		if best < 0 || r > best {
			best = r
		}
		if worst < 0 || r < worst {
			worst = r
		}
	}
	if best <= 0 {
		return verdict
	}
	verdict.Ratio = worst / best
	if verdict.Ratio < m.cfg.Delta {
		verdict.Suspicious = true
		verdict.Reason = ReasonThroughput
	}
	return verdict
}

// Throughput returns the per-instance throughput (req/s) measured in the last
// completed period. The slice is a copy.
func (m *Monitor) Throughput() []float64 {
	out := make([]float64, len(m.throughput))
	copy(out, m.throughput)
	return out
}

// LatencyLog returns the recorded master-ordering latencies (requires
// Config.RecordLatencies). The slice is a copy.
func (m *Monitor) LatencyLog() []LatencyRecord {
	return append([]LatencyRecord(nil), m.latencyLog...)
}

// Reset clears all counters and latency state, e.g. after an instance change
// so the new master starts from a clean slate.
func (m *Monitor) Reset(now time.Time) {
	for i := range m.counts {
		m.counts[i] = 0
		m.dispatched[i] = 0
	}
	m.periodStart = now
	m.clients = make(map[types.ClientID]*clientLat)
	// Dispatch times survive: in-flight requests are still being ordered.
}
