package pbft

import (
	"testing"
	"time"

	"rbft/internal/message"
	"rbft/internal/types"
)

// TestComputeNewViewFillsGapsWithNullBatches: sequence numbers between the
// stable checkpoint and the highest prepared proof that no view-change
// reported must be re-proposed as null (empty) batches.
func TestComputeNewViewFillsGapsWithNullBatches(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	in := tc.replicas[0]
	vcs := []message.ViewChange{
		{Instance: 0, NewView: 1, StableSeq: 2, Node: 0, Prepared: []message.PreparedProof{
			{Seq: 5, View: 0, Digest: types.Digest{5}, Batch: []types.RequestRef{ref(0, 5)}},
		}},
		{Instance: 0, NewView: 1, StableSeq: 1, Node: 1, Prepared: []message.PreparedProof{
			{Seq: 3, View: 0, Digest: types.Digest{3}, Batch: []types.RequestRef{ref(0, 3)}},
		}},
		{Instance: 0, NewView: 1, StableSeq: 2, Node: 2},
	}
	pps := in.computeNewViewPrePrepares(1, vcs)
	// min stable = 2, max prepared = 5 → seqs 3,4,5.
	if len(pps) != 3 {
		t.Fatalf("re-issued %d proposals, want 3 (seqs 3..5)", len(pps))
	}
	if pps[0].Seq != 3 || len(pps[0].Batch) != 1 {
		t.Fatalf("seq 3 = %+v, want the prepared batch", pps[0])
	}
	if pps[1].Seq != 4 || len(pps[1].Batch) != 0 {
		t.Fatalf("seq 4 = %+v, want a null batch", pps[1])
	}
	if pps[2].Seq != 5 || len(pps[2].Batch) != 1 {
		t.Fatalf("seq 5 = %+v, want the prepared batch", pps[2])
	}
	for _, pp := range pps {
		if pp.View != 1 {
			t.Fatalf("re-issued proposal in view %d, want 1", pp.View)
		}
	}
}

// TestComputeNewViewHighestViewWins: if the same sequence prepared in two
// views, the higher view's proposal is re-issued (PBFT's safety rule).
func TestComputeNewViewHighestViewWins(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	in := tc.replicas[0]
	older := message.PreparedProof{Seq: 3, View: 0, Digest: types.Digest{1}, Batch: []types.RequestRef{ref(0, 1)}}
	newer := message.PreparedProof{Seq: 3, View: 2, Digest: types.Digest{2}, Batch: []types.RequestRef{ref(0, 2)}}
	vcs := []message.ViewChange{
		{Instance: 0, NewView: 3, Node: 0, Prepared: []message.PreparedProof{older}},
		{Instance: 0, NewView: 3, Node: 1, Prepared: []message.PreparedProof{newer}},
	}
	pps := in.computeNewViewPrePrepares(3, vcs)
	if len(pps) != 3 {
		t.Fatalf("re-issued %d proposals, want 3 (seqs 1..3)", len(pps))
	}
	got := pps[2]
	if got.Seq != 3 || len(got.Batch) != 1 || got.Batch[0] != newer.Batch[0] {
		t.Fatalf("seq 3 re-issued %+v, want the view-2 batch", got)
	}
}

// TestPreparedProofsSortedAndAboveStable: proofs are emitted in sequence
// order and exclude checkpointed entries.
func TestPreparedProofsSortedAndAboveStable(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) {
		c.BatchSize = 1
		c.CheckpointInterval = 2
		c.WatermarkWindow = 64
	})
	for i := 0; i < 7; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	in := tc.replicas[1]
	if in.stableSeq == 0 {
		t.Fatal("no stable checkpoint formed")
	}
	proofs := in.preparedProofs()
	last := types.SeqNum(0)
	for _, p := range proofs {
		if p.Seq <= in.stableSeq {
			t.Fatalf("proof for checkpointed seq %d (stable %d)", p.Seq, in.stableSeq)
		}
		if p.Seq <= last {
			t.Fatal("proofs not sorted")
		}
		last = p.Seq
	}
}

// TestNewViewRejectsTamperedProposals: a primary that re-issues proposals
// inconsistent with the view-change certificates is rejected.
func TestNewViewRejectsTamperedProposals(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	// Drive real view change traffic but intercept the NEW-VIEW.
	r1, r2 := ref(0, 1), ref(0, 2)
	tc.addRequest(r1)
	tc.addRequest(r2)

	// Collect signed view changes from every replica for view 1.
	var vcs []message.ViewChange
	for n, rep := range tc.replicas {
		out := rep.StartViewChange(1, tc.now)
		for _, m := range out.Msgs {
			if vc, ok := m.Msg.(*message.ViewChange); ok {
				vcs = append(vcs, *vc)
			}
		}
		_ = n
	}
	if len(vcs) < 3 {
		t.Fatalf("collected %d view changes", len(vcs))
	}
	newPrimary := tc.cfg.PrimaryOf(1, 0)
	victim := types.NodeID((int(newPrimary) + 1) % tc.cfg.N)

	// Build a forged NEW-VIEW: the legitimate certificates but a tampered
	// extra proposal injecting a request that never prepared.
	forged := &message.NewView{
		Instance:    0,
		View:        1,
		ViewChanges: vcs[:3],
		Node:        newPrimary,
	}
	forged.PrePrepares = tc.replicas[victim].computeNewViewPrePrepares(1, vcs[:3])
	forged.PrePrepares = append(forged.PrePrepares, message.PrePrepare{
		Instance: 0, View: 1,
		Seq:   types.SeqNum(len(forged.PrePrepares) + 100),
		Batch: []types.RequestRef{ref(9, 9)},
		Node:  newPrimary,
	})
	if _, err := tc.replicas[victim].OnMessage(forged, tc.now); err == nil {
		t.Fatal("NEW-VIEW with tampered proposals must be rejected")
	}
}

// TestViewChangeDuringActiveLoad: requests keep flowing while the view
// change happens; nothing is lost or duplicated.
func TestViewChangeDuringActiveLoad(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) { c.BatchSize = 2 })
	// Stage requests at every replica but only partially run the network.
	for i := 0; i < 10; i++ {
		r := ref(types.ClientID(i%2), types.RequestID(i))
		for n, rep := range tc.replicas {
			tc.collect(types.NodeID(n), rep.AddRequest(r, tc.now))
		}
		// Deliver only a few messages so ordering is mid-flight.
		for j := 0; j < 3 && len(tc.queue) > 0; j++ {
			m := tc.queue[0]
			tc.queue = tc.queue[1:]
			out, _ := tc.replicas[m.to].OnMessage(m.msg, tc.now)
			tc.collect(m.to, out)
		}
	}
	tc.startViewChange(1)
	tc.run()
	want := orderedRefs(tc.delivered[0])
	if len(want) != 10 {
		t.Fatalf("node 0 delivered %d refs, want 10", len(want))
	}
	for n := 1; n < tc.cfg.N; n++ {
		if !sameOrder(want, orderedRefs(tc.delivered[types.NodeID(n)])) {
			t.Fatalf("node %d diverged after mid-flight view change", n)
		}
	}
}

// TestTickIsNoopWhenNotDue: calling Tick early must not cut batches.
func TestTickIsNoopWhenNotDue(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	primary := tc.replicas[0].Primary()
	in := tc.replicas[primary]
	out := in.AddRequest(ref(0, 1), tc.now)
	if len(out.Msgs) != 0 {
		t.Fatal("single request must wait for the batch timer")
	}
	early := in.Tick(tc.now.Add(time.Microsecond))
	if len(early.Msgs) != 0 {
		t.Fatal("early tick cut a batch")
	}
	due := in.Tick(in.NextWake())
	found := false
	for _, m := range due.Msgs {
		if m.Msg.MsgType() == message.TypePrePrepare {
			found = true
		}
	}
	if !found {
		t.Fatal("due tick did not cut the batch")
	}
}
