package pbft

import (
	"fmt"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/types"
)

// Catch-up (batch fetch). Transports are FIFO but not immune to loss: a
// flood-closed NIC interval, a dropped UDP datagram or an overloaded receive
// queue can leave a replica with a delivery gap it can never fill from the
// normal flow (the COMMITs are gone). The checkpoint stream reveals the gap:
// when f+1 distinct peers advertise a matching checkpoint digest at a
// sequence this replica has not delivered, at least one correct peer is
// ahead, so the missing batches are committed and safe to fetch. The replica
// asks every peer for the range and adopts a batch once f+1 distinct peers
// return identical content.

const (
	// fetchChunk caps the sequence range served per FETCH.
	fetchChunk = 64
	// fetchRetry is the re-request interval while a gap persists.
	fetchRetry = 100 * time.Millisecond
	// retainDeliveredFactor scales how many delivered batches are kept for
	// serving fetches, in units of the watermark window.
	retainDeliveredFactor = 2
)

// deliveredBatch is a retained copy of a delivered batch.
type deliveredBatch struct {
	view types.View
	refs []types.RequestRef
}

// fetchState tracks one outstanding catch-up.
type fetchState struct {
	target   types.SeqNum // highest sequence evidence says is committed
	deadline time.Time    // next retry
	// votes[seq][node] is the refs-digest a peer returned.
	votes map[types.SeqNum]map[types.NodeID]types.Digest
	// payloads[seq][digest] retains one candidate batch per digest.
	payloads map[types.SeqNum]map[types.Digest][]types.RequestRef
}

// noteCheckpointEvidence is called for every received CHECKPOINT; when f+1
// distinct peers agree on a digest at a sequence beyond our deliveries, we
// are behind and start (or extend) a fetch.
func (in *Instance) noteCheckpointEvidence(seq types.SeqNum, now time.Time) Output {
	var out Output
	if seq <= in.lastDelivered {
		return out
	}
	votes := in.checkpoints[seq]
	if votes == nil {
		return out
	}
	counts := make(map[types.Digest]int, len(votes))
	behind := false
	for _, d := range votes {
		counts[d]++
		if counts[d] >= in.cfg.Cluster.WeakQuorum() {
			behind = true
			break
		}
	}
	if !behind {
		return out
	}
	if in.fetch == nil {
		in.fetch = &fetchState{
			votes:    make(map[types.SeqNum]map[types.NodeID]types.Digest),
			payloads: make(map[types.SeqNum]map[types.Digest][]types.RequestRef),
		}
	}
	if seq > in.fetch.target {
		in.fetch.target = seq
	}
	if in.fetch.deadline.IsZero() || !now.Before(in.fetch.deadline) {
		out.merge(in.sendFetch(now))
	}
	return out
}

// sendFetch broadcasts the request for the current gap and arms the retry.
func (in *Instance) sendFetch(now time.Time) Output {
	var out Output
	if in.fetch == nil || in.fetch.target <= in.lastDelivered {
		in.fetch = nil
		return out
	}
	in.fetch.deadline = now.Add(fetchRetry)
	if in.behavior.Silent {
		return out
	}
	f := &message.Fetch{
		Instance: in.cfg.Instance,
		FromSeq:  in.lastDelivered,
		ToSeq:    in.fetch.target,
		Node:     in.cfg.Node,
	}
	f.Auth = in.keys.AuthenticatorForNodes(in.cfg.Cluster.N, f.Body())
	out.send(nil, f)
	return out
}

// onFetch serves retained delivered batches for the requested range.
func (in *Instance) onFetch(f *message.Fetch) (Output, error) {
	var out Output
	if f.Instance != in.cfg.Instance {
		return out, fmt.Errorf("pbft: FETCH for instance %d on instance %d", f.Instance, in.cfg.Instance)
	}
	if in.behavior.Silent {
		return out, nil
	}
	from := f.FromSeq
	to := f.ToSeq
	if to > in.lastDelivered {
		to = in.lastDelivered
	}
	if to > from+fetchChunk {
		to = from + fetchChunk
	}
	for seq := from + 1; seq <= to; seq++ {
		db, ok := in.recentDelivered[seq]
		if !ok {
			continue // GC'd past the retention window
		}
		resp := &message.FetchResp{
			Instance: in.cfg.Instance,
			Seq:      seq,
			Batch:    db.refs,
			Node:     in.cfg.Node,
		}
		resp.Auth = in.keys.AuthenticatorForNodes(in.cfg.Cluster.N, resp.Body())
		out.send([]types.NodeID{f.Node}, resp)
	}
	return out, nil
}

// onFetchResp tallies responses; f+1 identical batches from distinct peers
// are adopted as delivered.
func (in *Instance) onFetchResp(fr *message.FetchResp, now time.Time) (Output, error) {
	var out Output
	if fr.Instance != in.cfg.Instance {
		return out, fmt.Errorf("pbft: FETCH-RESP for instance %d on instance %d", fr.Instance, in.cfg.Instance)
	}
	if in.fetch == nil || fr.Seq <= in.lastDelivered || fr.Seq > in.fetch.target {
		return out, nil
	}
	digest := refsDigest(fr.Batch)
	votes := in.fetch.votes[fr.Seq]
	if votes == nil {
		votes = make(map[types.NodeID]types.Digest, in.cfg.Cluster.WeakQuorum())
		in.fetch.votes[fr.Seq] = votes
	}
	if _, dup := votes[fr.Node]; dup {
		return out, nil
	}
	votes[fr.Node] = digest
	payloads := in.fetch.payloads[fr.Seq]
	if payloads == nil {
		payloads = make(map[types.Digest][]types.RequestRef, 2)
		in.fetch.payloads[fr.Seq] = payloads
	}
	if _, ok := payloads[digest]; !ok {
		payloads[digest] = fr.Batch
	}

	matching := 0
	for _, d := range votes {
		if d == digest {
			matching++
		}
	}
	if matching < in.cfg.Cluster.WeakQuorum() {
		return out, nil
	}
	// Adopt: mark the entry delivered with the fetched content.
	e := in.entry(fr.Seq)
	if !e.delivered {
		e.delivered = true
		e.havePP = true
		e.view = in.view
		e.batch = payloads[digest]
		out.merge(in.deliverReady(now))
	}
	out.merge(in.fetchProgress(now))
	return out, nil
}

// fetchProgress closes or re-arms the fetch after deliveries advanced.
func (in *Instance) fetchProgress(now time.Time) Output {
	var out Output
	if in.fetch == nil {
		return out
	}
	for seq := range in.fetch.votes {
		if seq <= in.lastDelivered {
			delete(in.fetch.votes, seq)
			delete(in.fetch.payloads, seq)
		}
	}
	if in.fetch.target <= in.lastDelivered {
		in.fetch = nil
		return out
	}
	return out
}

// fetchWake exposes the retry deadline to NextWake.
func (in *Instance) fetchWake() time.Time {
	if in.fetch == nil {
		return time.Time{}
	}
	return in.fetch.deadline
}

// fetchTick retries an overdue fetch.
func (in *Instance) fetchTick(now time.Time) Output {
	var out Output
	if in.fetch == nil || now.Before(in.fetch.deadline) {
		return out
	}
	out.merge(in.fetchProgress(now))
	if in.fetch != nil {
		out.merge(in.sendFetch(now))
	}
	return out
}

// retainDelivered records a delivered batch for serving future fetches and
// prunes the retention window.
func (in *Instance) retainDelivered(seq types.SeqNum, view types.View, refs []types.RequestRef) {
	in.recentDelivered[seq] = deliveredBatch{view: view, refs: refs}
	retention := retainDeliveredFactor * in.cfg.WatermarkWindow
	if seq > retention {
		delete(in.recentDelivered, seq-retention)
	}
}

// refsDigest hashes a batch's request refs (order-sensitive).
func refsDigest(refs []types.RequestRef) types.Digest {
	buf := make([]byte, 0, len(refs)*(16+types.DigestSize))
	var tmp [8]byte
	for _, r := range refs {
		putU64(tmp[:], uint64(r.Client))
		buf = append(buf, tmp[:]...)
		putU64(tmp[:], uint64(r.ID))
		buf = append(buf, tmp[:]...)
		buf = append(buf, r.Digest[:]...)
	}
	return crypto.Digest(buf)
}

func putU64(b []byte, v uint64) {
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
