package pbft

import (
	"fmt"
	"sort"
	"time"

	"rbft/internal/message"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// StartViewChange moves the replica into view change toward newView. In RBFT
// this is only ever invoked by the node's protocol-instance-change mechanism,
// never by the instance itself, and it happens on every instance at once.
func (in *Instance) StartViewChange(newView types.View, now time.Time) Output {
	var out Output
	if newView <= in.view {
		return out // only move forward
	}
	in.view = newView
	in.inViewChange = true
	// Primary-only state is void across the change.
	in.pending = nil
	in.inBatch = make(map[types.RequestRef]bool)
	in.batchDeadline = time.Time{}
	in.delayed = nil

	vc := &message.ViewChange{
		Instance:  in.cfg.Instance,
		NewView:   newView,
		StableSeq: in.stableSeq,
		Prepared:  in.preparedProofs(),
		Node:      in.cfg.Node,
	}
	vc.Sig = in.keys.Sign(vc.Body())
	in.journal(&out, wal.Record{Kind: wal.KindViewChange, View: newView})
	if !in.behavior.Silent {
		out.send(nil, vc)
	}
	more, err := in.onViewChange(vc)
	if err == nil {
		out.merge(more)
	}
	return out
}

// preparedProofs collects the prepared certificates above the stable
// checkpoint, sorted by sequence number.
func (in *Instance) preparedProofs() []message.PreparedProof {
	var proofs []message.PreparedProof
	for seq, e := range in.entries {
		if seq <= in.stableSeq || !e.havePP || !e.sentComm {
			continue
		}
		proofs = append(proofs, message.PreparedProof{
			Seq:    seq,
			View:   e.view,
			Digest: e.digest,
			Batch:  e.batch,
		})
	}
	sort.Slice(proofs, func(i, j int) bool { return proofs[i].Seq < proofs[j].Seq })
	return proofs
}

func (in *Instance) onViewChange(vc *message.ViewChange) (Output, error) {
	var out Output
	if vc.Instance != in.cfg.Instance {
		return out, fmt.Errorf("pbft: VIEW-CHANGE for instance %d on instance %d", vc.Instance, in.cfg.Instance)
	}
	if vc.NewView < in.view {
		return out, nil // stale
	}
	if vc.Node != in.cfg.Node && !in.cfg.SigPreverified {
		if err := in.keys.VerifyNodeSignature(vc.Node, vc.Body(), vc.Sig); err != nil {
			return out, fmt.Errorf("pbft: VIEW-CHANGE signature from node %d: %w", vc.Node, err)
		}
	}
	byNode := in.viewChanges[vc.NewView]
	if byNode == nil {
		byNode = make(map[types.NodeID]*message.ViewChange, in.cfg.Cluster.Quorum())
		in.viewChanges[vc.NewView] = byNode
	}
	if _, dup := byNode[vc.Node]; dup {
		return out, nil
	}
	byNode[vc.Node] = vc

	// Only the new primary assembles NEW-VIEW, and only while it is itself in
	// the view change for that view.
	if in.cfg.Cluster.PrimaryOf(vc.NewView, in.cfg.Instance) != in.cfg.Node {
		return out, nil
	}
	if in.view != vc.NewView || !in.inViewChange {
		return out, nil
	}
	if len(byNode) < in.cfg.Cluster.Quorum() {
		return out, nil
	}

	vcs := make([]message.ViewChange, 0, len(byNode))
	for _, stored := range byNode {
		vcs = append(vcs, *stored)
	}
	sort.Slice(vcs, func(i, j int) bool { return vcs[i].Node < vcs[j].Node })

	pps := in.computeNewViewPrePrepares(vc.NewView, vcs)
	nv := &message.NewView{
		Instance:    in.cfg.Instance,
		View:        vc.NewView,
		ViewChanges: vcs,
		PrePrepares: pps,
		Node:        in.cfg.Node,
	}
	if !in.behavior.Silent {
		nv.Auth = in.keys.AuthenticatorForNodes(in.cfg.Cluster.N, nv.Body())
		out.send(nil, nv)
	}
	out.merge(in.installNewView(nv))
	return out, nil
}

// computeNewViewPrePrepares derives the deterministic set of re-issued
// PRE-PREPAREs from a set of VIEW-CHANGE messages: for every sequence number
// between the highest reported stable checkpoint and the highest prepared
// sequence, the proposal prepared in the highest view wins; gaps become null
// (empty) batches.
func (in *Instance) computeNewViewPrePrepares(v types.View, vcs []message.ViewChange) []message.PrePrepare {
	var minS, maxS types.SeqNum
	best := make(map[types.SeqNum]message.PreparedProof)
	for i := range vcs {
		if vcs[i].StableSeq > minS {
			minS = vcs[i].StableSeq
		}
		for _, p := range vcs[i].Prepared {
			if p.Seq > maxS {
				maxS = p.Seq
			}
			cur, ok := best[p.Seq]
			if !ok || p.View > cur.View {
				best[p.Seq] = p
			}
		}
	}
	var pps []message.PrePrepare
	for seq := minS + 1; seq <= maxS; seq++ {
		pp := message.PrePrepare{
			Instance: in.cfg.Instance,
			View:     v,
			Seq:      seq,
			Node:     in.cfg.Cluster.PrimaryOf(v, in.cfg.Instance),
			Batch:    []types.RequestRef{},
		}
		if p, ok := best[seq]; ok {
			pp.Batch = p.Batch
		}
		pps = append(pps, pp)
	}
	return pps
}

func (in *Instance) onNewView(nv *message.NewView, now time.Time) (Output, error) {
	var out Output
	if nv.Instance != in.cfg.Instance {
		return out, fmt.Errorf("pbft: NEW-VIEW for instance %d on instance %d", nv.Instance, in.cfg.Instance)
	}
	if nv.View < in.view || (nv.View == in.view && !in.inViewChange) {
		return out, nil // stale
	}
	wantPrimary := in.cfg.Cluster.PrimaryOf(nv.View, in.cfg.Instance)
	if nv.Node != wantPrimary {
		return out, fmt.Errorf("pbft: NEW-VIEW for view %d from %d, want primary %d", nv.View, nv.Node, wantPrimary)
	}

	// Validate the embedded VIEW-CHANGE quorum.
	seen := make(map[types.NodeID]bool, len(nv.ViewChanges))
	for i := range nv.ViewChanges {
		vc := &nv.ViewChanges[i]
		if vc.Instance != in.cfg.Instance || vc.NewView != nv.View {
			return out, fmt.Errorf("pbft: NEW-VIEW embeds mismatched VIEW-CHANGE (instance %d, view %d)", vc.Instance, vc.NewView)
		}
		if !in.cfg.SigPreverified {
			if err := in.keys.VerifyNodeSignature(vc.Node, vc.Body(), vc.Sig); err != nil {
				return out, fmt.Errorf("pbft: NEW-VIEW embedded signature from node %d: %w", vc.Node, err)
			}
		}
		seen[vc.Node] = true
	}
	if len(seen) < in.cfg.Cluster.Quorum() {
		return out, fmt.Errorf("pbft: NEW-VIEW carries %d view changes, need %d", len(seen), in.cfg.Cluster.Quorum())
	}

	// The re-issued PRE-PREPAREs must be exactly the deterministic function
	// of the view changes.
	want := in.computeNewViewPrePrepares(nv.View, nv.ViewChanges)
	if len(want) != len(nv.PrePrepares) {
		return out, fmt.Errorf("pbft: NEW-VIEW re-issues %d proposals, want %d", len(nv.PrePrepares), len(want))
	}
	for i := range want {
		got := &nv.PrePrepares[i]
		if got.Seq != want[i].Seq || got.View != nv.View || got.BatchDigest() != want[i].BatchDigest() {
			return out, fmt.Errorf("pbft: NEW-VIEW proposal %d does not match the view-change certificates", got.Seq)
		}
	}

	return in.installNewView(nv), nil
}

// installNewView applies an accepted NEW-VIEW: enter the view, replay the
// re-issued proposals, and (as primary) re-queue known-but-undelivered
// requests so nothing in flight is lost.
func (in *Instance) installNewView(nv *message.NewView) Output {
	var out Output
	in.journal(&out, wal.Record{Kind: wal.KindNewView, View: nv.View})
	in.view = nv.View
	in.inViewChange = false
	in.stats.ViewChanges++
	delete(in.viewChanges, nv.View)
	for v := range in.viewChanges {
		if v <= nv.View {
			delete(in.viewChanges, v)
		}
	}

	maxSeq := in.stableSeq
	reissued := make(map[types.RequestRef]bool)
	for i := range nv.PrePrepares {
		pp := nv.PrePrepares[i]
		if pp.Seq > maxSeq {
			maxSeq = pp.Seq
		}
		for _, ref := range pp.Batch {
			reissued[ref] = true
		}
		// Reset any stale entry from the previous view so the re-issued
		// proposal is processed cleanly.
		if e := in.entries[pp.Seq]; e != nil && e.view < nv.View && !e.delivered {
			delete(in.entries, pp.Seq)
		}
		out.merge(in.acceptPrePrepare(&pp, time.Time{}))
	}
	// Clear un-prepared leftovers from older views; their requests re-enter
	// through the primary's queue below.
	for seq, e := range in.entries {
		if e.view < nv.View && !e.delivered && !e.sentComm {
			delete(in.entries, seq)
		}
	}

	if in.IsPrimary() {
		if maxSeq+1 > in.nextSeq {
			in.nextSeq = maxSeq + 1
		}
		if in.nextSeq <= in.stableSeq {
			in.nextSeq = in.stableSeq + 1
		}
		// Deterministically re-queue in-flight requests.
		var refs []types.RequestRef
		for ref := range in.known {
			if _, done := in.delivered[ref]; done {
				continue
			}
			if reissued[ref] {
				continue
			}
			refs = append(refs, ref)
		}
		sort.Slice(refs, func(i, j int) bool {
			a, b := refs[i], refs[j]
			if a.Client != b.Client {
				return a.Client < b.Client
			}
			if a.ID != b.ID {
				return a.ID < b.ID
			}
			return lessDigest(a.Digest, b.Digest)
		})
		for _, ref := range refs {
			in.inBatch[ref] = true
			in.pending = append(in.pending, ref)
		}
		if len(in.pending) > 0 {
			// Cut immediately: view changes are rare and latency-sensitive.
			out.merge(in.cutBatchNow())
		}
	}
	return out
}

func lessDigest(a, b types.Digest) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// cutBatchNow cuts all pending batches without consulting the batch timer.
func (in *Instance) cutBatchNow() Output {
	return in.cutBatch(time.Time{})
}
