package pbft

import (
	"testing"
	"time"

	"rbft/internal/message"
	"rbft/internal/types"
)

// TestLogDigestChainsAgree: after ordering, every replica's cumulative
// ordering-log digest is identical — the property checkpoints certify.
func TestLogDigestChainsAgree(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) {
		c.BatchSize = 4
		c.CheckpointInterval = 4
	})
	for i := 0; i < 32; i++ {
		tc.addRequest(ref(types.ClientID(i%3), types.RequestID(i)))
	}
	want := tc.replicas[0].logDigest
	if want.IsZero() {
		t.Fatal("no deliveries recorded in the digest chain")
	}
	for n := 1; n < tc.cfg.N; n++ {
		if tc.replicas[n].logDigest != want {
			t.Fatalf("node %d log digest diverges", n)
		}
	}
}

// TestCheckpointWithWrongDigestDoesNotStabilize: 2f+1 matching digests are
// required; a faulty node's bogus checkpoint cannot force stabilisation.
func TestCheckpointWithWrongDigestDoesNotStabilize(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) {
		c.BatchSize = 1
		c.CheckpointInterval = 2
	})
	// Drop all legitimate checkpoint traffic so stability depends on what we
	// inject.
	tc.drop = func(from, to types.NodeID, m message.Message) bool {
		return m.MsgType() == message.TypeCheckpoint
	}
	for i := 0; i < 4; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	victim := tc.replicas[1]
	if victim.stableSeq != 0 {
		t.Fatalf("stableSeq = %d with checkpoints dropped", victim.stableSeq)
	}
	// Inject two forged checkpoints with a wrong digest (with the victim's
	// own correct one, that is 3 votes — but only 1 matching the victim's).
	for _, from := range []types.NodeID{2, 3} {
		cp := &message.Checkpoint{Instance: 0, Seq: 2, Digest: types.Digest{0xba, 0xad}, Node: from}
		if _, err := victim.OnMessage(cp, tc.now); err != nil {
			t.Fatal(err)
		}
	}
	if victim.stableSeq != 0 {
		t.Fatal("forged digests stabilised a checkpoint")
	}
	// Matching digests from two peers (plus our own) do stabilise.
	want := victim.checkpointDigests[2]
	for _, from := range []types.NodeID{2, 3} {
		cp := &message.Checkpoint{Instance: 0, Seq: 2, Digest: want, Node: from}
		if _, err := victim.OnMessage(cp, tc.now); err != nil {
			t.Fatal(err)
		}
	}
	if victim.stableSeq != 2 {
		t.Fatalf("stableSeq = %d after a valid quorum, want 2", victim.stableSeq)
	}
}

// TestStaleCheckpointIgnored: checkpoints at or below the stable sequence
// are no-ops.
func TestStaleCheckpointIgnored(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) {
		c.BatchSize = 1
		c.CheckpointInterval = 2
	})
	for i := 0; i < 8; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	in := tc.replicas[0]
	stable := in.stableSeq
	if stable == 0 {
		t.Fatal("no stable checkpoint formed")
	}
	cp := &message.Checkpoint{Instance: 0, Seq: stable, Digest: types.Digest{1}, Node: 2}
	if _, err := in.OnMessage(cp, tc.now); err != nil {
		t.Fatal(err)
	}
	if in.stableSeq != stable {
		t.Fatal("stale checkpoint moved the stable point")
	}
}

// TestProposeRatePacing: a throttled primary's delivery rate tracks the
// configured rate.
func TestProposeRatePacing(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) { c.BatchSize = 8 })
	primary := tc.replicas[0].Primary()
	tc.replicas[primary].SetBehavior(Behavior{ProposeRate: 1000}) // 1k refs/s
	start := tc.now
	for i := 0; i < 100; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	elapsed := tc.now.Sub(start)
	// 100 refs at 1000/s ≈ 100ms (bucket bursts allow some slack).
	if elapsed < 60*time.Millisecond || elapsed > 200*time.Millisecond {
		t.Fatalf("100 refs at 1000/s took %v, want ~100ms", elapsed)
	}
	if got := len(orderedRefs(tc.delivered[0])); got != 100 {
		t.Fatalf("delivered %d refs, want all 100 (throttled, not dropped)", got)
	}
}
