package pbft

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/types"
)

// testCluster wires N instance replicas together through an in-memory queue,
// advancing a virtual clock for timers. Delivery order is FIFO unless a
// shuffle source is installed.
type testCluster struct {
	t         *testing.T
	cfg       types.Config
	ks        *crypto.KeyStore
	replicas  []*Instance
	queue     []netMsg
	now       time.Time
	rng       *rand.Rand // if non-nil, deliveries are randomly interleaved
	drop      func(from, to types.NodeID, m message.Message) bool
	delivered map[types.NodeID][]Batch
}

type netMsg struct {
	from, to types.NodeID
	msg      message.Message
}

func newTestCluster(t *testing.T, f int, tweak func(*Config)) *testCluster {
	t.Helper()
	cfg := types.NewConfig(f)
	tc := &testCluster{
		t:         t,
		cfg:       cfg,
		ks:        crypto.NewKeyStore([]byte("pbft-test"), cfg.N, 4),
		now:       time.Unix(0, 0),
		delivered: make(map[types.NodeID][]Batch),
	}
	for n := 0; n < cfg.N; n++ {
		c := Config{
			Cluster:      cfg,
			Instance:     0,
			Node:         types.NodeID(n),
			BatchSize:    8,
			BatchTimeout: time.Millisecond,
		}
		if tweak != nil {
			tweak(&c)
		}
		tc.replicas = append(tc.replicas, New(c, tc.ks.NodeRing(types.NodeID(n))))
	}
	return tc
}

func (tc *testCluster) collect(from types.NodeID, out Output) {
	for _, b := range out.Delivered {
		tc.delivered[from] = append(tc.delivered[from], b)
	}
	for _, ob := range out.Msgs {
		targets := ob.To
		if targets == nil {
			for n := 0; n < tc.cfg.N; n++ {
				if types.NodeID(n) != from {
					targets = append(targets, types.NodeID(n))
				}
			}
		}
		for _, to := range targets {
			if tc.drop != nil && tc.drop(from, to, ob.Msg) {
				continue
			}
			tc.queue = append(tc.queue, netMsg{from: from, to: to, msg: ob.Msg})
		}
	}
}

// addRequest simulates every node's dispatch module handing the ref to its
// local replica (f+1 PROPAGATEs collected).
func (tc *testCluster) addRequest(ref types.RequestRef) {
	for n, r := range tc.replicas {
		tc.collect(types.NodeID(n), r.AddRequest(ref, tc.now))
	}
	tc.run()
}

// run drains the network queue, firing timers when the queue is empty.
func (tc *testCluster) run() {
	tc.t.Helper()
	for steps := 0; ; steps++ {
		if steps > 2_000_000 {
			tc.t.Fatal("testCluster.run: no quiescence after 2M steps")
		}
		if len(tc.queue) > 0 {
			i := 0
			if tc.rng != nil {
				i = tc.rng.Intn(len(tc.queue))
			}
			m := tc.queue[i]
			tc.queue = append(tc.queue[:i], tc.queue[i+1:]...)
			out, _ := tc.replicas[m.to].OnMessage(m.msg, tc.now)
			tc.collect(m.to, out)
			continue
		}
		// Queue empty: advance the clock to the earliest timer.
		var wake time.Time
		for _, r := range tc.replicas {
			w := r.NextWake()
			if w.IsZero() {
				continue
			}
			if wake.IsZero() || w.Before(wake) {
				wake = w
			}
		}
		if wake.IsZero() {
			return
		}
		if wake.After(tc.now) {
			tc.now = wake
		}
		for n, r := range tc.replicas {
			w := r.NextWake()
			if !w.IsZero() && !tc.now.Before(w) {
				tc.collect(types.NodeID(n), r.Tick(tc.now))
			}
		}
	}
}

func (tc *testCluster) startViewChange(v types.View) {
	for n, r := range tc.replicas {
		tc.collect(types.NodeID(n), r.StartViewChange(v, tc.now))
	}
	tc.run()
}

func ref(client types.ClientID, id types.RequestID) types.RequestRef {
	r := types.RequestRef{Client: client, ID: id}
	r.Digest = crypto.Digest([]byte{byte(client), byte(id), byte(id >> 8)})
	return r
}

// orderedRefs flattens a node's delivered batches.
func orderedRefs(batches []Batch) []types.RequestRef {
	var refs []types.RequestRef
	for _, b := range batches {
		refs = append(refs, b.Refs...)
	}
	return refs
}

func sameOrder(a, b []types.RequestRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOrderSingleRequest(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	r := ref(0, 1)
	tc.addRequest(r)
	for n := 0; n < tc.cfg.N; n++ {
		got := orderedRefs(tc.delivered[types.NodeID(n)])
		if len(got) != 1 || got[0] != r {
			t.Fatalf("node %d delivered %v, want [%v]", n, got, r)
		}
	}
}

func TestAllNodesDeliverSameOrder(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	for i := 0; i < 50; i++ {
		tc.addRequest(ref(types.ClientID(i%3), types.RequestID(i)))
	}
	want := orderedRefs(tc.delivered[0])
	if len(want) != 50 {
		t.Fatalf("node 0 delivered %d refs, want 50", len(want))
	}
	for n := 1; n < tc.cfg.N; n++ {
		if !sameOrder(want, orderedRefs(tc.delivered[types.NodeID(n)])) {
			t.Fatalf("node %d order differs from node 0", n)
		}
	}
}

func TestBatchingRespectsBatchSize(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) { c.BatchSize = 4 })
	// Inject 10 requests before running the network, so the primary batches.
	var outs []Output
	for i := 0; i < 10; i++ {
		r := ref(0, types.RequestID(i))
		for n, rep := range tc.replicas {
			out := rep.AddRequest(r, tc.now)
			if n == int(tc.replicas[0].Primary()) {
				outs = append(outs, out)
			}
			tc.collect(types.NodeID(n), out)
		}
	}
	tc.run()
	for n := 0; n < tc.cfg.N; n++ {
		batches := tc.delivered[types.NodeID(n)]
		total := 0
		for _, b := range batches {
			if len(b.Refs) > 4 {
				t.Fatalf("batch of %d exceeds BatchSize 4", len(b.Refs))
			}
			total += len(b.Refs)
		}
		if total != 10 {
			t.Fatalf("node %d delivered %d refs, want 10", n, total)
		}
	}
}

func TestDuplicateRequestIgnored(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	r := ref(1, 7)
	tc.addRequest(r)
	tc.addRequest(r)
	for n := 0; n < tc.cfg.N; n++ {
		if got := orderedRefs(tc.delivered[types.NodeID(n)]); len(got) != 1 {
			t.Fatalf("node %d delivered %d refs, want 1 (dedup)", n, len(got))
		}
	}
}

func TestSilentBackupReplicaDoesNotStall(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	// Pick a non-primary replica and silence it (a faulty node's replica
	// that "does not take part in the protocol", per worst-attack-1).
	primary := tc.replicas[0].Primary()
	silent := types.NodeID((int(primary) + 1) % tc.cfg.N)
	tc.replicas[silent].SetBehavior(Behavior{Silent: true})
	for i := 0; i < 20; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	for n := 0; n < tc.cfg.N; n++ {
		id := types.NodeID(n)
		if id == silent {
			continue
		}
		if got := len(orderedRefs(tc.delivered[id])); got != 20 {
			t.Fatalf("node %d delivered %d refs, want 20 despite silent replica", n, got)
		}
	}
}

func TestSilentPrimaryStallsInstance(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	primary := tc.replicas[0].Primary()
	tc.replicas[primary].SetBehavior(Behavior{Silent: true})
	for i := 0; i < 5; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	for n := 0; n < tc.cfg.N; n++ {
		if got := len(orderedRefs(tc.delivered[types.NodeID(n)])); got != 0 {
			t.Fatalf("node %d delivered %d refs under a silent primary, want 0", n, got)
		}
	}
}

func TestCheckpointGarbageCollection(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) {
		c.BatchSize = 1
		c.CheckpointInterval = 4
		c.WatermarkWindow = 16
	})
	for i := 0; i < 20; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	for n, r := range tc.replicas {
		if r.stableSeq < 16 {
			t.Errorf("node %d stableSeq = %d, want >= 16", n, r.stableSeq)
		}
		for seq := range r.entries {
			if seq <= r.stableSeq {
				t.Errorf("node %d retains entry %d below stable %d", n, seq, r.stableSeq)
			}
		}
		if got := len(orderedRefs(tc.delivered[types.NodeID(n)])); got != 20 {
			t.Errorf("node %d delivered %d, want 20", n, got)
		}
	}
}

func TestWatermarkLimitsThenRecovers(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) {
		c.BatchSize = 1
		c.CheckpointInterval = 2
		c.WatermarkWindow = 4
	})
	// 30 requests: far beyond the initial window; checkpoint stabilisation
	// must repeatedly slide the window forward.
	for i := 0; i < 30; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	for n := 0; n < tc.cfg.N; n++ {
		if got := len(orderedRefs(tc.delivered[types.NodeID(n)])); got != 30 {
			t.Fatalf("node %d delivered %d, want 30", n, got)
		}
	}
}

func TestViewChangeRotatesPrimaryAndPreservesLiveness(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	for i := 0; i < 10; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	oldPrimary := tc.replicas[0].Primary()
	tc.startViewChange(1)
	for n, r := range tc.replicas {
		if r.View() != 1 {
			t.Fatalf("node %d view = %d, want 1", n, r.View())
		}
		if r.InViewChange() {
			t.Fatalf("node %d stuck in view change", n)
		}
	}
	if p := tc.replicas[0].Primary(); p == oldPrimary {
		t.Fatalf("primary did not rotate (still %d)", p)
	}
	for i := 10; i < 20; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	want := orderedRefs(tc.delivered[0])
	if len(want) != 20 {
		t.Fatalf("node 0 delivered %d refs, want 20", len(want))
	}
	for n := 1; n < tc.cfg.N; n++ {
		if !sameOrder(want, orderedRefs(tc.delivered[types.NodeID(n)])) {
			t.Fatalf("node %d order differs after view change", n)
		}
	}
}

func TestViewChangeNoDuplicateDelivery(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	for i := 0; i < 15; i++ {
		tc.addRequest(ref(types.ClientID(i%2), types.RequestID(i)))
	}
	for v := types.View(1); v <= 3; v++ {
		tc.startViewChange(v)
	}
	for n := 0; n < tc.cfg.N; n++ {
		seen := make(map[types.RequestRef]int)
		for _, r := range orderedRefs(tc.delivered[types.NodeID(n)]) {
			seen[r]++
			if seen[r] > 1 {
				t.Fatalf("node %d delivered %v twice", n, r)
			}
		}
		if len(seen) != 15 {
			t.Fatalf("node %d delivered %d distinct refs, want 15", n, len(seen))
		}
	}
}

func TestViewChangeRecoversInFlightRequests(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	// Inject requests but drop every COMMIT so nothing delivers; the
	// requests prepare at most.
	tc.drop = func(from, to types.NodeID, m message.Message) bool {
		return m.MsgType() == message.TypeCommit
	}
	for i := 0; i < 6; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	for n := 0; n < tc.cfg.N; n++ {
		if got := len(orderedRefs(tc.delivered[types.NodeID(n)])); got != 0 {
			t.Fatalf("node %d delivered %d refs with commits dropped", n, got)
		}
	}
	tc.drop = nil
	tc.startViewChange(1)
	for n := 0; n < tc.cfg.N; n++ {
		got := orderedRefs(tc.delivered[types.NodeID(n)])
		if len(got) != 6 {
			t.Fatalf("node %d delivered %d refs after view change, want 6", n, got)
		}
	}
}

func TestViewChangeSkipsToHigherView(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	tc.addRequest(ref(0, 1))
	tc.startViewChange(5)
	for n, r := range tc.replicas {
		if r.View() != 5 || r.InViewChange() {
			t.Fatalf("node %d view=%d inVC=%v, want view 5 settled", n, r.View(), r.InViewChange())
		}
	}
	tc.addRequest(ref(0, 2))
	for n := 0; n < tc.cfg.N; n++ {
		if got := len(orderedRefs(tc.delivered[types.NodeID(n)])); got != 2 {
			t.Fatalf("node %d delivered %d refs, want 2", n, got)
		}
	}
}

func TestStartViewChangeIgnoresBackwardViews(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	tc.startViewChange(3)
	out := tc.replicas[0].StartViewChange(2, tc.now)
	if len(out.Msgs) != 0 {
		t.Fatal("backward view change must be a no-op")
	}
	if tc.replicas[0].View() != 3 {
		t.Fatalf("view regressed to %d", tc.replicas[0].View())
	}
}

func TestPrePrepareDelayAttackDelaysDelivery(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	primary := tc.replicas[0].Primary()
	const delay = 500 * time.Millisecond
	tc.replicas[primary].SetBehavior(Behavior{PrePrepareDelay: delay})
	start := tc.now
	tc.addRequest(ref(0, 1))
	if got := len(orderedRefs(tc.delivered[0])); got != 1 {
		t.Fatalf("delivered %d refs, want 1", got)
	}
	if elapsed := tc.now.Sub(start); elapsed < delay {
		t.Fatalf("delivered after %v, attack delay is %v", elapsed, delay)
	}
}

func TestUnfairPrimaryDelaysOnlyTargetClient(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) { c.BatchSize = 1 })
	primary := tc.replicas[0].Primary()
	tc.replicas[primary].SetBehavior(Behavior{
		PrePrepareDelay: 300 * time.Millisecond,
		DelayClients:    map[types.ClientID]bool{7: true},
	})
	start := tc.now
	tc.addRequest(ref(3, 1)) // untargeted client
	fastElapsed := tc.now.Sub(start)
	start = tc.now
	tc.addRequest(ref(7, 1)) // targeted client
	slowElapsed := tc.now.Sub(start)
	if fastElapsed >= 300*time.Millisecond {
		t.Fatalf("untargeted client delayed %v", fastElapsed)
	}
	if slowElapsed < 300*time.Millisecond {
		t.Fatalf("targeted client not delayed (%v)", slowElapsed)
	}
}

func TestRejectsPrePrepareFromNonPrimary(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	primary := tc.replicas[0].Primary()
	imposter := types.NodeID((int(primary) + 1) % tc.cfg.N)
	victim := types.NodeID((int(primary) + 2) % tc.cfg.N)
	pp := &message.PrePrepare{
		Instance: 0, View: 0, Seq: 1,
		Batch: []types.RequestRef{ref(0, 1)},
		Node:  imposter,
	}
	if _, err := tc.replicas[victim].OnMessage(pp, tc.now); err == nil {
		t.Fatal("PRE-PREPARE from non-primary must be rejected")
	}
}

func TestRejectsPrepareFromPrimary(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	primary := tc.replicas[0].Primary()
	victim := types.NodeID((int(primary) + 1) % tc.cfg.N)
	p := &message.Prepare{Instance: 0, View: 0, Seq: 1, Node: primary}
	if _, err := tc.replicas[victim].OnMessage(p, tc.now); err == nil {
		t.Fatal("PREPARE from the primary must be rejected")
	}
}

func TestRejectsWrongInstanceMessages(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	p := &message.Prepare{Instance: 1, View: 0, Seq: 1, Node: 1}
	if _, err := tc.replicas[0].OnMessage(p, tc.now); err == nil {
		t.Fatal("message for another instance must be rejected")
	}
}

func TestConflictingPrePrepareKeepsFirst(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	primary := tc.replicas[0].Primary()
	victim := types.NodeID((int(primary) + 1) % tc.cfg.N)
	r1, r2 := ref(0, 1), ref(0, 2)
	// The victim's node knows both requests.
	tc.replicas[victim].AddRequest(r1, tc.now)
	tc.replicas[victim].AddRequest(r2, tc.now)
	pp1 := &message.PrePrepare{Instance: 0, View: 0, Seq: 1, Batch: []types.RequestRef{r1}, Node: primary}
	pp2 := &message.PrePrepare{Instance: 0, View: 0, Seq: 1, Batch: []types.RequestRef{r2}, Node: primary}
	out1, err := tc.replicas[victim].OnMessage(pp1, tc.now)
	if err != nil || len(out1.Msgs) == 0 {
		t.Fatalf("first PRE-PREPARE not accepted: %v", err)
	}
	out2, _ := tc.replicas[victim].OnMessage(pp2, tc.now)
	if len(out2.Msgs) != 0 {
		t.Fatal("equivocating PRE-PREPARE must not trigger a second PREPARE")
	}
}

func TestPrepareWithheldUntilRequestKnown(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	primary := tc.replicas[0].Primary()
	victim := types.NodeID((int(primary) + 1) % tc.cfg.N)
	r := ref(0, 1)
	pp := &message.PrePrepare{Instance: 0, View: 0, Seq: 1, Batch: []types.RequestRef{r}, Node: primary}
	out, err := tc.replicas[victim].OnMessage(pp, tc.now)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Msgs) != 0 {
		t.Fatal("PREPARE sent before the node collected f+1 PROPAGATEs")
	}
	out = tc.replicas[victim].AddRequest(r, tc.now)
	foundPrepare := false
	for _, m := range out.Msgs {
		if m.Msg.MsgType() == message.TypePrepare {
			foundPrepare = true
		}
	}
	if !foundPrepare {
		t.Fatal("PREPARE not released when the request became known")
	}
}

func TestF2ClusterOrders(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	for i := 0; i < 10; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	want := orderedRefs(tc.delivered[0])
	if len(want) != 10 {
		t.Fatalf("node 0 delivered %d refs, want 10", len(want))
	}
	for n := 1; n < tc.cfg.N; n++ {
		if !sameOrder(want, orderedRefs(tc.delivered[types.NodeID(n)])) {
			t.Fatalf("node %d order differs", n)
		}
	}
}

func TestF2SilentTwoReplicasStillOrders(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	primary := tc.replicas[0].Primary()
	silenced := 0
	for n := 0; n < tc.cfg.N && silenced < 2; n++ {
		if types.NodeID(n) == primary {
			continue
		}
		tc.replicas[n].SetBehavior(Behavior{Silent: true})
		silenced++
	}
	for i := 0; i < 10; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	if got := len(orderedRefs(tc.delivered[primary])); got != 10 {
		t.Fatalf("primary delivered %d refs with 2 silent replicas, want 10", got)
	}
}

// TestTotalOrderUnderRandomScheduling is the core safety property: with
// random message interleavings (and random view changes), every replica
// delivers the same totally ordered sequence without duplicates.
func TestTotalOrderUnderRandomScheduling(t *testing.T) {
	prop := func(seed int64) bool {
		tc := newTestCluster(t, 1, func(c *Config) { c.BatchSize = 3 })
		tc.rng = rand.New(rand.NewSource(seed))
		nextVC := types.View(1)
		for i := 0; i < 25; i++ {
			tc.addRequest(ref(types.ClientID(i%3), types.RequestID(i/3)))
			if tc.rng.Intn(10) == 0 {
				tc.startViewChange(nextVC)
				nextVC++
			}
		}
		want := orderedRefs(tc.delivered[0])
		seen := make(map[types.RequestRef]bool)
		for _, r := range want {
			if seen[r] {
				return false // duplicate delivery
			}
			seen[r] = true
		}
		for n := 1; n < tc.cfg.N; n++ {
			if !sameOrder(want, orderedRefs(tc.delivered[types.NodeID(n)])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounting(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	for i := 0; i < 9; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	primary := tc.replicas[0].Primary()
	st := tc.replicas[primary].Stats()
	if st.Proposed == 0 {
		t.Error("primary proposed nothing")
	}
	for n, r := range tc.replicas {
		st := r.Stats()
		if st.RefsOrdered != 9 {
			t.Errorf("node %d RefsOrdered = %d, want 9", n, st.RefsOrdered)
		}
	}
}

func TestNewViewValidationRejectsForgery(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	// A NEW-VIEW without a valid quorum of signed view changes must fail.
	v := types.View(1)
	wantPrimary := tc.cfg.PrimaryOf(v, 0)
	nv := &message.NewView{Instance: 0, View: v, Node: wantPrimary}
	victim := types.NodeID((int(wantPrimary) + 1) % tc.cfg.N)
	tc.replicas[victim].StartViewChange(v, tc.now)
	if _, err := tc.replicas[victim].OnMessage(nv, tc.now); err == nil {
		t.Fatal("NEW-VIEW with no view-change quorum must be rejected")
	}
	// Forged signature.
	vc := &message.ViewChange{Instance: 0, NewView: v, Node: 0}
	vc.Sig = []byte("forged")
	if _, err := tc.replicas[victim].OnMessage(vc, tc.now); err == nil {
		t.Fatal("VIEW-CHANGE with a forged signature must be rejected")
	}
}
