package pbft

import (
	"testing"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/types"
)

// BenchmarkInstanceOrdering measures the full four-replica ordering pipeline
// in-process: requests per second through AddRequest → PRE-PREPARE →
// PREPARE → COMMIT → delivery, with real HMAC authenticators.
func BenchmarkInstanceOrdering(b *testing.B) {
	cfg := types.NewConfig(1)
	ks := crypto.NewKeyStore([]byte("bench"), cfg.N, 1)
	replicas := make([]*Instance, cfg.N)
	for n := 0; n < cfg.N; n++ {
		replicas[n] = New(Config{
			Cluster:      cfg,
			Instance:     0,
			Node:         types.NodeID(n),
			BatchSize:    64,
			BatchTimeout: time.Millisecond,
		}, ks.NodeRing(types.NodeID(n)))
	}
	now := time.Unix(0, 0)
	var queue []Outbound
	var queueFrom []types.NodeID
	collect := func(from types.NodeID, out Output) {
		for _, m := range out.Msgs {
			queue = append(queue, m)
			queueFrom = append(queueFrom, from)
		}
	}
	drain := func() {
		for len(queue) > 0 {
			m := queue[0]
			from := queueFrom[0]
			queue = queue[1:]
			queueFrom = queueFrom[1:]
			targets := m.To
			if targets == nil {
				for n := 0; n < cfg.N; n++ {
					if types.NodeID(n) != from {
						targets = append(targets, types.NodeID(n))
					}
				}
			}
			for _, to := range targets {
				out, _ := replicas[to].OnMessage(m.Msg, now)
				collect(to, out)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := types.RequestRef{Client: 0, ID: types.RequestID(i + 1)}
		ref.Digest[0] = byte(i)
		for n := range replicas {
			collect(types.NodeID(n), replicas[n].AddRequest(ref, now))
		}
		drain()
		if i%64 == 63 {
			// Fire batch timers.
			now = now.Add(2 * time.Millisecond)
			for n := range replicas {
				collect(types.NodeID(n), replicas[n].Tick(now))
			}
			drain()
		}
	}
}
