package pbft

import (
	"testing"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/obs"
	"rbft/internal/types"
)

// benchOrdering measures the full four-replica ordering pipeline in-process:
// requests per second through AddRequest → PRE-PREPARE → PREPARE → COMMIT →
// delivery, with real HMAC authenticators. tr, when non-nil, is installed on
// every replica.
func benchOrdering(b *testing.B, tr obs.Tracer) {
	cfg := types.NewConfig(1)
	ks := crypto.NewKeyStore([]byte("bench"), cfg.N, 1)
	replicas := make([]*Instance, cfg.N)
	for n := 0; n < cfg.N; n++ {
		replicas[n] = New(Config{
			Cluster:      cfg,
			Instance:     0,
			Node:         types.NodeID(n),
			BatchSize:    64,
			BatchTimeout: time.Millisecond,
		}, ks.NodeRing(types.NodeID(n)))
		if tr != nil {
			replicas[n].SetTracer(tr)
		}
	}
	now := time.Unix(0, 0)
	var queue []Outbound
	var queueFrom []types.NodeID
	collect := func(from types.NodeID, out Output) {
		for _, m := range out.Msgs {
			queue = append(queue, m)
			queueFrom = append(queueFrom, from)
		}
	}
	drain := func() {
		for len(queue) > 0 {
			m := queue[0]
			from := queueFrom[0]
			queue = queue[1:]
			queueFrom = queueFrom[1:]
			targets := m.To
			if targets == nil {
				for n := 0; n < cfg.N; n++ {
					if types.NodeID(n) != from {
						targets = append(targets, types.NodeID(n))
					}
				}
			}
			for _, to := range targets {
				out, _ := replicas[to].OnMessage(m.Msg, now)
				collect(to, out)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := types.RequestRef{Client: 0, ID: types.RequestID(i + 1)}
		ref.Digest[0] = byte(i)
		for n := range replicas {
			collect(types.NodeID(n), replicas[n].AddRequest(ref, now))
		}
		drain()
		if i%64 == 63 {
			// Fire batch timers.
			now = now.Add(2 * time.Millisecond)
			for n := range replicas {
				collect(types.NodeID(n), replicas[n].Tick(now))
			}
			drain()
		}
	}
}

// BenchmarkInstanceOrdering is the default configuration: the no-op tracer.
// Event structs are only built behind Enabled() guards, so this must stay
// within noise (<2%) of an uninstrumented pipeline — compare against
// BenchmarkInstanceOrderingRecorded to see the cost a live sink adds.
func BenchmarkInstanceOrdering(b *testing.B) {
	benchOrdering(b, nil)
}

// BenchmarkInstanceOrderingRecorded runs the same pipeline with a flight
// recorder attached, quantifying the overhead of a live trace sink.
func BenchmarkInstanceOrderingRecorded(b *testing.B) {
	benchOrdering(b, obs.NewFlightRecorder(obs.DefaultRecorderSize))
}
