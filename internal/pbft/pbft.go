// Package pbft implements one RBFT protocol instance: a PBFT-style
// three-phase ordering state machine (PRE-PREPARE / PREPARE / COMMIT) with
// request batching, watermarks, checkpoints, and an externally triggered view
// change.
//
// An Instance is a pure state machine: it performs no I/O, spawns no
// goroutines and never reads the wall clock. Every input handler takes the
// current time and returns an Output describing the effects (messages to
// send, batches delivered in sequence order). Drivers — the real-time runtime
// and the discrete-event simulator — execute those effects. This is what lets
// the same protocol code run over live TCP and inside the deterministic
// simulator that regenerates the paper's figures.
//
// Differences from a standalone PBFT deployment, per the RBFT paper:
//   - an instance never initiates a view change by itself; view changes are
//     commanded by the node's instance-change mechanism and apply to every
//     instance at once;
//   - the instance orders request identifiers (client id, request id,
//     digest), never request bodies;
//   - a replica sends PREPARE for a batch only once its node has collected
//     f+1 PROPAGATE copies of every request in the batch (the node signals
//     this through AddRequest).
package pbft

import (
	"fmt"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/obs"
	"rbft/internal/types"
	"rbft/internal/wal"
)

// Config parameterises one protocol instance replica.
type Config struct {
	// Cluster is the 3f+1 cluster configuration.
	Cluster types.Config
	// Instance identifies which of the f+1 instances this replica belongs to.
	Instance types.InstanceID
	// Node is the node hosting this replica.
	Node types.NodeID
	// BatchSize is the maximum number of request refs per PRE-PREPARE.
	BatchSize int
	// BatchTimeout bounds how long the primary waits to fill a batch.
	BatchTimeout time.Duration
	// CheckpointInterval is the number of sequence numbers between
	// checkpoints.
	CheckpointInterval types.SeqNum
	// WatermarkWindow is the width of the sequence window above the last
	// stable checkpoint within which ordering may proceed.
	WatermarkWindow types.SeqNum
	// SigPreverified declares that the driver's ingress pipeline already
	// verified VIEW-CHANGE signatures (including the copies embedded in
	// NEW-VIEW) before handing messages to this replica, so the replica
	// skips re-verifying them. core.Node sets this; replicas driven
	// directly off the wire must leave it false.
	SigPreverified bool
	// Durable makes the replica attach wal.Records to its Outputs for every
	// state transition that must survive a crash (see durability.go). The
	// driver must persist an output's records before transmitting its
	// messages. Off by default: a diskless replica pays nothing.
	Durable bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BatchSize == 0 {
		out.BatchSize = 64
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = 5 * time.Millisecond
	}
	if out.CheckpointInterval == 0 {
		out.CheckpointInterval = 128
	}
	if out.WatermarkWindow == 0 {
		out.WatermarkWindow = 4 * out.CheckpointInterval
	}
	return out
}

// Behavior injects Byzantine behaviour into a replica for the attack
// experiments. The zero value is a correct replica.
type Behavior struct {
	// Silent suppresses all outbound protocol messages (a crashed or
	// non-participating faulty replica).
	Silent bool
	// PrePrepareDelay makes a malicious primary hold every PRE-PREPARE for
	// the given duration before sending it.
	PrePrepareDelay time.Duration
	// ProposeInterval throttles a malicious primary to at most one batch
	// per interval, reducing its instance's throughput (worst-attack-2: the
	// faulty master primary delays requests down to the detection limit).
	ProposeInterval time.Duration
	// ProposeRate throttles a malicious primary to at most this many
	// request refs per second (token bucket), the precise pacing a smart
	// worst-attack-2 primary uses to sit just above the Δ detection
	// threshold. Takes precedence over ProposeInterval.
	ProposeRate float64
	// DelayClients makes an unfair primary delay proposals containing
	// requests from these clients by PrePrepareDelay while serving everyone
	// else promptly.
	DelayClients map[types.ClientID]bool
}

// Batch is a delivered ordered batch.
type Batch struct {
	Instance types.InstanceID
	Seq      types.SeqNum
	View     types.View
	Refs     []types.RequestRef
}

// Outbound is a message to transmit. A nil To means every other node.
type Outbound struct {
	To  []types.NodeID
	Msg message.Message
}

// Output aggregates the effects of one input.
type Output struct {
	// Msgs are messages to transmit.
	Msgs []Outbound
	// Delivered are batches that became committed, in sequence order.
	Delivered []Batch
	// Records are durability records the driver must make crash-safe
	// *before* transmitting Msgs (only populated when Config.Durable).
	Records []wal.Record
}

func (o *Output) send(to []types.NodeID, m message.Message) {
	o.Msgs = append(o.Msgs, Outbound{To: to, Msg: m})
}

func (o *Output) merge(other Output) {
	o.Msgs = append(o.Msgs, other.Msgs...)
	o.Delivered = append(o.Delivered, other.Delivered...)
	o.Records = append(o.Records, other.Records...)
}

// entry tracks the three-phase state of one sequence number.
type entry struct {
	view      types.View
	digest    types.Digest
	batch     []types.RequestRef
	havePP    bool
	prepares  map[types.NodeID]types.Digest
	commits   map[types.NodeID]types.Digest
	sentPrep  bool
	sentComm  bool
	delivered bool
	// waiting counts batch refs the node has not yet collected f+1
	// PROPAGATEs for; PREPARE is withheld until it reaches zero.
	waiting int
	// ppAt/prepAt anchor the prepare-quorum and commit-quorum spans: when
	// the PRE-PREPARE was accepted and when the prepared state was reached.
	// Only maintained when the tracer wants spans.
	ppAt   time.Time
	prepAt time.Time
}

// Instance is one protocol-instance replica. Not safe for concurrent use;
// drivers serialise access.
type Instance struct {
	cfg      Config
	behavior Behavior
	keys     *crypto.KeyRing

	view         types.View
	inViewChange bool

	// Primary state.
	nextSeq       types.SeqNum // next sequence number to assign
	pending       []types.RequestRef
	inBatch       map[types.RequestRef]bool // queued or proposed by this primary
	batchDeadline time.Time

	// Replica state.
	known             map[types.RequestRef]bool // refs with f+1 PROPAGATEs at the node
	waiters           map[types.RequestRef][]types.SeqNum
	entries           map[types.SeqNum]*entry
	delivered         map[types.RequestRef]types.SeqNum
	lastDelivered     types.SeqNum
	stableSeq         types.SeqNum                  // last stable checkpoint
	logDigest         types.Digest                  // running digest chain of delivered batches
	checkpointDigests map[types.SeqNum]types.Digest // our own, awaiting stability
	checkpoints       map[types.SeqNum]map[types.NodeID]types.Digest

	// View-change state.
	viewChanges map[types.View]map[types.NodeID]*message.ViewChange

	// Catch-up state (see fetch.go).
	recentDelivered map[types.SeqNum]deliveredBatch
	fetch           *fetchState

	// Crash-recovery state (see durability.go): promises replayed from the
	// WAL that the live protocol must never contradict, and the transient
	// accumulator used while a replay is in progress.
	promisedPrepare map[types.SeqNum]promise
	promisedCommit  map[types.SeqNum]promise
	restore         *restoreState

	// Delayed PRE-PREPAREs (malicious primary attack hook).
	delayed     []delayedSend
	lastPropose time.Time
	tokens      float64
	lastRefill  time.Time

	// Statistics.
	stats Stats

	// tr receives phase-transition events (pre-prepare proposed, prepared,
	// committed). Node identity is stamped by the installer's wrapper.
	tr obs.Tracer
	// spans caches obs.WantSpans(tr): whether to maintain span anchors and
	// emit EvSpan events.
	spans bool
	// pendingSince is when the oldest pending ref was enqueued (propose-span
	// anchor); zero when pending is empty or spans are off.
	pendingSince time.Time
}

type delayedSend struct {
	at  time.Time
	msg *message.PrePrepare
	// since carries the propose-span anchor across the attack delay, so the
	// delay shows up in the master's propose stage.
	since time.Time
}

// Stats counts observable protocol events, used by tests and the monitor.
type Stats struct {
	Proposed    uint64 // batches proposed as primary
	Delivered   uint64 // batches delivered
	RefsOrdered uint64 // request refs delivered
	ViewChanges uint64 // view changes completed (NEW-VIEW accepted/sent)
}

// New creates a protocol-instance replica.
func New(cfg Config, keys *crypto.KeyRing) *Instance {
	c := cfg.withDefaults()
	return &Instance{
		cfg:               c,
		keys:              keys,
		nextSeq:           1,
		inBatch:           make(map[types.RequestRef]bool),
		known:             make(map[types.RequestRef]bool),
		waiters:           make(map[types.RequestRef][]types.SeqNum),
		entries:           make(map[types.SeqNum]*entry),
		delivered:         make(map[types.RequestRef]types.SeqNum),
		checkpointDigests: make(map[types.SeqNum]types.Digest),
		checkpoints:       make(map[types.SeqNum]map[types.NodeID]types.Digest),
		viewChanges:       make(map[types.View]map[types.NodeID]*message.ViewChange),
		recentDelivered:   make(map[types.SeqNum]deliveredBatch),
		promisedPrepare:   make(map[types.SeqNum]promise),
		promisedCommit:    make(map[types.SeqNum]promise),
		tr:                obs.Nop{},
	}
}

// SetBehavior installs Byzantine behaviour (attack experiments only).
func (in *Instance) SetBehavior(b Behavior) { in.behavior = b }

// SetTracer installs an event sink for phase transitions. core.Node passes
// its node-stamped tracer down; the replica adds the instance id.
func (in *Instance) SetTracer(t obs.Tracer) {
	in.tr = obs.OrNop(t)
	in.spans = obs.WantSpans(in.tr)
}

// View returns the current view.
func (in *Instance) View() types.View { return in.view }

// InViewChange reports whether the replica is between VIEW-CHANGE and
// NEW-VIEW.
func (in *Instance) InViewChange() bool { return in.inViewChange }

// Stats returns a copy of the replica's counters.
func (in *Instance) Stats() Stats { return in.stats }

// LastDelivered returns the highest contiguously delivered sequence number.
func (in *Instance) LastDelivered() types.SeqNum { return in.lastDelivered }

// Primary returns the node hosting this instance's primary in the current
// view.
func (in *Instance) Primary() types.NodeID {
	return in.cfg.Cluster.PrimaryOf(in.view, in.cfg.Instance)
}

// IsPrimary reports whether this replica is the instance primary.
func (in *Instance) IsPrimary() bool { return in.Primary() == in.cfg.Node }

// NextWake returns the earliest time at which Tick must be called, or the
// zero time if no timer is armed.
func (in *Instance) NextWake() time.Time {
	wake := in.batchDeadline
	for _, d := range in.delayed {
		if wake.IsZero() || d.at.Before(wake) {
			wake = d.at
		}
	}
	if fw := in.fetchWake(); !fw.IsZero() && (wake.IsZero() || fw.Before(wake)) {
		wake = fw
	}
	return wake
}

// AddRequest informs the replica that its node has collected f+1 PROPAGATE
// copies of the request and it is ready for ordering.
func (in *Instance) AddRequest(ref types.RequestRef, now time.Time) Output {
	var out Output
	if in.known[ref] {
		return out
	}
	in.known[ref] = true

	// Release any PRE-PREPAREs that were waiting on this request.
	for _, seq := range in.waiters[ref] {
		e := in.entries[seq]
		if e == nil {
			continue
		}
		e.waiting--
		if e.waiting == 0 {
			out.merge(in.maybePrepare(seq, e, now))
		}
	}
	delete(in.waiters, ref)

	if in.IsPrimary() && !in.inViewChange {
		out.merge(in.enqueue(ref, now))
	}
	return out
}

// enqueue adds a ref to the primary's pending batch and cuts a batch when
// full, otherwise arms the batch timer.
func (in *Instance) enqueue(ref types.RequestRef, now time.Time) Output {
	var out Output
	if in.inBatch[ref] {
		return out
	}
	if _, done := in.delivered[ref]; done {
		return out
	}
	if in.spans && len(in.pending) == 0 {
		in.pendingSince = now
	}
	in.inBatch[ref] = true
	in.pending = append(in.pending, ref)
	if len(in.pending) >= in.cfg.BatchSize {
		out.merge(in.cutBatch(now))
		return out
	}
	if in.batchDeadline.IsZero() {
		in.batchDeadline = now.Add(in.cfg.BatchTimeout)
	}
	return out
}

// Tick fires timers: the batch timeout and the release of attack-delayed
// PRE-PREPAREs.
func (in *Instance) Tick(now time.Time) Output {
	var out Output
	if !in.batchDeadline.IsZero() && !now.Before(in.batchDeadline) {
		out.merge(in.cutBatch(now))
	}
	if len(in.delayed) > 0 {
		keep := in.delayed[:0]
		for _, d := range in.delayed {
			if now.Before(d.at) {
				keep = append(keep, d)
				continue
			}
			out.merge(in.emitPrePrepare(d.msg, now, d.since))
		}
		in.delayed = keep
	}
	out.merge(in.fetchTick(now))
	return out
}

// cutBatch proposes the pending refs as one or more batches.
func (in *Instance) cutBatch(now time.Time) Output {
	var out Output
	in.batchDeadline = time.Time{}
	if !in.IsPrimary() || in.inViewChange || len(in.pending) == 0 {
		return out
	}
	throttle := in.behavior.ProposeInterval
	rate := in.behavior.ProposeRate
	if rate > 0 {
		// Token-bucket pacing: refill, burst-capped at one batch.
		if !in.lastRefill.IsZero() {
			in.tokens += rate * now.Sub(in.lastRefill).Seconds()
		}
		in.lastRefill = now
		// Burst capacity of several batches: with a single-batch cap, idle
		// moments between dispatches leak tokens and the realised rate
		// undershoots the configured one.
		if max := float64(4 * in.cfg.BatchSize); in.tokens > max {
			in.tokens = max
		}
	}
	for len(in.pending) > 0 {
		if throttle > 0 && rate == 0 {
			if next := in.lastPropose.Add(throttle); now.Before(next) {
				in.batchDeadline = next
				return out
			}
		}
		if in.nextSeq > in.stableSeq+in.cfg.WatermarkWindow {
			// Out of watermark window; wait for a stable checkpoint.
			break
		}
		n := len(in.pending)
		if n > in.cfg.BatchSize {
			n = in.cfg.BatchSize
		}
		if rate > 0 {
			// Propose in quarter-batch chunks: the paced stream then lands
			// smoothly inside each monitoring window instead of in coarse
			// bursts that quantise the measured ratio.
			if chunk := in.cfg.BatchSize / 4; chunk >= 1 && n > chunk {
				n = chunk
			}
		}
		if rate > 0 {
			// A hair of float tolerance, and a floor on the re-arm delay:
			// without them the wait can truncate to zero and spin the
			// timer without advancing time.
			const epsilon = 1e-9
			if in.tokens+epsilon < float64(n) {
				// Wait until the bucket covers the whole intended batch, so
				// pacing does not degenerate into single-request batches.
				need := time.Duration((float64(n) - in.tokens) / rate * float64(time.Second))
				if need < time.Microsecond {
					need = time.Microsecond
				}
				in.batchDeadline = now.Add(need)
				return out
			}
			in.tokens -= float64(n)
		}
		batch := make([]types.RequestRef, n)
		copy(batch, in.pending[:n])
		in.pending = in.pending[n:]

		pp := &message.PrePrepare{
			Instance: in.cfg.Instance,
			View:     in.view,
			Seq:      in.nextSeq,
			Batch:    batch,
			Node:     in.cfg.Node,
		}
		in.nextSeq++
		in.stats.Proposed++

		in.lastPropose = now
		since := in.pendingSince
		if len(in.pending) == 0 {
			in.pendingSince = time.Time{}
		}
		delay := in.prePrepareDelayFor(batch)
		if delay > 0 {
			in.delayed = append(in.delayed, delayedSend{at: now.Add(delay), msg: pp, since: since})
		} else {
			out.merge(in.emitPrePrepare(pp, now, since))
		}
		if throttle > 0 && rate == 0 {
			// One batch per interval: re-arm for the backlog.
			if len(in.pending) > 0 {
				in.batchDeadline = now.Add(throttle)
			}
			return out
		}
	}
	return out
}

// NextSeq returns the sequence number this replica would assign to its next
// proposal as primary.
func (in *Instance) NextSeq() types.SeqNum { return in.nextSeq }

// ProposeFiller proposes an empty batch at the next sequence number. Under
// multi-primary ordering the node calls this when the execution merge is
// stalled waiting on this idle lane: an empty batch runs the full three-phase
// protocol, so every correct node agrees the lane's cursor advances past a
// sequence that ordered nothing (core's skip-empty-lane rule). The trigger is
// local and timing-dependent, but only the agreed result enters the merge, so
// determinism of the execution order is unaffected.
//
// It is a no-op unless this replica is the primary, idle (nothing pending,
// nothing proposed-but-undelivered) and inside the watermark window — a lane
// with work in flight will advance the cursor by itself.
func (in *Instance) ProposeFiller(now time.Time) Output {
	var out Output
	if !in.IsPrimary() || in.inViewChange || len(in.pending) > 0 {
		return out
	}
	if in.nextSeq != in.lastDelivered+1 {
		return out
	}
	if in.nextSeq > in.stableSeq+in.cfg.WatermarkWindow {
		return out
	}
	pp := &message.PrePrepare{
		Instance: in.cfg.Instance,
		View:     in.view,
		Seq:      in.nextSeq,
		Node:     in.cfg.Node,
	}
	in.nextSeq++
	in.stats.Proposed++
	in.lastPropose = now
	out.merge(in.emitPrePrepare(pp, now, time.Time{}))
	return out
}

// prePrepareDelayFor computes the attack delay applicable to a batch.
func (in *Instance) prePrepareDelayFor(batch []types.RequestRef) time.Duration {
	if in.behavior.PrePrepareDelay == 0 {
		return 0
	}
	if len(in.behavior.DelayClients) == 0 {
		return in.behavior.PrePrepareDelay
	}
	for _, ref := range batch {
		if in.behavior.DelayClients[ref.Client] {
			return in.behavior.PrePrepareDelay
		}
	}
	return 0
}

// emitPrePrepare broadcasts a PRE-PREPARE and processes it locally. since,
// when non-zero, anchors the propose span: the wait from the batch head's
// enqueue (including any throttling or attack delay) to this emission.
func (in *Instance) emitPrePrepare(pp *message.PrePrepare, now time.Time, since time.Time) Output {
	var out Output
	if !in.behavior.Silent {
		in.journal(&out, wal.Record{Kind: wal.KindSentPrePrepare, View: pp.View, Seq: pp.Seq, Refs: pp.Batch})
		pp.Auth = in.keys.AuthenticatorForNodes(in.cfg.Cluster.N, pp.Body())
		out.send(nil, pp)
	}
	if in.tr.Enabled() {
		in.tr.Trace(obs.Event{
			At: now, Type: obs.EvPrePrepare, Instance: in.cfg.Instance,
			Seq: pp.Seq, View: pp.View, Count: len(pp.Batch),
		})
	}
	if in.spans && !since.IsZero() {
		in.tr.Trace(obs.Event{
			At: now, Type: obs.EvSpan, Stage: obs.StagePropose,
			Instance: in.cfg.Instance, Seq: pp.Seq, View: pp.View,
			Count: len(pp.Batch), Dur: now.Sub(since),
		})
	}
	out.merge(in.acceptPrePrepare(pp, now))
	return out
}

// OnMessage dispatches a verified instance message. The node layer has
// already verified the MAC authenticator and that msg's Node field matches
// the authenticated sender.
func (in *Instance) OnMessage(msg message.Message, now time.Time) (Output, error) {
	// Node-level messages (client traffic, request propagation, replies,
	// instance changes, attack garbage) are consumed by core.Node and can
	// never reach an instance.
	//rbft:dispatch ignore=Request,Propagate,Reply,InstanceChange,Invalid
	switch m := msg.(type) {
	case *message.PrePrepare:
		return in.onPrePrepare(m, now)
	case *message.Prepare:
		return in.onPrepare(m, now)
	case *message.Commit:
		return in.onCommit(m, now)
	case *message.Checkpoint:
		return in.onCheckpoint(m, now)
	case *message.ViewChange:
		return in.onViewChange(m)
	case *message.NewView:
		return in.onNewView(m, now)
	case *message.Fetch:
		return in.onFetch(m)
	case *message.FetchResp:
		return in.onFetchResp(m, now)
	default:
		return Output{}, fmt.Errorf("pbft: unexpected message type %s", msg.MsgType())
	}
}

func (in *Instance) onPrePrepare(pp *message.PrePrepare, now time.Time) (Output, error) {
	var out Output
	if pp.Instance != in.cfg.Instance {
		return out, fmt.Errorf("pbft: PRE-PREPARE for instance %d on instance %d", pp.Instance, in.cfg.Instance)
	}
	if pp.View != in.view || in.inViewChange {
		return out, nil // stale or future view; ignore
	}
	if pp.Node != in.Primary() {
		return out, fmt.Errorf("pbft: PRE-PREPARE from %d, primary is %d", pp.Node, in.Primary())
	}
	if !in.inWindow(pp.Seq) {
		return out, nil
	}
	return in.acceptPrePrepare(pp, now), nil
}

// acceptPrePrepare records a PRE-PREPARE (already validated, or self-issued)
// and sends PREPARE once every batch ref is known to the node.
func (in *Instance) acceptPrePrepare(pp *message.PrePrepare, now time.Time) Output {
	var out Output
	e := in.entry(pp.Seq)
	digest := pp.BatchDigest()
	if e.havePP && e.view == pp.View {
		return out // duplicate
	}
	if e.havePP && e.digest != digest && e.view >= pp.View {
		return out // conflicting proposal; keep the first
	}
	e.havePP = true
	e.view = pp.View
	e.digest = digest
	e.batch = pp.Batch
	e.sentPrep = false
	e.sentComm = false
	if in.spans {
		e.ppAt = now
	}

	// Count refs the node has not yet collected f+1 PROPAGATEs for. The
	// paper's rule: reply with PREPARE only if the node already received f+1
	// copies of the request, preventing a malicious primary from boosting
	// its instance with requests sent only to it.
	e.waiting = 0
	for _, ref := range pp.Batch {
		if _, done := in.delivered[ref]; done {
			continue
		}
		if !in.known[ref] {
			e.waiting++
			in.waiters[ref] = append(in.waiters[ref], pp.Seq)
		}
	}
	if e.waiting == 0 {
		out.merge(in.maybePrepare(pp.Seq, e, now))
	}
	return out
}

// maybePrepare sends this replica's PREPARE (non-primary only) and checks
// phase progress.
func (in *Instance) maybePrepare(seq types.SeqNum, e *entry, now time.Time) Output {
	var out Output
	if !e.havePP || e.waiting > 0 {
		return out
	}
	if conflicts(in.promisedPrepare, seq, e) {
		// We already vouched for a different batch at this (view, seq)
		// before the crash; preparing this one would be equivocation.
		return out
	}
	if !in.IsPrimary() && !e.sentPrep {
		e.sentPrep = true
		// Our own PREPARE counts toward the 2f quorum (PBFT counts the
		// replica's logged prepare), which is what lets the instance make
		// progress with f silent faulty replicas.
		e.prepares[in.cfg.Node] = e.digest
		if !in.behavior.Silent {
			in.journal(&out, wal.Record{Kind: wal.KindSentPrepare, View: e.view, Seq: seq, Digest: e.digest})
			p := &message.Prepare{
				Instance: in.cfg.Instance,
				View:     e.view,
				Seq:      seq,
				Digest:   e.digest,
				Node:     in.cfg.Node,
			}
			p.Auth = in.keys.AuthenticatorForNodes(in.cfg.Cluster.N, p.Body())
			out.send(nil, p)
		}
	}
	out.merge(in.checkPrepared(seq, e, now))
	return out
}

func (in *Instance) onPrepare(p *message.Prepare, now time.Time) (Output, error) {
	var out Output
	if p.Instance != in.cfg.Instance {
		return out, fmt.Errorf("pbft: PREPARE for instance %d on instance %d", p.Instance, in.cfg.Instance)
	}
	if p.View != in.view || in.inViewChange || !in.inWindow(p.Seq) {
		return out, nil
	}
	if p.Node == in.Primary() {
		return out, fmt.Errorf("pbft: primary %d must not send PREPARE", p.Node)
	}
	e := in.entry(p.Seq)
	if _, dup := e.prepares[p.Node]; dup && p.Node != in.cfg.Node {
		return out, nil
	}
	e.prepares[p.Node] = p.Digest
	out.merge(in.checkPrepared(p.Seq, e, now))
	return out, nil
}

// prepared: PRE-PREPARE plus 2f matching PREPAREs from distinct non-primary
// replicas (our own counts when we sent it).
func (in *Instance) checkPrepared(seq types.SeqNum, e *entry, now time.Time) Output {
	var out Output
	if !e.havePP || e.waiting > 0 || e.sentComm {
		return out
	}
	matching := 0
	for _, d := range e.prepares {
		if d == e.digest {
			matching++
		}
	}
	if matching < in.cfg.Cluster.PrepareQuorum() {
		return out
	}
	if conflicts(in.promisedCommit, seq, e) {
		// A COMMIT for a different digest at this (view, seq) is already on
		// the wire from before the crash; never contradict it.
		return out
	}
	e.sentComm = true
	if in.tr.Enabled() {
		in.tr.Trace(obs.Event{
			At: now, Type: obs.EvPrepare, Instance: in.cfg.Instance,
			Seq: seq, View: e.view,
		})
	}
	if in.spans && !e.ppAt.IsZero() {
		e.prepAt = now
		in.tr.Trace(obs.Event{
			At: now, Type: obs.EvSpan, Stage: obs.StagePrepareQuorum,
			Instance: in.cfg.Instance, Seq: seq, View: e.view,
			Count: len(e.batch), Dur: now.Sub(e.ppAt),
		})
	}
	if !in.behavior.Silent {
		in.journal(&out, wal.Record{Kind: wal.KindSentCommit, View: e.view, Seq: seq, Digest: e.digest})
		c := &message.Commit{
			Instance: in.cfg.Instance,
			View:     e.view,
			Seq:      seq,
			Digest:   e.digest,
			Node:     in.cfg.Node,
		}
		c.Auth = in.keys.AuthenticatorForNodes(in.cfg.Cluster.N, c.Body())
		out.send(nil, c)
	}
	e.commits[in.cfg.Node] = e.digest
	out.merge(in.checkCommitted(seq, e, now))
	return out
}

func (in *Instance) onCommit(c *message.Commit, now time.Time) (Output, error) {
	var out Output
	if c.Instance != in.cfg.Instance {
		return out, fmt.Errorf("pbft: COMMIT for instance %d on instance %d", c.Instance, in.cfg.Instance)
	}
	if c.View != in.view || in.inViewChange || !in.inWindow(c.Seq) {
		return out, nil
	}
	e := in.entry(c.Seq)
	if _, dup := e.commits[c.Node]; dup && c.Node != in.cfg.Node {
		return out, nil
	}
	e.commits[c.Node] = c.Digest
	out.merge(in.checkCommitted(c.Seq, e, now))
	return out, nil
}

// committed: 2f+1 matching COMMITs (including our own).
func (in *Instance) checkCommitted(seq types.SeqNum, e *entry, now time.Time) Output {
	var out Output
	if !e.havePP || !e.sentComm || e.delivered {
		return out
	}
	matching := 0
	for _, d := range e.commits {
		if d == e.digest {
			matching++
		}
	}
	if matching < in.cfg.Cluster.Quorum() {
		return out
	}
	e.delivered = true
	if in.tr.Enabled() {
		in.tr.Trace(obs.Event{
			At: now, Type: obs.EvCommit, Instance: in.cfg.Instance,
			Seq: seq, View: e.view,
		})
	}
	if in.spans && !e.prepAt.IsZero() {
		in.tr.Trace(obs.Event{
			At: now, Type: obs.EvSpan, Stage: obs.StageCommitQuorum,
			Instance: in.cfg.Instance, Seq: seq, View: e.view,
			Count: len(e.batch), Dur: now.Sub(e.prepAt),
		})
	}
	out.merge(in.deliverReady(now))
	return out
}

// deliverReady delivers committed entries in contiguous sequence order and
// emits checkpoints at interval boundaries.
func (in *Instance) deliverReady(now time.Time) Output {
	var out Output
	for {
		next := in.lastDelivered + 1
		e := in.entries[next]
		if e == nil || !e.delivered {
			break
		}
		in.lastDelivered = next
		refs := make([]types.RequestRef, 0, len(e.batch))
		for _, ref := range e.batch {
			if _, done := in.delivered[ref]; done {
				continue // dedupe across view-change re-proposals
			}
			in.delivered[ref] = next
			refs = append(refs, ref)
			delete(in.inBatch, ref)
		}
		in.stats.Delivered++
		in.stats.RefsOrdered += uint64(len(refs))
		out.Delivered = append(out.Delivered, Batch{
			Instance: in.cfg.Instance,
			Seq:      next,
			View:     e.view,
			Refs:     refs,
		})
		in.retainDelivered(next, e.view, e.batch)
		in.logDigest = chainDigest(in.logDigest, e.digest)

		if next%in.cfg.CheckpointInterval == 0 {
			out.merge(in.emitCheckpoint(next, now))
		}
	}
	return out
}

func chainDigest(prev, batch types.Digest) types.Digest {
	buf := make([]byte, 0, 2*types.DigestSize)
	buf = append(buf, prev[:]...)
	buf = append(buf, batch[:]...)
	return crypto.Digest(buf)
}

func (in *Instance) emitCheckpoint(seq types.SeqNum, now time.Time) Output {
	var out Output
	in.checkpointDigests[seq] = in.logDigest
	in.journal(&out, wal.Record{Kind: wal.KindCheckpoint, Seq: seq, Digest: in.logDigest})
	if !in.behavior.Silent {
		cp := &message.Checkpoint{
			Instance: in.cfg.Instance,
			Seq:      seq,
			Digest:   in.logDigest,
			Node:     in.cfg.Node,
		}
		cp.Auth = in.keys.AuthenticatorForNodes(in.cfg.Cluster.N, cp.Body())
		out.send(nil, cp)
	}
	out.merge(in.recordCheckpoint(seq, in.cfg.Node, in.logDigest, now))
	return out
}

func (in *Instance) onCheckpoint(cp *message.Checkpoint, now time.Time) (Output, error) {
	if cp.Instance != in.cfg.Instance {
		return Output{}, fmt.Errorf("pbft: CHECKPOINT for instance %d on instance %d", cp.Instance, in.cfg.Instance)
	}
	if cp.Seq <= in.stableSeq {
		return Output{}, nil
	}
	return in.recordCheckpoint(cp.Seq, cp.Node, cp.Digest, now), nil
}

func (in *Instance) recordCheckpoint(seq types.SeqNum, node types.NodeID, digest types.Digest, now time.Time) Output {
	var out Output
	m := in.checkpoints[seq]
	if m == nil {
		m = make(map[types.NodeID]types.Digest, in.cfg.Cluster.Quorum())
		in.checkpoints[seq] = m
	}
	m[node] = digest
	// Checkpoint evidence may reveal that this replica missed committed
	// batches entirely; start catch-up if so. This must run even (indeed,
	// especially) when we have no own digest for the sequence.
	out.merge(in.noteCheckpointEvidence(seq, now))
	// Stability requires 2f+1 digests matching our own.
	own, haveOwn := in.checkpointDigests[seq]
	if !haveOwn {
		return out
	}
	matching := 0
	for _, d := range m {
		if d == own {
			matching++
		}
	}
	if matching >= in.cfg.Cluster.Quorum() && seq > in.stableSeq {
		in.journal(&out, wal.Record{Kind: wal.KindStable, Seq: seq, Digest: own})
		in.stabilize(seq)
		// Stabilising widens the watermark window; a primary stalled on the
		// window can now cut its backlog.
		if in.IsPrimary() && !in.inViewChange && len(in.pending) > 0 {
			out.merge(in.cutBatch(now))
		}
	}
	return out
}

// stabilize garbage-collects state below the new stable checkpoint.
func (in *Instance) stabilize(seq types.SeqNum) {
	if seq <= in.stableSeq {
		return
	}
	in.stableSeq = seq
	for s := range in.entries {
		if s <= seq {
			delete(in.entries, s)
		}
	}
	for s := range in.checkpoints {
		if s < seq {
			delete(in.checkpoints, s)
		}
	}
	for s := range in.checkpointDigests {
		if s < seq {
			delete(in.checkpointDigests, s)
		}
	}
	for s := range in.promisedPrepare {
		if s <= seq {
			delete(in.promisedPrepare, s)
		}
	}
	for s := range in.promisedCommit {
		if s <= seq {
			delete(in.promisedCommit, s)
		}
	}
	// Drop delivered-ref records old enough that no re-proposal can
	// reference them (one full watermark window behind the stable point).
	if seq > in.cfg.WatermarkWindow {
		floor := seq - in.cfg.WatermarkWindow
		for ref, at := range in.delivered {
			if at <= floor {
				delete(in.delivered, ref)
				delete(in.known, ref)
			}
		}
	}
}

func (in *Instance) inWindow(seq types.SeqNum) bool {
	return seq > in.stableSeq && seq <= in.stableSeq+in.cfg.WatermarkWindow
}

func (in *Instance) entry(seq types.SeqNum) *entry {
	e := in.entries[seq]
	if e == nil {
		e = &entry{
			prepares: make(map[types.NodeID]types.Digest, in.cfg.Cluster.Quorum()),
			commits:  make(map[types.NodeID]types.Digest, in.cfg.Cluster.Quorum()),
		}
		in.entries[seq] = e
	}
	return e
}
