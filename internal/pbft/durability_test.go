package pbft

import (
	"testing"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/message"
	"rbft/internal/types"
	"rbft/internal/wal"
)

func durableInstance(t *testing.T, node types.NodeID, tweak func(*Config)) *Instance {
	t.Helper()
	cfg := types.NewConfig(1)
	ks := crypto.NewKeyStore([]byte("pbft-durable-test"), cfg.N, 4)
	c := Config{
		Cluster:      cfg,
		Instance:     0,
		Node:         node,
		BatchSize:    1,
		BatchTimeout: time.Millisecond,
		Durable:      true,
	}
	if tweak != nil {
		tweak(&c)
	}
	return New(c, ks.NodeRing(node))
}

func testRef(b byte) types.RequestRef {
	return types.RequestRef{Client: 1, ID: types.RequestID(b), Digest: types.Digest{b}}
}

func hasMsg(out Output, want message.Type) bool {
	for _, ob := range out.Msgs {
		if ob.Msg.MsgType() == want {
			return true
		}
	}
	return false
}

// TestJournalEmitsRecordsForSentMessages: a durable primary attaches a
// SentPrePrepare record to the same Output as the PRE-PREPARE itself, so the
// driver can persist before transmitting.
func TestJournalEmitsRecordsForSentMessages(t *testing.T) {
	in := durableInstance(t, 0, nil) // primary of view 0
	now := time.Unix(0, 0)
	out := in.AddRequest(testRef(1), now)
	if !hasMsg(out, message.TypePrePrepare) {
		t.Fatal("primary did not propose")
	}
	var kinds []wal.Kind
	for _, r := range out.Records {
		kinds = append(kinds, r.Kind)
	}
	if len(kinds) == 0 || kinds[0] != wal.KindSentPrePrepare {
		t.Fatalf("expected a SentPrePrepare record first, got %v", kinds)
	}
	// Non-durable instances must attach nothing.
	plain := New(Config{
		Cluster: types.NewConfig(1), Instance: 0, Node: 0,
		BatchSize: 1, BatchTimeout: time.Millisecond,
	}, crypto.NewKeyStore([]byte("pbft-durable-test"), 4, 4).NodeRing(0))
	out = plain.AddRequest(testRef(1), now)
	if len(out.Records) != 0 {
		t.Fatalf("non-durable instance attached %d records", len(out.Records))
	}
}

// TestRestoredPrepareBlocksEquivocation: after recovery, a backup that had
// logged a PREPARE for digest A at (view, seq) must not PREPARE a different
// batch at the same slot, but must accept the identical proposal.
func TestRestoredPrepareBlocksEquivocation(t *testing.T) {
	now := time.Unix(0, 0)
	refA, refB := testRef(1), testRef(2)

	ppA := &message.PrePrepare{Instance: 0, View: 0, Seq: 1, Batch: []types.RequestRef{refA}, Node: 0}
	ppB := &message.PrePrepare{Instance: 0, View: 0, Seq: 1, Batch: []types.RequestRef{refB}, Node: 0}

	in := durableInstance(t, 1, nil) // backup; node 0 is primary
	in.Restore(wal.Record{Kind: wal.KindSentPrepare, View: 0, Seq: 1, Digest: ppA.BatchDigest()})
	in.FinishRestore(0)
	in.AddRequest(refA, now)
	in.AddRequest(refB, now)

	out, err := in.OnMessage(ppB, now)
	if err != nil {
		t.Fatalf("OnMessage(ppB): %v", err)
	}
	if hasMsg(out, message.TypePrepare) {
		t.Fatal("restored backup PREPAREd a conflicting batch at a promised slot")
	}

	// A fresh instance (same keys, no promise) would have prepared ppB; make
	// sure the guard is what blocked it, not some other precondition.
	fresh := durableInstance(t, 1, nil)
	fresh.AddRequest(refB, now)
	out, err = fresh.OnMessage(ppB, now)
	if err != nil {
		t.Fatalf("OnMessage(ppB) on fresh instance: %v", err)
	}
	if !hasMsg(out, message.TypePrepare) {
		t.Fatal("fresh instance did not PREPARE ppB; test premise broken")
	}

	// The identical proposal is honoured: re-sending the same PREPARE is not
	// equivocation.
	in2 := durableInstance(t, 1, nil)
	in2.Restore(wal.Record{Kind: wal.KindSentPrepare, View: 0, Seq: 1, Digest: ppA.BatchDigest()})
	in2.FinishRestore(0)
	in2.AddRequest(refA, now)
	out, err = in2.OnMessage(ppA, now)
	if err != nil {
		t.Fatalf("OnMessage(ppA): %v", err)
	}
	if !hasMsg(out, message.TypePrepare) {
		t.Fatal("restored backup refused to re-PREPARE the promised batch")
	}
}

// TestRestoredCommitBlocksEquivocation: a logged COMMIT for digest A pins the
// slot; a conflicting batch may gather prepares but must never be committed.
func TestRestoredCommitBlocksEquivocation(t *testing.T) {
	now := time.Unix(0, 0)
	refA, refB := testRef(1), testRef(2)
	ppA := &message.PrePrepare{Instance: 0, View: 0, Seq: 1, Batch: []types.RequestRef{refA}, Node: 0}
	ppB := &message.PrePrepare{Instance: 0, View: 0, Seq: 1, Batch: []types.RequestRef{refB}, Node: 0}

	in := durableInstance(t, 1, nil)
	in.Restore(wal.Record{Kind: wal.KindSentCommit, View: 0, Seq: 1, Digest: ppA.BatchDigest()})
	in.FinishRestore(0)
	in.AddRequest(refB, now)

	out, err := in.OnMessage(ppB, now)
	if err != nil {
		t.Fatalf("OnMessage(ppB): %v", err)
	}
	// No COMMIT promise on PREPARE itself — preparing B is fine.
	if !hasMsg(out, message.TypePrepare) {
		t.Fatal("backup did not PREPARE ppB")
	}
	digB := ppB.BatchDigest()
	for _, peer := range []types.NodeID{2, 3} {
		p := &message.Prepare{Instance: 0, View: 0, Seq: 1, Digest: digB, Node: peer}
		out, err = in.OnMessage(p, now)
		if err != nil {
			t.Fatalf("OnMessage(prepare from %d): %v", peer, err)
		}
		if hasMsg(out, message.TypeCommit) {
			t.Fatal("restored backup COMMITted a batch conflicting with its logged COMMIT")
		}
	}
}

// TestRestorePrimaryDoesNotReuseSequences: the recovered primary resumes
// proposing after its highest logged PRE-PREPARE, never reusing a sequence
// number a pre-crash proposal may already occupy on the backups.
func TestRestorePrimaryDoesNotReuseSequences(t *testing.T) {
	now := time.Unix(0, 0)
	in := durableInstance(t, 0, nil)
	in.Restore(wal.Record{Kind: wal.KindSentPrePrepare, View: 0, Seq: 5, Refs: []types.RequestRef{testRef(9)}})
	in.FinishRestore(0)

	out := in.AddRequest(testRef(1), now)
	found := false
	for _, ob := range out.Msgs {
		if pp, ok := ob.Msg.(*message.PrePrepare); ok {
			found = true
			if pp.Seq != 6 {
				t.Fatalf("recovered primary proposed at seq %d, want 6", pp.Seq)
			}
		}
	}
	if !found {
		t.Fatal("recovered primary did not propose")
	}
}

// TestRestoreViewChangeState: view/in-view-change flags come back from the
// logged VIEW-CHANGE / NEW-VIEW high-water marks.
func TestRestoreViewChangeState(t *testing.T) {
	// Crash mid view change: VC logged, NEW-VIEW never installed.
	in := durableInstance(t, 1, nil)
	in.Restore(wal.Record{Kind: wal.KindViewChange, View: 2})
	in.FinishRestore(0)
	if in.View() != 2 || !in.InViewChange() {
		t.Fatalf("view=%d inViewChange=%v after interrupted view change, want 2/true", in.View(), in.InViewChange())
	}

	// Crash after the NEW-VIEW: fully in the new view.
	in = durableInstance(t, 1, nil)
	in.Restore(wal.Record{Kind: wal.KindViewChange, View: 2})
	in.Restore(wal.Record{Kind: wal.KindNewView, View: 2})
	in.FinishRestore(0)
	if in.View() != 2 || in.InViewChange() {
		t.Fatalf("view=%d inViewChange=%v after completed view change, want 2/false", in.View(), in.InViewChange())
	}
}

// TestRestoreStableCheckpointPrunesPromises: promises at or below the stable
// checkpoint are dropped, and delivery resumes from the checkpoint.
func TestRestoreStableCheckpointPrunesPromises(t *testing.T) {
	in := durableInstance(t, 1, nil)
	in.Restore(wal.Record{Kind: wal.KindSentPrepare, View: 0, Seq: 3, Digest: types.Digest{1}})
	in.Restore(wal.Record{Kind: wal.KindSentPrepare, View: 0, Seq: 12, Digest: types.Digest{2}})
	in.Restore(wal.Record{Kind: wal.KindStable, Seq: 10, Digest: types.Digest{3}})
	in.FinishRestore(0)
	if _, ok := in.promisedPrepare[3]; ok {
		t.Fatal("promise below the stable checkpoint survived")
	}
	if _, ok := in.promisedPrepare[12]; !ok {
		t.Fatal("promise above the stable checkpoint was dropped")
	}
	if in.LastDelivered() != 10 {
		t.Fatalf("LastDelivered = %d after restore, want 10", in.LastDelivered())
	}
}
