package pbft

import (
	"testing"

	"rbft/internal/message"
	"rbft/internal/types"
)

// TestFetchRecoversPartitionedReplica: one replica loses all inbound traffic
// while the others order and checkpoint past it; when connectivity returns,
// checkpoint evidence reveals the gap and the fetch protocol fills it.
func TestFetchRecoversPartitionedReplica(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) {
		c.BatchSize = 1
		c.CheckpointInterval = 4
		c.WatermarkWindow = 64
	})
	victim := types.NodeID(2)
	tc.drop = func(from, to types.NodeID, m message.Message) bool {
		return to == victim
	}
	for i := 0; i < 20; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	if got := len(orderedRefs(tc.delivered[victim])); got != 0 {
		t.Fatalf("victim delivered %d refs while partitioned", got)
	}
	for n := 0; n < tc.cfg.N; n++ {
		if types.NodeID(n) == victim {
			continue
		}
		if got := len(orderedRefs(tc.delivered[types.NodeID(n)])); got != 20 {
			t.Fatalf("node %d delivered %d refs, want 20 (victim's absence must not stall)", n, got)
		}
	}

	// Heal the partition; order more traffic so fresh checkpoints reach the
	// victim and reveal its gap.
	tc.drop = nil
	for i := 20; i < 40; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}

	want := orderedRefs(tc.delivered[0])
	got := orderedRefs(tc.delivered[victim])
	if len(got) != len(want) {
		t.Fatalf("victim recovered %d of %d refs", len(got), len(want))
	}
	if !sameOrder(want, got) {
		t.Fatal("victim's recovered order diverges")
	}
}

// TestFetchRequiresWeakQuorum: a single (possibly faulty) responder cannot
// make a replica adopt a batch.
func TestFetchRequiresWeakQuorum(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	in := tc.replicas[0]
	// Fabricate checkpoint evidence that seq 4 is committed elsewhere.
	for _, from := range []types.NodeID{1, 2} {
		cp := &message.Checkpoint{Instance: 0, Seq: 4, Digest: types.Digest{7}, Node: from}
		if _, err := in.OnMessage(cp, tc.now); err != nil {
			t.Fatal(err)
		}
	}
	if in.fetch == nil {
		t.Fatal("f+1 checkpoint evidence did not start a fetch")
	}
	// One forged response must not be adopted.
	forged := &message.FetchResp{Instance: 0, Seq: 1, Batch: []types.RequestRef{ref(9, 9)}, Node: 3}
	if _, err := in.OnMessage(forged, tc.now); err != nil {
		t.Fatal(err)
	}
	if in.lastDelivered != 0 {
		t.Fatal("single fetch response was adopted")
	}
	// A second, matching response from a distinct node completes the weak
	// quorum and delivers.
	second := &message.FetchResp{Instance: 0, Seq: 1, Batch: []types.RequestRef{ref(9, 9)}, Node: 2}
	out, err := in.OnMessage(second, tc.now)
	if err != nil {
		t.Fatal(err)
	}
	if in.lastDelivered != 1 || len(out.Delivered) != 1 {
		t.Fatalf("weak quorum did not deliver (lastDelivered=%d)", in.lastDelivered)
	}
}

// TestFetchMismatchedResponsesDoNotCount: two responders with different
// content do not form a quorum.
func TestFetchMismatchedResponsesDoNotCount(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	in := tc.replicas[0]
	for _, from := range []types.NodeID{1, 2} {
		cp := &message.Checkpoint{Instance: 0, Seq: 4, Digest: types.Digest{7}, Node: from}
		if _, err := in.OnMessage(cp, tc.now); err != nil {
			t.Fatal(err)
		}
	}
	a := &message.FetchResp{Instance: 0, Seq: 1, Batch: []types.RequestRef{ref(1, 1)}, Node: 1}
	b := &message.FetchResp{Instance: 0, Seq: 1, Batch: []types.RequestRef{ref(2, 2)}, Node: 2}
	in.OnMessage(a, tc.now)
	in.OnMessage(b, tc.now)
	if in.lastDelivered != 0 {
		t.Fatal("mismatched responses formed a quorum")
	}
}

// TestFetchServesRetainedBatches: a replica answers FETCH with exactly what
// it delivered.
func TestFetchServesRetainedBatches(t *testing.T) {
	tc := newTestCluster(t, 1, func(c *Config) { c.BatchSize = 1 })
	for i := 0; i < 5; i++ {
		tc.addRequest(ref(0, types.RequestID(i)))
	}
	in := tc.replicas[1]
	req := &message.Fetch{Instance: 0, FromSeq: 0, ToSeq: 5, Node: 3}
	out, err := in.OnMessage(req, tc.now)
	if err != nil {
		t.Fatal(err)
	}
	resps := 0
	for _, m := range out.Msgs {
		fr, ok := m.Msg.(*message.FetchResp)
		if !ok {
			continue
		}
		resps++
		if len(m.To) != 1 || m.To[0] != 3 {
			t.Fatalf("response addressed to %v, want requester", m.To)
		}
		if len(fr.Batch) != 1 {
			t.Fatalf("seq %d served %d refs", fr.Seq, len(fr.Batch))
		}
	}
	if resps != 5 {
		t.Fatalf("served %d responses, want 5", resps)
	}
}

// TestFetchRespRoundTrip covers the new codec paths.
func TestFetchCodecRoundTrip(t *testing.T) {
	f := &message.Fetch{Instance: 1, FromSeq: 10, ToSeq: 20, Node: 2}
	wire := f.Marshal(nil)
	got, err := message.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := got.(*message.Fetch); !ok || g.FromSeq != 10 || g.ToSeq != 20 {
		t.Fatalf("decoded %#v", got)
	}
	fr := &message.FetchResp{Instance: 1, Seq: 15, Batch: []types.RequestRef{ref(1, 2)}, Node: 0}
	wire = fr.Marshal(nil)
	got, err = message.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := got.(*message.FetchResp); !ok || g.Seq != 15 || len(g.Batch) != 1 {
		t.Fatalf("decoded %#v", got)
	}
}
