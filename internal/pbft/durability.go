package pbft

import (
	"rbft/internal/types"
	"rbft/internal/wal"
)

// Durability: the replica stays a pure state machine, so it does not write
// the WAL itself. Instead, when cfg.Durable is set, every state transition
// that must survive a crash *describes itself* as a wal.Record attached to
// the Output, and the driver persists (and fsyncs) those records before
// transmitting the messages of the same output. "Log before send" is
// therefore a driver obligation; the replica's obligation is to emit the
// record in the same output as the message it covers.
//
// On restart the driver replays the log through Restore, one record at a
// time, then calls FinishRestore. Restored state is deliberately minimal:
// enough to never equivocate (send two conflicting PREPAREs/COMMITs for
// the same view and sequence, or reuse a primary sequence number for a new
// batch) and to resume from the last stable checkpoint. Everything else —
// missed deliveries, peer checkpoints, request bodies — is re-learned
// through the normal fetch and propagation machinery.

// journal appends rec to out when durability is on, stamping the instance.
func (in *Instance) journal(out *Output, rec wal.Record) {
	if !in.cfg.Durable {
		return
	}
	rec.Instance = in.cfg.Instance
	out.Records = append(out.Records, rec)
}

// promise is a durable claim this replica made before the crash: in view
// View it vouched for Digest at some sequence number.
type promise struct {
	view   types.View
	digest types.Digest
}

// conflicts reports whether acting on e at seq would contradict a restored
// promise: same view, different digest. A matching digest is not a
// conflict — re-sending an identical message is harmless — and a higher
// view legitimately supersedes the old proposal.
func conflicts(m map[types.SeqNum]promise, seq types.SeqNum, e *entry) bool {
	p, ok := m[seq]
	return ok && p.view == e.view && p.digest != e.digest
}

// restoreState accumulates cross-record facts during a replay.
type restoreState struct {
	maxVCView types.View   // highest VIEW-CHANGE we sent
	maxNVView types.View   // highest NEW-VIEW we installed
	maxPPSeq  types.SeqNum // highest sequence we assigned as primary
}

// Restore applies one WAL record to the replica. Call for every record of
// this instance, in log order, before any live input; then FinishRestore.
func (in *Instance) Restore(rec wal.Record) {
	if in.restore == nil {
		in.restore = &restoreState{}
	}
	switch rec.Kind {
	case wal.KindSentPrePrepare:
		if rec.Seq > in.restore.maxPPSeq {
			in.restore.maxPPSeq = rec.Seq
		}
	case wal.KindSentPrepare:
		if p, ok := in.promisedPrepare[rec.Seq]; !ok || rec.View >= p.view {
			in.promisedPrepare[rec.Seq] = promise{view: rec.View, digest: rec.Digest}
		}
	case wal.KindSentCommit:
		if p, ok := in.promisedCommit[rec.Seq]; !ok || rec.View >= p.view {
			in.promisedCommit[rec.Seq] = promise{view: rec.View, digest: rec.Digest}
		}
	case wal.KindCheckpoint:
		// Our own checkpoint digest; only useful again if the checkpoint
		// becomes stable, which arrives as a KindStable record.
	case wal.KindStable:
		if rec.Seq > in.stableSeq {
			in.stableSeq = rec.Seq
			in.logDigest = rec.Digest
		}
	case wal.KindViewChange:
		if rec.View > in.restore.maxVCView {
			in.restore.maxVCView = rec.View
		}
	case wal.KindNewView:
		if rec.View > in.restore.maxNVView {
			in.restore.maxNVView = rec.View
		}
	}
}

// FinishRestore fixes up derived state after the last record. nodeView is
// the node-level view recovered from instance-change records; instances
// move in lockstep with it.
func (in *Instance) FinishRestore(nodeView types.View) {
	rs := in.restore
	if rs == nil {
		rs = &restoreState{}
	}
	in.restore = nil

	view := nodeView
	if rs.maxVCView > view {
		view = rs.maxVCView
	}
	if rs.maxNVView > view {
		view = rs.maxNVView
	}
	in.view = view
	// A VIEW-CHANGE we sent for the final view without a NEW-VIEW on record
	// means we crashed mid-view-change: stay in it, and let the NEW-VIEW (or
	// the next instance change) move us on.
	in.inViewChange = rs.maxVCView == view && rs.maxNVView < view && view > 0

	// Resume delivery from the stable checkpoint; the gap up to the
	// cluster's head is re-learned via checkpoint evidence + fetch.
	in.lastDelivered = in.stableSeq

	// Never reuse a sequence number we may already have bound to a batch.
	next := in.stableSeq + 1
	if rs.maxPPSeq+1 > next {
		next = rs.maxPPSeq + 1
	}
	in.nextSeq = next

	// Promises at or below the stable checkpoint can never conflict with
	// in-window traffic; drop them.
	for seq := range in.promisedPrepare {
		if seq <= in.stableSeq {
			delete(in.promisedPrepare, seq)
		}
	}
	for seq := range in.promisedCommit {
		if seq <= in.stableSeq {
			delete(in.promisedCommit, seq)
		}
	}
}
