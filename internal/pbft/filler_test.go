package pbft

import (
	"testing"

	"rbft/internal/types"
)

// TestProposeFillerDeliversEmptyBatch: a primary's filler proposal runs the
// full three-phase protocol and every replica delivers an empty batch — the
// skip-empty-lane signal the multi-primary merge relies on.
func TestProposeFillerDeliversEmptyBatch(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	tc.collect(0, tc.replicas[0].ProposeFiller(tc.now))
	tc.run()
	for n, batches := range tc.delivered {
		if len(batches) != 1 {
			t.Fatalf("node %d delivered %d batches, want 1", n, len(batches))
		}
		b := batches[0]
		if b.Seq != 1 || len(b.Refs) != 0 {
			t.Fatalf("node %d delivered seq %d with %d refs, want empty batch at seq 1", n, b.Seq, len(b.Refs))
		}
	}
	if len(tc.delivered) != tc.cfg.N {
		t.Fatalf("%d nodes delivered, want %d", len(tc.delivered), tc.cfg.N)
	}
}

// TestProposeFillerGuards: fillers are only proposed by the primary, one at
// a time, and never while real requests are pending (a real batch is always
// preferred over an empty one).
func TestProposeFillerGuards(t *testing.T) {
	tc := newTestCluster(t, 1, nil)

	// Non-primary: nothing.
	if out := tc.replicas[1].ProposeFiller(tc.now); len(out.Msgs) != 0 {
		t.Fatal("non-primary proposed a filler")
	}

	// Pending real requests: nothing (the real batch wins).
	primary := tc.replicas[0]
	ref := types.RequestRef{Client: 1, ID: 1, Digest: types.Digest{1}}
	primary.AddRequest(ref, tc.now)
	if out := primary.ProposeFiller(tc.now); len(out.Msgs) != 0 {
		t.Fatal("filler proposed while a real request is pending")
	}
	// Flush the pending request through.
	for n := 1; n < tc.cfg.N; n++ {
		tc.collect(types.NodeID(n), tc.replicas[n].AddRequest(ref, tc.now))
	}
	tc.run()

	// One filler in flight: a second ProposeFiller before delivery must not
	// stack another empty proposal behind it.
	out := primary.ProposeFiller(tc.now)
	if len(out.Msgs) == 0 {
		t.Fatal("idle primary proposed no filler")
	}
	if second := primary.ProposeFiller(tc.now); len(second.Msgs) != 0 {
		t.Fatal("second filler proposed while the first is undelivered")
	}
}
