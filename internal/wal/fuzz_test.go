package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rbft/internal/types"
)

// FuzzWALReplay feeds arbitrary bytes to the log-recovery path as the body
// of the last (and only) segment. Invariants:
//   - Open never panics: it either recovers (truncating a torn tail) or
//     fails with a classified error;
//   - when Open succeeds, the surviving records are a clean prefix of the
//     framed stream: re-encoding them reproduces exactly the bytes the
//     recovery kept;
//   - a second Open of the repaired log recovers the same records (repair
//     is idempotent).
func FuzzWALReplay(f *testing.F) {
	valid := EncodeRecords(nil, []Record{
		{Kind: KindSentPrePrepare, Instance: 1, View: 2, Seq: 3, Refs: []types.RequestRef{
			{Client: 4, ID: 5, Digest: types.Digest{1}},
		}},
		{Kind: KindSentPrepare, Instance: 0, View: 2, Seq: 3, Digest: types.Digest{2}},
		{Kind: KindSentCommit, Instance: 2, View: 1, Seq: 9, Digest: types.Digest{3}},
		{Kind: KindCheckpoint, Instance: 1, Seq: 128, Digest: types.Digest{4}},
		{Kind: KindStable, Instance: 1, Seq: 128, Digest: types.Digest{4}},
		{Kind: KindViewChange, Instance: 0, View: 4},
		{Kind: KindNewView, Instance: 0, View: 4},
		{Kind: KindInstanceChange, CPI: 3, View: 4},
		{Kind: KindExecuted, Client: 11, Req: 12, Digest: types.Digest{5}, Op: []byte("op")},
		{Kind: KindExecuted, Client: 13, Req: 14, Digest: types.Digest{6}, Op: []byte("op2"), Instance: 1},
		{Kind: KindMerged, Instance: 1, Seq: 7},
	})
	// Seed corpus: the valid stream, truncations, bit flips, and junk.
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:11])
	flip := append([]byte(nil), valid...)
	flip[15] ^= 0x20
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append([]byte(nil), make([]byte, 64)...))

	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		hdr := make([]byte, segHeaderLen)
		copy(hdr, segMagic)
		putU64(hdr[len(segMagic):], 1)
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, append(hdr, body...), 0o644); err != nil {
			t.Fatal(err)
		}

		l, err := Open(Options{Dir: dir})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open failed with unclassified error: %v", err)
			}
			return
		}
		var recs []Record
		if err := l.Replay(func(r Record) error { recs = append(recs, r); return nil }); err != nil {
			t.Fatalf("replay of repaired log: %v", err)
		}
		if uint64(len(recs)) != l.Replayed() {
			t.Fatalf("Replay returned %d records, Replayed() = %d", len(recs), l.Replayed())
		}
		// The kept bytes must be exactly the clean prefix of the input.
		kept, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodeRecords(nil, recs); string(kept[segHeaderLen:]) != string(got) {
			t.Fatalf("repaired segment body is not the re-encoding of the recovered records")
		}
		l.Close()

		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("second Open of repaired log: %v", err)
		}
		if l2.Replayed() != uint64(len(recs)) {
			t.Fatalf("second Open recovered %d records, want %d", l2.Replayed(), len(recs))
		}
		l2.Close()
	})
}
