package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rbft/internal/obs"
)

// castagnoli is the CRC-32C polynomial table shared by framing and replay.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crcOf(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// segMagic starts every segment file, followed by the big-endian LSN of the
// segment's first record.
const segMagic = "RBFTWAL1"

// segHeaderLen is the byte length of a segment header.
const segHeaderLen = len(segMagic) + 8

// Options configures a Log.
type Options struct {
	// Dir is the directory holding the segment files. Created if missing.
	Dir string
	// SegmentBytes rolls to a new segment once the current one exceeds this
	// size. Default 16 MB.
	SegmentBytes int64
	// FlushInterval bounds how long an appended record can sit in the
	// buffer before the flusher syncs it, even with no waiter. Default 2ms.
	FlushInterval time.Duration
	// FlushBytes triggers an early flush once this much is buffered.
	// Default 256 KB.
	FlushBytes int
	// NoSync skips fsync (tests and throwaway runs only; a crash can then
	// lose acknowledged records).
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 256 << 10
	}
	return o
}

// segInfo describes one on-disk segment.
type segInfo struct {
	path     string
	firstLSN uint64 // LSN of the segment's first record
	records  uint64 // valid records in the segment
}

// Log is an append-only segmented record log with group commit.
//
// Appends are cheap buffer writes; a single flusher goroutine owns all file
// I/O and syncs the buffer to disk either when nudged by a durability
// waiter, when FlushBytes accumulate, or after FlushInterval. Every fsync
// covers all records appended before it started, so concurrent committers
// share fsyncs (group commit) while a lone committer still syncs
// immediately.
type Log struct {
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // signals durableLSN / ioErr changes
	buf     []byte     // guarded by mu; framed records awaiting sync
	bufRecs uint64     // guarded by mu; records in buf
	next    uint64     // guarded by mu; LSN to assign to the next record
	durable uint64     // guarded by mu; records known durable
	ioErr   error      // guarded by mu; sticky flusher failure
	closed  bool       // guarded by mu
	segs    []segInfo  // guarded by mu; on-disk segments, oldest first

	nudge chan struct{} // wakes the flusher for an immediate sync
	quit  chan struct{}
	done  chan struct{}

	// Flusher-owned file state: only the flusher goroutine touches these
	// after Open returns.
	seg      *os.File
	segSize  int64
	replayed uint64 // records recovered by Open, for metrics

	// Metrics are nil-safe obs handles; SetMetrics installs real ones.
	fsyncSeconds *obs.Histogram
	fsyncs       *obs.Counter
	bytesWritten *obs.Counter
	recsAppended *obs.Counter
}

// FsyncBuckets are histogram bounds (seconds) for fsync latency, spanning
// NVMe-class syncs to contended spinning disks.
var FsyncBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

// Open opens (or creates) the log in opts.Dir, validates every segment,
// truncates a torn tail on the last segment, and starts the flusher. Bit
// corruption anywhere except the tail of the last segment is refused with
// an error: that is disk damage, not a torn write.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		opts:  opts,
		nudge: make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if err := l.scan(); err != nil {
		return nil, err
	}
	go l.flusher()
	return l, nil
}

// scan validates existing segments, truncates the torn tail, and positions
// the log for appending. Called once from Open, before the flusher starts;
// the lock is uncontended and held only so the guarded-field discipline
// stays checkable.
func (l *Log) scan() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, "*.seg"))
	if err != nil {
		return fmt.Errorf("wal: list segments: %w", err)
	}
	sort.Strings(names)
	lsn := uint64(0)
	for i, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", filepath.Base(path), err)
		}
		first, body, err := parseSegHeader(data)
		if err != nil {
			return fmt.Errorf("wal: %s: %w", filepath.Base(path), err)
		}
		if i == 0 {
			lsn = first - 1
		} else if first != lsn+1 {
			return fmt.Errorf("%w: segment %s starts at LSN %d, want %d",
				ErrCorrupt, filepath.Base(path), first, lsn+1)
		}
		recs, clean, derr := DecodeRecords(body)
		if derr != nil {
			if i != len(names)-1 {
				return fmt.Errorf("wal: %s: %w", filepath.Base(path), derr)
			}
			// Torn tail on the last segment: drop the unreadable suffix.
			if err := os.Truncate(path, int64(segHeaderLen+clean)); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", filepath.Base(path), err)
			}
		}
		lsn += uint64(len(recs))
		l.segs = append(l.segs, segInfo{path: path, firstLSN: first, records: uint64(len(recs))})
	}
	l.next = lsn
	l.durable = lsn
	l.replayed = lsn
	if n := len(l.segs); n > 0 {
		f, err := os.OpenFile(l.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: reopen segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: stat segment: %w", err)
		}
		l.seg = f
		l.segSize = st.Size()
	}
	return nil
}

func parseSegHeader(data []byte) (firstLSN uint64, body []byte, err error) {
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return 0, nil, fmt.Errorf("%w: bad segment header", ErrCorrupt)
	}
	first := beU64(data[len(segMagic):])
	if first == 0 {
		return 0, nil, fmt.Errorf("%w: segment first LSN 0", ErrCorrupt)
	}
	return first, data[segHeaderLen:], nil
}

func beU64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// SetMetrics installs WAL metrics into reg. Call before traffic; the
// handles are nil-safe so an unset registry costs nothing.
func (l *Log) SetMetrics(reg *obs.Registry) {
	l.fsyncSeconds = reg.Histogram("rbft_wal_fsync_seconds", FsyncBuckets)
	l.fsyncs = reg.Counter("rbft_wal_fsyncs_total")
	l.bytesWritten = reg.Counter("rbft_wal_bytes_total")
	l.recsAppended = reg.Counter("rbft_wal_records_total")
}

// Replayed returns how many records Open recovered from disk.
func (l *Log) Replayed() uint64 { return l.replayed }

// Replay streams every durable record, oldest first, into fn. It re-reads
// the segment files, so call it at startup before appending; records
// appended after Open are not guaranteed to be seen.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	l.mu.Unlock()
	for _, s := range segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", filepath.Base(s.path), err)
		}
		_, body, err := parseSegHeader(data)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", filepath.Base(s.path), err)
		}
		recs, _, derr := DecodeRecords(body)
		for i := uint64(0); i < s.records && int(i) < len(recs); i++ {
			if err := fn(recs[i]); err != nil {
				return err
			}
		}
		if derr != nil && uint64(len(recs)) < s.records {
			return fmt.Errorf("wal: replay %s: %w", filepath.Base(s.path), derr)
		}
	}
	return nil
}

// Append buffers records and returns the LSN of the last one (the count of
// records ever appended). Durability is *not* implied; pair with
// WaitDurable before acting on the records' visibility.
func (l *Log) Append(recs ...Record) (uint64, error) {
	if len(recs) == 0 {
		l.mu.Lock()
		lsn := l.next
		err := l.ioErr
		l.mu.Unlock()
		return lsn, err
	}
	frames := EncodeRecords(nil, recs)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append on closed log")
	}
	if err := l.ioErr; err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.buf = append(l.buf, frames...)
	l.bufRecs += uint64(len(recs))
	l.next += uint64(len(recs))
	lsn := l.next
	full := len(l.buf) >= l.opts.FlushBytes
	l.mu.Unlock()
	l.recsAppended.Add(uint64(len(recs)))
	if full {
		l.kick()
	}
	return lsn, nil
}

// WaitDurable blocks until the record at lsn is on disk (or the log failed
// or closed). It nudges the flusher, so a lone committer pays one fsync of
// latency, while concurrent committers share fsyncs.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < lsn {
		if l.ioErr != nil {
			return l.ioErr
		}
		if l.closed {
			return fmt.Errorf("wal: closed before LSN %d became durable", lsn)
		}
		l.kick()
		l.cond.Wait()
	}
	return l.ioErr
}

// Sync flushes everything appended so far and waits for durability.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.next
	l.mu.Unlock()
	return l.WaitDurable(lsn)
}

// DurableLSN returns the highest LSN known to be on disk.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// AppendedLSN returns the LSN of the most recently appended record.
func (l *Log) AppendedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Close flushes buffered records, stops the flusher, and closes the
// segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.ioErr
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cond.Broadcast()
	if l.seg != nil {
		if err := l.seg.Close(); err != nil && l.ioErr == nil {
			l.ioErr = err
		}
		l.seg = nil
	}
	return l.ioErr
}

// Prune deletes whole segments whose records all precede keepFrom (LSN).
// The active (last) segment is never deleted. Safe prune points are the
// caller's business: recovery replays only what remains, so prune at most
// up to state summarized elsewhere (e.g. an application snapshot).
func (l *Log) Prune(keepFrom uint64) error {
	l.mu.Lock()
	var victims []segInfo
	for len(l.segs) > 1 {
		s := l.segs[0]
		if s.firstLSN+s.records-1 >= keepFrom {
			break
		}
		victims = append(victims, s)
		l.segs = l.segs[1:]
	}
	l.mu.Unlock()
	for _, s := range victims {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: prune %s: %w", filepath.Base(s.path), err)
		}
	}
	return nil
}

// kick nudges the flusher without blocking. Callers hold no or any lock.
func (l *Log) kick() {
	select {
	case l.nudge <- struct{}{}:
	default:
	}
}

// flusher is the single goroutine owning file I/O. Each round it steals
// the buffered frames under the lock, performs the write+fsync with no
// locks held, then publishes the new durable LSN.
func (l *Log) flusher() {
	defer close(l.done)
	timer := time.NewTimer(l.opts.FlushInterval)
	defer timer.Stop()
	for {
		quitting := false
		select {
		case <-l.nudge:
		case <-timer.C:
		case <-l.quit:
			quitting = true
		}
		l.mu.Lock()
		data := l.buf
		nrecs := l.bufRecs
		target := l.next
		l.buf = nil
		l.bufRecs = 0
		l.mu.Unlock()

		var err error
		if len(data) > 0 {
			err = l.flushBatch(data, nrecs)
		}
		l.mu.Lock()
		if err != nil {
			if l.ioErr == nil {
				l.ioErr = err
			}
		} else {
			l.durable = target
		}
		l.cond.Broadcast()
		l.mu.Unlock()
		if quitting {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(l.opts.FlushInterval)
	}
}

// flushBatch writes one stolen buffer to the current segment (rolling
// first if it is full) and syncs it. Flusher goroutine only.
func (l *Log) flushBatch(data []byte, nrecs uint64) error {
	if l.seg == nil || l.segSize >= l.opts.SegmentBytes {
		if err := l.roll(); err != nil {
			return err
		}
	}
	start := time.Now()
	if err := writeAndSync(l.seg, data, l.opts.NoSync); err != nil {
		return err
	}
	l.fsyncSeconds.Observe(time.Since(start).Seconds())
	l.fsyncs.Inc()
	l.bytesWritten.Add(uint64(len(data)))
	l.segSize += int64(len(data))
	l.mu.Lock()
	l.segs[len(l.segs)-1].records += nrecs
	l.mu.Unlock()
	return nil
}

// roll closes the current segment and starts a new one whose first record
// is the next durable LSN + 1. Flusher goroutine only.
func (l *Log) roll() error {
	if l.seg != nil {
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.seg = nil
	}
	l.mu.Lock()
	first := l.durable + 1
	l.mu.Unlock()
	path := filepath.Join(l.opts.Dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	putU64(hdr[len(segMagic):], first)
	if err := writeAndSync(f, hdr, l.opts.NoSync); err != nil {
		f.Close()
		return err
	}
	syncDir(l.opts.Dir)
	l.seg = f
	l.segSize = int64(len(hdr))
	l.mu.Lock()
	l.segs = append(l.segs, segInfo{path: path, firstLSN: first})
	l.mu.Unlock()
	return nil
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%016x.seg", firstLSN)
}

// writeAndSync is the raw I/O step of a flush: write the batch, then
// fsync. It runs with no locks held so a slow disk never blocks appenders,
// and the lockdiscipline analyzer enforces that.
//
//rbft:wal
func writeAndSync(f *os.File, data []byte, noSync bool) error {
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if noSync {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so segment creation survives a
// crash. Errors are ignored: some filesystems refuse directory fsync.
//
//rbft:wal
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Dir returns the log's directory (for diagnostics and tests).
func (l *Log) Dir() string { return l.opts.Dir }

// SegmentPaths returns the current segment files, oldest first.
func (l *Log) SegmentPaths() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.segs))
	for i, s := range l.segs {
		out[i] = s.path
	}
	return out
}
