// Package wal is the durability subsystem: an append-only, segmented,
// CRC-framed write-ahead log with group commit, plus the typed records the
// protocol layer persists before its actions become externally visible.
//
// The protocol state machines (core, pbft) stay pure: they *describe* what
// must survive a crash by attaching Records to their Outputs, and the
// drivers (runtime, sim) persist those records — and wait for durability —
// before transmitting the messages of the same output. Replaying the log
// through core.Node.Restore rebuilds exactly the state a correct replica
// must remember to avoid equivocating or double-executing after a restart.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rbft/internal/types"
)

// Kind discriminates WAL record types.
type Kind uint8

// Record kinds. The protocol appends a record *before* the corresponding
// message leaves the node, so a restarted replica knows every promise it
// may already have made to its peers.
const (
	// KindSentPrePrepare: this node's replica, as primary, assigned Seq to
	// the batch Refs in View on Instance and sent PRE-PREPARE.
	KindSentPrePrepare Kind = iota + 1
	// KindSentPrepare: the replica sent PREPARE for (View, Seq, Digest).
	KindSentPrepare
	// KindSentCommit: the replica sent COMMIT for (View, Seq, Digest).
	KindSentCommit
	// KindCheckpoint: the replica produced a local checkpoint at Seq with
	// chained log digest Digest and broadcast CHECKPOINT.
	KindCheckpoint
	// KindStable: the checkpoint at Seq (digest Digest) gathered a quorum
	// and became stable; everything at or below Seq may be forgotten.
	KindStable
	// KindViewChange: the replica sent VIEW-CHANGE for View.
	KindViewChange
	// KindNewView: the replica installed View (primary sent NEW-VIEW, or a
	// backup accepted one).
	KindNewView
	// KindInstanceChange: the node completed the instance change to CPI,
	// entering View.
	KindInstanceChange
	// KindExecuted: the node executed request (Client, Req) with payload Op
	// on the application and cached the reply. Op is kept so recovery can
	// redo the execution and rebuild application state deterministically.
	// Instance is the ordering lane the executed order came from; it is
	// encoded only when non-zero (see appendRecord), so master-only logs are
	// byte-identical to those written before multi-primary ordering existed.
	KindExecuted
	// KindMerged: under multi-primary ordering, the node's merge scheduler
	// consumed lane Instance's delivered batch at Seq into the execution
	// order. Replay rebuilds the per-lane merge cursors from these.
	KindMerged
)

// String returns a short stable name for logs and tests.
func (k Kind) String() string {
	switch k {
	case KindSentPrePrepare:
		return "sent-pre-prepare"
	case KindSentPrepare:
		return "sent-prepare"
	case KindSentCommit:
		return "sent-commit"
	case KindCheckpoint:
		return "checkpoint"
	case KindStable:
		return "stable"
	case KindViewChange:
		return "view-change"
	case KindNewView:
		return "new-view"
	case KindInstanceChange:
		return "instance-change"
	case KindExecuted:
		return "executed"
	case KindMerged:
		return "merged"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one durable protocol fact. Only the fields relevant to Kind are
// encoded; the rest stay zero.
type Record struct {
	Kind     Kind
	Instance types.InstanceID
	View     types.View
	Seq      types.SeqNum
	Digest   types.Digest
	// Refs is the proposed batch for KindSentPrePrepare.
	Refs []types.RequestRef
	// CPI is the instance-change counter for KindInstanceChange.
	CPI uint64
	// Client, Req, Op identify and carry the request for KindExecuted.
	Client types.ClientID
	Req    types.RequestID
	Op     []byte
}

// Record-codec errors. Decode failures are all wrapped in ErrCorrupt so the
// replay path can distinguish "bad bytes" from I/O failures.
var (
	ErrCorrupt = errors.New("wal: corrupt record")
)

// maxRecordLen bounds a single record frame so a corrupted length prefix
// cannot trigger a giant allocation. It comfortably exceeds the message
// codec's 16 MB field bound.
const maxRecordLen = 64 << 20

// appendRecord encodes rec's payload (no frame) onto b.
func appendRecord(b []byte, rec *Record) []byte {
	b = append(b, byte(rec.Kind))
	switch rec.Kind {
	case KindSentPrePrepare:
		b = appendU32(b, uint32(rec.Instance))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.View))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.Seq))
		b = appendU32(b, uint32(len(rec.Refs)))
		for _, r := range rec.Refs {
			b = binary.BigEndian.AppendUint64(b, uint64(r.Client))
			b = binary.BigEndian.AppendUint64(b, uint64(r.ID))
			b = append(b, r.Digest[:]...)
		}
	case KindSentPrepare, KindSentCommit, KindCheckpoint, KindStable:
		b = appendU32(b, uint32(rec.Instance))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.View))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.Seq))
		b = append(b, rec.Digest[:]...)
	case KindViewChange, KindNewView:
		b = appendU32(b, uint32(rec.Instance))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.View))
	case KindInstanceChange:
		b = binary.BigEndian.AppendUint64(b, rec.CPI)
		b = binary.BigEndian.AppendUint64(b, uint64(rec.View))
	case KindExecuted:
		b = binary.BigEndian.AppendUint64(b, uint64(rec.Client))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.Req))
		b = append(b, rec.Digest[:]...)
		b = appendU32(b, uint32(len(rec.Op)))
		b = append(b, rec.Op...)
		// Lane field, canonical: present iff non-zero. Master-only executions
		// (lane 0) encode exactly as they did before the field existed.
		if rec.Instance != 0 {
			b = appendU32(b, uint32(rec.Instance))
		}
	case KindMerged:
		b = appendU32(b, uint32(rec.Instance))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.Seq))
	}
	return b
}

func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

// decodeRecord parses one record payload. It rejects unknown kinds and
// trailing bytes so every accepted record re-encodes to the same payload.
func decodeRecord(data []byte) (Record, error) {
	d := recReader{buf: data}
	var rec Record
	rec.Kind = Kind(d.u8())
	switch rec.Kind {
	case KindSentPrePrepare:
		rec.Instance = types.InstanceID(d.u32())
		rec.View = types.View(d.u64())
		rec.Seq = types.SeqNum(d.u64())
		n := d.u32()
		if n > uint32(len(data)) { // cheap bound: each ref is > 1 byte
			return Record{}, fmt.Errorf("%w: ref count %d", ErrCorrupt, n)
		}
		rec.Refs = make([]types.RequestRef, 0, n)
		for i := uint32(0); i < n; i++ {
			var r types.RequestRef
			r.Client = types.ClientID(d.u64())
			r.ID = types.RequestID(d.u64())
			r.Digest = d.digest()
			rec.Refs = append(rec.Refs, r)
		}
	case KindSentPrepare, KindSentCommit, KindCheckpoint, KindStable:
		rec.Instance = types.InstanceID(d.u32())
		rec.View = types.View(d.u64())
		rec.Seq = types.SeqNum(d.u64())
		rec.Digest = d.digest()
	case KindViewChange, KindNewView:
		rec.Instance = types.InstanceID(d.u32())
		rec.View = types.View(d.u64())
	case KindInstanceChange:
		rec.CPI = d.u64()
		rec.View = types.View(d.u64())
	case KindExecuted:
		rec.Client = types.ClientID(d.u64())
		rec.Req = types.RequestID(d.u64())
		rec.Digest = d.digest()
		rec.Op = d.bytes()
		// Optional trailing lane field. An explicit zero would re-encode to
		// the field-less form and break re-encode identity, so reject it as
		// non-canonical rather than silently accepting two spellings.
		if d.err == nil && d.off < len(data) {
			rec.Instance = types.InstanceID(d.u32())
			if rec.Instance == 0 && d.err == nil {
				return Record{}, fmt.Errorf("%w: non-canonical zero lane on %s", ErrCorrupt, rec.Kind)
			}
		}
	case KindMerged:
		rec.Instance = types.InstanceID(d.u32())
		rec.Seq = types.SeqNum(d.u64())
	default:
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, uint8(rec.Kind))
	}
	if d.err != nil {
		return Record{}, fmt.Errorf("%w: truncated %s payload", ErrCorrupt, rec.Kind)
	}
	if d.off != len(data) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes after %s", ErrCorrupt, len(data)-d.off, rec.Kind)
	}
	return rec, nil
}

// recReader is a latched-error cursor over a record payload, mirroring the
// message codec's reader so malformed input degrades to one error check.
type recReader struct {
	buf []byte
	off int
	err error
}

func (d *recReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = ErrCorrupt
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *recReader) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *recReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *recReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *recReader) digest() types.Digest {
	var dg types.Digest
	b := d.take(types.DigestSize)
	if b != nil {
		copy(dg[:], b)
	}
	return dg
}

func (d *recReader) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > uint32(len(d.buf)-d.off) {
		d.err = ErrCorrupt
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// EncodeRecords frames records for the log: each record is
// [u32 payload length][u32 CRC-32C of payload][payload]. The same framing
// is what the simulator's modelled disk stores, so the codec is exercised
// by both drivers.
func EncodeRecords(b []byte, recs []Record) []byte {
	for i := range recs {
		b = appendFrame(b, &recs[i])
	}
	return b
}

func appendFrame(b []byte, rec *Record) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC placeholders
	b = appendRecord(b, rec)
	payload := b[start+8:]
	binary.BigEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[start+4:], crcOf(payload))
	return b
}

// DecodeRecords parses a framed record stream. It returns every record up
// to the first torn or corrupt frame, the byte offset of the clean prefix,
// and a nil error only if the whole buffer parsed. A truncated tail or a
// CRC mismatch yields the records before it plus an ErrCorrupt-wrapped
// error; callers decide whether that is a torn tail to truncate or hard
// corruption to refuse.
func DecodeRecords(data []byte) (recs []Record, clean int, err error) {
	off := 0
	for off < len(data) {
		rec, n, err := decodeFrame(data[off:])
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, nil
}

// decodeFrame parses one framed record from the front of data, returning
// the record and the frame's total size.
func decodeFrame(data []byte) (Record, int, error) {
	if len(data) < 8 {
		return Record{}, 0, fmt.Errorf("%w: torn frame header (%d bytes)", ErrCorrupt, len(data))
	}
	n := binary.BigEndian.Uint32(data)
	if n == 0 || n > maxRecordLen {
		return Record{}, 0, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	if uint32(len(data)-8) < n {
		return Record{}, 0, fmt.Errorf("%w: torn frame (%d of %d payload bytes)", ErrCorrupt, len(data)-8, n)
	}
	payload := data[8 : 8+n]
	if crcOf(payload) != binary.BigEndian.Uint32(data[4:]) {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, 8 + int(n), nil
}
