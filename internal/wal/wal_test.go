package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"rbft/internal/obs"
	"rbft/internal/types"
)

// sampleRecords returns one record of every kind, with every kind-relevant
// field populated.
func sampleRecords() []Record {
	d1 := types.Digest{1, 2, 3}
	d2 := types.Digest{9, 8, 7}
	return []Record{
		{Kind: KindSentPrePrepare, Instance: 1, View: 2, Seq: 3, Refs: []types.RequestRef{
			{Client: 4, ID: 5, Digest: d1}, {Client: 6, ID: 7, Digest: d2},
		}},
		{Kind: KindSentPrepare, Instance: 0, View: 2, Seq: 3, Digest: d1},
		{Kind: KindSentCommit, Instance: 2, View: 1, Seq: 9, Digest: d2},
		{Kind: KindCheckpoint, Instance: 1, Seq: 128, Digest: d1},
		{Kind: KindStable, Instance: 1, Seq: 128, Digest: d1},
		{Kind: KindViewChange, Instance: 0, View: 4},
		{Kind: KindNewView, Instance: 0, View: 4},
		{Kind: KindInstanceChange, CPI: 3, View: 4},
		{Kind: KindExecuted, Client: 11, Req: 12, Digest: d2, Op: []byte("op-bytes")},
		{Kind: KindExecuted, Client: 13, Req: 14, Digest: d1, Op: []byte("lane-op"), Instance: 1},
		{Kind: KindMerged, Instance: 1, Seq: 42},
	}
}

// TestExecutedLaneEncodingCanonical pins the backward-compatibility contract
// of the KindExecuted lane field: lane 0 encodes exactly as before the field
// existed, and the one non-canonical spelling (an explicit trailing zero) is
// rejected so every accepted record re-encodes to the same bytes.
func TestExecutedLaneEncodingCanonical(t *testing.T) {
	zeroLane := Record{Kind: KindExecuted, Client: 1, Req: 2, Digest: types.Digest{3}, Op: []byte("x")}
	withLane := zeroLane
	withLane.Instance = 1
	a := EncodeRecords(nil, []Record{zeroLane})
	b := EncodeRecords(nil, []Record{withLane})
	if len(b) != len(a)+4 {
		t.Fatalf("lane field size: len(with)=%d len(without)=%d, want +4", len(b), len(a))
	}
	// Hand-build the non-canonical spelling: the zero-lane record with an
	// explicit zero lane field appended (length and CRC refreshed).
	payload := appendRecord(nil, &zeroLane)
	payload = appendU32(payload, 0)
	frame := make([]byte, 8, 8+len(payload))
	putU32 := func(b []byte, v uint32) { b[0] = byte(v >> 24); b[1] = byte(v >> 16); b[2] = byte(v >> 8); b[3] = byte(v) }
	putU32(frame[0:4], uint32(len(payload)))
	putU32(frame[4:8], crcOf(payload))
	frame = append(frame, payload...)
	if _, _, err := DecodeRecords(frame); err == nil {
		t.Fatal("explicit zero lane decoded; must be rejected as non-canonical")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := sampleRecords()
	data := EncodeRecords(nil, recs)
	got, clean, err := DecodeRecords(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if clean != len(data) {
		t.Fatalf("clean prefix %d, want %d", clean, len(data))
	}
	if !reflect.DeepEqual(normalize(got), normalize(recs)) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

// normalize maps empty slices to nil so DeepEqual compares content.
func normalize(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	for i := range out {
		if len(out[i].Refs) == 0 {
			out[i].Refs = nil
		}
		if len(out[i].Op) == 0 {
			out[i].Op = nil
		}
	}
	return out
}

func TestDecodeRejectsTornAndCorrupt(t *testing.T) {
	recs := sampleRecords()
	data := EncodeRecords(nil, recs)

	// Any truncation must yield a clean prefix of whole records.
	for cut := 0; cut < len(data); cut++ {
		got, clean, err := DecodeRecords(data[:cut])
		if clean > cut {
			t.Fatalf("cut %d: clean prefix %d beyond input", cut, clean)
		}
		if err == nil && cut != len(data) && len(got) == len(recs) {
			t.Fatalf("cut %d: decoded all records from truncated input", cut)
		}
		if err == nil {
			if rest, _, _ := DecodeRecords(data[:clean]); len(rest) != len(got) {
				t.Fatalf("cut %d: clean prefix re-decode mismatch", cut)
			}
		}
	}

	// A flipped payload bit must fail the CRC.
	mut := append([]byte(nil), data...)
	mut[9] ^= 0x40
	if _, clean, err := DecodeRecords(mut); err == nil || clean != 0 {
		t.Fatalf("bit flip in first payload not caught: clean=%d err=%v", clean, err)
	}
}

func testLog(t *testing.T, opts Options) *Log {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	l := testLog(t, Options{Dir: dir})
	lsn, err := l.Append(recs...)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if lsn != uint64(len(recs)) {
		t.Fatalf("lsn = %d, want %d", lsn, len(recs))
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("wait durable: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2 := testLog(t, Options{Dir: dir})
	if got := l2.Replayed(); got != uint64(len(recs)) {
		t.Fatalf("replayed %d records, want %d", got, len(recs))
	}
	var got []Record
	if err := l2.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(recs)) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, recs)
	}
	// Appends continue from the recovered LSN.
	lsn2, err := l2.Append(recs[0])
	if err != nil || lsn2 != lsn+1 {
		t.Fatalf("append after reopen: lsn=%d err=%v, want %d", lsn2, err, lsn+1)
	}
	if err := l2.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	l := testLog(t, Options{Dir: dir})
	if _, err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: a torn tail from a crashed write.
	if err := os.Truncate(segs[0], st.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2 := testLog(t, Options{Dir: dir})
	if got, want := l2.Replayed(), uint64(len(recs)-1); got != want {
		t.Fatalf("recovered %d records after torn tail, want %d", got, want)
	}
	// The file was physically truncated to the clean prefix.
	st2, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(segs[0]); int64(len(data)) != st2.Size() {
		t.Fatal("stat/read disagree")
	}
	want := EncodeRecords(nil, recs[:len(recs)-1])
	if st2.Size() != int64(segHeaderLen+len(want)) {
		t.Fatalf("truncated size %d, want %d", st2.Size(), segHeaderLen+len(want))
	}
}

func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, Options{Dir: dir, SegmentBytes: 1}) // every batch rolls a segment
	for _, r := range sampleRecords() {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("segments = %d, want >= 3", len(segs))
	}
	// Corrupt a payload byte in the FIRST segment: that is disk damage, not
	// a torn tail, and Open must refuse rather than silently drop suffixes.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+9] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a log with mid-stream corruption")
	}
}

func TestSegmentRollAndPrune(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, Options{Dir: dir, SegmentBytes: 256})
	var total uint64
	for i := 0; i < 40; i++ {
		lsn, err := l.Append(Record{Kind: KindExecuted, Client: 1, Req: types.RequestID(i + 1), Op: bytes.Repeat([]byte{byte(i)}, 32)})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
		total = lsn
	}
	paths := l.SegmentPaths()
	if len(paths) < 3 {
		t.Fatalf("segments = %d, want >= 3 after roll", len(paths))
	}
	if err := l.Prune(total); err != nil {
		t.Fatal(err)
	}
	kept := l.SegmentPaths()
	if len(kept) != 1 {
		t.Fatalf("segments after prune = %d, want 1 (active)", len(kept))
	}
	for _, p := range paths[:len(paths)-1] {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("pruned segment %s still exists", p)
		}
	}
	// The pruned log still opens and replays only the surviving suffix.
	l.Close()
	l2 := testLog(t, Options{Dir: dir})
	n := 0
	last := Record{}
	if err := l2.Replay(func(r Record) error { n++; last = r; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 || last.Req != types.RequestID(40) {
		t.Fatalf("replay after prune: %d records, last req %d", n, last.Req)
	}
	if l2.AppendedLSN() != total {
		t.Fatalf("appended LSN %d, want %d", l2.AppendedLSN(), total)
	}
}

// TestGroupCommitSharesFsyncs: concurrent committers must share fsyncs —
// the whole point of group commit. With 64 goroutines each appending and
// waiting for durability, the fsync count must come in well under the
// record count.
func TestGroupCommitSharesFsyncs(t *testing.T) {
	reg := obs.NewRegistry()
	l := testLog(t, Options{FlushInterval: 50 * time.Millisecond})
	l.SetMetrics(reg)
	const committers = 64
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				lsn, err := l.Append(Record{Kind: KindExecuted, Client: types.ClientID(i), Req: types.RequestID(j + 1)})
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.WaitDurable(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var fsyncs, recs uint64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "rbft_wal_fsyncs_total":
			fsyncs = uint64(m.Value)
		case "rbft_wal_records_total":
			recs = uint64(m.Value)
		}
	}
	if recs != committers*4 {
		t.Fatalf("records_total = %d, want %d", recs, committers*4)
	}
	if fsyncs == 0 || fsyncs >= recs {
		t.Fatalf("fsyncs = %d for %d records; group commit is not batching", fsyncs, recs)
	}
	t.Logf("%d records, %d fsyncs (%.1f records/fsync)", recs, fsyncs, float64(recs)/float64(fsyncs))
}

func TestWaitDurableAfterIOError(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, Options{Dir: dir})
	if _, err := l.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sabotage the segment handle by closing it out from under the flusher;
	// the next flush must surface a sticky error, not hang waiters.
	l.seg.Close()
	lsn, err := l.Append(sampleRecords()[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err == nil {
		t.Fatal("WaitDurable succeeded after the segment handle was closed")
	}
	if _, err := l.Append(sampleRecords()[2]); err == nil {
		t.Fatal("Append succeeded after a sticky I/O error")
	}
}
