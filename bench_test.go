// Benchmarks regenerating every table and figure of the RBFT paper's
// evaluation, plus micro-benchmarks of the hot paths. One benchmark per
// paper artifact; each reports the headline numbers via b.ReportMetric so
// `go test -bench` output doubles as the reproduction record (see
// EXPERIMENTS.md).
//
// The experiment benchmarks run the deterministic simulator/harness once per
// iteration in quick mode; use cmd/rbft-bench for paper-scale runs.
package rbft_test

import (
	"strings"
	"testing"
	"time"

	"rbft/internal/crypto"
	"rbft/internal/harness"
	"rbft/internal/message"
	"rbft/internal/monitor"
	"rbft/internal/sim"
	"rbft/internal/types"
)

func benchOptions() harness.Options {
	return harness.Options{Quick: true, Seed: 1, Sizes: []int{8, 4096}}
}

// BenchmarkTable1 regenerates Table I: maximum throughput degradation of
// Prime (paper: 78%), Aardvark (87%) and Spinning (99%) under attack.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table1(benchOptions())
		for _, r := range rows {
			b.ReportMetric(r.MaxDegradationPct, r.Protocol+"_degr_%")
		}
	}
}

// BenchmarkFigure1 regenerates figure 1: Prime relative throughput under the
// RTT-inflation attack (paper: down to ~22%).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.Figure1(benchOptions())
		b.ReportMetric(c.MinPct(), "min_rel_%")
	}
}

// BenchmarkFigure2 regenerates figure 2: Aardvark under the
// delay-to-threshold attack (paper: static >=76%, dynamic down to 13%).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.Figure2(benchOptions())
		b.ReportMetric(c.StaticPct[0], "static8B_rel_%")
		b.ReportMetric(c.DynamicPct[0], "dynamic8B_rel_%")
	}
}

// BenchmarkFigure3 regenerates figure 3: Spinning under the
// just-below-Stimeout attack (paper: ~1% static, ~4.5% dynamic).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.Figure3(benchOptions())
		b.ReportMetric(c.StaticPct[0], "static8B_rel_%")
		b.ReportMetric(c.DynamicPct[0], "dynamic8B_rel_%")
	}
}

// BenchmarkFigure7a regenerates figure 7a: fault-free latency vs throughput
// at 8B for all five systems (paper peaks: RBFT 35k, Aardvark 31.6k,
// Spinning +20%, Prime ~12k with ~10x latency).
func BenchmarkFigure7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves := harness.Figure7(8, benchOptions())
		reportPeaks(b, curves)
	}
}

// BenchmarkFigure7b regenerates figure 7b: the same at 4kB (paper peaks:
// RBFT 5k, Aardvark 1.7k, Spinning +30%).
func BenchmarkFigure7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves := harness.Figure7(4096, benchOptions())
		reportPeaks(b, curves)
	}
}

func reportPeaks(b *testing.B, curves []harness.LatencyCurve) {
	b.Helper()
	for _, c := range curves {
		peak := 0.0
		for _, p := range c.Points {
			if p.ThroughputKreqS > peak {
				peak = p.ThroughputKreqS
			}
		}
		b.ReportMetric(peak, metricName(c.System)+"_peak_kreq/s")
	}
}

// metricName slugifies a system name for ReportMetric (units must contain no
// whitespace).
func metricName(s string) string {
	s = strings.ReplaceAll(s, " ", "")
	return strings.ReplaceAll(s, "/", "_")
}

// BenchmarkFigure8 regenerates figure 8: RBFT under worst-attack-1 (paper:
// loss <=2.2% at f=1, <=0.4% at f=2).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c1 := harness.Figure8(1, benchOptions())
		b.ReportMetric(c1.MinPct(), "f1_min_rel_%")
	}
}

// BenchmarkFigure9 regenerates figure 9: per-node monitor readings under
// worst-attack-1 (paper: master within 2% of backup on every correct node).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		readings := harness.Figure9(benchOptions())
		if len(readings) > 0 {
			b.ReportMetric(readings[1].MasterKreqS, "node1_master_kreq/s")
			b.ReportMetric(readings[1].AvgBackupKreqS, "node1_backup_kreq/s")
		}
	}
}

// BenchmarkFigure10 regenerates figure 10: RBFT under worst-attack-2
// (paper: loss <3% at f=1, <1% at f=2).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c1 := harness.Figure10(1, benchOptions())
		b.ReportMetric(c1.MinPct(), "f1_min_rel_%")
	}
}

// BenchmarkFigure11 regenerates figure 11: per-node monitor readings under
// worst-attack-2.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		readings := harness.Figure11(benchOptions())
		if len(readings) > 0 {
			b.ReportMetric(readings[0].MasterKreqS, "node1_master_kreq/s")
			b.ReportMetric(readings[0].AvgBackupKreqS, "node1_backup_kreq/s")
		}
	}
}

// BenchmarkFigure12 regenerates figure 12: the unfair-primary latency
// experiment (paper: instance change once a request exceeds Lambda=1.5ms).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Figure12(benchOptions())
		b.ReportMetric(float64(r.MaxAttackedLatency)/1e6, "max_attacked_ms")
		b.ReportMetric(float64(r.InstanceChangeAt), "ic_at_request")
	}
}

// BenchmarkAblationOrderedPayload regenerates the §VI-B ablation: ordering
// request identifiers vs full 4kB requests (paper: 5 kreq/s vs 1.8 kreq/s).
func BenchmarkAblationOrderedPayload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.AblationOrderedPayload(benchOptions())
		b.ReportMetric(r.IdentifiersThroughput/1000, "ids_kreq/s")
		b.ReportMetric(r.FullThroughput/1000, "full_kreq/s")
	}
}

// BenchmarkAblationDelta sweeps the Δ threshold for worst-attack-2,
// quantifying the design choice of a tight ratio test.
func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.AblationDeltaSensitivity([]float64{0.80, 0.90, 0.97}, benchOptions())
		for _, r := range rows {
			b.ReportMetric(r.RelativePct, "rel%_at_delta_"+deltaLabel(r.Delta))
		}
	}
}

func deltaLabel(d float64) string {
	switch {
	case d < 0.85:
		return "0.80"
	case d < 0.95:
		return "0.90"
	default:
		return "0.97"
	}
}

// ---- micro-benchmarks of the hot paths ----

// BenchmarkCodecPrePrepare measures PRE-PREPARE marshal+decode (the hot
// ordering message).
func BenchmarkCodecPrePrepare(b *testing.B) {
	batch := make([]types.RequestRef, 64)
	for i := range batch {
		batch[i] = types.RequestRef{Client: types.ClientID(i), ID: types.RequestID(i)}
	}
	pp := &message.PrePrepare{Instance: 0, View: 3, Seq: 99, Batch: batch, Node: 1}
	pp.Auth = make([]crypto.MAC, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := pp.Marshal(nil)
		if _, err := message.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMACAuthenticator measures building a 4-entry MAC authenticator.
func BenchmarkMACAuthenticator(b *testing.B) {
	ks := crypto.NewKeyStore([]byte("bench"), 4, 1)
	ring := ks.NodeRing(0)
	body := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ring.AuthenticatorForNodes(4, body)
	}
}

// BenchmarkSignVerify measures the request signature path.
func BenchmarkSignVerify(b *testing.B) {
	ks := crypto.NewKeyStore([]byte("bench"), 4, 1)
	cl := ks.ClientRing(0)
	node := ks.NodeRing(0)
	body := make([]byte, 64)
	sig := cl.Sign(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := node.VerifyClientSignature(0, body, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedCluster measures simulator event throughput: virtual
// requests executed per wall second for a fault-free f=1 cluster.
func BenchmarkSimulatedCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{
			F: 1, Cost: sim.DefaultCostModel(), Seed: int64(i + 1),
			BatchSize: 64, BatchTimeout: 2 * time.Millisecond,
			Monitoring: monitor.Config{Period: 250 * time.Millisecond, Delta: 0.9, MinRequests: 32},
			Workload:   sim.StaticLoad(4, 500, 8),
			Warmup:     100 * time.Millisecond,
		}
		res := sim.New(cfg).Run(500 * time.Millisecond)
		b.ReportMetric(float64(res.Completed), "virtual_reqs")
	}
}
