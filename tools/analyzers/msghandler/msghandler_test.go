package msghandler_test

import (
	"testing"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/msghandler"
)

func TestAnalyzer(t *testing.T) {
	framework.RunTest(t, framework.TestData(t), msghandler.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"rbft/internal/core":      true,
		"rbft/internal/pbft":      true,
		"rbft/internal/sim":       true,
		"rbft/internal/message":   true,
		"rbft/internal/types":     true,
		"rbft/internal/transport": false,
		"rbft/internal/crypto":    false,
	} {
		if got := msghandler.Analyzer.Scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
