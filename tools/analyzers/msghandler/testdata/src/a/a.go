// Package a contains dispatch-exhaustiveness patterns for the msghandler
// self-test: a miniature message vocabulary and handler switches.
package a

// Kind tags wire messages.
type Kind uint8

// Wire kinds.
const (
	KindPing Kind = iota + 1
	KindPong
	KindData
)

// kindNames is deliberately missing KindData.
var kindNames = map[Kind]string{ // want `map keyed by Kind is missing entries for: KindData`
	KindPing: "PING",
	KindPong: "PONG",
}

// Message is the wire message interface.
type Message interface{ MsgKind() Kind }

// Ping is a liveness probe.
type Ping struct{}

// MsgKind implements Message.
func (*Ping) MsgKind() Kind { return KindPing }

// Pong answers a Ping.
type Pong struct{}

// MsgKind implements Message.
func (*Pong) MsgKind() Kind { return KindPong }

// Data carries a payload.
type Data struct{ B []byte }

// MsgKind implements Message.
func (*Data) MsgKind() Kind { return KindData }

func name(k Kind) string { return kindNames[k] }

// bad: annotated dispatch switch missing the Data arm.
func handleIncomplete(m Message) string {
	//rbft:dispatch
	switch m.(type) { // want `dispatch switch over Message is missing arms for: Data`
	case *Ping:
		return "ping"
	case *Pong:
		return "pong"
	default:
		return name(m.MsgKind())
	}
}

// good: every implementor handled.
func handleFull(m Message) string {
	//rbft:dispatch
	switch mm := m.(type) {
	case *Ping:
		return "ping"
	case *Pong:
		return "pong"
	case *Data:
		return string(mm.B)
	default:
		return "unknown"
	}
}

// good: documented ignore list for types that cannot reach this switch.
func handlePartial(m Message) string {
	//rbft:dispatch ignore=Data
	switch m.(type) {
	case *Ping, *Pong:
		return "control"
	default:
		return "dropped"
	}
}

// good: unannotated switches are not dispatch points.
func peek(m Message) bool {
	switch m.(type) {
	case *Ping:
		return true
	}
	return false
}

// bad: annotated value switch over the enum missing KindData.
func decodeIncomplete(k Kind) Message {
	//rbft:dispatch
	switch k { // want `dispatch switch over Kind is missing arms for: KindData`
	case KindPing:
		return &Ping{}
	case KindPong:
		return &Pong{}
	default:
		return nil
	}
}

// good: value switch covering every constant.
func decodeFull(k Kind) Message {
	//rbft:dispatch
	switch k {
	case KindPing:
		return &Ping{}
	case KindPong:
		return &Pong{}
	case KindData:
		return &Data{}
	default:
		return nil
	}
}
