// Package msghandler makes message dispatch exhaustive: a new wire message
// type added to internal/message must be wired into every protocol handler
// switch, or it would be silently dropped (worse: dropped by only some
// replicas, which in RBFT skews the cross-instance throughput comparison the
// instance-change mechanism depends on).
//
// Two checks:
//
//  1. A type switch annotated with
//     //rbft:dispatch [ignore=TypeA,TypeB,...]
//     over a named interface must have a case arm for every concrete type in
//     the interface's defining package that implements it, except the types
//     explicitly listed in ignore= (which documents *why a type cannot reach
//     this switch* — e.g. node-level messages never reach an instance).
//
//  2. A package-level map literal keyed by a locally declared integer enum
//     (e.g. message.typeNames, keyed by message.Type) must contain an entry
//     for every package constant of that enum type, so human-readable names
//     and type registries cannot lag behind new constants.
package msghandler

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"rbft/tools/analyzers/framework"
)

// Analyzer is the msghandler pass.
var Analyzer = &framework.Analyzer{
	Name:        "msghandler",
	Doc:         "require annotated dispatch switches and enum-keyed registries to be exhaustive over message types",
	Scope:       inScope,
	Run:         run,
	Annotations: []string{"dispatch"},
}

var dispatchPackages = []string{
	"rbft/internal/core",
	"rbft/internal/pbft",
	"rbft/internal/baseline",
	"rbft/internal/sim",
	"rbft/internal/message",
	"rbft/internal/types",
}

func inScope(pkgPath string) bool {
	for _, p := range dispatchPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSwitchStmt:
				checkDispatch(pass, f, n)
			case *ast.SwitchStmt:
				checkEnumSwitch(pass, f, n)
			}
			return true
		})
		checkEnumMaps(pass, f)
	}
	return nil
}

// checkEnumSwitch verifies an annotated value switch over an integer enum
// (e.g. the codec's decode switch over message.Type) covers every constant
// of the enum type declared in the enum's package.
func checkEnumSwitch(pass *framework.Pass, f *ast.File, sw *ast.SwitchStmt) {
	annotated, ignore := dispatchAnnotation(pass, f, sw)
	if !annotated {
		return
	}
	if sw.Tag == nil {
		pass.Reportf(sw.Pos(), "//rbft:dispatch switch has no tag expression")
		return
	}
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok {
		pass.Reportf(sw.Pos(), "//rbft:dispatch switch tag must have a named enum type, got %s", tagType)
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		pass.Reportf(sw.Pos(), "//rbft:dispatch switch tag type %s is not an integer enum", named)
		return
	}

	handled := make(map[string]bool)
	for _, clause := range sw.Body.List {
		for _, e := range clause.(*ast.CaseClause).List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				handled[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range enumConstants(named) {
		if !handled[c.Val().ExactString()] && !ignore[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "dispatch switch over %s is missing arms for: %s (add cases or document with ignore=)",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// enumConstants lists the constants of the named type declared in its own
// package, in declaration-scope order (sorted by name).
func enumConstants(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}

// dispatchAnnotation returns (found, ignore set) for the comment preceding
// pos.
func dispatchAnnotation(pass *framework.Pass, f *ast.File, pos ast.Node) (bool, map[string]bool) {
	text := commentAbove(pass, f, pos)
	i := strings.Index(text, "rbft:dispatch")
	if i < 0 {
		return false, nil
	}
	ignore := make(map[string]bool)
	rest := text[i+len("rbft:dispatch"):]
	for _, field := range strings.Fields(rest) {
		if list, ok := strings.CutPrefix(field, "ignore="); ok {
			for _, name := range strings.Split(list, ",") {
				ignore[strings.TrimSpace(name)] = true
			}
		}
	}
	return true, ignore
}

// commentAbove collects comment text on the line of n or the line above.
func commentAbove(pass *framework.Pass, f *ast.File, n ast.Node) string {
	target := pass.Fset.Position(n.Pos()).Line
	var out strings.Builder
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			l := pass.Fset.Position(c.Pos()).Line
			if l == target || l == target-1 {
				out.WriteString(c.Text)
			}
		}
	}
	return out.String()
}

func checkDispatch(pass *framework.Pass, f *ast.File, ts *ast.TypeSwitchStmt) {
	annotated, ignore := dispatchAnnotation(pass, f, ts)
	if !annotated {
		return
	}

	// Subject expression of the type switch.
	var subject ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				subject = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			subject = ta.X
		}
	}
	if subject == nil {
		pass.Reportf(ts.Pos(), "//rbft:dispatch switch has no recognisable type-assert subject")
		return
	}
	st := pass.TypesInfo.TypeOf(subject)
	if st == nil {
		return
	}
	iface, ok := st.Underlying().(*types.Interface)
	if !ok {
		pass.Reportf(ts.Pos(), "//rbft:dispatch switch subject is %s, not an interface", st)
		return
	}
	named, ok := st.(*types.Named)
	if !ok {
		pass.Reportf(ts.Pos(), "//rbft:dispatch switch subject must be a named interface, got %s", st)
		return
	}

	implementors := implementorsOf(named.Obj().Pkg(), iface)

	handled := make(map[string]bool)
	for _, clause := range ts.Body.List {
		cc := clause.(*ast.CaseClause)
		for _, e := range cc.List {
			t := pass.TypesInfo.TypeOf(e)
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				handled[n.Obj().Name()] = true
			}
		}
	}

	var missing []string
	for _, name := range implementors {
		if !handled[name] && !ignore[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(ts.Pos(), "dispatch switch over %s is missing arms for: %s (add cases or document with ignore=)",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// implementorsOf lists (sorted) the concrete named types in pkg that
// implement iface directly or via pointer receiver.
func implementorsOf(pkg *types.Package, iface *types.Interface) []string {
	if pkg == nil {
		return nil
	}
	var out []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ---- enum-keyed registry exhaustiveness ----

// checkEnumMaps verifies package-level map composite literals keyed by a
// locally declared integer enum cover every constant of that enum.
func checkEnumMaps(pass *framework.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				cl, ok := v.(*ast.CompositeLit)
				if !ok {
					continue
				}
				checkEnumMapLit(pass, cl)
			}
		}
	}
}

func checkEnumMapLit(pass *framework.Pass, cl *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return
	}
	keyNamed, ok := m.Key().(*types.Named)
	if !ok || keyNamed.Obj().Pkg() == nil || keyNamed.Obj().Pkg().Path() != pass.Pkg.Path() {
		return
	}
	basic, ok := keyNamed.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}

	// All package constants of the enum type.
	scope := pass.Pkg.Scope()
	var enum []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), keyNamed) {
			enum = append(enum, c)
		}
	}
	if len(enum) == 0 {
		return
	}

	present := make(map[string]bool)
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[kv.Key]; ok && tv.Value != nil {
			present[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, c := range enum {
		if !present[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(cl.Pos(), "map keyed by %s is missing entries for: %s",
			keyNamed.Obj().Name(), strings.Join(missing, ", "))
	}
}
