// Package types is a fixture stand-in for rbft/internal/types: it supplies
// the named threshold helpers the quorumsafety fixtures call. The analyzer
// matches helpers by name, so this package exercising the same names is
// enough; it is itself never a target of the test run.
package types

// Config mirrors the real cluster configuration.
type Config struct {
	N int
	F int
}

// Quorum returns 2f+1.
func Quorum(f int) int { return 2*f + 1 }

// WeakQuorum returns f+1.
func WeakQuorum(f int) int { return f + 1 }

// PrepareThreshold returns 2f.
func PrepareThreshold(f int) int { return 2 * f }

// ClusterSize returns 3f+1.
func ClusterSize(f int) int { return 3*f + 1 }

// Quorum is the method form.
func (c Config) Quorum() int { return Quorum(c.F) }

// WeakQuorum is the method form.
func (c Config) WeakQuorum() int { return WeakQuorum(c.F) }

// Instances counts ordering lanes (numerically f+1, semantically not a
// quorum) — the analyzer must NOT treat it as quorum-derived.
func (c Config) Instances() int { return c.F + 1 }

// PartitionOf mirrors the real partition map: the one approved spelling of
// client-to-lane arithmetic.
func PartitionOf(client uint64, instances int) int {
	return int(client % uint64(instances))
}
